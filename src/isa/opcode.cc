#include "isa/opcode.hh"

#include <array>

#include "common/logging.hh"

namespace nwsim
{

namespace
{

constexpr u8 aluLat = 1;
constexpr u8 mulLat = 3;
constexpr u8 divLat = 20;

using F = Format;
using C = OpClass;
using D = DeviceClass;
using K = PackKey;

constexpr OpInfo
r(std::string_view m, C c, D d, K k, u8 lat, bool piped, bool replay)
{
    return OpInfo{m, F::R, c, d, k, lat, piped, replay};
}

constexpr OpInfo
i(std::string_view m, C c, D d, K k, u8 lat = aluLat, bool replay = false)
{
    return OpInfo{m, F::I, c, d, k, lat, true, replay};
}

constexpr std::array<OpInfo,
                     static_cast<size_t>(Opcode::NumOpcodes)> infoTable = {{
    // R-type
    r("add", C::IntAlu, D::Adder, K::Add, aluLat, true, true),
    r("sub", C::IntAlu, D::Adder, K::Sub, aluLat, true, true),
    r("mul", C::IntMult, D::Multiplier, K::None, mulLat, true, false),
    r("div", C::IntDiv, D::Multiplier, K::None, divLat, false, false),
    r("rem", C::IntDiv, D::Multiplier, K::None, divLat, false, false),
    r("and", C::Logic, D::BitwiseLogic, K::And, aluLat, true, false),
    r("or", C::Logic, D::BitwiseLogic, K::Or, aluLat, true, false),
    r("xor", C::Logic, D::BitwiseLogic, K::Xor, aluLat, true, false),
    r("bic", C::Logic, D::BitwiseLogic, K::Bic, aluLat, true, false),
    r("sll", C::Shift, D::Shifter, K::Sll, aluLat, true, false),
    r("srl", C::Shift, D::Shifter, K::Srl, aluLat, true, false),
    r("sra", C::Shift, D::Shifter, K::Sra, aluLat, true, false),
    r("cmpeq", C::IntAlu, D::Adder, K::CmpEq, aluLat, true, false),
    r("cmplt", C::IntAlu, D::Adder, K::CmpLt, aluLat, true, false),
    r("cmple", C::IntAlu, D::Adder, K::CmpLe, aluLat, true, false),
    r("cmpult", C::IntAlu, D::Adder, K::CmpUlt, aluLat, true, false),
    r("cmpule", C::IntAlu, D::Adder, K::CmpUle, aluLat, true, false),
    r("sextb", C::Logic, D::BitwiseLogic, K::SextB, aluLat, true, false),
    r("sextw", C::Logic, D::BitwiseLogic, K::SextW, aluLat, true, false),

    // I-type
    i("addi", C::IntAlu, D::Adder, K::Add, aluLat, true),
    i("subi", C::IntAlu, D::Adder, K::Sub, aluLat, true),
    OpInfo{"muli", F::I, C::IntMult, D::Multiplier, K::None, mulLat, true,
           false},
    i("andi", C::Logic, D::BitwiseLogic, K::And),
    i("ori", C::Logic, D::BitwiseLogic, K::Or),
    i("xori", C::Logic, D::BitwiseLogic, K::Xor),
    i("slli", C::Shift, D::Shifter, K::Sll),
    i("srli", C::Shift, D::Shifter, K::Srl),
    i("srai", C::Shift, D::Shifter, K::Sra),
    i("cmpeqi", C::IntAlu, D::Adder, K::CmpEq),
    i("cmplti", C::IntAlu, D::Adder, K::CmpLt),
    i("cmplei", C::IntAlu, D::Adder, K::CmpLe),
    i("ldah", C::IntAlu, D::Adder, K::None),

    // Memory (latency here is address-generation/issue occupancy; cache
    // latency is added by the memory system).
    i("ldq", C::MemRead, D::Adder, K::None),
    i("ldl", C::MemRead, D::Adder, K::None),
    i("ldwu", C::MemRead, D::Adder, K::None),
    i("ldbu", C::MemRead, D::Adder, K::None),
    i("stq", C::MemWrite, D::Adder, K::None),
    i("stl", C::MemWrite, D::Adder, K::None),
    i("stw", C::MemWrite, D::Adder, K::None),
    i("stb", C::MemWrite, D::Adder, K::None),

    // Branches
    OpInfo{"beq", F::B, C::Branch, D::Adder, K::None, aluLat, true, false},
    OpInfo{"bne", F::B, C::Branch, D::Adder, K::None, aluLat, true, false},
    OpInfo{"blt", F::B, C::Branch, D::Adder, K::None, aluLat, true, false},
    OpInfo{"ble", F::B, C::Branch, D::Adder, K::None, aluLat, true, false},
    OpInfo{"bgt", F::B, C::Branch, D::Adder, K::None, aluLat, true, false},
    OpInfo{"bge", F::B, C::Branch, D::Adder, K::None, aluLat, true, false},
    OpInfo{"br", F::B, C::Branch, D::Adder, K::None, aluLat, true, false},

    // Jumps
    OpInfo{"jmp", F::J, C::Jump, D::Adder, K::None, aluLat, true, false},
    OpInfo{"jsr", F::J, C::Jump, D::Adder, K::None, aluLat, true, false},
    OpInfo{"ret", F::J, C::Jump, D::Adder, K::None, aluLat, true, false},

    OpInfo{"nop", F::None, C::Other, D::None, K::None, 1, true, false},
    OpInfo{"halt", F::None, C::Other, D::None, K::None, 1, true, false},
}};

} // namespace

const OpInfo &
opInfo(Opcode op)
{
    NWSIM_ASSERT(op < Opcode::NumOpcodes, "bad opcode ",
                 static_cast<int>(op));
    return infoTable[static_cast<size_t>(op)];
}

std::string_view
mnemonic(Opcode op)
{
    return opInfo(op).mnemonic;
}

bool
isCondBranch(Opcode op)
{
    return op >= Opcode::BEQ && op <= Opcode::BGE;
}

bool
isControl(Opcode op)
{
    return opInfo(op).opClass == OpClass::Branch ||
           opInfo(op).opClass == OpClass::Jump;
}

bool
isLoad(Opcode op)
{
    return opInfo(op).opClass == OpClass::MemRead;
}

bool
isStore(Opcode op)
{
    return opInfo(op).opClass == OpClass::MemWrite;
}

unsigned
memAccessSize(Opcode op)
{
    switch (op) {
      case Opcode::LDQ:
      case Opcode::STQ:
        return 8;
      case Opcode::LDL:
      case Opcode::STL:
        return 4;
      case Opcode::LDWU:
      case Opcode::STW:
        return 2;
      case Opcode::LDBU:
      case Opcode::STB:
        return 1;
      default:
        NWSIM_PANIC("memAccessSize on non-memory op ", mnemonic(op));
    }
}

bool
loadSignExtends(Opcode op)
{
    return op == Opcode::LDL;
}

bool
immZeroExtends(Opcode op)
{
    return op == Opcode::ANDI || op == Opcode::ORI || op == Opcode::XORI;
}

} // namespace nwsim
