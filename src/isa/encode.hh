/**
 * @file
 * Binary encoding and decoding of nwsim instructions.
 *
 * 32-bit fixed-width words, Alpha-style field layout:
 *
 *     R:    op[31:26] fa[25:21] fb[20:16] zero[15:5] fc[4:0]
 *     I:    op[31:26] fa[25:21] fb[20:16] imm16[15:0]
 *     B:    op[31:26] fa[25:21] disp21[20:0]
 *     J:    op[31:26] fa[25:21] fb[20:16] zero[15:0]
 *     None: op[31:26] zero[25:0]
 *
 * The mapping from encoding fields (fa/fb/fc) to dataflow roles
 * (ra/rb/rc on Inst) is format- and opcode-dependent; see encode.cc.
 */

#ifndef NWSIM_ISA_ENCODE_HH
#define NWSIM_ISA_ENCODE_HH

#include <optional>

#include "isa/inst.hh"

namespace nwsim
{

/** Machine-code word type. */
using MachineWord = u32;

/**
 * Encode a normalized instruction into a machine word.
 *
 * @pre inst's fields follow the dataflow-role conventions documented on
 *      Inst (the assembler produces these; see Assembler).
 */
MachineWord encode(const Inst &inst);

/**
 * Decode a machine word into a normalized instruction.
 *
 * Invalid encodings (opcode out of range) decode as NOP so that
 * wrong-path fetches into non-text memory never crash the simulator;
 * @p valid reports whether the word was a real instruction.
 */
Inst decode(MachineWord word, bool *valid = nullptr);

} // namespace nwsim

#endif // NWSIM_ISA_ENCODE_HH
