#include "isa/encode.hh"

#include "common/logging.hh"

namespace nwsim
{

namespace
{

/**
 * Map encoding fields (fa, fb, fc) into dataflow roles for @p inst.op.
 * Kept as the single point of truth used by both decode() and the
 * assembler path (via normalizeInst).
 */
void
applyRoles(Inst &inst, RegIndex fa, RegIndex fb, RegIndex fc)
{
    const OpInfo &info = opInfo(inst.op);
    inst.ra = zeroReg;
    inst.rb = zeroReg;
    inst.rc = zeroReg;
    switch (info.format) {
      case Format::R:
        inst.ra = fa;
        inst.rb = fb;
        inst.rc = fc;
        break;
      case Format::I:
        if (info.opClass == OpClass::MemWrite) {
            inst.ra = fa;   // base
            inst.rb = fb;   // store data
        } else {
            inst.ra = fa;   // source
            inst.rc = fb;   // destination
        }
        break;
      case Format::B:
        if (inst.op == Opcode::BR)
            inst.rc = fa;   // link register
        else
            inst.ra = fa;   // condition register
        break;
      case Format::J:
        if (inst.op == Opcode::RET) {
            inst.rb = fb;   // jump target
        } else {
            inst.rc = fa;   // link register
            inst.rb = fb;   // jump target
        }
        break;
      case Format::None:
        break;
    }
    // Writes to r31 are architecturally discarded; normalize them away so
    // dependence logic can rely on rc != zeroReg meaning "produces a
    // value".
    if (inst.rc == zeroReg)
        inst.rc = zeroReg;
}

/** Inverse of applyRoles: recover encoding fields from dataflow roles. */
void
extractRoles(const Inst &inst, RegIndex &fa, RegIndex &fb, RegIndex &fc)
{
    const OpInfo &info = opInfo(inst.op);
    fa = zeroReg;
    fb = zeroReg;
    fc = zeroReg;
    switch (info.format) {
      case Format::R:
        fa = inst.ra;
        fb = inst.rb;
        fc = inst.rc;
        break;
      case Format::I:
        if (info.opClass == OpClass::MemWrite) {
            fa = inst.ra;
            fb = inst.rb;
        } else {
            fa = inst.ra;
            fb = inst.rc;
        }
        break;
      case Format::B:
        fa = (inst.op == Opcode::BR) ? inst.rc : inst.ra;
        break;
      case Format::J:
        if (inst.op == Opcode::RET) {
            fb = inst.rb;
        } else {
            fa = inst.rc;
            fb = inst.rb;
        }
        break;
      case Format::None:
        break;
    }
}

} // namespace

void
normalizeInst(Inst &inst)
{
    applyRoles(inst, inst.ra, inst.rb, inst.rc);
}

MachineWord
encode(const Inst &inst)
{
    const OpInfo &info = opInfo(inst.op);
    RegIndex fa, fb, fc;
    extractRoles(inst, fa, fb, fc);

    u32 word = static_cast<u32>(
        insertBits(static_cast<u64>(inst.op), 31, 26));
    switch (info.format) {
      case Format::R:
        word |= insertBits(fa, 25, 21);
        word |= insertBits(fb, 20, 16);
        word |= insertBits(fc, 4, 0);
        break;
      case Format::I:
        if (immZeroExtends(inst.op)) {
            NWSIM_ASSERT(inst.imm >= 0 && inst.imm <= 0xffff,
                         "imm16 out of range: ", inst.imm, " in ",
                         info.mnemonic);
        } else {
            NWSIM_ASSERT(inst.imm >= -32768 && inst.imm <= 32767,
                         "imm16 out of range: ", inst.imm, " in ",
                         info.mnemonic);
        }
        word |= insertBits(fa, 25, 21);
        word |= insertBits(fb, 20, 16);
        word |= insertBits(static_cast<u64>(inst.imm), 15, 0);
        break;
      case Format::B:
        NWSIM_ASSERT(inst.disp >= -(1 << 20) && inst.disp < (1 << 20),
                     "disp21 out of range: ", inst.disp, " in ",
                     info.mnemonic);
        word |= insertBits(fa, 25, 21);
        word |= insertBits(static_cast<u64>(inst.disp), 20, 0);
        break;
      case Format::J:
        word |= insertBits(fa, 25, 21);
        word |= insertBits(fb, 20, 16);
        break;
      case Format::None:
        break;
    }
    return word;
}

Inst
decode(MachineWord word, bool *valid)
{
    const u8 opfield = static_cast<u8>(bits(word, 31, 26));
    Inst inst;
    if (opfield >= static_cast<u8>(Opcode::NumOpcodes)) {
        // Wrong-path fetch of non-code bytes: treat as a NOP.
        inst.op = Opcode::NOP;
        if (valid)
            *valid = false;
        return inst;
    }
    if (valid)
        *valid = true;
    inst.op = static_cast<Opcode>(opfield);
    const OpInfo &info = opInfo(inst.op);
    const auto fa = static_cast<RegIndex>(bits(word, 25, 21));
    const auto fb = static_cast<RegIndex>(bits(word, 20, 16));
    const auto fc = static_cast<RegIndex>(bits(word, 4, 0));
    applyRoles(inst, fa, fb, fc);
    if (info.format == Format::I) {
        const u64 raw = bits(word, 15, 0);
        inst.imm = immZeroExtends(inst.op)
                       ? static_cast<i64>(raw)
                       : static_cast<i64>(sext(raw, 16));
    }
    if (info.format == Format::B)
        inst.disp = static_cast<i64>(sext(bits(word, 20, 0), 21));
    return inst;
}

} // namespace nwsim
