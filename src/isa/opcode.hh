/**
 * @file
 * The nwsim ISA: a 64-bit Alpha-like RISC.
 *
 * The paper's simulator (SimpleScalar sim-outorder) ran DEC Alpha
 * binaries. We define a compact ISA with the same properties the
 * narrow-width analysis relies on: 64-bit two's-complement quadword datum,
 * 32 integer registers with r31 hardwired to zero, 16-bit immediates,
 * displacement branches, and distinct adder / multiplier / logic / shifter
 * operation classes (the device classes of the paper's Table 4 power
 * model).
 */

#ifndef NWSIM_ISA_OPCODE_HH
#define NWSIM_ISA_OPCODE_HH

#include <string_view>

#include "common/types.hh"

namespace nwsim
{

/** Every architectural operation, one 6-bit primary opcode each. */
enum class Opcode : u8
{
    // R-type: rc <- ra OP rb
    ADD, SUB, MUL, DIV, REM,
    AND, OR, XOR, BIC,
    SLL, SRL, SRA,
    CMPEQ, CMPLT, CMPLE, CMPULT, CMPULE,
    SEXTB, SEXTW,

    // I-type: rc <- ra OP sext(imm16)
    ADDI, SUBI, MULI,
    ANDI, ORI, XORI,
    SLLI, SRLI, SRAI,
    CMPEQI, CMPLTI, CMPLEI,
    LDAH,       // rc <- ra + (sext(imm16) << 16): constant building

    // Memory, I-type addressing: ea = ra + sext(imm16)
    LDQ, LDL, LDWU, LDBU,
    STQ, STL, STW, STB,

    // Branches, B-type: if cond(ra) goto pc + 4 + 4*sext(disp21)
    BEQ, BNE, BLT, BLE, BGT, BGE,
    BR,         // unconditional; ra <- pc + 4 (link)

    // Jumps, J-type
    JMP,        // ra <- pc + 4; goto rb
    JSR,        // ra <- pc + 4; goto rb; pushes return-address stack
    RET,        // goto rb; pops return-address stack

    NOP,
    HALT,       // stop simulation

    NumOpcodes,
};

/** Functional-unit / scheduling class of an operation. */
enum class OpClass : u8
{
    IntAlu,     ///< add/sub/compare on the integer ALU's adder
    IntMult,    ///< multiply (pipelined multiplier)
    IntDiv,     ///< divide/remainder (unpipelined multiplier-side unit)
    Logic,      ///< bit-wise logic / sign extension
    Shift,      ///< barrel shifter
    MemRead,    ///< load (address generation on an ALU adder)
    MemWrite,   ///< store (address generation on an ALU adder)
    Branch,     ///< conditional/unconditional displacement branch
    Jump,       ///< indirect jump/call/return
    Other,      ///< nop/halt: no functional unit
};

/**
 * Which Table 4 device an operation exercises, for the clock-gating power
 * model. Address generation (loads/stores/branches) uses the adder.
 */
enum class DeviceClass : u8
{
    Adder,
    Multiplier,
    BitwiseLogic,
    Shifter,
    None,
};

/**
 * Packing-equivalence key (paper Section 5.2: packed instructions "must
 * perform the same operation"). Register and immediate forms of one ALU
 * operation share a key because the functional unit performs the identical
 * subword operation; ops that cannot be packed map to PackKey::None.
 */
enum class PackKey : u8
{
    None,
    Add, Sub,
    And, Or, Xor, Bic,
    Sll, Srl, Sra,
    CmpEq, CmpLt, CmpLe, CmpUlt, CmpUle,
    SextB, SextW,
};

/** Instruction encoding format. */
enum class Format : u8
{
    R,          ///< op ra rb rc
    I,          ///< op ra rc imm16
    B,          ///< op ra disp21
    J,          ///< op ra rb
    None,       ///< op only (NOP, HALT)
};

/** Static metadata for one opcode. */
struct OpInfo
{
    std::string_view mnemonic;
    Format format;
    OpClass opClass;
    DeviceClass device;
    PackKey packKey;
    /** Execution latency in cycles once issued. */
    u8 latency;
    /** Whether a new op of this class can start every cycle. */
    bool pipelined;
    /** Replay packing (Section 5.3) applies: add/sub-style carry shape. */
    bool replayPackable;
};

/** Look up the static metadata for @p op. */
const OpInfo &opInfo(Opcode op);

/** Mnemonic helper. */
std::string_view mnemonic(Opcode op);

/** True for conditional branches (BEQ..BGE, not BR). */
bool isCondBranch(Opcode op);

/** True for any control transfer (branches and jumps). */
bool isControl(Opcode op);

/** True for loads. */
bool isLoad(Opcode op);

/** True for stores. */
bool isStore(Opcode op);

/** Size in bytes of the memory access performed by a load/store. */
unsigned memAccessSize(Opcode op);

/** True if the load zero- or sign-extends (LDL sign, LDWU/LDBU zero). */
bool loadSignExtends(Opcode op);

/**
 * True if the 16-bit immediate zero-extends rather than sign-extends.
 * Logical immediates (andi/ori/xori) zero-extend, as Alpha logical
 * literals do; this makes wide-constant synthesis (ori/slli chains) and
 * low-half masking (andi rd, rs, 0xffff) direct.
 */
bool immZeroExtends(Opcode op);

} // namespace nwsim

#endif // NWSIM_ISA_OPCODE_HH
