/**
 * @file
 * Textual disassembly of nwsim instructions, in the same syntax the
 * text assembler accepts (round-trippable).
 */

#ifndef NWSIM_ISA_DISASM_HH
#define NWSIM_ISA_DISASM_HH

#include <string>

#include "isa/inst.hh"

namespace nwsim
{

/**
 * Disassemble @p inst. If @p pc is provided, branch displacements are
 * shown as absolute targets; otherwise as relative word displacements.
 */
std::string disassemble(const Inst &inst);
std::string disassemble(const Inst &inst, Addr pc);

} // namespace nwsim

#endif // NWSIM_ISA_DISASM_HH
