/**
 * @file
 * Decoded-instruction representation shared by the functional simulator,
 * the out-of-order pipeline, and the assembler.
 */

#ifndef NWSIM_ISA_INST_HH
#define NWSIM_ISA_INST_HH

#include "common/bitops.hh"
#include "common/types.hh"
#include "isa/opcode.hh"

namespace nwsim
{

/**
 * A fully decoded instruction. All fields are normalized: immediates are
 * already sign-extended, and register fields that a format does not use
 * are set to the zero register so dependence logic can treat every
 * instruction uniformly (reads ra, rb; writes rc).
 */
struct Inst
{
    Opcode op = Opcode::NOP;
    /** First source register (also the condition register for branches). */
    RegIndex ra = zeroReg;
    /** Second source register (R/J formats). */
    RegIndex rb = zeroReg;
    /** Destination register (zeroReg when no register is written). */
    RegIndex rc = zeroReg;
    /** Sign-extended 16-bit immediate (I format). */
    i64 imm = 0;
    /** Sign-extended 21-bit word displacement (B format). */
    i64 disp = 0;

    /** True if the second dataflow operand is the immediate. */
    bool
    usesImm() const
    {
        return opInfo(op).format == Format::I;
    }

    /** True if this instruction writes an architected register. */
    bool
    writesReg() const
    {
        return rc != zeroReg;
    }

    /** Branch/link target for a B-format instruction at @p pc. */
    Addr
    branchTarget(Addr pc) const
    {
        return pc + 4 + static_cast<Addr>(disp * 4);
    }
};

/**
 * Normalize per-format register roles into the uniform (ra, rb, rc)
 * dataflow view described on Inst. Called by both the decoder and the
 * assembler so the two can never disagree.
 */
void normalizeInst(Inst &inst);

/** True for calls: JSR, or BR with a live link register ("bsr"). */
inline bool
isCall(const Inst &inst)
{
    return inst.op == Opcode::JSR ||
           (inst.op == Opcode::BR && inst.rc != zeroReg);
}

/** True for returns (pops the return-address stack). */
inline bool
isReturn(const Inst &inst)
{
    return inst.op == Opcode::RET;
}

/** True for register-indirect control transfers (target not in encoding). */
inline bool
isIndirectControl(const Inst &inst)
{
    return opInfo(inst.op).opClass == OpClass::Jump;
}

} // namespace nwsim

#endif // NWSIM_ISA_INST_HH
