#include "isa/disasm.hh"

#include <sstream>

#include "common/strings.hh"

namespace nwsim
{

namespace
{

std::string
reg(RegIndex r)
{
    return "r" + std::to_string(static_cast<int>(r));
}

std::string
disasmCommon(const Inst &inst, bool have_pc, Addr pc)
{
    const OpInfo &info = opInfo(inst.op);
    std::ostringstream os;
    os << info.mnemonic;
    switch (info.format) {
      case Format::R:
        if (inst.op == Opcode::SEXTB || inst.op == Opcode::SEXTW)
            os << " " << reg(inst.rc) << ", " << reg(inst.ra);
        else
            os << " " << reg(inst.rc) << ", " << reg(inst.ra) << ", "
               << reg(inst.rb);
        break;
      case Format::I:
        if (info.opClass == OpClass::MemRead) {
            os << " " << reg(inst.rc) << ", " << inst.imm << "("
               << reg(inst.ra) << ")";
        } else if (info.opClass == OpClass::MemWrite) {
            os << " " << reg(inst.rb) << ", " << inst.imm << "("
               << reg(inst.ra) << ")";
        } else {
            os << " " << reg(inst.rc) << ", " << reg(inst.ra) << ", "
               << inst.imm;
        }
        break;
      case Format::B:
        if (inst.op == Opcode::BR)
            os << " " << reg(inst.rc) << ", ";
        else
            os << " " << reg(inst.ra) << ", ";
        if (have_pc)
            os << hexString(inst.branchTarget(pc));
        else
            os << "." << (inst.disp >= 0 ? "+" : "") << inst.disp;
        break;
      case Format::J:
        if (inst.op == Opcode::RET)
            os << " " << reg(inst.rb);
        else
            os << " " << reg(inst.rc) << ", " << reg(inst.rb);
        break;
      case Format::None:
        break;
    }
    return os.str();
}

} // namespace

std::string
disassemble(const Inst &inst)
{
    return disasmCommon(inst, false, 0);
}

std::string
disassemble(const Inst &inst, Addr pc)
{
    return disasmCommon(inst, true, pc);
}

} // namespace nwsim
