#include "asm/textasm.hh"

#include <sstream>

#include "asm/assembler.hh"
#include "common/logging.hh"
#include "common/strings.hh"

namespace nwsim
{

namespace
{

/** Parsing context for one assembly run. */
class TextAsm
{
  public:
    Program
    run(const std::string &source)
    {
        std::istringstream in(source);
        std::string line;
        while (std::getline(in, line)) {
            ++lineNo;
            process(line);
        }
        return as.assemble();
    }

  private:
    [[noreturn]] void
    syntaxError(const std::string &what)
    {
        NWSIM_FATAL("textasm line ", lineNo, ": ", what);
    }

    static std::string
    stripComment(const std::string &line)
    {
        const size_t pos = line.find_first_of(";#");
        return pos == std::string::npos ? line : line.substr(0, pos);
    }

    RegIndex
    parseReg(const std::string &tok)
    {
        if (tok.size() < 2 || (tok[0] != 'r' && tok[0] != 'R'))
            syntaxError("expected register, got '" + tok + "'");
        int n = 0;
        for (size_t i = 1; i < tok.size(); ++i) {
            if (!std::isdigit(static_cast<unsigned char>(tok[i])))
                syntaxError("bad register '" + tok + "'");
            n = n * 10 + (tok[i] - '0');
        }
        if (n >= numIntRegs)
            syntaxError("register out of range '" + tok + "'");
        return static_cast<RegIndex>(n);
    }

    i64
    parseInt(const std::string &tok)
    {
        try {
            size_t used = 0;
            const i64 v = static_cast<i64>(std::stoll(tok, &used, 0));
            if (used != tok.size())
                syntaxError("bad integer '" + tok + "'");
            return v;
        } catch (const std::exception &) {
            syntaxError("bad integer '" + tok + "'");
        }
    }

    /** Parse "offset(base)" memory operand syntax. */
    void
    parseMemOperand(const std::string &tok, i64 &offset, RegIndex &base)
    {
        const size_t lp = tok.find('(');
        const size_t rp = tok.find(')');
        if (lp == std::string::npos || rp == std::string::npos || rp < lp)
            syntaxError("expected offset(base), got '" + tok + "'");
        const std::string off = tok.substr(0, lp);
        offset = off.empty() ? 0 : parseInt(off);
        base = parseReg(tok.substr(lp + 1, rp - lp - 1));
    }

    void
    process(const std::string &raw)
    {
        std::string line = trim(stripComment(raw));
        while (!line.empty()) {
            const size_t colon = line.find(':');
            // A colon before any whitespace-separated operand = label.
            const size_t space = line.find_first_of(" \t");
            if (colon != std::string::npos &&
                (space == std::string::npos || colon < space)) {
                const std::string name = trim(line.substr(0, colon));
                if (name.empty())
                    syntaxError("empty label");
                if (inData)
                    as.dataLabel(name);
                else
                    as.label(name);
                line = trim(line.substr(colon + 1));
                continue;
            }
            statement(line);
            return;
        }
    }

    void
    statement(const std::string &line)
    {
        std::vector<std::string> tok = tokenize(line, " \t,");
        const std::string op = toLower(tok[0]);
        if (op == ".text") {
            inData = false;
        } else if (op == ".data") {
            inData = true;
        } else if (op[0] == '.') {
            directive(op, tok);
        } else {
            instruction(op, tok);
        }
    }

    void
    directive(const std::string &op, const std::vector<std::string> &tok)
    {
        if (op == ".quad") {
            for (size_t i = 1; i < tok.size(); ++i) {
                if (std::isdigit(static_cast<unsigned char>(tok[i][0])) ||
                    tok[i][0] == '-') {
                    as.dataQuad(static_cast<u64>(parseInt(tok[i])));
                } else {
                    as.dataQuadSym(tok[i]);
                }
            }
        } else if (op == ".long") {
            for (size_t i = 1; i < tok.size(); ++i)
                as.dataLong(static_cast<u32>(parseInt(tok[i])));
        } else if (op == ".word") {
            for (size_t i = 1; i < tok.size(); ++i)
                as.dataWord(static_cast<u16>(parseInt(tok[i])));
        } else if (op == ".byte") {
            for (size_t i = 1; i < tok.size(); ++i)
                as.dataByte(static_cast<u8>(parseInt(tok[i])));
        } else if (op == ".zero") {
            if (tok.size() != 2)
                syntaxError(".zero needs a count");
            as.dataZeros(static_cast<size_t>(parseInt(tok[1])));
        } else if (op == ".align") {
            if (tok.size() != 2)
                syntaxError(".align needs a value");
            as.alignData(static_cast<unsigned>(parseInt(tok[1])));
        } else {
            syntaxError("unknown directive '" + op + "'");
        }
    }

    void
    need(const std::vector<std::string> &tok, size_t operands)
    {
        if (tok.size() != operands + 1)
            syntaxError("'" + tok[0] + "' expects " +
                        std::to_string(operands) + " operands");
    }

    void
    instruction(const std::string &op, const std::vector<std::string> &tok)
    {
        if (inData)
            syntaxError("instruction in .data section");

        // Pseudo-ops first.
        if (op == "li") {
            need(tok, 2);
            as.li(parseReg(tok[1]), parseInt(tok[2]));
            return;
        }
        if (op == "la") {
            need(tok, 2);
            as.la(parseReg(tok[1]), tok[2]);
            return;
        }
        if (op == "mov") {
            need(tok, 2);
            as.mov(parseReg(tok[1]), parseReg(tok[2]));
            return;
        }
        if (op == "call") {
            need(tok, 1);
            as.call(tok[1]);
            return;
        }

        // Real mnemonics: find the opcode.
        Opcode opcode = Opcode::NumOpcodes;
        for (int i = 0; i < static_cast<int>(Opcode::NumOpcodes); ++i) {
            if (mnemonic(static_cast<Opcode>(i)) == op) {
                opcode = static_cast<Opcode>(i);
                break;
            }
        }
        if (opcode == Opcode::NumOpcodes)
            syntaxError("unknown mnemonic '" + op + "'");

        const OpInfo &info = opInfo(opcode);
        Inst inst;
        inst.op = opcode;
        switch (info.format) {
          case Format::R:
            if (opcode == Opcode::SEXTB || opcode == Opcode::SEXTW) {
                need(tok, 2);
                inst.rc = parseReg(tok[1]);
                inst.ra = parseReg(tok[2]);
            } else {
                need(tok, 3);
                inst.rc = parseReg(tok[1]);
                inst.ra = parseReg(tok[2]);
                inst.rb = parseReg(tok[3]);
            }
            break;
          case Format::I:
            if (info.opClass == OpClass::MemRead) {
                need(tok, 2);
                inst.rc = parseReg(tok[1]);
                parseMemOperand(tok[2], inst.imm, inst.ra);
            } else if (info.opClass == OpClass::MemWrite) {
                need(tok, 2);
                inst.rb = parseReg(tok[1]);
                parseMemOperand(tok[2], inst.imm, inst.ra);
            } else {
                need(tok, 3);
                inst.rc = parseReg(tok[1]);
                inst.ra = parseReg(tok[2]);
                inst.imm = parseInt(tok[3]);
            }
            break;
          case Format::B: {
            // "br label" | "br rN, label" | "beq rN, label"
            std::string target;
            if (opcode == Opcode::BR && tok.size() == 2) {
                target = tok[1];
            } else {
                need(tok, 2);
                if (opcode == Opcode::BR)
                    inst.rc = parseReg(tok[1]);
                else
                    inst.ra = parseReg(tok[1]);
                target = tok[2];
            }
            if (opcode == Opcode::BR) {
                if (inst.rc == zeroReg)
                    as.br(target);
                else
                    as.brLink(inst.rc, target);
            } else {
                switch (opcode) {
                  case Opcode::BEQ: as.beq(inst.ra, target); break;
                  case Opcode::BNE: as.bne(inst.ra, target); break;
                  case Opcode::BLT: as.blt(inst.ra, target); break;
                  case Opcode::BLE: as.ble(inst.ra, target); break;
                  case Opcode::BGT: as.bgt(inst.ra, target); break;
                  case Opcode::BGE: as.bge(inst.ra, target); break;
                  default: syntaxError("bad branch");
                }
            }
            return;
          }
          case Format::J:
            if (opcode == Opcode::RET) {
                if (tok.size() == 1) {
                    as.ret();
                } else {
                    need(tok, 1);
                    as.ret(parseReg(tok[1]));
                }
            } else {
                need(tok, 2);
                if (opcode == Opcode::JMP)
                    as.jmp(parseReg(tok[1]), parseReg(tok[2]));
                else
                    as.jsr(parseReg(tok[1]), parseReg(tok[2]));
            }
            return;
          case Format::None:
            need(tok, 0);
            if (opcode == Opcode::NOP)
                as.nop();
            else
                as.halt();
            return;
        }

        // R and I formats fall through to a raw emit via the builder's
        // typed methods being bypassed: reconstruct through emit helpers.
        switch (info.format) {
          case Format::R:
            emitR(inst);
            break;
          case Format::I:
            emitI(inst);
            break;
          default:
            break;
        }
    }

    void
    emitR(const Inst &inst)
    {
        switch (inst.op) {
          case Opcode::ADD: as.add(inst.rc, inst.ra, inst.rb); break;
          case Opcode::SUB: as.sub(inst.rc, inst.ra, inst.rb); break;
          case Opcode::MUL: as.mul(inst.rc, inst.ra, inst.rb); break;
          case Opcode::DIV: as.div(inst.rc, inst.ra, inst.rb); break;
          case Opcode::REM: as.rem(inst.rc, inst.ra, inst.rb); break;
          case Opcode::AND: as.and_(inst.rc, inst.ra, inst.rb); break;
          case Opcode::OR: as.or_(inst.rc, inst.ra, inst.rb); break;
          case Opcode::XOR: as.xor_(inst.rc, inst.ra, inst.rb); break;
          case Opcode::BIC: as.bic(inst.rc, inst.ra, inst.rb); break;
          case Opcode::SLL: as.sll(inst.rc, inst.ra, inst.rb); break;
          case Opcode::SRL: as.srl(inst.rc, inst.ra, inst.rb); break;
          case Opcode::SRA: as.sra(inst.rc, inst.ra, inst.rb); break;
          case Opcode::CMPEQ: as.cmpeq(inst.rc, inst.ra, inst.rb); break;
          case Opcode::CMPLT: as.cmplt(inst.rc, inst.ra, inst.rb); break;
          case Opcode::CMPLE: as.cmple(inst.rc, inst.ra, inst.rb); break;
          case Opcode::CMPULT: as.cmpult(inst.rc, inst.ra, inst.rb); break;
          case Opcode::CMPULE: as.cmpule(inst.rc, inst.ra, inst.rb); break;
          case Opcode::SEXTB: as.sextb(inst.rc, inst.ra); break;
          case Opcode::SEXTW: as.sextw(inst.rc, inst.ra); break;
          default:
            syntaxError("bad R-type");
        }
    }

    void
    emitI(const Inst &inst)
    {
        switch (inst.op) {
          case Opcode::ADDI: as.addi(inst.rc, inst.ra, inst.imm); break;
          case Opcode::SUBI: as.subi(inst.rc, inst.ra, inst.imm); break;
          case Opcode::MULI: as.muli(inst.rc, inst.ra, inst.imm); break;
          case Opcode::ANDI: as.andi(inst.rc, inst.ra, inst.imm); break;
          case Opcode::ORI: as.ori(inst.rc, inst.ra, inst.imm); break;
          case Opcode::XORI: as.xori(inst.rc, inst.ra, inst.imm); break;
          case Opcode::SLLI: as.slli(inst.rc, inst.ra, inst.imm); break;
          case Opcode::SRLI: as.srli(inst.rc, inst.ra, inst.imm); break;
          case Opcode::SRAI: as.srai(inst.rc, inst.ra, inst.imm); break;
          case Opcode::CMPEQI: as.cmpeqi(inst.rc, inst.ra, inst.imm); break;
          case Opcode::CMPLTI: as.cmplti(inst.rc, inst.ra, inst.imm); break;
          case Opcode::CMPLEI: as.cmplei(inst.rc, inst.ra, inst.imm); break;
          case Opcode::LDAH: as.ldah(inst.rc, inst.ra, inst.imm); break;
          case Opcode::LDQ: as.ldq(inst.rc, inst.imm, inst.ra); break;
          case Opcode::LDL: as.ldl(inst.rc, inst.imm, inst.ra); break;
          case Opcode::LDWU: as.ldwu(inst.rc, inst.imm, inst.ra); break;
          case Opcode::LDBU: as.ldbu(inst.rc, inst.imm, inst.ra); break;
          case Opcode::STQ: as.stq(inst.rb, inst.imm, inst.ra); break;
          case Opcode::STL: as.stl(inst.rb, inst.imm, inst.ra); break;
          case Opcode::STW: as.stw(inst.rb, inst.imm, inst.ra); break;
          case Opcode::STB: as.stb(inst.rb, inst.imm, inst.ra); break;
          default:
            syntaxError("bad I-type");
        }
    }

    Assembler as;
    bool inData = false;
    int lineNo = 0;
};

} // namespace

Program
assembleText(const std::string &source)
{
    TextAsm ta;
    return ta.run(source);
}

} // namespace nwsim
