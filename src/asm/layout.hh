/**
 * @file
 * Standard memory layout for nwsim programs.
 *
 * Global data, heap, and stack all live just above 2^32 so that pointer
 * values are 33-bit quantities. This reproduces the address-calculation
 * behaviour behind the paper's Figure 1 ("there is a large jump at 33
 * bits. This corresponds to heap and stack references") and motivates the
 * 33-bit clock-gating control signal of Section 4.3 / Figure 5.
 */

#ifndef NWSIM_ASM_LAYOUT_HH
#define NWSIM_ASM_LAYOUT_HH

#include "common/types.hh"

namespace nwsim::layout
{

/** Base of the text (code) segment. */
constexpr Addr textBase = 0x10000;

/** Base of the static data segment (above 2^32: 33-bit pointers). */
constexpr Addr dataBase = Addr{1} << 32;

/** Base of the heap used by workloads that carve out dynamic storage. */
constexpr Addr heapBase = dataBase + 0x0800'0000;

/** Initial stack pointer (stack grows down). */
constexpr Addr stackTop = dataBase + 0x1000'0000;

} // namespace nwsim::layout

#endif // NWSIM_ASM_LAYOUT_HH
