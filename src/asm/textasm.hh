/**
 * @file
 * Two-pass textual assembler built on Assembler.
 *
 * Accepts the same syntax the disassembler emits, plus labels, comments
 * (';' or '#'), and data directives:
 *
 *     .text              ; switch to code emission (default)
 *     .data              ; switch to data emission
 *     loop:              ; bind a label in the current segment
 *     addi r1, r31, 5
 *     ldq  r2, 8(r3)
 *     stw  r2, -4(r30)
 *     beq  r1, loop
 *     li   r4, 0x123456789abc   ; pseudo-op
 *     la   r5, table            ; pseudo-op
 *     call fn                   ; pseudo-op (brLink r26)
 *     mov  r6, r7               ; pseudo-op
 *     .quad 1, 2, sym    ; 8-byte values or symbol addresses
 *     .long 7             .word 3    .byte 0xff
 *     .zero 128          ; zero fill
 *     .align 8
 */

#ifndef NWSIM_ASM_TEXTASM_HH
#define NWSIM_ASM_TEXTASM_HH

#include <string>

#include "asm/program.hh"

namespace nwsim
{

/** Assemble @p source; fatal (with line number) on syntax errors. */
Program assembleText(const std::string &source);

} // namespace nwsim

#endif // NWSIM_ASM_TEXTASM_HH
