#include "asm/program.hh"

#include "common/logging.hh"
#include "mem/sparse_memory.hh"

namespace nwsim
{

void
Program::load(SparseMemory &memory) const
{
    for (const Segment &seg : segments)
        memory.writeBlock(seg.base, seg.bytes.data(), seg.bytes.size());
}

Addr
Program::symbol(const std::string &name) const
{
    const auto it = symbols.find(name);
    if (it == symbols.end())
        NWSIM_FATAL("undefined symbol: ", name);
    return it->second;
}

size_t
Program::imageBytes() const
{
    size_t total = 0;
    for (const Segment &seg : segments)
        total += seg.bytes.size();
    return total;
}

Addr
Program::textEnd() const
{
    NWSIM_ASSERT(!segments.empty(), "empty program");
    return segments.front().base + segments.front().bytes.size();
}

} // namespace nwsim
