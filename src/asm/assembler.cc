#include "asm/assembler.hh"

#include "common/bitops.hh"
#include "common/logging.hh"

namespace nwsim
{

Assembler::Assembler(Addr text_base, Addr data_base)
    : textBase(text_base), dataBase(data_base)
{
    NWSIM_ASSERT(isAligned(text_base, 4), "text base must be word aligned");
}

// ---- Labels and cursors -------------------------------------------------

void
Assembler::label(const std::string &name)
{
    bind(name, here());
}

Addr
Assembler::dataLabel(const std::string &name)
{
    bind(name, dataHere());
    return dataHere();
}

Addr
Assembler::here() const
{
    return textBase + 4 * text.size();
}

Addr
Assembler::dataHere() const
{
    return dataBase + data.size();
}

void
Assembler::bind(const std::string &name, Addr addr)
{
    const auto [it, inserted] = symbols.emplace(name, addr);
    if (!inserted)
        NWSIM_FATAL("duplicate label: ", name);
}

Addr
Assembler::lookup(const std::string &name) const
{
    const auto it = symbols.find(name);
    if (it == symbols.end())
        NWSIM_FATAL("undefined label: ", name);
    return it->second;
}

// ---- Emission helpers ----------------------------------------------------

void
Assembler::emit(const Inst &inst)
{
    NWSIM_ASSERT(!assembled, "emit after assemble()");
    text.push_back(encode(inst));
}

void
Assembler::emitR(Opcode op, RegIndex rc, RegIndex ra, RegIndex rb)
{
    Inst inst;
    inst.op = op;
    inst.ra = ra;
    inst.rb = rb;
    inst.rc = rc;
    emit(inst);
}

void
Assembler::emitI(Opcode op, RegIndex rc, RegIndex ra, i64 imm)
{
    Inst inst;
    inst.op = op;
    inst.ra = ra;
    inst.rc = rc;
    inst.imm = imm;
    emit(inst);
}

void
Assembler::emitMem(Opcode op, RegIndex reg, i64 offset, RegIndex base)
{
    Inst inst;
    inst.op = op;
    inst.ra = base;
    inst.imm = offset;
    if (isStore(op))
        inst.rb = reg;
    else
        inst.rc = reg;
    emit(inst);
}

void
Assembler::emitBranch(Opcode op, RegIndex ra, RegIndex link,
                      const std::string &target)
{
    Inst inst;
    inst.op = op;
    inst.ra = ra;
    inst.rc = link;
    inst.disp = 0;
    fixups.push_back({FixupKind::BranchDisp, text.size(), target});
    emit(inst);
}

// ---- Instruction mnemonics ------------------------------------------------

#define NWSIM_DEF_R3(name, OP) \
    void Assembler::name(RegIndex rc, RegIndex ra, RegIndex rb) \
    { emitR(Opcode::OP, rc, ra, rb); }

NWSIM_DEF_R3(add, ADD)
NWSIM_DEF_R3(sub, SUB)
NWSIM_DEF_R3(mul, MUL)
NWSIM_DEF_R3(div, DIV)
NWSIM_DEF_R3(rem, REM)
NWSIM_DEF_R3(and_, AND)
NWSIM_DEF_R3(or_, OR)
NWSIM_DEF_R3(xor_, XOR)
NWSIM_DEF_R3(bic, BIC)
NWSIM_DEF_R3(sll, SLL)
NWSIM_DEF_R3(srl, SRL)
NWSIM_DEF_R3(sra, SRA)
NWSIM_DEF_R3(cmpeq, CMPEQ)
NWSIM_DEF_R3(cmplt, CMPLT)
NWSIM_DEF_R3(cmple, CMPLE)
NWSIM_DEF_R3(cmpult, CMPULT)
NWSIM_DEF_R3(cmpule, CMPULE)

#undef NWSIM_DEF_R3

void
Assembler::sextb(RegIndex rc, RegIndex ra)
{
    emitR(Opcode::SEXTB, rc, ra, zeroReg);
}

void
Assembler::sextw(RegIndex rc, RegIndex ra)
{
    emitR(Opcode::SEXTW, rc, ra, zeroReg);
}

#define NWSIM_DEF_I(name, OP) \
    void Assembler::name(RegIndex rc, RegIndex ra, i64 imm) \
    { emitI(Opcode::OP, rc, ra, imm); }

NWSIM_DEF_I(addi, ADDI)
NWSIM_DEF_I(subi, SUBI)
NWSIM_DEF_I(muli, MULI)
NWSIM_DEF_I(andi, ANDI)
NWSIM_DEF_I(ori, ORI)
NWSIM_DEF_I(xori, XORI)
NWSIM_DEF_I(slli, SLLI)
NWSIM_DEF_I(srli, SRLI)
NWSIM_DEF_I(srai, SRAI)
NWSIM_DEF_I(cmpeqi, CMPEQI)
NWSIM_DEF_I(cmplti, CMPLTI)
NWSIM_DEF_I(cmplei, CMPLEI)
NWSIM_DEF_I(ldah, LDAH)

#undef NWSIM_DEF_I

#define NWSIM_DEF_MEM(name, OP) \
    void Assembler::name(RegIndex reg, i64 offset, RegIndex base) \
    { emitMem(Opcode::OP, reg, offset, base); }

NWSIM_DEF_MEM(ldq, LDQ)
NWSIM_DEF_MEM(ldl, LDL)
NWSIM_DEF_MEM(ldwu, LDWU)
NWSIM_DEF_MEM(ldbu, LDBU)
NWSIM_DEF_MEM(stq, STQ)
NWSIM_DEF_MEM(stl, STL)
NWSIM_DEF_MEM(stw, STW)
NWSIM_DEF_MEM(stb, STB)

#undef NWSIM_DEF_MEM

#define NWSIM_DEF_BR(name, OP) \
    void Assembler::name(RegIndex ra, const std::string &target) \
    { emitBranch(Opcode::OP, ra, zeroReg, target); }

NWSIM_DEF_BR(beq, BEQ)
NWSIM_DEF_BR(bne, BNE)
NWSIM_DEF_BR(blt, BLT)
NWSIM_DEF_BR(ble, BLE)
NWSIM_DEF_BR(bgt, BGT)
NWSIM_DEF_BR(bge, BGE)

#undef NWSIM_DEF_BR

void
Assembler::br(const std::string &target)
{
    emitBranch(Opcode::BR, zeroReg, zeroReg, target);
}

void
Assembler::brLink(RegIndex link, const std::string &target)
{
    emitBranch(Opcode::BR, zeroReg, link, target);
}

void
Assembler::jmp(RegIndex link, RegIndex rb)
{
    Inst inst;
    inst.op = Opcode::JMP;
    inst.rc = link;
    inst.rb = rb;
    emit(inst);
}

void
Assembler::jsr(RegIndex link, RegIndex rb)
{
    Inst inst;
    inst.op = Opcode::JSR;
    inst.rc = link;
    inst.rb = rb;
    emit(inst);
}

void
Assembler::ret(RegIndex rb)
{
    Inst inst;
    inst.op = Opcode::RET;
    inst.rb = rb;
    emit(inst);
}

void
Assembler::nop()
{
    emit(Inst{});
}

void
Assembler::halt()
{
    Inst inst;
    inst.op = Opcode::HALT;
    emit(inst);
}

// ---- Pseudo-ops ------------------------------------------------------------

void
Assembler::mov(RegIndex rc, RegIndex ra)
{
    ori(rc, ra, 0);
}

void
Assembler::li(RegIndex rc, i64 value)
{
    if (fitsSigned(static_cast<u64>(value), 16)) {
        addi(rc, zeroReg, value);
        return;
    }
    if (fitsSigned(static_cast<u64>(value), 32)) {
        const i64 lo = static_cast<i64>(sext(static_cast<u64>(value), 16));
        const i64 hi = (value - lo) >> 16;
        // Values just below 2^31 make the carry-adjusted high part
        // overflow imm16 (e.g. 0x7fffffff -> hi = 0x8000); those fall
        // through to the general chunked form.
        if (hi >= -32768 && hi <= 32767) {
            ldah(rc, zeroReg, hi);
            if (lo != 0)
                addi(rc, rc, lo);
            return;
        }
    }
    // General case: build 16 bits at a time from the top.
    bool started = false;
    for (int chunk = 3; chunk >= 0; --chunk) {
        const i64 piece =
            static_cast<i64>((static_cast<u64>(value) >> (16 * chunk)) &
                             0xffff);
        if (!started) {
            if (piece == 0 && chunk > 0)
                continue;
            ori(rc, zeroReg, piece);
            started = true;
        } else {
            slli(rc, rc, 16);
            if (piece != 0)
                ori(rc, rc, piece);
        }
    }
}

void
Assembler::la(RegIndex rc, const std::string &sym)
{
    // Fixed-length so forward references assemble identically: three
    // 16-bit chunks cover the 48-bit address space nwsim programs use.
    fixups.push_back({FixupKind::LoadAddress, text.size(), sym});
    ori(rc, zeroReg, 0);    // bits 47:32
    slli(rc, rc, 16);
    ori(rc, rc, 0);         // bits 31:16
    slli(rc, rc, 16);
    ori(rc, rc, 0);         // bits 15:0
}

void
Assembler::call(const std::string &fn)
{
    brLink(raReg, fn);
}

// ---- Data segment ----------------------------------------------------------

void
Assembler::dataByte(u8 value)
{
    data.push_back(value);
}

void
Assembler::dataWord(u16 value)
{
    for (int i = 0; i < 2; ++i)
        data.push_back(static_cast<u8>(value >> (8 * i)));
}

void
Assembler::dataLong(u32 value)
{
    for (int i = 0; i < 4; ++i)
        data.push_back(static_cast<u8>(value >> (8 * i)));
}

void
Assembler::dataQuad(u64 value)
{
    for (int i = 0; i < 8; ++i)
        data.push_back(static_cast<u8>(value >> (8 * i)));
}

void
Assembler::dataBytes(const std::vector<u8> &bytes)
{
    data.insert(data.end(), bytes.begin(), bytes.end());
}

void
Assembler::dataZeros(size_t count)
{
    data.insert(data.end(), count, 0);
}

void
Assembler::alignData(unsigned bytes)
{
    NWSIM_ASSERT(bytes && (bytes & (bytes - 1)) == 0,
                 "alignment must be a power of two");
    while (data.size() % bytes != 0)
        data.push_back(0);
}

void
Assembler::dataQuadSym(const std::string &sym)
{
    fixups.push_back({FixupKind::DataPointer, data.size(), sym});
    dataQuad(0);
}

// ---- Final assembly ---------------------------------------------------------

Program
Assembler::assemble()
{
    NWSIM_ASSERT(!assembled, "assemble() called twice");
    assembled = true;

    for (const Fixup &fix : fixups) {
        const Addr target = lookup(fix.sym);
        switch (fix.kind) {
          case FixupKind::BranchDisp: {
            Inst inst = decode(text[fix.index]);
            const Addr pc = textBase + 4 * fix.index;
            const i64 disp =
                (static_cast<i64>(target) - static_cast<i64>(pc) - 4) / 4;
            inst.disp = disp;
            text[fix.index] = encode(inst);
            break;
          }
          case FixupKind::LoadAddress: {
            NWSIM_ASSERT(target < (Addr{1} << 48),
                         "la target above 48 bits: ", fix.sym);
            const u64 chunks[3] = {
                (target >> 32) & 0xffff,
                (target >> 16) & 0xffff,
                target & 0xffff,
            };
            // The la sequence is ori/slli/ori/slli/ori: patch words
            // 0, 2, 4 after the fixup point.
            for (int i = 0; i < 3; ++i) {
                Inst inst = decode(text[fix.index + 2 * i]);
                inst.imm = static_cast<i64>(chunks[i]);
                text[fix.index + 2 * i] = encode(inst);
            }
            break;
          }
          case FixupKind::DataPointer:
            for (int i = 0; i < 8; ++i)
                data[fix.index + i] = static_cast<u8>(target >> (8 * i));
            break;
        }
    }

    Program prog;
    prog.entry = textBase;
    Segment text_seg;
    text_seg.base = textBase;
    text_seg.bytes.resize(text.size() * 4);
    for (size_t i = 0; i < text.size(); ++i) {
        for (int b = 0; b < 4; ++b) {
            text_seg.bytes[4 * i + b] =
                static_cast<u8>(text[i] >> (8 * b));
        }
    }
    prog.segments.push_back(std::move(text_seg));
    if (!data.empty()) {
        Segment data_seg;
        data_seg.base = dataBase;
        data_seg.bytes = data;
        prog.segments.push_back(std::move(data_seg));
    }
    prog.symbols = symbols;
    return prog;
}

} // namespace nwsim
