/**
 * @file
 * Programmatic assembler: the API the workload kernels, tests, and the
 * text assembler all use to build nwsim programs.
 *
 * Supports forward references to code and data labels (two-pass via
 * fixups), a minimal-length `li` constant-synthesis pseudo-op, a
 * fixed-length `la` address-synthesis pseudo-op, and data-segment
 * emission with symbolic pointers (for jump tables and linked
 * structures).
 */

#ifndef NWSIM_ASM_ASSEMBLER_HH
#define NWSIM_ASM_ASSEMBLER_HH

#include <string>
#include <vector>

#include "asm/layout.hh"
#include "asm/program.hh"
#include "isa/encode.hh"

namespace nwsim
{

/** Two-pass assembler producing a loadable Program. */
class Assembler
{
  public:
    explicit Assembler(Addr text_base = layout::textBase,
                       Addr data_base = layout::dataBase);

    // ---- Labels and cursors -------------------------------------------

    /** Bind @p name to the current text position. */
    void label(const std::string &name);

    /** Bind @p name to the current data position and return it. */
    Addr dataLabel(const std::string &name);

    /** Current text PC. */
    Addr here() const;

    /** Current data cursor. */
    Addr dataHere() const;

    // ---- R-type --------------------------------------------------------

    void add(RegIndex rc, RegIndex ra, RegIndex rb);
    void sub(RegIndex rc, RegIndex ra, RegIndex rb);
    void mul(RegIndex rc, RegIndex ra, RegIndex rb);
    void div(RegIndex rc, RegIndex ra, RegIndex rb);
    void rem(RegIndex rc, RegIndex ra, RegIndex rb);
    void and_(RegIndex rc, RegIndex ra, RegIndex rb);
    void or_(RegIndex rc, RegIndex ra, RegIndex rb);
    void xor_(RegIndex rc, RegIndex ra, RegIndex rb);
    void bic(RegIndex rc, RegIndex ra, RegIndex rb);
    void sll(RegIndex rc, RegIndex ra, RegIndex rb);
    void srl(RegIndex rc, RegIndex ra, RegIndex rb);
    void sra(RegIndex rc, RegIndex ra, RegIndex rb);
    void cmpeq(RegIndex rc, RegIndex ra, RegIndex rb);
    void cmplt(RegIndex rc, RegIndex ra, RegIndex rb);
    void cmple(RegIndex rc, RegIndex ra, RegIndex rb);
    void cmpult(RegIndex rc, RegIndex ra, RegIndex rb);
    void cmpule(RegIndex rc, RegIndex ra, RegIndex rb);
    void sextb(RegIndex rc, RegIndex ra);
    void sextw(RegIndex rc, RegIndex ra);

    // ---- I-type --------------------------------------------------------

    void addi(RegIndex rc, RegIndex ra, i64 imm);
    void subi(RegIndex rc, RegIndex ra, i64 imm);
    void muli(RegIndex rc, RegIndex ra, i64 imm);
    void andi(RegIndex rc, RegIndex ra, i64 imm);
    void ori(RegIndex rc, RegIndex ra, i64 imm);
    void xori(RegIndex rc, RegIndex ra, i64 imm);
    void slli(RegIndex rc, RegIndex ra, i64 imm);
    void srli(RegIndex rc, RegIndex ra, i64 imm);
    void srai(RegIndex rc, RegIndex ra, i64 imm);
    void cmpeqi(RegIndex rc, RegIndex ra, i64 imm);
    void cmplti(RegIndex rc, RegIndex ra, i64 imm);
    void cmplei(RegIndex rc, RegIndex ra, i64 imm);
    void ldah(RegIndex rc, RegIndex ra, i64 imm);

    // ---- Memory (offset(base) addressing) ------------------------------

    void ldq(RegIndex rc, i64 offset, RegIndex base);
    void ldl(RegIndex rc, i64 offset, RegIndex base);
    void ldwu(RegIndex rc, i64 offset, RegIndex base);
    void ldbu(RegIndex rc, i64 offset, RegIndex base);
    void stq(RegIndex data, i64 offset, RegIndex base);
    void stl(RegIndex data, i64 offset, RegIndex base);
    void stw(RegIndex data, i64 offset, RegIndex base);
    void stb(RegIndex data, i64 offset, RegIndex base);

    // ---- Control flow --------------------------------------------------

    void beq(RegIndex ra, const std::string &target);
    void bne(RegIndex ra, const std::string &target);
    void blt(RegIndex ra, const std::string &target);
    void ble(RegIndex ra, const std::string &target);
    void bgt(RegIndex ra, const std::string &target);
    void bge(RegIndex ra, const std::string &target);

    /** Unconditional branch, no link. */
    void br(const std::string &target);

    /** Branch-and-link into @p link (predictor treats as a call). */
    void brLink(RegIndex link, const std::string &target);

    /** Indirect jump through @p rb, linking into @p link. */
    void jmp(RegIndex link, RegIndex rb);

    /** Indirect call through @p rb (pushes return-address stack). */
    void jsr(RegIndex link, RegIndex rb);

    /** Return through @p rb (pops return-address stack). */
    void ret(RegIndex rb = raReg);

    void nop();
    void halt();

    // ---- Pseudo-ops ----------------------------------------------------

    /** rc <- ra (encoded as ori rc, ra, 0). */
    void mov(RegIndex rc, RegIndex ra);

    /** Load a 64-bit constant with the shortest available sequence. */
    void li(RegIndex rc, i64 value);

    /** Load the address of @p sym (fixed 5-instruction sequence). */
    void la(RegIndex rc, const std::string &sym);

    /** Direct call: branch-and-link into the return-address register. */
    void call(const std::string &fn);

    // ---- Data segment --------------------------------------------------

    void dataByte(u8 value);
    void dataWord(u16 value);
    void dataLong(u32 value);
    void dataQuad(u64 value);
    void dataBytes(const std::vector<u8> &bytes);
    void dataZeros(size_t count);
    void alignData(unsigned bytes);

    /** Emit an 8-byte pointer to a (possibly forward) code/data label. */
    void dataQuadSym(const std::string &sym);

    // ---- Output --------------------------------------------------------

    /** Resolve all fixups and produce the final program image. */
    Program assemble();

    /** Number of instructions emitted so far. */
    size_t numInsts() const { return text.size(); }

  private:
    enum class FixupKind : u8
    {
        BranchDisp,     ///< patch disp21 of the branch at textIndex
        LoadAddress,    ///< patch the 3 ori imm16s of an la sequence
        DataPointer,    ///< patch 8 bytes in the data segment
    };

    struct Fixup
    {
        FixupKind kind;
        size_t index;       ///< text word index or data byte offset
        std::string sym;
    };

    void emit(const Inst &inst);
    void emitR(Opcode op, RegIndex rc, RegIndex ra, RegIndex rb);
    void emitI(Opcode op, RegIndex rc, RegIndex ra, i64 imm);
    void emitMem(Opcode op, RegIndex reg, i64 offset, RegIndex base);
    void emitBranch(Opcode op, RegIndex ra, RegIndex link,
                    const std::string &target);
    void bind(const std::string &name, Addr addr);
    Addr lookup(const std::string &name) const;

    Addr textBase;
    Addr dataBase;
    std::vector<MachineWord> text;
    std::vector<u8> data;
    std::map<std::string, Addr> symbols;
    std::vector<Fixup> fixups;
    bool assembled = false;
};

} // namespace nwsim

#endif // NWSIM_ASM_ASSEMBLER_HH
