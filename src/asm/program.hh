/**
 * @file
 * Loadable program image: segments, entry point, and symbol table.
 */

#ifndef NWSIM_ASM_PROGRAM_HH
#define NWSIM_ASM_PROGRAM_HH

#include <map>
#include <string>
#include <vector>

#include "common/types.hh"

namespace nwsim
{

class SparseMemory;

/** One contiguous loadable region. */
struct Segment
{
    Addr base = 0;
    std::vector<u8> bytes;
};

/** An assembled program ready to load into simulated memory. */
struct Program
{
    Addr entry = 0;
    std::vector<Segment> segments;
    std::map<std::string, Addr> symbols;

    /** Copy all segments into @p memory. */
    void load(SparseMemory &memory) const;

    /** Look up a symbol; fatal if missing. */
    Addr symbol(const std::string &name) const;

    /** Total image size in bytes across segments. */
    size_t imageBytes() const;

    /** End (one past) of the text segment, for disassembly walks. */
    Addr textEnd() const;
};

} // namespace nwsim

#endif // NWSIM_ASM_PROGRAM_HH
