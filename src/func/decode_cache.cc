#include "func/decode_cache.hh"

#include "common/logging.hh"
#include "func/semantics.hh"
#include "isa/encode.hh"

namespace nwsim
{

namespace
{

using Regs = std::array<u64, numIntRegs>;

/**
 * Every exec function mirrors the uncached interpreter exactly: read
 * both source registers first (so rc == ra/rb aliasing behaves the
 * same), compute through func/semantics.hh, then perform the guarded
 * destination write. writesReg() excludes the zero register, so
 * regs[zeroReg] stays 0 without a branchless fixup.
 */

void
execAlu(const MicroOp &u, Regs &regs, SparseMemory &, UopOut &out)
{
    const Inst &inst = u.inst;
    const u64 a = regs[inst.ra];
    const OperandPair ops = dataflowOperands(inst, a, regs[inst.rb]);
    const u64 result = aluResult(inst, ops.a, ops.b, u.pc);
    out.result = result;
    out.nextPc = u.pc + 4;
    if (inst.writesReg())
        regs[inst.rc] = result;
}

void
execLoad(const MicroOp &u, Regs &regs, SparseMemory &mem, UopOut &out)
{
    const Inst &inst = u.inst;
    const Addr ea = effectiveAddr(inst, regs[inst.ra]);
    const u64 result = loadValue(inst.op, mem.read(ea, u.memSize));
    out.effAddr = ea;
    out.result = result;
    out.nextPc = u.pc + 4;
    if (inst.writesReg())
        regs[inst.rc] = result;
}

void
execStore(const MicroOp &u, Regs &regs, SparseMemory &mem, UopOut &out)
{
    const Inst &inst = u.inst;
    const Addr ea = effectiveAddr(inst, regs[inst.ra]);
    const u64 data = regs[inst.rb];
    mem.write(ea, u.memSize, data);
    out.effAddr = ea;
    out.storeData = data;
    out.nextPc = u.pc + 4;
    if (inst.writesReg())
        regs[inst.rc] = 0;
}

void
execBranch(const MicroOp &u, Regs &regs, SparseMemory &, UopOut &out)
{
    const Inst &inst = u.inst;
    const u64 a = regs[inst.ra];
    const OperandPair ops = dataflowOperands(inst, a, regs[inst.rb]);
    const bool taken = branchTaken(inst.op, a);
    const u64 result = aluResult(inst, ops.a, ops.b, u.pc);
    out.taken = taken;
    out.nextPc = taken ? u.takenTarget : u.pc + 4;
    out.result = result;
    if (inst.writesReg())
        regs[inst.rc] = result;
}

void
execJump(const MicroOp &u, Regs &regs, SparseMemory &, UopOut &out)
{
    const Inst &inst = u.inst;
    const u64 a = regs[inst.ra];
    const u64 b_reg = regs[inst.rb];
    const OperandPair ops = dataflowOperands(inst, a, b_reg);
    const u64 result = aluResult(inst, ops.a, ops.b, u.pc);
    out.taken = true;
    out.nextPc = b_reg;
    out.result = result;
    if (inst.writesReg())
        regs[inst.rc] = result;
}

void
execOther(const MicroOp &u, Regs &regs, SparseMemory &, UopOut &out)
{
    out.nextPc = u.pc + 4;
    if (u.inst.writesReg())
        regs[u.inst.rc] = 0;
}

void
execHalt(const MicroOp &u, Regs &, SparseMemory &, UopOut &out)
{
    out.halted = true;
    out.nextPc = u.pc;
}

constexpr Addr kEmptyKey = ~Addr{0};

} // namespace

MicroOp
decodeMicroOp(Addr pc, const Inst &inst)
{
    const OpInfo &info = opInfo(inst.op);
    MicroOp u;
    u.inst = inst;
    u.pc = pc;
    u.opClass = info.opClass;
    u.isControl = isControl(inst.op);
    switch (info.opClass) {
      case OpClass::MemRead:
        u.fn = execLoad;
        u.memSize = memAccessSize(inst.op);
        break;
      case OpClass::MemWrite:
        u.fn = execStore;
        u.memSize = memAccessSize(inst.op);
        break;
      case OpClass::Branch:
        u.fn = execBranch;
        u.takenTarget = inst.branchTarget(pc);
        break;
      case OpClass::Jump:
        u.fn = execJump;
        break;
      case OpClass::Other:
        u.isHalt = inst.op == Opcode::HALT;
        u.fn = u.isHalt ? execHalt : execOther;
        break;
      default:
        u.fn = execAlu;
        break;
    }
    return u;
}

DecodeCache::DecodeCache(const SparseMemory &memory)
    : mem(memory), gen(memory.generation())
{
    keys.assign(1024, kEmptyKey);
    slots.assign(1024, kNoBlock);
}

bool
DecodeCache::refresh()
{
    if (mem.generation() == gen)
        return false;
    invalidate();
    gen = mem.generation();
    return true;
}

void
DecodeCache::invalidate()
{
    blocks.clear();
    std::fill(keys.begin(), keys.end(), kEmptyKey);
    std::fill(slots.begin(), slots.end(), kNoBlock);
    used = 0;
}

const DecodeCache::Block &
DecodeCache::blockAt(Addr pc)
{
    ++stat.lookups;
    bool decoded = false;
    const u32 idx = findOrDecode(pc, decoded);
    if (!decoded)
        ++stat.hits;
    return blocks[idx];
}

u32
DecodeCache::findOrDecode(Addr pc, bool &decoded)
{
    const size_t mask = keys.size() - 1;
    size_t i = (pc >> 2) & mask;
    while (keys[i] != kEmptyKey) {
        if (keys[i] == pc)
            return slots[i];
        i = (i + 1) & mask;
    }
    decoded = true;
    return decodeBlock(pc);
}

u32
DecodeCache::decodeBlock(Addr pc)
{
    blocks.emplace_back();
    Block &b = blocks.back();
    b.startPc = pc;
    b.ops.reserve(8);
    Addr cur = pc;
    for (size_t n = 0; n < kMaxBlockOps; ++n) {
        const auto word = static_cast<MachineWord>(mem.read(cur, 4));
        const MicroOp u = decodeMicroOp(cur, decode(word));
        b.ops.push_back(u);
        cur += 4;
        if (u.isControl || u.isHalt)
            break;
    }
    const u32 index = static_cast<u32>(blocks.size() - 1);
    insertKey(pc, index);
    return index;
}

void
DecodeCache::insertKey(Addr pc, u32 index)
{
    if ((used + 1) * 4 > keys.size() * 3)
        grow();
    const size_t mask = keys.size() - 1;
    size_t i = (pc >> 2) & mask;
    while (keys[i] != kEmptyKey)
        i = (i + 1) & mask;
    keys[i] = pc;
    slots[i] = index;
    ++used;
}

void
DecodeCache::grow()
{
    const size_t cap = keys.size() * 2;
    keys.assign(cap, kEmptyKey);
    slots.assign(cap, kNoBlock);
    used = 0;
    const size_t mask = cap - 1;
    for (size_t idx = 0; idx < blocks.size(); ++idx) {
        const Addr pc = blocks[idx].startPc;
        size_t i = (pc >> 2) & mask;
        while (keys[i] != kEmptyKey)
            i = (i + 1) & mask;
        keys[i] = pc;
        slots[i] = static_cast<u32>(idx);
        ++used;
    }
}

} // namespace nwsim
