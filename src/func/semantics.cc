#include "func/semantics.hh"

#include <limits>

#include "common/logging.hh"

namespace nwsim
{

namespace
{

i64
safeDiv(i64 a, i64 b)
{
    if (b == 0)
        return 0;
    if (a == std::numeric_limits<i64>::min() && b == -1)
        return a;
    return a / b;
}

i64
safeRem(i64 a, i64 b)
{
    if (b == 0)
        return 0;
    if (a == std::numeric_limits<i64>::min() && b == -1)
        return 0;
    return a % b;
}

} // namespace

u64
aluResult(const Inst &inst, u64 a, u64 b, Addr pc)
{
    const i64 sa = static_cast<i64>(a);
    const i64 sb = static_cast<i64>(b);
    switch (inst.op) {
      case Opcode::ADD:
      case Opcode::ADDI:
        return a + b;
      case Opcode::SUB:
      case Opcode::SUBI:
        return a - b;
      case Opcode::MUL:
      case Opcode::MULI:
        return a * b;
      case Opcode::DIV:
        return static_cast<u64>(safeDiv(sa, sb));
      case Opcode::REM:
        return static_cast<u64>(safeRem(sa, sb));
      case Opcode::AND:
      case Opcode::ANDI:
        return a & b;
      case Opcode::OR:
      case Opcode::ORI:
        return a | b;
      case Opcode::XOR:
      case Opcode::XORI:
        return a ^ b;
      case Opcode::BIC:
        return a & ~b;
      case Opcode::SLL:
      case Opcode::SLLI:
        return a << (b & 63);
      case Opcode::SRL:
      case Opcode::SRLI:
        return a >> (b & 63);
      case Opcode::SRA:
      case Opcode::SRAI:
        return static_cast<u64>(sa >> (b & 63));
      case Opcode::CMPEQ:
      case Opcode::CMPEQI:
        return a == b;
      case Opcode::CMPLT:
      case Opcode::CMPLTI:
        return sa < sb;
      case Opcode::CMPLE:
      case Opcode::CMPLEI:
        return sa <= sb;
      case Opcode::CMPULT:
        return a < b;
      case Opcode::CMPULE:
        return a <= b;
      case Opcode::SEXTB:
        return sext(a, 8);
      case Opcode::SEXTW:
        return sext(a, 16);
      case Opcode::LDAH:
        return a + (b << 16);
      case Opcode::BR:
      case Opcode::JMP:
      case Opcode::JSR:
        return pc + 4;    // link value
      case Opcode::LDQ:
      case Opcode::LDL:
      case Opcode::LDWU:
      case Opcode::LDBU:
      case Opcode::STQ:
      case Opcode::STL:
      case Opcode::STW:
      case Opcode::STB:
        // Address generation; data handled by the caller.
        return a + b;
      case Opcode::BEQ:
      case Opcode::BNE:
      case Opcode::BLT:
      case Opcode::BLE:
      case Opcode::BGT:
      case Opcode::BGE:
      case Opcode::RET:
      case Opcode::NOP:
      case Opcode::HALT:
        return 0;
      default:
        NWSIM_PANIC("aluResult: unhandled opcode ",
                    static_cast<int>(inst.op));
    }
}

bool
branchTaken(Opcode op, u64 a)
{
    const i64 sa = static_cast<i64>(a);
    switch (op) {
      case Opcode::BEQ:
        return sa == 0;
      case Opcode::BNE:
        return sa != 0;
      case Opcode::BLT:
        return sa < 0;
      case Opcode::BLE:
        return sa <= 0;
      case Opcode::BGT:
        return sa > 0;
      case Opcode::BGE:
        return sa >= 0;
      case Opcode::BR:
        return true;
      default:
        NWSIM_PANIC("branchTaken on non-branch ", mnemonic(op));
    }
}

u64
loadValue(Opcode op, u64 raw)
{
    switch (op) {
      case Opcode::LDQ:
        return raw;
      case Opcode::LDL:
        return sext(raw, 32);
      case Opcode::LDWU:
        return zext(raw, 16);
      case Opcode::LDBU:
        return zext(raw, 8);
      default:
        NWSIM_PANIC("loadValue on non-load ", mnemonic(op));
    }
}

} // namespace nwsim
