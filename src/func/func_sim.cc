#include "func/func_sim.hh"

#include "common/logging.hh"
#include "isa/encode.hh"

namespace nwsim
{

FuncSim::FuncSim(SparseMemory &memory, Addr entry, Addr stack_pointer)
    : mem(memory), pcReg(entry)
{
    regs[spReg] = stack_pointer;
}

void
FuncSim::setReg(RegIndex index, u64 value)
{
    if (index != zeroReg)
        regs[index] = value;
}

FuncStep
FuncSim::step()
{
    FuncStep out;
    out.pc = pcReg;
    if (isHalted) {
        out.halted = true;
        out.nextPc = pcReg;
        return out;
    }

    const auto word = static_cast<MachineWord>(mem.read(pcReg, 4));
    const Inst inst = decode(word);
    out.inst = inst;
    ++instsExecuted;

    const u64 a = regs[inst.ra];
    const u64 b_reg = regs[inst.rb];
    const OperandPair ops = dataflowOperands(inst, a, b_reg);
    const OpInfo &info = opInfo(inst.op);

    Addr next_pc = pcReg + 4;
    u64 result = 0;

    switch (info.opClass) {
      case OpClass::MemRead: {
        out.effAddr = effectiveAddr(inst, a);
        out.memSize = memAccessSize(inst.op);
        result = loadValue(inst.op, mem.read(out.effAddr, out.memSize));
        break;
      }
      case OpClass::MemWrite: {
        out.effAddr = effectiveAddr(inst, a);
        out.memSize = memAccessSize(inst.op);
        out.storeData = b_reg;
        mem.write(out.effAddr, out.memSize, b_reg);
        break;
      }
      case OpClass::Branch:
        out.taken = branchTaken(inst.op, a);
        if (out.taken)
            next_pc = inst.branchTarget(pcReg);
        result = aluResult(inst, ops.a, ops.b, pcReg);
        break;
      case OpClass::Jump:
        out.taken = true;
        next_pc = b_reg;
        result = aluResult(inst, ops.a, ops.b, pcReg);
        break;
      case OpClass::Other:
        if (inst.op == Opcode::HALT) {
            isHalted = true;
            next_pc = pcReg;
        }
        break;
      default:
        result = aluResult(inst, ops.a, ops.b, pcReg);
        break;
    }

    if (inst.writesReg())
        regs[inst.rc] = result;
    out.result = result;
    out.nextPc = next_pc;
    out.halted = isHalted;
    pcReg = next_pc;
    return out;
}

u64
FuncSim::run(u64 max_steps)
{
    u64 done = 0;
    while (done < max_steps && !isHalted) {
        step();
        ++done;
    }
    return done;
}

} // namespace nwsim
