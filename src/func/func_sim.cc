#include "func/func_sim.hh"

#include "common/logging.hh"
#include "isa/encode.hh"

namespace nwsim
{

FuncSim::FuncSim(SparseMemory &memory, Addr entry, Addr stack_pointer,
                 bool use_decode_cache)
    : mem(memory), pcReg(entry)
{
    regs[spReg] = stack_pointer;
    if (use_decode_cache)
        dcache = std::make_unique<DecodeCache>(memory);
}

void
FuncSim::setReg(RegIndex index, u64 value)
{
    if (index != zeroReg)
        regs[index] = value;
}

const MicroOp &
FuncSim::currentUop()
{
    if (dcache->refresh())
        curBlock = nullptr;
    if (!curBlock || curBlock->ops[curIdx].pc != pcReg) {
        curBlock = &dcache->blockAt(pcReg);
        curIdx = 0;
    }
    return curBlock->ops[curIdx];
}

void
FuncSim::advanceCursor(const MicroOp &u, Addr next_pc)
{
    if (next_pc == u.pc + 4) {
        if (curIdx + 1 < curBlock->ops.size()) {
            ++curIdx;
            return;
        }
        curBlock = &dcache->chainSeq(*curBlock);
    } else if (u.opClass == OpClass::Branch) {
        // A taken branch is always its block's terminator, so the
        // memoized static-target link applies.
        curBlock = &dcache->chainTaken(*curBlock);
    } else {
        // Indirect jump: the target is dynamic, re-hash.
        curBlock = &dcache->blockAt(next_pc);
    }
    curIdx = 0;
}

FuncStep
FuncSim::step()
{
    if (!dcache)
        return stepUncached();

    FuncStep out;
    out.pc = pcReg;
    if (isHalted) {
        out.halted = true;
        out.nextPc = pcReg;
        return out;
    }

    const MicroOp &u = currentUop();
    out.inst = u.inst;
    ++instsExecuted;

    UopOut r;
    u.fn(u, regs, mem, r);
    if (u.isHalt)
        isHalted = true;

    out.taken = r.taken;
    out.result = r.result;
    out.effAddr = r.effAddr;
    out.memSize = u.memSize;
    out.storeData = r.storeData;
    out.nextPc = r.nextPc;
    out.halted = isHalted;
    pcReg = r.nextPc;
    if (!isHalted)
        advanceCursor(u, r.nextPc);
    return out;
}

FuncStep
FuncSim::stepUncached()
{
    FuncStep out;
    out.pc = pcReg;
    if (isHalted) {
        out.halted = true;
        out.nextPc = pcReg;
        return out;
    }

    const auto word = static_cast<MachineWord>(mem.read(pcReg, 4));
    const Inst inst = decode(word);
    out.inst = inst;
    ++instsExecuted;

    const u64 a = regs[inst.ra];
    const u64 b_reg = regs[inst.rb];
    const OperandPair ops = dataflowOperands(inst, a, b_reg);
    const OpInfo &info = opInfo(inst.op);

    Addr next_pc = pcReg + 4;
    u64 result = 0;

    switch (info.opClass) {
      case OpClass::MemRead: {
        out.effAddr = effectiveAddr(inst, a);
        out.memSize = memAccessSize(inst.op);
        result = loadValue(inst.op, mem.read(out.effAddr, out.memSize));
        break;
      }
      case OpClass::MemWrite: {
        out.effAddr = effectiveAddr(inst, a);
        out.memSize = memAccessSize(inst.op);
        out.storeData = b_reg;
        mem.write(out.effAddr, out.memSize, b_reg);
        break;
      }
      case OpClass::Branch:
        out.taken = branchTaken(inst.op, a);
        if (out.taken)
            next_pc = inst.branchTarget(pcReg);
        result = aluResult(inst, ops.a, ops.b, pcReg);
        break;
      case OpClass::Jump:
        out.taken = true;
        next_pc = b_reg;
        result = aluResult(inst, ops.a, ops.b, pcReg);
        break;
      case OpClass::Other:
        if (inst.op == Opcode::HALT) {
            isHalted = true;
            next_pc = pcReg;
        }
        break;
      default:
        result = aluResult(inst, ops.a, ops.b, pcReg);
        break;
    }

    if (inst.writesReg())
        regs[inst.rc] = result;
    out.result = result;
    out.nextPc = next_pc;
    out.halted = isHalted;
    pcReg = next_pc;
    return out;
}

u64
FuncSim::run(u64 max_steps)
{
    if (!dcache) {
        u64 done = 0;
        while (done < max_steps && !isHalted) {
            stepUncached();
            ++done;
        }
        return done;
    }

    // Threaded fast path: execute block-to-block out of the decode
    // cache, skipping the FuncStep bookkeeping step() carries.
    u64 done = 0;
    while (done < max_steps && !isHalted) {
        const MicroOp &u = currentUop();
        ++instsExecuted;
        ++done;
        if (u.isHalt) {
            isHalted = true;
            break;      // pcReg stays at the HALT
        }
        UopOut r;
        u.fn(u, regs, mem, r);
        pcReg = r.nextPc;
        advanceCursor(u, r.nextPc);
    }
    return done;
}

} // namespace nwsim
