/**
 * @file
 * In-order functional simulator.
 *
 * Serves three roles:
 *  - golden model for differential testing of the out-of-order pipeline;
 *  - fetch oracle for perfect branch prediction (Figures 2 and 10 compare
 *    perfect vs realistic prediction);
 *  - fast-forward engine for warmup, mirroring the paper's methodology of
 *    warming architectural state before detailed simulation.
 */

#ifndef NWSIM_FUNC_FUNC_SIM_HH
#define NWSIM_FUNC_FUNC_SIM_HH

#include <array>
#include <memory>

#include "asm/layout.hh"
#include "func/decode_cache.hh"
#include "func/semantics.hh"
#include "mem/sparse_memory.hh"

namespace nwsim
{

/** Everything one functional step did, for oracles and tests. */
struct FuncStep
{
    Addr pc = 0;
    Inst inst;
    Addr nextPc = 0;
    /** For control transfers: whether the branch was taken. */
    bool taken = false;
    /** Value written to inst.rc (0 when none). */
    u64 result = 0;
    /** Effective address for loads/stores. */
    Addr effAddr = 0;
    /** Access size in bytes for loads/stores (0 otherwise). */
    unsigned memSize = 0;
    /** Value written to memory by a store (the full rb register). */
    u64 storeData = 0;
    /** True once HALT has executed. */
    bool halted = false;
};

/** Architected-state interpreter for nwsim programs. */
class FuncSim
{
  public:
    /**
     * @param use_decode_cache Thread execution through a basic-block
     * decode cache (func/decode_cache.hh). Semantics are identical
     * either way (tests/test_decode_cache.cc); pass false to keep an
     * uncached reference interpreter, e.g. for differential testing or
     * self-modifying programs (`+nodecodecache`).
     */
    FuncSim(SparseMemory &memory, Addr entry,
            Addr stack_pointer = layout::stackTop,
            bool use_decode_cache = true);

    /** Execute one instruction. No-op (returns halted step) after HALT. */
    FuncStep step();

    /** Run until HALT or until @p max_steps more instructions retire. */
    u64 run(u64 max_steps);

    u64 reg(RegIndex index) const { return regs[index]; }
    void setReg(RegIndex index, u64 value);
    Addr pc() const { return pcReg; }
    bool halted() const { return isHalted; }
    u64 instCount() const { return instsExecuted; }
    const std::array<u64, numIntRegs> &regFile() const { return regs; }

    /** Block-cache health counters (all-zero when uncached). */
    const DecodeCacheStats &
    decodeCacheStats() const
    {
        static const DecodeCacheStats empty{};
        return dcache ? dcache->stats() : empty;
    }

    /**
     * Serialize architected state: registers, PC, halt flag, retired
     * count. The backing SparseMemory is serialized by its owner; the
     * decode cache is a host-side structure that refreshes lazily.
     */
    void
    saveState(ckpt::ByteSink &sink) const
    {
        for (u64 r : regs)
            sink.u64v(r);
        sink.u64v(pcReg);
        sink.boolv(isHalted);
        sink.u64v(instsExecuted);
    }

    /**
     * Restore saveState() data; false on malformed input. Resets the
     * block cursor — the next step re-resolves it from the (possibly
     * restored) memory image.
     */
    bool
    loadState(ckpt::ByteSource &src)
    {
        std::array<u64, numIntRegs> loaded{};
        for (u64 &r : loaded) {
            if (!src.u64v(r))
                return false;
        }
        Addr pc = 0;
        bool halted_flag = false;
        u64 count = 0;
        if (!src.u64v(pc) || !src.boolv(halted_flag) ||
            !src.u64v(count)) {
            return false;
        }
        regs = loaded;
        pcReg = pc;
        isHalted = halted_flag;
        instsExecuted = count;
        curBlock = nullptr;
        curIdx = 0;
        return true;
    }

  private:
    /** Original decode-every-step interpreter (no cache). */
    FuncStep stepUncached();
    /** Point the block cursor at pcReg (refresh + lookup as needed). */
    const MicroOp &currentUop();
    /** Move the cursor past @p u given its outcome @p next_pc. */
    void advanceCursor(const MicroOp &u, Addr next_pc);

    SparseMemory &mem;
    std::array<u64, numIntRegs> regs{};
    Addr pcReg;
    bool isHalted = false;
    u64 instsExecuted = 0;

    /** Null when constructed with use_decode_cache = false. */
    std::unique_ptr<DecodeCache> dcache;
    const DecodeCache::Block *curBlock = nullptr;
    size_t curIdx = 0;
};

} // namespace nwsim

#endif // NWSIM_FUNC_FUNC_SIM_HH
