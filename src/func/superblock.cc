#include "func/superblock.hh"

#include <bit>

#include "common/logging.hh"

namespace nwsim
{

namespace
{

constexpr Addr kEmptyKey = ~Addr{0};

// The head block must always fit, so every trace carries at least one
// real op before any end pseudo-op — a trace can therefore never exit
// at its own start PC with zero instructions executed (which would
// livelock the fastForward loop).
static_assert(DecodeCache::kMaxBlockOps <= SuperblockCache::kMaxTraceOps);

/**
 * The executor. One template instantiation per warming mode (predictor
 * vs perfect-prediction oracle lockstep), so the per-instruction path
 * never branches on the mode. The op bodies are written once and
 * expanded under both dispatch mechanisms:
 *
 *  - direct-threaded (NWSIM_DIRECT_THREADED): `goto *op->label`
 *    straight from op to op through label pointers baked at trace
 *    formation;
 *  - call-threaded fallback: a for(;;)/switch loop over SbOp.
 *
 * Side-effect order per op replicates the block-granular fastForward
 * loop exactly: budget check, instruction probe, HALT exit, execute,
 * data probe (memory ops), predictor warming (control ops), oracle
 * lockstep, regFromLoad. Stat-identity with `+notrace` and
 * `+nodecodecache` depends on this ordering — change it only together
 * with OutOfOrderCore::fastForward and the equivalence tests.
 *
 * Called with @p labels_out to retrieve the dispatch label table
 * (trace formation bakes it into ops); @p tp / @p cp may be null only
 * in that mode.
 */
template <bool kPerfect>
SbExit
runTraceImpl(const SbTrace *tp, SbContext *cp, u64 budget,
             const void *const **labels_out)
{
#if NWSIM_DIRECT_THREADED
    static const void *const labels[static_cast<size_t>(SbOp::kCount)] = {
        &&L_AluF,    &&L_AluS,    &&L_LoadF,  &&L_LoadS,
        &&L_StoreF,  &&L_StoreS,  &&L_GuardTF, &&L_GuardTS,
        &&L_GuardNF, &&L_GuardNS, &&L_JumpF,  &&L_JumpS,
        &&L_HaltF,   &&L_HaltS,   &&L_End,    &&L_EndLoop,
    };
    if (labels_out) {
        *labels_out = labels;
        return {};
    }
#else
    if (labels_out) {
        *labels_out = nullptr;
        return {};
    }
#endif

    const SbTrace &t = *tp;
    SbContext &ctx = *cp;
    const TraceOp *const base = t.ops.data();
    const TraceOp *op = base;
    u64 done = 0;
    UopOut r;
    SbExit ex;

// Per-op building blocks, shared by every variant below.
#define SB_BUDGET()                                                     \
    do {                                                                \
        if (done == budget) {                                           \
            ex.nextPc = op->uop.pc;                                     \
            goto exit_done;                                             \
        }                                                               \
    } while (0)
#define SB_PROBE_F() ctx.memsys.instLatency(op->uop.pc)
#define SB_PROBE_S() ctx.memsys.instSameLine(op->uop.pc)
#define SB_ORACLE()                                                     \
    do {                                                                \
        if constexpr (kPerfect)                                         \
            ctx.oracle->step();                                         \
    } while (0)
#define SB_WRITEBACK(from_load)                                         \
    do {                                                                \
        if (op->uop.inst.writesReg())                                   \
            ctx.regFromLoad[op->uop.inst.rc] = (from_load);             \
    } while (0)
#define SB_WARM_BRANCH()                                                \
    do {                                                                \
        if constexpr (!kPerfect)                                        \
            warmPredictor(*ctx.predictor, op->uop.pc, op->uop.inst,     \
                          r.taken, r.nextPc);                           \
    } while (0)

#define SB_ALU(PROBE)                                                   \
    SB_BUDGET();                                                        \
    PROBE();                                                            \
    ++done;                                                             \
    op->uop.fn(op->uop, ctx.regs, ctx.mem, r);                          \
    SB_ORACLE();                                                        \
    SB_WRITEBACK(false);                                                \
    SB_NEXT()
#define SB_LOAD(PROBE)                                                  \
    SB_BUDGET();                                                        \
    PROBE();                                                            \
    ++done;                                                             \
    op->uop.fn(op->uop, ctx.regs, ctx.mem, r);                          \
    ctx.memsys.dataLatency(r.effAddr);                                  \
    SB_ORACLE();                                                        \
    SB_WRITEBACK(true);                                                 \
    SB_NEXT()
#define SB_STORE(PROBE)                                                 \
    SB_BUDGET();                                                        \
    PROBE();                                                            \
    ++done;                                                             \
    op->uop.fn(op->uop, ctx.regs, ctx.mem, r);                          \
    ctx.memsys.dataLatency(r.effAddr);                                  \
    SB_ORACLE();                                                        \
    SB_WRITEBACK(false);                                                \
    SB_NEXT()
/** Conditional branch stitched in direction EXPECT: exit when the
 *  architectural outcome differs (r.nextPc is already correct). */
#define SB_GUARD(PROBE, EXPECT)                                         \
    SB_BUDGET();                                                        \
    PROBE();                                                            \
    ++done;                                                             \
    op->uop.fn(op->uop, ctx.regs, ctx.mem, r);                          \
    SB_WARM_BRANCH();                                                   \
    SB_ORACLE();                                                        \
    SB_WRITEBACK(false);                                                \
    if (r.taken != (EXPECT))                                            \
        goto exit_guard;                                                \
    SB_NEXT()
#define SB_JUMP(PROBE)                                                  \
    SB_BUDGET();                                                        \
    PROBE();                                                            \
    ++done;                                                             \
    op->uop.fn(op->uop, ctx.regs, ctx.mem, r);                          \
    SB_WARM_BRANCH();                                                   \
    SB_ORACLE();                                                        \
    SB_WRITEBACK(false);                                                \
    ex.nextPc = r.nextPc;                                               \
    goto exit_done
/** HALT: the probe is issued, the halt itself is not retired — the
 *  detailed pipeline commits it (same contract as fastForward). */
#define SB_HALT(PROBE)                                                  \
    SB_BUDGET();                                                        \
    PROBE();                                                            \
    ex.nextPc = op->uop.pc;                                             \
    ex.halted = true;                                                   \
    goto exit_done

#if NWSIM_DIRECT_THREADED
#define SB_CASE(name) L_##name:
#define SB_NEXT()                                                       \
    do {                                                                \
        ++op;                                                           \
        goto *op->label;                                                \
    } while (0)
#define SB_RESTART()                                                    \
    do {                                                                \
        op = base;                                                      \
        goto *op->label;                                                \
    } while (0)

    goto *op->label;
#else
#define SB_CASE(name) case SbOp::k##name:
#define SB_NEXT() break
#define SB_RESTART()                                                    \
    op = base;                                                          \
    break

    for (;;) {
        switch (op->kind) {
#endif

    SB_CASE(AluF) { SB_ALU(SB_PROBE_F); }
    SB_CASE(AluS) { SB_ALU(SB_PROBE_S); }
    SB_CASE(LoadF) { SB_LOAD(SB_PROBE_F); }
    SB_CASE(LoadS) { SB_LOAD(SB_PROBE_S); }
    SB_CASE(StoreF) { SB_STORE(SB_PROBE_F); }
    SB_CASE(StoreS) { SB_STORE(SB_PROBE_S); }
    SB_CASE(GuardTF) { SB_GUARD(SB_PROBE_F, true); }
    SB_CASE(GuardTS) { SB_GUARD(SB_PROBE_S, true); }
    SB_CASE(GuardNF) { SB_GUARD(SB_PROBE_F, false); }
    SB_CASE(GuardNS) { SB_GUARD(SB_PROBE_S, false); }
    SB_CASE(JumpF) { SB_JUMP(SB_PROBE_F); }
    SB_CASE(JumpS) { SB_JUMP(SB_PROBE_S); }
    SB_CASE(HaltF) { SB_HALT(SB_PROBE_F); }
    SB_CASE(HaltS) { SB_HALT(SB_PROBE_S); }
    SB_CASE(End)
    {
        ex.nextPc = op->uop.pc;
        goto exit_done;
    }
    SB_CASE(EndLoop) { SB_RESTART(); }

#if !NWSIM_DIRECT_THREADED
          case SbOp::kCount:
            NWSIM_PANIC("corrupt trace op kind");
        }
    }
#endif

exit_guard:
    ex.nextPc = r.nextPc;
    ex.guardExit = true;
exit_done:
    ex.executed = done;
    return ex;

#undef SB_BUDGET
#undef SB_PROBE_F
#undef SB_PROBE_S
#undef SB_ORACLE
#undef SB_WRITEBACK
#undef SB_WARM_BRANCH
#undef SB_ALU
#undef SB_LOAD
#undef SB_STORE
#undef SB_GUARD
#undef SB_JUMP
#undef SB_HALT
#undef SB_CASE
#undef SB_NEXT
#undef SB_RESTART
}

/** Dispatch label table for @p perfect-mode traces (null when the
 *  build is call-threaded — ops then dispatch on SbOp). */
const void *const *
sbLabels(bool perfect)
{
    const void *const *tab = nullptr;
    if (perfect)
        runTraceImpl<true>(nullptr, nullptr, 0, &tab);
    else
        runTraceImpl<false>(nullptr, nullptr, 0, &tab);
    return tab;
}

} // namespace

SbExit
runTrace(const SbTrace &t, SbContext &ctx, u64 budget, bool perfect)
{
    return perfect ? runTraceImpl<true>(&t, &ctx, budget, nullptr)
                   : runTraceImpl<false>(&t, &ctx, budget, nullptr);
}

const char *
sbDispatchKind()
{
#if NWSIM_DIRECT_THREADED
    return "direct-threaded";
#else
    return "call-threaded";
#endif
}

SuperblockCache::SuperblockCache(DecodeCache &decode_cache, bool perfect,
                                 u64 i_block_bytes, unsigned i_page_shift)
    : dc(decode_cache),
      perfectMode(perfect),
      iBlockShift(static_cast<unsigned>(std::countr_zero(i_block_bytes))),
      iPageShift(i_page_shift)
{
    NWSIM_ASSERT(std::has_single_bit(i_block_bytes),
                 "I-cache block size must be a power of two");
    keys.assign(256, kEmptyKey);
    slots.assign(256, kNoTrace);
}

u32
SuperblockCache::find(Addr pc) const
{
    const size_t mask = keys.size() - 1;
    size_t i = (pc >> 2) & mask;
    while (keys[i] != kEmptyKey) {
        if (keys[i] == pc)
            return slots[i];
        i = (i + 1) & mask;
    }
    return kNoTrace;
}

const SbTrace *
SuperblockCache::traceAt(Addr pc) const
{
    const u32 idx = find(pc);
    return idx == kNoTrace ? nullptr : &traces[idx];
}

namespace
{

/** Variant selection: S-flavors carry the bit-exact same-line probe. */
SbOp
traceOpKind(const MicroOp &u, bool same_line)
{
    if (u.isHalt)
        return same_line ? SbOp::kHaltS : SbOp::kHaltF;
    switch (u.opClass) {
      case OpClass::MemRead:
        return same_line ? SbOp::kLoadS : SbOp::kLoadF;
      case OpClass::MemWrite:
        return same_line ? SbOp::kStoreS : SbOp::kStoreF;
      case OpClass::Jump:
        return same_line ? SbOp::kJumpS : SbOp::kJumpF;
      default:
        return same_line ? SbOp::kAluS : SbOp::kAluF;
    }
}

} // namespace

const SbTrace &
SuperblockCache::form(const DecodeCache::Block &head)
{
    traces.emplace_back();
    SbTrace &t = traces.back();
    t.startPc = head.startPc;
    t.ops.reserve(kMaxTraceOps + 1);

    // The same-line probe is exact only when the *previous executed
    // fetch* touched the same I-cache block and page; track the
    // predecessor op's PC in trace (= execution) order.
    Addr prev_pc = 0;
    bool have_prev = false;
    const auto same_line = [&](Addr pc) {
        return have_prev && (pc >> iBlockShift) == (prev_pc >> iBlockShift) &&
               (pc >> iPageShift) == (prev_pc >> iPageShift);
    };
    const auto push = [&](const MicroOp &u, SbOp kind) {
        TraceOp op;
        op.uop = u;
        op.kind = kind;
        t.ops.push_back(op);
    };
    const auto push_end = [&](Addr resume_pc) {
        TraceOp op;
        op.uop.pc = resume_pc;
        op.kind = SbOp::kEnd;
        t.ops.push_back(op);
    };

    // Start PCs already stitched: an exact revisit that is not the head
    // ends the trace (the revisited PC can form its own trace). Entering
    // the *middle* of already-stitched code is allowed — the ops are
    // simply appended again (self-overlapping trace), bounded by the op
    // cap; guards keep every path architecturally exact.
    std::vector<Addr> visited;
    visited.reserve(32);

    const DecodeCache::Block *b = &head;
    for (;;) {
        if (t.ops.size() + b->ops.size() > kMaxTraceOps) {
            push_end(b->startPc);
            break;
        }
        visited.push_back(b->startPc);
        ++t.blockCount;

        // All ops but a control/halt terminator are straight-line.
        const MicroOp &term = b->ops.back();
        for (size_t i = 0; i + 1 < b->ops.size(); ++i) {
            const MicroOp &u = b->ops[i];
            push(u, traceOpKind(u, same_line(u.pc)));
            prev_pc = u.pc;
            have_prev = true;
        }

        Addr cont = 0;
        if (term.isHalt || term.opClass == OpClass::Jump) {
            push(term, traceOpKind(term, same_line(term.pc)));
            break;     // the op itself exits the trace
        } else if (term.opClass == OpClass::Branch) {
            // Stitch the direction the block-granular loop last saw;
            // the other direction becomes the guard's side exit.
            const bool expect = b->lastTaken;
            const bool s = same_line(term.pc);
            push(term, expect ? (s ? SbOp::kGuardTS : SbOp::kGuardTF)
                              : (s ? SbOp::kGuardNS : SbOp::kGuardNF));
            cont = expect ? term.takenTarget : term.pc + 4;
        } else {
            // kMaxBlockOps-capped block: plain op, fall through.
            push(term, traceOpKind(term, same_line(term.pc)));
            cont = b->endPc();
        }
        prev_pc = term.pc;
        have_prev = true;

        if (cont == t.startPc) {
            TraceOp op;
            op.kind = SbOp::kEndLoop;
            t.ops.push_back(op);
            t.loops = true;
            break;
        }
        bool seen = false;
        for (Addr pc : visited)
            seen = seen || pc == cont;
        if (seen || t.ops.size() >= kMaxTraceOps) {
            push_end(cont);
            break;
        }
        b = &dc.blockAt(cont);
    }

    if (const void *const *labels = sbLabels(perfectMode)) {
        for (TraceOp &op : t.ops)
            op.label = labels[static_cast<size_t>(op.kind)];
    }

    ++stat.formed;
    if (t.loops)
        ++stat.loopClosures;
    const u32 index = static_cast<u32>(traces.size() - 1);
    insertKey(t.startPc, index);
    return t;
}

void
SuperblockCache::invalidate()
{
    if (!traces.empty())
        ++stat.invalidations;
    traces.clear();
    std::fill(keys.begin(), keys.end(), kEmptyKey);
    std::fill(slots.begin(), slots.end(), kNoTrace);
    used = 0;
}

void
SuperblockCache::insertKey(Addr pc, u32 index)
{
    if ((used + 1) * 4 > keys.size() * 3)
        grow();
    const size_t mask = keys.size() - 1;
    size_t i = (pc >> 2) & mask;
    while (keys[i] != kEmptyKey)
        i = (i + 1) & mask;
    keys[i] = pc;
    slots[i] = index;
    ++used;
}

void
SuperblockCache::grow()
{
    const size_t cap = keys.size() * 2;
    keys.assign(cap, kEmptyKey);
    slots.assign(cap, kNoTrace);
    used = 0;
    const size_t mask = cap - 1;
    for (size_t idx = 0; idx < traces.size(); ++idx) {
        const Addr pc = traces[idx].startPc;
        size_t i = (pc >> 2) & mask;
        while (keys[i] != kEmptyKey)
            i = (i + 1) & mask;
        keys[i] = pc;
        slots[i] = static_cast<u32>(idx);
        ++used;
    }
}

} // namespace nwsim
