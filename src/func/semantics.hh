/**
 * @file
 * Pure instruction semantics, shared verbatim between the functional
 * golden-model simulator and the out-of-order pipeline's
 * execute-at-dispatch stage, so the two can never diverge.
 *
 * All semantics are total (divide-by-zero yields 0, shifts mask their
 * amount) so that wrong-path execution of arbitrary operand values is
 * well defined.
 */

#ifndef NWSIM_FUNC_SEMANTICS_HH
#define NWSIM_FUNC_SEMANTICS_HH

#include "isa/inst.hh"

namespace nwsim
{

/**
 * Compute the ALU/link result of @p inst given its two dataflow operands.
 *
 * @param a  Value of inst.ra.
 * @param b  Second dataflow operand: the sign-extended immediate for
 *           I-format, else the value of inst.rb.
 * @param pc The instruction's own PC (for link results).
 * @return   The value written to inst.rc (0 for ops with no result).
 *
 * Memory data movement is not performed here; loads/stores use
 * effectiveAddr() and the caller's memory/LSQ.
 */
u64 aluResult(const Inst &inst, u64 a, u64 b, Addr pc);

/** Condition evaluation for conditional branches (ra compared to zero). */
bool branchTaken(Opcode op, u64 a);

/** Effective address of a load/store: ra + imm. */
inline Addr
effectiveAddr(const Inst &inst, u64 a)
{
    return a + static_cast<u64>(inst.imm);
}

/** Apply a load's size/extension rules to raw memory data. */
u64 loadValue(Opcode op, u64 raw);

/**
 * The two dataflow operands a width-analysis/packing unit sees for this
 * instruction: (ra value, rb-or-immediate value). This matches what the
 * paper's reservation-station zero-detect tags describe.
 */
struct OperandPair
{
    u64 a;
    u64 b;
};

inline OperandPair
dataflowOperands(const Inst &inst, u64 ra_value, u64 rb_value)
{
    if (inst.usesImm())
        return {ra_value, static_cast<u64>(inst.imm)};
    return {ra_value, rb_value};
}

} // namespace nwsim

#endif // NWSIM_FUNC_SEMANTICS_HH
