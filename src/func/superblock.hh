/**
 * @file
 * Superblock traces: direct-threaded micro-op superblocks over the
 * basic-block decode cache, for the functional fast-forward stream.
 *
 * The block cache (func/decode_cache.hh) made decoding free, but the
 * core's fastForward still pays, per instruction, one indirect call
 * plus a handful of "what kind of op is this" branches, and per block
 * one chain hop. This layer profiles block entries (DecodeCache::Block
 * heat counters) and, past a promotion threshold, stitches micro-ops
 * across the observed directions of conditional branches into one
 * dense trace:
 *
 *  - every conditional branch inside the trace becomes a *guard* op:
 *    execution continues in-trace while the branch keeps going the way
 *    it went when the trace was formed, and side-exits back to the
 *    block-granular loop (returning the architecturally correct next
 *    PC) the moment it goes the other way;
 *  - a trace whose continuation reaches its own head closes into a
 *    loop: steady-state iterations run with zero chain hops and zero
 *    hash lookups;
 *  - the warming work fastForward layers on top of execution —
 *    MemSystem instruction/data probes, predictor training at control
 *    ops, oracle lockstep in perfect-prediction mode, the regFromLoad
 *    gating bookkeeping — is baked into per-op variants at formation
 *    time, including a bit-exact "same I-line as the previous fetch"
 *    probe (MemSystem::instSameLine) for straight-line runs;
 *  - dispatch is direct-threaded where the toolchain supports computed
 *    goto (`goto *op->label`, NWSIM_DIRECT_THREADED from the CMake
 *    probe), with a portable call-threaded switch loop as fallback —
 *    both share the same op bodies, so behavior is identical.
 *
 * The correctness contract is the decode cache's, one level up: traced
 * execution is *stat-invisible*. Every warming side effect is issued in
 * exactly the order the block-granular loop produces, so traced runs
 * are field-exact-identical to `+notrace` and to `+nodecodecache`
 * (tests/test_decode_cache.cc proves it over the grid, fuzz seeds, and
 * sampled schedules). SuperblockStats is a host metric like
 * DecodeCacheStats — never part of CoreStats.
 *
 * Traces copy their micro-ops, so they hold no pointers into the
 * decode cache; both caches invalidate together on program reload
 * (SparseMemory generation, DecodeCache::refresh). After the hot set
 * is traced, execution allocates nothing.
 */

#ifndef NWSIM_FUNC_SUPERBLOCK_HH
#define NWSIM_FUNC_SUPERBLOCK_HH

#include <array>
#include <deque>
#include <vector>

#include "bpred/combining.hh"
#include "func/decode_cache.hh"
#include "func/func_sim.hh"
#include "mem/memsystem.hh"
#include "mem/sparse_memory.hh"

namespace nwsim
{

/**
 * Warm the branch predictor for one executed control op exactly as
 * fetch + commit would: predict (updating speculative history), repair
 * on a wrong direction or target, resolve. Shared by the core's
 * block-granular fastForward and the trace executor so the two paths
 * cannot drift.
 */
inline void
warmPredictor(CombiningPredictor &p, Addr pc, const Inst &inst,
              bool taken, Addr next_pc)
{
    const Prediction pred = p.predict(pc, inst);
    if (pred.taken != taken || (taken && pred.target != next_pc))
        p.repair(inst, pred, taken);
    p.resolve(pc, inst, pred, taken, next_pc);
}

/**
 * Trace-cache health counters (host-side metric, NOT a simulation
 * statistic — same convention as DecodeCacheStats: excluded from
 * stat-identity, all-zero under `+notrace`/`+nodecodecache`, surfaced
 * through `nwsim bench --json`).
 */
struct SuperblockStats
{
    /** Traces formed (one per promoted hot block-entry PC). */
    u64 formed = 0;
    /** Traces that close back on their own head (zero-hop loops). */
    u64 loopClosures = 0;
    /** Trace executions begun. */
    u64 entries = 0;
    /** Instructions retired inside traces. */
    u64 tracedInsts = 0;
    /** Side exits through a guard whose branch went the other way. */
    u64 guardExits = 0;
    /** Wholesale invalidations (program reload). */
    u64 invalidations = 0;

    void
    accumulate(const SuperblockStats &o)
    {
        formed += o.formed;
        loopClosures += o.loopClosures;
        entries += o.entries;
        tracedInsts += o.tracedInsts;
        guardExits += o.guardExits;
        invalidations += o.invalidations;
    }
};

/**
 * Trace-op variants. Each real-instruction kind comes in two flavors:
 * `F` (full MemSystem::instLatency probe) and `S` (bit-exact same-line
 * fast probe, baked when the op fetches from the same I-cache block
 * and page as its predecessor in trace order). kEnd/kEndLoop are
 * pseudo-ops carrying the trace's continuation; they execute no
 * instruction.
 */
enum class SbOp : u8 {
    kAluF,      ///< ALU / non-halt Other (no memory, no control)
    kAluS,
    kLoadF,     ///< MemRead + dataLatency warming
    kLoadS,
    kStoreF,    ///< MemWrite + dataLatency warming
    kStoreS,
    kGuardTF,   ///< conditional branch, stitched taken; not-taken exits
    kGuardTS,
    kGuardNF,   ///< conditional branch, stitched fall-through
    kGuardNS,
    kJumpF,     ///< indirect jump: warm, then exit to the dynamic target
    kJumpS,
    kHaltF,     ///< HALT: probe, then exit without retiring it
    kHaltS,
    kEnd,       ///< pseudo: exit, resume block-granular at uop.pc
    kEndLoop,   ///< pseudo: restart the trace at its first op
    kCount,
};

/** One trace entry: the decoded micro-op plus baked dispatch state. */
struct TraceOp
{
    /** Semantics are the decode cache's, verbatim (executed via fn).
     *  For kEnd, only `pc` is meaningful: the resume point. */
    MicroOp uop;
    /** Direct-threaded dispatch target (null in call-threaded builds). */
    const void *label = nullptr;
    SbOp kind = SbOp::kEnd;
};

/** A formed superblock trace. */
struct SbTrace
{
    Addr startPc = 0;
    std::vector<TraceOp> ops;
    /** Trace closes back on startPc (ends in kEndLoop). */
    bool loops = false;
    /** Basic blocks stitched in (for tests/introspection). */
    u32 blockCount = 0;
};

/** Everything the trace executor touches, borrowed from the core. */
struct SbContext
{
    std::array<u64, numIntRegs> &regs;
    std::array<bool, numIntRegs> &regFromLoad;
    SparseMemory &mem;
    MemSystem &memsys;
    /** Predictor mode (null when perfect). */
    CombiningPredictor *predictor;
    /** Perfect-prediction mode: stepped in lockstep (null otherwise). */
    FuncSim *oracle;
};

/** How one trace execution ended. */
struct SbExit
{
    /** Architecturally correct resume PC for the block-granular loop. */
    Addr nextPc = 0;
    /** Instructions retired by this execution. */
    u64 executed = 0;
    /** Exited at a HALT (not retired, same as fastForward). */
    bool halted = false;
    /** Exited through a guard whose branch went the other way. */
    bool guardExit = false;
};

/**
 * Execute @p t against @p ctx, retiring at most @p budget instructions.
 * @p perfect selects the oracle-lockstep executor instantiation; it
 * must match ctx (oracle set, predictor null) and the mode the trace
 * was formed for.
 */
SbExit runTrace(const SbTrace &t, SbContext &ctx, u64 budget,
                bool perfect);

/** "direct-threaded" or "call-threaded" — the dispatch mechanism this
 *  binary was built with (NWSIM_DIRECT_THREADED probe). */
const char *sbDispatchKind();

/**
 * The trace cache: profiles block entries, forms traces past the
 * promotion threshold, and serves them back keyed by start PC. One
 * instance per core, layered over that core's DecodeCache.
 */
class SuperblockCache
{
  public:
    static constexpr u32 kNoTrace = ~u32{0};
    /** Block entries before a start PC is promoted to a trace. */
    static constexpr u32 kPromoteHeat = 16;
    /** Real-op cap per trace (pseudo-ops ride on top). */
    static constexpr size_t kMaxTraceOps = 256;

    /**
     * @param decode_cache The block cache execution runs out of.
     * @param perfect      Oracle-lockstep mode (bakes executor labels).
     * @param i_block_bytes L1 I-cache block size (same-line baking).
     * @param i_page_shift  ITLB page shift (same-page baking).
     */
    SuperblockCache(DecodeCache &decode_cache, bool perfect,
                    u64 i_block_bytes, unsigned i_page_shift);

    /**
     * Block-entry hook for the block-granular loop: returns the trace
     * starting at @p blk's start PC if one exists, forming it first if
     * this entry crosses the promotion threshold; null while cold.
     */
    const SbTrace *
    enter(const DecodeCache::Block &blk)
    {
        const u32 idx = find(blk.startPc);
        if (idx != kNoTrace)
            return &traces[idx];
        if (++blk.heat < kPromoteHeat)
            return nullptr;
        return &form(blk);
    }

    /** Account one finished trace execution. */
    void
    noteRun(const SbExit &ex)
    {
        ++stat.entries;
        stat.tracedInsts += ex.executed;
        if (ex.guardExit)
            ++stat.guardExits;
    }

    /** Drop every trace (program reload; capacity is kept). */
    void invalidate();

    const SuperblockStats &stats() const { return stat; }
    size_t traceCount() const { return traces.size(); }
    /** Trace starting at @p pc, or null (tests/introspection). */
    const SbTrace *traceAt(Addr pc) const;

  private:
    u32 find(Addr pc) const;
    const SbTrace &form(const DecodeCache::Block &head);
    void insertKey(Addr pc, u32 index);
    void grow();

    DecodeCache &dc;
    const bool perfectMode;
    const unsigned iBlockShift;
    const unsigned iPageShift;
    /** deque: stable element addresses across insertions. */
    std::deque<SbTrace> traces;
    /** Open-addressing start-PC index (power-of-two, linear probe). */
    std::vector<Addr> keys;
    std::vector<u32> slots;
    size_t used = 0;
    SuperblockStats stat;
};

} // namespace nwsim

#endif // NWSIM_FUNC_SUPERBLOCK_HH
