/**
 * @file
 * Basic-block decode cache with threaded micro-op dispatch.
 *
 * The functional paths (FuncSim stepping, the cosim oracle, and the
 * out-of-order core's fastForward warmup) used to re-decode every
 * instruction word on every visit. This cache decodes each basic block
 * once into a dense array of pre-resolved micro-ops — operand sources,
 * access sizes, and static branch targets baked in, execution reduced
 * to one indirect call through a per-op function pointer — so hot loops
 * run straight out of the cache.
 *
 * Blocks:
 *  - start at any executed PC (a branch into the middle of an existing
 *    block simply creates a new, overlapping block — blocks are keyed
 *    by their *start* PC, so overlap is harmless and cheap);
 *  - end at the first control transfer or HALT, or at kMaxBlockOps;
 *  - memoize their fall-through successor (chainSeq) and, for a
 *    displacement-branch terminator, the static taken-target block
 *    (chainTaken), so steady-state execution follows block-to-block
 *    links without re-hashing.
 *
 * Invalidation is wholesale and keyed to SparseMemory::generation(),
 * which the program loader's writeBlock() bumps: (re)loading an image
 * over the memory drops every cached block on the next refresh().
 * Plain data stores do not invalidate — self-modifying code must run
 * with the `+nodecodecache` escape hatch (docs/SIMULATOR.md).
 *
 * Semantics are shared verbatim with the uncached interpreters via
 * func/semantics.hh; tests/test_decode_cache.cc proves cached and
 * uncached runs identical in final state and in every statistic.
 */

#ifndef NWSIM_FUNC_DECODE_CACHE_HH
#define NWSIM_FUNC_DECODE_CACHE_HH

#include <array>
#include <deque>
#include <vector>

#include "isa/inst.hh"
#include "isa/opcode.hh"
#include "mem/sparse_memory.hh"

namespace nwsim
{

/**
 * Decode-cache health counters (host-side metric, NOT a simulation
 * statistic: deliberately kept out of CoreStats so cached and uncached
 * runs stay stat-identical; surfaced through `nwsim bench --json`).
 */
struct DecodeCacheStats
{
    /** Block (func cache) or instruction (fetch cache) lookups. */
    u64 lookups = 0;
    /**
     * Lookups satisfied on the fast path: a blockAt() that found its
     * block already decoded, or a chainSeq()/chainTaken() whose link
     * was already memoized. A chain link's first resolution counts as
     * a miss even when the successor block is already in the hash
     * index — the probe it pays is exactly the cost the hit rate
     * exists to expose. Every public lookup entry point counts one
     * lookup and at most one hit, so the rate is comparable across
     * paths.
     */
    u64 hits = 0;

    double
    hitRate() const
    {
        return lookups ? static_cast<double>(hits) /
                             static_cast<double>(lookups)
                       : 0.0;
    }

    void
    accumulate(const DecodeCacheStats &o)
    {
        lookups += o.lookups;
        hits += o.hits;
    }
};

struct MicroOp;

/**
 * What one micro-op execution produced. Callers layer their own
 * side effects (memsys warming, predictor training, FuncStep records)
 * on top of these fields.
 */
struct UopOut
{
    Addr nextPc = 0;
    u64 result = 0;
    Addr effAddr = 0;
    u64 storeData = 0;
    bool taken = false;
    bool halted = false;
};

/**
 * Threaded-dispatch entry point: executes the op against a register
 * file and memory (including the destination-register write), filling
 * @p out. One function per op class, resolved once at decode.
 */
using UopExecFn = void (*)(const MicroOp &uop,
                           std::array<u64, numIntRegs> &regs,
                           SparseMemory &mem, UopOut &out);

/** One pre-decoded instruction. */
struct MicroOp
{
    UopExecFn fn = nullptr;
    Inst inst;
    Addr pc = 0;
    /** Static target of a displacement-branch terminator. */
    Addr takenTarget = 0;
    OpClass opClass = OpClass::Other;
    /** Access size for loads/stores (0 otherwise). */
    unsigned memSize = 0;
    bool isHalt = false;
    /** Control transfer (predictor-warming sites in fastForward). */
    bool isControl = false;
};

/** The block cache. One instance per (SparseMemory, interpreter). */
class DecodeCache
{
  public:
    static constexpr u32 kNoBlock = ~u32{0};
    /** Straight-line cap so pathological code can't make giant blocks. */
    static constexpr size_t kMaxBlockOps = 64;

    /** A decoded basic block: ops at startPc, startPc+4, ... */
    struct Block
    {
        Addr startPc = 0;
        std::vector<MicroOp> ops;
        /** Memoized successor block indexes (lazily resolved). */
        mutable u32 seqNext = kNoBlock;
        mutable u32 takenNext = kNoBlock;
        /**
         * Superblock profiling (func/superblock.hh): block-entry count
         * until promotion, and the terminating branch's last observed
         * direction (the stitch heuristic). Host-side metadata like the
         * memoized links — dropped with the block on invalidation,
         * never serialized, no effect on simulated state.
         */
        mutable u32 heat = 0;
        mutable bool lastTaken = false;

        /** PC after the last op (fall-through resume point). */
        Addr
        endPc() const
        {
            return startPc + 4 * static_cast<Addr>(ops.size());
        }
    };

    explicit DecodeCache(const SparseMemory &memory);

    /**
     * Revalidate against the backing memory's image generation,
     * dropping every block if a new program was loaded since the last
     * call. @return true if the cache was invalidated (callers must
     * drop any Block pointers they hold).
     */
    bool refresh();

    /** Lookup-or-decode the block starting exactly at @p pc. */
    const Block &blockAt(Addr pc);

    /** Fall-through successor of @p b (memoized). */
    const Block &
    chainSeq(const Block &b)
    {
        ++stat.lookups;
        if (b.seqNext != kNoBlock) {
            ++stat.hits;
            return blocks[b.seqNext];
        }
        bool decoded = false;
        b.seqNext = findOrDecode(b.endPc(), decoded);
        return blocks[b.seqNext];
    }

    /** Static taken-target successor of @p b's branch terminator. */
    const Block &
    chainTaken(const Block &b)
    {
        ++stat.lookups;
        if (b.takenNext != kNoBlock) {
            ++stat.hits;
            return blocks[b.takenNext];
        }
        bool decoded = false;
        b.takenNext = findOrDecode(b.ops.back().takenTarget, decoded);
        return blocks[b.takenNext];
    }

    /** Drop every cached block (capacity is kept). */
    void invalidate();

    const DecodeCacheStats &stats() const { return stat; }
    size_t blockCount() const { return blocks.size(); }

  private:
    /**
     * Find-or-decode, returning the block's index; sets @p decoded when
     * the block had to be decoded. Stat counting stays in the public
     * entry points so each counts exactly one lookup.
     */
    u32 findOrDecode(Addr pc, bool &decoded);
    u32 decodeBlock(Addr pc);
    void insertKey(Addr pc, u32 index);
    void grow();

    const SparseMemory &mem;
    /** deque: stable element addresses across insertions. */
    std::deque<Block> blocks;
    /** Open-addressing start-PC index (power-of-two, linear probe). */
    std::vector<Addr> keys;
    std::vector<u32> slots;
    size_t used = 0;
    u64 gen;
    DecodeCacheStats stat;
};

/** Decode one instruction into its micro-op (exposed for tests). */
MicroOp decodeMicroOp(Addr pc, const Inst &inst);

} // namespace nwsim

#endif // NWSIM_FUNC_DECODE_CACHE_HH
