/**
 * @file
 * Operand-value-based clock gating — the paper's Section 4 power
 * optimization.
 *
 * For every executed integer-unit operation, the model compares the power
 * of the full-width (64-bit) device against the device gated down to the
 * operation's width class (16 or 33 bits, per the zero48/zero31 control
 * signals of Figures 3 and 5), charging the zero-detect and result-bus
 * mux overheads the paper accounts for in Figure 6.
 */

#ifndef NWSIM_CORE_GATING_HH
#define NWSIM_CORE_GATING_HH

#include "ckpt/serial.hh"
#include "core/width.hh"
#include "power/device_model.hh"

namespace nwsim
{

/** Clock-gating model configuration. */
struct GatingConfig
{
    /** Master switch for the gating *accounting* (baseline still kept). */
    bool enabled = true;
    /** Second control signal for 33-bit operands (Figure 5/6). */
    bool gate33 = true;
    /**
     * Zero-detect on the load path (Section 4.2). When false, an operand
     * whose value came directly from a load carries no width tag and
     * forces the operation to full width — the paper reports 13.1%
     * (SPECint95) / 1.5% (MediaBench) of power-saving instructions would
     * be lost this way.
     */
    bool zeroDetectOnLoads = true;
    DeviceModelConfig devices;
};

/** Accumulated energy/occurrence statistics (mW-cycles, i.e. sum of mW). */
struct GatingStats
{
    /** Ops seen (integer-unit ops with a device class). */
    u64 ops = 0;
    /** Ops gated at 16 / 33 bits. */
    u64 gated16 = 0;
    u64 gated33 = 0;
    /** Gated ops with at least one operand directly from a load. */
    u64 gatedLoadSourced = 0;
    /** Ops that would have gated but were blocked by a load operand. */
    u64 blockedByLoad = 0;

    /** Baseline power: every op on a full 64-bit device (basic opcode
     *  gating assumed: only the op's own device is powered). */
    double baselineMwSum = 0.0;
    /** Power with operand-based gating applied (device portion only). */
    double gatedMwSum = 0.0;
    /** Overhead: zero-detect tagging + result-bus muxes. */
    double overheadMwSum = 0.0;
    /** Savings attributed to the 16-bit and 33-bit signals. */
    double saved16MwSum = 0.0;
    double saved33MwSum = 0.0;

    /** Sum @p other's counters into this one (sampled-run intervals). */
    void
    accumulate(const GatingStats &other)
    {
        ops += other.ops;
        gated16 += other.gated16;
        gated33 += other.gated33;
        gatedLoadSourced += other.gatedLoadSourced;
        blockedByLoad += other.blockedByLoad;
        baselineMwSum += other.baselineMwSum;
        gatedMwSum += other.gatedMwSum;
        overheadMwSum += other.overheadMwSum;
        saved16MwSum += other.saved16MwSum;
        saved33MwSum += other.saved33MwSum;
    }

    /** Net savings (Figure 6): saved@16 + saved@33 - overhead. */
    double
    netSavedMwSum() const
    {
        return saved16MwSum + saved33MwSum - overheadMwSum;
    }

    /** Total integer-unit power with the optimization (Figure 7). */
    double
    optimizedMwSum() const
    {
        return gatedMwSum + overheadMwSum;
    }

    /** Fractional reduction in integer-unit power (Figure 7 headline). */
    double
    reductionPercent() const
    {
        return baselineMwSum > 0.0
                   ? 100.0 * (1.0 - optimizedMwSum() / baselineMwSum)
                   : 0.0;
    }

    /** Share of power-saving ops with a load-sourced operand (§4.2). */
    double
    loadSourcedPercent() const
    {
        const u64 gated = gated16 + gated33;
        return gated ? 100.0 * static_cast<double>(gatedLoadSourced) /
                           static_cast<double>(gated)
                     : 0.0;
    }
};

/** Per-operation clock-gating power accounting. */
class ClockGatingModel
{
  public:
    explicit ClockGatingModel(const GatingConfig &config = {})
        : cfg(config), model(config.devices)
    {
    }

    /**
     * Record one executed operation.
     *
     * @param device      Which Table 4 device the op exercises.
     * @param a, b        Dataflow operand values.
     * @param a_from_load Operand a was produced directly by a load.
     * @param b_from_load Operand b was produced directly by a load.
     * @param writes_reg  Op produces a tagged result (zero-detect cost).
     */
    void recordOp(DeviceClass device, u64 a, u64 b, bool a_from_load,
                  bool b_from_load, bool writes_reg);

    void reset() { stat = GatingStats{}; }

    const GatingStats &stats() const { return stat; }
    const GatingConfig &config() const { return cfg; }
    const DeviceModel &devices() const { return model; }

    /** Serialize accumulated stats (the model's only mutable state). */
    void
    saveState(ckpt::ByteSink &sink) const
    {
        sink.u64v(stat.ops);
        sink.u64v(stat.gated16);
        sink.u64v(stat.gated33);
        sink.u64v(stat.gatedLoadSourced);
        sink.u64v(stat.blockedByLoad);
        sink.f64v(stat.baselineMwSum);
        sink.f64v(stat.gatedMwSum);
        sink.f64v(stat.overheadMwSum);
        sink.f64v(stat.saved16MwSum);
        sink.f64v(stat.saved33MwSum);
    }

    /** Restore saveState() data; false on malformed input. */
    bool
    loadState(ckpt::ByteSource &src)
    {
        GatingStats st;
        if (!src.u64v(st.ops) || !src.u64v(st.gated16) ||
            !src.u64v(st.gated33) || !src.u64v(st.gatedLoadSourced) ||
            !src.u64v(st.blockedByLoad) ||
            !src.f64v(st.baselineMwSum) || !src.f64v(st.gatedMwSum) ||
            !src.f64v(st.overheadMwSum) || !src.f64v(st.saved16MwSum) ||
            !src.f64v(st.saved33MwSum)) {
            return false;
        }
        stat = st;
        return true;
    }

  private:
    GatingConfig cfg;
    DeviceModel model;
    GatingStats stat;
};

} // namespace nwsim

#endif // NWSIM_CORE_GATING_HH
