#include "core/width_predictor.hh"

#include "common/logging.hh"

namespace nwsim
{

WidthPredictor::WidthPredictor(const WidthPredictorConfig &config)
    : cfg(config)
{
    NWSIM_ASSERT(cfg.entries > 0, "width predictor needs entries");
    NWSIM_ASSERT(cfg.threshold <= (1u << cfg.counterBits) - 1,
                 "threshold above counter range");
    // Initialize weakly narrow: the common case per Figure 1.
    counters.assign(cfg.entries, static_cast<u8>(cfg.threshold));
}

unsigned
WidthPredictor::indexOf(Addr pc) const
{
    return static_cast<unsigned>((pc >> 2) % cfg.entries);
}

bool
WidthPredictor::predictNarrow(Addr pc) const
{
    return counters[indexOf(pc)] >= cfg.threshold;
}

void
WidthPredictor::train(Addr pc, bool was_narrow)
{
    const bool predicted = predictNarrow(pc);
    ++stat.predictions;
    if (predicted == was_narrow)
        ++stat.correct;
    else if (predicted)
        ++stat.falseNarrow;
    else
        ++stat.missedNarrow;

    u8 &counter = counters[indexOf(pc)];
    const u8 max_value = static_cast<u8>((1u << cfg.counterBits) - 1);
    if (was_narrow) {
        if (counter < max_value)
            ++counter;
    } else {
        if (counter > 0)
            --counter;
    }
}

void
WidthPredictor::reset()
{
    stat = WidthPredictorStats{};
    counters.assign(cfg.entries, static_cast<u8>(cfg.threshold));
}

} // namespace nwsim
