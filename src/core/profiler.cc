#include "core/profiler.hh"

#include <algorithm>
#include <bit>

#include "common/logging.hh"

namespace nwsim
{

WidthCategory
widthCategory(OpClass cls)
{
    switch (cls) {
      case OpClass::IntAlu:
      case OpClass::MemRead:
      case OpClass::MemWrite:
      case OpClass::Branch:
      case OpClass::Jump:
        return WidthCategory::Arithmetic;
      case OpClass::Logic:
        return WidthCategory::Logical;
      case OpClass::Shift:
        return WidthCategory::Shift;
      case OpClass::IntMult:
      case OpClass::IntDiv:
        return WidthCategory::Multiply;
      default:
        NWSIM_PANIC("widthCategory on non-integer-unit class");
    }
}

const char *
widthCategoryName(WidthCategory cat)
{
    switch (cat) {
      case WidthCategory::Arithmetic:
        return "arith";
      case WidthCategory::Logical:
        return "logic";
      case WidthCategory::Shift:
        return "shift";
      case WidthCategory::Multiply:
        return "mult";
      default:
        return "?";
    }
}

size_t
PcWidthMap::slotFor(Addr pc) const
{
    // Fibonacci hashing: multiply by 2^64/phi and keep the top bits.
    // PCs are small, 4-aligned, and densely clustered — exactly the
    // distribution a masked identity hash would pile into a few runs.
    const int shift = 64 - std::countr_zero(keys.size());
    return static_cast<size_t>((pc * 0x9E3779B97F4A7C15ull) >> shift);
}

void
PcWidthMap::grow()
{
    const size_t newCap = keys.empty() ? 1024 : keys.size() * 2;
    std::vector<Addr> oldKeys = std::move(keys);
    std::vector<u8> oldVals = std::move(vals);
    keys.assign(newCap, kEmpty);
    vals.assign(newCap, 0);
    const size_t mask = newCap - 1;
    for (size_t i = 0; i < oldKeys.size(); ++i) {
        if (oldKeys[i] == kEmpty)
            continue;
        size_t slot = slotFor(oldKeys[i]);
        while (keys[slot] != kEmpty)
            slot = (slot + 1) & mask;
        keys[slot] = oldKeys[i];
        vals[slot] = oldVals[i];
    }
}

u8 &
PcWidthMap::findOrInsert(Addr pc)
{
    NWSIM_ASSERT(pc != kEmpty, "reserved sentinel PC");
    // Grow at ~70% load so probe chains stay short.
    if (keys.empty() || used * 10 >= keys.size() * 7)
        grow();
    const size_t mask = keys.size() - 1;
    size_t slot = slotFor(pc);
    while (keys[slot] != kEmpty && keys[slot] != pc)
        slot = (slot + 1) & mask;
    if (keys[slot] == kEmpty) {
        keys[slot] = pc;
        ++used;
    }
    return vals[slot];
}

u8
PcWidthMap::lookup(Addr pc) const
{
    if (keys.empty())
        return 0;
    const size_t mask = keys.size() - 1;
    size_t slot = slotFor(pc);
    while (keys[slot] != kEmpty) {
        if (keys[slot] == pc)
            return vals[slot];
        slot = (slot + 1) & mask;
    }
    return 0;
}

void
WidthProfiler::recordOp(Addr pc, OpClass cls, u64 a, u64 b)
{
    if (cls == OpClass::Other)
        return;
    ++opCount;

    const unsigned width = std::max(effectiveWidth(a), effectiveWidth(b));
    ++widthHist[width];

    const auto cat = static_cast<size_t>(widthCategory(cls));
    const WidthClass wc = pairClass(a, b);
    if (wc == WidthClass::Narrow16)
        ++narrow16ByCat[cat];
    else if (wc == WidthClass::Narrow33)
        ++narrow33ByCat[cat];

    u8 &seen = pcWidthSeen.findOrInsert(pc);
    seen |= (wc == WidthClass::Narrow16) ? 1 : 2;
}

void
WidthProfiler::reset()
{
    *this = WidthProfiler{};
}

void
WidthProfiler::merge(const WidthProfiler &other)
{
    opCount += other.opCount;
    for (size_t w = 0; w < widthHist.size(); ++w)
        widthHist[w] += other.widthHist[w];
    for (size_t c = 0; c < numCats; ++c) {
        narrow16ByCat[c] += other.narrow16ByCat[c];
        narrow33ByCat[c] += other.narrow33ByCat[c];
    }
    other.pcWidthSeen.forEach([this](Addr pc, u8 bits) {
        pcWidthSeen.findOrInsert(pc) |= bits;
    });
}

double
WidthProfiler::cumulativePercent(unsigned bits) const
{
    NWSIM_ASSERT(bits <= 64, "bad width");
    if (opCount == 0)
        return 0.0;
    u64 sum = 0;
    for (unsigned w = 1; w <= bits; ++w)
        sum += widthHist[w];
    return 100.0 * static_cast<double>(sum) / static_cast<double>(opCount);
}

double
WidthProfiler::narrow16Percent(WidthCategory cat) const
{
    if (opCount == 0)
        return 0.0;
    return 100.0 *
           static_cast<double>(narrow16ByCat[static_cast<size_t>(cat)]) /
           static_cast<double>(opCount);
}

double
WidthProfiler::narrow33Percent(WidthCategory cat) const
{
    if (opCount == 0)
        return 0.0;
    const auto i = static_cast<size_t>(cat);
    return 100.0 *
           static_cast<double>(narrow16ByCat[i] + narrow33ByCat[i]) /
           static_cast<double>(opCount);
}

double
WidthProfiler::narrow16TotalPercent() const
{
    double total = 0.0;
    for (size_t c = 0; c < numCats; ++c)
        total += narrow16Percent(static_cast<WidthCategory>(c));
    return total;
}

double
WidthProfiler::narrow33TotalPercent() const
{
    double total = 0.0;
    for (size_t c = 0; c < numCats; ++c)
        total += narrow33Percent(static_cast<WidthCategory>(c));
    return total;
}

WidthProfilerSnapshot
WidthProfiler::snapshot() const
{
    WidthProfilerSnapshot snap;
    snap.opCount = opCount;
    snap.widthHist = widthHist;
    snap.narrow16ByCat = narrow16ByCat;
    snap.narrow33ByCat = narrow33ByCat;
    snap.pcWidthSeen.reserve(pcWidthSeen.size());
    pcWidthSeen.forEach([&snap](Addr pc, u8 bits) {
        snap.pcWidthSeen.emplace_back(pc, bits);
    });
    std::sort(snap.pcWidthSeen.begin(), snap.pcWidthSeen.end());
    return snap;
}

WidthProfiler
WidthProfiler::fromSnapshot(const WidthProfilerSnapshot &snap)
{
    WidthProfiler p;
    p.opCount = snap.opCount;
    p.widthHist = snap.widthHist;
    p.narrow16ByCat = snap.narrow16ByCat;
    p.narrow33ByCat = snap.narrow33ByCat;
    for (const auto &[pc, bits] : snap.pcWidthSeen)
        p.pcWidthSeen.findOrInsert(pc) = bits;
    return p;
}

double
WidthProfiler::fluctuationPercent() const
{
    if (pcWidthSeen.empty())
        return 0.0;
    u64 fluctuating = 0;
    pcWidthSeen.forEach([&fluctuating](Addr, u8 seen) {
        if (seen == 3)
            ++fluctuating;
    });
    return 100.0 * static_cast<double>(fluctuating) /
           static_cast<double>(pcWidthSeen.size());
}

} // namespace nwsim
