#include "core/profiler.hh"

#include <algorithm>

#include "common/logging.hh"

namespace nwsim
{

WidthCategory
widthCategory(OpClass cls)
{
    switch (cls) {
      case OpClass::IntAlu:
      case OpClass::MemRead:
      case OpClass::MemWrite:
      case OpClass::Branch:
      case OpClass::Jump:
        return WidthCategory::Arithmetic;
      case OpClass::Logic:
        return WidthCategory::Logical;
      case OpClass::Shift:
        return WidthCategory::Shift;
      case OpClass::IntMult:
      case OpClass::IntDiv:
        return WidthCategory::Multiply;
      default:
        NWSIM_PANIC("widthCategory on non-integer-unit class");
    }
}

const char *
widthCategoryName(WidthCategory cat)
{
    switch (cat) {
      case WidthCategory::Arithmetic:
        return "arith";
      case WidthCategory::Logical:
        return "logic";
      case WidthCategory::Shift:
        return "shift";
      case WidthCategory::Multiply:
        return "mult";
      default:
        return "?";
    }
}

void
WidthProfiler::recordOp(Addr pc, OpClass cls, u64 a, u64 b)
{
    if (cls == OpClass::Other)
        return;
    ++opCount;

    const unsigned width = std::max(effectiveWidth(a), effectiveWidth(b));
    ++widthHist[width];

    const auto cat = static_cast<size_t>(widthCategory(cls));
    const WidthClass wc = pairClass(a, b);
    if (wc == WidthClass::Narrow16)
        ++narrow16ByCat[cat];
    else if (wc == WidthClass::Narrow33)
        ++narrow33ByCat[cat];

    u8 &seen = pcWidthSeen[pc];
    seen |= (wc == WidthClass::Narrow16) ? 1 : 2;
}

void
WidthProfiler::reset()
{
    *this = WidthProfiler{};
}

double
WidthProfiler::cumulativePercent(unsigned bits) const
{
    NWSIM_ASSERT(bits <= 64, "bad width");
    if (opCount == 0)
        return 0.0;
    u64 sum = 0;
    for (unsigned w = 1; w <= bits; ++w)
        sum += widthHist[w];
    return 100.0 * static_cast<double>(sum) / static_cast<double>(opCount);
}

double
WidthProfiler::narrow16Percent(WidthCategory cat) const
{
    if (opCount == 0)
        return 0.0;
    return 100.0 *
           static_cast<double>(narrow16ByCat[static_cast<size_t>(cat)]) /
           static_cast<double>(opCount);
}

double
WidthProfiler::narrow33Percent(WidthCategory cat) const
{
    if (opCount == 0)
        return 0.0;
    const auto i = static_cast<size_t>(cat);
    return 100.0 *
           static_cast<double>(narrow16ByCat[i] + narrow33ByCat[i]) /
           static_cast<double>(opCount);
}

double
WidthProfiler::narrow16TotalPercent() const
{
    double total = 0.0;
    for (size_t c = 0; c < numCats; ++c)
        total += narrow16Percent(static_cast<WidthCategory>(c));
    return total;
}

double
WidthProfiler::narrow33TotalPercent() const
{
    double total = 0.0;
    for (size_t c = 0; c < numCats; ++c)
        total += narrow33Percent(static_cast<WidthCategory>(c));
    return total;
}

WidthProfilerSnapshot
WidthProfiler::snapshot() const
{
    WidthProfilerSnapshot snap;
    snap.opCount = opCount;
    snap.widthHist = widthHist;
    snap.narrow16ByCat = narrow16ByCat;
    snap.narrow33ByCat = narrow33ByCat;
    snap.pcWidthSeen.assign(pcWidthSeen.begin(), pcWidthSeen.end());
    std::sort(snap.pcWidthSeen.begin(), snap.pcWidthSeen.end());
    return snap;
}

WidthProfiler
WidthProfiler::fromSnapshot(const WidthProfilerSnapshot &snap)
{
    WidthProfiler p;
    p.opCount = snap.opCount;
    p.widthHist = snap.widthHist;
    p.narrow16ByCat = snap.narrow16ByCat;
    p.narrow33ByCat = snap.narrow33ByCat;
    p.pcWidthSeen.insert(snap.pcWidthSeen.begin(),
                         snap.pcWidthSeen.end());
    return p;
}

double
WidthProfiler::fluctuationPercent() const
{
    if (pcWidthSeen.empty())
        return 0.0;
    u64 fluctuating = 0;
    for (const auto &[pc, seen] : pcWidthSeen) {
        if (seen == 3)
            ++fluctuating;
    }
    return 100.0 * static_cast<double>(fluctuating) /
           static_cast<double>(pcWidthSeen.size());
}

} // namespace nwsim
