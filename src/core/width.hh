/**
 * @file
 * Narrow-width operand detection — the core mechanism of the paper.
 *
 * A value is "narrow" when its upper bits carry no information: all zeros
 * for non-negative values (the zero48/zero31 signals of Figures 3 and 5)
 * or all ones for negative two's-complement values (the parallel
 * ones-detect of Section 4.3). The effective width of a value is the
 * number of magnitude bits that remain after dropping those redundant
 * leading bits, matching the paper's usage ("adding 17, a 5-bit number,
 * to 2, a 2-bit number").
 */

#ifndef NWSIM_CORE_WIDTH_HH
#define NWSIM_CORE_WIDTH_HH

#include <algorithm>

#include "common/bitops.hh"

namespace nwsim
{

/** Operand/operation width classes used by gating and packing. */
enum class WidthClass : u8
{
    Narrow16,   ///< upper 48 bits redundant: zero48 | ones48
    Narrow33,   ///< upper 31 bits redundant: zero31 | ones31
    Wide,       ///< needs the full 64-bit datapath
};

/**
 * True if the top @p upper bits of @p value are all zeros or all ones,
 * i.e. the hardware's parallel zero-detect OR ones-detect fires.
 */
constexpr bool
upperBitsRedundant(u64 value, unsigned upper)
{
    if (upper == 0)
        return true;
    const u64 top = value >> (64 - upper);
    const u64 all = (upper >= 64) ? ~u64{0} : ((u64{1} << upper) - 1);
    return top == 0 || top == all;
}

/** zero48/ones48: the operand fits the 16-bit datapath slice. */
constexpr bool
isNarrow16(u64 value)
{
    return upperBitsRedundant(value, 48);
}

/** zero31/ones31: the operand fits the 33-bit (address) datapath slice. */
constexpr bool
isNarrow33(u64 value)
{
    return upperBitsRedundant(value, 31);
}

/**
 * Effective magnitude width in bits: 64 minus the redundant leading
 * zeros (non-negative) or ones (negative), minimum 1. 17 -> 5, 2 -> 2,
 * 2^32 -> 33, 0 and -1 -> 1, 65535 -> 16, -65536 -> 16.
 */
constexpr unsigned
effectiveWidth(u64 value)
{
    const bool negative = (value >> 63) & 1;
    const unsigned redundant = negative ? clo64(value) : clz64(value);
    return std::max(1u, 64 - redundant);
}

/** Width class of a single operand value. */
constexpr WidthClass
classOf(u64 value)
{
    if (isNarrow16(value))
        return WidthClass::Narrow16;
    if (isNarrow33(value))
        return WidthClass::Narrow33;
    return WidthClass::Wide;
}

/**
 * Width class of an operation: both operands must fit the slice for the
 * upper portion of the functional unit to be gated or shared (paper:
 * "Both operands must be small in order for the clock gating to be
 * allowed").
 */
constexpr WidthClass
pairClass(u64 a, u64 b)
{
    return std::max(classOf(a), classOf(b));
}

/** Datapath width (bits) a gated operation of class @p wc consumes. */
constexpr unsigned
gatedWidth(WidthClass wc)
{
    switch (wc) {
      case WidthClass::Narrow16:
        return 16;
      case WidthClass::Narrow33:
        return 33;
      default:
        return 64;
    }
}

} // namespace nwsim

#endif // NWSIM_CORE_WIDTH_HH
