#include "core/gating.hh"

namespace nwsim
{

void
ClockGatingModel::recordOp(DeviceClass device, u64 a, u64 b,
                           bool a_from_load, bool b_from_load,
                           bool writes_reg)
{
    if (device == DeviceClass::None)
        return;
    ++stat.ops;

    const double full = model.fullPower(device);
    stat.baselineMwSum += full;

    if (!cfg.enabled) {
        stat.gatedMwSum += full;
        return;
    }

    // Zero-detect tagging of produced results: charged whenever a result
    // is written back (the tag must be computed to be stored in the RUU),
    // matching the paper's "small and nearly constant" overhead.
    if (writes_reg)
        stat.overheadMwSum += model.zeroDetectPower();

    // Without zero-detect on the load path, a load-sourced operand has
    // no width tag: the op must run at full width.
    WidthClass wc = pairClass(a, b);
    const bool load_sourced = a_from_load || b_from_load;
    if (!cfg.zeroDetectOnLoads && load_sourced)
        wc = WidthClass::Wide;
    if (!cfg.gate33 && wc == WidthClass::Narrow33)
        wc = WidthClass::Wide;

    if (wc == WidthClass::Wide) {
        stat.gatedMwSum += full;
        if (!cfg.zeroDetectOnLoads && load_sourced &&
            pairClass(a, b) != WidthClass::Wide) {
            ++stat.blockedByLoad;
        }
        return;
    }

    const double gated = model.power(device, gatedWidth(wc));
    stat.gatedMwSum += gated;
    stat.overheadMwSum += model.muxPower();
    if (wc == WidthClass::Narrow16) {
        ++stat.gated16;
        stat.saved16MwSum += full - gated;
    } else {
        ++stat.gated33;
        stat.saved33MwSum += full - gated;
    }
    if (load_sourced)
        ++stat.gatedLoadSourced;
}

} // namespace nwsim
