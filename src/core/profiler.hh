/**
 * @file
 * Operand bitwidth profiling: the measurement machinery behind the
 * paper's Figures 1, 2, 4, and 5.
 */

#ifndef NWSIM_CORE_PROFILER_HH
#define NWSIM_CORE_PROFILER_HH

#include <array>
#include <utility>
#include <vector>

#include "core/width.hh"
#include "isa/opcode.hh"

namespace nwsim
{

/** Figure 4/5 operation categories (the paper's legend). */
enum class WidthCategory : u8
{
    Arithmetic,     ///< add/sub/compare + address calculations
    Logical,
    Shift,
    Multiply,       ///< multiply and divide (multiplier-side)
    NumCategories,
};

/** Map an operation class to its Figure 4/5 category. */
WidthCategory widthCategory(OpClass cls);

/** Printable category name. */
const char *widthCategoryName(WidthCategory cat);

/**
 * Flat, serializable image of a WidthProfiler — what the campaign
 * engine ships across process boundaries (fork-isolated jobs) and into
 * the campaign journal. pcWidthSeen is sorted by PC so the encoding is
 * byte-stable regardless of hash-map iteration order.
 */
struct WidthProfilerSnapshot
{
    u64 opCount = 0;
    std::array<u64, 65> widthHist{};
    std::array<u64, static_cast<size_t>(WidthCategory::NumCategories)>
        narrow16ByCat{};
    std::array<u64, static_cast<size_t>(WidthCategory::NumCategories)>
        narrow33ByCat{};
    std::vector<std::pair<Addr, u8>> pcWidthSeen;
};

/**
 * Open-addressing PC -> width-seen-bits map for the Figure 2
 * fluctuation statistic. recordOp() hits this table once per executed
 * integer-unit op, making it the hottest map in the simulator; a flat
 * power-of-two table with linear probing keeps the common case (PC
 * already present) to one cache line, where unordered_map chases a
 * bucket pointer per lookup.
 */
class PcWidthMap
{
  public:
    /**
     * Width-seen bits for @p pc, inserting 0 if absent. The reference
     * is invalidated by the next findOrInsert (the table may grow).
     */
    u8 &findOrInsert(Addr pc);

    /** Width-seen bits for @p pc, or 0 if the PC was never recorded. */
    u8 lookup(Addr pc) const;

    u64 size() const { return used; }
    bool empty() const { return used == 0; }

    /** Visit every (pc, bits) entry, in unspecified order. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (size_t i = 0; i < keys.size(); ++i) {
            if (keys[i] != kEmpty)
                fn(keys[i], vals[i]);
        }
    }

  private:
    /**
     * Empty-slot sentinel. Instruction PCs are 4-byte aligned, so the
     * all-ones address can never be recorded.
     */
    static constexpr Addr kEmpty = ~Addr{0};

    size_t slotFor(Addr pc) const;
    void grow();

    std::vector<Addr> keys;
    std::vector<u8> vals;
    u64 used = 0;
};

/**
 * Collects per-operation operand-width statistics.
 *
 * recordOp() is called once per executed integer-unit operation with the
 * two dataflow operand values (exactly what the paper's decode-stage
 * width tags see, including wrong-path executions under realistic branch
 * prediction — the effect Figure 2 measures).
 */
class WidthProfiler
{
  public:
    /** Record one executed operation. */
    void recordOp(Addr pc, OpClass cls, u64 a, u64 b);

    /** Reset all statistics (end of warmup). */
    void reset();

    /**
     * Fold @p other's statistics into this profiler, as if every
     * operation both saw had been recorded here (histograms summed,
     * per-PC width-seen bits OR-ed). Used by the sampled-simulation
     * aggregator to combine measurement intervals.
     */
    void merge(const WidthProfiler &other);

    // ---- Figure 1: cumulative operand-width distribution --------------

    /**
     * Percent of operations whose max(operand widths) is <= @p bits
     * (the "cumulative percentage of integer instructions in which both
     * operands are less than or equal to the specified bitwidth").
     */
    double cumulativePercent(unsigned bits) const;

    /** Raw histogram bucket: ops whose max operand width == bits. */
    u64 histogramAt(unsigned bits) const { return widthHist[bits]; }

    // ---- Figures 4 and 5: narrow ops by category ------------------------

    /** Percent of all ops that are narrow-16 and in @p cat. */
    double narrow16Percent(WidthCategory cat) const;

    /** Percent of all ops that are narrow-33 (or 16) and in @p cat. */
    double narrow33Percent(WidthCategory cat) const;

    /** Percent of all ops that are narrow-16 (any category). */
    double narrow16TotalPercent() const;

    /** Percent of all ops that are narrow-33 or narrower (any category). */
    double narrow33TotalPercent() const;

    // ---- Figure 2: per-PC width fluctuation -----------------------------

    /**
     * Percent of static instructions (PC values) whose operation width
     * crossed the 16-bit boundary at least once during the run (executed
     * both as narrow-16 and as wider-than-16).
     */
    double fluctuationPercent() const;

    u64 totalOps() const { return opCount; }

    // ---- Serialization (process isolation / campaign journal) ----------

    /** Deterministic flat image of the full profiler state. */
    WidthProfilerSnapshot snapshot() const;

    /** Rebuild a profiler whose every statistic matches @p snap. */
    static WidthProfiler fromSnapshot(const WidthProfilerSnapshot &snap);

  private:
    static constexpr size_t numCats =
        static_cast<size_t>(WidthCategory::NumCategories);

    u64 opCount = 0;
    std::array<u64, 65> widthHist{};
    std::array<u64, numCats> narrow16ByCat{};
    std::array<u64, numCats> narrow33ByCat{};

    /** bit0: executed narrow-16; bit1: executed wider than 16. */
    PcWidthMap pcWidthSeen;
};

} // namespace nwsim

#endif // NWSIM_CORE_PROFILER_HH
