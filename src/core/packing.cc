// Packing legality is header-only (inline predicates used by the issue
// stage); this translation unit exists to anchor the library target and
// hold non-inline helpers if the policy grows.
#include "core/packing.hh"
