/**
 * @file
 * Dynamic operand-width predictor.
 *
 * The paper's mechanisms read operand widths directly from the
 * reservation-station tags, which sim-outorder-style execute-at-dispatch
 * makes available early. A machine that executes at issue time would
 * instead need to *predict* widths at decode to set up gating/packing in
 * advance. Figure 2 measures exactly the property such a predictor
 * depends on: most static instructions keep a stable width class, and
 * wrong paths are the main source of fluctuation.
 *
 * This is a PC-indexed table of saturating 2-bit counters, predicting
 * "this operation will be narrow-16", trained with actual outcomes —
 * structurally the same hardware as a bimodal branch predictor.
 */

#ifndef NWSIM_CORE_WIDTH_PREDICTOR_HH
#define NWSIM_CORE_WIDTH_PREDICTOR_HH

#include <vector>

#include "ckpt/serial.hh"
#include "core/width.hh"

namespace nwsim
{

/** Width-predictor geometry. */
struct WidthPredictorConfig
{
    unsigned entries = 2048;
    unsigned counterBits = 2;
    /**
     * Predict-narrow threshold as a counter value; with 2-bit counters
     * and threshold 2, the predictor needs one narrow observation from
     * the weakly-wide state to flip.
     */
    unsigned threshold = 2;
};

/** Accuracy statistics. */
struct WidthPredictorStats
{
    u64 predictions = 0;
    u64 correct = 0;
    /** Predicted narrow but was wide: would have mis-gated/mis-packed. */
    u64 falseNarrow = 0;
    /** Predicted wide but was narrow: missed opportunity. */
    u64 missedNarrow = 0;

    double
    accuracy() const
    {
        return predictions ? static_cast<double>(correct) / predictions
                           : 0.0;
    }
};

/** Bimodal narrowness predictor. */
class WidthPredictor
{
  public:
    explicit WidthPredictor(const WidthPredictorConfig &config = {});

    /** Predict whether the op at @p pc will be narrow-16. */
    bool predictNarrow(Addr pc) const;

    /**
     * Record the actual outcome for @p pc (train + score the previous
     * prediction for the same PC).
     */
    void train(Addr pc, bool was_narrow);

    void reset();

    const WidthPredictorStats &stats() const { return stat; }

    /** Serialize stats + counter table (checkpointing). */
    void
    saveState(ckpt::ByteSink &sink) const
    {
        sink.u64v(stat.predictions);
        sink.u64v(stat.correct);
        sink.u64v(stat.falseNarrow);
        sink.u64v(stat.missedNarrow);
        sink.u64v(counters.size());
        for (u8 c : counters)
            sink.u8v(c);
    }

    /** Restore saveState() data; false on malformed input. */
    bool
    loadState(ckpt::ByteSource &src)
    {
        WidthPredictorStats st;
        if (!src.u64v(st.predictions) || !src.u64v(st.correct) ||
            !src.u64v(st.falseNarrow) || !src.u64v(st.missedNarrow)) {
            return false;
        }
        u64 count = 0;
        if (!src.u64v(count) || count != counters.size())
            return false;
        std::vector<u8> loaded(counters.size());
        for (u8 &c : loaded) {
            if (!src.u8v(c))
                return false;
        }
        stat = st;
        counters = std::move(loaded);
        return true;
    }

  private:
    unsigned indexOf(Addr pc) const;

    WidthPredictorConfig cfg;
    WidthPredictorStats stat;
    std::vector<u8> counters;
};

} // namespace nwsim

#endif // NWSIM_CORE_WIDTH_PREDICTOR_HH
