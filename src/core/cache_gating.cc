#include "core/cache_gating.hh"

#include "common/logging.hh"

namespace nwsim
{

void
CacheGatingModel::recordAccess(u64 value, unsigned access_bytes)
{
    NWSIM_ASSERT(access_bytes == 1 || access_bytes == 2 ||
                     access_bytes == 4 || access_bytes == 8,
                 "bad access size ", access_bytes);
    ++stat.accesses;
    const double full = cfg.fixedMw + cfg.dataPath64Mw;
    stat.baselineMwSum += full;

    if (!cfg.enabled) {
        stat.gatedMwSum += full;
        return;
    }

    // Static (opcode) gating: the access size caps the path width.
    unsigned width = access_bytes * 8;
    if (width < 64)
        ++stat.gatedBySize;

    // Dynamic (operand) gating below the access size.
    const WidthClass wc = classOf(value);
    if (wc == WidthClass::Narrow16 && width > 16) {
        width = 16;
        ++stat.gated16;
    } else if (cfg.gate33 && wc == WidthClass::Narrow33 && width > 33) {
        width = 33;
        ++stat.gated33;
    }

    const double data =
        cfg.dataPath64Mw * static_cast<double>(width) / 64.0;
    stat.gatedMwSum += cfg.fixedMw + data;
    if (width < access_bytes * 8)
        stat.overheadMwSum += cfg.muxMw;
}

} // namespace nwsim
