/**
 * @file
 * Operation packing — the paper's Section 5 performance optimization.
 *
 * Legality predicates and lane bookkeeping for issuing multiple
 * narrow-width instructions that perform the same operation into one
 * 64-bit integer ALU as 16-bit subword lanes ("a dynamic form of MMX"),
 * plus the Section 5.3 "replay packing" speculation on operand size with
 * squash-and-reissue replay traps.
 */

#ifndef NWSIM_CORE_PACKING_HH
#define NWSIM_CORE_PACKING_HH

#include "core/width.hh"
#include "func/semantics.hh"
#include "isa/inst.hh"

namespace nwsim
{

/** Operation-packing configuration. */
struct PackingConfig
{
    /** Master switch: pack narrow same-op instructions at issue. */
    bool enabled = false;
    /** Section 5.3 replay packing: pack with one wide operand. */
    bool replay = false;
    /**
     * Subword lanes per 64-bit ALU. Multimedia ALUs cut the carry chain
     * at 16-bit boundaries, giving four lanes (the paper provisions
     * "4 extra lines ... on the result bus for the carry-out").
     */
    unsigned lanesPerAlu = 4;
    /**
     * A packed group consumes one issue slot (the paper: packing "opens
     * up machine issue bandwidth"). Set false for the ablation where each
     * packed instruction still consumes its own slot and only ALU
     * bandwidth is saved.
     */
    bool groupCountsOneSlot = true;
    /** Cycles before a replay-trapped instruction may re-issue. */
    unsigned replayPenalty = 2;
};

/** Packing statistics. */
struct PackingStats
{
    u64 packedGroups = 0;       ///< groups with >= 2 lanes in use
    u64 packedInsts = 0;        ///< instructions issued inside such groups
    u64 replaySpeculations = 0; ///< instructions packed via replay rule
    u64 replayTraps = 0;        ///< of those, squashed and re-issued
    u64 packEligibleIssued = 0; ///< issued ops that were pack-eligible

    /** Sum @p other's counters into this one (sampled-run intervals). */
    void
    accumulate(const PackingStats &other)
    {
        packedGroups += other.packedGroups;
        packedInsts += other.packedInsts;
        replaySpeculations += other.replaySpeculations;
        replayTraps += other.replayTraps;
        packEligibleIssued += other.packEligibleIssued;
    }
};

/**
 * True if @p inst with operand values @p a, @p b can be packed under the
 * strict (both-narrow) rule of Section 5.2.
 */
inline bool
packEligible(const Inst &inst, u64 a, u64 b)
{
    return opInfo(inst.op).packKey != PackKey::None && isNarrow16(a) &&
           isNarrow16(b);
}

/**
 * True if @p inst qualifies for replay packing (Section 5.3): an
 * add/sub-shaped operation where exactly one operand is narrow and the
 * wide operand's upper bits pass straight to the result unless a carry
 * crosses the 16-bit boundary. For subtraction only a wide minuend
 * qualifies (the hardware muxes the wide operand's upper bits into the
 * result, which is only algebraically sensible on that side).
 */
inline bool
replayEligible(const Inst &inst, u64 a, u64 b)
{
    if (!opInfo(inst.op).replayPackable)
        return false;
    const bool an = isNarrow16(a);
    const bool bn = isNarrow16(b);
    if (an == bn)
        return false;   // both narrow: strict packing; both wide: no.
    const PackKey key = opInfo(inst.op).packKey;
    if (key == PackKey::Sub)
        return !an && bn;   // wide minuend, narrow subtrahend only
    return true;            // add: either side may be wide
}

/**
 * True if executing @p inst packed (low 16 bits computed in a lane, the
 * wide operand's upper 48 bits muxed into the result) would produce the
 * wrong value — i.e. the replay trap fires and the instruction must be
 * squashed and re-issued at full width.
 */
inline bool
replayWouldTrap(const Inst &inst, u64 a, u64 b, Addr pc)
{
    const u64 wide = isNarrow16(a) ? b : a;
    const u64 true_result = aluResult(inst, a, b, pc);
    const u64 packed_result =
        (wide & ~u64{0xffff}) | (true_result & 0xffff);
    return packed_result != true_result;
}

} // namespace nwsim

#endif // NWSIM_CORE_PACKING_HH
