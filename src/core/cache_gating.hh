/**
 * @file
 * Narrow-width cache data-path gating — an implementation of the
 * paper's closing suggestion that the mechanisms "could be extended to
 * other optimizations as well, such as reducing power in the floating
 * point units or in the cache memories".
 *
 * Model: each D-cache access spends energy in the decoders/tag arrays
 * (fixed) and in the 64-bit data path — sense amps, write drivers, and
 * the data bus (width-dependent). A load whose incoming value carries a
 * zero48/ones48 tag, or a store whose data operand is tagged narrow,
 * only toggles the low 16 (or 33) bits of that data path; the upper
 * portion is gated exactly like the ALU's upper bits. The same
 * zero-detect logic computes the tags, so the only new overhead is the
 * data-path mux, charged per gated access.
 */

#ifndef NWSIM_CORE_CACHE_GATING_HH
#define NWSIM_CORE_CACHE_GATING_HH

#include "ckpt/serial.hh"
#include "core/width.hh"

namespace nwsim
{

/** Energy parameters for one cache access (mW at the paper's 500MHz). */
struct CacheGatingConfig
{
    bool enabled = true;
    /** Fixed per-access cost: decode, tag compare, control. */
    double fixedMw = 60.0;
    /** Width-dependent cost of the 64-bit data path, at full width. */
    double dataPath64Mw = 40.0;
    /** Mux overhead per gated access (Table 4's mux, on the data bus). */
    double muxMw = 3.2;
    /** Gate at 33 bits too (shares the zero-detect with the ALU). */
    bool gate33 = true;
};

/** Accumulated cache data-path energy statistics (mW-cycle sums). */
struct CacheGatingStats
{
    u64 accesses = 0;
    u64 gated16 = 0;
    u64 gated33 = 0;
    /** Sub-64-bit accesses (byte/word/long) gated by the opcode alone. */
    u64 gatedBySize = 0;
    double baselineMwSum = 0.0;
    double gatedMwSum = 0.0;
    double overheadMwSum = 0.0;

    double
    optimizedMwSum() const
    {
        return gatedMwSum + overheadMwSum;
    }

    double
    reductionPercent() const
    {
        return baselineMwSum > 0.0
                   ? 100.0 * (1.0 - optimizedMwSum() / baselineMwSum)
                   : 0.0;
    }
};

/**
 * Per-access energy accounting for the D-cache data path.
 *
 * Two gating sources compose (the paper's opcode-based gating plus its
 * operand-based gating): the access *size* bounds the data-path width
 * statically (an ldbu never toggles more than 8 bits), and the value
 * tag gates dynamically below that.
 */
class CacheGatingModel
{
  public:
    explicit CacheGatingModel(const CacheGatingConfig &config = {})
        : cfg(config)
    {
    }

    /**
     * Record one D-cache access.
     * @param value       The loaded or stored value.
     * @param access_bytes Access size in bytes (1/2/4/8).
     */
    void recordAccess(u64 value, unsigned access_bytes);

    void reset() { stat = CacheGatingStats{}; }

    const CacheGatingStats &stats() const { return stat; }
    const CacheGatingConfig &config() const { return cfg; }

    /** Serialize accumulated stats (the model's only mutable state). */
    void
    saveState(ckpt::ByteSink &sink) const
    {
        sink.u64v(stat.accesses);
        sink.u64v(stat.gated16);
        sink.u64v(stat.gated33);
        sink.u64v(stat.gatedBySize);
        sink.f64v(stat.baselineMwSum);
        sink.f64v(stat.gatedMwSum);
        sink.f64v(stat.overheadMwSum);
    }

    /** Restore saveState() data; false on malformed input. */
    bool
    loadState(ckpt::ByteSource &src)
    {
        CacheGatingStats st;
        if (!src.u64v(st.accesses) || !src.u64v(st.gated16) ||
            !src.u64v(st.gated33) || !src.u64v(st.gatedBySize) ||
            !src.f64v(st.baselineMwSum) || !src.f64v(st.gatedMwSum) ||
            !src.f64v(st.overheadMwSum)) {
            return false;
        }
        stat = st;
        return true;
    }

  private:
    CacheGatingConfig cfg;
    CacheGatingStats stat;
};

} // namespace nwsim

#endif // NWSIM_CORE_CACHE_GATING_HH
