#include "common/error.hh"

namespace nwsim
{

int
exitCodeFor(ErrorKind kind)
{
    switch (kind) {
      case ErrorKind::BadInput:
        return exitcode::BadInput;
      case ErrorKind::ResourceLimit:
        return exitcode::ResourceLimit;
      case ErrorKind::Internal:
        return exitcode::Internal;
    }
    return exitcode::Failure;
}

const char *
errorKindName(ErrorKind kind)
{
    switch (kind) {
      case ErrorKind::BadInput:
        return "bad-input";
      case ErrorKind::ResourceLimit:
        return "resource-limit";
      case ErrorKind::Internal:
        return "internal";
    }
    return "unknown";
}

bool
errorKindRetryable(ErrorKind kind)
{
    // Bad input and broken invariants are deterministic: the same job
    // fails the same way every time. Resource exhaustion is a property
    // of the moment — memory pressure from sibling jobs, descriptor
    // churn — so a delayed retry has a real chance.
    return kind == ErrorKind::ResourceLimit;
}

} // namespace nwsim
