/**
 * @file
 * Bit-manipulation helpers: sign extension, leading zero/one detection,
 * and the two's-complement significant-width computation at the heart of
 * the paper's narrow-operand detection (Section 4.3).
 */

#ifndef NWSIM_COMMON_BITOPS_HH
#define NWSIM_COMMON_BITOPS_HH

#include <bit>

#include "common/types.hh"

namespace nwsim
{

/** Sign-extend the low @p bits of @p value to 64 bits. */
constexpr u64
sext(u64 value, unsigned bits)
{
    if (bits == 0 || bits >= 64)
        return value;
    const u64 m = u64{1} << (bits - 1);
    value &= (u64{1} << bits) - 1;
    return (value ^ m) - m;
}

/** Zero-extend the low @p bits of @p value to 64 bits. */
constexpr u64
zext(u64 value, unsigned bits)
{
    if (bits == 0)
        return 0;
    if (bits >= 64)
        return value;
    return value & ((u64{1} << bits) - 1);
}

/** Number of leading zero bits of a 64-bit value (64 for zero). */
constexpr unsigned
clz64(u64 value)
{
    return value ? static_cast<unsigned>(std::countl_zero(value)) : 64;
}

/** Number of leading one bits of a 64-bit value. */
constexpr unsigned
clo64(u64 value)
{
    return static_cast<unsigned>(std::countl_one(value));
}

/**
 * Minimum number of bits needed to represent @p value as a signed
 * two's-complement number, including the sign bit.
 *
 * The hardware analogue is the paper's parallel zero-detect (for
 * non-negative values: leading zeros are unneeded) and ones-detect (for
 * negative values: leading ones are unneeded). 0 and -1 both need 1 bit;
 * 17 needs 6 bits (it is a "5-bit magnitude" in the paper's informal usage
 * but needs a sign bit in two's complement); INT64_MIN needs 64.
 */
constexpr unsigned
signedWidth(u64 value)
{
    const bool negative = (value >> 63) & 1;
    const unsigned redundant = negative ? clo64(value) : clz64(value);
    // All-but-one of the redundant leading bits can be dropped; one copy
    // of the sign bit must remain.
    return 65 - redundant;
}

/**
 * True if @p value sign-extends from its low @p bits, i.e. bits [63:bits-1]
 * are all copies of bit (bits-1). This is exactly the condition under which
 * the upper (64 - @p bits) bits of a functional unit are unneeded.
 */
constexpr bool
fitsSigned(u64 value, unsigned bits)
{
    return sext(value, bits) == value;
}

/** True if the high (64 - @p bits) bits of @p value are all zero. */
constexpr bool
fitsUnsigned(u64 value, unsigned bits)
{
    return zext(value, bits) == value;
}

/** Extract bits [hi:lo] of @p value (inclusive, hi < 64). */
constexpr u64
bits(u64 value, unsigned hi, unsigned lo)
{
    const u64 masked = (hi >= 63) ? value : value & ((u64{1} << (hi + 1)) - 1);
    return masked >> lo;
}

/** Insert @p field into bits [hi:lo] of a zero word. */
constexpr u64
insertBits(u64 field, unsigned hi, unsigned lo)
{
    const u64 width_mask = (hi - lo >= 63) ? ~u64{0}
                                           : ((u64{1} << (hi - lo + 1)) - 1);
    return (field & width_mask) << lo;
}

/** True if @p addr is aligned to @p bytes (a power of two). */
constexpr bool
isAligned(Addr addr, unsigned bytes)
{
    return (addr & (bytes - 1)) == 0;
}

} // namespace nwsim

#endif // NWSIM_COMMON_BITOPS_HH
