/**
 * @file
 * SimError: the simulator's structured error taxonomy.
 *
 * Every diagnosable failure is one of three kinds, each with its own
 * process exit code so campaign drivers (nwsweep) and scripts can
 * classify a dead child without parsing its stderr:
 *
 *   BadInput        the user handed us something unusable (unknown
 *                   workload, malformed assembly, bad config spec).
 *                   Deterministic — retrying cannot help.
 *   ResourceLimit   the environment ran out of something (memory,
 *                   file descriptors). Possibly transient — retrying
 *                   with backoff can help.
 *   Internal        an invariant of the simulator itself broke
 *                   (deadlock, impossible decode, assertion failure).
 *                   Deterministic — retrying cannot help, but the
 *                   message carries a structured diagnostic.
 *
 * NWSIM_FATAL throws BadInputError and NWSIM_PANIC throws InternalError
 * (see logging.hh), so library code never calls exit()/abort() directly:
 * the campaign engine catches and records per-job failures while sibling
 * jobs keep running, and each tool's main() maps the kind to the exit
 * code below.
 */

#ifndef NWSIM_COMMON_ERROR_HH
#define NWSIM_COMMON_ERROR_HH

#include <stdexcept>
#include <string>

#include "common/types.hh"

namespace nwsim
{

/** Failure classification (see file comment). */
enum class ErrorKind
{
    BadInput,
    ResourceLimit,
    Internal,
};

/**
 * Process exit codes shared by nwsim, nwsweep, and nwfuzz. Documented in
 * docs/ROBUSTNESS.md; keep the two in sync.
 */
namespace exitcode
{
constexpr int Ok = 0;              ///< everything succeeded
constexpr int Failure = 1;         ///< generic failure (e.g. jobs failed)
constexpr int Usage = 2;           ///< bad command line
constexpr int BadInput = 3;        ///< ErrorKind::BadInput
constexpr int CheckDivergence = 4; ///< cosim/invariant checker fired
constexpr int Timeout = 5;         ///< wall-clock watchdog killed the run
constexpr int Crash = 6;           ///< fatal signal (SIGSEGV, ...)
constexpr int Internal = 7;        ///< ErrorKind::Internal
constexpr int ResourceLimit = 8;   ///< ErrorKind::ResourceLimit (rlimit/OOM)
constexpr int Interrupted = 9;     ///< stopped at a checkpoint (SIGTERM)
} // namespace exitcode

/** Exit code for @p kind (exitcode::BadInput / Internal / Failure). */
int exitCodeFor(ErrorKind kind);

/** Printable kind name ("bad-input", "resource-limit", "internal"). */
const char *errorKindName(ErrorKind kind);

/** True if a failure of @p kind might succeed on retry. */
bool errorKindRetryable(ErrorKind kind);

/** Base of the taxonomy; catch this to classify any simulator error. */
class SimError : public std::runtime_error
{
  public:
    SimError(ErrorKind kind, const std::string &msg)
        : std::runtime_error(msg), errKind(kind)
    {
    }

    ErrorKind kind() const { return errKind; }
    int exitCode() const { return exitCodeFor(errKind); }
    bool retryable() const { return errorKindRetryable(errKind); }

  private:
    ErrorKind errKind;
};

/** Unusable user input (thrown by NWSIM_FATAL). */
class BadInputError : public SimError
{
  public:
    explicit BadInputError(const std::string &msg)
        : SimError(ErrorKind::BadInput, msg)
    {
    }
};

/** The environment ran out of a resource (memory, descriptors...). */
class ResourceLimitError : public SimError
{
  public:
    explicit ResourceLimitError(const std::string &msg)
        : SimError(ErrorKind::ResourceLimit, msg)
    {
    }
};

/** A simulator invariant broke (thrown by NWSIM_PANIC / NWSIM_ASSERT). */
class InternalError : public SimError
{
  public:
    explicit InternalError(const std::string &msg)
        : SimError(ErrorKind::Internal, msg)
    {
    }
};

/**
 * The core's forward-progress watchdog fired: no instruction committed
 * for CoreConfig::watchdogCycles cycles. The message is a structured
 * diagnostic (cycle, fetch PC, RUU/LSQ/fetch-queue occupancy, oldest
 * in-flight instruction) — see OutOfOrderCore::run().
 */
class DeadlockError : public InternalError
{
  public:
    explicit DeadlockError(const std::string &msg) : InternalError(msg) {}
};

/**
 * A graceful-shutdown request (SIGTERM -> ckpt::requestInterrupt())
 * stopped the run at a checkpoint-safe point after the final checkpoint
 * was written. NOT a SimError: interruption is not a failure — the
 * campaign engine records the job as JobStatus::Interrupted with its
 * checkpoint provenance so a resumed campaign continues from there, and
 * isolated children exit with exitcode::Interrupted.
 */
class InterruptedError : public std::runtime_error
{
  public:
    /**
     * @param ckpt_path     Checkpoint written on the way out ("" if the
     *                      run had no checkpoint cadence configured).
     * @param ckpt_position Stream position (retired instructions) the
     *                      checkpoint captures.
     */
    InterruptedError(std::string ckpt_path, u64 ckpt_position)
        : std::runtime_error("interrupted at checkpoint"),
          path(std::move(ckpt_path)), position(ckpt_position)
    {
    }

    const std::string &ckptPath() const { return path; }
    u64 ckptPosition() const { return position; }

  private:
    std::string path;
    u64 position;
};

} // namespace nwsim

#endif // NWSIM_COMMON_ERROR_HH
