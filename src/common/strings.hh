/**
 * @file
 * Small string/formatting helpers shared by the disassembler, the text
 * assembler, and the experiment table printers.
 */

#ifndef NWSIM_COMMON_STRINGS_HH
#define NWSIM_COMMON_STRINGS_HH

#include <string>
#include <vector>

#include "common/types.hh"

namespace nwsim
{

/** Format @p value as 0x-prefixed lower-case hex. */
std::string hexString(u64 value);

/** Split @p text on any of the characters in @p seps, dropping empties. */
std::vector<std::string> tokenize(const std::string &text,
                                  const std::string &seps);

/** Strip leading/trailing whitespace. */
std::string trim(const std::string &text);

/** Lower-case an ASCII string. */
std::string toLower(const std::string &text);

/** True if @p text starts with @p prefix. */
bool startsWith(const std::string &text, const std::string &prefix);

/** printf-style double with @p digits decimals. */
std::string fixed(double value, int digits);

/** Left-pad (negative width) or right-pad @p text to @p width columns. */
std::string pad(const std::string &text, int width);

} // namespace nwsim

#endif // NWSIM_COMMON_STRINGS_HH
