/**
 * @file
 * Fundamental fixed-width types used throughout nwsim.
 *
 * The simulated machine is a 64-bit two's-complement RISC modeled on the
 * Alpha (the paper's target ISA): the fundamental datum is the 64-bit
 * quadword, addresses are 64-bit, and instructions are 32-bit words.
 */

#ifndef NWSIM_COMMON_TYPES_HH
#define NWSIM_COMMON_TYPES_HH

#include <cstdint>

namespace nwsim
{

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/** Simulated virtual/physical address (flat 64-bit space). */
using Addr = u64;

/** Architected register index (0..31; 31 reads as zero). */
using RegIndex = u8;

/** Simulation cycle count. */
using Cycle = u64;

/** Dynamic instruction sequence number (fetch order, never reused). */
using InstSeq = u64;

/** Number of architected integer registers. */
constexpr RegIndex numIntRegs = 32;

/** Register that always reads as zero (Alpha R31 convention). */
constexpr RegIndex zeroReg = 31;

/** Stack-pointer register by software convention. */
constexpr RegIndex spReg = 30;

/** Return-address register by software convention (Alpha RA = r26). */
constexpr RegIndex raReg = 26;

} // namespace nwsim

#endif // NWSIM_COMMON_TYPES_HH
