#include "common/logging.hh"

#include <iostream>

#include "common/error.hh"

namespace nwsim
{

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "panic: " << msg << " @ " << file << ":" << line
              << std::endl;
    throw InternalError(msg);
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "fatal: " << msg << " @ " << file << ":" << line
              << std::endl;
    throw BadInputError(msg);
}

void
warnImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "warn: " << msg << " @ " << file << ":" << line
              << std::endl;
}

} // namespace nwsim
