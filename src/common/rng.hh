/**
 * @file
 * Deterministic pseudo-random number generation (SplitMix64).
 *
 * All workload input data is generated with fixed seeds so every
 * experiment is exactly reproducible run-to-run and machine-to-machine.
 */

#ifndef NWSIM_COMMON_RNG_HH
#define NWSIM_COMMON_RNG_HH

#include "common/types.hh"

namespace nwsim
{

/** SplitMix64: tiny, fast, well-distributed, fully deterministic. */
class SplitMix64
{
  public:
    explicit constexpr SplitMix64(u64 seed) : state(seed) {}

    /** Next 64-bit pseudo-random value. */
    constexpr u64
    next()
    {
        u64 z = (state += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /** Uniform value in [0, bound). @p bound must be nonzero. */
    constexpr u64
    below(u64 bound)
    {
        return next() % bound;
    }

    /** Uniform value in [lo, hi] inclusive. */
    constexpr i64
    range(i64 lo, i64 hi)
    {
        return lo + static_cast<i64>(below(static_cast<u64>(hi - lo) + 1));
    }

  private:
    u64 state;
};

} // namespace nwsim

#endif // NWSIM_COMMON_RNG_HH
