/**
 * @file
 * Error-reporting helpers following the gem5 panic/fatal distinction:
 * panic() for internal simulator bugs (aborts), fatal() for user/config
 * errors (clean exit), warn() for suspicious-but-survivable conditions.
 */

#ifndef NWSIM_COMMON_LOGGING_HH
#define NWSIM_COMMON_LOGGING_HH

#include <sstream>
#include <string>

namespace nwsim
{

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const char *file, int line, const std::string &msg);

namespace detail
{

inline std::string
formatParts()
{
    return {};
}

template <typename T, typename... Rest>
std::string
formatParts(const T &head, const Rest &...rest)
{
    std::ostringstream os;
    os << head;
    return os.str() + formatParts(rest...);
}

} // namespace detail

} // namespace nwsim

/** Report an internal simulator bug and abort. */
#define NWSIM_PANIC(...) \
    ::nwsim::panicImpl(__FILE__, __LINE__, \
                       ::nwsim::detail::formatParts(__VA_ARGS__))

/** Report an unrecoverable user/configuration error and exit(1). */
#define NWSIM_FATAL(...) \
    ::nwsim::fatalImpl(__FILE__, __LINE__, \
                       ::nwsim::detail::formatParts(__VA_ARGS__))

/** Report a suspicious condition without stopping the simulation. */
#define NWSIM_WARN(...) \
    ::nwsim::warnImpl(__FILE__, __LINE__, \
                      ::nwsim::detail::formatParts(__VA_ARGS__))

/** Panic unless @p cond holds. */
#define NWSIM_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            NWSIM_PANIC("assertion failed: " #cond " ", __VA_ARGS__); \
        } \
    } while (0)

#endif // NWSIM_COMMON_LOGGING_HH
