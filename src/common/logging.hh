/**
 * @file
 * Error-reporting helpers following the gem5 panic/fatal distinction:
 * NWSIM_PANIC for internal simulator bugs (throws InternalError),
 * NWSIM_FATAL for user/config errors (throws BadInputError), NWSIM_WARN
 * for suspicious-but-survivable conditions. Both throwing macros print
 * the message with its source location to stderr before throwing, so a
 * diagnostic survives even if the exception is swallowed.
 *
 * Library code never calls exit()/abort(): the campaign engine catches
 * SimError to record per-job failures (common/error.hh), and each tool's
 * main() maps the error kind to a documented process exit code.
 */

#ifndef NWSIM_COMMON_LOGGING_HH
#define NWSIM_COMMON_LOGGING_HH

#include <sstream>
#include <string>

namespace nwsim
{

/** Print and throw InternalError (use via NWSIM_PANIC). */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
/** Print and throw BadInputError (use via NWSIM_FATAL). */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const char *file, int line, const std::string &msg);

namespace detail
{

inline std::string
formatParts()
{
    return {};
}

template <typename T, typename... Rest>
std::string
formatParts(const T &head, const Rest &...rest)
{
    std::ostringstream os;
    os << head;
    return os.str() + formatParts(rest...);
}

} // namespace detail

} // namespace nwsim

/** Report an internal simulator bug (throws InternalError). */
#define NWSIM_PANIC(...) \
    ::nwsim::panicImpl(__FILE__, __LINE__, \
                       ::nwsim::detail::formatParts(__VA_ARGS__))

/** Report an unrecoverable user/config error (throws BadInputError). */
#define NWSIM_FATAL(...) \
    ::nwsim::fatalImpl(__FILE__, __LINE__, \
                       ::nwsim::detail::formatParts(__VA_ARGS__))

/** Report a suspicious condition without stopping the simulation. */
#define NWSIM_WARN(...) \
    ::nwsim::warnImpl(__FILE__, __LINE__, \
                      ::nwsim::detail::formatParts(__VA_ARGS__))

/** Panic unless @p cond holds. */
#define NWSIM_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            NWSIM_PANIC("assertion failed: " #cond " ", __VA_ARGS__); \
        } \
    } while (0)

#endif // NWSIM_COMMON_LOGGING_HH
