#include "common/strings.hh"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace nwsim
{

std::string
hexString(u64 value)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "0x%llx",
                  static_cast<unsigned long long>(value));
    return buf;
}

std::vector<std::string>
tokenize(const std::string &text, const std::string &seps)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : text) {
        if (seps.find(c) != std::string::npos) {
            if (!cur.empty()) {
                out.push_back(cur);
                cur.clear();
            }
        } else {
            cur.push_back(c);
        }
    }
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

std::string
trim(const std::string &text)
{
    size_t b = 0, e = text.size();
    while (b < e && std::isspace(static_cast<unsigned char>(text[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1])))
        --e;
    return text.substr(b, e - b);
}

std::string
toLower(const std::string &text)
{
    std::string out = text;
    std::transform(out.begin(), out.end(), out.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return out;
}

bool
startsWith(const std::string &text, const std::string &prefix)
{
    return text.size() >= prefix.size() &&
           text.compare(0, prefix.size(), prefix) == 0;
}

std::string
fixed(double value, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
    return buf;
}

std::string
pad(const std::string &text, int width)
{
    const size_t w = static_cast<size_t>(width < 0 ? -width : width);
    if (text.size() >= w)
        return text;
    const std::string fill(w - text.size(), ' ');
    return width < 0 ? fill + text : text + fill;
}

} // namespace nwsim
