/**
 * @file
 * Single-line progress/ETA meter for campaign runs. Thread-safe; the
 * ETA extrapolates mean job wall-clock over the remaining job count and
 * the worker count, which is exact for uniform jobs and a reasonable
 * guess otherwise.
 */

#ifndef NWSIM_EXP_PROGRESS_HH
#define NWSIM_EXP_PROGRESS_HH

#include <chrono>
#include <mutex>
#include <ostream>

namespace nwsim::exp
{

/** Carriage-return progress line ("[12/56] 21% elapsed 3.2s eta 12.1s"). */
class ProgressMeter
{
  public:
    /**
     * @p total jobs expected; @p workers concurrent lanes (for the ETA);
     * @p out stream for the line, or nullptr to disable entirely.
     */
    ProgressMeter(size_t total, unsigned workers, std::ostream *out);

    /** Record one finished job (prints the refreshed line). */
    void jobDone(const std::string &label, bool ok);

    /** Terminate the progress line (call once, after the run). */
    void finish();

  private:
    using Clock = std::chrono::steady_clock;

    size_t total;
    unsigned workers;
    std::ostream *out;
    Clock::time_point start;
    size_t done = 0;
    size_t failed = 0;
    std::mutex mutex;
};

} // namespace nwsim::exp

#endif // NWSIM_EXP_PROGRESS_HH
