/**
 * @file
 * Pluggable campaign execution backends.
 *
 * Campaign::run owns everything about *what* runs (the job list, resume
 * adoption, journaling, progress); an Executor owns *where and how* the
 * remaining jobs execute. The contract is identical for all backends:
 *
 *  - execute jobs[i] for exactly the given indices,
 *  - write outcomes[i] for exactly those indices,
 *  - call on_done(i), serialized (never two calls at once), as each
 *    terminal outcome lands — journal appends and the progress meter
 *    hang off that hook, and
 *  - never throw for a *job* failure (those are classified outcomes);
 *    throw SimError only when the backend itself cannot run (bad worker
 *    address, every worker lost, ...).
 *
 * Because every job writes only its own outcome slot, per-job statistics
 * are bit-identical regardless of backend, worker count, or host
 * topology — tests/test_distributed.cc holds the three implementations
 * to byte-identical no-timing JSON.
 *
 * Backends:
 *  - ThreadExecutor  in-process JobPool fan-out (fastest; a crashing
 *                    job would take the driver with it),
 *  - ForkExecutor    one forked child per job with crash/hang/rlimit
 *                    classification (exp/isolate.cc), and
 *  - RemoteExecutor  streams jobs to `nwsweep serve` worker daemons
 *                    over TCP (exp/remote.hh).
 */

#ifndef NWSIM_EXP_EXECUTOR_HH
#define NWSIM_EXP_EXECUTOR_HH

#include <functional>
#include <memory>
#include <vector>

#include "exp/campaign.hh"

namespace nwsim::exp
{

/** One campaign execution backend (see file comment for the contract). */
class Executor
{
  public:
    virtual ~Executor() = default;

    /** Backend name for logs/errors ("thread", "fork", "remote"). */
    virtual const char *name() const = 0;

    /**
     * Concurrent lanes this backend will actually use for @p njobs jobs
     * (feeds the progress meter's ETA and ResultSet::workersUsed).
     */
    virtual unsigned lanes(const CampaignOptions &copts,
                           size_t njobs) const;

    /** Run jobs[i] for every i in @p indices; see the file contract. */
    virtual void execute(const std::vector<SimJob> &jobs,
                         const std::vector<size_t> &indices,
                         const CampaignOptions &copts,
                         std::vector<JobOutcome> &outcomes,
                         const std::function<void(size_t)> &on_done) = 0;
};

/** In-process JobPool fan-out (the default backend). */
class ThreadExecutor final : public Executor
{
  public:
    const char *name() const override { return "thread"; }
    void execute(const std::vector<SimJob> &jobs,
                 const std::vector<size_t> &indices,
                 const CampaignOptions &copts,
                 std::vector<JobOutcome> &outcomes,
                 const std::function<void(size_t)> &on_done) override;
};

/** One forked child per job (exp/isolate.cc). */
class ForkExecutor final : public Executor
{
  public:
    const char *name() const override { return "fork"; }
    void execute(const std::vector<SimJob> &jobs,
                 const std::vector<size_t> &indices,
                 const CampaignOptions &copts,
                 std::vector<JobOutcome> &outcomes,
                 const std::function<void(size_t)> &on_done) override;
};

/** Resolve Auto to a concrete kind (never returns Auto). */
ExecutorKind resolveExecutorKind(const CampaignOptions &copts);

/**
 * Construct the backend CampaignOptions asks for. Throws BadInputError
 * for an inconsistent request (e.g. ExecutorKind::Remote with no
 * workerHosts).
 */
std::unique_ptr<Executor> makeExecutor(const CampaignOptions &copts);

} // namespace nwsim::exp

#endif // NWSIM_EXP_EXECUTOR_HH
