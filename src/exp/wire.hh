/**
 * @file
 * Byte-exact (de)serialization of campaign jobs and outcomes.
 *
 * Three consumers, one format:
 *  - process-isolated jobs: the forked child packs its JobOutcome and
 *    writes it up a pipe; the parent unpacks it (exp/isolate.cc),
 *  - the campaign journal: each record embeds the packed outcome in
 *    hex so `nwsweep --resume` reconstructs a finished job exactly
 *    (exp/journal.cc), and
 *  - distributed campaigns: the remote executor streams packed SimJob
 *    specs down to worker daemons and packed JobOutcomes back up over
 *    TCP (exp/remote.cc).
 *
 * Every blob opens with a 4-byte magic and a version byte, so a reader
 * from a different build generation fails fast with a classified
 * WireError instead of silently misparsing — mixed-version
 * driver/worker pairs are refused at the first blob (and already at
 * the protocol handshake, exp/remote.cc).
 *
 * Every numeric field is encoded explicitly (u64 little-endian, doubles
 * bit-cast), never memcpy'd as a struct, so the encoding is independent
 * of padding and byte-stable across builds — the resume drill's and the
 * distributed executor's bit-identical-JSON guarantees rest on this.
 */

#ifndef NWSIM_EXP_WIRE_HH
#define NWSIM_EXP_WIRE_HH

#include <string>
#include <string_view>

#include "ckpt/serial.hh"
#include "exp/campaign.hh"
#include "exp/result_set.hh"

namespace nwsim::exp
{

/**
 * Version byte shared by every wire blob (outcomes and job specs).
 * Bump whenever any packed field is added, removed, or re-ordered;
 * readers refuse other versions with WireError::VersionMismatch.
 *
 * v5: JobOutcome gains checkpoint provenance (ckptPath/ckptPosition)
 * and the shard aggregator blob; SimJob gains the checkpoint cadence
 * and the shard assignment (exp/shard.hh).
 *
 * v6: RunResult gains the superblock trace-cache counters
 * (func/superblock.hh); CoreConfig gains superblockTraces (+notrace).
 *
 * v7: SimJob gains configText — the canonical `.cfg` dump of file-based
 * machine specs (cfg/loader.hh) — so remote workers and reproducer
 * bundles reproduce declarative machines without driver-side files.
 */
inline constexpr u8 kWireVersion = 7;

/** Magic opening a packed JobOutcome blob. */
inline constexpr char kOutcomeMagic[4] = {'N', 'W', 'O', 'B'};
/** Magic opening a packed SimJob spec blob. */
inline constexpr char kJobSpecMagic[4] = {'N', 'W', 'J', 'B'};

/**
 * The serialization primitives live in ckpt/serial.hh (header-only, so
 * low-level libraries can serialize machine state without depending on
 * the campaign engine); these aliases keep the wire layer's historical
 * names for its consumers (isolate/journal/remote/tests).
 */
using WireError = ckpt::WireError;
using WireSink = ckpt::ByteSink;
using WireSource = ckpt::ByteSource;
using ckpt::fnv1a64;
using ckpt::wireErrorName;

/** Serialize a full JobOutcome (including RunResult when ok). */
std::string packJobOutcome(const JobOutcome &outcome);

/**
 * Rebuild a JobOutcome from packJobOutcome bytes, reporting *why* a bad
 * blob was rejected so protocol layers can fail fast with a clear
 * message (version skew) or tolerate it (torn journal record). @p out
 * is untouched unless the result is WireError::None.
 */
WireError unpackJobOutcomeErr(std::string_view blob, JobOutcome &out);

/** unpackJobOutcomeErr without the reason (journal's tolerant path). */
bool unpackJobOutcome(std::string_view blob, JobOutcome &out);

/**
 * Serialize everything a remote worker needs to run @p job: labels,
 * the full CoreConfig (every field, nested configs included — custom
 * configs that no spec string can express survive the trip), the
 * RunOptions window, and any custom asmText. A SimJob carrying a
 * custom `runner` closure is not serializable; callers must refuse
 * such jobs before packing (RemoteExecutor does, with a clear error).
 */
std::string packSimJobSpec(const SimJob &job);

/** Rebuild a SimJob from packSimJobSpec bytes (runner stays empty). */
WireError unpackSimJobSpec(std::string_view blob, SimJob &out);

/**
 * Serialize just a SampleSummary (the error-bar block packRunResult
 * embeds), byte-for-byte as it appears on the wire. Exists so tests
 * can compare sampled-run summaries as opaque blobs — e.g. the
 * decode-cache seam test proving `+nodecodecache` runs produce an
 * identical SampleSummary (tests/test_decode_cache.cc).
 */
std::string packSampleSummary(const SampleSummary &summary);

/** Lower-case hex of @p bytes (journal-safe single token). */
std::string toHex(std::string_view bytes);

/** Decode toHex output; false on odd length or non-hex characters. */
bool fromHex(std::string_view hex, std::string &bytes);

} // namespace nwsim::exp

#endif // NWSIM_EXP_WIRE_HH
