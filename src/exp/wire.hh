/**
 * @file
 * Byte-exact (de)serialization of campaign job outcomes.
 *
 * Two consumers, one format:
 *  - process-isolated jobs: the forked child packs its JobOutcome and
 *    writes it up a pipe; the parent unpacks it (exp/isolate.cc), and
 *  - the campaign journal: each record embeds the packed outcome in
 *    hex so `nwsweep --resume` reconstructs a finished job exactly
 *    (exp/journal.cc).
 *
 * Every numeric field is encoded explicitly (u64 little-endian, doubles
 * bit-cast), never memcpy'd as a struct, so the encoding is independent
 * of padding and byte-stable across builds — the resume drill's
 * bit-identical-JSON guarantee rests on this.
 */

#ifndef NWSIM_EXP_WIRE_HH
#define NWSIM_EXP_WIRE_HH

#include <string>
#include <string_view>

#include "exp/result_set.hh"

namespace nwsim::exp
{

/** Serialize a full JobOutcome (including RunResult when ok). */
std::string packJobOutcome(const JobOutcome &outcome);

/**
 * Rebuild a JobOutcome from packJobOutcome bytes.
 * @return false (leaving @p out untouched) on truncation, trailing
 * garbage, or a version mismatch — a torn journal record or a child
 * that died mid-write must not produce a half-filled outcome.
 */
bool unpackJobOutcome(std::string_view blob, JobOutcome &out);

/** Lower-case hex of @p bytes (journal-safe single token). */
std::string toHex(std::string_view bytes);

/** Decode toHex output; false on odd length or non-hex characters. */
bool fromHex(std::string_view hex, std::string &bytes);

/** FNV-1a 64-bit hash (journal record checksums). */
u64 fnv1a64(std::string_view bytes);

} // namespace nwsim::exp

#endif // NWSIM_EXP_WIRE_HH
