/**
 * @file
 * Byte-exact (de)serialization of campaign jobs and outcomes.
 *
 * Three consumers, one format:
 *  - process-isolated jobs: the forked child packs its JobOutcome and
 *    writes it up a pipe; the parent unpacks it (exp/isolate.cc),
 *  - the campaign journal: each record embeds the packed outcome in
 *    hex so `nwsweep --resume` reconstructs a finished job exactly
 *    (exp/journal.cc), and
 *  - distributed campaigns: the remote executor streams packed SimJob
 *    specs down to worker daemons and packed JobOutcomes back up over
 *    TCP (exp/remote.cc).
 *
 * Every blob opens with a 4-byte magic and a version byte, so a reader
 * from a different build generation fails fast with a classified
 * WireError instead of silently misparsing — mixed-version
 * driver/worker pairs are refused at the first blob (and already at
 * the protocol handshake, exp/remote.cc).
 *
 * Every numeric field is encoded explicitly (u64 little-endian, doubles
 * bit-cast), never memcpy'd as a struct, so the encoding is independent
 * of padding and byte-stable across builds — the resume drill's and the
 * distributed executor's bit-identical-JSON guarantees rest on this.
 */

#ifndef NWSIM_EXP_WIRE_HH
#define NWSIM_EXP_WIRE_HH

#include <string>
#include <string_view>

#include "exp/campaign.hh"
#include "exp/result_set.hh"

namespace nwsim::exp
{

/**
 * Version byte shared by every wire blob (outcomes and job specs).
 * Bump whenever any packed field is added, removed, or re-ordered;
 * readers refuse other versions with WireError::VersionMismatch.
 */
inline constexpr u8 kWireVersion = 4;

/** Magic opening a packed JobOutcome blob. */
inline constexpr char kOutcomeMagic[4] = {'N', 'W', 'O', 'B'};
/** Magic opening a packed SimJob spec blob. */
inline constexpr char kJobSpecMagic[4] = {'N', 'W', 'J', 'B'};

/** Why a wire blob was rejected (None = parsed successfully). */
enum class WireError : u8
{
    None,            ///< parsed successfully
    Truncated,       ///< ran out of bytes mid-field (torn write)
    BadMagic,        ///< does not start with the expected magic
    VersionMismatch, ///< right magic, other format generation
    Corrupt,         ///< framed correctly but contents are invalid
};

/** Printable reason ("truncated", "bad-magic", ...; "" for None). */
const char *wireErrorName(WireError err);

/**
 * Little-endian primitive encoder shared by the blob packers here and
 * the TCP frame layer (exp/remote.cc).
 */
class WireSink
{
  public:
    void
    u8v(u8 v)
    {
        bytes.push_back(static_cast<char>(v));
    }

    void
    boolv(bool v)
    {
        u8v(v ? 1 : 0);
    }

    void
    u32v(u32 v)
    {
        for (int i = 0; i < 4; ++i)
            bytes.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }

    void
    u64v(u64 v)
    {
        for (int i = 0; i < 8; ++i)
            bytes.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }

    void f64v(double v);

    void
    str(const std::string &s)
    {
        u64v(s.size());
        bytes.append(s);
    }

    void
    magic(const char m[4])
    {
        bytes.append(m, 4);
    }

    void
    raw(std::string_view v)
    {
        bytes.append(v);
    }

    std::string take() { return std::move(bytes); }

  private:
    std::string bytes;
};

/** Little-endian primitive decoder; all reads fail-stop on underrun. */
class WireSource
{
  public:
    explicit WireSource(std::string_view view) : data(view) {}

    bool
    u8v(u8 &v)
    {
        if (pos + 1 > data.size())
            return fail();
        v = static_cast<u8>(data[pos++]);
        return true;
    }

    bool
    boolv(bool &v)
    {
        u8 b = 0;
        if (!u8v(b))
            return false;
        v = b != 0;
        return true;
    }

    bool
    u32v(u32 &v)
    {
        if (pos + 4 > data.size())
            return fail();
        v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<u32>(static_cast<u8>(data[pos + i]))
                 << (8 * i);
        pos += 4;
        return true;
    }

    bool
    u64v(u64 &v)
    {
        if (pos + 8 > data.size())
            return fail();
        v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<u64>(static_cast<u8>(data[pos + i]))
                 << (8 * i);
        pos += 8;
        return true;
    }

    /** unsigned via u32 (every config count fits comfortably). */
    bool
    uns(unsigned &v)
    {
        u32 x = 0;
        if (!u32v(x))
            return false;
        v = x;
        return true;
    }

    bool f64v(double &v);

    bool
    str(std::string &s)
    {
        u64 n = 0;
        if (!u64v(n) || pos + n > data.size() || pos + n < pos)
            return fail();
        s.assign(data.substr(pos, n));
        pos += n;
        return true;
    }

    /**
     * Classify the blob header: BadMagic / VersionMismatch / Truncated
     * fail fast before any payload field is touched.
     */
    WireError header(const char magic[4]);

    /** Everything from the cursor to the end (for nested blobs). */
    std::string_view
    rest()
    {
        std::string_view r = data.substr(pos);
        pos = data.size();
        return r;
    }

    bool exhausted() const { return ok_ && pos == data.size(); }
    bool ok() const { return ok_; }

  private:
    bool
    fail()
    {
        ok_ = false;
        return false;
    }

    std::string_view data;
    size_t pos = 0;
    bool ok_ = true;
};

/** Serialize a full JobOutcome (including RunResult when ok). */
std::string packJobOutcome(const JobOutcome &outcome);

/**
 * Rebuild a JobOutcome from packJobOutcome bytes, reporting *why* a bad
 * blob was rejected so protocol layers can fail fast with a clear
 * message (version skew) or tolerate it (torn journal record). @p out
 * is untouched unless the result is WireError::None.
 */
WireError unpackJobOutcomeErr(std::string_view blob, JobOutcome &out);

/** unpackJobOutcomeErr without the reason (journal's tolerant path). */
bool unpackJobOutcome(std::string_view blob, JobOutcome &out);

/**
 * Serialize everything a remote worker needs to run @p job: labels,
 * the full CoreConfig (every field, nested configs included — custom
 * configs that no spec string can express survive the trip), the
 * RunOptions window, and any custom asmText. A SimJob carrying a
 * custom `runner` closure is not serializable; callers must refuse
 * such jobs before packing (RemoteExecutor does, with a clear error).
 */
std::string packSimJobSpec(const SimJob &job);

/** Rebuild a SimJob from packSimJobSpec bytes (runner stays empty). */
WireError unpackSimJobSpec(std::string_view blob, SimJob &out);

/**
 * Serialize just a SampleSummary (the error-bar block packRunResult
 * embeds), byte-for-byte as it appears on the wire. Exists so tests
 * can compare sampled-run summaries as opaque blobs — e.g. the
 * decode-cache seam test proving `+nodecodecache` runs produce an
 * identical SampleSummary (tests/test_decode_cache.cc).
 */
std::string packSampleSummary(const SampleSummary &summary);

/** Lower-case hex of @p bytes (journal-safe single token). */
std::string toHex(std::string_view bytes);

/** Decode toHex output; false on odd length or non-hex characters. */
bool fromHex(std::string_view hex, std::string &bytes);

/** FNV-1a 64-bit hash (journal record checksums). */
u64 fnv1a64(std::string_view bytes);

} // namespace nwsim::exp

#endif // NWSIM_EXP_WIRE_HH
