/**
 * @file
 * Reproducer bundles: when a campaign job faults (internal-invariant
 * failure, crash, deadlock, timeout), the campaign drops a directory
 * with everything needed to replay the fault standalone:
 *
 *     <bundle-dir>/<workload>-<config>/
 *         MANIFEST.txt   what happened + the exact replay command
 *         events.log     flight recorder: last-K pipeline events
 *         repro.s        assembly source (only for asmText jobs)
 *         repro.min.s    ddmin-shrunk source (exception faults only)
 *
 * The MANIFEST's replay line is a ready-to-run `nwsim run ... --check`
 * invocation, so a crash found by a sweep feeds straight into the
 * cosimulation oracle and nwfuzz shrinking (docs/ROBUSTNESS.md).
 */

#ifndef NWSIM_EXP_BUNDLE_HH
#define NWSIM_EXP_BUNDLE_HH

#include <string>

namespace nwsim::exp
{

struct SimJob;
struct JobOutcome;

/** Bundle directory for @p job under @p base (not created). */
std::string bundlePathFor(const std::string &base, const SimJob &job);

/**
 * Path of the events.log inside bundlePathFor — isolated children
 * precompute this so a crash-signal handler can dump the flight
 * recorder without allocating.
 */
std::string bundleEventsPath(const std::string &base, const SimJob &job);

/**
 * Write (or complete) the bundle for a faulted @p job: creates the
 * directory, writes MANIFEST.txt and repro.s, and writes events.log
 * from @p events unless a crash handler already left one behind.
 * Returns the bundle directory, or "" if it could not be written
 * (bundles are best-effort; a full disk must not fail the campaign).
 *
 * With @p shrink set, an asmText job whose fault was a classified
 * exception (status Failed — never a signal or timeout, whose replay
 * could take the caller down with it) additionally gets the ddmin line
 * shrinker (check/fuzz.hh) run over its source: the minimized program
 * is stored as repro.min.s next to the original and recorded in the
 * MANIFEST. Only the in-process attempt path passes true; parents
 * completing a crashed child's bundle must not replay the fault.
 */
std::string writeReproducerBundle(const std::string &base,
                                  const SimJob &job,
                                  const JobOutcome &outcome,
                                  const std::string &events,
                                  bool shrink = false);

} // namespace nwsim::exp

#endif // NWSIM_EXP_BUNDLE_HH
