#include "exp/bench.hh"

#include <cstdlib>
#include <ostream>

#include "common/logging.hh"
#include "exp/campaign.hh"
#include "exp/configs.hh"
#include "exp/json.hh"
#include "func/superblock.hh"
#include "workloads/kernels.hh"

namespace nwsim::exp
{

BenchAggregate
benchAggregate(const ResultSet &results)
{
    BenchAggregate agg;
    agg.jobs = results.size();
    agg.failed = results.failedCount();
    for (const JobOutcome &o : results.outcomes()) {
        if (!o.ok)
            continue;
        agg.seconds += o.wallSeconds;
        agg.committedKinsts +=
            static_cast<double>(o.result.measuredCommitted) / 1000.0;
        if (o.result.sample.sampled) {
            agg.streamKinsts +=
                static_cast<double>(o.result.sample.streamInsts) /
                1000.0;
        }
        agg.simCycles += o.result.core.cycles;
        agg.decode.accumulate(o.result.decodeCache);
        agg.superblock.accumulate(o.result.superblock);
    }
    return agg;
}

BenchReport
runSpeedBench(const BenchOptions &options)
{
    BenchReport report;
    report.options = options;
    BenchOptions &o = report.options;

    if (o.workloads.empty()) {
        for (const Workload &w : allWorkloads())
            o.workloads.push_back(w.name);
    }
    if (o.configs.empty()) {
        // The Figure 10/11 grid — the sweep every campaign pays for.
        o.configs = {"baseline", "packing", "packing-replay", "issue8"};
    }
    for (const std::string &spec : o.configs) {
        if (!isValidConfigSpec(spec))
            NWSIM_FATAL("unknown config spec \"", spec, "\"");
        if (spec.find("nodecodecache") != std::string::npos) {
            NWSIM_FATAL("bench adds +nodecodecache itself; drop it "
                        "from \"", spec, "\"");
        }
    }

    CampaignOptions copts;
    copts.jobs = o.jobs ? o.jobs : 1;
    copts.maxAttempts = 1; // retries would pollute the timing
    copts.progress = o.progress;

    report.event =
        Campaign::grid(o.workloads, o.configs, o.runOpts).run(copts);

    if (o.compareUncached) {
        std::vector<std::string> uncached_specs;
        uncached_specs.reserve(o.configs.size());
        for (const std::string &spec : o.configs)
            uncached_specs.push_back(spec + "+nodecodecache");
        report.uncached =
            Campaign::grid(o.workloads, uncached_specs, o.runOpts)
                .run(copts);
    }

    if (o.compareSampled) {
        std::vector<std::string> sampled_specs;
        sampled_specs.reserve(o.configs.size());
        for (const std::string &spec : o.configs)
            sampled_specs.push_back(spec + "+" + o.sampleModifier);
        report.sampled =
            Campaign::grid(o.workloads, sampled_specs, o.runOpts)
                .run(copts);
        if (o.compareNoTrace) {
            // Traced first, +notrace second: any host cache warmth
            // carried across variants biases *against* the reported
            // trace speedup, same convention as uncached.
            std::vector<std::string> notrace_specs;
            notrace_specs.reserve(sampled_specs.size());
            for (const std::string &spec : sampled_specs)
                notrace_specs.push_back(spec + "+notrace");
            report.sampledNoTrace =
                Campaign::grid(o.workloads, notrace_specs, o.runOpts)
                    .run(copts);
        }
    }
    return report;
}

namespace
{

void
writeVariant(JsonWriter &j, const char *name, const ResultSet &results)
{
    const BenchAggregate agg = benchAggregate(results);
    j.key(name).beginObject();
    j.key("jobs").value(static_cast<u64>(agg.jobs));
    j.key("failed").value(static_cast<u64>(agg.failed));
    j.key("total_seconds").value(agg.seconds);
    j.key("committed_kinsts").value(agg.committedKinsts);
    j.key("sim_cycles").value(agg.simCycles);
    j.key("kips").value(agg.kips());
    j.key("sim_cycles_per_second").value(agg.cyclesPerSecond());
    if (agg.streamKinsts > 0.0) {
        j.key("stream_kinsts").value(agg.streamKinsts);
        j.key("effective_kips").value(agg.effectiveKips());
    }
    j.key("decode_lookups").value(agg.decode.lookups);
    j.key("decode_hits").value(agg.decode.hits);
    j.key("decode_hit_rate").value(agg.decode.hitRate());
    j.key("superblock_formed").value(agg.superblock.formed);
    j.key("superblock_entries").value(agg.superblock.entries);
    j.key("superblock_traced_insts").value(agg.superblock.tracedInsts);
    j.key("superblock_guard_exits").value(agg.superblock.guardExits);
    j.key("per_job").beginArray();
    for (const JobOutcome &o : results.outcomes()) {
        j.beginObject();
        j.key("workload").value(o.workload);
        j.key("config").value(o.configSpec);
        j.key("ok").value(o.ok);
        j.key("seconds").value(o.wallSeconds);
        j.key("kips").value(o.kips());
        j.key("sim_cycles_per_second").value(o.cyclesPerSecond());
        j.endObject();
    }
    j.endArray();
    j.endObject();
}

} // namespace

void
writeBenchJson(std::ostream &os, const BenchReport &report)
{
    const BenchOptions &o = report.options;
    JsonWriter j(os);
    j.beginObject();
    j.key("bench").beginObject();
    j.key("workloads").beginArray();
    for (const std::string &w : o.workloads)
        j.value(w);
    j.endArray();
    j.key("configs").beginArray();
    for (const std::string &c : o.configs)
        j.value(c);
    j.endArray();
    j.key("warmup_insts").value(o.runOpts.warmupInsts);
    j.key("measure_insts").value(o.runOpts.measureInsts);
    j.key("jobs").value(o.jobs ? o.jobs : 1u);
    j.key("dispatch").value(sbDispatchKind());
    j.endObject();

    writeVariant(j, "event", report.event);
    if (o.compareUncached) {
        writeVariant(j, "uncached", report.uncached);
        j.key("speedup_wall_clock").value(report.speedup());
    }
    if (o.compareSampled) {
        writeVariant(j, "sampled", report.sampled);
        j.key("sample_modifier").value(o.sampleModifier);
    }
    if (report.compareNoTrace()) {
        writeVariant(j, "sampled_notrace", report.sampledNoTrace);
        j.key("trace_speedup_effective")
            .value(report.traceSpeedupEffective());
    }
    j.endObject();
}

namespace
{

/**
 * Extract `"metric": <number>` scoped to the named top-level variant
 * object of a BENCH_simspeed.json document. Schema-targeted, not a
 * general JSON parser: variant objects are the only places these
 * metric keys appear, and `per_job` (the only nested array) is written
 * after the scalars, so scanning forward from the variant key to the
 * first match stays inside the right object.
 */
bool
extractMetric(const std::string &doc, const std::string &variant,
              const std::string &metric, double &out)
{
    const size_t vpos = doc.find("\"" + variant + "\": {");
    if (vpos == std::string::npos)
        return false;
    const size_t stop = doc.find("\"per_job\"", vpos);
    const size_t mpos = doc.find("\"" + metric + "\": ", vpos);
    if (mpos == std::string::npos || (stop != std::string::npos &&
                                      mpos > stop)) {
        return false;
    }
    const char *num = doc.c_str() + mpos + metric.size() + 4;
    char *end = nullptr;
    out = std::strtod(num, &end);
    return end != num;
}

void
deltaIfPresent(const std::string &old_doc, const char *variant,
               const char *metric, double new_value,
               std::vector<BenchDelta> &out)
{
    double old_value = 0.0;
    if (!extractMetric(old_doc, variant, metric, old_value))
        return;
    out.push_back({variant, metric, old_value, new_value});
}

} // namespace

std::vector<BenchDelta>
compareBenchJson(const std::string &old_doc, const BenchReport &report)
{
    std::vector<BenchDelta> deltas;
    deltaIfPresent(old_doc, "event", "kips",
                   benchAggregate(report.event).kips(), deltas);
    if (report.options.compareUncached) {
        deltaIfPresent(old_doc, "uncached", "kips",
                       benchAggregate(report.uncached).kips(), deltas);
    }
    if (report.options.compareSampled) {
        const BenchAggregate sm = benchAggregate(report.sampled);
        deltaIfPresent(old_doc, "sampled", "kips", sm.kips(), deltas);
        deltaIfPresent(old_doc, "sampled", "effective_kips",
                       sm.effectiveKips(), deltas);
    }
    if (report.compareNoTrace()) {
        deltaIfPresent(old_doc, "sampled_notrace", "effective_kips",
                       benchAggregate(report.sampledNoTrace)
                           .effectiveKips(),
                       deltas);
    }
    return deltas;
}

} // namespace nwsim::exp
