#include "exp/wire.hh"

#include <bit>
#include <cstring>

#include "driver/result_serial.hh"

namespace nwsim::exp
{

namespace
{

void
packCacheConfig(WireSink &s, const CacheConfig &c)
{
    s.str(c.name);
    s.u64v(c.sizeBytes);
    s.u32v(c.assoc);
    s.u32v(c.blockBytes);
    s.u32v(c.hitLatency);
}

bool
unpackCacheConfig(WireSource &s, CacheConfig &c)
{
    s.str(c.name);
    s.u64v(c.sizeBytes);
    s.uns(c.assoc);
    s.uns(c.blockBytes);
    s.uns(c.hitLatency);
    return s.ok();
}

void
packTlbConfig(WireSink &s, const TlbConfig &t)
{
    s.str(t.name);
    s.u32v(t.entries);
    s.u32v(t.pageShift);
    s.u32v(t.missLatency);
}

bool
unpackTlbConfig(WireSource &s, TlbConfig &t)
{
    s.str(t.name);
    s.uns(t.entries);
    s.uns(t.pageShift);
    s.uns(t.missLatency);
    return s.ok();
}

void
packCoreConfig(WireSink &s, const CoreConfig &c)
{
    s.u32v(c.ruuSize);
    s.u32v(c.lsqSize);
    s.u32v(c.fetchQueueSize);
    s.u32v(c.fetchWidth);
    s.u32v(c.decodeWidth);
    s.u32v(c.issueWidth);
    s.u32v(c.commitWidth);
    s.u32v(c.numAlus);
    s.u32v(c.numMultDiv);
    s.u32v(c.mispredictPenalty);
    s.boolv(c.perfectBPred);
    s.u64v(c.watchdogCycles);
    s.boolv(c.earlyOutMultiply);
    s.boolv(c.decodeCache);
    s.boolv(c.superblockTraces);

    const BPredConfig &b = c.bpred;
    s.u32v(b.selectorEntries);
    s.u32v(b.selectorBits);
    s.u32v(b.globalEntries);
    s.u32v(b.globalBits);
    s.u32v(b.globalHistBits);
    s.u32v(b.localHistEntries);
    s.u32v(b.localHistBits);
    s.u32v(b.localPredEntries);
    s.u32v(b.localPredBits);
    s.u32v(b.btbEntries);
    s.u32v(b.btbAssoc);
    s.u32v(b.rasEntries);

    packCacheConfig(s, c.mem.l1i);
    packCacheConfig(s, c.mem.l1d);
    packCacheConfig(s, c.mem.l2);
    s.u32v(c.mem.memoryLatency);
    packTlbConfig(s, c.mem.itlb);
    packTlbConfig(s, c.mem.dtlb);

    const PackingConfig &p = c.packing;
    s.boolv(p.enabled);
    s.boolv(p.replay);
    s.u32v(p.lanesPerAlu);
    s.boolv(p.groupCountsOneSlot);
    s.u32v(p.replayPenalty);

    const GatingConfig &g = c.gating;
    s.boolv(g.enabled);
    s.boolv(g.gate33);
    s.boolv(g.zeroDetectOnLoads);
    s.f64v(g.devices.adder64);
    s.f64v(g.devices.multiplier64);
    s.f64v(g.devices.logic64);
    s.f64v(g.devices.shifter64);
    s.f64v(g.devices.zeroDetect);
    s.f64v(g.devices.mux);
}

bool
unpackCoreConfig(WireSource &s, CoreConfig &c)
{
    s.uns(c.ruuSize);
    s.uns(c.lsqSize);
    s.uns(c.fetchQueueSize);
    s.uns(c.fetchWidth);
    s.uns(c.decodeWidth);
    s.uns(c.issueWidth);
    s.uns(c.commitWidth);
    s.uns(c.numAlus);
    s.uns(c.numMultDiv);
    s.uns(c.mispredictPenalty);
    s.boolv(c.perfectBPred);
    s.u64v(c.watchdogCycles);
    s.boolv(c.earlyOutMultiply);
    s.boolv(c.decodeCache);
    s.boolv(c.superblockTraces);

    BPredConfig &b = c.bpred;
    s.uns(b.selectorEntries);
    s.uns(b.selectorBits);
    s.uns(b.globalEntries);
    s.uns(b.globalBits);
    s.uns(b.globalHistBits);
    s.uns(b.localHistEntries);
    s.uns(b.localHistBits);
    s.uns(b.localPredEntries);
    s.uns(b.localPredBits);
    s.uns(b.btbEntries);
    s.uns(b.btbAssoc);
    s.uns(b.rasEntries);

    unpackCacheConfig(s, c.mem.l1i);
    unpackCacheConfig(s, c.mem.l1d);
    unpackCacheConfig(s, c.mem.l2);
    s.uns(c.mem.memoryLatency);
    unpackTlbConfig(s, c.mem.itlb);
    unpackTlbConfig(s, c.mem.dtlb);

    PackingConfig &p = c.packing;
    s.boolv(p.enabled);
    s.boolv(p.replay);
    s.uns(p.lanesPerAlu);
    s.boolv(p.groupCountsOneSlot);
    s.uns(p.replayPenalty);

    GatingConfig &g = c.gating;
    s.boolv(g.enabled);
    s.boolv(g.gate33);
    s.boolv(g.zeroDetectOnLoads);
    s.f64v(g.devices.adder64);
    s.f64v(g.devices.multiplier64);
    s.f64v(g.devices.logic64);
    s.f64v(g.devices.shifter64);
    s.f64v(g.devices.zeroDetect);
    s.f64v(g.devices.mux);
    return s.ok();
}

} // namespace

std::string
packJobOutcome(const JobOutcome &outcome)
{
    WireSink s;
    s.magic(kOutcomeMagic);
    s.u8v(kWireVersion);
    s.str(outcome.workload);
    s.str(outcome.configSpec);
    s.u8v(outcome.ok ? 1 : 0);
    s.u8v(static_cast<u8>(outcome.status));
    s.u8v(static_cast<u8>(outcome.errorKind));
    s.u64v(static_cast<u64>(outcome.termSignal));
    s.u64v(outcome.attempts);
    s.str(outcome.error);
    s.str(outcome.bundlePath);
    s.f64v(outcome.wallSeconds);
    // Checkpoint provenance + shard merge blob (v5).
    s.str(outcome.ckptPath);
    s.u64v(outcome.ckptPosition);
    s.str(outcome.shardAgg);
    if (outcome.ok)
        packRunResultFields(s, outcome.result);
    return s.take();
}

WireError
unpackJobOutcomeErr(std::string_view blob, JobOutcome &out)
{
    WireSource s(blob);
    if (const WireError err = s.header(kOutcomeMagic, kWireVersion);
        err != WireError::None) {
        return err;
    }

    JobOutcome o;
    u8 ok8 = 0, status8 = 0, kind8 = 0;
    u64 sig = 0, attempts = 0;
    s.str(o.workload);
    s.str(o.configSpec);
    s.u8v(ok8);
    s.u8v(status8);
    s.u8v(kind8);
    s.u64v(sig);
    s.u64v(attempts);
    s.str(o.error);
    s.str(o.bundlePath);
    s.f64v(o.wallSeconds);
    s.str(o.ckptPath);
    s.u64v(o.ckptPosition);
    s.str(o.shardAgg);
    if (!s.ok())
        return WireError::Truncated;
    if (status8 > static_cast<u8>(JobStatus::Interrupted) ||
        kind8 > static_cast<u8>(FailKind::Unknown)) {
        return WireError::Corrupt;
    }
    o.ok = ok8 != 0;
    o.status = static_cast<JobStatus>(status8);
    o.errorKind = static_cast<FailKind>(kind8);
    o.termSignal = static_cast<int>(sig);
    o.attempts = static_cast<unsigned>(attempts);
    if (o.ok && !unpackRunResultFields(s, o.result))
        return WireError::Truncated;
    if (!s.exhausted())
        return WireError::Corrupt; // trailing garbage
    out = std::move(o);
    return WireError::None;
}

bool
unpackJobOutcome(std::string_view blob, JobOutcome &out)
{
    return unpackJobOutcomeErr(blob, out) == WireError::None;
}

std::string
packSimJobSpec(const SimJob &job)
{
    WireSink s;
    s.magic(kJobSpecMagic);
    s.u8v(kWireVersion);
    s.str(job.workload);
    s.str(job.configSpec);
    s.str(job.asmText);
    s.str(job.configText);
    s.u64v(job.opts.warmupInsts);
    s.u64v(job.opts.measureInsts);
    s.boolv(job.opts.fastWarmup);
    const SampleOptions &so = job.opts.sample;
    s.boolv(so.enabled);
    s.u64v(so.periodInsts);
    s.u64v(so.warmupInsts);
    s.u64v(so.measureInsts);
    s.boolv(so.randomize);
    s.u64v(so.seed);
    // Checkpoint cadence + shard assignment (v5).
    s.u64v(job.opts.ckptEveryInsts);
    s.boolv(job.shard.enabled);
    s.u64v(job.shard.startPeriod);
    s.u64v(job.shard.endPeriod);
    s.str(job.shard.ckptBlob);
    packCoreConfig(s, job.config);
    return s.take();
}

WireError
unpackSimJobSpec(std::string_view blob, SimJob &out)
{
    WireSource s(blob);
    if (const WireError err = s.header(kJobSpecMagic, kWireVersion);
        err != WireError::None) {
        return err;
    }

    SimJob job;
    s.str(job.workload);
    s.str(job.configSpec);
    s.str(job.asmText);
    s.str(job.configText);
    s.u64v(job.opts.warmupInsts);
    s.u64v(job.opts.measureInsts);
    s.boolv(job.opts.fastWarmup);
    SampleOptions &so = job.opts.sample;
    s.boolv(so.enabled);
    s.u64v(so.periodInsts);
    s.u64v(so.warmupInsts);
    s.u64v(so.measureInsts);
    s.boolv(so.randomize);
    s.u64v(so.seed);
    s.u64v(job.opts.ckptEveryInsts);
    s.boolv(job.shard.enabled);
    s.u64v(job.shard.startPeriod);
    s.u64v(job.shard.endPeriod);
    s.str(job.shard.ckptBlob);
    if (!unpackCoreConfig(s, job.config))
        return WireError::Truncated;
    if (!s.exhausted())
        return WireError::Corrupt;
    out = std::move(job);
    return WireError::None;
}

std::string
packSampleSummary(const SampleSummary &summary)
{
    WireSink s;
    nwsim::packSampleSummaryFields(s, summary);
    return s.take();
}

std::string
toHex(std::string_view bytes)
{
    static const char digits[] = "0123456789abcdef";
    std::string out;
    out.reserve(bytes.size() * 2);
    for (char c : bytes) {
        const u8 b = static_cast<u8>(c);
        out.push_back(digits[b >> 4]);
        out.push_back(digits[b & 0xf]);
    }
    return out;
}

bool
fromHex(std::string_view hex, std::string &bytes)
{
    auto nibble = [](char c) -> int {
        if (c >= '0' && c <= '9')
            return c - '0';
        if (c >= 'a' && c <= 'f')
            return c - 'a' + 10;
        return -1;
    };
    if (hex.size() % 2)
        return false;
    std::string out;
    out.reserve(hex.size() / 2);
    for (size_t i = 0; i < hex.size(); i += 2) {
        const int hi = nibble(hex[i]);
        const int lo = nibble(hex[i + 1]);
        if (hi < 0 || lo < 0)
            return false;
        out.push_back(static_cast<char>((hi << 4) | lo));
    }
    bytes = std::move(out);
    return true;
}

} // namespace nwsim::exp
