#include "exp/wire.hh"

#include <bit>
#include <cstring>

namespace nwsim::exp
{

void
WireSink::f64v(double v)
{
    u64v(std::bit_cast<u64>(v));
}

bool
WireSource::f64v(double &v)
{
    u64 bits = 0;
    if (!u64v(bits))
        return false;
    v = std::bit_cast<double>(bits);
    return true;
}

WireError
WireSource::header(const char magic[4])
{
    if (data.size() < 5)
        return WireError::Truncated;
    if (std::memcmp(data.data(), magic, 4) != 0)
        return WireError::BadMagic;
    pos = 4;
    u8 version = 0;
    u8v(version);
    if (version != kWireVersion)
        return WireError::VersionMismatch;
    return WireError::None;
}

namespace
{

void
packSampleSummaryFields(WireSink &s, const SampleSummary &ss)
{
    s.boolv(ss.sampled);
    s.u64v(ss.intervals);
    s.u64v(ss.streamInsts);
    for (const SampleSummary::Estimate &e : ss.metrics) {
        s.f64v(e.mean);
        s.f64v(e.cov);
        s.f64v(e.ci95);
    }
}

void
packRunResult(WireSink &s, const RunResult &r)
{
    s.str(r.workload);
    s.str(r.configName);
    s.u64v(r.warmupCommitted);
    s.u64v(r.measuredCommitted);

    const CoreStats &c = r.core;
    s.u64v(c.cycles);
    s.u64v(c.fetched);
    s.u64v(c.dispatched);
    s.u64v(c.issued);
    s.u64v(c.committed);
    s.u64v(c.squashed);
    s.u64v(c.mispredictSquashes);
    s.u64v(c.loadsForwarded);
    s.u64v(c.windowFullStalls);
    s.u64v(c.issueLimitedCycles);
    s.u64v(c.readyOpsSum);

    const GatingStats &g = r.gating;
    s.u64v(g.ops);
    s.u64v(g.gated16);
    s.u64v(g.gated33);
    s.u64v(g.gatedLoadSourced);
    s.u64v(g.blockedByLoad);
    s.f64v(g.baselineMwSum);
    s.f64v(g.gatedMwSum);
    s.f64v(g.overheadMwSum);
    s.f64v(g.saved16MwSum);
    s.f64v(g.saved33MwSum);

    const PackingStats &p = r.packing;
    s.u64v(p.packedGroups);
    s.u64v(p.packedInsts);
    s.u64v(p.replaySpeculations);
    s.u64v(p.replayTraps);
    s.u64v(p.packEligibleIssued);

    const BPredStats &b = r.bpred;
    s.u64v(b.lookups);
    s.u64v(b.condLookups);
    s.u64v(b.condDirectionWrong);
    s.u64v(b.targetWrong);

    const WidthProfilerSnapshot w = r.profiler.snapshot();
    s.u64v(w.opCount);
    for (u64 h : w.widthHist)
        s.u64v(h);
    for (u64 n : w.narrow16ByCat)
        s.u64v(n);
    for (u64 n : w.narrow33ByCat)
        s.u64v(n);
    s.u64v(w.pcWidthSeen.size());
    for (const auto &[pc, seen] : w.pcWidthSeen) {
        s.u64v(pc);
        s.u8v(seen);
    }

    s.f64v(r.l1dMissRate);
    s.f64v(r.l1iMissRate);

    packSampleSummaryFields(s, r.sample);

    // Host-side decode-cache health (v4).
    s.u64v(r.decodeCache.lookups);
    s.u64v(r.decodeCache.hits);
}

bool
unpackRunResult(WireSource &s, RunResult &r)
{
    s.str(r.workload);
    s.str(r.configName);
    s.u64v(r.warmupCommitted);
    s.u64v(r.measuredCommitted);

    CoreStats &c = r.core;
    s.u64v(c.cycles);
    s.u64v(c.fetched);
    s.u64v(c.dispatched);
    s.u64v(c.issued);
    s.u64v(c.committed);
    s.u64v(c.squashed);
    s.u64v(c.mispredictSquashes);
    s.u64v(c.loadsForwarded);
    s.u64v(c.windowFullStalls);
    s.u64v(c.issueLimitedCycles);
    s.u64v(c.readyOpsSum);

    GatingStats &g = r.gating;
    s.u64v(g.ops);
    s.u64v(g.gated16);
    s.u64v(g.gated33);
    s.u64v(g.gatedLoadSourced);
    s.u64v(g.blockedByLoad);
    s.f64v(g.baselineMwSum);
    s.f64v(g.gatedMwSum);
    s.f64v(g.overheadMwSum);
    s.f64v(g.saved16MwSum);
    s.f64v(g.saved33MwSum);

    PackingStats &p = r.packing;
    s.u64v(p.packedGroups);
    s.u64v(p.packedInsts);
    s.u64v(p.replaySpeculations);
    s.u64v(p.replayTraps);
    s.u64v(p.packEligibleIssued);

    BPredStats &b = r.bpred;
    s.u64v(b.lookups);
    s.u64v(b.condLookups);
    s.u64v(b.condDirectionWrong);
    s.u64v(b.targetWrong);

    WidthProfilerSnapshot w;
    s.u64v(w.opCount);
    for (u64 &h : w.widthHist)
        s.u64v(h);
    for (u64 &n : w.narrow16ByCat)
        s.u64v(n);
    for (u64 &n : w.narrow33ByCat)
        s.u64v(n);
    u64 pcs = 0;
    if (s.u64v(pcs)) {
        w.pcWidthSeen.reserve(pcs);
        for (u64 i = 0; i < pcs && s.ok(); ++i) {
            u64 pc = 0;
            u8 seen = 0;
            s.u64v(pc);
            s.u8v(seen);
            w.pcWidthSeen.emplace_back(pc, seen);
        }
    }
    r.profiler = WidthProfiler::fromSnapshot(w);

    s.f64v(r.l1dMissRate);
    s.f64v(r.l1iMissRate);

    SampleSummary &ss = r.sample;
    s.boolv(ss.sampled);
    s.u64v(ss.intervals);
    s.u64v(ss.streamInsts);
    for (SampleSummary::Estimate &e : ss.metrics) {
        s.f64v(e.mean);
        s.f64v(e.cov);
        s.f64v(e.ci95);
    }

    s.u64v(r.decodeCache.lookups);
    s.u64v(r.decodeCache.hits);
    return s.ok();
}

void
packCacheConfig(WireSink &s, const CacheConfig &c)
{
    s.str(c.name);
    s.u64v(c.sizeBytes);
    s.u32v(c.assoc);
    s.u32v(c.blockBytes);
    s.u32v(c.hitLatency);
}

bool
unpackCacheConfig(WireSource &s, CacheConfig &c)
{
    s.str(c.name);
    s.u64v(c.sizeBytes);
    s.uns(c.assoc);
    s.uns(c.blockBytes);
    s.uns(c.hitLatency);
    return s.ok();
}

void
packTlbConfig(WireSink &s, const TlbConfig &t)
{
    s.str(t.name);
    s.u32v(t.entries);
    s.u32v(t.pageShift);
    s.u32v(t.missLatency);
}

bool
unpackTlbConfig(WireSource &s, TlbConfig &t)
{
    s.str(t.name);
    s.uns(t.entries);
    s.uns(t.pageShift);
    s.uns(t.missLatency);
    return s.ok();
}

void
packCoreConfig(WireSink &s, const CoreConfig &c)
{
    s.u32v(c.ruuSize);
    s.u32v(c.lsqSize);
    s.u32v(c.fetchQueueSize);
    s.u32v(c.fetchWidth);
    s.u32v(c.decodeWidth);
    s.u32v(c.issueWidth);
    s.u32v(c.commitWidth);
    s.u32v(c.numAlus);
    s.u32v(c.numMultDiv);
    s.u32v(c.mispredictPenalty);
    s.boolv(c.perfectBPred);
    s.u64v(c.watchdogCycles);
    s.boolv(c.earlyOutMultiply);
    s.boolv(c.decodeCache);

    const BPredConfig &b = c.bpred;
    s.u32v(b.selectorEntries);
    s.u32v(b.selectorBits);
    s.u32v(b.globalEntries);
    s.u32v(b.globalBits);
    s.u32v(b.globalHistBits);
    s.u32v(b.localHistEntries);
    s.u32v(b.localHistBits);
    s.u32v(b.localPredEntries);
    s.u32v(b.localPredBits);
    s.u32v(b.btbEntries);
    s.u32v(b.btbAssoc);
    s.u32v(b.rasEntries);

    packCacheConfig(s, c.mem.l1i);
    packCacheConfig(s, c.mem.l1d);
    packCacheConfig(s, c.mem.l2);
    s.u32v(c.mem.memoryLatency);
    packTlbConfig(s, c.mem.itlb);
    packTlbConfig(s, c.mem.dtlb);

    const PackingConfig &p = c.packing;
    s.boolv(p.enabled);
    s.boolv(p.replay);
    s.u32v(p.lanesPerAlu);
    s.boolv(p.groupCountsOneSlot);
    s.u32v(p.replayPenalty);

    const GatingConfig &g = c.gating;
    s.boolv(g.enabled);
    s.boolv(g.gate33);
    s.boolv(g.zeroDetectOnLoads);
    s.f64v(g.devices.adder64);
    s.f64v(g.devices.multiplier64);
    s.f64v(g.devices.logic64);
    s.f64v(g.devices.shifter64);
    s.f64v(g.devices.zeroDetect);
    s.f64v(g.devices.mux);
}

bool
unpackCoreConfig(WireSource &s, CoreConfig &c)
{
    s.uns(c.ruuSize);
    s.uns(c.lsqSize);
    s.uns(c.fetchQueueSize);
    s.uns(c.fetchWidth);
    s.uns(c.decodeWidth);
    s.uns(c.issueWidth);
    s.uns(c.commitWidth);
    s.uns(c.numAlus);
    s.uns(c.numMultDiv);
    s.uns(c.mispredictPenalty);
    s.boolv(c.perfectBPred);
    s.u64v(c.watchdogCycles);
    s.boolv(c.earlyOutMultiply);
    s.boolv(c.decodeCache);

    BPredConfig &b = c.bpred;
    s.uns(b.selectorEntries);
    s.uns(b.selectorBits);
    s.uns(b.globalEntries);
    s.uns(b.globalBits);
    s.uns(b.globalHistBits);
    s.uns(b.localHistEntries);
    s.uns(b.localHistBits);
    s.uns(b.localPredEntries);
    s.uns(b.localPredBits);
    s.uns(b.btbEntries);
    s.uns(b.btbAssoc);
    s.uns(b.rasEntries);

    unpackCacheConfig(s, c.mem.l1i);
    unpackCacheConfig(s, c.mem.l1d);
    unpackCacheConfig(s, c.mem.l2);
    s.uns(c.mem.memoryLatency);
    unpackTlbConfig(s, c.mem.itlb);
    unpackTlbConfig(s, c.mem.dtlb);

    PackingConfig &p = c.packing;
    s.boolv(p.enabled);
    s.boolv(p.replay);
    s.uns(p.lanesPerAlu);
    s.boolv(p.groupCountsOneSlot);
    s.uns(p.replayPenalty);

    GatingConfig &g = c.gating;
    s.boolv(g.enabled);
    s.boolv(g.gate33);
    s.boolv(g.zeroDetectOnLoads);
    s.f64v(g.devices.adder64);
    s.f64v(g.devices.multiplier64);
    s.f64v(g.devices.logic64);
    s.f64v(g.devices.shifter64);
    s.f64v(g.devices.zeroDetect);
    s.f64v(g.devices.mux);
    return s.ok();
}

} // namespace

const char *
wireErrorName(WireError err)
{
    switch (err) {
    case WireError::None:
        return "";
    case WireError::Truncated:
        return "truncated";
    case WireError::BadMagic:
        return "bad-magic";
    case WireError::VersionMismatch:
        return "version-mismatch";
    case WireError::Corrupt:
        return "corrupt";
    }
    return "?";
}

std::string
packJobOutcome(const JobOutcome &outcome)
{
    WireSink s;
    s.magic(kOutcomeMagic);
    s.u8v(kWireVersion);
    s.str(outcome.workload);
    s.str(outcome.configSpec);
    s.u8v(outcome.ok ? 1 : 0);
    s.u8v(static_cast<u8>(outcome.status));
    s.u8v(static_cast<u8>(outcome.errorKind));
    s.u64v(static_cast<u64>(outcome.termSignal));
    s.u64v(outcome.attempts);
    s.str(outcome.error);
    s.str(outcome.bundlePath);
    s.f64v(outcome.wallSeconds);
    if (outcome.ok)
        packRunResult(s, outcome.result);
    return s.take();
}

WireError
unpackJobOutcomeErr(std::string_view blob, JobOutcome &out)
{
    WireSource s(blob);
    if (const WireError err = s.header(kOutcomeMagic);
        err != WireError::None) {
        return err;
    }

    JobOutcome o;
    u8 ok8 = 0, status8 = 0, kind8 = 0;
    u64 sig = 0, attempts = 0;
    s.str(o.workload);
    s.str(o.configSpec);
    s.u8v(ok8);
    s.u8v(status8);
    s.u8v(kind8);
    s.u64v(sig);
    s.u64v(attempts);
    s.str(o.error);
    s.str(o.bundlePath);
    s.f64v(o.wallSeconds);
    if (!s.ok())
        return WireError::Truncated;
    if (status8 > static_cast<u8>(JobStatus::Timeout) ||
        kind8 > static_cast<u8>(FailKind::Unknown)) {
        return WireError::Corrupt;
    }
    o.ok = ok8 != 0;
    o.status = static_cast<JobStatus>(status8);
    o.errorKind = static_cast<FailKind>(kind8);
    o.termSignal = static_cast<int>(sig);
    o.attempts = static_cast<unsigned>(attempts);
    if (o.ok && !unpackRunResult(s, o.result))
        return WireError::Truncated;
    if (!s.exhausted())
        return WireError::Corrupt; // trailing garbage
    out = std::move(o);
    return WireError::None;
}

bool
unpackJobOutcome(std::string_view blob, JobOutcome &out)
{
    return unpackJobOutcomeErr(blob, out) == WireError::None;
}

std::string
packSimJobSpec(const SimJob &job)
{
    WireSink s;
    s.magic(kJobSpecMagic);
    s.u8v(kWireVersion);
    s.str(job.workload);
    s.str(job.configSpec);
    s.str(job.asmText);
    s.u64v(job.opts.warmupInsts);
    s.u64v(job.opts.measureInsts);
    s.boolv(job.opts.fastWarmup);
    const SampleOptions &so = job.opts.sample;
    s.boolv(so.enabled);
    s.u64v(so.periodInsts);
    s.u64v(so.warmupInsts);
    s.u64v(so.measureInsts);
    s.boolv(so.randomize);
    s.u64v(so.seed);
    packCoreConfig(s, job.config);
    return s.take();
}

WireError
unpackSimJobSpec(std::string_view blob, SimJob &out)
{
    WireSource s(blob);
    if (const WireError err = s.header(kJobSpecMagic);
        err != WireError::None) {
        return err;
    }

    SimJob job;
    s.str(job.workload);
    s.str(job.configSpec);
    s.str(job.asmText);
    s.u64v(job.opts.warmupInsts);
    s.u64v(job.opts.measureInsts);
    s.boolv(job.opts.fastWarmup);
    SampleOptions &so = job.opts.sample;
    s.boolv(so.enabled);
    s.u64v(so.periodInsts);
    s.u64v(so.warmupInsts);
    s.u64v(so.measureInsts);
    s.boolv(so.randomize);
    s.u64v(so.seed);
    if (!unpackCoreConfig(s, job.config))
        return WireError::Truncated;
    if (!s.exhausted())
        return WireError::Corrupt;
    out = std::move(job);
    return WireError::None;
}

std::string
packSampleSummary(const SampleSummary &summary)
{
    WireSink s;
    packSampleSummaryFields(s, summary);
    return s.take();
}

std::string
toHex(std::string_view bytes)
{
    static const char digits[] = "0123456789abcdef";
    std::string out;
    out.reserve(bytes.size() * 2);
    for (char c : bytes) {
        const u8 b = static_cast<u8>(c);
        out.push_back(digits[b >> 4]);
        out.push_back(digits[b & 0xf]);
    }
    return out;
}

bool
fromHex(std::string_view hex, std::string &bytes)
{
    auto nibble = [](char c) -> int {
        if (c >= '0' && c <= '9')
            return c - '0';
        if (c >= 'a' && c <= 'f')
            return c - 'a' + 10;
        return -1;
    };
    if (hex.size() % 2)
        return false;
    std::string out;
    out.reserve(hex.size() / 2);
    for (size_t i = 0; i < hex.size(); i += 2) {
        const int hi = nibble(hex[i]);
        const int lo = nibble(hex[i + 1]);
        if (hi < 0 || lo < 0)
            return false;
        out.push_back(static_cast<char>((hi << 4) | lo));
    }
    bytes = std::move(out);
    return true;
}

u64
fnv1a64(std::string_view bytes)
{
    u64 hash = 0xcbf29ce484222325ULL;
    for (char c : bytes) {
        hash ^= static_cast<u8>(c);
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

} // namespace nwsim::exp
