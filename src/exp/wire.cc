#include "exp/wire.hh"

#include <bit>
#include <cstring>

namespace nwsim::exp
{

namespace
{

constexpr u8 kWireVersion = 1;

/** Little-endian primitive encoder. */
class ByteSink
{
  public:
    void
    u8v(u8 v)
    {
        bytes.push_back(static_cast<char>(v));
    }

    void
    u64v(u64 v)
    {
        for (int i = 0; i < 8; ++i)
            bytes.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }

    void
    f64v(double v)
    {
        u64v(std::bit_cast<u64>(v));
    }

    void
    str(const std::string &s)
    {
        u64v(s.size());
        bytes.append(s);
    }

    std::string take() { return std::move(bytes); }

  private:
    std::string bytes;
};

/** Little-endian primitive decoder; all reads fail-stop on underrun. */
class ByteSource
{
  public:
    explicit ByteSource(std::string_view view) : data(view) {}

    bool
    u8v(u8 &v)
    {
        if (pos + 1 > data.size())
            return fail();
        v = static_cast<u8>(data[pos++]);
        return true;
    }

    bool
    u64v(u64 &v)
    {
        if (pos + 8 > data.size())
            return fail();
        v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<u64>(static_cast<u8>(data[pos + i]))
                 << (8 * i);
        pos += 8;
        return true;
    }

    bool
    f64v(double &v)
    {
        u64 bits = 0;
        if (!u64v(bits))
            return false;
        v = std::bit_cast<double>(bits);
        return true;
    }

    bool
    str(std::string &s)
    {
        u64 n = 0;
        if (!u64v(n) || pos + n > data.size())
            return fail();
        s.assign(data.substr(pos, n));
        pos += n;
        return true;
    }

    bool exhausted() const { return ok_ && pos == data.size(); }
    bool ok() const { return ok_; }

  private:
    bool
    fail()
    {
        ok_ = false;
        return false;
    }

    std::string_view data;
    size_t pos = 0;
    bool ok_ = true;
};

void
packRunResult(ByteSink &s, const RunResult &r)
{
    s.str(r.workload);
    s.str(r.configName);
    s.u64v(r.warmupCommitted);
    s.u64v(r.measuredCommitted);

    const CoreStats &c = r.core;
    s.u64v(c.cycles);
    s.u64v(c.fetched);
    s.u64v(c.dispatched);
    s.u64v(c.issued);
    s.u64v(c.committed);
    s.u64v(c.squashed);
    s.u64v(c.mispredictSquashes);
    s.u64v(c.loadsForwarded);
    s.u64v(c.windowFullStalls);
    s.u64v(c.issueLimitedCycles);
    s.u64v(c.readyOpsSum);

    const GatingStats &g = r.gating;
    s.u64v(g.ops);
    s.u64v(g.gated16);
    s.u64v(g.gated33);
    s.u64v(g.gatedLoadSourced);
    s.u64v(g.blockedByLoad);
    s.f64v(g.baselineMwSum);
    s.f64v(g.gatedMwSum);
    s.f64v(g.overheadMwSum);
    s.f64v(g.saved16MwSum);
    s.f64v(g.saved33MwSum);

    const PackingStats &p = r.packing;
    s.u64v(p.packedGroups);
    s.u64v(p.packedInsts);
    s.u64v(p.replaySpeculations);
    s.u64v(p.replayTraps);
    s.u64v(p.packEligibleIssued);

    const BPredStats &b = r.bpred;
    s.u64v(b.lookups);
    s.u64v(b.condLookups);
    s.u64v(b.condDirectionWrong);
    s.u64v(b.targetWrong);

    const WidthProfilerSnapshot w = r.profiler.snapshot();
    s.u64v(w.opCount);
    for (u64 h : w.widthHist)
        s.u64v(h);
    for (u64 n : w.narrow16ByCat)
        s.u64v(n);
    for (u64 n : w.narrow33ByCat)
        s.u64v(n);
    s.u64v(w.pcWidthSeen.size());
    for (const auto &[pc, seen] : w.pcWidthSeen) {
        s.u64v(pc);
        s.u8v(seen);
    }

    s.f64v(r.l1dMissRate);
    s.f64v(r.l1iMissRate);
}

bool
unpackRunResult(ByteSource &s, RunResult &r)
{
    s.str(r.workload);
    s.str(r.configName);
    s.u64v(r.warmupCommitted);
    s.u64v(r.measuredCommitted);

    CoreStats &c = r.core;
    s.u64v(c.cycles);
    s.u64v(c.fetched);
    s.u64v(c.dispatched);
    s.u64v(c.issued);
    s.u64v(c.committed);
    s.u64v(c.squashed);
    s.u64v(c.mispredictSquashes);
    s.u64v(c.loadsForwarded);
    s.u64v(c.windowFullStalls);
    s.u64v(c.issueLimitedCycles);
    s.u64v(c.readyOpsSum);

    GatingStats &g = r.gating;
    s.u64v(g.ops);
    s.u64v(g.gated16);
    s.u64v(g.gated33);
    s.u64v(g.gatedLoadSourced);
    s.u64v(g.blockedByLoad);
    s.f64v(g.baselineMwSum);
    s.f64v(g.gatedMwSum);
    s.f64v(g.overheadMwSum);
    s.f64v(g.saved16MwSum);
    s.f64v(g.saved33MwSum);

    PackingStats &p = r.packing;
    s.u64v(p.packedGroups);
    s.u64v(p.packedInsts);
    s.u64v(p.replaySpeculations);
    s.u64v(p.replayTraps);
    s.u64v(p.packEligibleIssued);

    BPredStats &b = r.bpred;
    s.u64v(b.lookups);
    s.u64v(b.condLookups);
    s.u64v(b.condDirectionWrong);
    s.u64v(b.targetWrong);

    WidthProfilerSnapshot w;
    s.u64v(w.opCount);
    for (u64 &h : w.widthHist)
        s.u64v(h);
    for (u64 &n : w.narrow16ByCat)
        s.u64v(n);
    for (u64 &n : w.narrow33ByCat)
        s.u64v(n);
    u64 pcs = 0;
    if (s.u64v(pcs)) {
        w.pcWidthSeen.reserve(pcs);
        for (u64 i = 0; i < pcs && s.ok(); ++i) {
            u64 pc = 0;
            u8 seen = 0;
            s.u64v(pc);
            s.u8v(seen);
            w.pcWidthSeen.emplace_back(pc, seen);
        }
    }
    r.profiler = WidthProfiler::fromSnapshot(w);

    s.f64v(r.l1dMissRate);
    s.f64v(r.l1iMissRate);
    return s.ok();
}

} // namespace

std::string
packJobOutcome(const JobOutcome &outcome)
{
    ByteSink s;
    s.u8v(kWireVersion);
    s.str(outcome.workload);
    s.str(outcome.configSpec);
    s.u8v(outcome.ok ? 1 : 0);
    s.u8v(static_cast<u8>(outcome.status));
    s.u8v(static_cast<u8>(outcome.errorKind));
    s.u64v(static_cast<u64>(outcome.termSignal));
    s.u64v(outcome.attempts);
    s.str(outcome.error);
    s.str(outcome.bundlePath);
    s.f64v(outcome.wallSeconds);
    if (outcome.ok)
        packRunResult(s, outcome.result);
    return s.take();
}

bool
unpackJobOutcome(std::string_view blob, JobOutcome &out)
{
    ByteSource s(blob);
    u8 version = 0;
    if (!s.u8v(version) || version != kWireVersion)
        return false;

    JobOutcome o;
    u8 ok8 = 0, status8 = 0, kind8 = 0;
    u64 sig = 0, attempts = 0;
    s.str(o.workload);
    s.str(o.configSpec);
    s.u8v(ok8);
    s.u8v(status8);
    s.u8v(kind8);
    s.u64v(sig);
    s.u64v(attempts);
    s.str(o.error);
    s.str(o.bundlePath);
    s.f64v(o.wallSeconds);
    if (!s.ok() || status8 > static_cast<u8>(JobStatus::Timeout) ||
        kind8 > static_cast<u8>(FailKind::Unknown)) {
        return false;
    }
    o.ok = ok8 != 0;
    o.status = static_cast<JobStatus>(status8);
    o.errorKind = static_cast<FailKind>(kind8);
    o.termSignal = static_cast<int>(sig);
    o.attempts = static_cast<unsigned>(attempts);
    if (o.ok && !unpackRunResult(s, o.result))
        return false;
    if (!s.exhausted())
        return false;
    out = std::move(o);
    return true;
}

std::string
toHex(std::string_view bytes)
{
    static const char digits[] = "0123456789abcdef";
    std::string out;
    out.reserve(bytes.size() * 2);
    for (char c : bytes) {
        const u8 b = static_cast<u8>(c);
        out.push_back(digits[b >> 4]);
        out.push_back(digits[b & 0xf]);
    }
    return out;
}

bool
fromHex(std::string_view hex, std::string &bytes)
{
    auto nibble = [](char c) -> int {
        if (c >= '0' && c <= '9')
            return c - '0';
        if (c >= 'a' && c <= 'f')
            return c - 'a' + 10;
        return -1;
    };
    if (hex.size() % 2)
        return false;
    std::string out;
    out.reserve(hex.size() / 2);
    for (size_t i = 0; i < hex.size(); i += 2) {
        const int hi = nibble(hex[i]);
        const int lo = nibble(hex[i + 1]);
        if (hi < 0 || lo < 0)
            return false;
        out.push_back(static_cast<char>((hi << 4) | lo));
    }
    bytes = std::move(out);
    return true;
}

u64
fnv1a64(std::string_view bytes)
{
    u64 hash = 0xcbf29ce484222325ULL;
    for (char c : bytes) {
        hash ^= static_cast<u8>(c);
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

} // namespace nwsim::exp
