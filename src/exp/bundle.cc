#include "exp/bundle.hh"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#include "asm/textasm.hh"
#include "check/fuzz.hh"
#include "common/error.hh"
#include "exp/campaign.hh"
#include "exp/result_set.hh"
#include "sample/controller.hh"

namespace fs = std::filesystem;

namespace nwsim::exp
{

namespace
{

/** Filesystem-safe job tag: label with separators flattened. */
std::string
sanitize(const std::string &label)
{
    std::string out;
    out.reserve(label.size());
    for (char c : label) {
        const bool safe = (c >= 'a' && c <= 'z') ||
                          (c >= 'A' && c <= 'Z') ||
                          (c >= '0' && c <= '9') || c == '_' ||
                          c == '.' || c == '-';
        out.push_back(safe ? c : '-');
    }
    return out;
}

/**
 * Shrinker predicate: a candidate source reproduces the bundled fault
 * iff it still assembles, still runs the job's exact execution path
 * (sampled or full-detail), and still throws a SimError of the same
 * class. A clean run, a different class, or an exception outside the
 * taxonomy all reject the candidate.
 */
bool
reproducesFault(const std::string &text, const SimJob &job,
                FailKind kind)
{
    try {
        const Program prog = assembleText(text);
        if (job.opts.sample.enabled) {
            sample::runSampledProgram(prog, job.config, job.opts,
                                      job.workload, job.configSpec);
        } else {
            runProgram(prog, job.config, job.opts, job.workload,
                       job.configSpec);
        }
    } catch (const SimError &e) {
        return failKindOf(e.kind()) == kind;
    } catch (...) {
        return false;
    }
    return false;
}

} // namespace

std::string
bundlePathFor(const std::string &base, const SimJob &job)
{
    return base + "/" + sanitize(job.label());
}

std::string
bundleEventsPath(const std::string &base, const SimJob &job)
{
    return bundlePathFor(base, job) + "/events.log";
}

std::string
writeReproducerBundle(const std::string &base, const SimJob &job,
                      const JobOutcome &outcome,
                      const std::string &events, bool shrink)
{
    const std::string dir = bundlePathFor(base, job);
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec)
        return "";

    const bool hasAsm = !job.asmText.empty();
    if (hasAsm) {
        std::ofstream src(dir + "/repro.s");
        src << job.asmText;
    }

    // File-based machine specs ship their canonical dump so the bundle
    // replays without the original .cfg (or its inheritance chain).
    const bool hasCfg = !job.configText.empty();
    if (hasCfg) {
        std::ofstream cfg(dir + "/machine.cfg");
        cfg << job.configText;
    }

    // Close the crash → bundle → shrink loop: minimize the source while
    // the fault is hot. Exception-class faults only — replaying them
    // in-process is exactly as safe as the attempt that just ran (and
    // in fork isolation this executes inside the sandboxed child).
    AsmShrinkOutcome minimized;
    const bool tryShrink = shrink && hasAsm &&
                           outcome.status == JobStatus::Failed &&
                           outcome.errorKind != FailKind::None &&
                           outcome.errorKind != FailKind::Unknown;
    if (tryShrink) {
        minimized = shrinkAsmLines(
            job.asmText, [&](const std::string &text) {
                return reproducesFault(text, job, outcome.errorKind);
            });
        if (minimized.reproduced) {
            std::ofstream min(dir + "/repro.min.s");
            min << minimized.minimizedText;
        }
    }

    const std::string eventsPath = dir + "/events.log";
    // A crash-signal handler may already have dumped the recorder from
    // inside the dying child; keep that copy — it is closer to the fault
    // than anything the parent can reconstruct.
    if (!events.empty() && !fs::exists(eventsPath, ec)) {
        std::ofstream ev(eventsPath);
        ev << events;
    }

    std::ostringstream replay;
    replay << "nwsim run " << (hasAsm ? "repro.s" : job.workload)
           << " --config "
           << (hasCfg ? std::string("machine.cfg") : job.configSpec);
    if (!hasAsm) {
        // .s files run to completion; windows only matter for workloads.
        replay << " --warmup " << job.opts.warmupInsts << " --measure "
               << job.opts.measureInsts;
    }
    replay << " --check";

    std::ofstream man(dir + "/MANIFEST.txt");
    if (!man)
        return "";
    man << "# nwsim reproducer bundle\n"
        << "workload:   " << job.workload << "\n"
        << "config:     " << job.configSpec << "\n"
        << "status:     " << outcome.statusText() << "\n"
        << "error-kind: " << failKindName(outcome.errorKind) << "\n"
        << "attempts:   " << outcome.attempts << "\n"
        << "error:      " << outcome.error << "\n"
        << "replay:     " << replay.str() << "\n"
        << "events:     events.log (flight recorder, oldest first)\n";
    if (hasAsm)
        man << "source:     repro.s\n";
    if (hasCfg)
        man << "machine:    machine.cfg (canonical dump of "
            << job.configSpec << ")\n";
    if (minimized.reproduced) {
        man << "minimized:  repro.min.s (" << minimized.minimizedLines
            << " of " << minimized.originalLines << " lines, "
            << minimized.attempts << " shrink runs)\n";
    } else if (tryShrink) {
        man << "minimized:  (fault did not reproduce on replay; "
            << "repro.s kept as-is)\n";
    }
    man.flush();
    return man ? dir : "";
}

} // namespace nwsim::exp
