#include "exp/bundle.hh"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#include "exp/campaign.hh"
#include "exp/result_set.hh"

namespace fs = std::filesystem;

namespace nwsim::exp
{

namespace
{

/** Filesystem-safe job tag: label with separators flattened. */
std::string
sanitize(const std::string &label)
{
    std::string out;
    out.reserve(label.size());
    for (char c : label) {
        const bool safe = (c >= 'a' && c <= 'z') ||
                          (c >= 'A' && c <= 'Z') ||
                          (c >= '0' && c <= '9') || c == '_' ||
                          c == '.' || c == '-';
        out.push_back(safe ? c : '-');
    }
    return out;
}

} // namespace

std::string
bundlePathFor(const std::string &base, const SimJob &job)
{
    return base + "/" + sanitize(job.label());
}

std::string
bundleEventsPath(const std::string &base, const SimJob &job)
{
    return bundlePathFor(base, job) + "/events.log";
}

std::string
writeReproducerBundle(const std::string &base, const SimJob &job,
                      const JobOutcome &outcome,
                      const std::string &events)
{
    const std::string dir = bundlePathFor(base, job);
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec)
        return "";

    const bool hasAsm = !job.asmText.empty();
    if (hasAsm) {
        std::ofstream src(dir + "/repro.s");
        src << job.asmText;
    }

    const std::string eventsPath = dir + "/events.log";
    // A crash-signal handler may already have dumped the recorder from
    // inside the dying child; keep that copy — it is closer to the fault
    // than anything the parent can reconstruct.
    if (!events.empty() && !fs::exists(eventsPath, ec)) {
        std::ofstream ev(eventsPath);
        ev << events;
    }

    std::ostringstream replay;
    replay << "nwsim run " << (hasAsm ? "repro.s" : job.workload)
           << " --config " << job.configSpec;
    if (!hasAsm) {
        // .s files run to completion; windows only matter for workloads.
        replay << " --warmup " << job.opts.warmupInsts << " --measure "
               << job.opts.measureInsts;
    }
    replay << " --check";

    std::ofstream man(dir + "/MANIFEST.txt");
    if (!man)
        return "";
    man << "# nwsim reproducer bundle\n"
        << "workload:   " << job.workload << "\n"
        << "config:     " << job.configSpec << "\n"
        << "status:     " << outcome.statusText() << "\n"
        << "error-kind: " << failKindName(outcome.errorKind) << "\n"
        << "attempts:   " << outcome.attempts << "\n"
        << "error:      " << outcome.error << "\n"
        << "replay:     " << replay.str() << "\n"
        << "events:     events.log (flight recorder, oldest first)\n";
    if (hasAsm)
        man << "source:     repro.s\n";
    man.flush();
    return man ? dir : "";
}

} // namespace nwsim::exp
