/**
 * @file
 * Process-isolated campaign execution: one forked child per job.
 *
 * The parent stays single-threaded (children provide the parallelism,
 * so fork never races a thread holding the allocator lock) and drives a
 * poll() loop over one pipe per live child. A child runs the normal
 * retry loop, packs its terminal JobOutcome (exp/wire.hh), writes it up
 * the pipe, and _exits with the outcome's taxonomy code. The parent
 * classifies each reaped child:
 *
 *  - valid outcome blob on the pipe  -> use it verbatim,
 *  - died on a signal (WIFSIGNALED)  -> JobStatus::Crashed + termSignal,
 *  - killed by the wall-clock guard  -> JobStatus::Timeout,
 *  - anything else                   -> internal failure.
 *
 * Crashes and timeouts also get a reproducer bundle; a crashing child's
 * signal handler dumps its flight recorder into the bundle on the way
 * down (best effort — the parent's MANIFEST never depends on it).
 */

#ifndef NWSIM_EXP_ISOLATE_HH
#define NWSIM_EXP_ISOLATE_HH

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

#include <sys/types.h>

#include "exp/campaign.hh"

namespace nwsim
{
class FlightRecorder;
}

namespace nwsim::exp
{

/**
 * Execute jobs[i] for every i in @p indices, each in its own forked
 * child, at most @p workers children at a time. Writes outcomes[i] for
 * exactly the given indices and calls @p on_done(i) (in the parent, on
 * its only thread) as each terminal outcome lands — the campaign hangs
 * its progress meter and journal off that hook.
 */
void runJobsIsolated(const std::vector<SimJob> &jobs,
                     const std::vector<size_t> &indices,
                     const CampaignOptions &copts, unsigned workers,
                     std::vector<JobOutcome> &outcomes,
                     const std::function<void(size_t)> &on_done);

/**
 * Fork one isolated child for @p job: the child applies the per-job
 * rlimits (CampaignOptions::rlimitMemMb / rlimitCpuSeconds), arms the
 * crash handlers, runs the standard retry loop, writes its packed
 * JobOutcome up the returned pipe, and _exits with the taxonomy code.
 * Returns {pid, read-end fd}; throws ResourceLimitError if pipe() or
 * fork() itself fails. Shared by the fork executor and the `nwsweep
 * serve` worker daemon (exp/remote.cc); the daemon lists its sockets
 * in @p child_close_fds so an orphaned job child can never hold the
 * driver connection or the listen port open past the worker's death.
 */
std::pair<pid_t, int>
forkIsolatedJob(const SimJob &job, size_t job_index,
                const CampaignOptions &copts,
                const std::vector<int> &child_close_fds = {});

/**
 * Classify a reaped isolated child that did not deliver a valid
 * outcome blob: watchdog timeout, CPU-rlimit kill (SIGXCPU →
 * resource-limit), crash signal, or a silent exit. Writes a reproducer
 * bundle when @p copts.bundleDir is set.
 */
JobOutcome classifyIsolatedExit(const SimJob &job, int wait_status,
                                bool timed_out, double wall_seconds,
                                const CampaignOptions &copts);

/**
 * Register the flight recorder (and the path to dump it to) that a
 * crash signal in this process should spill. Called by the job
 * executor around each attempt; pass nullptrs to disarm. No-op unless
 * this process armed crash handlers (i.e. is an isolated child).
 */
void setCrashDump(const FlightRecorder *recorder,
                  const std::string *events_path);

} // namespace nwsim::exp

#endif // NWSIM_EXP_ISOLATE_HH
