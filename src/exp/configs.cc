#include "exp/configs.hh"

#include "common/logging.hh"
#include "driver/presets.hh"

namespace nwsim::exp
{

const std::vector<NamedConfig> &
baseConfigs()
{
    static const std::vector<NamedConfig> bases = {
        {"baseline", "paper Table 1 machine (4-issue, 4 ALUs)"},
        {"packing", "baseline + strict operation packing (Section 5.2)"},
        {"packing-replay",
         "baseline + speculative replay packing (Section 5.3)"},
        {"issue8", "Figure 11's costly 8-issue/8-ALU comparison machine"},
    };
    return bases;
}

const std::vector<NamedConfig> &
configModifiers()
{
    static const std::vector<NamedConfig> mods = {
        {"decode8", "widen fetch/decode to 8 (Section 5.4)"},
        {"perfect", "perfect branch prediction (oracle fetch)"},
        {"earlyout", "PPC603-style early-out multiplies (Section 2.3)"},
        {"nogate33", "disable the 33-bit gating signal (Figure 6)"},
        {"legacy", "O(window)-scan scheduler (sim-speed A/B; same stats)"},
    };
    return mods;
}

namespace
{

bool
resolveSpec(const std::string &spec, CoreConfig &out)
{
    std::vector<std::string> parts;
    std::string cur;
    for (char c : spec) {
        if (c == '+') {
            parts.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    parts.push_back(cur);

    // Modifiers must be applied after the base is chosen, but `perfect`
    // feeds the preset constructors, so scan for it first.
    bool perfect = false;
    for (size_t i = 1; i < parts.size(); ++i)
        if (parts[i] == "perfect")
            perfect = true;

    const std::string &base = parts[0];
    if (base == "baseline")
        out = presets::baseline(perfect);
    else if (base == "packing")
        out = presets::packing(false, perfect);
    else if (base == "packing-replay")
        out = presets::packing(true, perfect);
    else if (base == "issue8")
        out = presets::issue8(perfect);
    else
        return false;

    for (size_t i = 1; i < parts.size(); ++i) {
        const std::string &mod = parts[i];
        if (mod == "perfect")
            continue;   // already applied
        if (mod == "decode8")
            out = presets::decode8(out);
        else if (mod == "earlyout")
            out.earlyOutMultiply = true;
        else if (mod == "nogate33")
            out.gating.gate33 = false;
        else if (mod == "legacy")
            out.legacyScheduler = true;
        else
            return false;
    }
    return true;
}

} // namespace

CoreConfig
configBySpec(const std::string &spec)
{
    CoreConfig cfg;
    if (!resolveSpec(spec, cfg)) {
        NWSIM_FATAL("unknown config spec \"", spec,
                    "\" (bases: baseline, packing, packing-replay, "
                    "issue8; modifiers: +decode8, +perfect, +earlyout, "
                    "+nogate33, +legacy)");
    }
    return cfg;
}

bool
isValidConfigSpec(const std::string &spec)
{
    CoreConfig cfg;
    return resolveSpec(spec, cfg);
}

} // namespace nwsim::exp
