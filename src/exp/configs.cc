#include "exp/configs.hh"

#include "cfg/loader.hh"

namespace nwsim::exp
{

/*
 * This file is a thin alias layer: the legacy preset+modifier spec
 * grammar and the declarative `.cfg` files (docs/CONFIG.md) both
 * resolve through cfg::resolveMachineSpec, so there is exactly one
 * loader, one modifier table, and one error surface. The NamedConfig
 * lists below are generated from the cfg registries for the CLIs'
 * `--list-configs` output.
 */

const std::vector<NamedConfig> &
baseConfigs()
{
    static const std::vector<NamedConfig> bases = [] {
        std::vector<NamedConfig> out;
        for (const cfg::PresetDef &p : cfg::presetRegistry())
            out.push_back({p.name, p.doc});
        return out;
    }();
    return bases;
}

const std::vector<NamedConfig> &
configModifiers()
{
    static const std::vector<NamedConfig> mods = [] {
        std::vector<NamedConfig> out;
        for (const cfg::ModifierDef &m : cfg::modifierRegistry())
            out.push_back({m.display, m.doc});
        return out;
    }();
    return mods;
}

CoreConfig
configBySpec(const std::string &spec)
{
    return cfg::resolveMachineSpec(spec).config;
}

SampleOptions
sampleBySpec(const std::string &spec)
{
    return cfg::resolveMachineSpec(spec).sample;
}

u64
ckptBySpec(const std::string &spec)
{
    return cfg::resolveMachineSpec(spec).ckptEvery;
}

bool
isValidConfigSpec(const std::string &spec)
{
    return cfg::tryResolveMachineSpec(spec, nullptr, nullptr);
}

} // namespace nwsim::exp
