#include "exp/configs.hh"

#include <cstdlib>

#include "common/logging.hh"
#include "driver/presets.hh"

namespace nwsim::exp
{

const std::vector<NamedConfig> &
baseConfigs()
{
    static const std::vector<NamedConfig> bases = {
        {"baseline", "paper Table 1 machine (4-issue, 4 ALUs)"},
        {"packing", "baseline + strict operation packing (Section 5.2)"},
        {"packing-replay",
         "baseline + speculative replay packing (Section 5.3)"},
        {"issue8", "Figure 11's costly 8-issue/8-ALU comparison machine"},
    };
    return bases;
}

const std::vector<NamedConfig> &
configModifiers()
{
    static const std::vector<NamedConfig> mods = {
        {"decode8", "widen fetch/decode to 8 (Section 5.4)"},
        {"perfect", "perfect branch prediction (oracle fetch)"},
        {"earlyout", "PPC603-style early-out multiplies (Section 2.3)"},
        {"nogate33", "disable the 33-bit gating signal (Figure 6)"},
        {"nodecodecache",
         "bypass the decode caches (sim-speed A/B; same stats; needed "
         "for self-modifying code)"},
        {"notrace",
         "keep the decode cache but disable superblock traces in "
         "fastForward (sim-speed A/B; same stats)"},
        {"sample=P:W:M",
         "SMARTS sampling: detailed W-warmup/M-measure probe every P "
         "insts (+`:rand[:seed]` randomizes the probe offset)"},
        {"ckpt=N",
         "checkpoint machine state every N retired insts "
         "(docs/CHECKPOINT.md); part of the run's semantics — detailed "
         "runs drain the pipeline at every cadence boundary"},
    };
    return mods;
}

namespace
{

/**
 * Parse a `ckpt=N` modifier (checkpoint cadence, retired instructions).
 * Returns false on malformed syntax or a zero cadence — a cadence of
 * zero means "no checkpointing", which is spelled by omitting the
 * modifier, not by `+ckpt=0`.
 */
bool
parseCkptModifier(const std::string &mod, u64 &out)
{
    const std::string body = mod.substr(std::string("ckpt=").size());
    if (body.empty() ||
        body.find_first_not_of("0123456789") != std::string::npos)
        return false;
    const u64 n = std::strtoull(body.c_str(), nullptr, 10);
    if (n == 0)
        return false;
    out = n;
    return true;
}

/**
 * Parse a `sample=period:warmup:measure[:rand[:seed]]` modifier into
 * @p out. Returns false (leaving @p out untouched) on malformed syntax;
 * semantic validation (period >= warmup+measure, measure > 0) happens
 * in sample::validateSampleOptions when the schedule is used.
 */
bool
parseSampleModifier(const std::string &mod, SampleOptions &out)
{
    const std::string body = mod.substr(std::string("sample=").size());
    std::vector<std::string> fields;
    std::string cur;
    for (char c : body) {
        if (c == ':') {
            fields.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    fields.push_back(cur);
    if (fields.size() < 3 || fields.size() > 5)
        return false;

    u64 nums[3];
    for (size_t i = 0; i < 3; ++i) {
        if (fields[i].empty() ||
            fields[i].find_first_not_of("0123456789") != std::string::npos)
            return false;
        nums[i] = std::strtoull(fields[i].c_str(), nullptr, 10);
    }

    SampleOptions s;
    s.enabled = true;
    s.periodInsts = nums[0];
    s.warmupInsts = nums[1];
    s.measureInsts = nums[2];
    if (fields.size() >= 4) {
        if (fields[3] != "rand")
            return false;
        s.randomize = true;
        if (fields.size() == 5) {
            if (fields[4].empty() || fields[4].find_first_not_of(
                                         "0123456789") != std::string::npos)
                return false;
            s.seed = std::strtoull(fields[4].c_str(), nullptr, 10);
        }
    }
    out = s;
    return true;
}

bool
resolveSpec(const std::string &spec, CoreConfig &out)
{
    std::vector<std::string> parts;
    std::string cur;
    for (char c : spec) {
        if (c == '+') {
            parts.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    parts.push_back(cur);

    // Modifiers must be applied after the base is chosen, but `perfect`
    // feeds the preset constructors, so scan for it first.
    bool perfect = false;
    for (size_t i = 1; i < parts.size(); ++i)
        if (parts[i] == "perfect")
            perfect = true;

    const std::string &base = parts[0];
    if (base == "baseline")
        out = presets::baseline(perfect);
    else if (base == "packing")
        out = presets::packing(false, perfect);
    else if (base == "packing-replay")
        out = presets::packing(true, perfect);
    else if (base == "issue8")
        out = presets::issue8(perfect);
    else
        return false;

    for (size_t i = 1; i < parts.size(); ++i) {
        const std::string &mod = parts[i];
        if (mod == "perfect")
            continue;   // already applied
        if (mod == "decode8")
            out = presets::decode8(out);
        else if (mod == "earlyout")
            out.earlyOutMultiply = true;
        else if (mod == "nogate33")
            out.gating.gate33 = false;
        else if (mod == "nodecodecache")
            out.decodeCache = false;
        else if (mod == "notrace")
            out.superblockTraces = false;
        else if (mod.rfind("sample=", 0) == 0) {
            // Run-schedule modifier: validated here, extracted by
            // sampleBySpec; no effect on the CoreConfig itself.
            SampleOptions ignored;
            if (!parseSampleModifier(mod, ignored))
                return false;
        } else if (mod.rfind("ckpt=", 0) == 0) {
            // Run-schedule modifier like +sample=; see ckptBySpec.
            u64 ignored;
            if (!parseCkptModifier(mod, ignored))
                return false;
        } else
            return false;
    }
    return true;
}

} // namespace

CoreConfig
configBySpec(const std::string &spec)
{
    CoreConfig cfg;
    if (!resolveSpec(spec, cfg)) {
        NWSIM_FATAL("unknown config spec \"", spec,
                    "\" (bases: baseline, packing, packing-replay, "
                    "issue8; modifiers: +decode8, +perfect, +earlyout, "
                    "+nogate33, +nodecodecache, +notrace, "
                    "+sample=P:W:M[:rand[:seed]], +ckpt=N)");
    }
    return cfg;
}

SampleOptions
sampleBySpec(const std::string &spec)
{
    SampleOptions s;
    size_t pos = 0;
    while ((pos = spec.find('+', pos)) != std::string::npos) {
        ++pos;
        const size_t end = spec.find('+', pos);
        const std::string mod = spec.substr(
            pos, end == std::string::npos ? std::string::npos : end - pos);
        if (mod.rfind("sample=", 0) == 0 &&
            !parseSampleModifier(mod, s)) {
            NWSIM_FATAL("malformed sample modifier \"+", mod,
                        "\" (want +sample=period:warmup:measure"
                        "[:rand[:seed]])");
        }
    }
    return s;
}

u64
ckptBySpec(const std::string &spec)
{
    u64 every = 0;
    size_t pos = 0;
    while ((pos = spec.find('+', pos)) != std::string::npos) {
        ++pos;
        const size_t end = spec.find('+', pos);
        const std::string mod = spec.substr(
            pos, end == std::string::npos ? std::string::npos : end - pos);
        if (mod.rfind("ckpt=", 0) == 0 && !parseCkptModifier(mod, every))
            NWSIM_FATAL("malformed checkpoint modifier \"+", mod,
                        "\" (want +ckpt=N with N > 0)");
    }
    return every;
}

bool
isValidConfigSpec(const std::string &spec)
{
    CoreConfig cfg;
    return resolveSpec(spec, cfg);
}

} // namespace nwsim::exp
