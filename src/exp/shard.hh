/**
 * @file
 * Sharded sampled campaigns (docs/CHECKPOINT.md "Sharding"): split each
 * sampled job's interval schedule into K contiguous period ranges, run
 * every range as its own SimJob on any executor — threads, forked
 * children, remote workers — and merge the per-shard SampleAggregator
 * blobs back into one whole-run outcome.
 *
 * The merge is exact, not approximate: shards ship their serialized
 * aggregators (JobOutcome::shardAgg), so the driver re-runs the same
 * ratio-of-sums over the same raw interval samples a single-shard run
 * would accumulate. The merged result is bit-identical for every shard
 * count K (tests/test_ckpt.cc compares K against 1 field by field).
 *
 * Each shard job carries its functional start checkpoint inline in
 * SimJob::shard — the assignment is its own restart point, so a killed
 * or reassigned shard simply re-runs with no shared state beyond the
 * job spec itself.
 */

#ifndef NWSIM_EXP_SHARD_HH
#define NWSIM_EXP_SHARD_HH

#include <vector>

#include "exp/campaign.hh"

namespace nwsim::exp
{

/**
 * Expand every sampled job of @p jobs into up to @p shard_count shard
 * jobs (ckpt::planShards fast-forwards the functional stream once per
 * job to capture each range's starting state). Jobs that are not
 * sampled, already sharded, or carry a custom runner pass through
 * unchanged. Schedules with fewer periods than @p shard_count yield
 * fewer shards.
 */
std::vector<SimJob> planShardJobs(const std::vector<SimJob> &jobs,
                                  u64 shard_count);

/**
 * Merge shard outcomes (configSpec carrying the "#shard<a>-<b>" suffix
 * SimJob::outcomeSpec stamps) into one outcome per parent job, in the
 * position of the parent's first shard; non-shard outcomes pass through
 * unchanged, order otherwise preserved. Aggregators merge in period
 * order; a failed shard fails the whole parent with that shard's
 * classification (its error message names the shard range).
 */
std::vector<JobOutcome>
mergeShardOutcomes(std::vector<JobOutcome> outcomes);

} // namespace nwsim::exp

#endif // NWSIM_EXP_SHARD_HH
