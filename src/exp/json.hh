/**
 * @file
 * Minimal streaming JSON writer for campaign result sinks. Emits
 * pretty-printed, valid JSON with no external dependencies: nested
 * objects/arrays tracked on an explicit scope stack, commas and
 * indentation handled automatically, strings escaped per RFC 8259.
 */

#ifndef NWSIM_EXP_JSON_HH
#define NWSIM_EXP_JSON_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace nwsim::exp
{

/**
 * Scope-stack JSON writer.
 *
 *     JsonWriter j(out);
 *     j.beginObject();
 *     j.key("jobs").value(14);
 *     j.key("results").beginArray();
 *     ...
 *     j.endArray();
 *     j.endObject();
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &out) : os(out) {}

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Emit an object key; must be followed by a value or begin*(). */
    JsonWriter &key(const std::string &name);

    JsonWriter &value(const std::string &s);
    JsonWriter &value(const char *s) { return value(std::string(s)); }
    JsonWriter &value(bool b);
    JsonWriter &value(double d);
    JsonWriter &value(std::uint64_t u);
    JsonWriter &value(int i) { return value(std::uint64_t(i)); }
    JsonWriter &value(unsigned u) { return value(std::uint64_t(u)); }

    /** RFC 8259 string escaping (quotes, backslash, control chars). */
    static std::string escape(const std::string &s);

  private:
    void beforeValue();
    void indent();

    struct Scope
    {
        bool isArray = false;
        bool hasItems = false;
    };

    std::ostream &os;
    std::vector<Scope> stack;
    bool pendingKey = false;
};

} // namespace nwsim::exp

#endif // NWSIM_EXP_JSON_HH
