/**
 * @file
 * Crash-safe campaign journal: an append-only record file that lets an
 * interrupted sweep resume without re-running finished jobs.
 *
 * One line per terminal job outcome:
 *
 *     nwj2 <workload> <config-spec> <status> <ckpt> <hex(packJobOutcome)> <fnv>
 *
 * where <ckpt> is the stream position of the job's last durable
 * checkpoint, "-" when it never wrote one (Interrupted outcomes are not
 * journaled at all — they are non-terminal; the checkpoint file is
 * their record and the next resume re-runs the job from it).
 *
 * Each record is buffered into a single line and flushed in one write,
 * and carries an FNV-1a checksum over its payload, so a record is either
 * wholly present and verifiable or rejected — a sweep killed mid-append
 * loses at most the in-flight record, never the file. Loading skips
 * torn/corrupt lines instead of failing, which is exactly the state a
 * crashed campaign leaves behind.
 *
 * `nwsweep --journal FILE` writes one; `--resume` loads it and re-runs
 * only jobs without a terminal record, merging the journaled outcomes
 * back in their grid slots so the final ResultSet is bit-identical to an
 * uninterrupted run (modulo wall-clock fields; docs/ROBUSTNESS.md).
 */

#ifndef NWSIM_EXP_JOURNAL_HH
#define NWSIM_EXP_JOURNAL_HH

#include <fstream>
#include <string>
#include <vector>

#include "exp/result_set.hh"

namespace nwsim::exp
{

/** Append-only writer of terminal job outcomes. */
class CampaignJournal
{
  public:
    /**
     * Open @p path for appending; @p fresh truncates first (a new
     * campaign), otherwise existing records are preserved (a resume).
     * Throws BadInputError if the file cannot be opened.
     */
    CampaignJournal(const std::string &path, bool fresh);

    /** Write one terminal record (single buffered write + flush). */
    void append(const JobOutcome &outcome);

    const std::string &path() const { return filePath; }

    /** Render one record line (without newline); exposed for tests. */
    static std::string formatRecord(const JobOutcome &outcome);

    /**
     * Parse one record line; returns false (and leaves @p out alone) on
     * bad magic, token count, checksum, or payload. Exposed for tests.
     */
    static bool parseRecord(const std::string &line, JobOutcome &out);

    /**
     * Load every valid record of @p path, in file order; torn or
     * corrupt lines are skipped with a warning. A missing file yields
     * an empty vector (resuming a campaign that never started is just
     * a fresh campaign).
     */
    static std::vector<JobOutcome> load(const std::string &path);

  private:
    std::string filePath;
    std::ofstream out;
};

} // namespace nwsim::exp

#endif // NWSIM_EXP_JOURNAL_HH
