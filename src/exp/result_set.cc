#include "exp/result_set.hh"

#include <csignal>
#include <cstring>
#include <ostream>
#include <sstream>

#include "common/logging.hh"
#include "exp/json.hh"
#include "sample/aggregate.hh"

namespace nwsim::exp
{

const char *
jobStatusName(JobStatus status)
{
    switch (status) {
      case JobStatus::Ok:
        return "ok";
      case JobStatus::Failed:
        return "failed";
      case JobStatus::Crashed:
        return "crashed";
      case JobStatus::Timeout:
        return "timeout";
      case JobStatus::Interrupted:
        return "interrupted";
    }
    return "?";
}

const char *
failKindName(FailKind kind)
{
    switch (kind) {
      case FailKind::None:
        return "";
      case FailKind::BadInput:
        return errorKindName(ErrorKind::BadInput);
      case FailKind::ResourceLimit:
        return errorKindName(ErrorKind::ResourceLimit);
      case FailKind::Internal:
        return errorKindName(ErrorKind::Internal);
      case FailKind::Unknown:
        return "unknown";
    }
    return "?";
}

FailKind
failKindOf(ErrorKind kind)
{
    switch (kind) {
      case ErrorKind::BadInput:
        return FailKind::BadInput;
      case ErrorKind::ResourceLimit:
        return FailKind::ResourceLimit;
      case ErrorKind::Internal:
        return FailKind::Internal;
    }
    return FailKind::Unknown;
}

bool
failKindRetryable(FailKind kind)
{
    // Unclassified exceptions are retried (we can't prove they're
    // deterministic); the taxonomy kinds follow errorKindRetryable.
    return kind == FailKind::ResourceLimit || kind == FailKind::Unknown;
}

std::string
JobOutcome::statusText() const
{
    switch (status) {
      case JobStatus::Ok:
        return "ok";
      case JobStatus::Crashed: {
        std::ostringstream os;
        os << "crashed(";
        if (const char *name = sigabbrev_np(termSignal))
            os << "SIG" << name;
        else
            os << "signal " << termSignal;
        os << ")";
        return os.str();
      }
      case JobStatus::Timeout:
        return "timeout";
      case JobStatus::Interrupted: {
        std::string text = "interrupted";
        if (!ckptPath.empty()) {
            text += "(ckpt@" + std::to_string(ckptPosition) + ")";
        }
        return text;
      }
      case JobStatus::Failed:
        return std::string("FAILED[") + failKindName(errorKind) +
               "]: " + error;
    }
    return "?";
}

ResultSet::ResultSet(std::vector<JobOutcome> outcomes,
                     unsigned workers_used)
    : all(std::move(outcomes)), workers(workers_used)
{
}

size_t
ResultSet::failedCount() const
{
    size_t n = 0;
    for (const JobOutcome &o : all)
        n += o.ok ? 0 : 1;
    return n;
}

double
ResultSet::totalJobSeconds() const
{
    double s = 0.0;
    for (const JobOutcome &o : all)
        s += o.wallSeconds;
    return s;
}

const JobOutcome *
ResultSet::find(const std::string &workload,
                const std::string &config_spec) const
{
    for (const JobOutcome &o : all)
        if (o.workload == workload && o.configSpec == config_spec)
            return &o;
    return nullptr;
}

const RunResult &
ResultSet::get(const std::string &workload,
               const std::string &config_spec) const
{
    const JobOutcome *o = find(workload, config_spec);
    if (!o)
        NWSIM_FATAL("no campaign job ", workload, "/", config_spec);
    if (!o->ok)
        NWSIM_FATAL("campaign job ", workload, "/", config_spec,
                    " failed: ", o->error);
    return o->result;
}

Table
ResultSet::toTable() const
{
    Table t({"workload", "config", "ipc", "power red%", "packed insts",
             "replay traps", "wall s", "KIPS", "status"});
    for (const JobOutcome &o : all) {
        if (!o.ok) {
            t.addRow({o.workload, o.configSpec, "-", "-", "-", "-",
                      Table::num(o.wallSeconds, 2), "-",
                      o.statusText()});
            continue;
        }
        const RunResult &r = o.result;
        // Sampled results carry an error bar on the table's headline.
        std::string ipc_cell = Table::num(r.ipc(), 3);
        if (r.sample.sampled) {
            ipc_cell += "±";
            ipc_cell += Table::num(
                r.sample
                    .metrics[static_cast<size_t>(
                        sample::SampleMetric::Ipc)]
                    .ci95,
                3);
        }
        t.addRow({o.workload, o.configSpec, ipc_cell,
                  Table::num(r.gating.reductionPercent(), 1),
                  std::to_string(r.packing.packedInsts),
                  std::to_string(r.packing.replayTraps),
                  Table::num(o.wallSeconds, 2), Table::num(o.kips(), 0),
                  "ok"});
    }
    return t;
}

namespace
{

void
writeStats(JsonWriter &j, const RunResult &r)
{
    j.key("stats").beginObject();
    j.key("warmup_committed").value(r.warmupCommitted);
    j.key("measured_committed").value(r.measuredCommitted);
    j.key("cycles").value(static_cast<u64>(r.core.cycles));
    j.key("committed").value(r.core.committed);
    j.key("ipc").value(r.ipc());
    j.key("fetched").value(r.core.fetched);
    j.key("dispatched").value(r.core.dispatched);
    j.key("issued").value(r.core.issued);
    j.key("squashed").value(r.core.squashed);
    j.key("mispredict_squashes").value(r.core.mispredictSquashes);
    j.key("l1d_miss_rate").value(r.l1dMissRate);
    j.key("l1i_miss_rate").value(r.l1iMissRate);
    j.key("cond_mispredict_rate").value(r.bpred.condMispredictRate());

    j.key("width").beginObject();
    j.key("narrow16_pct").value(r.profiler.narrow16TotalPercent());
    j.key("narrow33_pct").value(r.profiler.narrow33TotalPercent());
    j.key("fluctuation_pct").value(r.profiler.fluctuationPercent());
    j.key("total_ops").value(r.profiler.totalOps());
    j.endObject();

    j.key("power").beginObject();
    j.key("baseline_mw_per_cycle").value(r.baselinePowerPerCycle());
    j.key("optimized_mw_per_cycle").value(r.optimizedPowerPerCycle());
    j.key("net_saved_mw_per_cycle").value(r.netSavedPowerPerCycle());
    j.key("reduction_pct").value(r.gating.reductionPercent());
    j.key("gated16_ops").value(r.gating.gated16);
    j.key("gated33_ops").value(r.gating.gated33);
    j.key("gating_ops").value(r.gating.ops);
    j.endObject();

    j.key("packing").beginObject();
    j.key("packed_groups").value(r.packing.packedGroups);
    j.key("packed_insts").value(r.packing.packedInsts);
    j.key("replay_speculations").value(r.packing.replaySpeculations);
    j.key("replay_traps").value(r.packing.replayTraps);
    j.key("pack_eligible_issued").value(r.packing.packEligibleIssued);
    j.endObject();

    if (r.sample.sampled) {
        j.key("sample").beginObject();
        j.key("intervals").value(r.sample.intervals);
        j.key("stream_insts").value(r.sample.streamInsts);
        for (size_t m = 0; m < SampleSummary::kNumMetrics; ++m) {
            const SampleSummary::Estimate &e = r.sample.metrics[m];
            j.key(sample::sampleMetricName(
                     static_cast<sample::SampleMetric>(m)))
                .beginObject();
            j.key("mean").value(e.mean);
            j.key("cov").value(e.cov);
            j.key("ci95").value(e.ci95);
            j.endObject();
        }
        j.endObject();
    }

    j.endObject();
}

} // namespace

void
ResultSet::writeJson(std::ostream &os, bool include_timing) const
{
    JsonWriter j(os);
    j.beginObject();
    j.key("campaign").beginObject();
    j.key("jobs").value(static_cast<u64>(all.size()));
    j.key("failed").value(static_cast<u64>(failedCount()));
    if (include_timing) {
        j.key("workers").value(workers);
        j.key("total_job_seconds").value(totalJobSeconds());
    }
    j.endObject();

    j.key("results").beginArray();
    for (const JobOutcome &o : all) {
        j.beginObject();
        j.key("workload").value(o.workload);
        j.key("config").value(o.configSpec);
        j.key("ok").value(o.ok);
        j.key("status").value(jobStatusName(o.status));
        j.key("attempts").value(o.attempts);
        if (include_timing) {
            // Perf telemetry rides along with every campaign: per-job
            // host seconds and simulation speed (omitted with the rest
            // of the timing fields so resumed runs stay bit-identical).
            j.key("wall_seconds").value(o.wallSeconds);
            j.key("kips").value(o.kips());
            j.key("sim_cycles_per_second").value(o.cyclesPerSecond());
        }
        if (o.ok) {
            writeStats(j, o.result);
        } else {
            j.key("error").value(o.error);
            if (o.errorKind != FailKind::None)
                j.key("error_kind").value(failKindName(o.errorKind));
            if (o.termSignal)
                j.key("term_signal").value(o.termSignal);
            if (!o.bundlePath.empty())
                j.key("bundle").value(o.bundlePath);
        }
        j.endObject();
    }
    j.endArray();
    j.endObject();
}

void
ResultSet::writeCsv(std::ostream &os) const
{
    os << "workload,config,ok,status,attempts,wall_seconds,kips,"
          "committed,"
          "cycles,ipc,l1d_miss_rate,l1i_miss_rate,cond_mispredict_rate,"
          "narrow16_pct,narrow33_pct,fluctuation_pct,"
          "power_baseline_mw,power_optimized_mw,power_reduction_pct,"
          "packed_groups,packed_insts,replay_traps,"
          "sample_intervals,sample_stream_insts,ipc_ci95\n";
    for (const JobOutcome &o : all) {
        std::ostringstream row;
        row << o.workload << ',' << o.configSpec << ','
            << (o.ok ? 1 : 0) << ',' << jobStatusName(o.status) << ','
            << o.attempts << ',' << o.wallSeconds << ',' << o.kips()
            << ',';
        if (o.ok) {
            const RunResult &r = o.result;
            row << r.core.committed << ',' << r.core.cycles << ','
                << r.ipc() << ',' << r.l1dMissRate << ','
                << r.l1iMissRate << ','
                << r.bpred.condMispredictRate() << ','
                << r.profiler.narrow16TotalPercent() << ','
                << r.profiler.narrow33TotalPercent() << ','
                << r.profiler.fluctuationPercent() << ','
                << r.baselinePowerPerCycle() << ','
                << r.optimizedPowerPerCycle() << ','
                << r.gating.reductionPercent() << ','
                << r.packing.packedGroups << ','
                << r.packing.packedInsts << ','
                << r.packing.replayTraps << ',';
            if (r.sample.sampled) {
                row << r.sample.intervals << ','
                    << r.sample.streamInsts << ','
                    << r.sample
                           .metrics[static_cast<size_t>(
                               sample::SampleMetric::Ipc)]
                           .ci95;
            } else {
                row << ",,";
            }
        } else {
            for (int i = 0; i < 17; ++i)
                row << ',';
        }
        os << row.str() << '\n';
    }
}

} // namespace nwsim::exp
