#include "exp/journal.hh"

#include <sstream>

#include "common/logging.hh"
#include "exp/wire.hh"

namespace nwsim::exp
{

namespace
{

constexpr const char *kMagic = "nwj2";
/** Previous format (no checkpoint token): diagnosed, never parsed. */
constexpr const char *kMagicV1 = "nwj1";

/** Checksum input: every token of the record except the checksum. */
std::string
checksumPayload(const std::string &workload, const std::string &config,
                const std::string &status, const std::string &ckpt,
                const std::string &hex)
{
    return workload + " " + config + " " + status + " " + ckpt + " " +
           hex;
}

/**
 * Human-greppable checkpoint token: the stream position of the job's
 * last durable checkpoint, or "-" when it never wrote one. (The full
 * ckptPath/ckptPosition pair rides in the packed payload; this token
 * exists so `grep timeout journal` shows how far each job got.)
 */
std::string
ckptToken(const JobOutcome &outcome)
{
    return outcome.ckptPath.empty()
               ? std::string("-")
               : std::to_string(outcome.ckptPosition);
}

} // namespace

CampaignJournal::CampaignJournal(const std::string &path, bool fresh)
    : filePath(path),
      out(path, fresh ? (std::ios::out | std::ios::trunc)
                      : (std::ios::out | std::ios::app))
{
    if (!out)
        NWSIM_FATAL("cannot open campaign journal ", path);
}

std::string
CampaignJournal::formatRecord(const JobOutcome &outcome)
{
    const std::string hex = toHex(packJobOutcome(outcome));
    const std::string payload =
        checksumPayload(outcome.workload, outcome.configSpec,
                        jobStatusName(outcome.status), ckptToken(outcome),
                        hex);
    std::ostringstream line;
    line << kMagic << " " << payload << " " << std::hex
         << fnv1a64(payload);
    return line.str();
}

void
CampaignJournal::append(const JobOutcome &outcome)
{
    // One buffered write then a flush: a crash between records leaves a
    // valid file, a crash mid-record leaves one torn line that load()
    // rejects by checksum.
    out << formatRecord(outcome) << "\n";
    out.flush();
}

bool
CampaignJournal::parseRecord(const std::string &line, JobOutcome &result)
{
    std::istringstream in(line);
    std::string magic, workload, config, status, ckpt, hex, crc, extra;
    if (!(in >> magic >> workload >> config >> status >> ckpt >> hex >>
          crc) ||
        (in >> extra) || magic != kMagic) {
        return false;
    }

    const std::string payload =
        checksumPayload(workload, config, status, ckpt, hex);
    std::ostringstream want;
    want << std::hex << fnv1a64(payload);
    if (crc != want.str())
        return false;

    std::string blob;
    JobOutcome o;
    if (!fromHex(hex, blob) || !unpackJobOutcome(blob, o))
        return false;
    // The redundant label tokens exist for grep-ability; they must
    // agree with the packed payload or the record is corrupt.
    if (o.workload != workload || o.configSpec != config ||
        status != jobStatusName(o.status) || ckpt != ckptToken(o)) {
        return false;
    }
    result = std::move(o);
    return true;
}

std::vector<JobOutcome>
CampaignJournal::load(const std::string &path)
{
    std::vector<JobOutcome> records;
    std::ifstream in(path);
    if (!in)
        return records;

    std::string line;
    size_t lineNo = 0, bad = 0;
    while (std::getline(in, line)) {
        ++lineNo;
        if (line.empty())
            continue;
        JobOutcome o;
        if (parseRecord(line, o)) {
            records.push_back(std::move(o));
        } else if (line.rfind(kMagicV1, 0) == 0) {
            ++bad;
            NWSIM_WARN("journal ", path, " line ", lineNo,
                       ": old nwj1-format record skipped (pre-checkpoint "
                       "journal; the job will re-run)");
        } else {
            ++bad;
            NWSIM_WARN("journal ", path, " line ", lineNo,
                       ": torn or corrupt record skipped");
        }
    }
    return records;
}

} // namespace nwsim::exp
