#include "exp/remote.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <ostream>
#include <sstream>

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/error.hh"
#include "common/logging.hh"
#include "exp/isolate.hh"
#include "exp/job_pool.hh"
#include "exp/wire.hh"

namespace nwsim::exp
{

namespace
{

using Clock = std::chrono::steady_clock;

/** Both sides heartbeat at this cadence while a session is open. */
constexpr double kHeartbeatSeconds = 1.0;
/** Deadline for the version handshake after connect/accept. */
constexpr double kHandshakeSeconds = 10.0;
/** Driver silence after which a worker assumes the driver died. */
constexpr double kDriverLossSeconds = 30.0;
/** Connect timeout when (re)dialing a worker. */
constexpr double kConnectSeconds = 5.0;
/** Poll tick: heartbeats, watchdogs and loss checks ride on it. */
constexpr int kPollMs = 200;

double
secondsSince(Clock::time_point t)
{
    return std::chrono::duration<double>(Clock::now() - t).count();
}

/**
 * A dying peer must never kill the process with SIGPIPE — every send
 * error is handled as worker/driver loss instead.
 */
void
armSigpipeIgnore()
{
    ::signal(SIGPIPE, SIG_IGN);
}

// ---- worker graceful shutdown (SIGTERM) ----------------------------------

volatile sig_atomic_t gServeStop = 0;

void
serveStopHandler(int)
{
    gServeStop = 1;
}

/**
 * Arm SIGTERM as the worker's graceful-shutdown request. Deliberately
 * no SA_RESTART: the blocking accept() must return EINTR so an idle
 * daemon notices the request immediately.
 */
void
armServeStopHandler()
{
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = serveStopHandler;
    sigemptyset(&sa.sa_mask);
    ::sigaction(SIGTERM, &sa, nullptr);
}

// ---- socket plumbing -----------------------------------------------------

bool
sendAll(int fd, std::string_view bytes)
{
    const char *p = bytes.data();
    size_t left = bytes.size();
    while (left) {
        const ssize_t n = ::send(fd, p, left, 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        p += static_cast<size_t>(n);
        left -= static_cast<size_t>(n);
    }
    return true;
}

/** Bind+listen; returns the fd and writes the bound port (ephemeral). */
int
tcpListen(const std::string &host, unsigned port, unsigned &bound_port)
{
    struct addrinfo hints;
    std::memset(&hints, 0, sizeof(hints));
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    hints.ai_flags = AI_PASSIVE;
    struct addrinfo *res = nullptr;
    const std::string service = std::to_string(port);
    const int gai = ::getaddrinfo(host.empty() ? nullptr : host.c_str(),
                                  service.c_str(), &hints, &res);
    if (gai != 0) {
        throw ResourceLimitError("cannot resolve listen address " +
                                 host + ": " + gai_strerror(gai));
    }
    int fd = -1;
    std::string err = "no usable address";
    for (struct addrinfo *ai = res; ai; ai = ai->ai_next) {
        fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
        if (fd < 0) {
            err = std::string("socket: ") + std::strerror(errno);
            continue;
        }
        const int one = 1;
        ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
        if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0 &&
            ::listen(fd, 16) == 0) {
            break;
        }
        err = std::string("bind/listen: ") + std::strerror(errno);
        ::close(fd);
        fd = -1;
    }
    ::freeaddrinfo(res);
    if (fd < 0) {
        throw ResourceLimitError("cannot listen on " + host + ":" +
                                 std::to_string(port) + ": " + err);
    }
    struct sockaddr_in sa;
    socklen_t salen = sizeof(sa);
    bound_port = port;
    if (::getsockname(fd, reinterpret_cast<struct sockaddr *>(&sa),
                      &salen) == 0) {
        bound_port = ntohs(sa.sin_port);
    }
    return fd;
}

/** Connect with a deadline; -1 + @p err on failure (worker just down). */
int
tcpConnect(const std::string &host, unsigned port, double timeout_s,
           std::string &err)
{
    struct addrinfo hints;
    std::memset(&hints, 0, sizeof(hints));
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    struct addrinfo *res = nullptr;
    const std::string service = std::to_string(port);
    const int gai =
        ::getaddrinfo(host.c_str(), service.c_str(), &hints, &res);
    if (gai != 0) {
        err = std::string("resolve: ") + gai_strerror(gai);
        return -1;
    }
    int fd = -1;
    err = "no usable address";
    for (struct addrinfo *ai = res; ai; ai = ai->ai_next) {
        fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
        if (fd < 0) {
            err = std::string("socket: ") + std::strerror(errno);
            continue;
        }
        const int flags = ::fcntl(fd, F_GETFL, 0);
        ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
        int rc = ::connect(fd, ai->ai_addr, ai->ai_addrlen);
        if (rc < 0 && errno == EINPROGRESS) {
            struct pollfd pfd = {fd, POLLOUT, 0};
            rc = ::poll(&pfd, 1,
                        static_cast<int>(timeout_s * 1000.0));
            if (rc > 0) {
                int soerr = 0;
                socklen_t len = sizeof(soerr);
                ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &len);
                rc = soerr == 0 ? 0 : -1;
                errno = soerr;
            } else {
                if (rc == 0)
                    errno = ETIMEDOUT;
                rc = -1;
            }
        }
        if (rc == 0) {
            ::fcntl(fd, F_SETFL, flags);
            const int one = 1;
            ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one,
                         sizeof(one));
            break;
        }
        err = std::string("connect: ") + std::strerror(errno);
        ::close(fd);
        fd = -1;
    }
    ::freeaddrinfo(res);
    return fd;
}

// ---- frame-level receive -------------------------------------------------

enum class Recv : u8
{
    Frame,    ///< out holds a decoded frame
    Eof,      ///< peer closed (or socket error)
    TimedOut, ///< deadline passed with no full frame
    Protocol, ///< unrecoverable stream error, message in err
};

/**
 * Block until one full frame, EOF, or the deadline. Used only for the
 * handshake — steady-state traffic goes through the main poll loops.
 */
Recv
recvFrameBlocking(int fd, FrameReader &reader, Frame &out,
                  double timeout_s, std::string &err)
{
    const Clock::time_point deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(timeout_s));
    for (;;) {
        const int have = reader.next(out, &err);
        if (have > 0)
            return Recv::Frame;
        if (have < 0)
            return Recv::Protocol;
        const auto left =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                deadline - Clock::now())
                .count();
        if (left <= 0)
            return Recv::TimedOut;
        struct pollfd pfd = {fd, POLLIN, 0};
        const int rc = ::poll(&pfd, 1, static_cast<int>(left));
        if (rc < 0 && errno != EINTR)
            return Recv::Eof;
        if (rc <= 0)
            continue;
        char chunk[4096];
        const ssize_t n = ::read(fd, chunk, sizeof(chunk));
        if (n > 0)
            reader.feed(chunk, static_cast<size_t>(n));
        else if (n == 0 || errno != EINTR)
            return Recv::Eof;
    }
}

// ---- hello payloads ------------------------------------------------------

/**
 * The driver's Hello carries its job-execution policy so a worker runs
 * jobs exactly as a local fork executor would: same retry budget, same
 * watchdog, same rlimits. Versions go first so a mismatched peer is
 * detected before any policy field is parsed.
 */
std::string
packDriverHello(const CampaignOptions &copts)
{
    WireSink s;
    s.u32v(kProtocolVersion);
    s.u8v(kWireVersion);
    s.u32v(copts.maxAttempts);
    s.f64v(copts.timeoutSeconds);
    s.f64v(copts.backoffBaseSeconds);
    s.u64v(copts.rlimitMemMb);
    s.f64v(copts.rlimitCpuSeconds);
    return s.take();
}

struct PeerVersions
{
    u32 proto = 0;
    u8 wire = 0;

    bool
    matches() const
    {
        return proto == kProtocolVersion && wire == kWireVersion;
    }

    std::string
    text() const
    {
        return "protocol " + std::to_string(proto) + " / wire format " +
               std::to_string(wire);
    }
};

std::string
ownVersionsText()
{
    return PeerVersions{kProtocolVersion, kWireVersion}.text();
}

/** Parse the leading versions; false only on a truncated payload. */
bool
parseVersions(WireSource &src, PeerVersions &v)
{
    return src.u32v(v.proto) && src.u8v(v.wire);
}

bool
parseDriverHello(std::string_view payload, PeerVersions &v,
                 CampaignOptions &policy)
{
    WireSource src(payload);
    if (!parseVersions(src, v))
        return false;
    if (!v.matches())
        return true; // policy fields may not parse; versions suffice
    return src.uns(policy.maxAttempts) &&
           src.f64v(policy.timeoutSeconds) &&
           src.f64v(policy.backoffBaseSeconds) &&
           src.u64v(policy.rlimitMemMb) &&
           src.f64v(policy.rlimitCpuSeconds);
}

std::string
packWorkerHello(unsigned slots)
{
    WireSink s;
    s.u32v(kProtocolVersion);
    s.u8v(kWireVersion);
    s.u32v(slots);
    return s.take();
}

// ---- worker-side session -------------------------------------------------

/** One forked isolated child a worker session is running. */
struct SessionChild
{
    pid_t pid = -1;
    int fd = -1;
    u64 jobIdx = 0;
    SimJob job;
    std::string buf;
    Clock::time_point start;
    Clock::time_point deadline;
    Clock::time_point killAt;
    bool deadlineArmed = false;
    bool timedOut = false;
};

int
reapStatus(pid_t pid)
{
    int status = 0;
    while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
    }
    return status;
}

void
killChildren(std::vector<SessionChild> &kids)
{
    for (SessionChild &c : kids) {
        ::kill(c.pid, SIGKILL);
        reapStatus(c.pid);
        ::close(c.fd);
    }
    kids.clear();
}

void
sessionLog(std::ostream *log, const std::string &line)
{
    if (log)
        *log << "nwsweep worker: " << line << std::endl;
}

/**
 * Serve one driver connection to completion: handshake, then a poll
 * loop interleaving connection traffic with the isolated children's
 * pipes and watchdogs. Returns when the driver says Goodbye, vanishes,
 * or breaks protocol; never throws across the accept loop.
 */
void
runWorkerSession(int cfd, int lfd, unsigned slots,
                 const std::string &ckpt_dir, std::ostream *log)
{
    FrameReader reader;
    Frame frame;
    std::string err;

    const Recv hs =
        recvFrameBlocking(cfd, reader, frame, kHandshakeSeconds, err);
    if (hs != Recv::Frame || frame.type != FrameType::HelloDriver) {
        sessionLog(log, hs == Recv::Protocol
                            ? "rejected connection: " + err
                            : "connection closed before handshake");
        return;
    }

    PeerVersions driver;
    CampaignOptions policy;
    bool parsed = parseDriverHello(frame.payload, driver, policy);
    if (!parsed || !driver.matches()) {
        const std::string msg =
            "version mismatch: worker speaks " + ownVersionsText() +
            ", driver sent " +
            (parsed ? driver.text() : "an unparseable hello") +
            " — rebuild so both sides run the same nwsim version";
        sessionLog(log, msg);
        sendAll(cfd, encodeFrame(FrameType::Error, msg));
        return;
    }
    policy.progress = nullptr;
    policy.bundleDir.clear();
    policy.journal.clear();
    // Checkpoints are worker-local (the driver's paths mean nothing
    // here); the serve-side --ckpt-dir decides where they go.
    policy.ckptDir = ckpt_dir;
    if (!sendAll(cfd, encodeFrame(FrameType::HelloWorker,
                                  packWorkerHello(slots)))) {
        return;
    }
    sessionLog(log, "session open (" + std::to_string(slots) +
                        " job slots)");

    std::deque<std::pair<u64, SimJob>> queue;
    std::vector<SessionChild> kids;
    const auto grace = std::chrono::seconds(2);
    Clock::time_point lastDriver = Clock::now();
    Clock::time_point lastBeat = Clock::now();
    u64 jobsRun = 0;
    bool stopping = false;

    auto spawn = [&](u64 idx, SimJob job) {
        JobOutcome spawnFail;
        try {
            // Job children must not inherit the sockets: an orphaned
            // child would otherwise hold the driver connection (and
            // the listen port) open after this worker dies, delaying
            // the driver's loss detection by a full silence window.
            const std::pair<pid_t, int> child = forkIsolatedJob(
                job, static_cast<size_t>(idx), policy, {cfd, lfd});
            SessionChild c;
            c.pid = child.first;
            c.fd = child.second;
            c.jobIdx = idx;
            c.job = std::move(job);
            c.start = Clock::now();
            if (policy.timeoutSeconds > 0) {
                c.deadline =
                    c.start +
                    std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(
                            policy.timeoutSeconds));
                c.deadlineArmed = true;
            }
            kids.push_back(std::move(c));
            return true;
        } catch (const SimError &e) {
            spawnFail.workload = job.workload;
            spawnFail.configSpec = job.configSpec;
            spawnFail.status = JobStatus::Failed;
            spawnFail.errorKind = FailKind::ResourceLimit;
            spawnFail.attempts = 1;
            spawnFail.error = e.what();
        }
        WireSink s;
        s.u64v(idx);
        s.raw(packJobOutcome(spawnFail));
        return sendAll(cfd, encodeFrame(FrameType::Outcome, s.take()));
    };

    // Child outcome up to the driver: forward the child's own packed
    // blob verbatim when it delivered one (byte-exact), otherwise pack
    // the parent-side classification (crash/timeout/rlimit).
    auto finalize = [&](SessionChild &c) {
        ::close(c.fd);
        const int status = reapStatus(c.pid);
        std::string blob;
        JobOutcome probe;
        if (!c.timedOut && unpackJobOutcome(c.buf, probe)) {
            blob = std::move(c.buf);
        } else {
            blob = packJobOutcome(classifyIsolatedExit(
                c.job, status, c.timedOut, secondsSince(c.start),
                policy));
        }
        ++jobsRun;
        WireSink s;
        s.u64v(c.jobIdx);
        s.raw(blob);
        return sendAll(cfd, encodeFrame(FrameType::Outcome, s.take()));
    };

    for (;;) {
        // Graceful shutdown: stop launching, forward SIGTERM to the
        // in-flight children (each checkpoints at its next safe point
        // and reports Interrupted through its pipe), then keep the
        // loop running so those outcomes still flush to the driver.
        if (gServeStop && !stopping) {
            stopping = true;
            sessionLog(log, "SIGTERM: checkpointing " +
                                std::to_string(kids.size()) +
                                " in-flight job(s), dropping " +
                                std::to_string(queue.size()) +
                                " queued");
            queue.clear(); // never started; the driver reassigns them
            for (SessionChild &c : kids)
                ::kill(c.pid, SIGTERM);
        }
        if (stopping && kids.empty()) {
            sessionLog(log, "shutdown complete (" +
                                std::to_string(jobsRun) +
                                " jobs run); closing session");
            return;
        }

        while (!stopping && kids.size() < slots && !queue.empty()) {
            auto [idx, job] = std::move(queue.front());
            queue.pop_front();
            if (!spawn(idx, std::move(job))) {
                killChildren(kids);
                return; // send failed: driver is gone
            }
        }

        std::vector<pollfd> fds(kids.size() + 1);
        fds[0] = {cfd, POLLIN, 0};
        for (size_t i = 0; i < kids.size(); ++i)
            fds[i + 1] = {kids[i].fd, POLLIN, 0};

        const int rc = ::poll(fds.data(), fds.size(), kPollMs);
        if (rc < 0 && errno != EINTR) {
            killChildren(kids);
            return;
        }

        // Connection traffic first: new jobs, heartbeats, Goodbye.
        if (fds[0].revents & (POLLIN | POLLHUP | POLLERR)) {
            char chunk[65536];
            const ssize_t n = ::read(cfd, chunk, sizeof(chunk));
            if (n > 0) {
                reader.feed(chunk, static_cast<size_t>(n));
                lastDriver = Clock::now();
            } else if (n == 0 || errno != EINTR) {
                sessionLog(log, "driver disconnected; reaping " +
                                    std::to_string(kids.size()) +
                                    " running jobs");
                killChildren(kids);
                return;
            }
            int have = 0;
            while ((have = reader.next(frame, &err)) > 0) {
                switch (frame.type) {
                case FrameType::Job: {
                    WireSource src(frame.payload);
                    u64 idx = 0;
                    SimJob job;
                    WireError werr = WireError::Corrupt;
                    if (src.u64v(idx))
                        werr = unpackSimJobSpec(src.rest(), job);
                    if (werr != WireError::None) {
                        const std::string msg =
                            "job spec rejected (" +
                            std::string(wireErrorName(werr)) +
                            "); worker speaks " + ownVersionsText();
                        sessionLog(log, msg);
                        sendAll(cfd,
                                encodeFrame(FrameType::Error, msg));
                        killChildren(kids);
                        return;
                    }
                    queue.emplace_back(idx, std::move(job));
                    break;
                }
                case FrameType::Goodbye:
                    sessionLog(log,
                               "session done (" +
                                   std::to_string(jobsRun) +
                                   " jobs run)");
                    killChildren(kids); // stragglers driver gave up on
                    return;
                case FrameType::Heartbeat:
                case FrameType::HelloDriver:
                    break;
                default:
                    sessionLog(log, "unexpected frame from driver");
                    break;
                }
            }
            if (have < 0) {
                sessionLog(log, "protocol error: " + err);
                sendAll(cfd, encodeFrame(FrameType::Error, err));
                killChildren(kids);
                return;
            }
        }

        // Children: drain pipes, finalize on EOF, run the kill ladder.
        for (size_t i = kids.size(); i-- > 0;) {
            if (!(fds[i + 1].revents & (POLLIN | POLLHUP | POLLERR)))
                continue;
            char chunk[4096];
            const ssize_t n = ::read(kids[i].fd, chunk, sizeof(chunk));
            if (n > 0) {
                kids[i].buf.append(chunk, static_cast<size_t>(n));
            } else if (n == 0 || errno != EINTR) {
                const bool sent = finalize(kids[i]);
                kids.erase(kids.begin() + static_cast<long>(i));
                if (!sent) {
                    killChildren(kids);
                    return;
                }
            }
        }
        const Clock::time_point now = Clock::now();
        for (SessionChild &c : kids) {
            if (!c.deadlineArmed)
                continue;
            if (!c.timedOut && now >= c.deadline) {
                c.timedOut = true;
                c.killAt = now + grace;
                ::kill(c.pid, SIGABRT);
            } else if (c.timedOut && now >= c.killAt) {
                ::kill(c.pid, SIGKILL);
                c.killAt = now + grace;
            }
        }

        if (secondsSince(lastBeat) >= kHeartbeatSeconds) {
            lastBeat = Clock::now();
            if (!sendAll(cfd,
                         encodeFrame(FrameType::Heartbeat, {}))) {
                killChildren(kids);
                return;
            }
        }
        if (secondsSince(lastDriver) > kDriverLossSeconds) {
            sessionLog(log, "driver silent; abandoning session");
            killChildren(kids);
            return;
        }
    }
}

} // namespace

// ---- frame codec ---------------------------------------------------------

std::string
encodeFrame(FrameType type, std::string_view payload)
{
    NWSIM_ASSERT(payload.size() <= kMaxFramePayload,
                 "frame payload of ", payload.size(), " bytes");
    WireSink s;
    s.magic(kFrameMagic);
    s.u8v(static_cast<u8>(type));
    s.u32v(static_cast<u32>(payload.size()));
    s.raw(payload);
    return s.take();
}

int
FrameReader::next(Frame &out, std::string *err)
{
    constexpr size_t kHeader = 4 + 1 + 4;
    if (buf.size() < kHeader)
        return 0;
    if (std::memcmp(buf.data(), kFrameMagic, 4) != 0) {
        if (err)
            *err = "bad frame magic (peer is not an nwsim campaign "
                   "endpoint, or the stream desynchronized)";
        return -1;
    }
    const u8 type = static_cast<u8>(buf[4]);
    u32 len = 0;
    for (int i = 0; i < 4; ++i)
        len |= static_cast<u32>(static_cast<u8>(buf[5 + i])) << (8 * i);
    if (len > kMaxFramePayload) {
        if (err)
            *err = "oversized frame (" + std::to_string(len) +
                   " bytes; limit " + std::to_string(kMaxFramePayload) +
                   ")";
        return -1;
    }
    if (type < static_cast<u8>(FrameType::HelloDriver) ||
        type > static_cast<u8>(FrameType::Error)) {
        if (err)
            *err = "unknown frame type " + std::to_string(type);
        return -1;
    }
    if (buf.size() < kHeader + len)
        return 0;
    out.type = static_cast<FrameType>(type);
    out.payload = buf.substr(kHeader, len);
    buf.erase(0, kHeader + len);
    return 1;
}

// ---- worker daemon -------------------------------------------------------

void
serveWorker(const ServeOptions &opts)
{
    armSigpipeIgnore();
    armServeStopHandler();
    unsigned port = opts.port;
    int lfd = opts.listenFd;
    if (lfd < 0)
        lfd = tcpListen(opts.bindHost, opts.port, port);
    const unsigned slots = resolveJobCount(opts.jobs);
    if (opts.log) {
        *opts.log << "nwsweep worker: listening on " << opts.bindHost
                  << ":" << port << " (" << slots << " job slots"
                  << (opts.once ? ", single session" : "") << ")"
                  << std::endl;
    }
    while (!gServeStop) {
        const int cfd = ::accept(lfd, nullptr, nullptr);
        if (cfd < 0) {
            // SIGTERM interrupts the blocking accept (no SA_RESTART);
            // the loop condition turns that into a clean exit.
            if (errno == EINTR || errno == ECONNABORTED)
                continue;
            ::close(lfd);
            throw ResourceLimitError(std::string("accept: ") +
                                     std::strerror(errno));
        }
        const int one = 1;
        ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        runWorkerSession(cfd, lfd, slots, opts.ckptDir, opts.log);
        ::close(cfd);
        if (opts.once)
            break;
    }
    if (gServeStop && opts.log) {
        *opts.log << "nwsweep worker: SIGTERM shutdown, exiting"
                  << std::endl;
    }
    ::close(lfd);
}

// ---- loopback fleet ------------------------------------------------------

LocalWorkerFleet::LocalWorkerFleet(unsigned count,
                                   unsigned jobs_per_worker,
                                   const std::string &ckpt_dir)
{
    for (unsigned i = 0; i < count; ++i) {
        unsigned port = 0;
        const int lfd = tcpListen("127.0.0.1", 0, port);
        const pid_t pid = ::fork();
        if (pid == 0) {
            // Worker child: serve one session on the inherited socket
            // and exit. _Exit so the parent image's atexit/static
            // destructors never run twice.
            try {
                ServeOptions so;
                so.listenFd = lfd;
                so.jobs = jobs_per_worker;
                so.once = true;
                so.ckptDir = ckpt_dir;
                serveWorker(so);
            } catch (...) {
            }
            std::_Exit(0);
        }
        ::close(lfd);
        if (pid < 0) {
            const int err = errno;
            for (size_t k = 0; k < pids.size(); ++k)
                kill(k);
            throw ResourceLimitError(
                std::string("fork (worker fleet): ") +
                std::strerror(err));
        }
        pids.push_back(pid);
        hostList.push_back("127.0.0.1:" + std::to_string(port));
    }
}

LocalWorkerFleet::~LocalWorkerFleet()
{
    for (size_t i = 0; i < pids.size(); ++i)
        kill(i);
}

void
LocalWorkerFleet::kill(size_t i)
{
    if (i >= pids.size() || pids[i] < 0)
        return;
    ::kill(pids[i], SIGKILL);
    reapStatus(pids[i]);
    pids[i] = -1;
}

void
LocalWorkerFleet::term(size_t i)
{
    if (i >= pids.size() || pids[i] < 0)
        return;
    ::kill(pids[i], SIGTERM);
}

int
LocalWorkerFleet::waitExit(size_t i)
{
    if (i >= pids.size() || pids[i] < 0)
        return -1;
    const int status = reapStatus(pids[i]);
    pids[i] = -1;
    return status;
}

// ---- driver --------------------------------------------------------------

namespace
{

/** Driver-side view of one worker daemon. */
struct Peer
{
    std::string host;
    unsigned port = 0;
    int fd = -1;
    bool alive = false;
    unsigned reconnectsLeft = 0;
    unsigned slots = 0;
    FrameReader reader;
    std::deque<size_t> queue;     ///< assigned, not yet sent
    std::vector<size_t> inflight; ///< sent, no outcome yet
    Clock::time_point lastSeen;
    Clock::time_point lastBeat;

    std::string
    name() const
    {
        return host + ":" + std::to_string(port);
    }
};

void
parseHostPort(const std::string &spec, Peer &peer)
{
    const size_t colon = spec.rfind(':');
    unsigned long port = 0;
    if (colon != std::string::npos && colon + 1 < spec.size()) {
        char *end = nullptr;
        port = std::strtoul(spec.c_str() + colon + 1, &end, 10);
        if (end && *end != '\0')
            port = 0;
    }
    if (colon == std::string::npos || colon == 0 || port == 0 ||
        port > 65535) {
        NWSIM_FATAL("bad worker address '", spec,
                    "' (expected host:port)");
    }
    peer.host = spec.substr(0, colon);
    peer.port = static_cast<unsigned>(port);
}

/**
 * Dial and handshake one worker. Connection-level failures (refused,
 * timeout, EOF) return false — the worker may just be down, which the
 * loss machinery handles. Version mismatches and protocol errors are
 * NWSIM_FATAL: a misbuilt fleet must stop the sweep loudly, not bleed
 * jobs through reassignment.
 */
bool
connectPeer(Peer &peer, const CampaignOptions &copts)
{
    std::string err;
    const int fd = tcpConnect(peer.host, peer.port, kConnectSeconds,
                              err);
    if (fd < 0)
        return false;
    peer.reader = FrameReader();
    if (!sendAll(fd, encodeFrame(FrameType::HelloDriver,
                                 packDriverHello(copts)))) {
        ::close(fd);
        return false;
    }
    Frame frame;
    const Recv hs = recvFrameBlocking(fd, peer.reader, frame,
                                      kHandshakeSeconds, err);
    if (hs == Recv::Protocol) {
        ::close(fd);
        NWSIM_FATAL("worker ", peer.name(), ": ", err);
    }
    if (hs != Recv::Frame) {
        ::close(fd);
        return false;
    }
    if (frame.type == FrameType::Error) {
        ::close(fd);
        NWSIM_FATAL("worker ", peer.name(), " refused the session: ",
                    frame.payload);
    }
    PeerVersions worker;
    u32 slots = 0;
    WireSource src(frame.payload);
    if (frame.type != FrameType::HelloWorker ||
        !parseVersions(src, worker) ||
        (worker.matches() && !src.u32v(slots))) {
        ::close(fd);
        NWSIM_FATAL("worker ", peer.name(),
                    " answered the handshake with garbage");
    }
    if (!worker.matches()) {
        ::close(fd);
        NWSIM_FATAL("worker ", peer.name(),
                    " version mismatch: driver speaks ",
                    ownVersionsText(), ", worker answered ",
                    worker.text(),
                    " — rebuild so both sides run the same nwsim "
                    "version");
    }
    peer.fd = fd;
    peer.slots = slots;
    peer.alive = true;
    peer.lastSeen = peer.lastBeat = Clock::now();
    return true;
}

} // namespace

unsigned
RemoteExecutor::lanes(const CampaignOptions &copts, size_t njobs) const
{
    const size_t cap = copts.workerHosts.size() *
                       std::max<size_t>(1, copts.remoteWindow);
    return std::max<unsigned>(
        1, static_cast<unsigned>(
               std::min(cap, std::max<size_t>(1, njobs))));
}

void
RemoteExecutor::execute(const std::vector<SimJob> &jobs,
                        const std::vector<size_t> &indices,
                        const CampaignOptions &copts,
                        std::vector<JobOutcome> &outcomes,
                        const std::function<void(size_t)> &on_done)
{
    // A fully-journaled resume has nothing left to run; don't demand a
    // live fleet just to do nothing.
    if (indices.empty())
        return;

    armSigpipeIgnore();
    for (const size_t i : indices) {
        if (jobs[i].runner) {
            NWSIM_FATAL("job ", jobs[i].label(),
                        " has a custom in-process runner; such jobs "
                        "cannot be serialized to remote workers — run "
                        "this campaign with the thread or fork "
                        "executor");
        }
    }

    std::vector<Peer> peers(copts.workerHosts.size());
    for (size_t i = 0; i < peers.size(); ++i) {
        parseHostPort(copts.workerHosts[i], peers[i]);
        peers[i].reconnectsLeft = copts.reconnectAttempts;
        if (!connectPeer(peers[i], copts)) {
            NWSIM_WARN("worker ", peers[i].name(),
                       " unreachable at campaign start");
        }
    }
    std::vector<size_t> aliveIdx;
    for (size_t i = 0; i < peers.size(); ++i)
        if (peers[i].alive)
            aliveIdx.push_back(i);
    if (aliveIdx.empty()) {
        throw ResourceLimitError(
            "no remote workers reachable (" +
            std::to_string(peers.size()) + " configured)");
    }

    // Deterministic initial assignment: the k-th job goes to the k-th
    // reachable worker, round-robin in --workers order. Determinism of
    // the *stats* never depends on this — every job is bit-identical
    // wherever it runs — but a stable assignment makes sweeps easy to
    // reason about and reproduce.
    for (size_t k = 0; k < indices.size(); ++k)
        peers[aliveIdx[k % aliveIdx.size()]].queue.push_back(
            indices[k]);

    std::vector<char> done(outcomes.size(), 0);
    size_t remaining = indices.size();
    const unsigned window = std::max<unsigned>(1, copts.remoteWindow);

    // Forward declaration dance: losePeer and redistribute recurse
    // through sendWindow failures.
    std::function<void(Peer &)> losePeer;

    auto anyAlive = [&]() {
        for (const Peer &p : peers)
            if (p.alive)
                return true;
        return false;
    };

    auto sendWindow = [&](Peer &p) {
        while (p.alive && p.inflight.size() < window &&
               !p.queue.empty()) {
            const size_t idx = p.queue.front();
            if (done[idx]) {
                p.queue.pop_front();
                continue;
            }
            WireSink s;
            s.u64v(static_cast<u64>(idx));
            s.raw(packSimJobSpec(jobs[idx]));
            if (!sendAll(p.fd,
                         encodeFrame(FrameType::Job, s.take()))) {
                losePeer(p);
                return;
            }
            p.queue.pop_front();
            p.inflight.push_back(idx);
        }
    };

    losePeer = [&](Peer &p) {
        if (p.alive) {
            ::close(p.fd);
            p.fd = -1;
            p.alive = false;
        }
        // Anything sent but unanswered must run again; the worker may
        // have died mid-job. Outcomes are idempotent (bit-identical
        // stats), so a duplicate from a slow-but-alive worker is
        // harmlessly dropped via done[].
        for (const size_t idx : p.inflight)
            if (!done[idx])
                p.queue.push_front(idx);
        p.inflight.clear();

        while (p.reconnectsLeft > 0) {
            --p.reconnectsLeft;
            NWSIM_WARN("worker ", p.name(), " lost; reconnecting (",
                       p.reconnectsLeft, " attempts left)");
            if (connectPeer(p, copts))
                return;
        }
        if (p.queue.empty())
            return;
        NWSIM_WARN("worker ", p.name(), " retired; reassigning ",
                   p.queue.size(), " jobs");
        std::vector<Peer *> survivors;
        for (Peer &q : peers)
            if (q.alive)
                survivors.push_back(&q);
        if (survivors.empty()) {
            throw ResourceLimitError(
                "all remote workers lost with " +
                std::to_string(remaining) +
                " jobs incomplete (completed outcomes are in the "
                "journal; rerun with --resume)");
        }
        size_t rr = 0;
        while (!p.queue.empty()) {
            survivors[rr % survivors.size()]->queue.push_back(
                p.queue.front());
            p.queue.pop_front();
            ++rr;
        }
    };

    auto handleFrame = [&](Peer &p, const Frame &frame) {
        switch (frame.type) {
        case FrameType::Outcome: {
            WireSource src(frame.payload);
            u64 idx = 0;
            JobOutcome out;
            WireError werr = WireError::Corrupt;
            if (src.u64v(idx) && idx < outcomes.size())
                werr = unpackJobOutcomeErr(src.rest(), out);
            if (werr != WireError::None) {
                NWSIM_FATAL("worker ", p.name(),
                            " sent an undecodable outcome (",
                            wireErrorName(werr),
                            "); driver speaks ", ownVersionsText());
            }
            auto &fl = p.inflight;
            fl.erase(std::remove(fl.begin(), fl.end(),
                                 static_cast<size_t>(idx)),
                     fl.end());
            if (done[idx])
                break;
            if (out.status == JobStatus::Interrupted) {
                // Non-terminal: the worker checkpointed the job mid-run
                // (graceful shutdown) — re-enqueue it. Back on a worker
                // that sees the same checkpoint directory it resumes
                // mid-simulation; elsewhere it restarts from zero. The
                // dying worker's send window drains via losePeer.
                NWSIM_WARN("worker ", p.name(), " interrupted job ",
                           out.label(), " at position ",
                           out.ckptPosition, "; re-enqueueing");
                p.queue.push_back(static_cast<size_t>(idx));
                break;
            }
            done[idx] = 1;
            --remaining;
            outcomes[idx] = std::move(out);
            if (on_done)
                on_done(static_cast<size_t>(idx));
            break;
        }
        case FrameType::Error:
            NWSIM_FATAL("worker ", p.name(), ": ", frame.payload);
        case FrameType::Heartbeat:
        case FrameType::HelloWorker:
        case FrameType::Goodbye:
            break;
        default:
            break;
        }
    };

    Frame frame;
    std::string err;
    while (remaining > 0) {
        for (Peer &p : peers)
            sendWindow(p);
        if (!anyAlive()) {
            throw ResourceLimitError(
                "all remote workers lost with " +
                std::to_string(remaining) +
                " jobs incomplete (completed outcomes are in the "
                "journal; rerun with --resume)");
        }

        std::vector<pollfd> fds;
        std::vector<size_t> fdPeer;
        for (size_t i = 0; i < peers.size(); ++i) {
            if (!peers[i].alive)
                continue;
            fds.push_back({peers[i].fd, POLLIN, 0});
            fdPeer.push_back(i);
        }
        const int rc = ::poll(fds.data(), fds.size(), kPollMs);
        if (rc < 0 && errno != EINTR) {
            NWSIM_PANIC("poll failed in remote campaign: ",
                        std::strerror(errno));
        }

        for (size_t f = 0; f < fds.size(); ++f) {
            Peer &p = peers[fdPeer[f]];
            if (!p.alive ||
                !(fds[f].revents & (POLLIN | POLLHUP | POLLERR)))
                continue;
            char chunk[65536];
            const ssize_t n = ::read(p.fd, chunk, sizeof(chunk));
            if (n > 0) {
                p.reader.feed(chunk, static_cast<size_t>(n));
                p.lastSeen = Clock::now();
                int have = 0;
                while (p.alive &&
                       (have = p.reader.next(frame, &err)) > 0)
                    handleFrame(p, frame);
                if (have < 0)
                    NWSIM_FATAL("worker ", p.name(), ": ", err);
            } else if (n == 0 || errno != EINTR) {
                losePeer(p);
            }
        }

        const Clock::time_point now = Clock::now();
        for (Peer &p : peers) {
            if (!p.alive)
                continue;
            if (copts.workerLossSeconds > 0 &&
                secondsSince(p.lastSeen) > copts.workerLossSeconds) {
                NWSIM_WARN("worker ", p.name(), " silent for ",
                           copts.workerLossSeconds, "s");
                losePeer(p);
            } else if (std::chrono::duration<double>(now - p.lastBeat)
                           .count() >= kHeartbeatSeconds) {
                p.lastBeat = now;
                if (!sendAll(p.fd,
                             encodeFrame(FrameType::Heartbeat, {})))
                    losePeer(p);
            }
        }
    }

    for (Peer &p : peers) {
        if (!p.alive)
            continue;
        sendAll(p.fd, encodeFrame(FrameType::Goodbye, {}));
        ::close(p.fd);
        p.alive = false;
    }
}

} // namespace nwsim::exp
