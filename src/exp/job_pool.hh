/**
 * @file
 * Fixed-size worker pool executing an indexed batch of independent jobs.
 *
 * The queue is a single atomic cursor over the job vector: each worker
 * claims the next unclaimed index and runs it. Because every job writes
 * only its own slot of the caller's result vector, the merged output is
 * bit-identical for any worker count — determinism comes from indexing,
 * not from scheduling.
 */

#ifndef NWSIM_EXP_JOB_POOL_HH
#define NWSIM_EXP_JOB_POOL_HH

#include <functional>
#include <vector>

namespace nwsim::exp
{

/**
 * Resolve a worker count: @p requested if nonzero, else the NWSIM_JOBS
 * environment variable, else std::thread::hardware_concurrency(),
 * clamped to [1, number of jobs] by JobPool::run.
 */
unsigned resolveJobCount(unsigned requested);

/** Indexed fan-out over std::thread workers. */
class JobPool
{
  public:
    /** @p workers 0 resolves via resolveJobCount(0). */
    explicit JobPool(unsigned workers = 0);

    unsigned workers() const { return workerCount; }

    /**
     * Run every task; tasks[i] is invoked exactly once, on some worker.
     * Tasks must not touch shared mutable state except through their own
     * index.
     *
     * Exception safety: a throwing task does not abort the process or
     * leave threads dangling. The pool keeps draining remaining tasks,
     * joins every worker, and then rethrows the first captured exception
     * on the caller's thread (tasks claimed after the throw still run;
     * their on_done is still delivered). Campaign-level code still wraps
     * job bodies so one bad job never throws here — this guarantee is
     * the backstop for bugs in that wrapping, not a substitute for it.
     *
     * @p on_done, if set, is called after each task finishes with the
     * task's index, serialized under an internal mutex (safe to print).
     * An exception from on_done itself is captured the same way.
     */
    void run(const std::vector<std::function<void()>> &tasks,
             const std::function<void(size_t)> &on_done = {}) const;

  private:
    unsigned workerCount;
};

} // namespace nwsim::exp

#endif // NWSIM_EXP_JOB_POOL_HH
