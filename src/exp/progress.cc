#include "exp/progress.hh"

#include <cstdio>
#include <string>

namespace nwsim::exp
{

ProgressMeter::ProgressMeter(size_t total_jobs, unsigned worker_count,
                             std::ostream *stream)
    : total(total_jobs), workers(worker_count ? worker_count : 1),
      out(stream), start(Clock::now())
{
}

void
ProgressMeter::jobDone(const std::string &label, bool ok)
{
    std::lock_guard<std::mutex> lock(mutex);
    ++done;
    if (!ok)
        ++failed;
    if (!out)
        return;

    const double elapsed =
        std::chrono::duration<double>(Clock::now() - start).count();
    const double per_job = done ? elapsed / static_cast<double>(done) : 0;
    const double eta = per_job *
                       static_cast<double>(total - done) /
                       static_cast<double>(workers);
    const int pct =
        total ? static_cast<int>(100 * done / total) : 100;

    char line[160];
    std::snprintf(line, sizeof(line),
                  "\r[%zu/%zu] %3d%% elapsed %.1fs eta %.1fs  %-28.28s",
                  done, total, pct, elapsed, eta,
                  (label + (ok ? "" : " FAILED")).c_str());
    *out << line << std::flush;
}

void
ProgressMeter::finish()
{
    std::lock_guard<std::mutex> lock(mutex);
    if (!out)
        return;
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - start).count();
    char line[120];
    std::snprintf(line, sizeof(line),
                  "\r%zu job%s in %.1fs (%zu failed)%-40s\n", done,
                  done == 1 ? "" : "s", elapsed, failed, "");
    *out << line << std::flush;
}

} // namespace nwsim::exp
