#include "exp/shard.hh"

#include <algorithm>
#include <cstdlib>
#include <map>

#include "asm/textasm.hh"
#include "ckpt/run.hh"
#include "common/error.hh"
#include "sample/aggregate.hh"
#include "workloads/kernels.hh"

namespace nwsim::exp
{

namespace
{

Program
shardProgram(const SimJob &job)
{
    return job.asmText.empty() ? workloadByName(job.workload).program()
                               : assembleText(job.asmText);
}

/** Parent spec of a shard label ("cfg#shard0-3" → "cfg", start → 0). */
std::string
parentSpec(const std::string &spec, u64 *start_period)
{
    const size_t pos = spec.find("#shard");
    if (pos == std::string::npos)
        return spec;
    if (start_period) {
        *start_period =
            std::strtoull(spec.c_str() + pos + 6, nullptr, 10);
    }
    return spec.substr(0, pos);
}

/** Merge one parent's shard outcomes (any order) into its outcome. */
JobOutcome
mergeGroup(std::vector<JobOutcome> shards)
{
    const auto startOf = [](const JobOutcome &o) {
        u64 start = 0;
        parentSpec(o.configSpec, &start);
        return start;
    };
    std::sort(shards.begin(), shards.end(),
              [&](const JobOutcome &a, const JobOutcome &b) {
                  return startOf(a) < startOf(b);
              });

    JobOutcome merged;
    merged.workload = shards.front().workload;
    merged.configSpec = parentSpec(shards.front().configSpec, nullptr);
    for (const JobOutcome &s : shards) {
        merged.wallSeconds += s.wallSeconds;
        merged.attempts = std::max(merged.attempts, s.attempts);
    }

    // A failed shard leaves a hole in the interval stream, so the
    // parent cannot produce valid whole-run statistics: propagate the
    // first failure (in period order) with the shard range named.
    for (const JobOutcome &s : shards) {
        if (s.ok)
            continue;
        merged.ok = false;
        merged.status = s.status;
        merged.errorKind = s.errorKind;
        merged.termSignal = s.termSignal;
        merged.bundlePath = s.bundlePath;
        merged.error = s.configSpec.substr(
                           parentSpec(s.configSpec, nullptr).size()) +
                       ": " + s.error;
        return merged;
    }

    sample::SampleAggregator agg;
    u64 streamInsts = 0;
    for (const JobOutcome &s : shards) {
        streamInsts = std::max(streamInsts, s.result.sample.streamInsts);
        ckpt::ByteSource src(s.shardAgg);
        sample::SampleAggregator part;
        if (!part.loadState(src) || !src.exhausted()) {
            NWSIM_FATAL("shard outcome ", s.label(),
                        " carries a corrupt aggregator blob (",
                        s.shardAgg.size(), " bytes) — cannot merge");
        }
        agg.merge(part);
    }
    if (agg.intervals() == 0) {
        NWSIM_FATAL("sharded run of ", merged.label(),
                    " measured no intervals across ", shards.size(),
                    " shard(s)");
    }

    RunResult r = agg.aggregate();
    r.workload = merged.workload;
    r.configName = merged.configSpec;
    r.sample.sampled = true;
    r.sample.intervals = agg.intervals();
    r.sample.streamInsts = streamInsts;
    for (size_t m = 0; m < SampleSummary::kNumMetrics; ++m) {
        const sample::MetricEstimate est =
            agg.estimate(static_cast<sample::SampleMetric>(m));
        SampleSummary::Estimate &out = r.sample.metrics[m];
        out.mean = est.mean;
        out.cov = est.cov();
        out.ci95 = est.ciHalfWidth95();
    }
    merged.result = std::move(r);
    merged.ok = true;
    merged.status = JobStatus::Ok;
    merged.errorKind = FailKind::None;
    return merged;
}

} // namespace

std::vector<SimJob>
planShardJobs(const std::vector<SimJob> &jobs, u64 shard_count)
{
    NWSIM_ASSERT(shard_count > 0, "shard count must be positive");
    std::vector<SimJob> out;
    out.reserve(jobs.size());
    for (const SimJob &job : jobs) {
        if (!job.opts.sample.enabled || job.shard.enabled ||
            job.runner) {
            out.push_back(job);
            continue;
        }
        const ckpt::ShardPlan plan = ckpt::planShards(
            shardProgram(job), job.config, job.opts, shard_count);
        for (const ckpt::ShardAssignment &a : plan.shards) {
            SimJob s = job;
            s.shard.enabled = true;
            s.shard.startPeriod = a.startPeriod;
            s.shard.endPeriod = a.endPeriod;
            s.shard.ckptBlob = a.ckptBlob;
            out.push_back(std::move(s));
        }
    }
    return out;
}

std::vector<JobOutcome>
mergeShardOutcomes(std::vector<JobOutcome> outcomes)
{
    std::vector<JobOutcome> out;
    out.reserve(outcomes.size());
    // Parent label → slot in `out` where its merged outcome lands (the
    // position of its first shard, preserving grid order).
    std::map<std::string, size_t> slotOf;
    std::map<std::string, std::vector<JobOutcome>> groups;
    for (JobOutcome &o : outcomes) {
        if (o.configSpec.find("#shard") == std::string::npos) {
            out.push_back(std::move(o));
            continue;
        }
        const std::string parent =
            o.workload + "/" + parentSpec(o.configSpec, nullptr);
        if (slotOf.find(parent) == slotOf.end()) {
            slotOf.emplace(parent, out.size());
            out.emplace_back(); // placeholder, filled after grouping
        }
        groups[parent].push_back(std::move(o));
    }
    for (auto &[parent, shards] : groups)
        out[slotOf[parent]] = mergeGroup(std::move(shards));
    return out;
}

} // namespace nwsim::exp
