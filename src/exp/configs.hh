/**
 * @file
 * Named core-configuration registry for experiment campaigns.
 *
 * A config spec is a base preset name optionally followed by `+modifier`
 * suffixes, so one comma-separated `--configs` list can express the whole
 * grid the paper sweeps:
 *
 *     baseline                    Table 1 machine
 *     packing                     + strict operation packing (§5.2)
 *     packing-replay              + replay packing (§5.3)
 *     issue8                      Figure 11's 8-issue/8-ALU machine
 *     packing-replay+decode8      §5.4 8-wide decode variant
 *     packing+perfect             perfect branch prediction
 *     baseline+earlyout           PPC603-style early-out multiplies
 *     baseline+nodecodecache      bypass the decode caches (sim-speed
 *                                 A/B baseline; stats are identical)
 *     packing+sample=200000:2000:8000
 *                                 SMARTS-style sampled run: one
 *                                 2k-warmup/8k-measure detailed probe
 *                                 per 200k-instruction period
 *                                 (docs/SAMPLING.md); optional
 *                                 `:rand[:seed]` tail randomizes the
 *                                 probe offset within each period
 */

#ifndef NWSIM_EXP_CONFIGS_HH
#define NWSIM_EXP_CONFIGS_HH

#include <string>
#include <vector>

#include "driver/runner.hh"
#include "pipeline/config.hh"

namespace nwsim::exp
{

/** One registered base preset. */
struct NamedConfig
{
    std::string name;
    std::string description;
};

/** The four base presets, in canonical sweep order. */
const std::vector<NamedConfig> &baseConfigs();

/** The supported `+modifier` suffixes. */
const std::vector<NamedConfig> &configModifiers();

/**
 * Resolve a config spec ("packing-replay+decode8+perfect") to a
 * CoreConfig. Fatal on an unknown base or modifier.
 */
CoreConfig configBySpec(const std::string &spec);

/** True if @p spec resolves (for argument validation without exiting). */
bool isValidConfigSpec(const std::string &spec);

/**
 * Extract the sampled-simulation schedule from a spec's `+sample=`
 * modifier (`period:warmup:measure[:rand[:seed]]`). Returns a
 * disabled SampleOptions when the spec has no sample modifier.
 * Sampling is a run-schedule property, not a core property, which is
 * why it resolves separately from configBySpec.
 */
SampleOptions sampleBySpec(const std::string &spec);

/**
 * Extract the checkpoint cadence from a spec's `+ckpt=N` modifier
 * (retired instructions between snapshots; 0 when absent). Like
 * sampling, checkpointing is a run-schedule property — and part of the
 * run's semantics: a detailed `+ckpt=N` run drains the pipeline at
 * every cadence boundary whether or not a checkpoint directory is
 * configured, so its statistics never depend on where (or whether)
 * snapshots land on disk (docs/CHECKPOINT.md).
 */
u64 ckptBySpec(const std::string &spec);

} // namespace nwsim::exp

#endif // NWSIM_EXP_CONFIGS_HH
