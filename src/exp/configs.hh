/**
 * @file
 * Named core-configuration registry for experiment campaigns.
 *
 * A config spec is a base preset name optionally followed by `+modifier`
 * suffixes, so one comma-separated `--configs` list can express the whole
 * grid the paper sweeps:
 *
 *     baseline                    Table 1 machine
 *     packing                     + strict operation packing (§5.2)
 *     packing-replay              + replay packing (§5.3)
 *     issue8                      Figure 11's 8-issue/8-ALU machine
 *     packing-replay+decode8      §5.4 8-wide decode variant
 *     packing+perfect             perfect branch prediction
 *     baseline+earlyout           PPC603-style early-out multiplies
 *     baseline+legacy             O(window)-scan scheduler (sim-speed
 *                                 A/B baseline; stats are identical)
 */

#ifndef NWSIM_EXP_CONFIGS_HH
#define NWSIM_EXP_CONFIGS_HH

#include <string>
#include <vector>

#include "pipeline/config.hh"

namespace nwsim::exp
{

/** One registered base preset. */
struct NamedConfig
{
    std::string name;
    std::string description;
};

/** The four base presets, in canonical sweep order. */
const std::vector<NamedConfig> &baseConfigs();

/** The supported `+modifier` suffixes. */
const std::vector<NamedConfig> &configModifiers();

/**
 * Resolve a config spec ("packing-replay+decode8+perfect") to a
 * CoreConfig. Fatal on an unknown base or modifier.
 */
CoreConfig configBySpec(const std::string &spec);

/** True if @p spec resolves (for argument validation without exiting). */
bool isValidConfigSpec(const std::string &spec);

} // namespace nwsim::exp

#endif // NWSIM_EXP_CONFIGS_HH
