/**
 * @file
 * Experiment campaigns: the paper's evaluation is a grid of independent
 * simulations (workload × configuration), and a Campaign runs that grid
 * across a JobPool in one invocation.
 *
 * Determinism guarantee: each job owns its whole simulator (SparseMemory,
 * OutOfOrderCore, Program image) and writes only its own slot of the
 * outcome vector, so the ResultSet's per-job statistics are bit-identical
 * for any worker count — only wall-clock fields vary between runs.
 *
 * Fault isolation: a job that throws is retried (maxAttempts) and then
 * recorded as failed with its exception message; sibling jobs and the
 * campaign itself keep running.
 */

#ifndef NWSIM_EXP_CAMPAIGN_HH
#define NWSIM_EXP_CAMPAIGN_HH

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "driver/runner.hh"
#include "exp/result_set.hh"
#include "pipeline/config.hh"

namespace nwsim::exp
{

/** One simulation: a workload on a configuration over a window. */
struct SimJob
{
    /** Workload name (registry) — label only if @p runner is set. */
    std::string workload;
    /** Config spec label (see configs.hh). */
    std::string configSpec;
    CoreConfig config;
    RunOptions opts;
    /**
     * Override the standard build-program-and-runProgram path (used by
     * tests and custom experiments). Must be thread-safe.
     */
    std::function<RunResult(const SimJob &)> runner;

    std::string label() const { return workload + "/" + configSpec; }
};

/** Campaign execution knobs. */
struct CampaignOptions
{
    /** Worker threads; 0 = NWSIM_JOBS env or hardware_concurrency. */
    unsigned jobs = 0;
    /** Attempts per job before recording it as failed. */
    unsigned maxAttempts = 2;
    /** Stream for the progress/ETA line (nullptr = silent). */
    std::ostream *progress = nullptr;
};

/** A named batch of SimJobs executed as one parallel fan-out. */
class Campaign
{
  public:
    Campaign() = default;

    /** Append one job. */
    Campaign &add(SimJob job);

    /**
     * Cross product: every named workload × every config spec, all with
     * the same run options. Workload and config names are validated
     * eagerly (fatal on unknown), so errors surface before any thread
     * starts.
     */
    static Campaign grid(const std::vector<std::string> &workloads,
                         const std::vector<std::string> &config_specs,
                         const RunOptions &opts);

    const std::vector<SimJob> &jobs() const { return jobList; }

    /** Execute all jobs; outcomes are ordered by job index. */
    ResultSet run(const CampaignOptions &copts = {}) const;

  private:
    std::vector<SimJob> jobList;
};

} // namespace nwsim::exp

#endif // NWSIM_EXP_CAMPAIGN_HH
