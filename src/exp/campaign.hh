/**
 * @file
 * Experiment campaigns: the paper's evaluation is a grid of independent
 * simulations (workload × configuration), and a Campaign runs that grid
 * across a JobPool in one invocation.
 *
 * Determinism guarantee: each job owns its whole simulator (SparseMemory,
 * OutOfOrderCore, Program image) and writes only its own slot of the
 * outcome vector, so the ResultSet's per-job statistics are bit-identical
 * for any worker count — only wall-clock fields vary between runs.
 *
 * Fault tolerance (docs/ROBUSTNESS.md): a job that throws is classified
 * by the SimError taxonomy, retried with exponential backoff only when
 * retrying can help, and recorded as failed while sibling jobs keep
 * running. With CampaignOptions::isolate each job runs in a forked child
 * process, so crashes (fatal signals) and hangs (wall-clock watchdog)
 * are recorded as `crashed(SIG...)` / `timeout` outcomes instead of
 * killing the sweep, each with a reproducer bundle carrying the flight
 * recorder's last pipeline events. A journal (CampaignOptions::journal)
 * makes the whole campaign resumable after a crash of the driver itself.
 */

#ifndef NWSIM_EXP_CAMPAIGN_HH
#define NWSIM_EXP_CAMPAIGN_HH

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "cfg/loader.hh"
#include "driver/runner.hh"
#include "exp/result_set.hh"
#include "pipeline/config.hh"

namespace nwsim::exp
{

/**
 * Assignment of one shard of a sampled run (exp/shard.hh): the shard
 * planner fast-forwards the functional stream once, snapshots it at K
 * period boundaries, and fans one SimJob per shard carrying its start
 * state. Shard outcomes merge back through SampleAggregator::merge,
 * bit-identical to the unsharded schedule.
 */
struct ShardSpec
{
    bool enabled = false;
    /** First sample period this shard measures (inclusive). */
    u64 startPeriod = 0;
    /** One past the last period this shard measures. */
    u64 endPeriod = 0;
    /**
     * Functional checkpoint (ckpt/checkpoint.hh, CkptKind::Functional)
     * positioning the stream at startPeriod's boundary.
     */
    std::string ckptBlob;
};

/** One simulation: a workload on a configuration over a window. */
struct SimJob
{
    /** Workload name (registry) — label only if @p runner is set. */
    std::string workload;
    /** Config spec label (see configs.hh). */
    std::string configSpec;
    CoreConfig config;
    RunOptions opts;
    /**
     * Assembly source to run instead of the registry workload (the
     * fuzzer's custom grids use this). When set, the reproducer bundle
     * of a faulting job includes it as a replayable repro.s.
     */
    std::string asmText;
    /**
     * Canonical `.cfg` dump of the resolved machine when configSpec
     * named a config file (cfg/loader.hh). Rides wire v7 so remote
     * workers need no driver-side files, and lands in reproducer
     * bundles as machine.cfg.
     */
    std::string configText;
    /**
     * Override the standard build-program-and-runProgram path (used by
     * tests and custom experiments). Must be thread-safe.
     */
    std::function<RunResult(const SimJob &)> runner;
    /** Shard assignment when this job is one slice of a sampled run. */
    ShardSpec shard;

    /**
     * Config-spec label for this job's JobOutcome: the spec, plus the
     * shard suffix for shard jobs — so JobOutcome::label() equals
     * label() and journal adoption matches one record per shard (the
     * shard merge strips the suffix back off, exp/shard.cc).
     */
    std::string
    outcomeSpec() const
    {
        std::string s = configSpec;
        if (shard.enabled) {
            s += "#shard" + std::to_string(shard.startPeriod) + "-" +
                 std::to_string(shard.endPeriod);
        }
        return s;
    }

    std::string label() const { return workload + "/" + outcomeSpec(); }
};

/**
 * Which Executor backend runs the jobs (docs/CAMPAIGN.md "Executors").
 * Auto picks Remote when workerHosts is non-empty, Fork when isolate
 * is set, and Thread otherwise — existing callers keep their behavior
 * without naming an executor.
 */
enum class ExecutorKind
{
    Auto,
    Thread, ///< in-process JobPool fan-out (fastest, no fault walls)
    Fork,   ///< one forked child per job (crash/hang/rlimit isolation)
    Remote, ///< stream jobs to `nwsweep serve` daemons over TCP
};

/** Printable kind name ("auto", "thread", "fork", "remote"). */
const char *executorKindName(ExecutorKind kind);

/** Campaign execution knobs. */
struct CampaignOptions
{
    /** Worker threads/processes; 0 = NWSIM_JOBS env or hardware. */
    unsigned jobs = 0;
    /** Attempts per job before recording it as failed. */
    unsigned maxAttempts = 2;
    /** Stream for the progress/ETA line (nullptr = silent). */
    std::ostream *progress = nullptr;
    /**
     * Run each job in a forked child process: fatal signals become
     * `crashed(SIG...)` outcomes and wall-clock overruns `timeout`
     * outcomes, while sibling jobs continue.
     */
    bool isolate = false;
    /** Per-job wall-clock limit, seconds (isolate mode; 0 = none). */
    double timeoutSeconds = 0.0;
    /**
     * Base delay of the exponential backoff between retry attempts,
     * seconds; the actual delay adds deterministic seeded jitter
     * (retryBackoffSeconds).
     */
    double backoffBaseSeconds = 0.05;
    /** Directory for reproducer bundles ("" = don't write bundles). */
    std::string bundleDir;
    /** Flight-recorder ring capacity feeding those bundles. */
    size_t flightRecorderEvents = 256;
    /** Append terminal job records to this journal file ("" = none). */
    std::string journal;
    /**
     * Skip jobs that already have a terminal record in @p journal and
     * merge their journaled outcomes into the ResultSet.
     */
    bool resume = false;
    /** Backend selection; Auto derives it from workerHosts/isolate. */
    ExecutorKind executor = ExecutorKind::Auto;
    /**
     * `host:port` worker daemons for the remote executor (each one an
     * `nwsweep serve` instance). Non-empty implies ExecutorKind::Remote
     * under Auto.
     */
    std::vector<std::string> workerHosts;
    /** Jobs kept in flight per connected worker daemon. */
    unsigned remoteWindow = 4;
    /**
     * Socket silence (no outcome, no heartbeat) after which the driver
     * declares a worker lost and reassigns its in-flight jobs. Workers
     * heartbeat every second, so this only fires on real loss.
     */
    double workerLossSeconds = 15.0;
    /** Reconnection attempts per lost worker before retiring it. */
    unsigned reconnectAttempts = 2;
    /**
     * Address-space cap per isolated child, MiB (0 = none). A job that
     * outgrows it fails allocation inside the child and is recorded as
     * a classified resource-limit outcome instead of paging the host.
     */
    u64 rlimitMemMb = 0;
    /**
     * CPU-time cap per isolated child, seconds (0 = none). Exceeding
     * it delivers SIGXCPU, classified as a resource-limit outcome.
     */
    double rlimitCpuSeconds = 0.0;
    /**
     * Directory for per-job checkpoint files ("" = none). Jobs whose
     * RunOptions carry a ckptEveryInsts cadence snapshot machine state
     * here at `<dir>/<sanitized label>.nwck`; a retry, a `--resume`, or
     * a reassigned remote job finding a valid matching snapshot resumes
     * mid-simulation instead of from instruction zero
     * (docs/CHECKPOINT.md).
     */
    std::string ckptDir;
};

/** Checkpoint-file path for @p job_label under @p ckpt_dir. */
std::string ckptPathFor(const std::string &ckpt_dir,
                        const std::string &job_label);

/** A named batch of SimJobs executed as one parallel fan-out. */
class Campaign
{
  public:
    Campaign() = default;

    /** Append one job. */
    Campaign &add(SimJob job);

    /**
     * Cross product: every named workload × every config spec, all with
     * the same run options. Workload and config names are validated
     * eagerly (throws BadInputError on unknown), so errors surface
     * before any worker starts.
     */
    static Campaign grid(const std::vector<std::string> &workloads,
                         const std::vector<std::string> &config_specs,
                         const RunOptions &opts);

    /**
     * Same cross product over a sweep plan's workload entries
     * (cfg/loader.hh): entries carrying assembly text — generated
     * workloads, `[workload NAME]` sections — run that exact text on
     * every executor backend; entries without text are compiled-in
     * names. (Named distinctly from grid(): a braced list of string
     * literals would otherwise be ambiguous between the two.)
     */
    static Campaign sweepGrid(const std::vector<cfg::SweepEntry> &workloads,
                              const std::vector<std::string> &config_specs,
                              const RunOptions &opts);

    const std::vector<SimJob> &jobs() const { return jobList; }

    /** Execute all jobs; outcomes are ordered by job index. */
    ResultSet run(const CampaignOptions &copts = {}) const;

  private:
    std::vector<SimJob> jobList;
};

/**
 * Delay before retry @p attempt (the one about to run, so >= 2) of job
 * @p job_index: base * 2^(attempt-2), multiplied by a jitter factor in
 * [0.5, 1.5) drawn from a SplitMix64 stream seeded with (job, attempt).
 * Deterministic — identical inputs give identical delays on every
 * machine, keeping retried campaigns reproducible.
 */
double retryBackoffSeconds(size_t job_index, unsigned attempt,
                           double base_seconds);

/**
 * Run one job to its terminal outcome in this process: the attempt /
 * classification / backoff loop shared by the in-thread executor and
 * each fork-isolated child. Catches everything a job can throw;
 * classifies via the SimError taxonomy; writes a reproducer bundle for
 * internal-invariant failures when @p copts.bundleDir is set.
 */
JobOutcome executeJobWithRetries(const SimJob &job, size_t job_index,
                                 const CampaignOptions &copts);

} // namespace nwsim::exp

#endif // NWSIM_EXP_CAMPAIGN_HH
