/**
 * @file
 * Campaign outcomes and their sinks: JSON (machine analysis), CSV
 * (spreadsheets), and the repo's aligned-text Table (terminals).
 */

#ifndef NWSIM_EXP_RESULT_SET_HH
#define NWSIM_EXP_RESULT_SET_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "common/error.hh"
#include "driver/runner.hh"
#include "driver/table.hh"

namespace nwsim::exp
{

/** Terminal state of one campaign job. */
enum class JobStatus : u8
{
    Ok,       ///< simulated to completion, stats valid
    Failed,   ///< threw an exception (see error / errorKind)
    Crashed,  ///< isolated child died on a fatal signal (termSignal)
    Timeout,  ///< killed by the wall-clock watchdog
    /**
     * Stopped gracefully mid-run at a checkpoint (SIGTERM shutdown,
     * docs/CHECKPOINT.md). NOT terminal: the journal skips it and the
     * remote driver re-enqueues it, so the job re-runs — resuming from
     * ckptPath — instead of being recorded as failed.
     */
    Interrupted,
};

/** Printable status ("ok", "failed", "crashed", "timeout", ...). */
const char *jobStatusName(JobStatus status);

/**
 * Which SimError class a Failed job threw: maps 1:1 onto ErrorKind
 * plus Unknown for exceptions outside the taxonomy, None when ok.
 */
enum class FailKind : u8
{
    None,
    BadInput,
    ResourceLimit,
    Internal,
    Unknown,
};

/** Printable kind ("", "bad-input", ..., "unknown"). */
const char *failKindName(FailKind kind);

/** FailKind of a SimError class (taxonomy in common/error.hh). */
FailKind failKindOf(ErrorKind kind);

/** True if a job that failed this way might succeed on retry. */
bool failKindRetryable(FailKind kind);

/** What happened to one job: its stats on success, why it failed if not. */
struct JobOutcome
{
    std::string workload;
    std::string configSpec;
    bool ok = false;
    JobStatus status = JobStatus::Failed;
    /** SimError classification of a Failed job (None when ok). */
    FailKind errorKind = FailKind::None;
    /** Fatal signal that killed an isolated job (0 = none). */
    int termSignal = 0;
    /** Attempts consumed (1 = first try succeeded). */
    unsigned attempts = 0;
    /** Exception message of the final failed attempt. */
    std::string error;
    /** Reproducer bundle directory written for this fault ("" = none). */
    std::string bundlePath;
    /** Wall-clock of the successful (or last) attempt, seconds. */
    double wallSeconds = 0.0;
    /**
     * Last durable checkpoint this job wrote ("" = none): where a
     * retry or resume restarts the simulation from (docs/CHECKPOINT.md).
     * Stamped by the in-child runner on interrupt/failure, or probed
     * from disk by the parent when the child died without reporting
     * (SIGKILL, timeout).
     */
    std::string ckptPath;
    /** Stream position (retired insts) of that checkpoint. */
    u64 ckptPosition = 0;
    /**
     * Serialized SampleAggregator of a shard job (exp/shard.hh); lets
     * the driver merge shards exactly (ratio-of-sums over raw interval
     * samples) instead of from the lossy mean/cov/ci95 summary.
     */
    std::string shardAgg;
    /** Simulation statistics; meaningful only when ok. */
    RunResult result;

    std::string label() const { return workload + "/" + configSpec; }
    /** Status cell for tables/progress ("crashed(SIGSEGV)", ...). */
    std::string statusText() const;

    /**
     * Host-side simulation speed: thousands of detailed-mode committed
     * instructions per wall-clock second (0 when failed or untimed).
     * Derived from journaled fields, so resumed campaigns report the
     * original measurement.
     */
    double
    kips() const
    {
        if (!ok || wallSeconds <= 0.0)
            return 0.0;
        return static_cast<double>(result.measuredCommitted) /
               wallSeconds / 1000.0;
    }

    /** Host-side simulated cycles per wall-clock second (0 if unknown). */
    double
    cyclesPerSecond() const
    {
        if (!ok || wallSeconds <= 0.0)
            return 0.0;
        return static_cast<double>(result.core.cycles) / wallSeconds;
    }
};

/** Ordered (by job index) outcomes of one campaign run. */
class ResultSet
{
  public:
    ResultSet() = default;
    ResultSet(std::vector<JobOutcome> outcomes, unsigned workers_used);

    const std::vector<JobOutcome> &outcomes() const { return all; }
    size_t size() const { return all.size(); }
    size_t failedCount() const;
    bool allOk() const { return failedCount() == 0; }
    /** Worker threads the campaign actually ran with. */
    unsigned workersUsed() const { return workers; }
    /** Sum of per-job wall clocks (serial-equivalent seconds). */
    double totalJobSeconds() const;

    /** Outcome for a (workload, config) pair, or nullptr. */
    const JobOutcome *find(const std::string &workload,
                           const std::string &config_spec) const;

    /** Stats for a (workload, config) pair; fatal if absent or failed. */
    const RunResult &get(const std::string &workload,
                         const std::string &config_spec) const;

    /** Headline-stat table, one row per job. */
    Table toTable() const;

    /**
     * Full statistics as a JSON document. With @p include_timing false,
     * wall-clock and worker-count fields are omitted so two runs of the
     * same grid — including a journal-resumed run — produce bit-identical
     * documents (the resume drill in docs/ROBUSTNESS.md relies on it).
     */
    void writeJson(std::ostream &os, bool include_timing = true) const;

    /** Headline stats as CSV, one row per job. */
    void writeCsv(std::ostream &os) const;

  private:
    std::vector<JobOutcome> all;
    unsigned workers = 0;
};

} // namespace nwsim::exp

#endif // NWSIM_EXP_RESULT_SET_HH
