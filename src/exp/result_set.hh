/**
 * @file
 * Campaign outcomes and their sinks: JSON (machine analysis), CSV
 * (spreadsheets), and the repo's aligned-text Table (terminals).
 */

#ifndef NWSIM_EXP_RESULT_SET_HH
#define NWSIM_EXP_RESULT_SET_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "driver/runner.hh"
#include "driver/table.hh"

namespace nwsim::exp
{

/** What happened to one job: its stats on success, why it failed if not. */
struct JobOutcome
{
    std::string workload;
    std::string configSpec;
    bool ok = false;
    /** Attempts consumed (1 = first try succeeded). */
    unsigned attempts = 0;
    /** Exception message of the final failed attempt. */
    std::string error;
    /** Wall-clock of the successful (or last) attempt, seconds. */
    double wallSeconds = 0.0;
    /** Simulation statistics; meaningful only when ok. */
    RunResult result;

    std::string label() const { return workload + "/" + configSpec; }
};

/** Ordered (by job index) outcomes of one campaign run. */
class ResultSet
{
  public:
    ResultSet() = default;
    ResultSet(std::vector<JobOutcome> outcomes, unsigned workers_used);

    const std::vector<JobOutcome> &outcomes() const { return all; }
    size_t size() const { return all.size(); }
    size_t failedCount() const;
    bool allOk() const { return failedCount() == 0; }
    /** Worker threads the campaign actually ran with. */
    unsigned workersUsed() const { return workers; }
    /** Sum of per-job wall clocks (serial-equivalent seconds). */
    double totalJobSeconds() const;

    /** Outcome for a (workload, config) pair, or nullptr. */
    const JobOutcome *find(const std::string &workload,
                           const std::string &config_spec) const;

    /** Stats for a (workload, config) pair; fatal if absent or failed. */
    const RunResult &get(const std::string &workload,
                         const std::string &config_spec) const;

    /** Headline-stat table, one row per job. */
    Table toTable() const;

    /** Full statistics as a JSON document. */
    void writeJson(std::ostream &os) const;

    /** Headline stats as CSV, one row per job. */
    void writeCsv(std::ostream &os) const;

  private:
    std::vector<JobOutcome> all;
    unsigned workers = 0;
};

} // namespace nwsim::exp

#endif // NWSIM_EXP_RESULT_SET_HH
