#include "exp/job_pool.hh"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

namespace nwsim::exp
{

unsigned
resolveJobCount(unsigned requested)
{
    if (requested)
        return requested;
    if (const char *env = std::getenv("NWSIM_JOBS")) {
        const unsigned long n = std::strtoul(env, nullptr, 0);
        if (n)
            return static_cast<unsigned>(n);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

JobPool::JobPool(unsigned workers) : workerCount(resolveJobCount(workers))
{
}

void
JobPool::run(const std::vector<std::function<void()>> &tasks,
             const std::function<void(size_t)> &on_done) const
{
    if (tasks.empty())
        return;

    const size_t n = tasks.size();
    const unsigned threads =
        static_cast<unsigned>(std::min<size_t>(workerCount, n));

    std::atomic<size_t> cursor{0};
    std::mutex doneMutex;
    std::exception_ptr firstError;
    auto worker = [&] {
        for (;;) {
            const size_t i = cursor.fetch_add(1);
            if (i >= n)
                return;
            try {
                tasks[i]();
                if (on_done) {
                    std::lock_guard<std::mutex> lock(doneMutex);
                    on_done(i);
                }
            } catch (...) {
                // Keep draining: one bad task must not strand the batch
                // or terminate the process from a worker thread. The
                // first exception is rethrown after everyone joins.
                std::lock_guard<std::mutex> lock(doneMutex);
                if (!firstError)
                    firstError = std::current_exception();
            }
        }
    };

    if (threads == 1) {
        // Run inline: no thread overhead, and debuggers/sanitizers see a
        // single-threaded program for --jobs 1.
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(threads);
        for (unsigned t = 0; t < threads; ++t)
            pool.emplace_back(worker);
        for (std::thread &t : pool)
            t.join();
    }

    if (firstError)
        std::rethrow_exception(firstError);
}

} // namespace nwsim::exp
