#include "exp/json.hh"

#include <cmath>
#include <cstdio>

#include "common/logging.hh"

namespace nwsim::exp
{

std::string
JsonWriter::escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (unsigned char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

void
JsonWriter::indent()
{
    os << '\n';
    for (size_t i = 0; i < stack.size(); ++i)
        os << "  ";
}

void
JsonWriter::beforeValue()
{
    if (pendingKey) {
        pendingKey = false;
        return;
    }
    if (stack.empty())
        return;
    NWSIM_ASSERT(stack.back().isArray,
                 "JSON object member emitted without key()");
    if (stack.back().hasItems)
        os << ',';
    stack.back().hasItems = true;
    indent();
}

JsonWriter &
JsonWriter::beginObject()
{
    beforeValue();
    os << '{';
    stack.push_back({false, false});
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    NWSIM_ASSERT(!stack.empty() && !stack.back().isArray,
                 "endObject() outside an object");
    const bool had = stack.back().hasItems;
    stack.pop_back();
    if (had)
        indent();
    os << '}';
    if (stack.empty())
        os << '\n';
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    beforeValue();
    os << '[';
    stack.push_back({true, false});
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    NWSIM_ASSERT(!stack.empty() && stack.back().isArray,
                 "endArray() outside an array");
    const bool had = stack.back().hasItems;
    stack.pop_back();
    if (had)
        indent();
    os << ']';
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &name)
{
    NWSIM_ASSERT(!stack.empty() && !stack.back().isArray,
                 "key() outside an object");
    if (stack.back().hasItems)
        os << ',';
    stack.back().hasItems = true;
    indent();
    os << '"' << escape(name) << "\": ";
    pendingKey = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &s)
{
    beforeValue();
    os << '"' << escape(s) << '"';
    return *this;
}

JsonWriter &
JsonWriter::value(bool b)
{
    beforeValue();
    os << (b ? "true" : "false");
    return *this;
}

JsonWriter &
JsonWriter::value(double d)
{
    beforeValue();
    if (!std::isfinite(d)) {
        // JSON has no inf/nan; null keeps the document valid.
        os << "null";
        return *this;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    os << buf;
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t u)
{
    beforeValue();
    os << u;
    return *this;
}

} // namespace nwsim::exp
