/**
 * @file
 * Distributed campaign execution over TCP (docs/CAMPAIGN.md
 * "Executors", docs/ROBUSTNESS.md "Worker loss").
 *
 * Topology: one driver (`nwsweep --workers host:port[,...]`) streams
 * jobs to any number of worker daemons (`nwsweep serve --listen PORT`).
 * A worker runs each job through the same fork-isolated retry loop the
 * local fork executor uses (exp/isolate.cc) — crashes, hangs, and
 * rlimit overruns on a worker come back as the same classified
 * JobOutcomes a local sweep would record.
 *
 * Protocol: length-prefixed frames, every one opening with a 4-byte
 * magic; the handshake exchanges protocol and wire-format versions and
 * fails fast (a clear error naming both sides) on any mismatch, so a
 * mixed-version driver/worker pair can never silently misparse. Job
 * specs travel as packSimJobSpec blobs (full CoreConfig — custom
 * configs survive), outcomes as packJobOutcome blobs (exp/wire.hh).
 * Both sides heartbeat once a second.
 *
 * Fault model: the driver assigns jobs deterministically by index,
 * keeps a bounded in-flight window per worker, and on worker loss
 * (EOF, socket error, or heartbeat silence) reconnects and — if the
 * worker stays dead — reassigns its jobs to the survivors. Completed
 * outcomes are journaled by Campaign::run as they land, so a killed
 * driver resumes via `--resume` and a killed worker costs only its
 * in-flight jobs' compute. Per-job statistics are bit-identical to a
 * local run regardless of worker count, topology, or mid-sweep loss
 * (tests/test_distributed.cc).
 */

#ifndef NWSIM_EXP_REMOTE_HH
#define NWSIM_EXP_REMOTE_HH

#include <iosfwd>
#include <string>
#include <vector>

#include <sys/types.h>

#include "exp/executor.hh"

namespace nwsim::exp
{

// ---- protocol (exposed for tests) ---------------------------------------

/** Bump on any framing/handshake change; exchanged in Hello frames. */
inline constexpr u32 kProtocolVersion = 1;

/** Magic opening every frame on the wire. */
inline constexpr char kFrameMagic[4] = {'N', 'W', 'R', 'C'};

/** Refuse frames beyond this payload size (a desynced/hostile peer). */
inline constexpr u64 kMaxFramePayload = 64ull << 20;

/** Frame types (u8 on the wire). */
enum class FrameType : u8
{
    HelloDriver = 1, ///< proto+wire versions, exec policy (driver→worker)
    HelloWorker = 2, ///< proto+wire versions, slot count (worker→driver)
    Job = 3,         ///< u64 job index + packSimJobSpec blob
    Outcome = 4,     ///< u64 job index + packJobOutcome blob
    Heartbeat = 5,   ///< empty; liveness, both directions
    Goodbye = 6,     ///< driver is done; worker ends the session
    Error = 7,       ///< fatal protocol error message, then close
};

/** One decoded frame. */
struct Frame
{
    FrameType type = FrameType::Heartbeat;
    std::string payload;
};

/** [magic][type u8][len u32][payload] — the only bytes on the wire. */
std::string encodeFrame(FrameType type, std::string_view payload);

/**
 * Incremental frame decoder over a TCP byte stream. feed() bytes as
 * they arrive; next() yields +1 per decoded frame, 0 when more bytes
 * are needed, -1 on an unrecoverable protocol error (bad magic,
 * oversized length — @p err says which; the connection must be
 * dropped, the stream cannot resynchronize).
 */
class FrameReader
{
  public:
    void feed(const char *data, size_t n) { buf.append(data, n); }
    int next(Frame &out, std::string *err);

  private:
    std::string buf;
};

// ---- worker daemon -------------------------------------------------------

/** `nwsweep serve` knobs. */
struct ServeOptions
{
    /** Interface to bind ("0.0.0.0" = any). */
    std::string bindHost = "0.0.0.0";
    /** TCP port; 0 picks an ephemeral one (logged at startup). */
    unsigned port = 0;
    /**
     * Adopt an already-listening socket instead of binding (the
     * loopback fleet passes one so the port is known pre-fork).
     */
    int listenFd = -1;
    /** Concurrent isolated children; 0 = NWSIM_JOBS env or hardware. */
    unsigned jobs = 0;
    /** Exit after one driver session instead of serving forever. */
    bool once = false;
    /** Daemon log stream (nullptr = silent). */
    std::ostream *log = nullptr;
    /**
     * Worker-local checkpoint directory ("" = none). A worker-side
     * knob, deliberately not shipped in the driver's Hello: the path
     * must make sense on the worker's filesystem. Jobs with a `+ckpt=N`
     * cadence snapshot here, so a worker that dies and is re-driven —
     * or is SIGTERMed and restarted — resumes its jobs mid-simulation
     * as long as the replacement worker sees the same directory.
     */
    std::string ckptDir;
};

/**
 * Run a worker daemon: accept one driver connection at a time, run its
 * jobs in forked isolated children (honoring the exec policy — retries,
 * watchdog, rlimits — the driver's Hello carries), stream outcomes
 * back, heartbeat, and clean up orphaned children if the driver
 * vanishes. Returns after one session with ServeOptions::once, else
 * serves until killed. Throws SimError if the socket cannot be set up.
 *
 * Graceful shutdown: on SIGTERM the worker stops launching queued jobs,
 * forwards SIGTERM to its in-flight children — each checkpoints at its
 * next safe point and reports an Interrupted outcome — flushes those
 * outcomes to the driver (which re-enqueues the jobs), closes the
 * session, and returns so the daemon exits 0 (docs/CHECKPOINT.md).
 */
void serveWorker(const ServeOptions &opts);

/**
 * A fleet of loopback worker daemons forked from this process — one
 * `serveWorker(once=true)` child per worker. Powers `nwsweep
 * --spawn-workers N` and the distributed tests: a real TCP topology
 * with no external orchestration. The destructor kills and reaps any
 * worker still running.
 */
class LocalWorkerFleet
{
  public:
    /**
     * Fork @p count workers, each with @p jobs_per_worker child slots;
     * @p ckpt_dir, if non-empty, is every worker's local checkpoint
     * directory (they share the filesystem, so a killed worker's jobs
     * resume from its checkpoints wherever they land next).
     */
    LocalWorkerFleet(unsigned count, unsigned jobs_per_worker,
                     const std::string &ckpt_dir = "");
    ~LocalWorkerFleet();

    LocalWorkerFleet(const LocalWorkerFleet &) = delete;
    LocalWorkerFleet &operator=(const LocalWorkerFleet &) = delete;

    /** "127.0.0.1:port" for every worker, in spawn order. */
    const std::vector<std::string> &hosts() const { return hostList; }

    /** SIGKILL worker @p i now (worker-loss drills). No-op if reaped. */
    void kill(size_t i);

    /**
     * SIGTERM worker @p i (graceful-shutdown drills): it checkpoints
     * in-flight jobs, flushes outcomes, and exits 0 on its own. Does
     * not reap — pair with waitExit() or the destructor.
     */
    void term(size_t i);

    /** Reap worker @p i and return its exit status (waitpid status). */
    int waitExit(size_t i);

  private:
    std::vector<std::string> hostList;
    std::vector<pid_t> pids;
};

// ---- driver --------------------------------------------------------------

/** Streams jobs to `nwsweep serve` daemons (CampaignOptions::workerHosts). */
class RemoteExecutor final : public Executor
{
  public:
    const char *name() const override { return "remote"; }
    unsigned lanes(const CampaignOptions &copts,
                   size_t njobs) const override;
    void execute(const std::vector<SimJob> &jobs,
                 const std::vector<size_t> &indices,
                 const CampaignOptions &copts,
                 std::vector<JobOutcome> &outcomes,
                 const std::function<void(size_t)> &on_done) override;
};

} // namespace nwsim::exp

#endif // NWSIM_EXP_REMOTE_HH
