#include "exp/executor.hh"

#include <algorithm>

#include "common/logging.hh"
#include "exp/isolate.hh"
#include "exp/job_pool.hh"
#include "exp/remote.hh"

namespace nwsim::exp
{

const char *
executorKindName(ExecutorKind kind)
{
    switch (kind) {
    case ExecutorKind::Auto:
        return "auto";
    case ExecutorKind::Thread:
        return "thread";
    case ExecutorKind::Fork:
        return "fork";
    case ExecutorKind::Remote:
        return "remote";
    }
    return "?";
}

unsigned
Executor::lanes(const CampaignOptions &copts, size_t njobs) const
{
    return std::max<unsigned>(
        1, static_cast<unsigned>(
               std::min<size_t>(resolveJobCount(copts.jobs),
                                std::max<size_t>(1, njobs))));
}

void
ThreadExecutor::execute(const std::vector<SimJob> &jobs,
                        const std::vector<size_t> &indices,
                        const CampaignOptions &copts,
                        std::vector<JobOutcome> &outcomes,
                        const std::function<void(size_t)> &on_done)
{
    JobPool pool(lanes(copts, indices.size()));
    std::vector<std::function<void()>> tasks;
    tasks.reserve(indices.size());
    for (const size_t i : indices) {
        tasks.push_back([&jobs, i, &copts, &outcomes] {
            outcomes[i] = executeJobWithRetries(jobs[i], i, copts);
        });
    }
    pool.run(tasks, [&](size_t t) {
        if (on_done)
            on_done(indices[t]);
    });
}

void
ForkExecutor::execute(const std::vector<SimJob> &jobs,
                      const std::vector<size_t> &indices,
                      const CampaignOptions &copts,
                      std::vector<JobOutcome> &outcomes,
                      const std::function<void(size_t)> &on_done)
{
    runJobsIsolated(jobs, indices, copts, lanes(copts, indices.size()),
                    outcomes, on_done);
}

ExecutorKind
resolveExecutorKind(const CampaignOptions &copts)
{
    if (copts.executor != ExecutorKind::Auto)
        return copts.executor;
    if (!copts.workerHosts.empty())
        return ExecutorKind::Remote;
    return copts.isolate ? ExecutorKind::Fork : ExecutorKind::Thread;
}

std::unique_ptr<Executor>
makeExecutor(const CampaignOptions &copts)
{
    switch (resolveExecutorKind(copts)) {
    case ExecutorKind::Thread:
        return std::make_unique<ThreadExecutor>();
    case ExecutorKind::Fork:
        return std::make_unique<ForkExecutor>();
    case ExecutorKind::Remote:
        if (copts.workerHosts.empty())
            NWSIM_FATAL("remote executor requested without worker "
                        "hosts (use --workers host:port[,...])");
        return std::make_unique<RemoteExecutor>();
    case ExecutorKind::Auto:
        break; // resolveExecutorKind never returns Auto
    }
    NWSIM_FATAL("unresolvable executor kind");
}

} // namespace nwsim::exp
