#include "exp/campaign.hh"

#include <algorithm>
#include <chrono>
#include <exception>
#include <filesystem>
#include <map>
#include <memory>
#include <new>
#include <thread>

#include "asm/textasm.hh"
#include "cfg/loader.hh"
#include "ckpt/run.hh"
#include "common/error.hh"
#include "common/logging.hh"
#include "exp/bundle.hh"
#include "exp/configs.hh"
#include "exp/executor.hh"
#include "exp/isolate.hh"
#include "exp/journal.hh"
#include "exp/progress.hh"
#include "pipeline/flight_recorder.hh"
#include "sample/controller.hh"
#include "workloads/kernels.hh"

namespace nwsim::exp
{

Campaign &
Campaign::add(SimJob job)
{
    jobList.push_back(std::move(job));
    return *this;
}

Campaign
Campaign::sweepGrid(const std::vector<cfg::SweepEntry> &workloads,
               const std::vector<std::string> &config_specs,
               const RunOptions &opts)
{
    Campaign c;
    for (const std::string &spec : config_specs) {
        // One resolution per spec: config, sampling schedule, ckpt
        // cadence, and (for file-based specs) the canonical dump all
        // come from the same loader pass.
        const cfg::MachineSpec machine = cfg::resolveMachineSpec(spec);
        for (const cfg::SweepEntry &w : workloads) {
            // Text-free entries must be compiled-in names — validate
            // eagerly (throws with did-you-mean if unknown) so errors
            // surface before any worker starts.
            if (w.asmText.empty() && !cfg::isKnownWorkloadName(w.name))
                cfg::workloadProgram(w.name);
            SimJob job;
            job.workload = w.name;
            job.configSpec = spec;
            job.config = machine.config;
            job.configText = machine.configText;
            job.asmText = w.asmText;
            job.opts = opts;
            job.opts.sample = machine.sample;
            // A `+ckpt=N` modifier overrides any CLI-level cadence the
            // caller put in opts (and 0 means "keep the caller's").
            if (machine.ckptEvery)
                job.opts.ckptEveryInsts = machine.ckptEvery;
            c.add(std::move(job));
        }
    }
    return c;
}

Campaign
Campaign::grid(const std::vector<std::string> &workloads,
               const std::vector<std::string> &config_specs,
               const RunOptions &opts)
{
    // Name-based grids materialize generated (wgen:) workloads to
    // assembly text up front, so every executor backend — including
    // remote workers — runs the exact same program bytes.
    std::vector<cfg::SweepEntry> entries;
    entries.reserve(workloads.size());
    for (const std::string &w : workloads)
        entries.push_back({w, cfg::generatedWorkloadText(w)});
    return sweepGrid(entries, config_specs, opts);
}

double
retryBackoffSeconds(size_t job_index, unsigned attempt,
                    double base_seconds)
{
    if (base_seconds <= 0 || attempt < 2)
        return 0.0;
    // SplitMix64 over the (job, attempt) pair: every retry everywhere
    // gets its own delay, yet reruns of the same campaign back off
    // identically.
    u64 x = (static_cast<u64>(job_index) << 32) ^ attempt;
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    x ^= x >> 31;
    const double jitter =
        0.5 + static_cast<double>(x >> 11) / 9007199254740992.0;
    const unsigned doublings = std::min(attempt - 2, 20u);
    return base_seconds * static_cast<double>(1ULL << doublings) * jitter;
}

std::string
ckptPathFor(const std::string &ckpt_dir, const std::string &job_label)
{
    // Same filesystem-safe flattening the bundle writer uses, but into
    // a single file name rather than a directory.
    std::string tag;
    tag.reserve(job_label.size());
    for (char c : job_label) {
        const bool safe = (c >= 'a' && c <= 'z') ||
                          (c >= 'A' && c <= 'Z') ||
                          (c >= '0' && c <= '9') || c == '_' ||
                          c == '.' || c == '-';
        tag.push_back(safe ? c : '-');
    }
    return ckpt_dir + "/" + tag + ".nwck";
}

namespace
{

Program
jobProgram(const SimJob &job)
{
    // Grid jobs carry generated programs as asmText; the name-based
    // fallback also understands `wgen:` specs for hand-built jobs.
    return job.asmText.empty() ? cfg::workloadProgram(job.workload)
                               : assembleText(job.asmText);
}

/**
 * Run one shard slice (ckpt/run.hh) and dress its output as a
 * JobOutcome: the serialized aggregator rides in shardAgg for the
 * driver-side exact merge, and the skeleton RunResult carries only the
 * schedule bookkeeping (interval/stream counts) — per-shard stats are
 * not meaningful on their own.
 */
RunResult
runShardJob(const SimJob &job, JobOutcome &out, CoreObserver *observer)
{
    const ckpt::ShardRunOutput so = ckpt::runShardProgram(
        jobProgram(job), job.config, job.opts, job.workload,
        job.configSpec, job.shard.startPeriod, job.shard.endPeriod,
        job.shard.ckptBlob, observer);
    out.shardAgg = so.aggBlob;
    RunResult r;
    r.workload = job.workload;
    r.configName = job.configSpec;
    r.sample.sampled = true;
    r.sample.intervals = so.intervals;
    r.sample.streamInsts = so.streamInsts;
    return r;
}

/**
 * One attempt: run, classify anything thrown, and capture the flight
 * recorder's dump into @p events_out when the attempt failed.
 */
JobOutcome
executeJobAttempt(const SimJob &job, const CampaignOptions &copts,
                  std::string *events_out)
{
    JobOutcome out;
    out.workload = job.workload;
    out.configSpec = job.outcomeSpec();

    // The recorder rides the standard runProgram path; custom runners
    // own their whole run and can attach their own observer.
    std::unique_ptr<FlightRecorder> recorder;
    std::string eventsPath;
    if (!copts.bundleDir.empty() && !job.runner) {
        recorder =
            std::make_unique<FlightRecorder>(copts.flightRecorderEvents);
        eventsPath = bundleEventsPath(copts.bundleDir, job);
        setCrashDump(recorder.get(), &eventsPath);
    }

    using Clock = std::chrono::steady_clock;
    const Clock::time_point t0 = Clock::now();
    try {
        if (job.runner) {
            out.result = job.runner(job);
        } else if (job.shard.enabled) {
            out.result = runShardJob(job, out, recorder.get());
        } else if (job.opts.ckptEveryInsts > 0) {
            ckpt::CkptRunPolicy policy;
            if (!copts.ckptDir.empty())
                policy.path = ckptPathFor(copts.ckptDir, job.label());
            policy.workload = job.workload;
            policy.configSpec = job.configSpec;
            policy.everyInsts = job.opts.ckptEveryInsts;
            out.result = ckpt::runCheckpointedProgram(
                jobProgram(job), job.config, job.opts, job.workload,
                job.configSpec, policy, recorder.get());
        } else if (job.opts.sample.enabled) {
            out.result = sample::runSampledProgram(
                jobProgram(job), job.config, job.opts, job.workload,
                job.configSpec, recorder.get());
        } else {
            out.result =
                runProgram(jobProgram(job), job.config, job.opts,
                           job.workload, job.configSpec, recorder.get());
        }
        out.ok = true;
        out.status = JobStatus::Ok;
        out.errorKind = FailKind::None;
    } catch (const InterruptedError &e) {
        // Not a failure: the run stopped gracefully at a checkpoint.
        // Non-terminal — the journal skips it and retry loops stop, so
        // the job re-runs (from e.ckptPath()) on the next resume.
        out.ok = false;
        out.status = JobStatus::Interrupted;
        out.errorKind = FailKind::None;
        out.error = "interrupted (graceful shutdown)";
        out.ckptPath = e.ckptPath();
        out.ckptPosition = e.ckptPosition();
    } catch (const SimError &e) {
        out.ok = false;
        out.status = JobStatus::Failed;
        out.errorKind = failKindOf(e.kind());
        out.error = e.what();
    } catch (const std::bad_alloc &) {
        out.ok = false;
        out.status = JobStatus::Failed;
        out.errorKind = FailKind::ResourceLimit;
        out.error = "out of memory (std::bad_alloc)";
    } catch (const std::exception &e) {
        out.ok = false;
        out.status = JobStatus::Failed;
        out.errorKind = FailKind::Unknown;
        out.error = e.what();
    } catch (...) {
        out.ok = false;
        out.status = JobStatus::Failed;
        out.errorKind = FailKind::Unknown;
        out.error = "unknown exception";
    }
    out.wallSeconds =
        std::chrono::duration<double>(Clock::now() - t0).count();

    if (recorder) {
        setCrashDump(nullptr, nullptr);
        if (!out.ok && events_out)
            *events_out = recorder->dump();
    }
    return out;
}

} // namespace

JobOutcome
executeJobWithRetries(const SimJob &job, size_t job_index,
                      const CampaignOptions &copts)
{
    const unsigned max_attempts =
        copts.maxAttempts ? copts.maxAttempts : 1;

    JobOutcome out;
    std::string events;
    for (unsigned attempt = 1; attempt <= max_attempts; ++attempt) {
        if (attempt > 1) {
            std::this_thread::sleep_for(std::chrono::duration<double>(
                retryBackoffSeconds(job_index, attempt,
                                    copts.backoffBaseSeconds)));
        }
        events.clear();
        out = executeJobAttempt(job, copts, &events);
        out.attempts = attempt;
        // Retry only failures that retrying can fix; bad input and
        // broken invariants are deterministic.
        if (out.ok || !failKindRetryable(out.errorKind))
            break;
    }

    if (!copts.bundleDir.empty()) {
        if (!out.ok && out.errorKind == FailKind::Internal) {
            out.bundlePath = writeReproducerBundle(
                copts.bundleDir, job, out, events, /*shrink=*/true);
        } else if (out.ok) {
            // Isolated children pre-create the bundle directory for the
            // crash handler; drop it again if the job finished cleanly
            // (remove() only deletes empty directories).
            std::error_code ec;
            std::filesystem::remove(bundlePathFor(copts.bundleDir, job),
                                    ec);
        }
    }
    return out;
}

ResultSet
Campaign::run(const CampaignOptions &copts) const
{
    const size_t n = jobList.size();
    std::vector<JobOutcome> outcomes(n);
    std::vector<char> fromJournal(n, 0);

    // Resume: adopt journaled terminal outcomes into their grid slots
    // and run only the jobs without one.
    if (copts.resume && !copts.journal.empty()) {
        std::map<std::string, JobOutcome> byLabel;
        for (JobOutcome &o : CampaignJournal::load(copts.journal))
            byLabel.emplace(o.label(), std::move(o));
        for (size_t i = 0; i < n; ++i) {
            const auto it = byLabel.find(jobList[i].label());
            if (it == byLabel.end())
                continue;
            outcomes[i] = std::move(it->second);
            byLabel.erase(it);
            fromJournal[i] = 1;
        }
        // Every journaled record must belong to this sweep. A leftover
        // means the journal was written by a *different* grid —
        // resuming would silently mix two campaigns' results, so fail
        // fast with enough context to spot the mismatch.
        if (!byLabel.empty()) {
            std::string sample;
            size_t shown = 0;
            for (const auto &[label, o] : byLabel) {
                if (shown++ == 3) {
                    sample += ", ...";
                    break;
                }
                if (!sample.empty())
                    sample += ", ";
                sample += label;
            }
            NWSIM_FATAL("journal ", copts.journal, " holds ",
                        byLabel.size(),
                        " job(s) not in this sweep (", sample,
                        ") — it belongs to a different campaign; "
                        "pass a matching grid or a fresh --journal "
                        "path");
        }
    }

    std::vector<size_t> todo;
    todo.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        if (!fromJournal[i])
            todo.push_back(i);
    }

    // Open (or truncate) the journal before spawning anything: an
    // unwritable journal should fail the campaign up front, not after
    // an hour of simulation. Adopted outcomes are not re-appended, so
    // the journal keeps one record per job across any number of resumes.
    std::unique_ptr<CampaignJournal> journal;
    if (!copts.journal.empty()) {
        journal = std::make_unique<CampaignJournal>(copts.journal,
                                                    !copts.resume);
    }

    // The backend owns *how* the remaining jobs run; everything above
    // and below (resume adoption, journal, progress, merge) is
    // backend-independent — see docs/CAMPAIGN.md "Executors".
    const std::unique_ptr<Executor> executor = makeExecutor(copts);
    const unsigned workers = executor->lanes(copts, todo.size());
    ProgressMeter meter(todo.size(), workers, copts.progress);

    // Journal appends and the meter share one serialization point: the
    // executor's on_done hook, which every backend delivers one
    // completion at a time.
    auto record = [&](size_t i) {
        // Interrupted is not terminal: journaling it would make resume
        // adopt a half-finished job as done. The checkpoint file on
        // disk is its record; the next run re-executes from it.
        if (journal && outcomes[i].status != JobStatus::Interrupted)
            journal->append(outcomes[i]);
        meter.jobDone(outcomes[i].label(), outcomes[i].ok);
    };

    executor->execute(jobList, todo, copts, outcomes, record);
    meter.finish();

    return ResultSet(std::move(outcomes), workers);
}

} // namespace nwsim::exp
