#include "exp/campaign.hh"

#include <chrono>
#include <exception>

#include "exp/configs.hh"
#include "exp/job_pool.hh"
#include "exp/progress.hh"
#include "workloads/kernels.hh"

namespace nwsim::exp
{

Campaign &
Campaign::add(SimJob job)
{
    jobList.push_back(std::move(job));
    return *this;
}

Campaign
Campaign::grid(const std::vector<std::string> &workloads,
               const std::vector<std::string> &config_specs,
               const RunOptions &opts)
{
    Campaign c;
    for (const std::string &spec : config_specs) {
        const CoreConfig cfg = configBySpec(spec);
        for (const std::string &w : workloads) {
            workloadByName(w);   // eager validation (fatal if unknown)
            SimJob job;
            job.workload = w;
            job.configSpec = spec;
            job.config = cfg;
            job.opts = opts;
            c.add(std::move(job));
        }
    }
    return c;
}

namespace
{

JobOutcome
executeJob(const SimJob &job, unsigned max_attempts)
{
    JobOutcome out;
    out.workload = job.workload;
    out.configSpec = job.configSpec;

    using Clock = std::chrono::steady_clock;
    for (unsigned attempt = 1; attempt <= max_attempts; ++attempt) {
        out.attempts = attempt;
        const Clock::time_point t0 = Clock::now();
        try {
            out.result =
                job.runner
                    ? job.runner(job)
                    : runProgram(workloadByName(job.workload).program(),
                                 job.config, job.opts, job.workload,
                                 job.configSpec);
            out.ok = true;
            out.error.clear();
        } catch (const std::exception &e) {
            out.ok = false;
            out.error = e.what();
        } catch (...) {
            out.ok = false;
            out.error = "unknown exception";
        }
        out.wallSeconds =
            std::chrono::duration<double>(Clock::now() - t0).count();
        if (out.ok)
            break;
    }
    return out;
}

} // namespace

ResultSet
Campaign::run(const CampaignOptions &copts) const
{
    JobPool pool(copts.jobs);
    const unsigned max_attempts =
        copts.maxAttempts ? copts.maxAttempts : 1;

    std::vector<JobOutcome> outcomes(jobList.size());
    ProgressMeter meter(jobList.size(), pool.workers(), copts.progress);

    std::vector<std::function<void()>> tasks;
    tasks.reserve(jobList.size());
    for (size_t i = 0; i < jobList.size(); ++i) {
        tasks.push_back([this, i, max_attempts, &outcomes] {
            outcomes[i] = executeJob(jobList[i], max_attempts);
        });
    }
    pool.run(tasks, [&](size_t i) {
        meter.jobDone(outcomes[i].label(), outcomes[i].ok);
    });
    meter.finish();

    return ResultSet(std::move(outcomes), pool.workers());
}

} // namespace nwsim::exp
