#include "exp/isolate.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <deque>
#include <filesystem>
#include <sstream>

#include <cmath>

#include <fcntl.h>
#include <poll.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include "ckpt/checkpoint.hh"
#include "common/error.hh"
#include "common/logging.hh"
#include "exp/bundle.hh"
#include "exp/wire.hh"
#include "pipeline/flight_recorder.hh"

namespace nwsim::exp
{

namespace
{

using Clock = std::chrono::steady_clock;

// ---- in-child crash dumping ---------------------------------------------

const FlightRecorder *gCrashRecorder = nullptr;
const std::string *gCrashEventsPath = nullptr;
volatile sig_atomic_t gCrashEntered = 0;

void
writeAllFd(int fd, const char *p, size_t left)
{
    while (left) {
        const ssize_t n = ::write(fd, p, left);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return;
        }
        p += static_cast<size_t>(n);
        left -= static_cast<size_t>(n);
    }
}

/**
 * Fatal-signal handler armed only inside isolated children: spill the
 * job's flight recorder into its reproducer bundle, then re-raise with
 * the default disposition so the parent's waitpid sees the real signal.
 * FlightRecorder::dump allocates, which is not async-signal-safe — this
 * process is dying either way, so the worst case is a bundle without
 * events.log, never a corrupted campaign.
 */
void
crashHandler(int sig)
{
    if (!gCrashEntered) {
        gCrashEntered = 1;
        if (gCrashRecorder && gCrashEventsPath) {
            const std::string text = gCrashRecorder->dump();
            const int fd =
                ::open(gCrashEventsPath->c_str(),
                       O_CREAT | O_WRONLY | O_TRUNC, 0644);
            if (fd >= 0) {
                writeAllFd(fd, text.data(), text.size());
                ::close(fd);
            }
        }
    }
    ::signal(sig, SIG_DFL);
    ::raise(sig);
}

void
armCrashHandlers()
{
    // SIGABRT included: the parent's soft timeout kill is SIGABRT, so a
    // hung job dumps its recorder before dying, and so does a
    // std::terminate. SIGXCPU included: the soft CPU rlimit fires it,
    // and the recorder shows what the runaway job was doing. SIGKILL
    // (the hard kill) is not catchable by design.
    static const int signals[] = {SIGSEGV, SIGBUS, SIGILL, SIGFPE,
                                  SIGABRT, SIGXCPU};
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = crashHandler;
    sigemptyset(&sa.sa_mask);
    for (int sig : signals)
        sigaction(sig, &sa, nullptr);
}

/**
 * SIGTERM inside a child is a graceful-shutdown request, not a crash:
 * raise the checkpoint interrupt flag and let the simulation reach its
 * next safe point, write a final checkpoint, and report an Interrupted
 * outcome (exit code 9) through the normal pipe path.
 */
void
termHandler(int)
{
    ckpt::requestInterrupt();
}

void
armTermHandler()
{
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = termHandler;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = SA_RESTART;
    sigaction(SIGTERM, &sa, nullptr);
}

/** Child side of the taxonomy: the _exit code for a terminal outcome. */
int
outcomeExitCode(const JobOutcome &o)
{
    if (o.ok)
        return exitcode::Ok;
    if (o.status == JobStatus::Interrupted)
        return exitcode::Interrupted;
    if (o.status == JobStatus::Timeout)
        return exitcode::Timeout;
    if (o.status == JobStatus::Crashed)
        return exitcode::Crash;
    switch (o.errorKind) {
    case FailKind::BadInput:
        return exitcode::BadInput;
    case FailKind::ResourceLimit:
        return exitcode::ResourceLimit;
    case FailKind::Internal:
        return exitcode::Internal;
    default:
        return exitcode::Failure;
    }
}

/**
 * Cap this (child) process with the per-job rlimits. RLIMIT_AS rather
 * than RLIMIT_RSS: modern kernels ignore RSS limits, while an
 * address-space cap turns a runaway allocation into a clean
 * std::bad_alloc inside the child — which the retry loop classifies as
 * a resource-limit failure — before the host starts paging. The CPU
 * cap's soft limit delivers SIGXCPU (caught, recorder dumped,
 * re-raised); the hard limit is one second later as a backstop.
 */
void
applyJobRlimits(const CampaignOptions &copts)
{
    if (copts.rlimitMemMb > 0) {
        struct rlimit rl;
        rl.rlim_cur = rl.rlim_max = copts.rlimitMemMb << 20;
        setrlimit(RLIMIT_AS, &rl);
    }
    if (copts.rlimitCpuSeconds > 0) {
        const rlim_t secs = static_cast<rlim_t>(
            std::max(1.0, std::ceil(copts.rlimitCpuSeconds)));
        struct rlimit rl;
        rl.rlim_cur = secs;
        rl.rlim_max = secs + 1;
        setrlimit(RLIMIT_CPU, &rl);
    }
}

[[noreturn]] void
childRun(const SimJob &job, size_t job_index,
         const CampaignOptions &copts, int out_fd)
{
    // Pre-create the bundle directory so the crash handler only needs
    // open()/write() on the way down.
    if (!copts.bundleDir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(
            bundlePathFor(copts.bundleDir, job), ec);
    }
    applyJobRlimits(copts);
    armCrashHandlers();
    armTermHandler();

    const JobOutcome out = executeJobWithRetries(job, job_index, copts);
    const std::string blob = packJobOutcome(out);
    writeAllFd(out_fd, blob.data(), blob.size());
    ::close(out_fd);
    // _Exit, not exit: static destructors and atexit handlers belong to
    // the parent image and must not run twice.
    std::_Exit(outcomeExitCode(out));
}

// ---- parent-side bookkeeping --------------------------------------------

struct ChildProc
{
    pid_t pid = -1;
    int fd = -1;
    size_t jobIdx = 0;
    std::string buf;
    Clock::time_point start;
    Clock::time_point deadline;  ///< soft kill (SIGABRT) when armed
    Clock::time_point killAt;    ///< hard kill (SIGKILL) once timed out
    bool deadlineArmed = false;
    bool timedOut = false;
};

int
reapStatus(pid_t pid)
{
    int status = 0;
    while (waitpid(pid, &status, 0) < 0 && errno == EINTR) {
    }
    return status;
}

std::string
signalLabel(int sig)
{
#if defined(__GLIBC__) && __GLIBC__ >= 2 && __GLIBC_MINOR__ >= 32
    if (const char *abbrev = sigabbrev_np(sig))
        return std::string("SIG") + abbrev;
#endif
    return "signal " + std::to_string(sig);
}

} // namespace

void
setCrashDump(const FlightRecorder *recorder,
             const std::string *events_path)
{
    gCrashRecorder = recorder;
    gCrashEventsPath = events_path;
}

std::pair<pid_t, int>
forkIsolatedJob(const SimJob &job, size_t job_index,
                const CampaignOptions &copts,
                const std::vector<int> &child_close_fds)
{
    int fds[2];
    if (pipe(fds) < 0) {
        throw ResourceLimitError(std::string("pipe: ") +
                                 std::strerror(errno));
    }
    const pid_t pid = fork();
    if (pid == 0) {
        ::close(fds[0]);
        for (const int fd : child_close_fds)
            ::close(fd);
        childRun(job, job_index, copts, fds[1]); // never returns
    }
    if (pid < 0) {
        const int err = errno;
        ::close(fds[0]);
        ::close(fds[1]);
        throw ResourceLimitError(std::string("fork: ") +
                                 std::strerror(err));
    }
    ::close(fds[1]);
    return {pid, fds[0]};
}

JobOutcome
classifyIsolatedExit(const SimJob &job, int wait_status, bool timed_out,
                     double wall_seconds, const CampaignOptions &copts)
{
    JobOutcome out;
    out.workload = job.workload;
    out.configSpec = job.outcomeSpec();
    out.ok = false;
    out.attempts = 1;
    out.wallSeconds = wall_seconds;

    if (timed_out) {
        out.status = JobStatus::Timeout;
        out.errorKind = FailKind::ResourceLimit;
        std::ostringstream msg;
        msg << "timed out: exceeded " << copts.timeoutSeconds
            << "s wall-clock limit";
        out.error = msg.str();
    } else if (WIFSIGNALED(wait_status) &&
               WTERMSIG(wait_status) == SIGXCPU &&
               copts.rlimitCpuSeconds > 0) {
        // The per-job CPU rlimit fired: a runaway job, classified —
        // not a simulator crash.
        out.status = JobStatus::Failed;
        out.errorKind = FailKind::ResourceLimit;
        out.termSignal = SIGXCPU;
        std::ostringstream msg;
        msg << "resource limit: exceeded " << copts.rlimitCpuSeconds
            << "s CPU limit (SIGXCPU)";
        out.error = msg.str();
    } else if (WIFSIGNALED(wait_status)) {
        out.status = JobStatus::Crashed;
        out.errorKind = FailKind::Internal;
        out.termSignal = WTERMSIG(wait_status);
        out.error =
            "isolated job killed by " + signalLabel(out.termSignal);
    } else {
        const int code = WIFEXITED(wait_status)
                             ? WEXITSTATUS(wait_status)
                             : -1;
        out.status = JobStatus::Failed;
        out.errorKind = FailKind::Internal;
        out.error = "isolated job exited with code " +
                    std::to_string(code) +
                    " without reporting an outcome";
    }

    // The child died without reporting an outcome, so the last durable
    // checkpoint — if the job was writing them — is only discoverable
    // from disk. Probe it (header + checksum validation, payload
    // discarded) so retries and journal readers know where the job can
    // restart from.
    if (!copts.ckptDir.empty() && job.opts.ckptEveryInsts > 0) {
        const std::string path = ckptPathFor(copts.ckptDir, job.label());
        ckpt::CheckpointMeta meta;
        if (ckpt::checkpointExists(path) &&
            ckpt::probeCheckpoint(path, meta) ==
                ckpt::WireError::None &&
            meta.matches(job.workload, job.configSpec)) {
            out.ckptPath = path;
            out.ckptPosition = meta.position;
        }
    }

    // The child's crash handler may already have dropped events.log in
    // the bundle directory; this fills in MANIFEST.txt around it.
    if (!copts.bundleDir.empty()) {
        out.bundlePath =
            writeReproducerBundle(copts.bundleDir, job, out, "");
    }
    return out;
}

void
runJobsIsolated(const std::vector<SimJob> &jobs,
                const std::vector<size_t> &indices,
                const CampaignOptions &copts, unsigned workers,
                std::vector<JobOutcome> &outcomes,
                const std::function<void(size_t)> &on_done)
{
    std::deque<size_t> pending(indices.begin(), indices.end());
    std::vector<ChildProc> active;
    const auto grace = std::chrono::seconds(2);

    auto spawn = [&](size_t idx) {
        std::pair<pid_t, int> child;
        try {
            child = forkIsolatedJob(jobs[idx], idx, copts);
        } catch (const SimError &e) {
            JobOutcome out;
            out.workload = jobs[idx].workload;
            out.configSpec = jobs[idx].outcomeSpec();
            out.status = JobStatus::Failed;
            out.errorKind = FailKind::ResourceLimit;
            out.attempts = 1;
            out.error = e.what();
            outcomes[idx] = std::move(out);
            if (on_done)
                on_done(idx);
            return;
        }
        ChildProc c;
        c.pid = child.first;
        c.fd = child.second;
        c.jobIdx = idx;
        c.start = Clock::now();
        if (copts.timeoutSeconds > 0) {
            c.deadline =
                c.start + std::chrono::duration_cast<Clock::duration>(
                              std::chrono::duration<double>(
                                  copts.timeoutSeconds));
            c.deadlineArmed = true;
        }
        active.push_back(std::move(c));
    };

    auto finalize = [&](ChildProc &c) {
        ::close(c.fd);
        const int status = reapStatus(c.pid);
        JobOutcome out;
        if (!c.timedOut && unpackJobOutcome(c.buf, out)) {
            outcomes[c.jobIdx] = std::move(out);
        } else {
            outcomes[c.jobIdx] = classifyIsolatedExit(
                jobs[c.jobIdx], status, c.timedOut,
                std::chrono::duration<double>(Clock::now() - c.start)
                    .count(),
                copts);
        }
        if (on_done)
            on_done(c.jobIdx);
    };

    while (!pending.empty() || !active.empty()) {
        while (active.size() < workers && !pending.empty()) {
            spawn(pending.front());
            pending.pop_front();
        }
        if (active.empty())
            continue; // every spawn failed; loop drains pending

        std::vector<pollfd> fds(active.size());
        for (size_t i = 0; i < active.size(); ++i)
            fds[i] = {active[i].fd, POLLIN, 0};

        int timeout_ms = -1;
        const Clock::time_point now = Clock::now();
        for (const ChildProc &c : active) {
            if (!c.deadlineArmed)
                continue;
            const Clock::time_point next =
                c.timedOut ? c.killAt : c.deadline;
            const auto left =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    next - now)
                    .count();
            const int ms = static_cast<int>(std::max<long long>(0, left));
            if (timeout_ms < 0 || ms < timeout_ms)
                timeout_ms = ms;
        }

        const int rc = poll(fds.data(), fds.size(), timeout_ms);
        if (rc < 0 && errno != EINTR)
            NWSIM_PANIC("poll failed in isolated campaign: ",
                        std::strerror(errno));

        // Drain readable pipes; EOF means the child finished or died.
        for (size_t i = active.size(); i-- > 0;) {
            if (!(fds[i].revents & (POLLIN | POLLHUP | POLLERR)))
                continue;
            char chunk[4096];
            const ssize_t n = ::read(active[i].fd, chunk, sizeof(chunk));
            if (n > 0) {
                active[i].buf.append(chunk, static_cast<size_t>(n));
            } else if (n == 0 || (n < 0 && errno != EINTR)) {
                finalize(active[i]);
                active.erase(active.begin() +
                             static_cast<long>(i));
            }
        }

        // Watchdog: soft-kill with SIGABRT first (lets the child's crash
        // handler dump its flight recorder), SIGKILL after a grace
        // period if it is too wedged even for that.
        const Clock::time_point after = Clock::now();
        for (ChildProc &c : active) {
            if (!c.deadlineArmed)
                continue;
            if (!c.timedOut && after >= c.deadline) {
                c.timedOut = true;
                c.killAt = after + grace;
                kill(c.pid, SIGABRT);
            } else if (c.timedOut && after >= c.killAt) {
                kill(c.pid, SIGKILL);
                c.killAt = after + grace; // re-arm; kill is idempotent
            }
        }
    }
}

} // namespace nwsim::exp
