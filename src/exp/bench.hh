/**
 * @file
 * Self-profiling simulation-speed benchmark (docs/PERF.md): runs a
 * workload × config grid through the campaign engine twice — once with
 * the decode caches on (the default), once decoding every instruction
 * (`+nodecodecache` modifier) — and reports host-side simulation speed
 * (KIPS: thousands of detailed-mode committed instructions per
 * wall-clock second) plus the end-to-end speedup and decode-cache hit
 * rates. `nwsim bench` drives this and emits BENCH_simspeed.json so
 * the repo's perf trajectory is recorded run over run.
 */

#ifndef NWSIM_EXP_BENCH_HH
#define NWSIM_EXP_BENCH_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "driver/runner.hh"
#include "exp/result_set.hh"

namespace nwsim::exp
{

/** What to measure and how. */
struct BenchOptions
{
    /** Workload names; empty = every registered workload. */
    std::vector<std::string> workloads;
    /** Config specs; empty = the Figure 10/11 grid. */
    std::vector<std::string> configs;
    /** Warmup/measure window per job. */
    RunOptions runOpts;
    /**
     * Worker threads. Defaults to 1: speed numbers from serial runs are
     * reproducible and unaffected by core contention; raise it only for
     * quick relative comparisons.
     */
    unsigned jobs = 1;
    /** Also time `+nodecodecache` runs and report the speedup. */
    bool compareUncached = true;
    /**
     * Also time the sampled grid with superblock traces disabled
     * (`+notrace`), the A/B for the trace layer: fast-forward streams
     * dominate sampled wall-clock, so effective KIPS traced vs
     * untraced is the trace speedup. No effect unless compareSampled.
     */
    bool compareNoTrace = true;
    /**
     * Also time the grid in sampled mode (docs/SAMPLING.md): the same
     * stream budget covered by `+sampleModifier` probes, reporting
     * effective KIPS (stream instructions per wall second).
     */
    bool compareSampled = true;
    /** Schedule appended to each spec for the sampled variant. */
    std::string sampleModifier = "sample=50000:2000:8000";
    /** Campaign progress stream (nullptr = silent). */
    std::ostream *progress = nullptr;
};

/** Whole-grid totals for one variant. */
struct BenchAggregate
{
    size_t jobs = 0;
    size_t failed = 0;
    /** Sum of per-job host wall-clock, seconds. */
    double seconds = 0.0;
    /** Detailed-mode committed instructions, thousands. */
    double committedKinsts = 0.0;
    /** Functional-stream instructions covered (sampled runs only). */
    double streamKinsts = 0.0;
    u64 simCycles = 0;
    /** Decode-cache counters summed over the grid (host metric). */
    DecodeCacheStats decode;
    /** Superblock trace counters summed over the grid (host metric). */
    SuperblockStats superblock;

    double
    kips() const
    {
        return seconds > 0.0 ? committedKinsts / seconds : 0.0;
    }

    /** Workload progress per wall second: a sampled run's headline
     *  (thousands of stream instructions covered per second). */
    double
    effectiveKips() const
    {
        return seconds > 0.0 ? streamKinsts / seconds : 0.0;
    }

    double
    cyclesPerSecond() const
    {
        return seconds > 0.0 ? static_cast<double>(simCycles) / seconds
                             : 0.0;
    }
};

/** Grid totals of one variant's outcomes. */
BenchAggregate benchAggregate(const ResultSet &results);

/** The measurement: each variant's outcomes plus the resolved grid. */
struct BenchReport
{
    /** Options as resolved (workload/config defaults filled in). */
    BenchOptions options;
    /** Decode-cached outcomes (the default configuration). */
    ResultSet event;
    /** `+nodecodecache` outcomes (empty unless compareUncached). */
    ResultSet uncached;
    /** Sampled-mode outcomes (empty unless options.compareSampled). */
    ResultSet sampled;
    /** Sampled `+notrace` outcomes (compareSampled && compareNoTrace). */
    ResultSet sampledNoTrace;

    bool
    compareNoTrace() const
    {
        return options.compareSampled && options.compareNoTrace;
    }

    bool
    ok() const
    {
        return event.allOk() &&
               (!options.compareUncached || uncached.allOk()) &&
               (!options.compareSampled || sampled.allOk()) &&
               (!compareNoTrace() || sampledNoTrace.allOk());
    }

    /** End-to-end wall-clock speedup, uncached / event (0 if unknown). */
    double
    speedup() const
    {
        const double ev = benchAggregate(event).seconds;
        const double un = benchAggregate(uncached).seconds;
        return (ev > 0.0 && un > 0.0) ? un / ev : 0.0;
    }

    /** Effective-KIPS speedup of traced over `+notrace` sampled runs
     *  (0 if the notrace variant didn't run). */
    double
    traceSpeedupEffective() const
    {
        const double tr = benchAggregate(sampled).effectiveKips();
        const double nt =
            benchAggregate(sampledNoTrace).effectiveKips();
        return (tr > 0.0 && nt > 0.0) ? tr / nt : 0.0;
    }
};

/**
 * Run the grid (decode-cached first, then uncached so host cache warmth
 * biases against the reported speedup, keeping the number conservative).
 */
BenchReport runSpeedBench(const BenchOptions &options);

/** Emit the BENCH_simspeed.json document (schema in docs/PERF.md). */
void writeBenchJson(std::ostream &os, const BenchReport &report);

/**
 * One metric's old-vs-new comparison from `nwsim bench --compare`:
 * a headline speed number of one variant, paired with the value the
 * reference BENCH_simspeed.json recorded for it.
 */
struct BenchDelta
{
    /** Variant key ("event", "uncached", "sampled", ...). */
    std::string variant;
    /** Metric key within the variant ("kips", "effective_kips"). */
    std::string metric;
    double oldValue = 0.0;
    double newValue = 0.0;

    /** Percent change, new over old (negative = slower). */
    double
    deltaPercent() const
    {
        return oldValue > 0.0
                   ? 100.0 * (newValue / oldValue - 1.0)
                   : 0.0;
    }

    /** Slower than the reference by more than @p threshold_pct. */
    bool
    regressed(double threshold_pct) const
    {
        return deltaPercent() < -threshold_pct;
    }
};

/**
 * Diff @p report against a previously written BENCH_simspeed.json
 * document (`nwsim bench --compare old.json`): for every variant
 * present in both, pair the headline speed metrics — kips for every
 * variant, effective_kips for the sampled ones. Variants missing from
 * either side are skipped, so reports from before a schema extension
 * still compare.
 */
std::vector<BenchDelta> compareBenchJson(const std::string &old_doc,
                                         const BenchReport &report);

} // namespace nwsim::exp

#endif // NWSIM_EXP_BENCH_HH
