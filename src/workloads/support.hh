/**
 * @file
 * Shared helpers for the workload kernels: register aliases,
 * deterministic input-data generators, and the common checksum/halt
 * epilogue every kernel ends with.
 */

#ifndef NWSIM_WORKLOADS_SUPPORT_HH
#define NWSIM_WORKLOADS_SUPPORT_HH

#include <vector>

#include "asm/assembler.hh"
#include "common/rng.hh"

namespace nwsim::wk
{

// Readable register aliases for hand-written kernels. r26 is the return
// address, r30 the stack pointer, r31 zero (see common/types.hh).
constexpr RegIndex t0 = 1, t1 = 2, t2 = 3, t3 = 4, t4 = 5, t5 = 6,
                   t6 = 7, t7 = 8, t8 = 9, t9 = 10, t10 = 11, t11 = 12;
constexpr RegIndex s0 = 16, s1 = 17, s2 = 18, s3 = 19, s4 = 20, s5 = 21,
                   s6 = 22, s7 = 23, s8 = 24, s9 = 25;
constexpr RegIndex a0 = 13, a1 = 14, a2 = 15, v0 = 27;

/** Deterministic byte vector in [lo, hi]. */
std::vector<u8> randomBytes(u64 seed, size_t count, u8 lo = 0,
                            u8 hi = 255);

/** Deterministic 16-bit vector in [lo, hi] (signed range allowed). */
std::vector<i16> randomSamples(u64 seed, size_t count, i16 lo, i16 hi);

/** Emit a byte array at @p label. */
void emitBytes(Assembler &as, const std::string &label,
               const std::vector<u8> &bytes);

/** Emit a 16-bit little-endian array at @p label. */
void emitWords(Assembler &as, const std::string &label,
               const std::vector<i16> &words);

/** Emit a u64 array at @p label. */
void emitQuads(Assembler &as, const std::string &label,
               const std::vector<u64> &quads);

/** Reserve the 8-byte "checksum" slot every kernel writes before HALT. */
void declareChecksum(Assembler &as);

/**
 * Standard epilogue: store @p value_reg to the checksum slot (clobbering
 * @p scratch with its address) and halt.
 */
void storeChecksumAndHalt(Assembler &as, RegIndex value_reg,
                          RegIndex scratch);

} // namespace nwsim::wk

#endif // NWSIM_WORKLOADS_SUPPORT_HH
