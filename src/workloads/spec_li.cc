/**
 * @file
 * `xlisp` proxy: cons-cell list construction, recursive reduction, and
 * filtering.
 *
 * Cells are {value, next} pairs carved from an arena above 2^32, so the
 * kernel chases 33-bit pointers while the boxed values stay tiny —
 * lisp's classic operand profile. The recursive sum exercises the
 * return-address stack through real call/return pairs.
 */

#include "workloads/kernels.hh"
#include "workloads/support.hh"

namespace nwsim
{

namespace
{

constexpr unsigned listLen = 2000;
constexpr u64 listSeed = 0x115b;

std::vector<u64>
listValues()
{
    SplitMix64 rng(listSeed);
    std::vector<u64> vals(listLen);
    for (auto &v : vals)
        v = rng.below(1000);
    return vals;
}

} // namespace

u64
liReference(unsigned reps)
{
    const std::vector<u64> vals = listValues();
    u64 checksum = 0;
    for (unsigned rep = 0; rep < reps; ++rep) {
        // cons the list (front insertion), recursive sum, filter odds,
        // sum the filtered list.
        u64 sum = 0;
        for (const u64 v : vals)
            sum += v + rep;
        u64 odd_sum = 0;
        u64 odd_count = 0;
        for (const u64 v : vals) {
            if ((v + rep) & 1) {
                odd_sum += v + rep;
                ++odd_count;
            }
        }
        checksum += sum + 3 * odd_sum + odd_count;
    }
    return checksum;
}

Workload
makeLi(unsigned reps)
{
    Workload w;
    w.name = "li";
    w.suite = "spec";
    w.description = "cons-cell list interpreter core (SPECint95 xlisp "
                    "proxy)";
    w.build = [reps](Assembler &as) {
        using namespace wk;
        // s0=values array, s1=arena, s2=reps counter, s3=checksum,
        // s4=rep index (0..reps-1), s5=list head, s6=arena cursor.
        as.la(s0, "values");
        as.la(s1, "arena");
        as.li(s2, static_cast<i64>(reps));
        as.li(s3, 0);
        as.li(s4, 0);

        as.label("rep");
        as.beq(s2, "done");

        // ---- cons the list: head = nil; for i: head = cons(v+rep, head)
        as.li(s5, 0);                      // head = nil (0)
        as.mov(s6, s1);                    // arena cursor
        as.li(t0, listLen);                // i
        as.mov(t1, s0);                    // value cursor
        as.label("cons_loop");
        as.ldq(t2, 0, t1);                 // v
        as.add(t2, t2, s4);                // v + rep
        as.stq(t2, 0, s6);                 // cell.value
        as.stq(s5, 8, s6);                 // cell.next = head
        as.mov(s5, s6);                    // head = cell
        as.addi(s6, s6, 16);
        as.addi(t1, t1, 8);
        as.subi(t0, t0, 1);
        as.bne(t0, "cons_loop");

        // ---- recursive sum: a0 = head -> v0 = sum ----------------------
        as.mov(a0, s5);
        as.call("sum_list");
        as.add(s3, s3, v0);                // checksum += sum

        // ---- filter odds into a new list, count them -------------------
        as.mov(t1, s5);                    // walker
        as.li(s7, 0);                      // filtered head
        as.li(s8, 0);                      // odd count
        as.label("filt_loop");
        as.beq(t1, "filt_done");
        as.ldq(t2, 0, t1);                 // value
        as.andi(t3, t2, 1);
        as.beq(t3, "filt_next");
        as.stq(t2, 0, s6);                 // new cell
        as.stq(s7, 8, s6);
        as.mov(s7, s6);
        as.addi(s6, s6, 16);
        as.addi(s8, s8, 1);
        as.label("filt_next");
        as.ldq(t1, 8, t1);                 // walker = next
        as.br("filt_loop");
        as.label("filt_done");

        // ---- recursive sum of the filtered list, weighted 3x ------------
        as.mov(a0, s7);
        as.call("sum_list");
        as.muli(t4, v0, 3);
        as.add(s3, s3, t4);
        as.add(s3, s3, s8);                // + odd count

        as.addi(s4, s4, 1);
        as.subi(s2, s2, 1);
        as.br("rep");

        as.label("done");
        storeChecksumAndHalt(as, s3, t0);

        // ---- u64 sum_list(cell *a0): recursive ------------------------
        // if (!a0) return 0; return a0->value + sum_list(a0->next);
        as.label("sum_list");
        as.bne(a0, "sl_rec");
        as.li(v0, 0);
        as.ret();
        as.label("sl_rec");
        as.subi(spReg, spReg, 16);
        as.stq(raReg, 0, spReg);           // save ra
        as.ldq(t5, 0, a0);                 // value
        as.stq(t5, 8, spReg);              // save value
        as.ldq(a0, 8, a0);                 // next
        as.call("sum_list");
        as.ldq(t5, 8, spReg);
        as.add(v0, v0, t5);
        as.ldq(raReg, 0, spReg);
        as.addi(spReg, spReg, 16);
        as.ret();

        emitQuads(as, "values", listValues());
        as.alignData(16);
        as.dataLabel("arena");
        as.dataZeros(2 * listLen * 16 + 64);
        declareChecksum(as);
    };
    return w;
}

} // namespace nwsim
