/**
 * @file
 * `m88ksim` proxy: a bytecode-VM interpreter (a simulator simulating a
 * simulator, like the original Motorola 88K simulator running
 * dhrystone).
 *
 * Dispatch goes through an in-memory jump table via indirect jumps,
 * exercising the BTB; VM registers live in memory; the guest program is
 * a deterministic arithmetic loop.
 */

#include "workloads/kernels.hh"
#include "workloads/support.hh"

namespace nwsim
{

namespace
{

enum VmOp : u8
{
    VM_HALT = 0,
    VM_LI,
    VM_ADD,
    VM_SUB,
    VM_XOR,
    VM_AND,
    VM_SHL,
    VM_SHR,
    VM_ADDI,
    VM_BNZ,
    VM_MULL,
    VM_NUM_OPS,
};

constexpr u64 vmSeed = 0x88c;
constexpr unsigned vmBodyOps = 100;
constexpr unsigned vmIterations = 200;

u32
vmEncode(u8 op, u8 a, u8 b, u8 c)
{
    return static_cast<u32>(op) | (static_cast<u32>(a) << 8) |
           (static_cast<u32>(b) << 16) | (static_cast<u32>(c) << 24);
}

std::vector<u32>
vmProgram()
{
    SplitMix64 rng(vmSeed);
    std::vector<u32> prog;
    for (u8 r = 0; r < 7; ++r)
        prog.push_back(vmEncode(VM_LI, r, static_cast<u8>(rng.below(200)),
                                0));
    prog.push_back(vmEncode(VM_LI, 7, vmIterations, 0));
    const size_t loop_start = prog.size();
    for (unsigned i = 0; i < vmBodyOps; ++i) {
        const u8 op = static_cast<u8>(2 + rng.below(VM_NUM_OPS - 2));
        const u8 a = static_cast<u8>(1 + rng.below(6));
        const u8 b = static_cast<u8>(rng.below(8));
        const u8 c = static_cast<u8>(rng.below(8));
        // Keep the loop counter (VM r7) written only by the loop tail.
        prog.push_back(vmEncode(
            op == VM_BNZ ? static_cast<u8>(VM_XOR) : op, a, b, c));
    }
    prog.push_back(vmEncode(VM_ADDI, 7, 7, 0xff));   // counter -= 1
    const i64 disp = static_cast<i64>(loop_start) -
                     static_cast<i64>(prog.size());
    prog.push_back(
        vmEncode(VM_BNZ, 7, static_cast<u8>(disp & 0xff), 0));
    prog.push_back(vmEncode(VM_HALT, 0, 0, 0));
    return prog;
}

/** C++ mirror of the assembly interpreter's semantics. */
u64
vmRun(const std::vector<u32> &prog)
{
    u64 regs[8] = {};
    size_t pc = 0;
    while (true) {
        const u32 w = prog[pc];
        const u8 op = static_cast<u8>(w);
        const u8 a = static_cast<u8>(w >> 8);
        const u8 b = static_cast<u8>(w >> 16);
        const u8 c = static_cast<u8>(w >> 24);
        switch (op) {
          case VM_HALT: {
            u64 x = 0;
            for (const u64 r : regs)
                x ^= r;
            return x;
          }
          case VM_LI:
            regs[a] = b;
            break;
          case VM_ADD:
            regs[a] = regs[b] + regs[c & 7];
            break;
          case VM_SUB:
            regs[a] = regs[b] - regs[c & 7];
            break;
          case VM_XOR:
            regs[a] = regs[b] ^ regs[c & 7];
            break;
          case VM_AND:
            regs[a] = regs[b] & regs[c & 7];
            break;
          case VM_SHL:
            regs[a] = regs[b] << (c & 7);
            break;
          case VM_SHR:
            regs[a] = regs[b] >> (c & 7);
            break;
          case VM_ADDI:
            regs[a] = regs[b] + sext(c, 8);
            break;
          case VM_BNZ:
            if (regs[a] != 0) {
                pc = static_cast<size_t>(static_cast<i64>(pc) +
                                         static_cast<i64>(sext(b, 8)));
                continue;
            }
            break;
          case VM_MULL:
            regs[a] = (regs[b] * regs[c & 7]) & 0xffff;
            break;
          default:
            break;
        }
        ++pc;
    }
}

} // namespace

u64
m88ksimReference(unsigned reps)
{
    const std::vector<u32> prog = vmProgram();
    u64 checksum = 0;
    for (unsigned rep = 0; rep < reps; ++rep)
        checksum += vmRun(prog) + rep;
    return checksum;
}

Workload
makeM88ksim(unsigned reps)
{
    Workload w;
    w.name = "m88ksim";
    w.suite = "spec";
    w.description = "bytecode-VM interpreter (SPECint95 m88ksim proxy)";
    w.build = [reps](Assembler &as) {
        using namespace wk;
        // s0=bytecode, s1=vmregs, s2=jump table, s3=reps, s4=checksum,
        // s5=rep index. t0=vmpc.
        as.la(s0, "bytecode");
        as.la(s1, "vmregs");
        as.la(s2, "jumptab");
        as.li(s3, static_cast<i64>(reps));
        as.li(s4, 0);
        as.li(s5, 0);

        as.label("rep");
        as.beq(s3, "done");
        as.li(t0, 0);                      // vmpc

        as.label("dispatch");
        as.slli(t1, t0, 2);
        as.add(t1, t1, s0);
        as.ldbu(t2, 0, t1);                // op
        as.ldbu(t3, 1, t1);                // a
        as.ldbu(t4, 2, t1);                // b
        as.ldbu(t5, 3, t1);                // c
        as.slli(t6, t2, 3);
        as.add(t6, t6, s2);
        as.ldq(t6, 0, t6);                 // handler address
        as.jmp(zeroReg, t6);

        // Helpers shared by handlers (as emitted C++ lambdas):
        auto vm_read = [&](RegIndex dst, RegIndex idx_reg) {
            as.andi(t8, idx_reg, 7);
            as.slli(t8, t8, 3);
            as.add(t8, t8, s1);
            as.ldq(dst, 0, t8);
        };
        auto vm_write_a = [&](RegIndex src) {
            as.slli(t8, t3, 3);
            as.add(t8, t8, s1);
            as.stq(src, 0, t8);
        };
        auto next = [&] {
            as.addi(t0, t0, 1);
            as.br("dispatch");
        };

        as.label("vh_halt");
        // checksum += xor of VM regs + rep
        as.li(t9, 0);
        for (unsigned r = 0; r < 8; ++r) {
            as.ldq(t8, static_cast<i64>(8 * r), s1);
            as.xor_(t9, t9, t8);
        }
        as.add(s4, s4, t9);
        as.add(s4, s4, s5);
        as.addi(s5, s5, 1);
        as.subi(s3, s3, 1);
        as.br("rep");

        as.label("vh_li");
        vm_write_a(t4);
        next();

        as.label("vh_add");
        vm_read(t9, t4);
        vm_read(t10, t5);
        as.add(t9, t9, t10);
        vm_write_a(t9);
        next();

        as.label("vh_sub");
        vm_read(t9, t4);
        vm_read(t10, t5);
        as.sub(t9, t9, t10);
        vm_write_a(t9);
        next();

        as.label("vh_xor");
        vm_read(t9, t4);
        vm_read(t10, t5);
        as.xor_(t9, t9, t10);
        vm_write_a(t9);
        next();

        as.label("vh_and");
        vm_read(t9, t4);
        vm_read(t10, t5);
        as.and_(t9, t9, t10);
        vm_write_a(t9);
        next();

        as.label("vh_shl");
        vm_read(t9, t4);
        as.andi(t10, t5, 7);
        as.sll(t9, t9, t10);
        vm_write_a(t9);
        next();

        as.label("vh_shr");
        vm_read(t9, t4);
        as.andi(t10, t5, 7);
        as.srl(t9, t9, t10);
        vm_write_a(t9);
        next();

        as.label("vh_addi");
        vm_read(t9, t4);
        as.sextb(t10, t5);
        as.add(t9, t9, t10);
        vm_write_a(t9);
        next();

        as.label("vh_bnz");
        vm_read(t9, t3);
        as.beq(t9, "bnz_not_taken");
        as.sextb(t10, t4);
        as.add(t0, t0, t10);
        as.br("dispatch");
        as.label("bnz_not_taken");
        next();

        as.label("vh_mull");
        vm_read(t9, t4);
        vm_read(t10, t5);
        as.mul(t9, t9, t10);
        as.andi(t9, t9, 0xffff);
        vm_write_a(t9);
        next();

        as.label("done");
        storeChecksumAndHalt(as, s4, t0);

        // ---- Data -------------------------------------------------------
        as.alignData(8);
        as.dataLabel("bytecode");
        for (const u32 word : vmProgram())
            as.dataLong(word);
        as.alignData(8);
        as.dataLabel("vmregs");
        as.dataZeros(8 * 8);
        as.alignData(8);
        as.dataLabel("jumptab");
        for (const char *h :
             {"vh_halt", "vh_li", "vh_add", "vh_sub", "vh_xor", "vh_and",
              "vh_shl", "vh_shr", "vh_addi", "vh_bnz", "vh_mull"}) {
            as.dataQuadSym(h);
        }
        declareChecksum(as);
    };
    return w;
}

} // namespace nwsim
