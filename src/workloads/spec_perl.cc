/**
 * @file
 * `perl` proxy: scrabble-game word scoring over a dictionary (the
 * paper's perl input is a scrabble game).
 *
 * Byte-string traversal, letter-value table lookups, position-dependent
 * multipliers, and running-max comparisons: string-processing integer
 * code with small values throughout.
 */

#include "workloads/kernels.hh"
#include "workloads/support.hh"

namespace nwsim
{

namespace
{

constexpr unsigned numWords = 2000;
constexpr unsigned maxWordLen = 9;      // padded records, NUL-terminated
constexpr u64 perlSeed = 0x9e71;

const u8 letterScores[26] = {1, 3, 3, 2, 1, 4, 2, 4, 1, 8, 5, 1, 3,
                             1, 1, 3, 10, 1, 1, 1, 1, 4, 4, 8, 4, 10};

std::vector<u8>
dictionary()
{
    SplitMix64 rng(perlSeed);
    std::vector<u8> dict(numWords * maxWordLen, 0);
    for (unsigned w = 0; w < numWords; ++w) {
        const unsigned len = 2 + static_cast<unsigned>(rng.below(7));
        for (unsigned i = 0; i < len; ++i)
            dict[w * maxWordLen + i] =
                static_cast<u8>('a' + rng.below(26));
    }
    return dict;
}

} // namespace

u64
perlReference(unsigned reps)
{
    const std::vector<u8> dict = dictionary();
    u64 checksum = 0;
    for (unsigned rep = 0; rep < reps; ++rep) {
        u64 best = 0;
        u64 best_index = 0;
        for (unsigned w = 0; w < numWords; ++w) {
            u64 score = 0;
            for (unsigned i = 0; i < maxWordLen; ++i) {
                const u8 c = dict[w * maxWordLen + i];
                if (c == 0)
                    break;
                u64 s = letterScores[c - 'a'];
                if (i % 3 == 0)
                    s *= 2;             // double-letter squares
                score += s;
            }
            if ((w + rep) % 7 == 0)
                score *= 3;             // triple-word square
            if (score > best) {
                best = score;
                best_index = w;
            }
            checksum += score;
        }
        checksum += best * 5 + best_index;
    }
    return checksum;
}

Workload
makePerl(unsigned reps)
{
    Workload w;
    w.name = "perl";
    w.suite = "spec";
    w.description = "scrabble word scoring (SPECint95 perl proxy)";
    w.build = [reps](Assembler &as) {
        using namespace wk;
        // s0=dict, s1=scores, s2=reps, s3=checksum, s4=rep index.
        as.la(s0, "dict");
        as.la(s1, "scores");
        as.li(s2, static_cast<i64>(reps));
        as.li(s3, 0);
        as.li(s4, 0);

        as.label("rep");
        as.beq(s2, "done");
        as.li(s5, 0);                      // best
        as.li(s6, 0);                      // best_index
        as.li(t0, 0);                      // w
        as.mov(t1, s0);                    // word cursor
        // s7 = (w + rep) mod 7, strength-reduced (one real rem per rep,
        // then a rolling counter — what -O5 would emit).
        as.li(t9, 7);
        as.rem(s7, s4, t9);

        as.label("word_loop");
        as.li(t3, 0);                      // score
        as.li(t4, 0);                      // i
        as.li(t8, 0);                      // i mod 3 (rolling)
        as.label("char_loop");
        as.add(t5, t1, t4);
        as.ldbu(t6, 0, t5);                // c
        as.beq(t6, "word_scored");         // NUL terminator
        as.subi(t6, t6, 'a');
        as.add(t6, t6, s1);
        as.ldbu(t7, 0, t6);                // letter score
        // i % 3 == 0 -> double letter
        as.bne(t8, "no_double");
        as.slli(t7, t7, 1);
        as.label("no_double");
        as.add(t3, t3, t7);
        as.addi(t8, t8, 1);
        as.cmplti(t9, t8, 3);
        as.bne(t9, "mod3_ok");
        as.li(t8, 0);
        as.label("mod3_ok");
        as.addi(t4, t4, 1);
        as.cmplti(t2, t4, maxWordLen);
        as.bne(t2, "char_loop");

        as.label("word_scored");
        // (w + rep) % 7 == 0 -> triple word (rolling counter in s7)
        as.bne(s7, "no_triple");
        as.muli(t3, t3, 3);
        as.label("no_triple");
        as.addi(s7, s7, 1);
        as.cmplti(t9, s7, 7);
        as.bne(t9, "mod7_ok");
        as.li(s7, 0);
        as.label("mod7_ok");
        // best tracking
        as.cmplt(t11, s5, t3);
        as.beq(t11, "not_best");
        as.mov(s5, t3);
        as.mov(s6, t0);
        as.label("not_best");
        as.add(s3, s3, t3);                // checksum += score
        as.addi(t0, t0, 1);
        as.addi(t1, t1, maxWordLen);
        as.cmplti(t2, t0, numWords);
        as.bne(t2, "word_loop");

        as.muli(t2, s5, 5);
        as.add(s3, s3, t2);
        as.add(s3, s3, s6);
        as.addi(s4, s4, 1);
        as.subi(s2, s2, 1);
        as.br("rep");

        as.label("done");
        storeChecksumAndHalt(as, s3, t0);

        emitBytes(as, "dict", dictionary());
        emitBytes(as, "scores",
                  std::vector<u8>(letterScores, letterScores + 26));
        declareChecksum(as);
    };
    return w;
}

} // namespace nwsim
