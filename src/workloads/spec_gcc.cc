/**
 * @file
 * `gcc` proxy: identifier hashing into an open-addressed symbol table.
 *
 * A stream of token references hashes 8-byte identifiers (char-at-a-time
 * shifts and adds on 8-bit data) and probes a 1024-entry table with
 * linear probing — the pointer-and-compare-heavy, branchy profile of a
 * compiler front end.
 */

#include "workloads/kernels.hh"
#include "workloads/support.hh"

namespace nwsim
{

namespace
{

constexpr unsigned numIdents = 2048;
constexpr unsigned identLen = 8;
constexpr unsigned numRefs = 6000;
constexpr unsigned tableSlots = 16384;
constexpr u64 gccSeed = 0x9cc;

std::vector<u8>
identifierBytes()
{
    SplitMix64 rng(gccSeed);
    std::vector<u8> bytes(numIdents * identLen);
    for (auto &b : bytes)
        b = static_cast<u8>('A' + rng.below(52));
    return bytes;
}

std::vector<u16>
referenceStream()
{
    // Zipf-ish skew: a few identifiers dominate, like real token streams.
    SplitMix64 rng(gccSeed ^ 0x5555);
    std::vector<u16> refs(numRefs);
    for (auto &r : refs) {
        const u64 x = rng.below(numIdents);
        r = static_cast<u16>((x * x) / numIdents);
    }
    return refs;
}

u64
hashIdent(const u8 *s)
{
    u64 h = 0;
    for (unsigned i = 0; i < identLen; ++i)
        h = ((h << 5) - h + s[i]) & 0xffffffff;
    return h;
}

} // namespace

u64
gccReference(unsigned reps)
{
    const std::vector<u8> idents = identifierBytes();
    const std::vector<u16> refs = referenceStream();
    std::vector<u64> table(tableSlots, 0);
    u64 checksum = 0;
    for (unsigned rep = 0; rep < reps; ++rep) {
        for (const u16 ref : refs) {
            const u64 h = hashIdent(&idents[ref * identLen]);
            u64 slot = h & (tableSlots - 1);
            u64 probes = 0;
            while (true) {
                const u64 entry = table[slot];
                if (entry == 0) {
                    table[slot] = h + 1;    // insert
                    checksum += slot;
                    break;
                }
                if (entry == h + 1) {       // hit
                    checksum += probes;
                    break;
                }
                slot = (slot + 1) & (tableSlots - 1);
                ++probes;
            }
        }
    }
    return checksum;
}

Workload
makeGcc(unsigned reps)
{
    Workload w;
    w.name = "gcc";
    w.suite = "spec";
    w.description = "token hashing + symbol table (SPECint95 gcc proxy)";
    w.build = [reps](Assembler &as) {
        using namespace wk;
        // s0=idents, s1=refs, s2=table, s3=reps, s4=checksum.
        as.la(s0, "idents");
        as.la(s1, "refs");
        as.la(s2, "symtab");
        as.li(s3, static_cast<i64>(reps));
        as.li(s4, 0);

        as.label("rep");
        as.beq(s3, "done");
        as.li(t0, numRefs);                // remaining refs
        as.mov(t1, s1);                    // ref cursor

        as.label("ref_loop");
        as.ldwu(t2, 0, t1);                // ident index
        as.addi(t1, t1, 2);
        as.slli(t3, t2, 3);                // * identLen
        as.add(t3, t3, s0);                // ident address

        // h = fold of ((h<<5) - h + c) & 0xffffffff over 8 chars
        as.li(t4, 0);
        for (unsigned i = 0; i < identLen; ++i) {
            as.ldbu(t5, static_cast<i64>(i), t3);
            as.slli(t6, t4, 5);
            as.sub(t6, t6, t4);
            as.add(t4, t6, t5);
            // mask to 32 bits: zero-extend via shift pair
            as.slli(t4, t4, 32);
            as.srli(t4, t4, 32);
        }

        as.andi(t6, t4, tableSlots - 1);   // slot
        as.li(t7, 0);                      // probes
        as.addi(t8, t4, 1);                // h + 1

        as.label("probe");
        as.slli(t9, t6, 3);
        as.add(t9, t9, s2);
        as.ldq(t10, 0, t9);
        as.bne(t10, "occupied");
        as.stq(t8, 0, t9);                 // insert
        as.add(s4, s4, t6);                // checksum += slot
        as.br("ref_next");
        as.label("occupied");
        as.sub(t11, t10, t8);
        as.bne(t11, "collide");
        as.add(s4, s4, t7);                // checksum += probes
        as.br("ref_next");
        as.label("collide");
        as.addi(t6, t6, 1);
        as.andi(t6, t6, tableSlots - 1);
        as.addi(t7, t7, 1);
        as.br("probe");

        as.label("ref_next");
        as.subi(t0, t0, 1);
        as.bne(t0, "ref_loop");

        as.subi(s3, s3, 1);
        as.br("rep");

        as.label("done");
        storeChecksumAndHalt(as, s4, t0);

        emitBytes(as, "idents", identifierBytes());
        emitWords(as, "refs", [] {
            std::vector<i16> v;
            for (const u16 r : referenceStream())
                v.push_back(static_cast<i16>(r));
            return v;
        }());
        as.alignData(8);
        as.dataLabel("symtab");
        as.dataZeros(tableSlots * 8);
        declareChecksum(as);
    };
    return w;
}

} // namespace nwsim
