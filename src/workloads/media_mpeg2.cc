/**
 * @file
 * MPEG2-style video codec proxies.
 *
 * Encode: exhaustive +/-2 pixel motion search (8-bit SAD accumulation —
 * the most packable operation mix in the suite) followed by residual
 * energy accounting.
 * Decode: coefficient dequantization, inverse Haar transform,
 * motion-compensated prediction add, and 0..255 clamping.
 */

#include "workloads/kernels.hh"
#include "workloads/support.hh"

namespace nwsim
{

namespace
{

constexpr unsigned frameDim = 128;
constexpr unsigned blockSize = 8;
constexpr i64 searchRange = 2;
constexpr u64 mpegSeed = 0x3e2;

std::vector<u8>
makeFrame(u64 seed)
{
    SplitMix64 rng(seed);
    std::vector<u8> f(frameDim * frameDim);
    int level = 120;
    for (auto &p : f) {
        level += static_cast<int>(rng.range(-7, 7));
        level = std::max(16, std::min(235, level));
        p = static_cast<u8>(level);
    }
    return f;
}

/** Reference frame = current frame shifted by (1, 1) plus noise. */
std::vector<u8>
refFrame()
{
    const std::vector<u8> cur = makeFrame(mpegSeed);
    SplitMix64 rng(mpegSeed ^ 0xf00d);
    std::vector<u8> ref(frameDim * frameDim, 128);
    for (unsigned y = 0; y < frameDim - 1; ++y) {
        for (unsigned x = 0; x < frameDim - 1; ++x) {
            const int noisy = cur[(y + 1) * frameDim + x + 1] +
                              static_cast<int>(rng.range(-3, 3));
            ref[y * frameDim + x] =
                static_cast<u8>(std::max(0, std::min(255, noisy)));
        }
    }
    return ref;
}

/** Quantized coefficient blocks for the decoder (i16, block-major). */
std::vector<i16>
coefBlocks()
{
    SplitMix64 rng(mpegSeed ^ 0xc0ef);
    const unsigned blocks = (frameDim / blockSize) * (frameDim / blockSize);
    std::vector<i16> coefs(blocks * 64, 0);
    for (unsigned b = 0; b < blocks; ++b) {
        // Sparse, low-frequency-heavy coefficients.
        coefs[b * 64] = static_cast<i16>(rng.range(-200, 200));
        for (unsigned i = 1; i < 64; ++i) {
            if (rng.below(4) == 0)
                coefs[b * 64 + i] =
                    static_cast<i16>(rng.range(-20, 20));
        }
    }
    return coefs;
}

} // namespace

u64
mpeg2EncodeReference(unsigned reps)
{
    const std::vector<u8> cur = makeFrame(mpegSeed);
    const std::vector<u8> ref = refFrame();
    u64 checksum = 0;
    for (unsigned rep = 0; rep < reps; ++rep) {
        for (unsigned by = blockSize; by + 2 * blockSize <= frameDim;
             by += blockSize) {
            for (unsigned bx = blockSize; bx + 2 * blockSize <= frameDim;
                 bx += blockSize) {
                u64 best = ~u64{0};
                i64 best_dx = 0, best_dy = 0;
                for (i64 dy = -searchRange; dy <= searchRange; ++dy) {
                    for (i64 dx = -searchRange; dx <= searchRange;
                         ++dx) {
                        u64 sad = 0;
                        for (unsigned y = 0; y < blockSize; ++y) {
                            for (unsigned x = 0; x < blockSize; ++x) {
                                const i64 c =
                                    cur[(by + y) * frameDim + bx + x];
                                const i64 r =
                                    ref[(by + y + dy) * frameDim + bx +
                                        x + dx];
                                const i64 d = c - r;
                                sad += static_cast<u64>(d < 0 ? -d : d);
                            }
                        }
                        if (sad < best) {
                            best = sad;
                            best_dx = dx;
                            best_dy = dy;
                        }
                    }
                }
                checksum += best + static_cast<u64>(best_dx + 2) * 3 +
                            static_cast<u64>(best_dy + 2) * 5;
            }
        }
    }
    return checksum;
}

u64
mpeg2DecodeReference(unsigned reps)
{
    const std::vector<i16> coefs = coefBlocks();
    const std::vector<u8> ref = refFrame();
    u64 checksum = 0;
    const unsigned blocks_per_row = frameDim / blockSize;
    for (unsigned rep = 0; rep < reps; ++rep) {
        const unsigned qshift = rep % 3;
        for (unsigned b = 0; b < blocks_per_row * blocks_per_row; ++b) {
            i64 block[64];
            for (unsigned i = 0; i < 64; ++i)
                block[i] = static_cast<i64>(coefs[b * 64 + i])
                           << qshift;
            // Inverse Haar: three levels, halving on the way back.
            for (unsigned pass = 0; pass < 2; ++pass) {
                const size_t stride = pass == 0 ? 8 : 1;
                for (unsigned lane = 0; lane < 8; ++lane) {
                    const size_t base = pass == 0 ? lane : lane * 8;
                    for (int level = 2; level >= 0; --level) {
                        const unsigned half = 4 >> level;
                        i64 tmp[8];
                        for (unsigned i = 0; i < half; ++i) {
                            const i64 s = block[base + i * stride];
                            const i64 d =
                                block[base + (half + i) * stride];
                            tmp[2 * i] = (s + d) >> 1;
                            tmp[2 * i + 1] = (s - d) >> 1;
                        }
                        for (unsigned i = 0; i < 2 * half; ++i)
                            block[base + i * stride] = tmp[i];
                    }
                }
            }
            // Motion compensation + clamp.
            const unsigned bx = (b % blocks_per_row) * blockSize;
            const unsigned by = (b / blocks_per_row) * blockSize;
            for (unsigned y = 0; y < blockSize; ++y) {
                for (unsigned x = 0; x < blockSize; ++x) {
                    const i64 p = ref[(by + y) * frameDim + bx + x];
                    i64 v = block[y * 8 + x] + p;
                    v = std::max<i64>(0, std::min<i64>(255, v));
                    checksum += static_cast<u64>(v);
                }
            }
        }
    }
    return checksum;
}

Workload
makeMpeg2Encode(unsigned reps)
{
    Workload w;
    w.name = "mpeg2encode";
    w.suite = "media";
    w.description = "MPEG2-style motion search encoding";
    w.build = [reps](Assembler &as) {
        using namespace wk;
        // s0=cur, s1=ref, s2=reps, s3=checksum, s4=by, s5=bx,
        // s6=dy, s7=dx, s8=best, s9=best dx/dy packed.
        as.la(s0, "cur");
        as.la(s1, "ref");
        as.li(s2, static_cast<i64>(reps));
        as.li(s3, 0);

        as.label("rep");
        as.beq(s2, "done");
        as.li(s4, blockSize);              // by

        as.label("by_loop");
        as.cmplei(t0, s4, frameDim - 2 * blockSize);
        as.beq(t0, "rep_end");
        as.li(s5, blockSize);              // bx

        as.label("bx_loop");
        as.cmplei(t0, s5, frameDim - 2 * blockSize);
        as.beq(t0, "by_end");
        as.li(s8, -1);                     // best = ~0 (unsigned max)
        as.li(s9, 0);                      // packed best (dx+2)*3+(dy+2)*5
        as.li(s6, -searchRange);           // dy

        as.label("dy_loop");
        as.cmplei(t0, s6, searchRange);
        as.beq(t0, "search_done");
        as.li(s7, -searchRange);           // dx

        as.label("dx_loop");
        as.cmplei(t0, s7, searchRange);
        as.beq(t0, "dy_next");
        // SAD over the 8x8 block: x fully unrolled with two partial
        // accumulators, y bottom-tested — byte-difference work with
        // plenty of independent narrow adds.
        as.li(t1, 0);                      // sad (even columns)
        as.li(t9, 0);                      // sad (odd columns)
        as.li(t2, 0);                      // y
        as.label("sad_y");
        // cur row address: (by+y)*frameDim + bx
        as.add(t3, s4, t2);
        as.slli(t3, t3, 7);
        as.add(t3, t3, s5);
        as.add(t3, t3, s0);
        // ref row address: (by+y+dy)*frameDim + bx + dx
        as.add(t4, s4, t2);
        as.add(t4, t4, s6);
        as.slli(t4, t4, 7);
        as.add(t4, t4, s5);
        as.add(t4, t4, s7);
        as.add(t4, t4, s1);
        for (unsigned x = 0; x < blockSize; ++x) {
            const RegIndex acc = (x % 2) ? t9 : t1;
            const RegIndex d = (x % 2) ? t10 : t7;
            const RegIndex m = (x % 2) ? t11 : t8;
            as.ldbu(t5, static_cast<i64>(x), t3);
            as.ldbu(t6, static_cast<i64>(x), t4);
            as.sub(d, t5, t6);
            as.srai(m, d, 63);             // abs via mask
            as.xor_(d, d, m);
            as.sub(d, d, m);
            as.add(acc, acc, d);
        }
        as.addi(t2, t2, 1);
        as.cmplti(t0, t2, blockSize);
        as.bne(t0, "sad_y");
        as.add(t1, t1, t9);                // total sad
        // best tracking (unsigned compare)
        as.cmpult(t0, t1, s8);
        as.beq(t0, "dx_next");
        as.mov(s8, t1);
        as.addi(t9, s7, searchRange);      // dx + 2
        as.muli(t9, t9, 3);
        as.addi(t10, s6, searchRange);     // dy + 2
        as.muli(t10, t10, 5);
        as.add(s9, t9, t10);
        as.label("dx_next");
        as.addi(s7, s7, 1);
        as.br("dx_loop");

        as.label("dy_next");
        as.addi(s6, s6, 1);
        as.br("dy_loop");

        as.label("search_done");
        as.add(s3, s3, s8);
        as.add(s3, s3, s9);
        as.addi(s5, s5, blockSize);
        as.br("bx_loop");

        as.label("by_end");
        as.addi(s4, s4, blockSize);
        as.br("by_loop");

        as.label("rep_end");
        as.subi(s2, s2, 1);
        as.br("rep");

        as.label("done");
        storeChecksumAndHalt(as, s3, t0);

        emitBytes(as, "cur", makeFrame(mpegSeed));
        emitBytes(as, "ref", refFrame());
        declareChecksum(as);
    };
    return w;
}

Workload
makeMpeg2Decode(unsigned reps)
{
    Workload w;
    w.name = "mpeg2decode";
    w.suite = "media";
    w.description = "MPEG2-style dequant + inverse transform decoding";
    w.build = [reps](Assembler &as) {
        using namespace wk;
        constexpr unsigned bpr = frameDim / blockSize;  // blocks per row
        // s0=coefs, s1=ref, s2=block scratch, s3=reps, s4=checksum,
        // s5=rep idx, s6=block idx.
        as.la(s0, "coefs");
        as.la(s1, "ref");
        as.la(s2, "block");
        as.li(s3, static_cast<i64>(reps));
        as.li(s4, 0);
        as.li(s5, 0);

        as.label("rep");
        as.beq(s3, "done");
        // qshift = rep % 3
        as.li(t0, 3);
        as.rem(s7, s5, t0);
        as.li(s6, 0);                      // block index

        as.label("blk_loop");
        as.cmplti(t0, s6, bpr * bpr);
        as.beq(t0, "rep_end");

        // ---- Dequantize into the scratch block -------------------------
        as.slli(t1, s6, 7);                // * 64 coefs * 2 bytes
        as.add(t1, t1, s0);
        as.li(t2, 0);                      // i
        as.label("deq");
        for (unsigned u = 0; u < 2; ++u) {
            const RegIndex av = u ? t5 : t3;
            const RegIndex vv = u ? t6 : t4;
            as.addi(av, t2, static_cast<i64>(u));
            as.slli(av, av, 1);
            as.add(av, av, t1);
            as.ldwu(vv, 0, av);
            as.sextw(vv, vv);
            as.sll(vv, vv, s7);            // << qshift
            as.addi(av, t2, static_cast<i64>(u));
            as.slli(av, av, 3);
            as.add(av, av, s2);
            as.stq(vv, 0, av);
        }
        as.addi(t2, t2, 2);
        as.cmplti(t0, t2, 64);
        as.bne(t0, "deq");

        // ---- Inverse Haar: columns then rows ----------------------------
        // a0 = base address, a1 = log2 stride (inverse levels inside).
        // Lane counter lives in s8: ihaar8 clobbers the t registers.
        as.li(s8, 0);                      // lane
        as.label("icol");
        as.cmplti(t0, s8, 8);
        as.beq(t0, "icol_done");
        as.slli(a0, s8, 3);
        as.add(a0, a0, s2);
        as.li(a1, 6);                      // stride 64B (column pass)
        as.call("ihaar8");
        as.addi(s8, s8, 1);
        as.br("icol");
        as.label("icol_done");
        as.li(s8, 0);
        as.label("irow");
        as.cmplti(t0, s8, 8);
        as.beq(t0, "irow_done");
        as.slli(a0, s8, 6);
        as.add(a0, a0, s2);
        as.li(a1, 3);                      // stride 8B (row pass)
        as.call("ihaar8");
        as.addi(s8, s8, 1);
        as.br("irow");
        as.label("irow_done");

        // ---- Motion compensation + clamp + checksum ---------------------
        // bx = (b % bpr) * 8; by = (b / bpr) * 8
        as.andi(t1, s6, bpr - 1);
        as.slli(t1, t1, 3);                // bx
        as.srli(t2, s6, 4);                // b / bpr (bpr == 16)
        as.slli(t2, t2, 3);                // by
        as.li(t3, 0);                      // y
        as.label("mc_y");
        as.add(t4, t2, t3);                // by + y
        as.slli(t4, t4, 7);                // * frameDim
        as.add(t4, t4, t1);                // + bx
        as.add(t4, t4, s1);                // ref row address
        as.slli(t5, t3, 6);                // block row address (8 quads)
        as.add(t5, t5, s2);
        for (unsigned x = 0; x < blockSize; ++x) {
            as.ldbu(t6, static_cast<i64>(x), t4);
            as.ldq(t7, static_cast<i64>(8 * x), t5);
            as.add(t7, t7, t6);
            // clamp to [0, 255]
            as.bge(t7, std::string("cl_lo_ok_") + std::to_string(x));
            as.li(t7, 0);
            as.label(std::string("cl_lo_ok_") + std::to_string(x));
            as.cmplei(t0, t7, 255);
            as.bne(t0, std::string("cl_hi_ok_") + std::to_string(x));
            as.li(t7, 255);
            as.label(std::string("cl_hi_ok_") + std::to_string(x));
            as.add(s4, s4, t7);
        }
        as.addi(t3, t3, 1);
        as.cmplti(t0, t3, blockSize);
        as.bne(t0, "mc_y");

        as.addi(s6, s6, 1);
        as.br("blk_loop");

        as.label("rep_end");
        as.addi(s5, s5, 1);
        as.subi(s3, s3, 1);
        as.br("rep");

        as.label("done");
        storeChecksumAndHalt(as, s4, t0);

        // ---- ihaar8(a0 = base, a1 = log2 stride) ------------------------
        // Inverse of the encoder's butterfly, levels in reverse order:
        // tmp[2i] = (s + d) >> 1; tmp[2i+1] = (s - d) >> 1.
        auto elem_addr = [&](RegIndex dst, unsigned j) {
            as.li(dst, static_cast<i64>(j));
            as.sll(dst, dst, a1);
            as.add(dst, dst, a0);
        };
        as.label("ihaar8");
        for (int level = 2; level >= 0; --level) {
            const unsigned half = 4 >> level;
            for (unsigned i = 0; i < half; ++i) {
                elem_addr(t8, i);
                as.ldq(t9, 0, t8);             // s
                elem_addr(t10, half + i);
                as.ldq(t11, 0, t10);           // d
                as.add(static_cast<RegIndex>(t0 + 2 * i), t9, t11);
                as.srai(static_cast<RegIndex>(t0 + 2 * i),
                        static_cast<RegIndex>(t0 + 2 * i), 1);
                as.sub(static_cast<RegIndex>(t0 + 2 * i + 1), t9, t11);
                as.srai(static_cast<RegIndex>(t0 + 2 * i + 1),
                        static_cast<RegIndex>(t0 + 2 * i + 1), 1);
            }
            for (unsigned i = 0; i < 2 * half; ++i) {
                elem_addr(t8, i);
                as.stq(static_cast<RegIndex>(t0 + i), 0, t8);
            }
        }
        as.ret();

        {
            std::vector<i16> coefs = coefBlocks();
            emitWords(as, "coefs", coefs);
        }
        emitBytes(as, "ref", refFrame());
        as.alignData(8);
        as.dataLabel("block");
        as.dataZeros(64 * 8);
        declareChecksum(as);
    };
    return w;
}

} // namespace nwsim
