/**
 * @file
 * G.721-style ADPCM voice codec proxies (IMA ADPCM state machine):
 * 4-bit code quantization with adaptive step size and predictor.
 *
 * Nearly every value involved — samples, steps, codes, indices — fits in
 * 16 bits, giving the media-suite narrow-operation density behind the
 * paper's Figure 4.
 */

#include "workloads/kernels.hh"
#include "workloads/support.hh"

namespace nwsim
{

namespace
{

constexpr unsigned numSamples = 16000;
constexpr u64 g721Seed = 0x9721;

const i16 stepTable[89] = {
    7,     8,     9,     10,    11,    12,    13,    14,    16,    17,
    19,    21,    23,    25,    28,    31,    34,    37,    41,    45,
    50,    55,    60,    66,    73,    80,    88,    97,    107,   118,
    130,   143,   157,   173,   190,   209,   230,   253,   279,   307,
    337,   371,   408,   449,   494,   544,   598,   658,   724,   796,
    876,   963,   1060,  1166,  1282,  1411,  1552,  1707,  1878,  2066,
    2272,  2499,  2749,  3024,  3327,  3660,  4026,  4428,  4871,  5358,
    5894,  6484,  7132,  7845,  8630,  9493,  10442, 11487, 12635, 13899,
    15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767};

const i8 indexAdjust[8] = {-1, -1, -1, -1, 2, 4, 6, 8};

std::vector<i16>
voice()
{
    SplitMix64 rng(g721Seed);
    std::vector<i16> s(numSamples);
    i64 v = 0;
    for (auto &x : s) {
        v += rng.range(-700, 700);
        v -= v >> 4;                      // leaky integrator
        x = static_cast<i16>(std::max<i64>(
            -30000, std::min<i64>(30000, v)));
    }
    return s;
}

i64
clamp(i64 v, i64 lo, i64 hi)
{
    return std::max(lo, std::min(hi, v));
}

/** One IMA-style quantization step; updates pred/index, returns code. */
u64
adpcmStep(i64 sample, i64 &pred, i64 &index)
{
    const i64 step = stepTable[index];
    i64 diff = sample - pred;
    u64 code = 0;
    if (diff < 0) {
        code = 8;
        diff = -diff;
    }
    i64 s = step;
    if (diff >= s) {
        code |= 4;
        diff -= s;
    }
    s >>= 1;
    if (diff >= s) {
        code |= 2;
        diff -= s;
    }
    s >>= 1;
    if (diff >= s)
        code |= 1;

    i64 vpdiff = step >> 3;
    if (code & 4)
        vpdiff += step;
    if (code & 2)
        vpdiff += step >> 1;
    if (code & 1)
        vpdiff += step >> 2;
    if (code & 8)
        pred -= vpdiff;
    else
        pred += vpdiff;
    pred = clamp(pred, -32768, 32767);
    index = clamp(index + indexAdjust[code & 7], 0, 88);
    return code;
}

/** Reconstruction from a 4-bit code; updates pred/index. */
i64
adpcmDecodeStep(u64 code, i64 &pred, i64 &index)
{
    const i64 step = stepTable[index];
    i64 vpdiff = step >> 3;
    if (code & 4)
        vpdiff += step;
    if (code & 2)
        vpdiff += step >> 1;
    if (code & 1)
        vpdiff += step >> 2;
    if (code & 8)
        pred -= vpdiff;
    else
        pred += vpdiff;
    pred = clamp(pred, -32768, 32767);
    index = clamp(index + indexAdjust[code & 7], 0, 88);
    return pred;
}

std::vector<u8>
codeStream()
{
    // Encode the voice signal once to get a realistic code stream for
    // the decoder workload.
    const std::vector<i16> s = voice();
    std::vector<u8> codes(numSamples);
    i64 pred = 0, index = 0;
    for (unsigned i = 0; i < numSamples; ++i)
        codes[i] = static_cast<u8>(adpcmStep(s[i], pred, index));
    return codes;
}

} // namespace

u64
g721EncodeReference(unsigned reps)
{
    const std::vector<i16> s = voice();
    u64 checksum = 0;
    for (unsigned rep = 0; rep < reps; ++rep) {
        i64 pred = 0, index = 0;
        for (unsigned i = 0; i < numSamples; ++i) {
            const u64 code = adpcmStep(s[i], pred, index);
            checksum += (code << 4) + static_cast<u64>(index);
        }
    }
    return checksum;
}

u64
g721DecodeReference(unsigned reps)
{
    const std::vector<u8> codes = codeStream();
    u64 checksum = 0;
    for (unsigned rep = 0; rep < reps; ++rep) {
        i64 pred = 0, index = 0;
        for (unsigned i = 0; i < numSamples; ++i) {
            const i64 out = adpcmDecodeStep(codes[i], pred, index);
            checksum += static_cast<u64>(out & 0xffff);
        }
    }
    return checksum;
}

namespace
{

/**
 * Emit the shared reconstruction tail: given step in @p step_reg and
 * code in @p code_reg, update pred (s5) and index (s6).
 * Labels get @p tag suffixes so encode/decode can both inline it.
 */
void
emitReconstruct(Assembler &as, RegIndex code_reg, RegIndex step_reg,
                const std::string &tag)
{
    using namespace wk;
    // vpdiff = step>>3 (+ step if bit2, + step>>1 if bit1, + step>>2 if
    // bit0); pred +/-= vpdiff; clamp; index += adjust[code&7]; clamp.
    as.srai(t6, step_reg, 3);              // vpdiff
    as.andi(t7, code_reg, 4);
    as.beq(t7, "no4_" + tag);
    as.add(t6, t6, step_reg);
    as.label("no4_" + tag);
    as.andi(t7, code_reg, 2);
    as.beq(t7, "no2_" + tag);
    as.srai(t8, step_reg, 1);
    as.add(t6, t6, t8);
    as.label("no2_" + tag);
    as.andi(t7, code_reg, 1);
    as.beq(t7, "no1_" + tag);
    as.srai(t8, step_reg, 2);
    as.add(t6, t6, t8);
    as.label("no1_" + tag);
    as.andi(t7, code_reg, 8);
    as.beq(t7, "plus_" + tag);
    as.sub(s5, s5, t6);
    as.br("clamp_" + tag);
    as.label("plus_" + tag);
    as.add(s5, s5, t6);
    as.label("clamp_" + tag);
    as.cmplti(t7, s5, -32768);
    as.beq(t7, "plo_" + tag);
    as.li(s5, -32768);
    as.label("plo_" + tag);
    as.cmplei(t7, s5, 32767);
    as.bne(t7, "phi_" + tag);
    as.li(s5, 32767);
    as.label("phi_" + tag);
    // index adjust
    as.andi(t7, code_reg, 7);
    as.add(t7, t7, s2);                    // + adjust table base
    as.ldbu(t8, 0, t7);
    as.sextb(t8, t8);
    as.add(s6, s6, t8);
    as.bge(s6, "ilo_" + tag);
    as.li(s6, 0);
    as.label("ilo_" + tag);
    as.cmplei(t7, s6, 88);
    as.bne(t7, "ihi_" + tag);
    as.li(s6, 88);
    as.label("ihi_" + tag);
}

} // namespace

Workload
makeG721Encode(unsigned reps)
{
    Workload w;
    w.name = "g721encode";
    w.suite = "media";
    w.description = "G.721-style ADPCM voice compression";
    w.build = [reps](Assembler &as) {
        using namespace wk;
        // s0=samples, s1=step table, s2=index-adjust table, s3=reps,
        // s4=checksum, s5=pred, s6=index.
        as.la(s0, "samples");
        as.la(s1, "steptab");
        as.la(s2, "idxtab");
        as.li(s3, static_cast<i64>(reps));
        as.li(s4, 0);

        as.label("rep");
        as.beq(s3, "done");
        as.li(s5, 0);                      // pred
        as.li(s6, 0);                      // index
        as.li(t0, 0);                      // i

        as.label("sample_loop");
        as.slli(t2, t0, 1);
        as.add(t2, t2, s0);
        as.ldwu(t3, 0, t2);
        as.sextw(t3, t3);                  // sample
        // step = steptab[index]
        as.slli(t4, s6, 1);
        as.add(t4, t4, s1);
        as.ldwu(t4, 0, t4);                // step (always positive)
        // diff / sign / 3-bit quantize
        as.sub(t5, t3, s5);                // diff = sample - pred
        as.li(t9, 0);                      // code
        as.bge(t5, "pos");
        as.li(t9, 8);
        as.sub(t5, zeroReg, t5);           // diff = -diff
        as.label("pos");
        as.mov(t10, t4);                   // s = step
        as.cmplt(t1, t5, t10);
        as.bne(t1, "b4_done");
        as.ori(t9, t9, 4);
        as.sub(t5, t5, t10);
        as.label("b4_done");
        as.srai(t10, t10, 1);
        as.cmplt(t1, t5, t10);
        as.bne(t1, "b2_done");
        as.ori(t9, t9, 2);
        as.sub(t5, t5, t10);
        as.label("b2_done");
        as.srai(t10, t10, 1);
        as.cmplt(t1, t5, t10);
        as.bne(t1, "b1_done");
        as.ori(t9, t9, 1);
        as.label("b1_done");

        emitReconstruct(as, t9, t4, "e");

        // checksum += (code << 4) + index
        as.slli(t7, t9, 4);
        as.add(t7, t7, s6);
        as.add(s4, s4, t7);
        as.addi(t0, t0, 1);
        as.cmplti(t1, t0, numSamples);
        as.bne(t1, "sample_loop");

        as.subi(s3, s3, 1);
        as.br("rep");

        as.label("done");
        storeChecksumAndHalt(as, s4, t0);

        emitWords(as, "samples", voice());
        emitWords(as, "steptab",
                  std::vector<i16>(stepTable, stepTable + 89));
        as.alignData(8);
        as.dataLabel("idxtab");
        for (const i8 a : indexAdjust)
            as.dataByte(static_cast<u8>(a));
        declareChecksum(as);
    };
    return w;
}

Workload
makeG721Decode(unsigned reps)
{
    Workload w;
    w.name = "g721decode";
    w.suite = "media";
    w.description = "G.721-style ADPCM voice decompression";
    w.build = [reps](Assembler &as) {
        using namespace wk;
        // s0=codes, s1=step table, s2=index-adjust, s3=reps,
        // s4=checksum, s5=pred, s6=index.
        as.la(s0, "codes");
        as.la(s1, "steptab");
        as.la(s2, "idxtab");
        as.li(s3, static_cast<i64>(reps));
        as.li(s4, 0);

        as.label("rep");
        as.beq(s3, "done");
        as.li(s5, 0);
        as.li(s6, 0);
        as.li(t0, 0);

        as.label("sample_loop");
        as.add(t2, t0, s0);
        as.ldbu(t9, 0, t2);                // code
        as.slli(t4, s6, 1);
        as.add(t4, t4, s1);
        as.ldwu(t4, 0, t4);                // step

        emitReconstruct(as, t9, t4, "d");

        as.andi(t7, s5, 0xffff);
        as.add(s4, s4, t7);
        as.addi(t0, t0, 1);
        as.cmplti(t1, t0, numSamples);
        as.bne(t1, "sample_loop");

        as.subi(s3, s3, 1);
        as.br("rep");

        as.label("done");
        storeChecksumAndHalt(as, s4, t0);

        emitBytes(as, "codes", codeStream());
        emitWords(as, "steptab",
                  std::vector<i16>(stepTable, stepTable + 89));
        as.alignData(8);
        as.dataLabel("idxtab");
        for (const i8 a : indexAdjust)
            as.dataByte(static_cast<u8>(a));
        declareChecksum(as);
    };
    return w;
}

} // namespace nwsim
