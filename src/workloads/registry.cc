#include "workloads/workload.hh"

#include "asm/assembler.hh"
#include "common/logging.hh"
#include "workloads/kernels.hh"

namespace nwsim
{

Program
Workload::program() const
{
    Assembler as;
    build(as);
    return as.assemble();
}

const std::vector<Workload> &
allWorkloads()
{
    static const std::vector<Workload> workloads = {
        // SPECint95 proxies, paper Table 2 order-ish.
        makeIjpeg(),
        makeM88ksim(),
        makeGo(),
        makeLi(),
        makeCompress(),
        makeGcc(),
        makeVortex(),
        makePerl(),
        // MediaBench proxies, paper Table 3.
        makeGsmEncode(),
        makeGsmDecode(),
        makeMpeg2Encode(),
        makeMpeg2Decode(),
        makeG721Encode(),
        makeG721Decode(),
    };
    return workloads;
}

std::vector<Workload>
suiteWorkloads(const std::string &suite)
{
    std::vector<Workload> out;
    for (const Workload &w : allWorkloads()) {
        if (w.suite == suite)
            out.push_back(w);
    }
    return out;
}

const Workload &
workloadByName(const std::string &name)
{
    for (const Workload &w : allWorkloads()) {
        if (w.name == name)
            return w;
    }
    NWSIM_FATAL("unknown workload: ", name);
}

} // namespace nwsim
