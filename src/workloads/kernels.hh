/**
 * @file
 * Workload factories and their C++ reference implementations.
 *
 * Every factory returns a Workload whose program stores a 64-bit
 * checksum to the "checksum" symbol and halts; the matching *Reference()
 * function computes the same checksum natively so tests can prove the
 * kernel performs the computation it claims (and, differentially, that
 * the pipeline and the functional simulator agree with each other).
 *
 * @p reps scales the dynamic instruction count; the registry defaults
 * are sized so each program comfortably covers the default
 * warmup + measurement window.
 */

#ifndef NWSIM_WORKLOADS_KERNELS_HH
#define NWSIM_WORKLOADS_KERNELS_HH

#include "workloads/workload.hh"

namespace nwsim
{

// ---- SPECint95 proxies (paper Table 2) --------------------------------

/** LZW-style byte-stream compression (compress). */
Workload makeCompress(unsigned reps = 2);
u64 compressReference(unsigned reps = 2);

/** Go-board influence propagation with data-dependent rules (go). */
Workload makeGo(unsigned reps = 45);
u64 goReference(unsigned reps = 45);

/** 8x8 block transform + quantization over an image (ijpeg). */
Workload makeIjpeg(unsigned reps = 2);
u64 ijpegReference(unsigned reps = 2);

/** Cons-cell list building, recursive reduction, filtering (xlisp). */
Workload makeLi(unsigned reps = 8);
u64 liReference(unsigned reps = 8);

/** Bytecode-VM interpreter with jump-table dispatch (m88ksim). */
Workload makeM88ksim(unsigned reps = 3);
u64 m88ksimReference(unsigned reps = 3);

/** Identifier hashing into an open-addressed symbol table (gcc). */
Workload makeGcc(unsigned reps = 3);
u64 gccReference(unsigned reps = 3);

/** Word scoring over a dictionary, scrabble style (perl). */
Workload makePerl(unsigned reps = 6);
u64 perlReference(unsigned reps = 6);

/** Sorted-record store with binary-search queries (vortex). */
Workload makeVortex(unsigned reps = 2);
u64 vortexReference(unsigned reps = 2);

// ---- MediaBench proxies (paper Table 3) --------------------------------

/** GSM-style long-term-prediction speech encoding. */
Workload makeGsmEncode(unsigned reps = 2);
u64 gsmEncodeReference(unsigned reps = 2);

/** GSM-style speech reconstruction. */
Workload makeGsmDecode(unsigned reps = 3);
u64 gsmDecodeReference(unsigned reps = 3);

/** G.721-style ADPCM voice compression. */
Workload makeG721Encode(unsigned reps = 2);
u64 g721EncodeReference(unsigned reps = 2);

/** G.721-style ADPCM voice decompression. */
Workload makeG721Decode(unsigned reps = 3);
u64 g721DecodeReference(unsigned reps = 3);

/** MPEG2-style motion-search + residual transform encoding. */
Workload makeMpeg2Encode(unsigned reps = 2);
u64 mpeg2EncodeReference(unsigned reps = 2);

/** MPEG2-style dequant + inverse transform + motion-comp decoding. */
Workload makeMpeg2Decode(unsigned reps = 2);
u64 mpeg2DecodeReference(unsigned reps = 2);

} // namespace nwsim

#endif // NWSIM_WORKLOADS_KERNELS_HH
