/**
 * @file
 * `vortex` proxy: an object store of sorted fixed-size records served
 * by binary-search queries with field updates.
 *
 * Binary search gives data-dependent, hard-to-predict branches; record
 * addressing gives the 33-bit address-arithmetic population; hit
 * counters give read-modify-write store traffic.
 */

#include "workloads/kernels.hh"
#include "workloads/support.hh"

namespace nwsim
{

namespace
{

constexpr unsigned numRecords = 8192;
constexpr unsigned recordBytes = 32;    // key u32, val u32, hits u32, pad
constexpr unsigned numQueries = 4000;
constexpr u64 vortexSeed = 0x407e;

std::vector<u32>
recordKeys()
{
    // Strictly increasing keys with random gaps.
    SplitMix64 rng(vortexSeed);
    std::vector<u32> keys(numRecords);
    u32 k = 5;
    for (auto &key : keys) {
        k += 3 + static_cast<u32>(rng.below(40));
        key = k;
    }
    return keys;
}

std::vector<u32>
queryKeys()
{
    // Mix of hits (exact keys) and misses.
    const std::vector<u32> keys = recordKeys();
    SplitMix64 rng(vortexSeed ^ 0xabcd);
    std::vector<u32> out(numQueries);
    for (auto &q : out) {
        if (rng.below(3) != 0)
            q = keys[rng.below(numRecords)];
        else
            q = static_cast<u32>(rng.below(keys.back() + 100));
    }
    return out;
}

} // namespace

u64
vortexReference(unsigned reps)
{
    const std::vector<u32> keys = recordKeys();
    const std::vector<u32> queries = queryKeys();
    std::vector<u32> vals(numRecords);
    std::vector<u32> hits(numRecords, 0);
    SplitMix64 rng(vortexSeed ^ 0x77);
    for (auto &v : vals)
        v = static_cast<u32>(rng.below(10000));

    u64 checksum = 0;
    for (unsigned rep = 0; rep < reps; ++rep) {
        for (const u32 q : queries) {
            i64 lo = 0, hi = numRecords - 1;
            bool found = false;
            while (lo <= hi) {
                const i64 mid = (lo + hi) >> 1;
                const u32 k = keys[static_cast<size_t>(mid)];
                if (k == q) {
                    checksum += vals[static_cast<size_t>(mid)];
                    hits[static_cast<size_t>(mid)] += 1;
                    found = true;
                    break;
                }
                if (k < q)
                    lo = mid + 1;
                else
                    hi = mid - 1;
            }
            if (!found)
                checksum += 1;
        }
    }
    for (unsigned r = 0; r < numRecords; ++r)
        checksum += hits[r] * (r & 15);
    return checksum;
}

Workload
makeVortex(unsigned reps)
{
    Workload w;
    w.name = "vortex";
    w.suite = "spec";
    w.description = "record store with binary-search queries (SPECint95 "
                    "vortex proxy)";
    w.build = [reps](Assembler &as) {
        using namespace wk;
        // Record layout: key @0 (u32), val @4 (u32), hits @8 (u32).
        // s0=records, s1=queries, s2=reps, s3=checksum.
        as.la(s0, "records");
        as.la(s1, "queries");
        as.li(s2, static_cast<i64>(reps));
        as.li(s3, 0);

        as.label("rep");
        as.beq(s2, "done");
        as.li(t0, numQueries);
        as.mov(t1, s1);

        as.label("query_loop");
        as.ldl(t2, 0, t1);                 // q
        as.addi(t1, t1, 4);
        as.li(t3, 0);                      // lo
        as.li(t4, numRecords - 1);         // hi

        as.label("search");
        as.cmple(t5, t3, t4);
        as.beq(t5, "miss");
        as.add(t6, t3, t4);
        as.srai(t6, t6, 1);                // mid
        as.slli(t7, t6, 5);                // * recordBytes
        as.add(t7, t7, s0);                // record address
        as.ldl(t8, 0, t7);                 // key
        as.sub(t9, t8, t2);
        as.bne(t9, "not_equal");
        as.ldl(t10, 4, t7);                // val
        as.add(s3, s3, t10);
        as.ldl(t10, 8, t7);                // hits++
        as.addi(t10, t10, 1);
        as.stl(t10, 8, t7);
        as.br("query_next");
        as.label("not_equal");
        as.blt(t9, "go_right");            // key < q
        as.subi(t4, t6, 1);                // hi = mid - 1
        as.br("search");
        as.label("go_right");
        as.addi(t3, t6, 1);                // lo = mid + 1
        as.br("search");

        as.label("miss");
        as.addi(s3, s3, 1);

        as.label("query_next");
        as.subi(t0, t0, 1);
        as.bne(t0, "query_loop");

        as.subi(s2, s2, 1);
        as.br("rep");

        as.label("done");
        // Fold hit counters into the checksum.
        as.li(t0, 0);                      // r
        as.mov(t1, s0);
        as.label("fold");
        as.cmplti(t2, t0, numRecords);
        as.beq(t2, "fold_done");
        as.ldl(t3, 8, t1);
        as.andi(t4, t0, 15);
        as.mul(t5, t3, t4);
        as.add(s3, s3, t5);
        as.addi(t0, t0, 1);
        as.addi(t1, t1, recordBytes);
        as.br("fold");
        as.label("fold_done");
        storeChecksumAndHalt(as, s3, t0);

        // ---- Data: interleaved records ---------------------------------
        {
            const std::vector<u32> keys = recordKeys();
            std::vector<u32> vals(numRecords);
            SplitMix64 rng(vortexSeed ^ 0x77);
            for (auto &v : vals)
                v = static_cast<u32>(rng.below(10000));
            as.alignData(8);
            as.dataLabel("records");
            for (unsigned r = 0; r < numRecords; ++r) {
                as.dataLong(keys[r]);
                as.dataLong(vals[r]);
                as.dataLong(0);            // hits
                as.dataLong(0);            // padding
                as.dataQuad(0);            // payload
                as.dataQuad(0);
            }
            as.alignData(8);
            as.dataLabel("queries");
            for (const u32 q : queryKeys())
                as.dataLong(q);
        }
        declareChecksum(as);
    };
    return w;
}

} // namespace nwsim
