/**
 * @file
 * `go` proxy: influence propagation on a 19x19 board with
 * data-dependent placement/capture rules.
 *
 * The rules branch on local stone patterns, which makes the branches as
 * data-driven (and as poorly predictable) as the original go's move
 * evaluation — the paper singles go out as "notorious for its poor
 * branch prediction". Cell values are tiny (0..3) while board addresses
 * are 33-bit, giving many narrow ops plus the address-calc population.
 */

#include "workloads/kernels.hh"
#include "workloads/support.hh"

namespace nwsim
{

namespace
{

constexpr unsigned boardDim = 21;   // 19x19 playable + border
constexpr u64 boardSeed = 0x60;

std::vector<u8>
goBoard()
{
    SplitMix64 rng(boardSeed);
    std::vector<u8> board(boardDim * boardDim, 3);  // border = 3
    for (unsigned y = 1; y < boardDim - 1; ++y) {
        for (unsigned x = 1; x < boardDim - 1; ++x) {
            const u64 r = rng.below(10);
            board[y * boardDim + x] =
                static_cast<u8>(r < 4 ? 0 : (r < 7 ? 1 : 2));
        }
    }
    return board;
}

} // namespace

u64
goReference(unsigned reps)
{
    std::vector<u8> board = goBoard();
    u64 checksum = 0;
    for (unsigned rep = 0; rep < reps; ++rep) {
        for (unsigned y = 1; y < boardDim - 1; ++y) {
            for (unsigned x = 1; x < boardDim - 1; ++x) {
                const size_t idx = y * boardDim + x;
                const u8 v = board[idx];
                u64 black = 0, white = 0;
                const size_t nbr[4] = {idx - boardDim, idx + boardDim,
                                       idx - 1, idx + 1};
                for (const size_t n : nbr) {
                    if (board[n] == 1)
                        ++black;
                    else if (board[n] == 2)
                        ++white;
                }
                if (v == 0) {
                    if (black >= 3) {
                        board[idx] = 1;
                        checksum += x;
                    } else if (white >= 3) {
                        board[idx] = 2;
                        checksum += y;
                    }
                } else if (v == 1) {
                    if (white > black + 1) {
                        board[idx] = 0;
                        checksum += black;
                    }
                } else if (v == 2) {
                    if (black > white + 1) {
                        board[idx] = 0;
                        checksum += white;
                    }
                }
            }
        }
    }
    return checksum;
}

Workload
makeGo(unsigned reps)
{
    Workload w;
    w.name = "go";
    w.suite = "spec";
    w.description = "board influence propagation (SPECint95 go proxy)";
    w.build = [reps](Assembler &as) {
        using namespace wk;
        as.la(s0, "board");
        as.li(s1, static_cast<i64>(reps));
        as.li(s2, 0);                      // checksum

        as.label("rep");
        as.beq(s1, "done");
        as.li(s3, 1);                      // y

        as.label("yloop");
        as.cmplti(t0, s3, boardDim - 1);
        as.beq(t0, "rep_end");
        as.li(s4, 1);                      // x
        as.muli(s5, s3, boardDim);         // row base index

        as.label("xloop");
        as.add(t1, s5, s4);                // idx
        as.add(t1, t1, s0);                // cell address
        as.ldbu(t2, 0, t1);                // v
        // Count black/white among the four neighbours.
        as.li(t3, 0);                      // black
        as.li(t4, 0);                      // white
        for (const i64 off :
             {-static_cast<i64>(boardDim), static_cast<i64>(boardDim),
              i64{-1}, i64{1}}) {
            as.ldbu(t5, off, t1);
            as.cmpeqi(t6, t5, 1);
            as.add(t3, t3, t6);
            as.cmpeqi(t6, t5, 2);
            as.add(t4, t4, t6);
        }
        as.bne(t2, "occupied");
        // Empty: claim if >= 3 like-coloured neighbours.
        as.cmplti(t6, t3, 3);
        as.bne(t6, "try_white");
        as.li(t7, 1);
        as.stb(t7, 0, t1);
        as.add(s2, s2, s4);                // checksum += x
        as.br("next");
        as.label("try_white");
        as.cmplti(t6, t4, 3);
        as.bne(t6, "next");
        as.li(t7, 2);
        as.stb(t7, 0, t1);
        as.add(s2, s2, s3);                // checksum += y
        as.br("next");

        as.label("occupied");
        as.cmpeqi(t6, t2, 1);
        as.beq(t6, "check_white_stone");
        // Black stone: captured if white > black + 1.
        as.addi(t7, t3, 1);
        as.cmplt(t8, t7, t4);
        as.beq(t8, "next");
        as.stb(zeroReg, 0, t1);
        as.add(s2, s2, t3);                // checksum += black
        as.br("next");
        as.label("check_white_stone");
        as.cmpeqi(t6, t2, 2);
        as.beq(t6, "next");
        as.addi(t7, t4, 1);
        as.cmplt(t8, t7, t3);
        as.beq(t8, "next");
        as.stb(zeroReg, 0, t1);
        as.add(s2, s2, t4);                // checksum += white

        as.label("next");
        as.addi(s4, s4, 1);
        as.cmplti(t0, s4, boardDim - 1);
        as.bne(t0, "xloop");

        as.addi(s3, s3, 1);
        as.br("yloop");

        as.label("rep_end");
        as.subi(s1, s1, 1);
        as.br("rep");

        as.label("done");
        storeChecksumAndHalt(as, s2, t0);

        emitBytes(as, "board", goBoard());
        declareChecksum(as);
    };
    return w;
}

} // namespace nwsim
