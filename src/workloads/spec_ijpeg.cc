/**
 * @file
 * `ijpeg` proxy: 8x8 block transform + quantization over an image.
 *
 * Pixels are bytes, level-shifted to [-128, 127]; a three-level
 * Haar-style butterfly (adds/subs on <= 12-bit intermediates) runs over
 * rows and columns, then coefficients are quantized by per-band shifts.
 * This is the narrow-arithmetic-dominated profile that makes ijpeg the
 * biggest power winner in the paper's Figure 6.
 */

#include "workloads/kernels.hh"
#include "workloads/support.hh"

namespace nwsim
{

namespace
{

constexpr unsigned imageDim = 128;  // 128x128 pixels = 256 blocks
constexpr u64 imageSeed = 0x19e6;

std::vector<u8>
ijpegImage()
{
    // Smooth-ish image: neighbouring pixels correlate, so butterfly
    // differences are small (narrow) like real photographic data.
    SplitMix64 rng(imageSeed);
    std::vector<u8> img(imageDim * imageDim);
    int level = 128;
    for (auto &p : img) {
        level += static_cast<int>(rng.range(-9, 9));
        level = std::max(0, std::min(255, level));
        p = static_cast<u8>(level);
    }
    return img;
}

/** One three-level Haar butterfly pass over 8 values, in place. */
template <typename Vec>
void
haar8(Vec &v, size_t base, size_t stride)
{
    for (unsigned level = 0; level < 3; ++level) {
        const unsigned half = 4 >> level;
        i64 tmp[8];
        for (unsigned i = 0; i < half; ++i) {
            const i64 a = v[base + (2 * i) * stride];
            const i64 b = v[base + (2 * i + 1) * stride];
            tmp[i] = a + b;
            tmp[half + i] = a - b;
        }
        for (unsigned i = 0; i < 2 * half; ++i)
            v[base + i * stride] = tmp[i];
    }
}

} // namespace

u64
ijpegReference(unsigned reps)
{
    const std::vector<u8> img = ijpegImage();
    u64 checksum = 0;
    for (unsigned rep = 0; rep < reps; ++rep) {
        for (unsigned by = 0; by < imageDim; by += 8) {
            for (unsigned bx = 0; bx < imageDim; bx += 8) {
                i64 block[64];
                for (unsigned y = 0; y < 8; ++y)
                    for (unsigned x = 0; x < 8; ++x)
                        block[y * 8 + x] =
                            static_cast<i64>(
                                img[(by + y) * imageDim + bx + x]) -
                            128;
                for (unsigned y = 0; y < 8; ++y)
                    haar8(block, y * 8, 1);
                for (unsigned x = 0; x < 8; ++x)
                    haar8(block, x, 8);
                for (unsigned i = 0; i < 64; ++i) {
                    const unsigned shift = (i % 8) / 2 + (i / 8) / 2;
                    const i64 q = block[i] >> shift;
                    checksum += static_cast<u64>(q < 0 ? -q : q);
                }
            }
        }
    }
    return checksum;
}

Workload
makeIjpeg(unsigned reps)
{
    Workload w;
    w.name = "ijpeg";
    w.suite = "spec";
    w.description = "8x8 transform + quantization (SPECint95 ijpeg proxy)";
    w.build = [reps](Assembler &as) {
        using namespace wk;
        // s0=image, s1=block scratch, s2=reps, s3=checksum,
        // s4=by, s5=bx, s6/s7 loop temps.
        as.la(s0, "image");
        as.la(s1, "block");
        as.li(s2, static_cast<i64>(reps));
        as.li(s3, 0);

        as.label("rep");
        as.beq(s2, "done");
        as.li(s4, 0);                          // by

        as.label("by_loop");
        as.cmplti(t0, s4, imageDim);
        as.beq(t0, "rep_end");
        as.li(s5, 0);                          // bx

        as.label("bx_loop");
        as.cmplti(t0, s5, imageDim);
        as.beq(t0, "by_end");

        // ---- Load block, level shift: block[y*8+x] = pix - 128 -------
        // (bottom-tested; the x direction is fully unrolled)
        as.li(s6, 0);                          // y
        as.label("load_y");
        as.add(t1, s4, s6);                    // by + y
        as.slli(t1, t1, 7);                    // * imageDim (128)
        as.add(t1, t1, s5);                    // + bx
        as.add(t1, t1, s0);                    // pixel row address
        as.slli(t2, s6, 6);                    // y*8 quads = y*64 bytes
        as.add(t2, t2, s1);                    // block row address
        for (unsigned x = 0; x < 8; ++x) {
            as.ldbu(t3, static_cast<i64>(x), t1);
            as.subi(t3, t3, 128);
            as.stq(t3, static_cast<i64>(8 * x), t2);
        }
        as.addi(s6, s6, 1);
        as.cmplti(t0, s6, 8);
        as.bne(t0, "load_y");

        // ---- Row then column butterflies ------------------------------
        // call haar8(base=r13(a0) addr, stride bytes=r14(a1))
        as.li(s6, 0);
        as.label("row_tr");
        as.slli(a0, s6, 6);
        as.add(a0, a0, s1);
        as.li(a1, 3);                          // log2(row stride 8B)
        as.call("haar8");
        as.addi(s6, s6, 1);
        as.cmplti(t0, s6, 8);
        as.bne(t0, "row_tr");

        as.li(s6, 0);
        as.label("col_tr");
        as.slli(a0, s6, 3);
        as.add(a0, a0, s1);
        as.li(a1, 6);                          // log2(col stride 64B)
        as.call("haar8");
        as.addi(s6, s6, 1);
        as.cmplti(t0, s6, 8);
        as.bne(t0, "col_tr");

        // ---- Quantize + accumulate |q| --------------------------------
        // (bottom-tested, unrolled 4x: independent narrow shift/add
        // work that the packing issue stage can merge)
        as.li(s6, 0);                          // i
        as.label("quant");
        for (unsigned u = 0; u < 4; ++u) {
            const RegIndex qv = static_cast<RegIndex>(t2 + 3 * u);
            const RegIndex sh = static_cast<RegIndex>(t3 + 3 * u);
            const RegIndex mk = static_cast<RegIndex>(t4 + 3 * u);
            as.addi(t1, s6, static_cast<i64>(u));
            as.slli(t1, t1, 3);
            as.add(t1, t1, s1);
            as.ldq(qv, 0, t1);
            // shift = (i%8)/2 + (i/8)/2
            as.addi(sh, s6, static_cast<i64>(u));
            as.andi(sh, sh, 7);
            as.srli(sh, sh, 1);
            as.addi(mk, s6, static_cast<i64>(u));
            as.srli(mk, mk, 3);
            as.srli(mk, mk, 1);
            as.add(sh, sh, mk);
            as.sra(qv, qv, sh);
            // |q|: m = q >> 63; abs = (q ^ m) - m
            as.srai(mk, qv, 63);
            as.xor_(qv, qv, mk);
            as.sub(qv, qv, mk);
            as.add(s3, s3, qv);
        }
        as.addi(s6, s6, 4);
        as.cmplti(t0, s6, 64);
        as.bne(t0, "quant");

        as.addi(s5, s5, 8);
        as.br("bx_loop");

        as.label("by_end");
        as.addi(s4, s4, 8);
        as.br("by_loop");

        as.label("rep_end");
        as.subi(s2, s2, 1);
        as.br("rep");

        as.label("done");
        storeChecksumAndHalt(as, s3, t0);

        // ---- haar8(a0 = base address, a1 = log2 stride) ---------------
        // Three butterfly levels over 8 quads using t-registers only.
        // Element address j: a0 + (j << a1) (shift/add, as a compiler
        // would strength-reduce it).
        auto elem_addr = [&](RegIndex dst, unsigned j) {
            as.li(dst, static_cast<i64>(j));
            as.sll(dst, dst, a1);
            as.add(dst, dst, a0);
        };
        as.label("haar8");
        for (unsigned level = 0; level < 3; ++level) {
            const unsigned half = 4 >> level;
            // Load the active 2*half elements, butterfly in registers,
            // store back: tmp[i] = a+b, tmp[half+i] = a-b.
            // Use t0..t7 as the element registers (max 8 live).
            for (unsigned i = 0; i < half; ++i) {
                elem_addr(t8, 2 * i);
                as.ldq(t9, 0, t8);             // a
                elem_addr(t10, 2 * i + 1);
                as.ldq(t11, 0, t10);           // b
                as.add(static_cast<RegIndex>(t0 + i), t9, t11);
                as.sub(static_cast<RegIndex>(t0 + half + i), t9, t11);
            }
            for (unsigned i = 0; i < 2 * half; ++i) {
                elem_addr(t8, i);
                as.stq(static_cast<RegIndex>(t0 + i), 0, t8);
            }
        }
        as.ret();

        emitBytes(as, "image", ijpegImage());
        as.alignData(8);
        as.dataLabel("block");
        as.dataZeros(64 * 8);
        declareChecksum(as);
    };
    return w;
}

} // namespace nwsim
