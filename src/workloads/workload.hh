/**
 * @file
 * Workload abstraction: a named program builder plus a reference
 * checksum so tests can verify the kernel computes what it claims.
 *
 * The paper evaluates SPECint95 (Table 2) and MediaBench (Table 3). We
 * cannot run DEC-compiled Alpha binaries, so each benchmark is replaced
 * by a miniature kernel in the nwsim ISA performing the same *kind* of
 * computation with deterministic pseudo-random inputs (see DESIGN.md's
 * substitution table). Data lives above 2^32, so pointers are the 33-bit
 * quantities behind the paper's Figure 1 address peak.
 */

#ifndef NWSIM_WORKLOADS_WORKLOAD_HH
#define NWSIM_WORKLOADS_WORKLOAD_HH

#include <functional>
#include <string>
#include <vector>

#include "asm/program.hh"

namespace nwsim
{

class Assembler;

/** One benchmark: metadata + program factory. */
struct Workload
{
    std::string name;
    /** "spec" (Table 2 proxy) or "media" (Table 3 proxy). */
    std::string suite;
    std::string description;
    /** Emit the whole program (code + data) into an assembler. */
    std::function<void(Assembler &)> build;
    /**
     * Label of an 8-byte output checksum the kernel stores before HALT;
     * tests compare it against a C++ reference implementation.
     */
    std::string checksumSymbol = "checksum";

    /** Build and assemble the full program image. */
    Program program() const;
};

/** All 8 SPECint95 proxies followed by all 6 MediaBench proxies. */
const std::vector<Workload> &allWorkloads();

/** Workloads of one suite ("spec" or "media"). */
std::vector<Workload> suiteWorkloads(const std::string &suite);

/** Look up one workload by name; fatal if unknown. */
const Workload &workloadByName(const std::string &name);

} // namespace nwsim

#endif // NWSIM_WORKLOADS_WORKLOAD_HH
