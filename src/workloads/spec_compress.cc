/**
 * @file
 * `compress` proxy: LZW-style byte-stream compression.
 *
 * A direct-mapped 4096-entry code table maps (prefix-code << 8 | byte)
 * keys to codes. Bytes are 8-bit, codes up to 12-bit, keys up to 20-bit:
 * the operand stream mixes narrow and wide values and fluctuates per PC,
 * which is exactly the behaviour Figure 2 attributes to compress-like
 * integer codes.
 */

#include "workloads/kernels.hh"
#include "workloads/support.hh"

namespace nwsim
{

namespace
{

constexpr size_t inputLen = 49152;
constexpr unsigned tableEntries = 16384;
constexpr u64 inputSeed = 0xc0357;

std::vector<u8>
compressInput()
{
    // Skewed byte distribution (repetitive, like text) so the code table
    // actually hits.
    SplitMix64 rng(inputSeed);
    std::vector<u8> bytes(inputLen);
    for (auto &b : bytes) {
        const u64 r = rng.next();
        b = static_cast<u8>((r % 7 == 0) ? (r >> 8) & 0xff
                                         : 'a' + (r >> 16) % 16);
    }
    return bytes;
}

} // namespace

u64
compressReference(unsigned reps)
{
    const std::vector<u8> input = compressInput();
    std::vector<u32> table(tableEntries, 0);
    u64 checksum = 0;
    for (unsigned rep = 0; rep < reps; ++rep) {
        u64 w = input[0];
        for (size_t i = 1; i < input.size(); ++i) {
            const u64 c = input[i];
            const u64 key = (w << 8) | c;
            const u64 h = ((key << 4) ^ (key >> 8)) & (tableEntries - 1);
            if (table[h] == key + 1) {
                w = h;
            } else {
                table[h] = static_cast<u32>(key + 1);
                checksum += w;
                w = c;
            }
        }
        checksum += w;
    }
    return checksum;
}

Workload
makeCompress(unsigned reps)
{
    Workload w;
    w.name = "compress";
    w.suite = "spec";
    w.description = "LZW-style compression (SPECint95 compress proxy)";
    w.build = [reps](Assembler &as) {
        using namespace wk;
        // r16=input ptr, r17=table ptr, r18=rep counter, r19=checksum
        as.la(s0, "input");
        as.la(s1, "table");
        as.li(s2, static_cast<i64>(reps));
        as.li(s3, 0);                      // checksum

        as.label("rep_loop");
        as.beq(s2, "done");
        as.ldbu(t4, 0, s0);                // w = input[0]
        as.li(t0, inputLen - 1);           // remaining count
        as.addi(t1, s0, 1);                // cursor

        // Bottom-tested hot loop: one taken branch per iteration.
        as.label("byte_loop");
        as.ldbu(t5, 0, t1);                // c
        as.addi(t1, t1, 1);
        as.slli(t6, t4, 8);                // key = w << 8 | c
        as.or_(t6, t6, t5);
        as.slli(t7, t6, 4);                // h = ((key<<4) ^ (key>>8))
        as.srli(t8, t6, 8);
        as.xor_(t7, t7, t8);
        as.andi(t7, t7, tableEntries - 1);
        as.slli(t8, t7, 2);                // table + 4*h
        as.add(t8, t8, s1);
        as.ldl(t9, 0, t8);                 // entry
        as.addi(t10, t6, 1);               // key + 1
        as.sub(t11, t9, t10);
        as.bne(t11, "miss");
        as.mov(t4, t7);                    // hit: w = h
        as.br("next");
        as.label("miss");
        as.stl(t10, 0, t8);
        as.add(s3, s3, t4);                // emit w
        as.mov(t4, t5);                    // w = c
        as.label("next");
        as.subi(t0, t0, 1);
        as.bne(t0, "byte_loop");
        as.add(s3, s3, t4);                // final code
        as.subi(s2, s2, 1);
        as.br("rep_loop");

        as.label("done");
        storeChecksumAndHalt(as, s3, t0);

        emitBytes(as, "input", compressInput());
        as.alignData(8);
        as.dataLabel("table");
        as.dataZeros(tableEntries * 4);
        declareChecksum(as);
    };
    return w;
}

} // namespace nwsim
