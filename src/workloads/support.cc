#include "workloads/support.hh"

namespace nwsim::wk
{

std::vector<u8>
randomBytes(u64 seed, size_t count, u8 lo, u8 hi)
{
    SplitMix64 rng(seed);
    std::vector<u8> out(count);
    for (auto &b : out)
        b = static_cast<u8>(rng.range(lo, hi));
    return out;
}

std::vector<i16>
randomSamples(u64 seed, size_t count, i16 lo, i16 hi)
{
    SplitMix64 rng(seed);
    std::vector<i16> out(count);
    for (auto &s : out)
        s = static_cast<i16>(rng.range(lo, hi));
    return out;
}

void
emitBytes(Assembler &as, const std::string &label,
          const std::vector<u8> &bytes)
{
    as.alignData(8);
    as.dataLabel(label);
    as.dataBytes(bytes);
}

void
emitWords(Assembler &as, const std::string &label,
          const std::vector<i16> &words)
{
    as.alignData(8);
    as.dataLabel(label);
    for (i16 w : words)
        as.dataWord(static_cast<u16>(w));
}

void
emitQuads(Assembler &as, const std::string &label,
          const std::vector<u64> &quads)
{
    as.alignData(8);
    as.dataLabel(label);
    for (u64 q : quads)
        as.dataQuad(q);
}

void
declareChecksum(Assembler &as)
{
    as.alignData(8);
    as.dataLabel("checksum");
    as.dataQuad(0);
}

void
storeChecksumAndHalt(Assembler &as, RegIndex value_reg, RegIndex scratch)
{
    as.la(scratch, "checksum");
    as.stq(value_reg, 0, scratch);
    as.halt();
}

} // namespace nwsim::wk
