/**
 * @file
 * GSM speech-codec proxies: long-term-prediction (LTP) encode and
 * decode over 16-bit PCM samples.
 *
 * The encoder's lag search is a multiply-accumulate of 16-bit samples —
 * the narrow multiplies the paper singles out in gsm ("they do account
 * for 6% of the narrow-width operations in gsm") — followed by gain
 * quantization and saturated residual computation.
 */

#include "workloads/kernels.hh"
#include "workloads/support.hh"

namespace nwsim
{

namespace
{

constexpr unsigned numSamples = 16000;
constexpr unsigned frameLen = 40;
constexpr u64 gsmSeed = 0x65a;

std::vector<i16>
speech()
{
    // Correlated "speech": a decaying oscillator plus noise, so the lag
    // search has real structure to find.
    SplitMix64 rng(gsmSeed);
    std::vector<i16> s(numSamples);
    double phase = 0.3, level = 900.0;
    for (auto &x : s) {
        phase += 0.42;
        if (phase > 3.14159)
            phase -= 6.28318;
        const double wave = level * phase * (1.0 - phase * phase / 6.0);
        const i64 noise = rng.range(-120, 120);
        i64 v = static_cast<i64>(wave) + noise;
        v = std::max<i64>(-30000, std::min<i64>(30000, v));
        x = static_cast<i16>(v);
        level = level * 0.999 + (rng.below(7) == 0 ? 40.0 : 0.0);
    }
    return s;
}

i64
clampSample(i64 v)
{
    return std::max<i64>(-32768, std::min<i64>(32767, v));
}

} // namespace

u64
gsmEncodeReference(unsigned reps)
{
    const std::vector<i16> s = speech();
    u64 checksum = 0;
    for (unsigned rep = 0; rep < reps; ++rep) {
        for (unsigned base = frameLen; base + frameLen <= numSamples;
             base += frameLen) {
            i64 best_corr = -(i64{1} << 40);
            i64 best_off = 5;
            for (i64 off = 5; off <= 20; off += 5) {
                i64 corr = 0;
                for (unsigned i = 0; i < frameLen; ++i) {
                    corr += static_cast<i64>(s[base + i]) *
                            static_cast<i64>(s[base + i - off]);
                }
                if (corr > best_corr) {
                    best_corr = corr;
                    best_off = off;
                }
            }
            i64 gain = best_corr >> 18;
            gain = std::max<i64>(-8, std::min<i64>(7, gain));
            for (unsigned i = 0; i < frameLen; ++i) {
                const i64 p =
                    (gain * static_cast<i64>(s[base + i - best_off])) >>
                    3;
                const i64 r =
                    clampSample(static_cast<i64>(s[base + i]) - p);
                checksum += static_cast<u64>(r & 0xffff);
            }
        }
    }
    return checksum;
}

u64
gsmDecodeReference(unsigned reps)
{
    const std::vector<i16> s = speech();   // residual stream stand-in
    u64 checksum = 0;
    for (unsigned rep = 0; rep < reps; ++rep) {
        // Rolling synthesis buffer seeded with the first frame.
        std::vector<i64> out(numSamples, 0);
        for (unsigned i = 0; i < frameLen; ++i)
            out[i] = s[i];
        const i64 gain = 3 + static_cast<i64>(rep & 3);
        for (unsigned i = frameLen; i < numSamples; ++i) {
            const i64 r = static_cast<i64>(s[i]) >> 2;
            const i64 p = (gain * out[i - frameLen]) >> 3;
            out[i] = clampSample(r + p);
            checksum += static_cast<u64>(out[i] & 0xffff);
        }
    }
    return checksum;
}

Workload
makeGsmEncode(unsigned reps)
{
    Workload w;
    w.name = "gsm-encode";
    w.suite = "media";
    w.description = "GSM-style LTP speech encoding";
    w.build = [reps](Assembler &as) {
        using namespace wk;
        // s0=samples, s1=reps, s2=checksum, s3=frame base (element idx).
        as.la(s0, "samples");
        as.li(s1, static_cast<i64>(reps));
        as.li(s2, 0);

        // Load a 16-bit sample s[idx] sign-extended: idx in reg.
        auto load_sample = [&](RegIndex dst, RegIndex idx) {
            as.slli(t11, idx, 1);
            as.add(t11, t11, s0);
            as.ldwu(dst, 0, t11);
            as.sextw(dst, dst);
        };

        as.label("rep");
        as.beq(s1, "done");
        as.li(s3, frameLen);               // base

        as.label("frame");
        as.cmplei(t0, s3, numSamples - frameLen);
        as.beq(t0, "rep_end");

        as.li(s4, 0);                      // best_corr placeholder flag
        as.li(s5, -(i64{1} << 40));        // best_corr
        as.li(s6, 5);                      // best_off
        as.li(s7, 5);                      // off

        as.label("lag_loop");
        // Correlation MAC loop, unrolled 4x with independent partial
        // sums (as the paper's -O5 compiler would), bottom-tested so
        // one taken branch ends each iteration.
        as.li(t1, 0);                      // partial sum 0
        as.li(t7, 0);                      // partial sum 1
        as.li(t9, 0);                      // partial sum 2
        as.li(t10, 0);                     // partial sum 3
        as.li(t2, 0);                      // i
        as.label("corr_loop");
        const RegIndex partial[4] = {t1, t7, t9, t10};
        for (unsigned u = 0; u < 4; ++u) {
            as.add(t3, s3, t2);            // base + i
            if (u)
                as.addi(t3, t3, static_cast<i64>(u));
            load_sample(t4, t3);
            as.sub(t3, t3, s7);            // base + i + u - off
            load_sample(t5, t3);
            as.mul(t6, t4, t5);            // 16x16 narrow multiply
            as.add(partial[u], partial[u], t6);
        }
        as.addi(t2, t2, 4);
        as.cmplti(t0, t2, frameLen);
        as.bne(t0, "corr_loop");
        as.add(t1, t1, t7);
        as.add(t9, t9, t10);
        as.add(t1, t1, t9);                // corr
        as.cmplt(t0, s5, t1);
        as.beq(t0, "lag_next");
        as.mov(s5, t1);
        as.mov(s6, s7);
        as.label("lag_next");
        as.addi(s7, s7, 5);
        as.cmplei(t0, s7, 20);
        as.bne(t0, "lag_loop");

        // gain = clamp(best_corr >> 18, -8, 7)
        as.srai(s8, s5, 18);
        as.cmplti(t0, s8, -8);
        as.beq(t0, "gain_lo_ok");
        as.li(s8, -8);
        as.label("gain_lo_ok");
        as.cmplei(t0, s8, 7);
        as.bne(t0, "gain_hi_ok");
        as.li(s8, 7);
        as.label("gain_hi_ok");

        // Residual pass (bottom-tested, unrolled 2x: iterations are
        // independent given the gain, so the window sees add bursts).
        as.li(t2, 0);                      // i
        as.label("res_loop");
        for (unsigned u = 0; u < 2; ++u) {
            const std::string tag = std::to_string(u);
            as.add(t3, s3, t2);
            if (u)
                as.addi(t3, t3, static_cast<i64>(u));
            as.sub(t4, t3, s6);            // base + i + u - best_off
            load_sample(t5, t4);
            as.mul(t6, s8, t5);
            as.srai(t6, t6, 3);            // p
            load_sample(t7, t3);
            as.sub(t7, t7, t6);            // r = s - p
            // saturate to [-32768, 32767]
            as.cmplti(t0, t7, -32768);
            as.beq(t0, "sat_lo_ok" + tag);
            as.li(t7, -32768);
            as.label("sat_lo_ok" + tag);
            as.cmplei(t0, t7, 32767);
            as.bne(t0, "sat_hi_ok" + tag);
            as.li(t7, 32767);
            as.label("sat_hi_ok" + tag);
            as.andi(t7, t7, 0xffff);
            as.add(s2, s2, t7);
        }
        as.addi(t2, t2, 2);
        as.cmplti(t0, t2, frameLen);
        as.bne(t0, "res_loop");

        as.addi(s3, s3, frameLen);
        as.br("frame");

        as.label("rep_end");
        as.subi(s1, s1, 1);
        as.br("rep");

        as.label("done");
        storeChecksumAndHalt(as, s2, t0);

        emitWords(as, "samples", speech());
        declareChecksum(as);
    };
    return w;
}

Workload
makeGsmDecode(unsigned reps)
{
    Workload w;
    w.name = "gsm-decode";
    w.suite = "media";
    w.description = "GSM-style LTP speech reconstruction";
    w.build = [reps](Assembler &as) {
        using namespace wk;
        // s0=residuals, s1=synthesis buffer, s2=reps, s3=checksum,
        // s4=rep index.
        as.la(s0, "samples");
        as.la(s1, "synth");
        as.li(s2, static_cast<i64>(reps));
        as.li(s3, 0);
        as.li(s4, 0);

        auto load_res = [&](RegIndex dst, RegIndex idx) {
            as.slli(t11, idx, 1);
            as.add(t11, t11, s0);
            as.ldwu(dst, 0, t11);
            as.sextw(dst, dst);
        };

        as.label("rep");
        as.beq(s2, "done");
        // Seed the synthesis buffer with the first frame
        // (bottom-tested).
        as.li(t0, 0);
        as.label("seed");
        load_res(t2, t0);
        as.slli(t3, t0, 3);
        as.add(t3, t3, s1);
        as.stq(t2, 0, t3);
        as.addi(t0, t0, 1);
        as.cmplti(t1, t0, frameLen);
        as.bne(t1, "seed");

        as.andi(s5, s4, 3);                // gain = 3 + (rep & 3)
        as.addi(s5, s5, 3);
        as.li(t0, frameLen);               // i

        // Synthesis loop, unrolled 2x (the loop-carried dependence is
        // at distance frameLen, so consecutive samples overlap freely).
        as.label("synth_loop");
        for (unsigned u = 0; u < 2; ++u) {
            const std::string tag = std::to_string(u);
            as.addi(t8, t0, static_cast<i64>(u));
            load_res(t2, t8);
            as.srai(t2, t2, 2);            // r
            as.subi(t3, t8, frameLen);
            as.slli(t3, t3, 3);
            as.add(t3, t3, s1);
            as.ldq(t4, 0, t3);             // out[i - frameLen]
            as.mul(t5, s5, t4);
            as.srai(t5, t5, 3);            // p
            as.add(t6, t2, t5);
            as.cmplti(t1, t6, -32768);
            as.beq(t1, "d_lo_ok" + tag);
            as.li(t6, -32768);
            as.label("d_lo_ok" + tag);
            as.cmplei(t1, t6, 32767);
            as.bne(t1, "d_hi_ok" + tag);
            as.li(t6, 32767);
            as.label("d_hi_ok" + tag);
            as.slli(t7, t8, 3);
            as.add(t7, t7, s1);
            as.stq(t6, 0, t7);
            as.andi(t6, t6, 0xffff);
            as.add(s3, s3, t6);
        }
        as.addi(t0, t0, 2);
        as.cmplti(t1, t0, numSamples);
        as.bne(t1, "synth_loop");
        as.addi(s4, s4, 1);
        as.subi(s2, s2, 1);
        as.br("rep");

        as.label("done");
        storeChecksumAndHalt(as, s3, t0);

        emitWords(as, "samples", speech());
        as.alignData(8);
        as.dataLabel("synth");
        as.dataZeros(numSamples * 8);
        declareChecksum(as);
    };
    return w;
}

} // namespace nwsim
