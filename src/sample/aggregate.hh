/**
 * @file
 * SampleAggregator: merges per-interval measurement results from a
 * sampled simulation (src/sample/controller.hh) into whole-run
 * estimates with statistical error bars.
 *
 * Two complementary views of the same intervals:
 *
 *  - *Summed counters*: every RunResult counter (cycles, commits,
 *    packed instructions, gated ops, power sums, width histograms) is
 *    accumulated across intervals, so ratio statistics computed from
 *    the aggregate (IPC, packing rate, power reduction) are
 *    ratio-of-sums over everything measured — the best point estimate.
 *  - *Per-interval samples*: the headline ratios of each interval are
 *    kept individually, giving mean, coefficient of variation, and a
 *    95% confidence interval (Student-t) per metric — the error bar
 *    that turns "IPC 1.23" into "IPC 1.23 ± 0.02".
 *
 * Aggregators merge associatively (stratified merge): splitting the
 * interval stream across workers and merging the pieces yields exactly
 * the estimates of one sequential aggregation, in any grouping.
 */

#ifndef NWSIM_SAMPLE_AGGREGATE_HH
#define NWSIM_SAMPLE_AGGREGATE_HH

#include <vector>

#include "ckpt/serial.hh"
#include "driver/runner.hh"

namespace nwsim::sample
{

/** Mean / CoV / 95% CI of one metric over the measured intervals. */
struct MetricEstimate
{
    /** Intervals the estimate is computed over. */
    u64 n = 0;
    double mean = 0.0;
    /** Sample standard deviation (n-1 denominator; 0 when n < 2). */
    double stddev = 0.0;

    /** Coefficient of variation, stddev / |mean| (0 when mean is 0). */
    double cov() const;

    /**
     * Half-width of the 95% confidence interval of the mean,
     * t_{0.975,n-1} * stddev / sqrt(n) (0 when n < 2).
     */
    double ciHalfWidth95() const;

    /** True if @p value lies within mean ± ciHalfWidth95(). */
    bool contains(double value) const;
};

/**
 * Two-sided 97.5% Student-t quantile for @p dof degrees of freedom
 * (exact table through 30, interpolated beyond, 1.96 asymptote).
 * Exposed for the unit-test fixtures.
 */
double studentT975(u64 dof);

/** Which per-interval metrics carry error bars. */
enum class SampleMetric : u8
{
    Ipc,            ///< committed / cycles
    PackedRate,     ///< packed insts / committed
    GatingRate,     ///< (gated16 + gated33) / profiled ops
    PowerReduction, ///< gating power reduction, percent
    NumMetrics,
};

/** Printable metric name ("ipc", "packed_rate", ...). */
const char *sampleMetricName(SampleMetric metric);

/** Value of @p metric computed from one (or an aggregated) result. */
double sampleMetricValue(SampleMetric metric, const RunResult &r);

/** Statistical whole-run estimate assembled from sampled intervals. */
class SampleAggregator
{
  public:
    /** Fold in one measured interval's statistics. */
    void addInterval(const RunResult &interval);

    /** Fold in everything @p other has seen (stratified merge). */
    void merge(const SampleAggregator &other);

    u64 intervals() const { return static_cast<u64>(samples.size()); }

    /** Error-bar estimate of @p metric over the intervals so far. */
    MetricEstimate estimate(SampleMetric metric) const;

    /**
     * The whole-run RunResult: all counters summed across intervals
     * (profiler histograms merged, cache miss rates weighted by
     * interval commits), labels taken from the first interval. The
     * caller stamps the SampleSummary (sample-schedule metadata the
     * aggregator does not know) on top.
     */
    RunResult aggregate() const;

    /**
     * Serialize the complete aggregator state — per-interval samples,
     * summed counters, and the weighted miss-rate accumulators. A
     * restored aggregator continues (or merges) exactly where this one
     * stood: sampled-mode checkpoints and sharded runs' merge blobs
     * both ride on this.
     */
    void saveState(ckpt::ByteSink &sink) const;

    /** Restore saveState() data; false on malformed input. */
    bool loadState(ckpt::ByteSource &src);

  private:
    /** Per-interval record: headline ratios plus float summands. */
    struct IntervalSample
    {
        /** Headline ratios, in SampleMetric order. */
        double values[static_cast<size_t>(SampleMetric::NumMetrics)] =
            {};
        /**
         * The interval's floating-point summed quantities (gating mW
         * sums, commit-weighted miss rates). Kept per interval — not as
         * running totals — so aggregate() can fold them in interval
         * order: float addition is not associative, and folding a
         * canonical sequence is what keeps a K-shard merge bit-identical
         * to a single-shard run for every K.
         */
        static constexpr size_t kNumFloatSums = 7;
        double floatSums[kNumFloatSums] = {};
    };

    std::vector<IntervalSample> samples;
    /** Integer counters summed across intervals (order-independent). */
    RunResult sum;
    bool haveSum = false;
};

} // namespace nwsim::sample

#endif // NWSIM_SAMPLE_AGGREGATE_HH
