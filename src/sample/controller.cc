#include "sample/controller.hh"

#include "common/logging.hh"
#include "mem/cache.hh"

namespace nwsim::sample
{

namespace
{

/**
 * splitmix64: tiny, statelessly-seedable generator for the randomized
 * interval offsets. Chosen over <random> engines so the offset sequence
 * is a fixed function of (seed, interval index) — identical across
 * standard libraries, executors, and resumed campaigns.
 */
u64
splitmix64(u64 x)
{
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

double
deltaMissRate(const CacheStats &before, const CacheStats &after)
{
    const u64 accesses = after.accesses - before.accesses;
    const u64 misses = after.misses - before.misses;
    return accesses ? static_cast<double>(misses) /
                          static_cast<double>(accesses)
                    : 0.0;
}

} // namespace

u64
sampleOffset(const SampleOptions &s, u64 period)
{
    if (!s.randomize)
        return 0;
    const u64 slack = s.periodInsts - (s.warmupInsts + s.measureInsts);
    return splitmix64(s.seed ^ period) % (slack + 1);
}

void
validateSampleOptions(const SampleOptions &s)
{
    if (!s.enabled)
        return;
    if (s.measureInsts == 0)
        NWSIM_FATAL("sample schedule needs measure > 0");
    if (s.periodInsts < s.warmupInsts + s.measureInsts) {
        NWSIM_FATAL("sample period ", s.periodInsts,
                    " smaller than warmup+measure ",
                    s.warmupInsts + s.measureInsts);
    }
}

RunResult
runSampledProgram(const Program &program, const CoreConfig &config,
                  const RunOptions &opts, const std::string &name,
                  const std::string &config_name, CoreObserver *observer,
                  const SampleHooks *hooks)
{
    const SampleOptions &s = opts.sample;
    NWSIM_ASSERT(s.enabled, "runSampledProgram without +sample");
    validateSampleOptions(s);

    // One persistent core carries the whole run: its fastForward()
    // functionally warms caches, TLBs, and the branch predictor across
    // the skipped stretches, so each measurement interval starts from
    // the same long-horizon microarchitectural state a contiguous
    // detailed run would have (SMARTS' functional warming).
    SparseMemory memory;
    program.load(memory);
    OutOfOrderCore core(config, memory, program.entry);
    if (observer)
        core.setObserver(observer);

    // Same total program region as the full-detail twin would cover.
    const u64 budget = opts.warmupInsts + opts.measureInsts;

    SampleAggregator agg;
    u64 position = 0;   // architected instructions consumed so far
    u64 period = 0;
    if (hooks && hooks->onStart)
        hooks->onStart(core, agg, position, period);
    while (!core.done() && position < budget) {
        // Sample point for this period: the detailed probe sits at the
        // period start (so a budget smaller than one period still
        // yields an interval), or at a seeded-random offset within the
        // period's slack when randomized.
        const u64 sampleAt =
            period * s.periodInsts + sampleOffset(s, period);
        ++period;
        if (sampleAt >= budget)
            break;

        // Fast-forward to the sample point. The previous interval's
        // in-flight instructions are squashed first (fetch resumes at
        // the architected PC), then the skipped stretch executes in
        // functional-warming mode.
        if (sampleAt > position) {
            core.drainInFlight();
            // Chunked so the safe-point hook fires inside long skipped
            // stretches; a short return means the stream reached HALT
            // and the probe below retires it.
            while (position < sampleAt) {
                u64 chunk = sampleAt - position;
                if (hooks && hooks->ffChunkInsts &&
                    chunk > hooks->ffChunkInsts) {
                    chunk = hooks->ffChunkInsts;
                }
                const u64 ffed = core.fastForward(chunk);
                position += ffed;
                if (ffed < chunk)
                    break;
                if (position < sampleAt && hooks && hooks->atSafePoint)
                    hooks->atSafePoint(core, agg, position, period - 1);
            }
            if (core.done())
                break;
        }

        // Detailed warmup refills the pipeline and settles the timing
        // state; nothing it commits is recorded.
        const u64 warmed = core.run(s.warmupInsts);
        const CacheStats l1d0 = core.memSystem().l1d().stats();
        const CacheStats l1i0 = core.memSystem().l1i().stats();
        core.resetStats();
        const u64 measured = core.run(s.measureInsts);
        position += warmed + measured;
        if (measured == 0)
            break;      // halted during warmup: nothing to record

        RunResult interval = collectRunResult(core, name, config_name);
        interval.warmupCommitted = warmed;
        // Cache counters accumulate for the life of the core (functional
        // warming depends on that); report this interval's rates from
        // the deltas instead.
        interval.l1dMissRate =
            deltaMissRate(l1d0, core.memSystem().l1d().stats());
        interval.l1iMissRate =
            deltaMissRate(l1i0, core.memSystem().l1i().stats());
        agg.addInterval(interval);
        if (hooks && hooks->atSafePoint)
            hooks->atSafePoint(core, agg, position, period);
    }

    if (agg.intervals() == 0) {
        NWSIM_FATAL("sampled run of ", name, " measured no intervals ",
                    "(budget ", budget, ", period ", s.periodInsts, ")");
    }

    RunResult result = agg.aggregate();
    result.workload = name;
    result.configName = config_name;
    // Decode-cache and trace-cache counters are cumulative host
    // metrics, not interval statistics: stamp the final values rather
    // than aggregating.
    result.decodeCache = core.decodeCacheStats();
    result.superblock = core.superblockStats();
    result.sample.sampled = true;
    result.sample.intervals = agg.intervals();
    result.sample.streamInsts = position;
    for (size_t m = 0; m < SampleSummary::kNumMetrics; ++m) {
        const MetricEstimate est =
            agg.estimate(static_cast<SampleMetric>(m));
        SampleSummary::Estimate &out = result.sample.metrics[m];
        out.mean = est.mean;
        out.cov = est.cov();
        out.ci95 = est.ciHalfWidth95();
    }
    return result;
}

} // namespace nwsim::sample
