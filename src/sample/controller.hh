/**
 * @file
 * SamplingController: SMARTS-style sampled simulation (docs/SAMPLING.md).
 *
 * Instead of one contiguous detailed window, the workload runs as a
 * stream of intervals on ONE persistent OutOfOrderCore, alternating
 * between functional-warming fast-forward and detailed probes:
 *
 *     |-- warmup --|-- measure --|---- fast-forward ----|  (one period)
 *       detailed       detailed     functional warming
 *       (no stats)     (recorded)   (caches/TLB/bpred live)
 *
 * The probe sits at the start of each period (so budgets smaller than
 * one period still measure an interval); randomized schedules slide it
 * to a seeded-random offset within the period's slack instead.
 *
 * The fast-forward segments run through OutOfOrderCore::fastForward,
 * which executes functionally but keeps updating the caches, TLBs, and
 * branch predictor — SMARTS' functional warming. That long-horizon
 * microarchitectural state is what makes short measurement intervals
 * unbiased: data a program touches early and re-reads late is warm at
 * the probe, exactly as it would be in a contiguous detailed run. (A
 * purely functional fast-forward — cold structures rebuilt by a few
 * thousand detailed warmup instructions per probe — systematically
 * underestimates IPC on phase-changing workloads; no affordable
 * detailed warmup recovers state accumulated over hundreds of
 * thousands of instructions.)
 *
 * At each sample point the controller drains the pipeline
 * (drainInFlight squashes in-flight work and rewinds fetch to the
 * architected PC), fast-forwards to the probe, runs the detailed
 * warmup to refill the pipeline and settle timing state, resets the
 * measurement counters, and records one measurement interval into the
 * SampleAggregator. Repeats every periodInsts until the instruction
 * budget is spent or the workload halts.
 */

#ifndef NWSIM_SAMPLE_CONTROLLER_HH
#define NWSIM_SAMPLE_CONTROLLER_HH

#include <functional>

#include "sample/aggregate.hh"

namespace nwsim
{
class CoreObserver;
class OutOfOrderCore;
}

namespace nwsim::sample
{

/**
 * Checkpoint seams in the sampled stream (src/ckpt/run.cc installs
 * these; plain sampled runs pass none and are untouched).
 *
 * Both hooks fire only at *checkpoint-safe* points — the pipeline
 * window is empty (mid-fast-forward) or about to be drained anyway
 * (interval boundary, where the squashes land in warmup state the next
 * resetStats() discards) — so a run with hooks installed is
 * stat-identical to the same run without them.
 *
 * The (position, period) pair passed around is the full stream cursor:
 * restarting the interval loop with those values recomputes the same
 * sample schedule (offsets are a pure function of seed and period) and
 * continues the stream exactly where it stood.
 */
struct SampleHooks
{
    /**
     * Cap each fastForward call at this many instructions so the
     * atSafePoint hook fires inside long skipped stretches too.
     * 0 = unchunked.
     */
    u64 ffChunkInsts = 0;

    /**
     * Called once, before the interval loop, on the freshly constructed
     * core: restore a checkpoint into (core, agg) and advance
     * position/period to the checkpointed stream cursor.
     */
    std::function<void(OutOfOrderCore &core, SampleAggregator &agg,
                       u64 &position, u64 &period)>
        onStart;

    /**
     * Called at each checkpoint-safe point with the stream cursor a
     * resumed run would restart from. The core is drained at
     * mid-fast-forward points; at interval boundaries the hook may
     * drain it (the drain is stat-invisible there).
     */
    std::function<void(OutOfOrderCore &core, SampleAggregator &agg,
                       u64 position, u64 period)>
        atSafePoint;
};

/**
 * Sampled counterpart of runProgram(): run @p program on @p config
 * through the opts.sample interval schedule, with opts.warmupInsts +
 * opts.measureInsts as the total functional-stream budget. The returned
 * RunResult carries summed counters across measurement intervals and a
 * stamped SampleSummary with per-metric error bars.
 *
 * @p observer, if non-null, is attached to every probe core.
 * @p hooks, if non-null, installs checkpoint seams (see SampleHooks).
 */
RunResult runSampledProgram(const Program &program,
                            const CoreConfig &config,
                            const RunOptions &opts,
                            const std::string &name,
                            const std::string &config_name,
                            CoreObserver *observer = nullptr,
                            const SampleHooks *hooks = nullptr);

/** Validate @p s (period fits warmup+measure, measure > 0); FATAL on
 *  nonsense so bad `+sample=` specs die before jobs are queued. */
void validateSampleOptions(const SampleOptions &s);

/**
 * Probe offset inside period @p period: 0 for deterministic schedules,
 * a seeded-random slide within the period's slack when randomized. A
 * pure function of (s, period) — the interval controller, the shard
 * planner, and every shard runner recompute the identical schedule
 * from it, which is what makes sharded runs mergeable.
 */
u64 sampleOffset(const SampleOptions &s, u64 period);

} // namespace nwsim::sample

#endif // NWSIM_SAMPLE_CONTROLLER_HH
