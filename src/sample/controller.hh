/**
 * @file
 * SamplingController: SMARTS-style sampled simulation (docs/SAMPLING.md).
 *
 * Instead of one contiguous detailed window, the workload runs as a
 * stream of intervals on ONE persistent OutOfOrderCore, alternating
 * between functional-warming fast-forward and detailed probes:
 *
 *     |-- warmup --|-- measure --|---- fast-forward ----|  (one period)
 *       detailed       detailed     functional warming
 *       (no stats)     (recorded)   (caches/TLB/bpred live)
 *
 * The probe sits at the start of each period (so budgets smaller than
 * one period still measure an interval); randomized schedules slide it
 * to a seeded-random offset within the period's slack instead.
 *
 * The fast-forward segments run through OutOfOrderCore::fastForward,
 * which executes functionally but keeps updating the caches, TLBs, and
 * branch predictor — SMARTS' functional warming. That long-horizon
 * microarchitectural state is what makes short measurement intervals
 * unbiased: data a program touches early and re-reads late is warm at
 * the probe, exactly as it would be in a contiguous detailed run. (A
 * purely functional fast-forward — cold structures rebuilt by a few
 * thousand detailed warmup instructions per probe — systematically
 * underestimates IPC on phase-changing workloads; no affordable
 * detailed warmup recovers state accumulated over hundreds of
 * thousands of instructions.)
 *
 * At each sample point the controller drains the pipeline
 * (drainInFlight squashes in-flight work and rewinds fetch to the
 * architected PC), fast-forwards to the probe, runs the detailed
 * warmup to refill the pipeline and settle timing state, resets the
 * measurement counters, and records one measurement interval into the
 * SampleAggregator. Repeats every periodInsts until the instruction
 * budget is spent or the workload halts.
 */

#ifndef NWSIM_SAMPLE_CONTROLLER_HH
#define NWSIM_SAMPLE_CONTROLLER_HH

#include "sample/aggregate.hh"

namespace nwsim
{
class CoreObserver;
}

namespace nwsim::sample
{

/**
 * Sampled counterpart of runProgram(): run @p program on @p config
 * through the opts.sample interval schedule, with opts.warmupInsts +
 * opts.measureInsts as the total functional-stream budget. The returned
 * RunResult carries summed counters across measurement intervals and a
 * stamped SampleSummary with per-metric error bars.
 *
 * @p observer, if non-null, is attached to every probe core.
 */
RunResult runSampledProgram(const Program &program,
                            const CoreConfig &config,
                            const RunOptions &opts,
                            const std::string &name,
                            const std::string &config_name,
                            CoreObserver *observer = nullptr);

/** Validate @p s (period fits warmup+measure, measure > 0); FATAL on
 *  nonsense so bad `+sample=` specs die before jobs are queued. */
void validateSampleOptions(const SampleOptions &s);

} // namespace nwsim::sample

#endif // NWSIM_SAMPLE_CONTROLLER_HH
