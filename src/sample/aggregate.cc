#include "sample/aggregate.hh"

#include <cmath>

#include "common/logging.hh"
#include "driver/result_serial.hh"

namespace nwsim::sample
{

double
studentT975(u64 dof)
{
    // Two-sided 95% (upper 97.5%) quantiles. Exact through 30 degrees
    // of freedom — sampled runs with fewer intervals are exactly where
    // the normal approximation is most wrong — then the standard
    // 40/60/120 rows with linear interpolation, tailing into 1.96.
    static const double exact[] = {
        0.0,    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365,
        2.306,  2.262,  2.228, 2.201, 2.179, 2.160, 2.145, 2.131,
        2.120,  2.110,  2.101, 2.093, 2.086, 2.080, 2.074, 2.069,
        2.064,  2.060,  2.056, 2.052, 2.048, 2.045, 2.042,
    };
    if (dof == 0)
        return 0.0;
    if (dof <= 30)
        return exact[dof];
    struct Row
    {
        u64 dof;
        double t;
    };
    static const Row rows[] = {{30, 2.042}, {40, 2.021}, {60, 2.000},
                               {120, 1.980}};
    for (size_t i = 1; i < std::size(rows); ++i) {
        if (dof <= rows[i].dof) {
            const Row &lo = rows[i - 1];
            const Row &hi = rows[i];
            const double f = static_cast<double>(dof - lo.dof) /
                             static_cast<double>(hi.dof - lo.dof);
            return lo.t + f * (hi.t - lo.t);
        }
    }
    return 1.96;
}

double
MetricEstimate::cov() const
{
    return mean != 0.0 ? stddev / std::fabs(mean) : 0.0;
}

double
MetricEstimate::ciHalfWidth95() const
{
    if (n < 2)
        return 0.0;
    return studentT975(n - 1) * stddev /
           std::sqrt(static_cast<double>(n));
}

bool
MetricEstimate::contains(double value) const
{
    const double half = ciHalfWidth95();
    return value >= mean - half && value <= mean + half;
}

const char *
sampleMetricName(SampleMetric metric)
{
    switch (metric) {
      case SampleMetric::Ipc:
        return "ipc";
      case SampleMetric::PackedRate:
        return "packed_rate";
      case SampleMetric::GatingRate:
        return "gating_rate";
      case SampleMetric::PowerReduction:
        return "power_reduction_pct";
      default:
        return "?";
    }
}

double
sampleMetricValue(SampleMetric metric, const RunResult &r)
{
    switch (metric) {
      case SampleMetric::Ipc:
        return r.ipc();
      case SampleMetric::PackedRate:
        return r.core.committed
                   ? static_cast<double>(r.packing.packedInsts) /
                         static_cast<double>(r.core.committed)
                   : 0.0;
      case SampleMetric::GatingRate:
        return r.gating.ops
                   ? static_cast<double>(r.gating.gated16 +
                                         r.gating.gated33) /
                         static_cast<double>(r.gating.ops)
                   : 0.0;
      case SampleMetric::PowerReduction:
        return r.gating.reductionPercent();
      default:
        NWSIM_PANIC("bad sample metric");
    }
}

namespace
{

void
sumInto(RunResult &a, const RunResult &b)
{
    a.warmupCommitted += b.warmupCommitted;
    a.measuredCommitted += b.measuredCommitted;
    a.core.accumulate(b.core);
    a.gating.accumulate(b.gating);
    a.packing.accumulate(b.packing);
    a.bpred.accumulate(b.bpred);
    a.profiler.merge(b.profiler);
}

} // namespace

void
SampleAggregator::addInterval(const RunResult &interval)
{
    IntervalSample s;
    for (size_t m = 0;
         m < static_cast<size_t>(SampleMetric::NumMetrics); ++m) {
        s.values[m] =
            sampleMetricValue(static_cast<SampleMetric>(m), interval);
    }
    // Float summands, folded in interval order by aggregate(). Miss
    // rates are ratios; weight them by the interval's commits so the
    // aggregate approximates the ratio over all measured work.
    const double w = static_cast<double>(interval.core.committed);
    s.floatSums[0] = interval.gating.baselineMwSum;
    s.floatSums[1] = interval.gating.gatedMwSum;
    s.floatSums[2] = interval.gating.overheadMwSum;
    s.floatSums[3] = interval.gating.saved16MwSum;
    s.floatSums[4] = interval.gating.saved33MwSum;
    s.floatSums[5] = interval.l1dMissRate * w;
    s.floatSums[6] = interval.l1iMissRate * w;
    samples.push_back(s);

    if (!haveSum) {
        sum = interval;
        haveSum = true;
    } else {
        sumInto(sum, interval);
    }
}

void
SampleAggregator::merge(const SampleAggregator &other)
{
    // Append, don't interleave: per-metric mean/stddev are symmetric in
    // the sample order, so any merge grouping yields the same estimate.
    samples.insert(samples.end(), other.samples.begin(),
                   other.samples.end());
    if (other.haveSum) {
        if (!haveSum) {
            sum = other.sum;
            haveSum = true;
        } else {
            sumInto(sum, other.sum);
        }
    }
}

MetricEstimate
SampleAggregator::estimate(SampleMetric metric) const
{
    const size_t m = static_cast<size_t>(metric);
    NWSIM_ASSERT(m < static_cast<size_t>(SampleMetric::NumMetrics),
                 "bad sample metric");
    MetricEstimate est;
    est.n = intervals();
    if (est.n == 0)
        return est;

    double total = 0.0;
    for (const IntervalSample &s : samples)
        total += s.values[m];
    est.mean = total / static_cast<double>(est.n);

    if (est.n >= 2) {
        double sq = 0.0;
        for (const IntervalSample &s : samples) {
            const double d = s.values[m] - est.mean;
            sq += d * d;
        }
        est.stddev = std::sqrt(sq / static_cast<double>(est.n - 1));
    }
    return est;
}

void
SampleAggregator::saveState(ckpt::ByteSink &sink) const
{
    sink.u64v(samples.size());
    for (const IntervalSample &s : samples) {
        for (double v : s.values)
            sink.f64v(v);
        for (double v : s.floatSums)
            sink.f64v(v);
    }
    sink.boolv(haveSum);
    if (haveSum)
        packRunResultFields(sink, sum);
}

bool
SampleAggregator::loadState(ckpt::ByteSource &src)
{
    constexpr size_t nDoubles =
        static_cast<size_t>(SampleMetric::NumMetrics) +
        IntervalSample::kNumFloatSums;
    u64 count = 0;
    // Each sample is 8 * nDoubles encoded bytes; a count the remaining
    // bytes cannot hold is corruption — reject before reserving.
    if (!src.u64v(count) || count > src.remaining() / (8 * nDoubles))
        return false;
    std::vector<IntervalSample> loaded;
    loaded.reserve(count);
    for (u64 i = 0; i < count; ++i) {
        IntervalSample s;
        for (double &v : s.values) {
            if (!src.f64v(v))
                return false;
        }
        for (double &v : s.floatSums) {
            if (!src.f64v(v))
                return false;
        }
        loaded.push_back(s);
    }
    bool have = false;
    if (!src.boolv(have))
        return false;
    RunResult loaded_sum;
    if (have && !unpackRunResultFields(src, loaded_sum))
        return false;
    samples = std::move(loaded);
    haveSum = have;
    sum = std::move(loaded_sum);
    return true;
}

RunResult
SampleAggregator::aggregate() const
{
    NWSIM_ASSERT(haveSum, "aggregate() with no intervals");
    RunResult r = sum;
    // Fold every float-summed quantity over the intervals in order —
    // the canonical sequence that makes sharded merges bit-exact (the
    // running totals sumInto() left in r.gating were grouping-dependent;
    // overwrite them).
    double fold[IntervalSample::kNumFloatSums] = {};
    for (const IntervalSample &s : samples) {
        for (size_t i = 0; i < IntervalSample::kNumFloatSums; ++i)
            fold[i] += s.floatSums[i];
    }
    r.gating.baselineMwSum = fold[0];
    r.gating.gatedMwSum = fold[1];
    r.gating.overheadMwSum = fold[2];
    r.gating.saved16MwSum = fold[3];
    r.gating.saved33MwSum = fold[4];
    const double commits = static_cast<double>(r.core.committed);
    r.l1dMissRate = commits > 0.0 ? fold[5] / commits : 0.0;
    r.l1iMissRate = commits > 0.0 ? fold[6] / commits : 0.0;
    return r;
}

} // namespace nwsim::sample
