/**
 * @file
 * Byte-exact little-endian serialization primitives.
 *
 * Home of the encoder/decoder pair that every binary format in the
 * tree shares: campaign outcome/job-spec blobs and the TCP frame layer
 * (exp/wire.hh re-exports these as WireSink/WireSource), and the
 * checkpoint subsystem's machine-state snapshots (ckpt/checkpoint.hh).
 *
 * Header-only on purpose: component state serializers
 * (SparseMemory::saveState, Cache::saveState, OutOfOrderCore::saveState,
 * ...) live in low-level libraries that must not depend on the campaign
 * engine, so the primitives they encode with cannot live in nwsim_exp.
 *
 * Every numeric field is encoded explicitly (u64 little-endian, doubles
 * bit-cast), never memcpy'd as a struct, so encodings are independent
 * of padding and byte-stable across builds; all reads fail-stop on
 * underrun and report a classified WireError instead of misparsing.
 */

#ifndef NWSIM_CKPT_SERIAL_HH
#define NWSIM_CKPT_SERIAL_HH

#include <bit>
#include <cstring>
#include <string>
#include <string_view>

#include "common/types.hh"

namespace nwsim::ckpt
{

/** Why a binary blob was rejected (None = parsed successfully). */
enum class WireError : u8
{
    None,            ///< parsed successfully
    Truncated,       ///< ran out of bytes mid-field (torn write)
    BadMagic,        ///< does not start with the expected magic
    VersionMismatch, ///< right magic, other format generation
    Corrupt,         ///< framed correctly but contents are invalid
};

/** Printable reason ("truncated", "bad-magic", ...; "" for None). */
inline const char *
wireErrorName(WireError err)
{
    switch (err) {
    case WireError::None:
        return "";
    case WireError::Truncated:
        return "truncated";
    case WireError::BadMagic:
        return "bad-magic";
    case WireError::VersionMismatch:
        return "version-mismatch";
    case WireError::Corrupt:
        return "corrupt";
    }
    return "?";
}

/** FNV-1a 64-bit hash (journal records, checkpoint checksums). */
inline u64
fnv1a64(std::string_view bytes)
{
    u64 hash = 0xcbf29ce484222325ULL;
    for (char c : bytes) {
        hash ^= static_cast<u8>(c);
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

/** Little-endian primitive encoder. */
class ByteSink
{
  public:
    void
    u8v(u8 v)
    {
        bytes.push_back(static_cast<char>(v));
    }

    void
    boolv(bool v)
    {
        u8v(v ? 1 : 0);
    }

    void
    u32v(u32 v)
    {
        for (int i = 0; i < 4; ++i)
            bytes.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }

    void
    u64v(u64 v)
    {
        for (int i = 0; i < 8; ++i)
            bytes.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }

    void
    f64v(double v)
    {
        u64v(std::bit_cast<u64>(v));
    }

    void
    str(const std::string &s)
    {
        u64v(s.size());
        bytes.append(s);
    }

    void
    magic(const char m[4])
    {
        bytes.append(m, 4);
    }

    void
    raw(std::string_view v)
    {
        bytes.append(v);
    }

    size_t size() const { return bytes.size(); }

    std::string take() { return std::move(bytes); }

  private:
    std::string bytes;
};

/** Little-endian primitive decoder; all reads fail-stop on underrun. */
class ByteSource
{
  public:
    explicit ByteSource(std::string_view view) : data(view) {}

    bool
    u8v(u8 &v)
    {
        if (pos + 1 > data.size())
            return fail();
        v = static_cast<u8>(data[pos++]);
        return true;
    }

    bool
    boolv(bool &v)
    {
        u8 b = 0;
        if (!u8v(b))
            return false;
        v = b != 0;
        return true;
    }

    bool
    u32v(u32 &v)
    {
        if (pos + 4 > data.size())
            return fail();
        v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<u32>(static_cast<u8>(data[pos + i]))
                 << (8 * i);
        pos += 4;
        return true;
    }

    bool
    u64v(u64 &v)
    {
        if (pos + 8 > data.size())
            return fail();
        v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<u64>(static_cast<u8>(data[pos + i]))
                 << (8 * i);
        pos += 8;
        return true;
    }

    /** unsigned via u32 (every config count fits comfortably). */
    bool
    uns(unsigned &v)
    {
        u32 x = 0;
        if (!u32v(x))
            return false;
        v = x;
        return true;
    }

    bool
    f64v(double &v)
    {
        u64 bits = 0;
        if (!u64v(bits))
            return false;
        v = std::bit_cast<double>(bits);
        return true;
    }

    bool
    str(std::string &s)
    {
        u64 n = 0;
        if (!u64v(n) || pos + n > data.size() || pos + n < pos)
            return fail();
        s.assign(data.substr(pos, n));
        pos += n;
        return true;
    }

    /**
     * Classify the blob header: BadMagic / VersionMismatch / Truncated
     * fail fast before any payload field is touched.
     */
    WireError
    header(const char magic[4], u8 version)
    {
        if (data.size() < 5)
            return WireError::Truncated;
        if (std::memcmp(data.data(), magic, 4) != 0)
            return WireError::BadMagic;
        pos = 4;
        u8 got = 0;
        u8v(got);
        if (got != version)
            return WireError::VersionMismatch;
        return WireError::None;
    }

    /** Exactly @p n raw bytes from the cursor (page images). */
    bool
    take(size_t n, std::string_view &out)
    {
        if (pos + n > data.size() || pos + n < pos)
            return fail();
        out = data.substr(pos, n);
        pos += n;
        return true;
    }

    /** Everything from the cursor to the end (for nested blobs). */
    std::string_view
    rest()
    {
        std::string_view r = data.substr(pos);
        pos = data.size();
        return r;
    }

    bool exhausted() const { return ok_ && pos == data.size(); }
    bool ok() const { return ok_; }

    /**
     * Bytes left to read. Bound untrusted element counts against this
     * before reserving containers, so a corrupt count fails cleanly
     * instead of attempting a huge allocation.
     */
    size_t remaining() const { return data.size() - pos; }

  private:
    bool
    fail()
    {
        ok_ = false;
        return false;
    }

    std::string_view data;
    size_t pos = 0;
    bool ok_ = true;
};

} // namespace nwsim::ckpt

#endif // NWSIM_CKPT_SERIAL_HH
