/**
 * @file
 * Checkpoint file format and durability (docs/CHECKPOINT.md).
 *
 * A checkpoint is one file:
 *
 *   "NWCK" | version u8 | payload-length u64 | payload | fnv1a64 u64
 *
 * The payload opens with a CheckpointMeta — which workload/config-spec
 * the state belongs to, what kind of state it is, and the stream
 * position (retired instructions) it captures — followed by the
 * machine-state blob (OutOfOrderCore::saveState or FuncSim + memory for
 * functional shard checkpoints, plus the runner's own cursors).
 *
 * Durability rules:
 *  - writes go to "<path>.tmp", fsync, then rename(2): a reader never
 *    sees a half-written file, no matter when the writer is SIGKILLed;
 *  - reads verify magic, version, framing, and checksum before any
 *    payload field is parsed, and classify every malformed file as a
 *    WireError — a torn or bit-flipped checkpoint is a diagnosed
 *    "start fresh", never undefined behavior;
 *  - restores additionally refuse a checkpoint whose meta does not
 *    match the job about to run (wrong workload or config spec).
 */

#ifndef NWSIM_CKPT_CHECKPOINT_HH
#define NWSIM_CKPT_CHECKPOINT_HH

#include <string>
#include <string_view>

#include "ckpt/serial.hh"

namespace nwsim::ckpt
{

/** Checkpoint file magic. */
inline constexpr char kCkptMagic[5] = "NWCK";

/**
 * Checkpoint format generation; bump on any layout change.
 *
 * v2: embedded RunResult fields gained the superblock trace-cache
 * counters (driver/result_serial.hh).
 */
inline constexpr u8 kCkptVersion = 2;

/**
 * Default checkpoint cadence (retired instructions between writes) when
 * a job enables checkpointing without an explicit `+ckpt=N`. At typical
 * simulation speeds this is seconds of progress per write, keeping the
 * write overhead well under the documented 5% budget.
 */
inline constexpr u64 kDefaultCkptEvery = 1000000;

/** What machine state a checkpoint payload carries. */
enum class CkptKind : u8
{
    /** Full detailed-core state (OutOfOrderCore::saveState). */
    Full = 0,
    /** Functional stream state only (shard planner checkpoints). */
    Functional = 1,
};

/** Printable kind name ("full" / "functional"). */
const char *ckptKindName(CkptKind kind);

/**
 * Identity and position of a checkpoint: enough to decide whether the
 * file may seed a given job, and where that job resumes.
 */
struct CheckpointMeta
{
    std::string workload;
    std::string configSpec;
    CkptKind kind = CkptKind::Full;
    /**
     * Stream position in retired instructions: warmup-consumed plus
     * measured-committed for detailed runs, functional instructions
     * executed for sampled/shard runs.
     */
    u64 position = 0;

    bool
    matches(const std::string &wl, const std::string &spec) const
    {
        return workload == wl && configSpec == spec;
    }
};

/**
 * Atomically write a checkpoint file: meta + @p payload framed,
 * checksummed, written to "<path>.tmp", fsynced, renamed onto @p path.
 * Returns false (leaving any previous checkpoint at @p path intact) if
 * any filesystem step fails; @p error then holds a diagnostic.
 */
bool writeCheckpointFile(const std::string &path,
                         const CheckpointMeta &meta,
                         std::string_view payload, std::string &error);

/**
 * Read and verify a checkpoint file. On WireError::None, @p meta and
 * @p payload hold the decoded contents. Classification:
 *  - Truncated: unreadable/short file or framing underrun (torn write
 *    that escaped the tmp+rename discipline, e.g. a copied partial);
 *  - BadMagic / VersionMismatch: not a checkpoint / other generation;
 *  - Corrupt: framing intact but checksum or meta fields invalid.
 */
WireError readCheckpointFile(const std::string &path,
                             CheckpointMeta &meta, std::string &payload);

/**
 * Cheap existence + header probe: decode just the meta (full checksum
 * still verified — checkpoints are small). Used by the crash/timeout
 * classifier to stamp checkpoint provenance on a dead job's outcome.
 */
WireError probeCheckpoint(const std::string &path, CheckpointMeta &meta);

/** True if a regular file exists at @p path. */
bool checkpointExists(const std::string &path);

// ---- Graceful-shutdown interrupt flag ---------------------------------
//
// SIGTERM handlers set this (async-signal-safe); checkpointed runners
// poll it at checkpoint-safe points, write a final checkpoint, and
// throw InterruptedError. Process-global on purpose: one flag per
// (single-job) worker child.

/** Request an interrupt (async-signal-safe; callable from a handler). */
void requestInterrupt();

/** True once requestInterrupt() has been called. */
bool interruptRequested();

/** Reset the flag (test isolation; start of a new in-process run). */
void clearInterrupt();

} // namespace nwsim::ckpt

#endif // NWSIM_CKPT_CHECKPOINT_HH
