/**
 * @file
 * Checkpointed and sharded run drivers (docs/CHECKPOINT.md).
 *
 * Three entry points layered over the plain runners:
 *
 *  - runCheckpointedProgram(): runProgram()/runSampledProgram() with a
 *    checkpoint cadence. The run restores implicitly from the policy's
 *    checkpoint file when a valid, matching one exists, writes a fresh
 *    checkpoint every `everyInsts` retired instructions, and — when a
 *    graceful shutdown is requested (ckpt::requestInterrupt, wired to
 *    SIGTERM by the campaign engine) — writes a final checkpoint at the
 *    next safe point and throws InterruptedError.
 *
 *  - planShards(): split one sampled job's interval schedule into K
 *    contiguous period ranges, fast-forwarding the functional stream
 *    once to capture a functional checkpoint at each range boundary.
 *
 *  - runShardProgram(): execute one period range from its functional
 *    checkpoint, probing each sample point on a disposable detailed
 *    core, and return the serialized SampleAggregator for the driver's
 *    shard-order merge (exp/shard.hh).
 *
 * Shard semantics — probe-isolated sampling: the persistent stream is
 * pure functional execution, and each probe runs on a cold disposable
 * core over a *copy* of the stream's memory, so probes never feed back
 * into stream state. Stream position is therefore a pure function of
 * the sample schedule, which is what lets the planner plan without
 * running probes — and what makes the merged result bit-identical for
 * every shard count K (K=1 is the reference the tests compare against).
 */

#ifndef NWSIM_CKPT_RUN_HH
#define NWSIM_CKPT_RUN_HH

#include <string>
#include <vector>

#include "ckpt/checkpoint.hh"
#include "driver/runner.hh"

namespace nwsim
{
class CoreObserver;
}

namespace nwsim::ckpt
{

/** Where checkpoints go and which job identity they are bound to. */
struct CkptRunPolicy
{
    /**
     * Checkpoint file path ("" = keep the cadence's drain semantics but
     * persist nothing — a `+ckpt=N` run's statistics must not depend on
     * whether a checkpoint directory happens to be configured).
     */
    std::string path;
    /** Meta binding: restore refuses a checkpoint from another job. */
    std::string workload;
    std::string configSpec;
    /** Cadence in retired instructions; must be > 0. */
    u64 everyInsts = kDefaultCkptEvery;
};

/**
 * Checkpointed counterpart of runProgram()/runSampledProgram()
 * (dispatches on opts.sample.enabled). Restores from policy.path when
 * a valid matching checkpoint exists; a missing, torn, corrupt, or
 * mismatched file is diagnosed and the run starts fresh. Deletes the
 * checkpoint on successful completion.
 *
 * Throws InterruptedError (carrying the final checkpoint's path and
 * position) if ckpt::interruptRequested() becomes true mid-run.
 */
RunResult runCheckpointedProgram(const Program &program,
                                 const CoreConfig &config,
                                 const RunOptions &opts,
                                 const std::string &name,
                                 const std::string &config_name,
                                 const CkptRunPolicy &policy,
                                 CoreObserver *observer = nullptr);

/** One shard: a contiguous period range + its starting stream state. */
struct ShardAssignment
{
    u64 startPeriod = 0;
    /** One past the last period this shard probes. */
    u64 endPeriod = 0;
    /**
     * Functional checkpoint of the stream at startPeriod (memory +
     * FuncSim state); empty for shard 0, which starts fresh. Travels
     * inside the job spec, so a killed shard job simply restarts from
     * it — the shard's assignment is its own checkpoint.
     */
    std::string ckptBlob;
};

/** planShards() result. */
struct ShardPlan
{
    /** Periods the schedule yields before the budget ends. */
    u64 totalPeriods = 0;
    std::vector<ShardAssignment> shards;
};

/**
 * Split @p opts.sample's schedule into @p shard_count contiguous period
 * ranges, executing the functional stream once (no probes) to capture
 * each range's starting state. Ranges are balanced; when the schedule
 * has fewer periods than requested shards, the plan has fewer shards.
 */
ShardPlan planShards(const Program &program, const CoreConfig &config,
                     const RunOptions &opts, u64 shard_count);

/** What one shard hands back for the driver-side merge. */
struct ShardRunOutput
{
    /** SampleAggregator::saveState blob (exp/shard.hh merges these). */
    std::string aggBlob;
    u64 intervals = 0;
    /** Stream position when the shard finished (schedule bookkeeping). */
    u64 streamInsts = 0;
};

/**
 * Execute periods [start_period, end_period) from @p ckpt_blob
 * (planShards output; empty = fresh stream). Probes that measure
 * nothing (stream halted) are skipped; a shard whose whole range lies
 * past the halt returns zero intervals.
 *
 * Throws InterruptedError (no checkpoint — the shard's assignment is
 * its restart point) on a graceful-shutdown request.
 */
ShardRunOutput runShardProgram(const Program &program,
                               const CoreConfig &config,
                               const RunOptions &opts,
                               const std::string &name,
                               const std::string &config_name,
                               u64 start_period, u64 end_period,
                               const std::string &ckpt_blob,
                               CoreObserver *observer = nullptr);

} // namespace nwsim::ckpt

#endif // NWSIM_CKPT_RUN_HH
