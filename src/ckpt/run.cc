#include "ckpt/run.hh"

#include <algorithm>
#include <csignal>
#include <cstdlib>

#include <unistd.h>

#include "common/error.hh"
#include "common/logging.hh"
#include "func/func_sim.hh"
#include "mem/cache.hh"
#include "pipeline/core.hh"
#include "sample/controller.hh"

namespace nwsim::ckpt
{

namespace
{

/** Payload discriminator after the meta (detailed vs sampled state). */
constexpr u8 kPayloadDetailed = 0;
constexpr u8 kPayloadSampled = 1;

/**
 * Deterministic kill/stop injection for the robustness tests:
 *  - NWSIM_CKPT_TEST_KILL_AT=N  raise(SIGKILL) at the first safe point
 *    at or past stream position N (after the checkpoint write, so a
 *    durable checkpoint exists to resume from);
 *  - NWSIM_CKPT_TEST_STOP_AT=N  requestInterrupt() there instead (the
 *    graceful path: final checkpoint + InterruptedError).
 * Both fire only when the run *crosses* the threshold — a restored run
 * that starts at or past N does not re-fire.
 */
struct TestHooks
{
    u64 stopAt = 0;
    u64 killAt = 0;
};

TestHooks
readTestHooks()
{
    TestHooks t;
    if (const char *v = std::getenv("NWSIM_CKPT_TEST_STOP_AT"))
        t.stopAt = std::strtoull(v, nullptr, 0);
    if (const char *v = std::getenv("NWSIM_CKPT_TEST_KILL_AT"))
        t.killAt = std::strtoull(v, nullptr, 0);
    return t;
}

bool
crossed(u64 threshold, u64 start_position, u64 position)
{
    return threshold != 0 && start_position < threshold &&
           threshold <= position;
}

void
fireTestHooks(const TestHooks &t, u64 start_position, u64 position)
{
    if (crossed(t.killAt, start_position, position))
        ::raise(SIGKILL);
    if (crossed(t.stopAt, start_position, position))
        requestInterrupt();
}

bool
writeJobCkpt(const CkptRunPolicy &policy, u64 position,
             std::string_view payload)
{
    if (policy.path.empty())
        return false;
    CheckpointMeta meta;
    meta.workload = policy.workload;
    meta.configSpec = policy.configSpec;
    meta.kind = CkptKind::Full;
    meta.position = position;
    std::string error;
    if (!writeCheckpointFile(policy.path, meta, payload, error)) {
        // Non-fatal: the run continues, it just can't resume from here.
        NWSIM_WARN("checkpoint write failed: ", error);
        return false;
    }
    return true;
}

/**
 * Load and validate the job's checkpoint payload, if any. A missing
 * file is a silent fresh start; a torn/corrupt/mismatched one is
 * diagnosed and ignored (fresh start) — never an error, so a damaged
 * checkpoint can only cost progress, not the job.
 */
bool
readJobCkpt(const CkptRunPolicy &policy, std::string &payload)
{
    if (policy.path.empty() || !checkpointExists(policy.path))
        return false;
    CheckpointMeta meta;
    const WireError err = readCheckpointFile(policy.path, meta, payload);
    if (err != WireError::None) {
        NWSIM_WARN("ignoring checkpoint ", policy.path, " (",
                   wireErrorName(err), "); starting fresh");
        return false;
    }
    if (meta.kind != CkptKind::Full ||
        !meta.matches(policy.workload, policy.configSpec)) {
        NWSIM_WARN("ignoring checkpoint ", policy.path, " for ",
                   meta.workload, "/", meta.configSpec, " (job is ",
                   policy.workload, "/", policy.configSpec,
                   "); starting fresh");
        return false;
    }
    return true;
}

double
deltaMissRate(const CacheStats &before, const CacheStats &after)
{
    const u64 accesses = after.accesses - before.accesses;
    const u64 misses = after.misses - before.misses;
    return accesses ? static_cast<double>(misses) /
                          static_cast<double>(accesses)
                    : 0.0;
}

/**
 * Detailed-mode checkpointed run. `+ckpt=N` defines the cadence as part
 * of the run's semantics: the measurement window executes in N-retired-
 * instruction chunks with a pipeline drain at every interior cadence
 * boundary, whether or not a checkpoint file is configured and whether
 * or not the run was ever interrupted. Any two runs of the same spec —
 * uninterrupted, or killed and resumed any number of times — therefore
 * drain and chunk at identical stream positions, which is what makes
 * their results bit-identical under tests/stat_diff.hh.
 */
RunResult
runDetailedCheckpointed(const Program &program, const CoreConfig &config,
                        const RunOptions &opts, const std::string &name,
                        const std::string &config_name,
                        const CkptRunPolicy &policy,
                        CoreObserver *observer)
{
    const u64 cadence = policy.everyInsts;
    SparseMemory memory;
    program.load(memory);
    OutOfOrderCore core(config, memory, program.entry);

    bool in_measure = false;
    u64 warmup_committed = 0;
    u64 measured = 0;

    std::string payload;
    if (readJobCkpt(policy, payload)) {
        ByteSource src(payload);
        u8 mode = 0;
        if (!src.u8v(mode) || mode != kPayloadDetailed ||
            !src.boolv(in_measure) || !src.u64v(warmup_committed) ||
            !src.u64v(measured) || !core.loadState(src) ||
            !src.exhausted()) {
            // The checksum passed, so this is not disk corruption: the
            // file disagrees with the code reading it.
            NWSIM_PANIC("checkpoint ", policy.path,
                        " passed its checksum but failed to parse");
        }
        NWSIM_WARN("resuming ", name, " from checkpoint at position ",
                   warmup_committed + measured);
    }
    if (observer)
        core.setObserver(observer);

    const TestHooks hooks = readTestHooks();
    const u64 start_position = warmup_committed + measured;
    u64 position = start_position;
    u64 next_ckpt = (position / cadence + 1) * cadence;

    const auto safePoint = [&]() {
        ByteSink sink;
        sink.u8v(kPayloadDetailed);
        sink.boolv(in_measure);
        sink.u64v(warmup_committed);
        sink.u64v(measured);
        core.saveState(sink);
        writeJobCkpt(policy, position, sink.take());
        fireTestHooks(hooks, start_position, position);
        if (interruptRequested())
            throw InterruptedError(policy.path, position);
    };

    if (!in_measure) {
        while (warmup_committed < opts.warmupInsts && !core.done()) {
            const u64 chunk = std::min(
                opts.warmupInsts - warmup_committed, next_ckpt - position);
            const u64 got = opts.fastWarmup ? core.fastForward(chunk)
                                            : core.run(chunk);
            warmup_committed += got;
            position += got;
            if (got < chunk)
                break;  // reached HALT (or stopped short)
            if (position == next_ckpt) {
                if (!opts.fastWarmup)
                    core.drainInFlight();
                safePoint();
                next_ckpt += cadence;
            }
        }
        if (core.done()) {
            NWSIM_WARN("workload ", name, " halted during warmup (",
                       warmup_committed, " insts); measuring anyway");
        }
        core.resetStats();
        in_measure = true;
    }

    while (measured < opts.measureInsts && !core.done()) {
        const u64 chunk =
            std::min(opts.measureInsts - measured, next_ckpt - position);
        const u64 got = core.run(chunk);
        measured += got;
        position += got;
        if (got < chunk)
            break;
        // Interior boundaries only: the final chunk ends the window
        // with the pipeline state a plain run would have.
        if (position == next_ckpt && measured < opts.measureInsts) {
            core.drainInFlight();
            safePoint();
            next_ckpt += cadence;
        }
    }
    if (measured < opts.measureInsts && !core.done())
        NWSIM_WARN("workload ", name, " measured only ", measured,
                   " insts");

    RunResult result = collectRunResult(core, name, config_name);
    result.warmupCommitted = warmup_committed;
    if (!policy.path.empty())
        ::unlink(policy.path.c_str());
    return result;
}

/**
 * Sampled-mode checkpointed run. Checkpoints ride the stream's natural
 * safe points — interval boundaries (where the next fast-forward would
 * drain anyway) and fast-forward chunk boundaries (window empty) — so
 * a sampled `+ckpt=N` run is stat-identical to the plain sampled run,
 * interrupted or not.
 */
RunResult
runSampledCheckpointed(const Program &program, const CoreConfig &config,
                       const RunOptions &opts, const std::string &name,
                       const std::string &config_name,
                       const CkptRunPolicy &policy,
                       CoreObserver *observer)
{
    const u64 cadence = policy.everyInsts;
    const TestHooks th = readTestHooks();

    std::string payload;
    const bool have = readJobCkpt(policy, payload);

    u64 start_position = 0;
    u64 next_ckpt = cadence;
    sample::SampleHooks hooks;
    hooks.ffChunkInsts = cadence;
    if (have) {
        hooks.onStart = [&, payload](OutOfOrderCore &core,
                                     sample::SampleAggregator &agg,
                                     u64 &position, u64 &period) {
            ByteSource src(payload);
            u8 mode = 0;
            if (!src.u8v(mode) || mode != kPayloadSampled ||
                !src.u64v(position) || !src.u64v(period) ||
                !agg.loadState(src) || !core.loadState(src) ||
                !src.exhausted()) {
                NWSIM_PANIC("checkpoint ", policy.path,
                            " passed its checksum but failed to parse");
            }
            NWSIM_WARN("resuming ", name,
                       " from checkpoint at position ", position);
            start_position = position;
            next_ckpt = position + cadence;
        };
    }
    hooks.atSafePoint = [&](OutOfOrderCore &core,
                            sample::SampleAggregator &agg, u64 position,
                            u64 period) {
        const bool due = position >= next_ckpt;
        const bool injected =
            crossed(th.stopAt, start_position, position) ||
            crossed(th.killAt, start_position, position);
        if (!due && !injected && !interruptRequested())
            return;
        // No-op mid-fast-forward (already drained); stat-invisible at
        // interval boundaries (the next iteration drains anyway, and
        // the squashes land in warmup state resetStats() discards).
        core.drainInFlight();
        ByteSink sink;
        sink.u8v(kPayloadSampled);
        sink.u64v(position);
        sink.u64v(period);
        agg.saveState(sink);
        core.saveState(sink);
        writeJobCkpt(policy, position, sink.take());
        if (due)
            next_ckpt = (position / cadence + 1) * cadence;
        fireTestHooks(th, start_position, position);
        if (interruptRequested())
            throw InterruptedError(policy.path, position);
    };

    RunResult result = sample::runSampledProgram(
        program, config, opts, name, config_name, observer, &hooks);
    if (!policy.path.empty())
        ::unlink(policy.path.c_str());
    return result;
}

} // namespace

RunResult
runCheckpointedProgram(const Program &program, const CoreConfig &config,
                       const RunOptions &opts, const std::string &name,
                       const std::string &config_name,
                       const CkptRunPolicy &policy,
                       CoreObserver *observer)
{
    NWSIM_ASSERT(policy.everyInsts > 0,
                 "runCheckpointedProgram without a cadence");
    if (opts.sample.enabled) {
        return runSampledCheckpointed(program, config, opts, name,
                                      config_name, policy, observer);
    }
    return runDetailedCheckpointed(program, config, opts, name,
                                   config_name, policy, observer);
}

ShardPlan
planShards(const Program &program, const CoreConfig &config,
           const RunOptions &opts, u64 shard_count)
{
    const SampleOptions &s = opts.sample;
    NWSIM_ASSERT(s.enabled, "planShards without a sample schedule");
    NWSIM_ASSERT(shard_count > 0, "planShards with zero shards");
    sample::validateSampleOptions(s);
    const u64 budget = opts.warmupInsts + opts.measureInsts;
    const u64 detailed = s.warmupInsts + s.measureInsts;

    // The schedule is a pure function of the options: count its
    // periods without touching the stream.
    ShardPlan plan;
    while (plan.totalPeriods * s.periodInsts +
               sample::sampleOffset(s, plan.totalPeriods) <
           budget) {
        ++plan.totalPeriods;
    }
    if (plan.totalPeriods == 0)
        return plan;
    const u64 nshards = std::min(shard_count, plan.totalPeriods);

    // One functional pass over the stream, snapshotting at each shard
    // boundary. This is the planner's whole cost: no detailed probes.
    SparseMemory memory;
    program.load(memory);
    FuncSim stream(memory, program.entry, layout::stackTop,
                   config.decodeCache);
    u64 position = 0;
    u64 next_shard = 0;
    for (u64 p = 0; p < plan.totalPeriods; ++p) {
        if (next_shard < nshards &&
            p == next_shard * plan.totalPeriods / nshards) {
            ShardAssignment a;
            a.startPeriod = p;
            a.endPeriod =
                (next_shard + 1) * plan.totalPeriods / nshards;
            if (p > 0) {
                ByteSink sink;
                memory.saveState(sink);
                stream.saveState(sink);
                a.ckptBlob = sink.take();
            }
            plan.shards.push_back(std::move(a));
            ++next_shard;
        }
        // Advance exactly as runShardProgram does: to the sample
        // point, then past the probe's detailed budget. Both calls
        // no-op once the stream halts, so post-halt snapshots capture
        // the same (halted) state a continuous run would carry.
        const u64 sample_at =
            p * s.periodInsts + sample::sampleOffset(s, p);
        if (sample_at > position)
            position += stream.run(sample_at - position);
        position += stream.run(detailed);
    }
    return plan;
}

ShardRunOutput
runShardProgram(const Program &program, const CoreConfig &config,
                const RunOptions &opts, const std::string &name,
                const std::string &config_name, u64 start_period,
                u64 end_period, const std::string &ckpt_blob,
                CoreObserver *observer)
{
    const SampleOptions &s = opts.sample;
    NWSIM_ASSERT(s.enabled, "runShardProgram without a sample schedule");
    sample::validateSampleOptions(s);
    const u64 budget = opts.warmupInsts + opts.measureInsts;
    const u64 detailed = s.warmupInsts + s.measureInsts;

    SparseMemory memory;
    program.load(memory);
    FuncSim stream(memory, program.entry, layout::stackTop,
                   config.decodeCache);
    if (!ckpt_blob.empty()) {
        ByteSource src(ckpt_blob);
        if (!memory.loadState(src) || !stream.loadState(src) ||
            !src.exhausted()) {
            NWSIM_FATAL("shard checkpoint blob for ", name,
                        " is corrupt");
        }
    }
    u64 position = stream.instCount();

    sample::SampleAggregator agg;
    for (u64 p = start_period; p < end_period; ++p) {
        if (interruptRequested()) {
            // No file checkpoint: the shard's assignment (its spec +
            // blob) is its restart point.
            throw InterruptedError(std::string(), position);
        }
        const u64 sample_at =
            p * s.periodInsts + sample::sampleOffset(s, p);
        if (sample_at >= budget)
            break;
        if (sample_at > position)
            position += stream.run(sample_at - position);
        if (stream.halted())
            break;

        // Probe on a cold disposable core over a *copy* of the stream's
        // memory: probe stores must never feed back into the stream.
        SparseMemory probe_mem(memory);
        OutOfOrderCore core(config, probe_mem, stream.pc());
        if (observer)
            core.setObserver(observer);
        core.seedArchRegs(stream.regFile());

        const u64 warmed = core.run(s.warmupInsts);
        const CacheStats l1d0 = core.memSystem().l1d().stats();
        const CacheStats l1i0 = core.memSystem().l1i().stats();
        core.resetStats();
        const u64 measured = core.run(s.measureInsts);
        if (measured) {
            RunResult interval =
                collectRunResult(core, name, config_name);
            interval.warmupCommitted = warmed;
            interval.l1dMissRate =
                deltaMissRate(l1d0, core.memSystem().l1d().stats());
            interval.l1iMissRate =
                deltaMissRate(l1i0, core.memSystem().l1i().stats());
            agg.addInterval(interval);
        }

        // The stream advances by exactly the probe's detailed budget,
        // functionally: position stays a pure function of the
        // schedule, independent of what the probe committed.
        position += stream.run(detailed);
    }

    ShardRunOutput out;
    ByteSink sink;
    agg.saveState(sink);
    out.aggBlob = sink.take();
    out.intervals = agg.intervals();
    out.streamInsts = position;
    return out;
}

} // namespace nwsim::ckpt
