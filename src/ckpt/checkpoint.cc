#include "ckpt/checkpoint.hh"

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

namespace nwsim::ckpt
{

const char *
ckptKindName(CkptKind kind)
{
    switch (kind) {
    case CkptKind::Full:
        return "full";
    case CkptKind::Functional:
        return "functional";
    }
    return "?";
}

namespace
{

void
packMeta(ByteSink &s, const CheckpointMeta &meta)
{
    s.str(meta.workload);
    s.str(meta.configSpec);
    s.u8v(static_cast<u8>(meta.kind));
    s.u64v(meta.position);
}

bool
unpackMeta(ByteSource &s, CheckpointMeta &meta)
{
    u8 kind8 = 0;
    if (!s.str(meta.workload) || !s.str(meta.configSpec) ||
        !s.u8v(kind8) || !s.u64v(meta.position)) {
        return false;
    }
    if (kind8 > static_cast<u8>(CkptKind::Functional))
        return false;
    meta.kind = static_cast<CkptKind>(kind8);
    return true;
}

/** Read a whole file; false with errno-style message on failure. */
bool
slurp(const std::string &path, std::string &out, std::string &error)
{
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
        error = std::strerror(errno);
        return false;
    }
    out.clear();
    char buf[1 << 16];
    for (;;) {
        const ssize_t n = ::read(fd, buf, sizeof(buf));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            error = std::strerror(errno);
            ::close(fd);
            return false;
        }
        if (n == 0)
            break;
        out.append(buf, static_cast<size_t>(n));
    }
    ::close(fd);
    return true;
}

WireError
parseCheckpoint(std::string_view file, CheckpointMeta &meta,
                std::string &payload)
{
    ByteSource s(file);
    if (const WireError err = s.header(kCkptMagic, kCkptVersion);
        err != WireError::None) {
        return err;
    }
    u64 len = 0;
    if (!s.u64v(len))
        return WireError::Truncated;
    std::string_view body;
    if (!s.take(len, body))
        return WireError::Truncated;
    u64 sum = 0;
    if (!s.u64v(sum))
        return WireError::Truncated;
    if (!s.exhausted())
        return WireError::Corrupt; // trailing garbage
    if (fnv1a64(body) != sum)
        return WireError::Corrupt;

    ByteSource b(body);
    if (!unpackMeta(b, meta))
        return WireError::Corrupt;
    payload.assign(b.rest());
    return WireError::None;
}

} // namespace

bool
writeCheckpointFile(const std::string &path, const CheckpointMeta &meta,
                    std::string_view payload, std::string &error)
{
    ByteSink body;
    packMeta(body, meta);
    body.raw(payload);
    const std::string body_bytes = body.take();

    ByteSink file;
    file.magic(kCkptMagic);
    file.u8v(kCkptVersion);
    file.u64v(body_bytes.size());
    file.raw(body_bytes);
    file.u64v(fnv1a64(body_bytes));
    const std::string bytes = file.take();

    const std::string tmp = path + ".tmp";
    const int fd =
        ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
               0644);
    if (fd < 0) {
        error = tmp + ": " + std::strerror(errno);
        return false;
    }
    size_t off = 0;
    while (off < bytes.size()) {
        const ssize_t n =
            ::write(fd, bytes.data() + off, bytes.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            error = tmp + ": " + std::strerror(errno);
            ::close(fd);
            ::unlink(tmp.c_str());
            return false;
        }
        off += static_cast<size_t>(n);
    }
    // fsync before rename: the rename must never land before the data,
    // or a crash between them leaves a durable-looking torn file.
    if (::fsync(fd) != 0 || ::close(fd) != 0) {
        error = tmp + ": " + std::strerror(errno);
        ::unlink(tmp.c_str());
        return false;
    }
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        error = path + ": " + std::strerror(errno);
        ::unlink(tmp.c_str());
        return false;
    }
    return true;
}

WireError
readCheckpointFile(const std::string &path, CheckpointMeta &meta,
                   std::string &payload)
{
    std::string file, error;
    if (!slurp(path, file, error))
        return WireError::Truncated;
    return parseCheckpoint(file, meta, payload);
}

WireError
probeCheckpoint(const std::string &path, CheckpointMeta &meta)
{
    std::string payload;
    return readCheckpointFile(path, meta, payload);
}

bool
checkpointExists(const std::string &path)
{
    struct stat st{};
    return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

namespace
{
volatile sig_atomic_t interruptFlag = 0;
} // namespace

void
requestInterrupt()
{
    interruptFlag = 1;
}

bool
interruptRequested()
{
    return interruptFlag != 0;
}

void
clearInterrupt()
{
    interruptFlag = 0;
}

} // namespace nwsim::ckpt
