/**
 * @file
 * Functional-unit power model reproducing the paper's Table 4.
 *
 * Table 4 ("Estimated power consumption of functional units at 3.3V and
 * 500MHz (mW)") gives three points per device which are linear in width:
 *
 *     Device            32-bit  48-bit  64-bit
 *     Adder (CLA)          105     158     210
 *     Booth Multiplier    1050    1580    2100
 *     Bit-Wise Logic       5.8     8.7    11.7
 *     Shifter              4.4     6.6     8.8
 *     Zero-Detect                  4.2
 *     Additional Muxes             3.2
 *
 * The paper assumes the multiplier is "pipelined with its power usage
 * scaling linearly with the operand size", so all devices scale as
 * power(w) = power64 * w / 64. As the paper notes, only the *ratios*
 * between devices matter for the reported savings.
 */

#ifndef NWSIM_POWER_DEVICE_MODEL_HH
#define NWSIM_POWER_DEVICE_MODEL_HH

#include "isa/opcode.hh"

namespace nwsim
{

/** Table 4 parameters (mW at 64 bits, plus fixed overheads). */
struct DeviceModelConfig
{
    double adder64 = 210.0;
    double multiplier64 = 2100.0;
    double logic64 = 11.7;
    double shifter64 = 8.8;
    /** Power of the zero/ones-detect logic per tagged result. */
    double zeroDetect = 4.2;
    /** Power of the widened result-bus muxes per gated operation. */
    double mux = 3.2;
};

/** Width-scalable Table 4 device power model. */
class DeviceModel
{
  public:
    DeviceModel() = default;
    explicit DeviceModel(const DeviceModelConfig &config) : cfg(config) {}

    /** Power (mW) of @p device operating at @p bits of width. */
    double power(DeviceClass device, unsigned bits) const;

    /** Full-width (64-bit) power of @p device: the ungated baseline. */
    double fullPower(DeviceClass device) const { return power(device, 64); }

    double zeroDetectPower() const { return cfg.zeroDetect; }
    double muxPower() const { return cfg.mux; }

    const DeviceModelConfig &config() const { return cfg; }

  private:
    DeviceModelConfig cfg;
};

} // namespace nwsim

#endif // NWSIM_POWER_DEVICE_MODEL_HH
