#include "power/thermal.hh"

#include <cmath>

#include "common/logging.hh"

namespace nwsim
{

void
ThermalModel::step(double power_mw, u64 cycles)
{
    NWSIM_ASSERT(power_mw >= 0.0, "negative power");
    const double target = power_mw * cfg.rthPerMw;
    const double alpha =
        1.0 - std::exp(-static_cast<double>(cycles) / cfg.tauCycles);
    rise += (target - rise) * alpha;
}

ThermalController::ThermalController(double hot, double cool)
    : hotThreshold(hot), coolThreshold(cool)
{
    NWSIM_ASSERT(cool < hot, "hysteresis thresholds inverted");
}

ThermalMode
ThermalController::update(double celsius)
{
    if (current == ThermalMode::Performance && celsius > hotThreshold) {
        current = ThermalMode::Power;
        ++switchCount;
    } else if (current == ThermalMode::Power &&
               celsius < coolThreshold) {
        current = ThermalMode::Performance;
        ++switchCount;
    }
    return current;
}

} // namespace nwsim
