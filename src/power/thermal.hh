/**
 * @file
 * First-order thermal model and a hysteresis mode controller.
 *
 * The paper (Section 5) proposes switching between the power
 * optimization (clock gating) and the performance optimization
 * (operation packing) using "thermal sensory data", citing the
 * PPC750's thermal assist unit. This module provides the two pieces a
 * controller needs: an RC die-temperature integrator driven by the
 * integer unit's per-cycle power, and a two-threshold (hysteresis)
 * mode selector.
 */

#ifndef NWSIM_POWER_THERMAL_HH
#define NWSIM_POWER_THERMAL_HH

#include "common/types.hh"

namespace nwsim
{

/** Thermal-model parameters (toy die, tuned for demonstration). */
struct ThermalConfig
{
    /** Ambient temperature (deg C). */
    double ambient = 45.0;
    /** Thermal resistance: steady-state deg C above ambient per mW. */
    double rthPerMw = 0.085;
    /** Thermal time constant in cycles. */
    double tauCycles = 60000.0;
};

/** First-order (single-RC) die-temperature integrator. */
class ThermalModel
{
  public:
    ThermalModel() = default;
    explicit ThermalModel(const ThermalConfig &config) : cfg(config) {}

    /**
     * Integrate @p cycles of operation at @p power_mw (average
     * integer-unit power per cycle over the interval).
     */
    void step(double power_mw, u64 cycles);

    /** Current die temperature in deg C. */
    double celsius() const { return cfg.ambient + rise; }

    const ThermalConfig &config() const { return cfg; }

  private:
    ThermalConfig cfg;
    double rise = 0.0;      // above ambient
};

/** Operating mode chosen by the thermal controller (paper Section 5). */
enum class ThermalMode : u8
{
    Performance,    ///< operation packing enabled, no gating
    Power,          ///< operand clock gating enabled, no packing
};

/** Two-threshold hysteresis controller over ThermalModel readings. */
class ThermalController
{
  public:
    /**
     * @param hot  Switch to Power mode above this temperature (deg C).
     * @param cool Switch back to Performance mode below this.
     */
    ThermalController(double hot, double cool);

    /** Update with the current temperature; returns the mode to use. */
    ThermalMode update(double celsius);

    ThermalMode mode() const { return current; }
    u64 switches() const { return switchCount; }

  private:
    double hotThreshold;
    double coolThreshold;
    ThermalMode current = ThermalMode::Performance;
    u64 switchCount = 0;
};

} // namespace nwsim

#endif // NWSIM_POWER_THERMAL_HH
