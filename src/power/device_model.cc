#include "power/device_model.hh"

#include "common/logging.hh"

namespace nwsim
{

double
DeviceModel::power(DeviceClass device, unsigned bits) const
{
    NWSIM_ASSERT(bits <= 64, "device width above 64: ", bits);
    const double scale = static_cast<double>(bits) / 64.0;
    switch (device) {
      case DeviceClass::Adder:
        return cfg.adder64 * scale;
      case DeviceClass::Multiplier:
        return cfg.multiplier64 * scale;
      case DeviceClass::BitwiseLogic:
        return cfg.logic64 * scale;
      case DeviceClass::Shifter:
        return cfg.shifter64 * scale;
      case DeviceClass::None:
        return 0.0;
    }
    NWSIM_PANIC("bad device class");
}

} // namespace nwsim
