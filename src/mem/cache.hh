/**
 * @file
 * Timing-only set-associative cache with LRU replacement.
 *
 * The paper's experiments use SimpleScalar's cache timing (Table 1:
 * 64K 2-way L1s, 8M 4-way unified L2, 32B blocks); data contents live in
 * SparseMemory, so the cache tracks tags and latency only. Misses are
 * modeled as blocking with a fixed next-level latency, matching
 * sim-outorder's simple cache-latency accounting.
 */

#ifndef NWSIM_MEM_CACHE_HH
#define NWSIM_MEM_CACHE_HH

#include <string>
#include <vector>

#include "common/types.hh"

namespace nwsim
{

/** Geometry and timing for one cache level. */
struct CacheConfig
{
    std::string name = "cache";
    u64 sizeBytes = 64 * 1024;
    unsigned assoc = 2;
    unsigned blockBytes = 32;
    /** Latency of a hit in this cache, in cycles. */
    unsigned hitLatency = 1;
};

/** Hit/miss statistics for one cache. */
struct CacheStats
{
    u64 accesses = 0;
    u64 misses = 0;

    double
    missRate() const
    {
        return accesses ? static_cast<double>(misses) / accesses : 0.0;
    }
};

/** A single set-associative LRU cache level. */
class Cache
{
  public:
    explicit Cache(const CacheConfig &config);

    /**
     * Access the block containing @p addr.
     * @return true on hit; on miss the block is filled (LRU victim).
     */
    bool access(Addr addr);

    /** Probe without filling or updating LRU (used by tests). */
    bool probe(Addr addr) const;

    /** Invalidate everything (used between benchmark configurations). */
    void flush();

    const CacheConfig &config() const { return cfg; }
    const CacheStats &stats() const { return stat; }

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        u64 lastUse = 0;
    };

    unsigned setIndex(Addr addr) const;
    Addr tagOf(Addr addr) const;

    CacheConfig cfg;
    CacheStats stat;
    unsigned numSets;
    unsigned blockShift;
    u64 useClock = 0;
    std::vector<std::vector<Line>> sets;
};

} // namespace nwsim

#endif // NWSIM_MEM_CACHE_HH
