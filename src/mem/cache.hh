/**
 * @file
 * Timing-only set-associative cache with LRU replacement.
 *
 * The paper's experiments use SimpleScalar's cache timing (Table 1:
 * 64K 2-way L1s, 8M 4-way unified L2, 32B blocks); data contents live in
 * SparseMemory, so the cache tracks tags and latency only. Misses are
 * modeled as blocking with a fixed next-level latency, matching
 * sim-outorder's simple cache-latency accounting.
 */

#ifndef NWSIM_MEM_CACHE_HH
#define NWSIM_MEM_CACHE_HH

#include <string>
#include <vector>

#include "ckpt/serial.hh"
#include "common/logging.hh"
#include "common/types.hh"

namespace nwsim
{

/** Geometry and timing for one cache level. */
struct CacheConfig
{
    std::string name = "cache";
    u64 sizeBytes = 64 * 1024;
    unsigned assoc = 2;
    unsigned blockBytes = 32;
    /** Latency of a hit in this cache, in cycles. */
    unsigned hitLatency = 1;
};

/** Hit/miss statistics for one cache. */
struct CacheStats
{
    u64 accesses = 0;
    u64 misses = 0;

    double
    missRate() const
    {
        return accesses ? static_cast<double>(misses) / accesses : 0.0;
    }
};

/** A single set-associative LRU cache level. */
class Cache
{
  public:
    explicit Cache(const CacheConfig &config);

    /**
     * Access the block containing @p addr.
     * @return true on hit; on miss the block is filled (LRU victim).
     */
    bool access(Addr addr);

    /** Probe without filling or updating LRU (used by tests). */
    bool probe(Addr addr) const;

    /**
     * Repeat-access fast path: access() for an address on the same
     * block as this cache's immediately preceding access. That block is
     * necessarily resident (the previous access filled it on a miss)
     * and already the set's most-recently-used line, so the tag search
     * is skipped; the access counter, replacement clock, and the line's
     * LRU stamp advance exactly as access() would — all downstream
     * state, including checkpoint bytes, is bit-identical. The
     * superblock trace executor bakes this in for straight-line fetch
     * runs within one I-cache block (func/superblock.hh).
     *
     * @pre the previous access() touched the block containing @p addr.
     */
    bool
    sameBlockHit(Addr addr)
    {
        NWSIM_ASSERT(lastTouched && lastTouched->tag == tagOf(addr),
                     "sameBlockHit: previous access touched another "
                     "block in ", cfg.name);
        ++stat.accesses;
        ++useClock;
        lastTouched->lastUse = useClock;
        return true;
    }

    /** Invalidate everything (used between benchmark configurations). */
    void flush();

    const CacheConfig &config() const { return cfg; }
    const CacheStats &stats() const { return stat; }

    /**
     * Serialize stats, replacement clock, and every valid line
     * (checkpointing). Geometry is not serialized: restore requires an
     * identically configured cache (the checkpoint envelope binds the
     * config spec, ckpt/checkpoint.hh).
     */
    void
    saveState(ckpt::ByteSink &sink) const
    {
        sink.u64v(stat.accesses);
        sink.u64v(stat.misses);
        sink.u64v(useClock);
        u64 valid = 0;
        for (const auto &set : sets)
            for (const Line &line : set)
                valid += line.valid ? 1 : 0;
        sink.u64v(valid);
        for (u32 si = 0; si < sets.size(); ++si) {
            for (u32 way = 0; way < sets[si].size(); ++way) {
                const Line &line = sets[si][way];
                if (!line.valid)
                    continue;
                sink.u32v(si);
                sink.u32v(way);
                sink.u64v(line.tag);
                sink.u64v(line.lastUse);
            }
        }
    }

    /** Restore saveState() data; false on malformed input. */
    bool
    loadState(ckpt::ByteSource &src)
    {
        CacheStats st;
        u64 clock = 0, valid = 0;
        if (!src.u64v(st.accesses) || !src.u64v(st.misses) ||
            !src.u64v(clock) || !src.u64v(valid)) {
            return false;
        }
        for (auto &set : sets)
            for (Line &line : set)
                line = Line{};
        for (u64 i = 0; i < valid; ++i) {
            u32 si = 0, way = 0;
            u64 tag = 0, last_use = 0;
            if (!src.u32v(si) || !src.u32v(way) || !src.u64v(tag) ||
                !src.u64v(last_use)) {
                return false;
            }
            if (si >= sets.size() || way >= sets[si].size())
                return false;
            sets[si][way] = Line{tag, true, last_use};
        }
        stat = st;
        useClock = clock;
        lastTouched = nullptr;
        return true;
    }

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        u64 lastUse = 0;
    };

    unsigned setIndex(Addr addr) const;
    Addr tagOf(Addr addr) const;

    CacheConfig cfg;
    CacheStats stat;
    unsigned numSets;
    unsigned blockShift;
    u64 useClock = 0;
    std::vector<std::vector<Line>> sets;
    /**
     * Line touched by the most recent access() (hit or fill) — the
     * sameBlockHit() target. Purely an access-path cache: never
     * serialized, reset on flush()/loadState().
     */
    Line *lastTouched = nullptr;
};

} // namespace nwsim

#endif // NWSIM_MEM_CACHE_HH
