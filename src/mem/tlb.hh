/**
 * @file
 * Fully-associative LRU TLB (Table 1: 128 entries, 30-cycle miss).
 */

#ifndef NWSIM_MEM_TLB_HH
#define NWSIM_MEM_TLB_HH

#include <string>
#include <unordered_map>
#include <vector>

#include "ckpt/serial.hh"
#include "common/logging.hh"
#include "common/types.hh"

namespace nwsim
{

/** TLB geometry and miss timing. */
struct TlbConfig
{
    std::string name = "tlb";
    unsigned entries = 128;
    unsigned pageShift = 12;
    unsigned missLatency = 30;
};

/** TLB access statistics. */
struct TlbStats
{
    u64 accesses = 0;
    u64 misses = 0;
};

/** Fully-associative translation lookaside buffer (timing only). */
class Tlb
{
  public:
    explicit Tlb(const TlbConfig &config);

    /**
     * Touch the page containing @p addr.
     * @return extra latency in cycles (0 on hit, missLatency on miss).
     */
    unsigned access(Addr addr);

    /**
     * Repeat-access fast path: access() for an address on the same page
     * as this TLB's immediately preceding access. That page's entry is
     * necessarily resident and is the MRU slot, so even the hash probe
     * is skipped; the access counter, replacement clock, and the
     * entry's LRU stamp advance exactly as access() would —
     * bit-identical state, checkpoints included. Baked into superblock
     * trace ops for straight-line fetch runs (func/superblock.hh).
     *
     * @pre the previous access() touched the page containing @p addr.
     */
    unsigned
    samePageHit(Addr addr)
    {
        NWSIM_ASSERT(mru != ~u32{0} && entries[mru].valid &&
                         entries[mru].vpn == (addr >> cfg.pageShift),
                     "samePageHit: previous access touched another "
                     "page in ", cfg.name);
        ++stat.accesses;
        ++useClock;
        entries[mru].lastUse = useClock;
        return 0;
    }

    void flush();

    const TlbConfig &config() const { return cfg; }
    const TlbStats &stats() const { return stat; }

    /** Serialize stats, replacement clock, and entries (checkpointing). */
    void
    saveState(ckpt::ByteSink &sink) const
    {
        sink.u64v(stat.accesses);
        sink.u64v(stat.misses);
        sink.u64v(useClock);
        sink.u64v(entries.size());
        for (const Entry &e : entries) {
            sink.u64v(e.vpn);
            sink.boolv(e.valid);
            sink.u64v(e.lastUse);
        }
    }

    /**
     * Restore saveState() data, rebuilding the vpn->slot index and
     * resetting the MRU hint (both purely access-path caches); false on
     * malformed input or a geometry mismatch.
     */
    bool
    loadState(ckpt::ByteSource &src)
    {
        TlbStats st;
        u64 clock = 0, count = 0;
        if (!src.u64v(st.accesses) || !src.u64v(st.misses) ||
            !src.u64v(clock) || !src.u64v(count)) {
            return false;
        }
        if (count != entries.size())
            return false;
        std::vector<Entry> loaded(entries.size());
        for (Entry &e : loaded) {
            if (!src.u64v(e.vpn) || !src.boolv(e.valid) ||
                !src.u64v(e.lastUse)) {
                return false;
            }
        }
        entries = std::move(loaded);
        index.clear();
        for (u32 slot = 0; slot < entries.size(); ++slot) {
            if (entries[slot].valid)
                index[entries[slot].vpn] = slot;
        }
        mru = ~u32{0};
        stat = st;
        useClock = clock;
        return true;
    }

  private:
    struct Entry
    {
        Addr vpn = 0;
        bool valid = false;
        u64 lastUse = 0;
    };

    TlbConfig cfg;
    TlbStats stat;
    u64 useClock = 0;
    std::vector<Entry> entries;
    /**
     * vpn -> entry slot, so a hit costs one hash probe instead of a
     * full scan of the (128-entry, fully-associative) array; the LRU
     * victim scan only runs on misses. Purely an access-path cache:
     * hit/miss outcomes, stats, and replacement order are unchanged.
     */
    std::unordered_map<Addr, u32> index;
    /** Most-recently-hit slot: skips even the hash probe on streaks. */
    u32 mru = ~u32{0};
};

} // namespace nwsim

#endif // NWSIM_MEM_TLB_HH
