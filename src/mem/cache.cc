#include "mem/cache.hh"

#include <bit>

#include "common/logging.hh"

namespace nwsim
{

Cache::Cache(const CacheConfig &config) : cfg(config)
{
    NWSIM_ASSERT(std::has_single_bit(cfg.blockBytes),
                 "block size must be a power of two");
    const u64 lines = cfg.sizeBytes / cfg.blockBytes;
    NWSIM_ASSERT(lines % cfg.assoc == 0, "size/assoc mismatch in ",
                 cfg.name);
    numSets = static_cast<unsigned>(lines / cfg.assoc);
    NWSIM_ASSERT(std::has_single_bit(numSets),
                 "set count must be a power of two in ", cfg.name);
    blockShift = static_cast<unsigned>(std::countr_zero(cfg.blockBytes));
    sets.assign(numSets, std::vector<Line>(cfg.assoc));
}

unsigned
Cache::setIndex(Addr addr) const
{
    return static_cast<unsigned>((addr >> blockShift) & (numSets - 1));
}

Addr
Cache::tagOf(Addr addr) const
{
    return addr >> blockShift;
}

bool
Cache::access(Addr addr)
{
    ++stat.accesses;
    ++useClock;
    const Addr tag = tagOf(addr);
    auto &set = sets[setIndex(addr)];
    Line *victim = &set[0];
    for (Line &line : set) {
        if (line.valid && line.tag == tag) {
            line.lastUse = useClock;
            lastTouched = &line;
            return true;
        }
        if (!line.valid) {
            victim = &line;
        } else if (victim->valid && line.lastUse < victim->lastUse) {
            victim = &line;
        }
    }
    ++stat.misses;
    victim->valid = true;
    victim->tag = tag;
    victim->lastUse = useClock;
    lastTouched = victim;
    return false;
}

bool
Cache::probe(Addr addr) const
{
    const Addr tag = tagOf(addr);
    const auto &set = sets[setIndex(addr)];
    for (const Line &line : set) {
        if (line.valid && line.tag == tag)
            return true;
    }
    return false;
}

void
Cache::flush()
{
    for (auto &set : sets)
        for (Line &line : set)
            line.valid = false;
    lastTouched = nullptr;
}

} // namespace nwsim
