#include "mem/tlb.hh"

namespace nwsim
{

Tlb::Tlb(const TlbConfig &config) : cfg(config), entries(config.entries) {}

unsigned
Tlb::access(Addr addr)
{
    ++stat.accesses;
    ++useClock;
    const Addr vpn = addr >> cfg.pageShift;
    Entry *victim = &entries[0];
    for (Entry &e : entries) {
        if (e.valid && e.vpn == vpn) {
            e.lastUse = useClock;
            return 0;
        }
        if (!e.valid) {
            victim = &e;
        } else if (victim->valid && e.lastUse < victim->lastUse) {
            victim = &e;
        }
    }
    ++stat.misses;
    victim->valid = true;
    victim->vpn = vpn;
    victim->lastUse = useClock;
    return cfg.missLatency;
}

void
Tlb::flush()
{
    for (Entry &e : entries)
        e.valid = false;
}

} // namespace nwsim
