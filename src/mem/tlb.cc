#include "mem/tlb.hh"

namespace nwsim
{

Tlb::Tlb(const TlbConfig &config) : cfg(config), entries(config.entries)
{
    index.reserve(2 * config.entries);
}

unsigned
Tlb::access(Addr addr)
{
    ++stat.accesses;
    ++useClock;
    const Addr vpn = addr >> cfg.pageShift;

    if (mru != ~u32{0}) {
        Entry &m = entries[mru];
        if (m.valid && m.vpn == vpn) {
            m.lastUse = useClock;
            return 0;
        }
    }
    const auto it = index.find(vpn);
    if (it != index.end()) {
        Entry &e = entries[it->second];
        e.lastUse = useClock;
        mru = it->second;
        return 0;
    }

    // Miss: victim selection is the original full scan verbatim (last
    // invalid entry, else least-recently-used), so replacement — and
    // therefore every downstream timing — is unchanged.
    ++stat.misses;
    Entry *victim = &entries[0];
    for (Entry &e : entries) {
        if (!e.valid) {
            victim = &e;
        } else if (victim->valid && e.lastUse < victim->lastUse) {
            victim = &e;
        }
    }
    if (victim->valid)
        index.erase(victim->vpn);
    victim->valid = true;
    victim->vpn = vpn;
    victim->lastUse = useClock;
    const u32 slot = static_cast<u32>(victim - entries.data());
    index[vpn] = slot;
    mru = slot;
    return cfg.missLatency;
}

void
Tlb::flush()
{
    for (Entry &e : entries)
        e.valid = false;
    index.clear();
    mru = ~u32{0};
}

} // namespace nwsim
