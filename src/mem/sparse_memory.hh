/**
 * @file
 * Sparse paged backing store for the simulated 64-bit address space.
 *
 * Reads never allocate pages and return zero for untouched memory, which
 * makes wrong-path execution (loads from arbitrary mispredicted-path
 * addresses) safe by construction. Writes allocate on demand.
 */

#ifndef NWSIM_MEM_SPARSE_MEMORY_HH
#define NWSIM_MEM_SPARSE_MEMORY_HH

#include <algorithm>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

#include "ckpt/serial.hh"
#include "common/types.hh"

namespace nwsim
{

/** Byte-addressable sparse memory with 4 KiB pages. */
class SparseMemory
{
  public:
    static constexpr unsigned pageShift = 12;
    static constexpr Addr pageSize = Addr{1} << pageShift;

    SparseMemory() = default;
    // The page-cache pointers refer into this instance's page map, so
    // copies and moves start with a cold cache instead of inheriting
    // pointers into the source's pages.
    SparseMemory(const SparseMemory &o) : pages(o.pages), gen(o.gen) {}
    SparseMemory(SparseMemory &&o) noexcept
        : pages(std::move(o.pages)), gen(o.gen)
    {
        o.dropCache();
    }

    SparseMemory &
    operator=(const SparseMemory &o)
    {
        pages = o.pages;
        // A full image replacement: cached decodes are stale.
        ++gen;
        dropCache();
        return *this;
    }

    SparseMemory &
    operator=(SparseMemory &&o) noexcept
    {
        pages = std::move(o.pages);
        ++gen;
        dropCache();
        o.dropCache();
        return *this;
    }

    /** Read @p size bytes (1/2/4/8) little-endian; zero if untouched. */
    u64 read(Addr addr, unsigned size) const;

    /** Write the low @p size bytes of @p value little-endian. */
    void write(Addr addr, unsigned size, u64 value);

    /**
     * Copy a block in (used by the program loader). Bumps generation()
     * so decode caches over this memory invalidate on program (re)load.
     */
    void writeBlock(Addr addr, const void *data, size_t len);

    /** Copy a block out (used by tests and workload checksums). */
    void readBlock(Addr addr, void *data, size_t len) const;

    /** Number of pages currently allocated. */
    size_t numPages() const { return pages.size(); }

    /**
     * Image generation: incremented by every writeBlock(), i.e. every
     * program (re)load. Decode caches (func/decode_cache.hh and the
     * fetch-side cache) key their validity on it, so loading a new
     * image over this memory invalidates cached decodes wholesale.
     * Plain write() — data stores, including self-modifying stores to
     * the text segment — does NOT bump it; runs that modify their own
     * code must use the +nodecodecache escape hatch.
     */
    u64 generation() const { return gen; }

    /**
     * Serialize the full image (checkpointing, docs/CHECKPOINT.md):
     * pages sorted by page number, so the encoding is byte-stable
     * regardless of hash-map iteration order.
     */
    void
    saveState(ckpt::ByteSink &sink) const
    {
        std::vector<std::pair<Addr, const Page *>> sorted;
        sorted.reserve(pages.size());
        for (const auto &[page_no, page] : pages)
            sorted.emplace_back(page_no, &page);
        std::sort(sorted.begin(), sorted.end(),
                  [](const auto &a, const auto &b) {
                      return a.first < b.first;
                  });
        sink.u64v(sorted.size());
        for (const auto &[page_no, page] : sorted) {
            sink.u64v(page_no);
            sink.raw({reinterpret_cast<const char *>(page->data()),
                      page->size()});
        }
    }

    /**
     * Replace the image with serialized state. Bumps generation() so
     * decode caches keyed on it invalidate wholesale instead of serving
     * blocks decoded from the pre-restore image; false on malformed
     * input (the caller classifies it as a corrupt checkpoint).
     */
    bool
    loadState(ckpt::ByteSource &src)
    {
        u64 count = 0;
        // Each page is 8 + pageSize encoded bytes; a count the remaining
        // bytes cannot hold is corruption — reject before reserving.
        if (!src.u64v(count) ||
            count > src.remaining() / (8 + pageSize)) {
            return false;
        }
        std::unordered_map<Addr, Page> loaded;
        loaded.reserve(count);
        for (u64 i = 0; i < count; ++i) {
            u64 page_no = 0;
            std::string_view bytes;
            if (!src.u64v(page_no) || !src.take(pageSize, bytes))
                return false;
            Page page(pageSize);
            std::memcpy(page.data(), bytes.data(), pageSize);
            loaded.emplace(page_no, std::move(page));
        }
        pages = std::move(loaded);
        ++gen;
        dropCache();
        return true;
    }

  private:
    using Page = std::vector<u8>;

    const Page *findPage(Addr addr) const;
    Page &getPage(Addr addr);

    void
    dropCache()
    {
        lastReadPageNo = ~Addr{0};
        lastReadPage = nullptr;
        lastWritePageNo = ~Addr{0};
        lastWritePage = nullptr;
    }

    std::unordered_map<Addr, Page> pages;
    u64 gen = 0;

    // One-entry page cache: almost every access hits the same page as
    // its predecessor (straight-line fetch, stack traffic), so the hash
    // lookup is skipped. Pages are never erased and unordered_map never
    // moves its elements, so the cached pointers stay valid across
    // inserts.
    mutable Addr lastReadPageNo = ~Addr{0};
    mutable const Page *lastReadPage = nullptr;
    Addr lastWritePageNo = ~Addr{0};
    Page *lastWritePage = nullptr;
};

} // namespace nwsim

#endif // NWSIM_MEM_SPARSE_MEMORY_HH
