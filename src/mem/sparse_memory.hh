/**
 * @file
 * Sparse paged backing store for the simulated 64-bit address space.
 *
 * Reads never allocate pages and return zero for untouched memory, which
 * makes wrong-path execution (loads from arbitrary mispredicted-path
 * addresses) safe by construction. Writes allocate on demand.
 */

#ifndef NWSIM_MEM_SPARSE_MEMORY_HH
#define NWSIM_MEM_SPARSE_MEMORY_HH

#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace nwsim
{

/** Byte-addressable sparse memory with 4 KiB pages. */
class SparseMemory
{
  public:
    static constexpr unsigned pageShift = 12;
    static constexpr Addr pageSize = Addr{1} << pageShift;

    SparseMemory() = default;
    // The page-cache pointers refer into this instance's page map, so
    // copies and moves start with a cold cache instead of inheriting
    // pointers into the source's pages.
    SparseMemory(const SparseMemory &o) : pages(o.pages), gen(o.gen) {}
    SparseMemory(SparseMemory &&o) noexcept
        : pages(std::move(o.pages)), gen(o.gen)
    {
        o.dropCache();
    }

    SparseMemory &
    operator=(const SparseMemory &o)
    {
        pages = o.pages;
        // A full image replacement: cached decodes are stale.
        ++gen;
        dropCache();
        return *this;
    }

    SparseMemory &
    operator=(SparseMemory &&o) noexcept
    {
        pages = std::move(o.pages);
        ++gen;
        dropCache();
        o.dropCache();
        return *this;
    }

    /** Read @p size bytes (1/2/4/8) little-endian; zero if untouched. */
    u64 read(Addr addr, unsigned size) const;

    /** Write the low @p size bytes of @p value little-endian. */
    void write(Addr addr, unsigned size, u64 value);

    /**
     * Copy a block in (used by the program loader). Bumps generation()
     * so decode caches over this memory invalidate on program (re)load.
     */
    void writeBlock(Addr addr, const void *data, size_t len);

    /** Copy a block out (used by tests and workload checksums). */
    void readBlock(Addr addr, void *data, size_t len) const;

    /** Number of pages currently allocated. */
    size_t numPages() const { return pages.size(); }

    /**
     * Image generation: incremented by every writeBlock(), i.e. every
     * program (re)load. Decode caches (func/decode_cache.hh and the
     * fetch-side cache) key their validity on it, so loading a new
     * image over this memory invalidates cached decodes wholesale.
     * Plain write() — data stores, including self-modifying stores to
     * the text segment — does NOT bump it; runs that modify their own
     * code must use the +nodecodecache escape hatch.
     */
    u64 generation() const { return gen; }

  private:
    using Page = std::vector<u8>;

    const Page *findPage(Addr addr) const;
    Page &getPage(Addr addr);

    void
    dropCache()
    {
        lastReadPageNo = ~Addr{0};
        lastReadPage = nullptr;
        lastWritePageNo = ~Addr{0};
        lastWritePage = nullptr;
    }

    std::unordered_map<Addr, Page> pages;
    u64 gen = 0;

    // One-entry page cache: almost every access hits the same page as
    // its predecessor (straight-line fetch, stack traffic), so the hash
    // lookup is skipped. Pages are never erased and unordered_map never
    // moves its elements, so the cached pointers stay valid across
    // inserts.
    mutable Addr lastReadPageNo = ~Addr{0};
    mutable const Page *lastReadPage = nullptr;
    Addr lastWritePageNo = ~Addr{0};
    Page *lastWritePage = nullptr;
};

} // namespace nwsim

#endif // NWSIM_MEM_SPARSE_MEMORY_HH
