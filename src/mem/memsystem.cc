#include "mem/memsystem.hh"

namespace nwsim
{

MemSystem::MemSystem(const MemSystemConfig &config)
    : cfg(config),
      l1iCache(config.l1i),
      l1dCache(config.l1d),
      l2Cache(config.l2),
      iTlb(config.itlb),
      dTlb(config.dtlb)
{
}

unsigned
MemSystem::throughHierarchy(Cache &l1, Addr addr)
{
    unsigned latency = l1.config().hitLatency;
    if (!l1.access(addr)) {
        latency += l2Cache.config().hitLatency;
        if (!l2Cache.access(addr))
            latency += cfg.memoryLatency;
    }
    return latency;
}

unsigned
MemSystem::instLatency(Addr addr)
{
    return iTlb.access(addr) + throughHierarchy(l1iCache, addr);
}

unsigned
MemSystem::dataLatency(Addr addr)
{
    return dTlb.access(addr) + throughHierarchy(l1dCache, addr);
}

void
MemSystem::flush()
{
    l1iCache.flush();
    l1dCache.flush();
    l2Cache.flush();
    iTlb.flush();
    dTlb.flush();
}

} // namespace nwsim
