/**
 * @file
 * The Table 1 memory hierarchy: split 64K 2-way L1 I/D caches (1 cycle),
 * unified 8M 4-way L2 (12 cycles), 100-cycle main memory, and 128-entry
 * fully-associative I/D TLBs with a 30-cycle miss penalty.
 */

#ifndef NWSIM_MEM_MEMSYSTEM_HH
#define NWSIM_MEM_MEMSYSTEM_HH

#include <memory>

#include "mem/cache.hh"
#include "mem/tlb.hh"

namespace nwsim
{

/** Full memory-hierarchy configuration (defaults = paper Table 1). */
struct MemSystemConfig
{
    CacheConfig l1i{"l1i", 64 * 1024, 2, 32, 1};
    CacheConfig l1d{"l1d", 64 * 1024, 2, 32, 1};
    CacheConfig l2{"l2", 8 * 1024 * 1024, 4, 32, 12};
    unsigned memoryLatency = 100;
    TlbConfig itlb{"itlb", 128, 12, 30};
    TlbConfig dtlb{"dtlb", 128, 12, 30};
};

/**
 * Timing-only memory hierarchy. Returns total access latency in cycles
 * for instruction fetches and data accesses; data contents are handled
 * separately by SparseMemory (execute-at-dispatch).
 */
class MemSystem
{
  public:
    explicit MemSystem(const MemSystemConfig &config);

    /** Latency of fetching the instruction block at @p addr. */
    unsigned instLatency(Addr addr);

    /**
     * instLatency() for a fetch on the same I-cache block (and page) as
     * the immediately preceding instruction fetch: a guaranteed
     * ITLB + L1i hit, satisfied with counter/LRU-clock updates only —
     * machine state stays bit-identical to instLatency() while skipping
     * both lookups. The I and D paths are split (iTlb/l1iCache vs
     * dTlb/l1dCache), so intervening dataLatency() calls cannot break
     * the precondition; only another instruction fetch can.
     *
     * @pre the previous instLatency() was for the same I-cache block.
     */
    unsigned
    instSameLine(Addr addr)
    {
        iTlb.samePageHit(addr);
        l1iCache.sameBlockHit(addr);
        return l1iCache.config().hitLatency;
    }

    /** Latency of a data access (load or store) at @p addr. */
    unsigned dataLatency(Addr addr);

    /** Invalidate all cached state (between benchmark phases). */
    void flush();

    const Cache &l1i() const { return l1iCache; }
    const Cache &l1d() const { return l1dCache; }
    const Cache &l2() const { return l2Cache; }
    const Tlb &itlb() const { return iTlb; }
    const Tlb &dtlb() const { return dTlb; }

    /** Serialize every level's warmed state + stats (checkpointing). */
    void
    saveState(ckpt::ByteSink &sink) const
    {
        l1iCache.saveState(sink);
        l1dCache.saveState(sink);
        l2Cache.saveState(sink);
        iTlb.saveState(sink);
        dTlb.saveState(sink);
    }

    /** Restore saveState() data; false on malformed input. */
    bool
    loadState(ckpt::ByteSource &src)
    {
        return l1iCache.loadState(src) && l1dCache.loadState(src) &&
               l2Cache.loadState(src) && iTlb.loadState(src) &&
               dTlb.loadState(src);
    }

  private:
    unsigned throughHierarchy(Cache &l1, Addr addr);

    MemSystemConfig cfg;
    Cache l1iCache;
    Cache l1dCache;
    Cache l2Cache;
    Tlb iTlb;
    Tlb dTlb;
};

} // namespace nwsim

#endif // NWSIM_MEM_MEMSYSTEM_HH
