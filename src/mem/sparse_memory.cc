#include "mem/sparse_memory.hh"

#include "common/logging.hh"

namespace nwsim
{

const SparseMemory::Page *
SparseMemory::findPage(Addr addr) const
{
    const Addr page_no = addr >> pageShift;
    if (page_no == lastReadPageNo)
        return lastReadPage;
    const auto it = pages.find(page_no);
    if (it == pages.end())
        return nullptr;
    // Only hits are cached: a later write may create this page, and a
    // cached "absent" result would hide it from subsequent reads.
    lastReadPageNo = page_no;
    lastReadPage = &it->second;
    return lastReadPage;
}

SparseMemory::Page &
SparseMemory::getPage(Addr addr)
{
    const Addr page_no = addr >> pageShift;
    if (page_no == lastWritePageNo)
        return *lastWritePage;
    Page &page = pages[page_no];
    if (page.empty())
        page.resize(pageSize, 0);
    lastWritePageNo = page_no;
    lastWritePage = &page;
    return page;
}

u64
SparseMemory::read(Addr addr, unsigned size) const
{
    NWSIM_ASSERT(size == 1 || size == 2 || size == 4 || size == 8,
                 "bad read size ", size);
    const Addr off = addr & (pageSize - 1);
    if (off + size <= pageSize) {
        // Within one page: one lookup, one little-endian copy.
        const Page *page = findPage(addr);
        if (!page)
            return 0;
        u64 value = 0;
        std::memcpy(&value, page->data() + off, size);
        return value;
    }
    u64 value = 0;
    for (unsigned i = 0; i < size; ++i) {
        const Addr byte_addr = addr + i;
        const Page *page = findPage(byte_addr);
        const u64 byte =
            page ? (*page)[byte_addr & (pageSize - 1)] : u64{0};
        value |= byte << (8 * i);
    }
    return value;
}

void
SparseMemory::write(Addr addr, unsigned size, u64 value)
{
    NWSIM_ASSERT(size == 1 || size == 2 || size == 4 || size == 8,
                 "bad write size ", size);
    const Addr off = addr & (pageSize - 1);
    if (off + size <= pageSize) {
        std::memcpy(getPage(addr).data() + off, &value, size);
        return;
    }
    for (unsigned i = 0; i < size; ++i) {
        const Addr byte_addr = addr + i;
        getPage(byte_addr)[byte_addr & (pageSize - 1)] =
            static_cast<u8>(value >> (8 * i));
    }
}

void
SparseMemory::writeBlock(Addr addr, const void *data, size_t len)
{
    ++gen;
    const u8 *src = static_cast<const u8 *>(data);
    for (size_t i = 0; i < len; ++i)
        getPage(addr + i)[(addr + i) & (pageSize - 1)] = src[i];
}

void
SparseMemory::readBlock(Addr addr, void *data, size_t len) const
{
    u8 *dst = static_cast<u8 *>(data);
    for (size_t i = 0; i < len; ++i)
        dst[i] = static_cast<u8>(read(addr + i, 1));
}

} // namespace nwsim
