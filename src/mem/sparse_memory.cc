#include "mem/sparse_memory.hh"

#include "common/logging.hh"

namespace nwsim
{

const SparseMemory::Page *
SparseMemory::findPage(Addr addr) const
{
    const auto it = pages.find(addr >> pageShift);
    return it == pages.end() ? nullptr : &it->second;
}

SparseMemory::Page &
SparseMemory::getPage(Addr addr)
{
    Page &page = pages[addr >> pageShift];
    if (page.empty())
        page.resize(pageSize, 0);
    return page;
}

u64
SparseMemory::read(Addr addr, unsigned size) const
{
    NWSIM_ASSERT(size == 1 || size == 2 || size == 4 || size == 8,
                 "bad read size ", size);
    u64 value = 0;
    for (unsigned i = 0; i < size; ++i) {
        const Addr byte_addr = addr + i;
        const Page *page = findPage(byte_addr);
        const u64 byte =
            page ? (*page)[byte_addr & (pageSize - 1)] : u64{0};
        value |= byte << (8 * i);
    }
    return value;
}

void
SparseMemory::write(Addr addr, unsigned size, u64 value)
{
    NWSIM_ASSERT(size == 1 || size == 2 || size == 4 || size == 8,
                 "bad write size ", size);
    for (unsigned i = 0; i < size; ++i) {
        const Addr byte_addr = addr + i;
        getPage(byte_addr)[byte_addr & (pageSize - 1)] =
            static_cast<u8>(value >> (8 * i));
    }
}

void
SparseMemory::writeBlock(Addr addr, const void *data, size_t len)
{
    const u8 *src = static_cast<const u8 *>(data);
    for (size_t i = 0; i < len; ++i)
        getPage(addr + i)[(addr + i) & (pageSize - 1)] = src[i];
}

void
SparseMemory::readBlock(Addr addr, void *data, size_t len) const
{
    u8 *dst = static_cast<u8 *>(data);
    for (size_t i = 0; i < len; ++i)
        dst[i] = static_cast<u8>(read(addr + i, 1));
}

} // namespace nwsim
