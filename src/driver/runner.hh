/**
 * @file
 * SimRunner: builds, loads, warms up, and measures one program on one
 * core configuration, returning every statistic the experiment benches
 * need. Mirrors the paper's methodology: warm architectural state, then
 * measure a detailed-simulation window.
 */

#ifndef NWSIM_DRIVER_RUNNER_HH
#define NWSIM_DRIVER_RUNNER_HH

#include <string>

#include "asm/program.hh"
#include "core/profiler.hh"
#include "pipeline/core.hh"

namespace nwsim
{

/** Simulation window sizes (env-overridable, see resolveRunOptions). */
struct RunOptions
{
    /** Instructions committed/fast-forwarded before statistics reset. */
    u64 warmupInsts = 50000;
    /** Instructions committed in the measurement window. */
    u64 measureInsts = 400000;
    /**
     * Warm up with the paper's fast-mode simulation (caches + branch
     * predictor only, Section 3.2); false = detailed-core warmup.
     */
    bool fastWarmup = true;
};

/**
 * Read NWSIM_WARMUP / NWSIM_MEASURE environment overrides, so the whole
 * benchmark suite can be scaled up or down without recompiling.
 */
RunOptions resolveRunOptions(RunOptions defaults = {});

/** Everything measured in one run. */
struct RunResult
{
    std::string workload;
    std::string configName;
    u64 warmupCommitted = 0;
    u64 measuredCommitted = 0;
    CoreStats core;
    GatingStats gating;
    PackingStats packing;
    BPredStats bpred;
    WidthProfiler profiler;
    double l1dMissRate = 0.0;
    double l1iMissRate = 0.0;

    double ipc() const { return core.ipc(); }

    /** Per-cycle power numbers (the paper reports mW per cycle). */
    double
    baselinePowerPerCycle() const
    {
        return core.cycles ? gating.baselineMwSum / core.cycles : 0.0;
    }

    double
    optimizedPowerPerCycle() const
    {
        return core.cycles ? gating.optimizedMwSum() / core.cycles : 0.0;
    }

    double
    netSavedPowerPerCycle() const
    {
        return core.cycles ? gating.netSavedMwSum() / core.cycles : 0.0;
    }
};

class CoreObserver;

/**
 * Run @p program on @p config: warmup, reset stats, measure.
 * @p name and @p config_name label the result for reporting.
 * @p observer, if non-null, is attached to the core for the whole run
 * (e.g. the campaign engine's per-job FlightRecorder).
 */
RunResult runProgram(const Program &program, const CoreConfig &config,
                     const RunOptions &opts, const std::string &name,
                     const std::string &config_name,
                     CoreObserver *observer = nullptr);

/**
 * Snapshot every statistic of @p core into a labeled RunResult
 * (measuredCommitted = commits since the last stats reset). Shared by
 * runProgram and the CLI's trace/assembly-file path, so every consumer
 * reports the same complete stat set.
 */
RunResult collectRunResult(const OutOfOrderCore &core,
                           const std::string &name,
                           const std::string &config_name);

/** Percent speedup of @p opt over @p base by IPC. */
double speedupPercent(const RunResult &base, const RunResult &opt);

} // namespace nwsim

#endif // NWSIM_DRIVER_RUNNER_HH
