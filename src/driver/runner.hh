/**
 * @file
 * SimRunner: builds, loads, warms up, and measures one program on one
 * core configuration, returning every statistic the experiment benches
 * need. Mirrors the paper's methodology: warm architectural state, then
 * measure a detailed-simulation window.
 */

#ifndef NWSIM_DRIVER_RUNNER_HH
#define NWSIM_DRIVER_RUNNER_HH

#include <string>

#include "asm/program.hh"
#include "core/profiler.hh"
#include "pipeline/core.hh"

namespace nwsim
{

/**
 * SMARTS-style sampled-simulation schedule (src/sample/,
 * docs/SAMPLING.md): instead of one contiguous detailed window, the run
 * becomes a stream of intervals — functional fast-forward (no detailed
 * state), detailed warmup (primes caches/TLB/predictors, stats
 * discarded), detailed measurement — repeating every @p periodInsts
 * until the RunOptions instruction budget is spent. Expressed in config
 * specs as the `+sample=period:warmup:measure[:rand[:seed]]` modifier.
 */
struct SampleOptions
{
    bool enabled = false;
    /** Instructions between successive sample-interval starts. */
    u64 periodInsts = 0;
    /** Detailed-warmup instructions per interval (not recorded). */
    u64 warmupInsts = 0;
    /** Detailed-measurement instructions per interval. */
    u64 measureInsts = 0;
    /**
     * Place each interval at a seeded-random offset within its period
     * instead of at the period start (guards against programs whose
     * phase length resonates with a fixed period).
     */
    bool randomize = false;
    /** Offset-RNG seed (randomize mode; deterministic per seed). */
    u64 seed = 0;

    /** Functional-only instructions per period (ff phase length). */
    u64
    fastForwardInsts() const
    {
        const u64 detailed = warmupInsts + measureInsts;
        return periodInsts > detailed ? periodInsts - detailed : 0;
    }
};

/** Simulation window sizes (env-overridable, see resolveRunOptions). */
struct RunOptions
{
    /** Instructions committed/fast-forwarded before statistics reset. */
    u64 warmupInsts = 50000;
    /** Instructions committed in the measurement window. */
    u64 measureInsts = 400000;
    /**
     * Warm up with the paper's fast-mode simulation (caches + branch
     * predictor only, Section 3.2); false = detailed-core warmup.
     */
    bool fastWarmup = true;
    /**
     * Sampled-simulation schedule. When enabled, warmupInsts +
     * measureInsts is reinterpreted as the *total functional-stream
     * budget* the interval schedule spreads over, so a sampled job
     * covers the same program region as its full-detail twin.
     */
    SampleOptions sample;
    /**
     * Checkpoint cadence, retired (stream) instructions between
     * machine-state snapshots (src/ckpt/, docs/CHECKPOINT.md); 0
     * disables checkpointing. Expressed in config specs as the
     * `+ckpt=N` modifier. In detailed mode a cadence boundary drains
     * the pipeline (deterministically — resumed and uninterrupted runs
     * of the same spec drain identically); in sampled mode snapshots
     * ride the schedule's existing zero-perturbation safe points.
     */
    u64 ckptEveryInsts = 0;
};

/**
 * Read NWSIM_WARMUP / NWSIM_MEASURE environment overrides, so the whole
 * benchmark suite can be scaled up or down without recompiling.
 */
RunOptions resolveRunOptions(RunOptions defaults = {});

/**
 * Error-bar annotations carried by a sampled RunResult. The sample
 * layer (src/sample/aggregate.hh) computes these from the per-interval
 * measurements and stamps them here, precomputed, so the driver layer
 * and the result sinks (JSON/CSV/wire) need no statistics code.
 */
struct SampleSummary
{
    /** True when the result came from a sampled run. */
    bool sampled = false;
    /** Measurement intervals the estimates are computed over. */
    u64 intervals = 0;
    /** Functional-stream instructions the schedule covered. */
    u64 streamInsts = 0;

    /** One metric's error bar (mean of per-interval values). */
    struct Estimate
    {
        double mean = 0.0;
        /** Coefficient of variation, stddev / |mean|. */
        double cov = 0.0;
        /** Half-width of the 95% confidence interval. */
        double ci95 = 0.0;
    };

    /** Indexed by sample::SampleMetric (ipc, packed, gating, power). */
    static constexpr size_t kNumMetrics = 4;
    Estimate metrics[kNumMetrics];
};

/** Everything measured in one run. */
struct RunResult
{
    std::string workload;
    std::string configName;
    u64 warmupCommitted = 0;
    u64 measuredCommitted = 0;
    CoreStats core;
    GatingStats gating;
    PackingStats packing;
    BPredStats bpred;
    WidthProfiler profiler;
    double l1dMissRate = 0.0;
    double l1iMissRate = 0.0;
    /** Error bars when this result came from a sampled run. */
    SampleSummary sample;
    /**
     * Decode-cache health (fastForward block cache + fetch cache).
     * A host-side metric — never part of simulated statistics, and
     * excluded from stat-identity comparisons (all-zero under
     * `+nodecodecache`). Cumulative over the whole run, not reset
     * with resetStats().
     */
    DecodeCacheStats decodeCache;
    /**
     * Superblock trace-cache health (func/superblock.hh). Same
     * host-metric contract as decodeCache: never a simulated
     * statistic, excluded from stat-identity, all-zero under
     * `+notrace`/`+nodecodecache`, cumulative over the run.
     */
    SuperblockStats superblock;

    double ipc() const { return core.ipc(); }

    /** Per-cycle power numbers (the paper reports mW per cycle). */
    double
    baselinePowerPerCycle() const
    {
        return core.cycles ? gating.baselineMwSum / core.cycles : 0.0;
    }

    double
    optimizedPowerPerCycle() const
    {
        return core.cycles ? gating.optimizedMwSum() / core.cycles : 0.0;
    }

    double
    netSavedPowerPerCycle() const
    {
        return core.cycles ? gating.netSavedMwSum() / core.cycles : 0.0;
    }
};

class CoreObserver;

/**
 * Run @p program on @p config: warmup, reset stats, measure.
 * @p name and @p config_name label the result for reporting.
 * @p observer, if non-null, is attached to the core for the whole run
 * (e.g. the campaign engine's per-job FlightRecorder).
 */
RunResult runProgram(const Program &program, const CoreConfig &config,
                     const RunOptions &opts, const std::string &name,
                     const std::string &config_name,
                     CoreObserver *observer = nullptr);

/**
 * Snapshot every statistic of @p core into a labeled RunResult
 * (measuredCommitted = commits since the last stats reset). Shared by
 * runProgram and the CLI's trace/assembly-file path, so every consumer
 * reports the same complete stat set.
 */
RunResult collectRunResult(const OutOfOrderCore &core,
                           const std::string &name,
                           const std::string &config_name);

/** Percent speedup of @p opt over @p base by IPC. */
double speedupPercent(const RunResult &base, const RunResult &opt);

} // namespace nwsim

#endif // NWSIM_DRIVER_RUNNER_HH
