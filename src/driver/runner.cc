#include "driver/runner.hh"

#include <cstdlib>

#include "common/logging.hh"

namespace nwsim
{

RunOptions
resolveRunOptions(RunOptions defaults)
{
    if (const char *w = std::getenv("NWSIM_WARMUP"))
        defaults.warmupInsts = std::strtoull(w, nullptr, 0);
    if (const char *m = std::getenv("NWSIM_MEASURE"))
        defaults.measureInsts = std::strtoull(m, nullptr, 0);
    if (const char *f = std::getenv("NWSIM_DETAILED_WARMUP"))
        defaults.fastWarmup = std::strtoull(f, nullptr, 0) == 0;
    return defaults;
}

RunResult
runProgram(const Program &program, const CoreConfig &config,
           const RunOptions &opts, const std::string &name,
           const std::string &config_name)
{
    SparseMemory memory;
    program.load(memory);
    OutOfOrderCore core(config, memory, program.entry);

    RunResult result;
    result.workload = name;
    result.configName = config_name;

    result.warmupCommitted = opts.fastWarmup
                                 ? core.fastForward(opts.warmupInsts)
                                 : core.run(opts.warmupInsts);
    if (core.done()) {
        NWSIM_WARN("workload ", name, " halted during warmup (",
                   result.warmupCommitted, " insts); measuring anyway");
    }
    core.resetStats();
    result.measuredCommitted = core.run(opts.measureInsts);
    if (result.measuredCommitted < opts.measureInsts && !core.done()) {
        NWSIM_WARN("workload ", name, " measured only ",
                   result.measuredCommitted, " insts");
    }

    result.core = core.stats();
    result.gating = core.gating().stats();
    result.packing = core.packingStats();
    result.bpred = core.bpredStats();
    result.profiler = core.profiler();
    result.l1dMissRate = core.memSystem().l1d().stats().missRate();
    result.l1iMissRate = core.memSystem().l1i().stats().missRate();
    return result;
}

double
speedupPercent(const RunResult &base, const RunResult &opt)
{
    NWSIM_ASSERT(base.ipc() > 0.0, "zero baseline IPC for ",
                 base.workload);
    return 100.0 * (opt.ipc() / base.ipc() - 1.0);
}

} // namespace nwsim
