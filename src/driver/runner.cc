#include "driver/runner.hh"

#include <cstdlib>

#include "common/logging.hh"

namespace nwsim
{

RunOptions
resolveRunOptions(RunOptions defaults)
{
    if (const char *w = std::getenv("NWSIM_WARMUP"))
        defaults.warmupInsts = std::strtoull(w, nullptr, 0);
    if (const char *m = std::getenv("NWSIM_MEASURE"))
        defaults.measureInsts = std::strtoull(m, nullptr, 0);
    if (const char *f = std::getenv("NWSIM_DETAILED_WARMUP"))
        defaults.fastWarmup = std::strtoull(f, nullptr, 0) == 0;
    return defaults;
}

RunResult
collectRunResult(const OutOfOrderCore &core, const std::string &name,
                 const std::string &config_name)
{
    RunResult result;
    result.workload = name;
    result.configName = config_name;
    result.measuredCommitted = core.stats().committed;
    result.core = core.stats();
    result.gating = core.gating().stats();
    result.packing = core.packingStats();
    result.bpred = core.bpredStats();
    result.profiler = core.profiler();
    result.l1dMissRate = core.memSystem().l1d().stats().missRate();
    result.l1iMissRate = core.memSystem().l1i().stats().missRate();
    result.decodeCache = core.decodeCacheStats();
    result.superblock = core.superblockStats();
    return result;
}

RunResult
runProgram(const Program &program, const CoreConfig &config,
           const RunOptions &opts, const std::string &name,
           const std::string &config_name, CoreObserver *observer)
{
    SparseMemory memory;
    program.load(memory);
    OutOfOrderCore core(config, memory, program.entry);
    if (observer)
        core.setObserver(observer);

    const u64 warmup_committed = opts.fastWarmup
                                     ? core.fastForward(opts.warmupInsts)
                                     : core.run(opts.warmupInsts);
    if (core.done()) {
        NWSIM_WARN("workload ", name, " halted during warmup (",
                   warmup_committed, " insts); measuring anyway");
    }
    core.resetStats();
    const u64 measured = core.run(opts.measureInsts);
    if (measured < opts.measureInsts && !core.done()) {
        NWSIM_WARN("workload ", name, " measured only ", measured,
                   " insts");
    }

    RunResult result = collectRunResult(core, name, config_name);
    result.warmupCommitted = warmup_committed;
    return result;
}

double
speedupPercent(const RunResult &base, const RunResult &opt)
{
    NWSIM_ASSERT(base.ipc() > 0.0, "zero baseline IPC for ",
                 base.workload);
    return 100.0 * (opt.ipc() / base.ipc() - 1.0);
}

} // namespace nwsim
