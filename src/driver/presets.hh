/**
 * @file
 * Named processor configurations used across the experiment benches.
 */

#ifndef NWSIM_DRIVER_PRESETS_HH
#define NWSIM_DRIVER_PRESETS_HH

#include "pipeline/config.hh"

namespace nwsim::presets
{

/** Paper Table 1 baseline. */
inline CoreConfig
baseline(bool perfect_bpred = false)
{
    CoreConfig cfg;
    cfg.perfectBPred = perfect_bpred;
    return cfg;
}

/** Baseline + Section 5 operation packing. */
inline CoreConfig
packing(bool replay, bool perfect_bpred = false)
{
    CoreConfig cfg = baseline(perfect_bpred);
    cfg.packing.enabled = true;
    cfg.packing.replay = replay;
    return cfg;
}

/** The Section 5.4 8-wide-decode variant of any configuration. */
inline CoreConfig
decode8(CoreConfig cfg)
{
    cfg.decodeWidth = 8;
    cfg.fetchWidth = 8;
    return cfg;
}

/** Figure 11's costly comparison machine: 8-issue, 8 integer ALUs. */
inline CoreConfig
issue8(bool perfect_bpred = false)
{
    CoreConfig cfg = baseline(perfect_bpred);
    cfg.issueWidth = 8;
    cfg.numAlus = 8;
    return cfg;
}

} // namespace nwsim::presets

#endif // NWSIM_DRIVER_PRESETS_HH
