/**
 * @file
 * Minimal fixed-width table printer for the experiment benches, so every
 * figure/table reproduction prints the same row/series layout the paper
 * reports.
 */

#ifndef NWSIM_DRIVER_TABLE_HH
#define NWSIM_DRIVER_TABLE_HH

#include <string>
#include <vector>

namespace nwsim
{

/** Column-aligned text table. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Append one row (cells beyond the header count are dropped). */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format a double with @p digits decimals. */
    static std::string num(double value, int digits = 2);

    /** Render with a header underline, one row per line. */
    std::string render() const;

    /** Render as CSV (header row + data rows). */
    std::string renderCsv() const;

    /**
     * Render to stdout; set NWSIM_CSV=1 in the environment to emit CSV
     * instead of the aligned table (for scripting the benches).
     */
    void print() const;

  private:
    std::vector<std::string> head;
    std::vector<std::vector<std::string>> rows;
};

} // namespace nwsim

#endif // NWSIM_DRIVER_TABLE_HH
