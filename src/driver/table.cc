#include "driver/table.hh"
#include <cstdlib>

#include <iostream>
#include <sstream>

#include "common/strings.hh"

namespace nwsim
{

Table::Table(std::vector<std::string> headers) : head(std::move(headers))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    cells.resize(head.size());
    rows.push_back(std::move(cells));
}

std::string
Table::num(double value, int digits)
{
    return fixed(value, digits);
}

std::string
Table::render() const
{
    std::vector<size_t> width(head.size());
    for (size_t c = 0; c < head.size(); ++c)
        width[c] = head[c].size();
    for (const auto &row : rows)
        for (size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (size_t c = 0; c < cells.size(); ++c) {
            os << pad(cells[c],
                      c == 0 ? static_cast<int>(width[c])
                             : -static_cast<int>(width[c]));
            if (c + 1 < cells.size())
                os << "  ";
        }
        os << "\n";
    };
    emit(head);
    size_t total = head.size() > 0 ? (head.size() - 1) * 2 : 0;
    for (size_t w : width)
        total += w;
    os << std::string(total, '-') << "\n";
    for (const auto &row : rows)
        emit(row);
    return os.str();
}

std::string
Table::renderCsv() const
{
    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (size_t c = 0; c < cells.size(); ++c) {
            std::string cell = cells[c];
            if (cell.find_first_of(",\"") != std::string::npos) {
                std::string quoted = "\"";
                for (char ch : cell) {
                    if (ch == '"')
                        quoted += '"';
                    quoted += ch;
                }
                cell = quoted + "\"";
            }
            os << cell;
            if (c + 1 < cells.size())
                os << ",";
        }
        os << "\n";
    };
    emit(head);
    for (const auto &row : rows)
        emit(row);
    return os.str();
}

void
Table::print() const
{
    const char *csv = std::getenv("NWSIM_CSV");
    if (csv && csv[0] == '1')
        std::cout << renderCsv() << std::flush;
    else
        std::cout << render() << std::flush;
}

} // namespace nwsim
