/**
 * @file
 * Field-level RunResult encoder/decoder shared by every binary format
 * that embeds one: campaign outcome blobs (exp/wire.cc), checkpoint
 * payloads, and the sample-aggregator state blobs that sharded runs
 * merge (sample/aggregate.cc). One encoding, one field order — a
 * RunResult round-tripped through any of those channels is bit-exact
 * under tests/stat_diff.hh.
 *
 * No envelope here: callers frame these fields with their own magic,
 * version, and checksum.
 */

#ifndef NWSIM_DRIVER_RESULT_SERIAL_HH
#define NWSIM_DRIVER_RESULT_SERIAL_HH

#include "ckpt/serial.hh"
#include "driver/runner.hh"

namespace nwsim
{

inline void
packSampleSummaryFields(ckpt::ByteSink &s, const SampleSummary &ss)
{
    s.boolv(ss.sampled);
    s.u64v(ss.intervals);
    s.u64v(ss.streamInsts);
    for (const SampleSummary::Estimate &e : ss.metrics) {
        s.f64v(e.mean);
        s.f64v(e.cov);
        s.f64v(e.ci95);
    }
}

inline bool
unpackSampleSummaryFields(ckpt::ByteSource &s, SampleSummary &ss)
{
    s.boolv(ss.sampled);
    s.u64v(ss.intervals);
    s.u64v(ss.streamInsts);
    for (SampleSummary::Estimate &e : ss.metrics) {
        s.f64v(e.mean);
        s.f64v(e.cov);
        s.f64v(e.ci95);
    }
    return s.ok();
}

inline void
packRunResultFields(ckpt::ByteSink &s, const RunResult &r)
{
    s.str(r.workload);
    s.str(r.configName);
    s.u64v(r.warmupCommitted);
    s.u64v(r.measuredCommitted);

    const CoreStats &c = r.core;
    s.u64v(c.cycles);
    s.u64v(c.fetched);
    s.u64v(c.dispatched);
    s.u64v(c.issued);
    s.u64v(c.committed);
    s.u64v(c.squashed);
    s.u64v(c.mispredictSquashes);
    s.u64v(c.loadsForwarded);
    s.u64v(c.windowFullStalls);
    s.u64v(c.issueLimitedCycles);
    s.u64v(c.readyOpsSum);

    const GatingStats &g = r.gating;
    s.u64v(g.ops);
    s.u64v(g.gated16);
    s.u64v(g.gated33);
    s.u64v(g.gatedLoadSourced);
    s.u64v(g.blockedByLoad);
    s.f64v(g.baselineMwSum);
    s.f64v(g.gatedMwSum);
    s.f64v(g.overheadMwSum);
    s.f64v(g.saved16MwSum);
    s.f64v(g.saved33MwSum);

    const PackingStats &p = r.packing;
    s.u64v(p.packedGroups);
    s.u64v(p.packedInsts);
    s.u64v(p.replaySpeculations);
    s.u64v(p.replayTraps);
    s.u64v(p.packEligibleIssued);

    const BPredStats &b = r.bpred;
    s.u64v(b.lookups);
    s.u64v(b.condLookups);
    s.u64v(b.condDirectionWrong);
    s.u64v(b.targetWrong);

    const WidthProfilerSnapshot w = r.profiler.snapshot();
    s.u64v(w.opCount);
    for (u64 h : w.widthHist)
        s.u64v(h);
    for (u64 n : w.narrow16ByCat)
        s.u64v(n);
    for (u64 n : w.narrow33ByCat)
        s.u64v(n);
    s.u64v(w.pcWidthSeen.size());
    for (const auto &[pc, seen] : w.pcWidthSeen) {
        s.u64v(pc);
        s.u8v(seen);
    }

    s.f64v(r.l1dMissRate);
    s.f64v(r.l1iMissRate);

    packSampleSummaryFields(s, r.sample);

    // Host-side decode-cache and superblock trace-cache health.
    s.u64v(r.decodeCache.lookups);
    s.u64v(r.decodeCache.hits);
    s.u64v(r.superblock.formed);
    s.u64v(r.superblock.loopClosures);
    s.u64v(r.superblock.entries);
    s.u64v(r.superblock.tracedInsts);
    s.u64v(r.superblock.guardExits);
    s.u64v(r.superblock.invalidations);
}

inline bool
unpackRunResultFields(ckpt::ByteSource &s, RunResult &r)
{
    s.str(r.workload);
    s.str(r.configName);
    s.u64v(r.warmupCommitted);
    s.u64v(r.measuredCommitted);

    CoreStats &c = r.core;
    s.u64v(c.cycles);
    s.u64v(c.fetched);
    s.u64v(c.dispatched);
    s.u64v(c.issued);
    s.u64v(c.committed);
    s.u64v(c.squashed);
    s.u64v(c.mispredictSquashes);
    s.u64v(c.loadsForwarded);
    s.u64v(c.windowFullStalls);
    s.u64v(c.issueLimitedCycles);
    s.u64v(c.readyOpsSum);

    GatingStats &g = r.gating;
    s.u64v(g.ops);
    s.u64v(g.gated16);
    s.u64v(g.gated33);
    s.u64v(g.gatedLoadSourced);
    s.u64v(g.blockedByLoad);
    s.f64v(g.baselineMwSum);
    s.f64v(g.gatedMwSum);
    s.f64v(g.overheadMwSum);
    s.f64v(g.saved16MwSum);
    s.f64v(g.saved33MwSum);

    PackingStats &p = r.packing;
    s.u64v(p.packedGroups);
    s.u64v(p.packedInsts);
    s.u64v(p.replaySpeculations);
    s.u64v(p.replayTraps);
    s.u64v(p.packEligibleIssued);

    BPredStats &b = r.bpred;
    s.u64v(b.lookups);
    s.u64v(b.condLookups);
    s.u64v(b.condDirectionWrong);
    s.u64v(b.targetWrong);

    WidthProfilerSnapshot w;
    s.u64v(w.opCount);
    for (u64 &h : w.widthHist)
        s.u64v(h);
    for (u64 &n : w.narrow16ByCat)
        s.u64v(n);
    for (u64 &n : w.narrow33ByCat)
        s.u64v(n);
    u64 pcs = 0;
    // Each entry is 9 encoded bytes; bound the count so a corrupt blob
    // fails cleanly instead of attempting a huge reserve.
    if (s.u64v(pcs) && pcs <= s.remaining() / 9) {
        w.pcWidthSeen.reserve(pcs);
        for (u64 i = 0; i < pcs && s.ok(); ++i) {
            u64 pc = 0;
            u8 seen = 0;
            s.u64v(pc);
            s.u8v(seen);
            w.pcWidthSeen.emplace_back(pc, seen);
        }
    } else if (s.ok()) {
        return false;
    }
    r.profiler = WidthProfiler::fromSnapshot(w);

    s.f64v(r.l1dMissRate);
    s.f64v(r.l1iMissRate);

    unpackSampleSummaryFields(s, r.sample);

    s.u64v(r.decodeCache.lookups);
    s.u64v(r.decodeCache.hits);
    s.u64v(r.superblock.formed);
    s.u64v(r.superblock.loopClosures);
    s.u64v(r.superblock.entries);
    s.u64v(r.superblock.tracedInsts);
    s.u64v(r.superblock.guardExits);
    s.u64v(r.superblock.invalidations);
    return s.ok();
}

} // namespace nwsim

#endif // NWSIM_DRIVER_RESULT_SERIAL_HH
