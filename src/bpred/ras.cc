#include "bpred/ras.hh"

#include "common/logging.hh"

namespace nwsim
{

Ras::Ras(unsigned entries) : stack(entries, 0)
{
    NWSIM_ASSERT(entries > 0, "ras must have entries");
}

void
Ras::restore(const Checkpoint &cp)
{
    topIndex = cp.top;
    stack[topIndex] = cp.topValue;
}

void
Ras::push(Addr return_addr)
{
    topIndex = (topIndex + 1) % stack.size();
    stack[topIndex] = return_addr;
}

Addr
Ras::pop()
{
    const Addr value = stack[topIndex];
    topIndex = (topIndex + stack.size() - 1) % stack.size();
    return value;
}

} // namespace nwsim
