/**
 * @file
 * Return-address stack (Table 1: 32 entries) with checkpoint/repair for
 * speculative push/pop at fetch time.
 */

#ifndef NWSIM_BPRED_RAS_HH
#define NWSIM_BPRED_RAS_HH

#include <vector>

#include "ckpt/serial.hh"
#include "common/types.hh"

namespace nwsim
{

/** Circular return-address stack. */
class Ras
{
  public:
    explicit Ras(unsigned entries);

    /** Snapshot for mispredict repair: top index and top value. */
    struct Checkpoint
    {
        unsigned top = 0;
        Addr topValue = 0;
    };

    Checkpoint checkpoint() const { return {topIndex, stack[topIndex]}; }
    void restore(const Checkpoint &cp);

    void push(Addr return_addr);
    Addr pop();

    /** Serialize the full stack + top index (checkpointing). */
    void
    saveState(ckpt::ByteSink &sink) const
    {
        sink.u64v(stack.size());
        for (Addr a : stack)
            sink.u64v(a);
        sink.u32v(topIndex);
    }

    /** Restore saveState() data; false on malformed input. */
    bool
    loadState(ckpt::ByteSource &src)
    {
        u64 count = 0;
        if (!src.u64v(count) || count != stack.size())
            return false;
        std::vector<Addr> loaded(stack.size());
        for (Addr &a : loaded) {
            if (!src.u64v(a))
                return false;
        }
        u32 top = 0;
        if (!src.u32v(top) || top >= stack.size())
            return false;
        stack = std::move(loaded);
        topIndex = top;
        return true;
    }

  private:
    std::vector<Addr> stack;
    unsigned topIndex = 0;
};

} // namespace nwsim

#endif // NWSIM_BPRED_RAS_HH
