/**
 * @file
 * Return-address stack (Table 1: 32 entries) with checkpoint/repair for
 * speculative push/pop at fetch time.
 */

#ifndef NWSIM_BPRED_RAS_HH
#define NWSIM_BPRED_RAS_HH

#include <vector>

#include "common/types.hh"

namespace nwsim
{

/** Circular return-address stack. */
class Ras
{
  public:
    explicit Ras(unsigned entries);

    /** Snapshot for mispredict repair: top index and top value. */
    struct Checkpoint
    {
        unsigned top = 0;
        Addr topValue = 0;
    };

    Checkpoint checkpoint() const { return {topIndex, stack[topIndex]}; }
    void restore(const Checkpoint &cp);

    void push(Addr return_addr);
    Addr pop();

  private:
    std::vector<Addr> stack;
    unsigned topIndex = 0;
};

} // namespace nwsim

#endif // NWSIM_BPRED_RAS_HH
