#include "bpred/combining.hh"

namespace nwsim
{

CombiningPredictor::CombiningPredictor(const BPredConfig &config)
    : cfg(config),
      btb(config.btbEntries, config.btbAssoc),
      ras(config.rasEntries),
      selector(config.selectorEntries,
               static_cast<u8>(1u << (config.selectorBits - 1))),
      globalPred(config.globalEntries,
                 static_cast<u8>(1u << (config.globalBits - 1))),
      localHist(config.localHistEntries, 0),
      localPred(config.localPredEntries,
                static_cast<u8>(1u << (config.localPredBits - 1)))
{
}

void
CombiningPredictor::bump(u8 &counter, bool up, u8 max_value)
{
    if (up) {
        if (counter < max_value)
            ++counter;
    } else {
        if (counter > 0)
            --counter;
    }
}

bool
CombiningPredictor::predictDirection(Addr pc)
{
    const u64 hist_mask = (u64{1} << cfg.globalHistBits) - 1;
    const u64 gidx = ghist & hist_mask;

    const u16 lh = localHist[(pc >> 2) % cfg.localHistEntries];
    const bool local_taken =
        localPred[lh % cfg.localPredEntries] >=
        (1u << (cfg.localPredBits - 1));
    const bool global_taken =
        globalPred[gidx % cfg.globalEntries] >=
        (1u << (cfg.globalBits - 1));
    const bool use_global =
        selector[gidx % cfg.selectorEntries] >=
        (1u << (cfg.selectorBits - 1));

    lastLocalTaken = local_taken;
    lastGlobalTaken = global_taken;
    return use_global ? global_taken : local_taken;
}

Prediction
CombiningPredictor::predict(Addr pc, const Inst &inst)
{
    ++stat.lookups;
    Prediction pred;
    pred.histCheckpoint = ghist;
    pred.rasCheckpoint = ras.checkpoint();

    if (isCondBranch(inst.op)) {
        ++stat.condLookups;
        pred.isCond = true;
        pred.taken = predictDirection(pc);
        pred.localTaken = lastLocalTaken;
        pred.globalTaken = lastGlobalTaken;
        pred.target = pred.taken ? inst.branchTarget(pc) : pc + 4;
        // Speculative global-history update; repaired on squash.
        ghist = (ghist << 1) | (pred.taken ? 1 : 0);
        return pred;
    }

    pred.taken = true;
    if (isCall(inst))
        ras.push(pc + 4);
    if (isReturn(inst)) {
        pred.target = ras.pop();
    } else if (isIndirectControl(inst)) {
        const auto hit = btb.lookup(pc);
        pred.target = hit ? *hit : pc + 4;
    } else {
        // Direct unconditional branch: target known from the encoding.
        pred.target = inst.branchTarget(pc);
    }
    return pred;
}

void
CombiningPredictor::trainDirection(Addr pc, u64 hist_at_predict,
                                   bool taken)
{
    const u64 hist_mask = (u64{1} << cfg.globalHistBits) - 1;
    const u64 gidx = hist_at_predict & hist_mask;

    u16 &lh = localHist[(pc >> 2) % cfg.localHistEntries];
    bump(localPred[lh % cfg.localPredEntries], taken,
         static_cast<u8>((1u << cfg.localPredBits) - 1));
    lh = static_cast<u16>(((lh << 1) | (taken ? 1 : 0)) &
                          ((1u << cfg.localHistBits) - 1));

    bump(globalPred[gidx % cfg.globalEntries], taken,
         static_cast<u8>((1u << cfg.globalBits) - 1));
}

void
CombiningPredictor::resolve(Addr pc, const Inst &inst,
                            const Prediction &pred, bool actual_taken,
                            Addr actual_target)
{
    if (pred.isCond) {
        if (pred.taken != actual_taken)
            ++stat.condDirectionWrong;
        // Train the selector only when the components disagreed.
        if (pred.localTaken != pred.globalTaken) {
            const u64 hist_mask = (u64{1} << cfg.globalHistBits) - 1;
            const u64 gidx = pred.histCheckpoint & hist_mask;
            bump(selector[gidx % cfg.selectorEntries],
                 pred.globalTaken == actual_taken,
                 static_cast<u8>((1u << cfg.selectorBits) - 1));
        }
        trainDirection(pc, pred.histCheckpoint, actual_taken);
    }
    if (actual_taken && pred.target != actual_target)
        ++stat.targetWrong;
    if (isIndirectControl(inst) && !isReturn(inst))
        btb.update(pc, actual_target);
}

void
CombiningPredictor::repair(const Inst &inst, const Prediction &pred,
                           bool actual_taken)
{
    ghist = pred.histCheckpoint;
    if (isCondBranch(inst.op))
        ghist = (ghist << 1) | (actual_taken ? 1 : 0);
    ras.restore(pred.rasCheckpoint);
}

} // namespace nwsim
