/**
 * @file
 * Branch target buffer (Table 1: 2048-entry, 2-way, LRU).
 */

#ifndef NWSIM_BPRED_BTB_HH
#define NWSIM_BPRED_BTB_HH

#include <optional>
#include <vector>

#include "common/types.hh"

namespace nwsim
{

/** Set-associative branch target buffer. */
class Btb
{
  public:
    Btb(unsigned entries, unsigned assoc);

    /** Predicted target for the control instruction at @p pc, if any. */
    std::optional<Addr> lookup(Addr pc);

    /** Record/refresh the target of the branch at @p pc. */
    void update(Addr pc, Addr target);

  private:
    struct Entry
    {
        Addr tag = 0;
        Addr target = 0;
        bool valid = false;
        u64 lastUse = 0;
    };

    unsigned indexOf(Addr pc) const;

    unsigned numSets;
    u64 useClock = 0;
    std::vector<std::vector<Entry>> sets;
};

} // namespace nwsim

#endif // NWSIM_BPRED_BTB_HH
