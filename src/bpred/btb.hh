/**
 * @file
 * Branch target buffer (Table 1: 2048-entry, 2-way, LRU).
 */

#ifndef NWSIM_BPRED_BTB_HH
#define NWSIM_BPRED_BTB_HH

#include <optional>
#include <vector>

#include "ckpt/serial.hh"
#include "common/types.hh"

namespace nwsim
{

/** Set-associative branch target buffer. */
class Btb
{
  public:
    Btb(unsigned entries, unsigned assoc);

    /** Predicted target for the control instruction at @p pc, if any. */
    std::optional<Addr> lookup(Addr pc);

    /** Record/refresh the target of the branch at @p pc. */
    void update(Addr pc, Addr target);

    /** Serialize the replacement clock and every valid entry. */
    void
    saveState(ckpt::ByteSink &sink) const
    {
        sink.u64v(useClock);
        u64 valid = 0;
        for (const auto &set : sets)
            for (const Entry &e : set)
                valid += e.valid ? 1 : 0;
        sink.u64v(valid);
        for (u32 si = 0; si < sets.size(); ++si) {
            for (u32 way = 0; way < sets[si].size(); ++way) {
                const Entry &e = sets[si][way];
                if (!e.valid)
                    continue;
                sink.u32v(si);
                sink.u32v(way);
                sink.u64v(e.tag);
                sink.u64v(e.target);
                sink.u64v(e.lastUse);
            }
        }
    }

    /** Restore saveState() data; false on malformed input. */
    bool
    loadState(ckpt::ByteSource &src)
    {
        u64 clock = 0, valid = 0;
        if (!src.u64v(clock) || !src.u64v(valid))
            return false;
        for (auto &set : sets)
            for (Entry &e : set)
                e = Entry{};
        for (u64 i = 0; i < valid; ++i) {
            u32 si = 0, way = 0;
            u64 tag = 0, target = 0, last_use = 0;
            if (!src.u32v(si) || !src.u32v(way) || !src.u64v(tag) ||
                !src.u64v(target) || !src.u64v(last_use)) {
                return false;
            }
            if (si >= sets.size() || way >= sets[si].size())
                return false;
            sets[si][way] = Entry{tag, target, true, last_use};
        }
        useClock = clock;
        return true;
    }

  private:
    struct Entry
    {
        Addr tag = 0;
        Addr target = 0;
        bool valid = false;
        u64 lastUse = 0;
    };

    unsigned indexOf(Addr pc) const;

    unsigned numSets;
    u64 useClock = 0;
    std::vector<std::vector<Entry>> sets;
};

} // namespace nwsim

#endif // NWSIM_BPRED_BTB_HH
