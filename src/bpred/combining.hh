/**
 * @file
 * Combining (tournament) branch predictor per the paper's Table 1:
 *
 *  - selector: 4K 2-bit counters indexed by 12-bit global history;
 *  - local:    1K 10-bit per-PC histories -> 1K 3-bit counters;
 *  - global:   4K 2-bit counters indexed by 12-bit global history;
 *  - BTB:      2048-entry 2-way; return-address stack: 32 entries.
 *
 * Direction prediction applies to conditional branches. Targets come from
 * the decoded instruction for direct branches (fetch decodes real bytes),
 * the BTB for indirect jumps/calls, and the RAS for returns. Global
 * history is updated speculatively at predict time and repaired from a
 * per-branch checkpoint on misprediction, as the Alpha 21264 does.
 */

#ifndef NWSIM_BPRED_COMBINING_HH
#define NWSIM_BPRED_COMBINING_HH

#include <vector>

#include "bpred/btb.hh"
#include "bpred/ras.hh"
#include "isa/inst.hh"

namespace nwsim
{

/** Predictor sizing (defaults = paper Table 1). */
struct BPredConfig
{
    unsigned selectorEntries = 4096;
    unsigned selectorBits = 2;
    unsigned globalEntries = 4096;
    unsigned globalBits = 2;
    unsigned globalHistBits = 12;
    unsigned localHistEntries = 1024;
    unsigned localHistBits = 10;
    unsigned localPredEntries = 1024;
    unsigned localPredBits = 3;
    unsigned btbEntries = 2048;
    unsigned btbAssoc = 2;
    unsigned rasEntries = 32;
};

/** Predictor statistics. */
struct BPredStats
{
    u64 lookups = 0;
    u64 condLookups = 0;
    u64 condDirectionWrong = 0;
    u64 targetWrong = 0;

    /** Sum @p other's counters into this one (sampled-run intervals). */
    void
    accumulate(const BPredStats &other)
    {
        lookups += other.lookups;
        condLookups += other.condLookups;
        condDirectionWrong += other.condDirectionWrong;
        targetWrong += other.targetWrong;
    }

    double
    condMispredictRate() const
    {
        return condLookups
                   ? static_cast<double>(condDirectionWrong) / condLookups
                   : 0.0;
    }
};

/**
 * Everything fetch needs to redirect, and everything resolution needs to
 * repair speculative predictor state.
 */
struct Prediction
{
    bool taken = false;
    Addr target = 0;
    /** Global-history value before this prediction (for repair). */
    u64 histCheckpoint = 0;
    /** RAS state before this prediction's push/pop (for repair). */
    Ras::Checkpoint rasCheckpoint;
    /** True if the direction came from the conditional machinery. */
    bool isCond = false;
    /** Component predictions at predict time (exact selector training). */
    bool localTaken = false;
    bool globalTaken = false;
};

/** The combining predictor + BTB + RAS bundle used by the fetch stage. */
class CombiningPredictor
{
  public:
    explicit CombiningPredictor(const BPredConfig &config);

    /**
     * Predict the control instruction @p inst at @p pc and speculatively
     * update global history / RAS.
     */
    Prediction predict(Addr pc, const Inst &inst);

    /**
     * Resolve a prediction: train counters and BTB with the actual
     * outcome. Call for every executed control instruction.
     */
    void resolve(Addr pc, const Inst &inst, const Prediction &pred,
                 bool actual_taken, Addr actual_target);

    /**
     * Squash-repair: restore global history (then shift in the actual
     * outcome for conditional branches) and the RAS.
     */
    void repair(const Inst &inst, const Prediction &pred,
                bool actual_taken);

    const BPredStats &stats() const { return stat; }
    u64 globalHistory() const { return ghist; }

    /** Serialize stats, histories, counters, BTB, and RAS. */
    void
    saveState(ckpt::ByteSink &sink) const
    {
        sink.u64v(stat.lookups);
        sink.u64v(stat.condLookups);
        sink.u64v(stat.condDirectionWrong);
        sink.u64v(stat.targetWrong);
        sink.u64v(ghist);
        auto table8 = [&sink](const std::vector<u8> &t) {
            sink.u64v(t.size());
            for (u8 v : t)
                sink.u8v(v);
        };
        table8(selector);
        table8(globalPred);
        sink.u64v(localHist.size());
        for (u16 v : localHist)
            sink.u32v(v);
        table8(localPred);
        sink.boolv(lastLocalTaken);
        sink.boolv(lastGlobalTaken);
        btb.saveState(sink);
        ras.saveState(sink);
    }

    /** Restore saveState() data; false on malformed input. */
    bool
    loadState(ckpt::ByteSource &src)
    {
        BPredStats st;
        if (!src.u64v(st.lookups) || !src.u64v(st.condLookups) ||
            !src.u64v(st.condDirectionWrong) ||
            !src.u64v(st.targetWrong)) {
            return false;
        }
        u64 hist = 0;
        if (!src.u64v(hist))
            return false;
        auto table8 = [&src](std::vector<u8> &t) {
            u64 count = 0;
            if (!src.u64v(count) || count != t.size())
                return false;
            for (u8 &v : t) {
                if (!src.u8v(v))
                    return false;
            }
            return true;
        };
        std::vector<u8> sel = selector, glob = globalPred,
                        local = localPred;
        std::vector<u16> lhist(localHist.size());
        if (!table8(sel) || !table8(glob))
            return false;
        u64 count = 0;
        if (!src.u64v(count) || count != lhist.size())
            return false;
        for (u16 &v : lhist) {
            u32 x = 0;
            if (!src.u32v(x) || x > 0xffff)
                return false;
            v = static_cast<u16>(x);
        }
        if (!table8(local))
            return false;
        bool last_local = false, last_global = false;
        if (!src.boolv(last_local) || !src.boolv(last_global))
            return false;
        if (!btb.loadState(src) || !ras.loadState(src))
            return false;
        stat = st;
        ghist = hist;
        selector = std::move(sel);
        globalPred = std::move(glob);
        localHist = std::move(lhist);
        localPred = std::move(local);
        lastLocalTaken = last_local;
        lastGlobalTaken = last_global;
        return true;
    }

  private:
    bool predictDirection(Addr pc);
    void trainDirection(Addr pc, u64 hist_at_predict, bool taken);

    static void bump(u8 &counter, bool up, u8 max_value);

    BPredConfig cfg;
    BPredStats stat;
    Btb btb;
    Ras ras;
    u64 ghist = 0;

    std::vector<u8> selector;   ///< >= half: use global
    std::vector<u8> globalPred;
    std::vector<u16> localHist;
    std::vector<u8> localPred;
    bool lastLocalTaken = false;
    bool lastGlobalTaken = false;
};

} // namespace nwsim

#endif // NWSIM_BPRED_COMBINING_HH
