#include "bpred/btb.hh"

#include <bit>

#include "common/logging.hh"

namespace nwsim
{

Btb::Btb(unsigned entries, unsigned assoc)
{
    NWSIM_ASSERT(entries % assoc == 0, "btb entries/assoc mismatch");
    numSets = entries / assoc;
    NWSIM_ASSERT(std::has_single_bit(numSets),
                 "btb set count must be a power of two");
    sets.assign(numSets, std::vector<Entry>(assoc));
}

unsigned
Btb::indexOf(Addr pc) const
{
    return static_cast<unsigned>((pc >> 2) & (numSets - 1));
}

std::optional<Addr>
Btb::lookup(Addr pc)
{
    ++useClock;
    for (Entry &e : sets[indexOf(pc)]) {
        if (e.valid && e.tag == pc) {
            e.lastUse = useClock;
            return e.target;
        }
    }
    return std::nullopt;
}

void
Btb::update(Addr pc, Addr target)
{
    ++useClock;
    auto &set = sets[indexOf(pc)];
    Entry *victim = &set[0];
    for (Entry &e : set) {
        if (e.valid && e.tag == pc) {
            e.target = target;
            e.lastUse = useClock;
            return;
        }
        if (!e.valid) {
            victim = &e;
        } else if (victim->valid && e.lastUse < victim->lastUse) {
            victim = &e;
        }
    }
    victim->valid = true;
    victim->tag = pc;
    victim->target = target;
    victim->lastUse = useClock;
}

} // namespace nwsim
