/**
 * @file
 * Aggregate statistics for one out-of-order core run.
 */

#ifndef NWSIM_PIPELINE_STATS_HH
#define NWSIM_PIPELINE_STATS_HH

#include "common/types.hh"

namespace nwsim
{

/** Core pipeline counters. */
struct CoreStats
{
    Cycle cycles = 0;
    u64 fetched = 0;
    u64 dispatched = 0;
    u64 issued = 0;
    u64 committed = 0;
    /** Instructions removed by branch-misprediction squashes. */
    u64 squashed = 0;
    /** Mispredictions resolved (squash events). */
    u64 mispredictSquashes = 0;
    /** Loads satisfied by store-to-load forwarding. */
    u64 loadsForwarded = 0;
    /** Cycles dispatch stalled on a full RUU / LSQ. */
    u64 windowFullStalls = 0;
    /** Cycles where ready instructions were left unissued (slots/FUs). */
    u64 issueLimitedCycles = 0;
    /** Sum over cycles of ready-to-issue instructions (pressure). */
    u64 readyOpsSum = 0;

    /** Sum @p other's counters into this one (sampled-run intervals). */
    void
    accumulate(const CoreStats &other)
    {
        cycles += other.cycles;
        fetched += other.fetched;
        dispatched += other.dispatched;
        issued += other.issued;
        committed += other.committed;
        squashed += other.squashed;
        mispredictSquashes += other.mispredictSquashes;
        loadsForwarded += other.loadsForwarded;
        windowFullStalls += other.windowFullStalls;
        issueLimitedCycles += other.issueLimitedCycles;
        readyOpsSum += other.readyOpsSum;
    }

    double
    ipc() const
    {
        return cycles ? static_cast<double>(committed) /
                            static_cast<double>(cycles)
                      : 0.0;
    }
};

} // namespace nwsim

#endif // NWSIM_PIPELINE_STATS_HH
