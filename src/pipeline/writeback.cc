/**
 * @file
 * Writeback stage: completion, dependent wakeup, replay traps
 * (Section 5.3), and branch resolution with mispredict squash/redirect.
 */

#include "common/logging.hh"
#include "pipeline/core.hh"

namespace nwsim
{

void
OutOfOrderCore::writebackStage()
{
    // Detach this cycle's completion events into the reused scratch
    // list: squashes may mutate the window (and purge future timers)
    // mid-walk.
    completedScratch.clear();
    completions.drain(curCycle, completedScratch);

    for (const InstSeq seq : completedScratch) {
        RuuEntry *e = entryBySeq(seq);
        // Timers are purged eagerly on squash, so these guards only
        // skip events orphaned mid-walk by a same-cycle mispredict
        // squash earlier in this loop.
        if (!e || e->state != EntryState::Issued ||
            e->completeCycle != curCycle) {
            continue;
        }

        // Replay trap (Section 5.3): a speculatively packed instruction
        // whose 16-bit lane result would have been wrong is squashed and
        // re-issued as a full-width instruction via a replay trap.
        if (e->replaySpec) {
            const bool traps =
                replayWouldTrap(e->inst, e->opA(), e->opB(), e->pc);
            if (observer)
                observer->onReplayDecision(*e, traps);
            if (traps) {
                e->state = EntryState::Dispatched;
                e->packed = false;
                e->replaySpec = false;
                e->noPack = true;
                e->earliestIssue = curCycle + cfg.packing.replayPenalty;
                // Re-insert into the ready queue when the penalty
                // expires. A zero penalty lands on the current cycle's
                // wheel slot, which this cycle's issue stage (it runs
                // after writeback) still drains.
                readyTimers.schedule(seq, e->earliestIssue, curCycle);
                ++packStat.replayTraps;
                trace(TraceStage::Replay, *e);
                continue;
            }
            e->replaySpec = false;
        }

        e->state = EntryState::Completed;
        wakeDependents(seq);
        trace(TraceStage::Complete, *e);
        if (observer)
            observer->onComplete(*e);

        if (e->isCtrl && e->mispredicted) {
            ++stat.mispredictSquashes;
            const Addr redirect = e->actualNpc;
            const Inst inst = e->inst;
            const Prediction pred = e->pred;
            const bool taken = e->actualTaken;
            squashAfter(seq);   // may invalidate e
            if (predictor)
                predictor->repair(inst, pred, taken);
            if (traceHook) {
                TraceEvent ev{curCycle, TraceStage::Redirect, seq,
                              redirect, inst, false};
                traceHook(ev);
            }
            fetchPc = redirect;
            fetchResumeCycle = curCycle + 1 + cfg.mispredictPenalty;
        }
    }
}

} // namespace nwsim
