/**
 * @file
 * Dispatch (decode/rename) stage: moves fetched instructions into the
 * RUU/LSQ, executes them functionally against the speculative register
 * file (execute-at-dispatch), and computes the operand width tags the
 * paper's hardware derives in decode ("In decode, bitwidths are
 * calculated for dynamic data and stored in the reservation station
 * entry to be used during the issue stage").
 */

#include "common/logging.hh"
#include "pipeline/core.hh"

namespace nwsim
{

void
OutOfOrderCore::setupSource(RegIndex reg, bool &ready, InstSeq &producer,
                            bool &from_load)
{
    ready = true;
    producer = 0;
    from_load = regFromLoad[reg];
    if (reg == zeroReg)
        return;
    const InstSeq p = regProducer[reg];
    if (p == 0)
        return;
    const RuuEntry *e = entryBySeq(p);
    if (e && e->state != EntryState::Completed) {
        ready = false;
        producer = p;
    }
}

u64
OutOfOrderCore::speculativeLoadValue(Addr addr, unsigned size,
                                     InstSeq before)
{
    // Byte-accurate view of memory as seen in fetch order: committed
    // memory overlaid with older in-flight stores (store data is known
    // at dispatch because stores also execute-at-dispatch). The
    // youngest older store covering a byte supplies it.
    u64 value = 0;
    for (unsigned i = 0; i < size; ++i) {
        const Addr byte_addr = addr + i;
        u8 byte = static_cast<u8>(mem.read(byte_addr, 1));
        // Every store covering this byte lives on the byte's block
        // chain; pick the youngest by seq (chain order is arbitrary,
        // the max-seq reduction restores fetch order).
        InstSeq best = 0;
        storeIndex.forEachStoreOnBlock(
            StoreAddrIndex::blockOf(byte_addr), [&](InstSeq s) {
                if (s >= before || s <= best)
                    return;
                const RuuEntry *st = entryBySeq(s);
                NWSIM_ASSERT(st && st->isSt, "stale store-index chain");
                if (byte_addr >= st->effAddr &&
                    byte_addr < st->effAddr + st->memSize) {
                    best = s;
                    byte = static_cast<u8>(
                        st->storeData >>
                        (8 * (byte_addr - st->effAddr)));
                }
            });
        value |= static_cast<u64>(byte) << (8 * i);
    }
    return value;
}

void
OutOfOrderCore::dispatchStage()
{
    unsigned dispatched = 0;
    while (dispatched < cfg.decodeWidth && !fetchQueue.empty()) {
        const FetchedInst &f = fetchQueue.front();
        const Inst &inst = f.inst;
        const OpInfo &info = opInfo(inst.op);
        const bool is_mem = info.opClass == OpClass::MemRead ||
                            info.opClass == OpClass::MemWrite;

        if (window.size() >= cfg.ruuSize ||
            (is_mem && lsqCount >= cfg.lsqSize)) {
            ++stat.windowFullStalls;
            break;
        }

        RuuEntry e;
        e.seq = nextSeq++;
        e.pc = f.pc;
        e.inst = inst;
        e.pred = f.pred;
        e.predictedNpc = f.predictedNpc;

        setupSource(inst.ra, e.aReady, e.aProducer, e.aFromLoad);
        setupSource(inst.rb, e.bReady, e.bProducer, e.bFromLoad);
        e.valA = specRegs[inst.ra];
        e.valB = specRegs[inst.rb];
        // Immediate operands are constants: no producer, not load-sourced.
        if (inst.usesImm())
            e.bFromLoad = false;

        // ---- Execute-at-dispatch -------------------------------------
        bool dest_from_load = false;
        switch (info.opClass) {
          case OpClass::MemRead:
            e.isMem = true;
            e.effAddr = effectiveAddr(inst, e.valA);
            e.memSize = memAccessSize(inst.op);
            e.result = loadValue(
                inst.op, speculativeLoadValue(e.effAddr, e.memSize,
                                              e.seq));
            dest_from_load = true;
            break;
          case OpClass::MemWrite:
            e.isMem = true;
            e.isSt = true;
            e.effAddr = effectiveAddr(inst, e.valA);
            e.memSize = memAccessSize(inst.op);
            e.storeData = e.valB;
            break;
          case OpClass::Branch:
            e.isCtrl = true;
            e.actualTaken = branchTaken(inst.op, e.valA);
            e.actualNpc =
                e.actualTaken ? inst.branchTarget(f.pc) : f.pc + 4;
            e.result = aluResult(inst, e.opA(), e.opB(), f.pc);
            break;
          case OpClass::Jump:
            e.isCtrl = true;
            e.actualTaken = true;
            e.actualNpc = e.valB;
            e.result = aluResult(inst, e.opA(), e.opB(), f.pc);
            break;
          case OpClass::Other:
            break;
          default:
            e.result = aluResult(inst, e.opA(), e.opB(), f.pc);
            break;
        }
        e.mispredicted = e.isCtrl && (e.predictedNpc != e.actualNpc);

        // ---- Speculative register-state update (with undo log) --------
        if (inst.writesReg()) {
            const RegIndex rc = inst.rc;
            e.wroteDest = true;
            e.oldDestValue = specRegs[rc];
            e.oldDestProducer = regProducer[rc];
            e.oldDestFromLoad = regFromLoad[rc];
            specRegs[rc] = e.result;
            regProducer[rc] = e.seq;
            regFromLoad[rc] = dest_from_load;
        }

        // The decode-stage width tags (Figure 8's "Zero48?" fields):
        // profile every dispatched integer-unit op, wrong path included.
        if (info.opClass != OpClass::Other) {
            widthProfiler.recordOp(f.pc, info.opClass, e.opA(), e.opB());
            // Train the (observational) width predictor on the same
            // stream a decode-time predictor would see.
            widthPred.train(f.pc, pairClass(e.opA(), e.opB()) ==
                                      WidthClass::Narrow16);
        }

        if (is_mem)
            ++lsqCount;
        trace(TraceStage::Dispatch, e);
        window.push_back(e);
        // Register the scheduler events this entry will produce or
        // consume: dependence edges on unready operands (waking it
        // later costs O(consumers), not O(window)), its ready-queue
        // slot if it is born issuable (the issue stage ran earlier
        // this tick, so it is first considered next cycle), and its
        // store-index chains for load ordering.
        if (!e.aReady)
            deps.link(e.aProducer, e.seq, 0);
        if (!e.bReady)
            deps.link(e.bProducer, e.seq, 1);
        if (issueReady(e))
            readyQueue.insert(e.seq);
        if (e.isSt)
            storeIndex.add(e.seq, e.effAddr, e.memSize);
        if (observer)
            observer->onDispatch(window.back());
        fetchQueue.pop_front();
        ++stat.dispatched;
        ++dispatched;
    }
}

} // namespace nwsim
