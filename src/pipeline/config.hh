/**
 * @file
 * Out-of-order core configuration. Defaults reproduce the paper's
 * Table 1 baseline processor.
 */

#ifndef NWSIM_PIPELINE_CONFIG_HH
#define NWSIM_PIPELINE_CONFIG_HH

#include "bpred/combining.hh"
#include "core/gating.hh"
#include "core/packing.hh"
#include "mem/memsystem.hh"

namespace nwsim
{

/** Full processor configuration (defaults = paper Table 1). */
struct CoreConfig
{
    /** RUU (unified window / issue queue / rename) size. */
    unsigned ruuSize = 80;
    /** Load/store queue size. */
    unsigned lsqSize = 40;
    unsigned fetchQueueSize = 8;
    unsigned fetchWidth = 4;
    unsigned decodeWidth = 4;
    unsigned issueWidth = 4;
    unsigned commitWidth = 4;
    /** Integer ALUs (arithmetic, logical, shift, memory, branch ops). */
    unsigned numAlus = 4;
    /** Integer multiply/divide units. */
    unsigned numMultDiv = 1;
    /** Extra fetch-redirect cycles after a resolved misprediction. */
    unsigned mispredictPenalty = 2;
    /** Use the oracle fetch engine instead of the combining predictor. */
    bool perfectBPred = false;
    /**
     * Forward-progress watchdog: cycles without a commit before run()
     * throws DeadlockError with an occupancy diagnostic (0 = disabled).
     * The default is far above any legitimate commit gap (worst-case
     * chained memory latency is ~100 cycles), so it only fires on real
     * scheduler/wakeup bugs.
     */
    Cycle watchdogCycles = 100000;
    /**
     * PowerPC-603-style early-out integer multiply (paper Section 2.3):
     * leading-zero/one detection on the input operands shortens the
     * multiply latency when both operands are narrow — another consumer
     * of the same operand width tags.
     */
    bool earlyOutMultiply = false;
    /**
     * Use the original O(window)-per-cycle scan scheduler (full-RUU
     * issue scan, wakeup broadcast, per-load store scan) instead of the
     * event-driven one (ready queue, dependent lists, store address
     * index). Timing and statistics are bit-identical either way
     * (tests/test_sched_equivalence.cc); the flag exists so the two
     * implementations can be diffed in the field and will be removed
     * after one release.
     */
    bool legacyScheduler = false;

    BPredConfig bpred;
    MemSystemConfig mem;
    PackingConfig packing;
    GatingConfig gating;
};

/** The Table 1 baseline. */
inline CoreConfig
baselineConfig()
{
    return CoreConfig{};
}

} // namespace nwsim

#endif // NWSIM_PIPELINE_CONFIG_HH
