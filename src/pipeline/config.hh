/**
 * @file
 * Out-of-order core configuration. Defaults reproduce the paper's
 * Table 1 baseline processor.
 */

#ifndef NWSIM_PIPELINE_CONFIG_HH
#define NWSIM_PIPELINE_CONFIG_HH

#include "bpred/combining.hh"
#include "core/gating.hh"
#include "core/packing.hh"
#include "mem/memsystem.hh"

namespace nwsim
{

/** Full processor configuration (defaults = paper Table 1). */
struct CoreConfig
{
    /** RUU (unified window / issue queue / rename) size. */
    unsigned ruuSize = 80;
    /** Load/store queue size. */
    unsigned lsqSize = 40;
    unsigned fetchQueueSize = 8;
    unsigned fetchWidth = 4;
    unsigned decodeWidth = 4;
    unsigned issueWidth = 4;
    unsigned commitWidth = 4;
    /** Integer ALUs (arithmetic, logical, shift, memory, branch ops). */
    unsigned numAlus = 4;
    /** Integer multiply/divide units. */
    unsigned numMultDiv = 1;
    /** Extra fetch-redirect cycles after a resolved misprediction. */
    unsigned mispredictPenalty = 2;
    /** Use the oracle fetch engine instead of the combining predictor. */
    bool perfectBPred = false;
    /**
     * Forward-progress watchdog: cycles without a commit before run()
     * throws DeadlockError with an occupancy diagnostic (0 = disabled).
     * The default is far above any legitimate commit gap (worst-case
     * chained memory latency is ~100 cycles), so it only fires on real
     * scheduler/wakeup bugs.
     */
    Cycle watchdogCycles = 100000;
    /**
     * PowerPC-603-style early-out integer multiply (paper Section 2.3):
     * leading-zero/one detection on the input operands shortens the
     * multiply latency when both operands are narrow — another consumer
     * of the same operand width tags.
     */
    bool earlyOutMultiply = false;
    /**
     * Thread the functional paths (fastForward warmup, the perfect-
     * prediction oracle) through the basic-block decode cache and the
     * fetch stage through the PC-tagged decoded-instruction cache
     * (func/decode_cache.hh). Timing and statistics are bit-identical
     * either way (tests/test_decode_cache.cc); disable via the
     * `+nodecodecache` spec modifier for differential testing or
     * self-modifying programs (the caches only invalidate on program
     * (re)load, not on data stores into the text segment).
     */
    bool decodeCache = true;
    /**
     * Layer superblock traces over the decode cache in fastForward
     * (func/superblock.hh): hot block-entry PCs are stitched across
     * their observed branch directions into direct-threaded micro-op
     * traces with guard side-exits and baked-in warming. Timing and
     * statistics are bit-identical either way (the trace executor
     * replays the block loop's side effects in order); disable via the
     * `+notrace` spec modifier for A/B sim-speed comparisons, one
     * level above `+nodecodecache`. No effect when decodeCache is off.
     */
    bool superblockTraces = true;

    BPredConfig bpred;
    MemSystemConfig mem;
    PackingConfig packing;
    GatingConfig gating;
};

/** The Table 1 baseline. */
inline CoreConfig
baselineConfig()
{
    return CoreConfig{};
}

} // namespace nwsim

#endif // NWSIM_PIPELINE_CONFIG_HH
