/**
 * @file
 * Fetch stage: I-cache/I-TLB timing, branch prediction (or the perfect
 * oracle), and wrong-path fetching down predicted targets.
 */

#include "common/logging.hh"
#include "common/strings.hh"
#include "isa/encode.hh"
#include "pipeline/core.hh"

namespace nwsim
{

void
OutOfOrderCore::fetchStage()
{
    if (fetchHalted || curCycle < fetchResumeCycle)
        return;

    unsigned fetched = 0;
    while (fetched < cfg.fetchWidth &&
           fetchQueue.size() < cfg.fetchQueueSize) {
        // Instruction-memory timing: a miss stalls fetch until the block
        // arrives (the fill makes the retry hit).
        const unsigned ilat = memsys.instLatency(fetchPc);
        const unsigned hit_lat = cfg.mem.l1i.hitLatency;
        if (ilat > hit_lat) {
            fetchResumeCycle = curCycle + (ilat - hit_lat);
            break;
        }

        // Decoded-instruction cache: skips the read+decode for hot
        // fetch groups. Host-side only — instLatency above already
        // charged the I-cache timing, so this is timing-invisible.
        const Inst inst =
            cfg.decodeCache
                ? fetchCache.lookup(fetchPc, mem)
                : decode(static_cast<MachineWord>(mem.read(fetchPc, 4)));

        FetchedInst f;
        f.pc = fetchPc;
        f.inst = inst;

        Addr npc = fetchPc + 4;
        if (cfg.perfectBPred) {
            // The oracle walks the true path in lockstep with fetch;
            // with perfect prediction fetch never diverges from it.
            NWSIM_ASSERT(oracle->pc() == fetchPc,
                         "oracle diverged from fetch at ",
                         hexString(fetchPc));
            const FuncStep step = oracle->step();
            npc = step.nextPc;
            f.pred.taken = step.taken;
            f.pred.target = npc;
        } else if (isControl(inst.op)) {
            f.pred = predictor->predict(fetchPc, inst);
            f.hasPred = true;
            npc = f.pred.taken ? f.pred.target : fetchPc + 4;
        }
        f.predictedNpc = npc;

        fetchQueue.push_back(f);
        ++stat.fetched;
        ++fetched;

        if (inst.op == Opcode::HALT) {
            // Stop fetching past (a possibly wrong-path) HALT; a squash
            // clears this, a committed HALT ends the run.
            fetchHalted = true;
            break;
        }

        const bool redirecting = npc != fetchPc + 4;
        fetchPc = npc;
        // A taken control transfer ends the fetch group for this cycle.
        if (redirecting)
            break;
    }
}

} // namespace nwsim
