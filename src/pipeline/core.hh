/**
 * @file
 * The out-of-order superscalar core: a C++ reimplementation of the
 * SimpleScalar sim-outorder idiom the paper's experiments run on.
 *
 * Key properties (all load-bearing for the paper's mechanisms):
 *
 *  - Execute-at-dispatch / time-at-issue: instructions execute
 *    functionally when they enter the RUU, against an in-fetch-order
 *    speculative register file with an undo log; the issue/execute
 *    stages model timing and resources only. Operand values — and hence
 *    the paper's narrow-width tags — are therefore present in the RUU
 *    entry exactly as Figure 8 depicts.
 *  - Real wrong-path execution: fetch follows predictions, and
 *    mispredicted-path instructions dispatch, execute, and may be packed
 *    until the branch resolves at writeback (2-cycle redirect penalty).
 *  - Perfect branch prediction runs fetch against a private functional
 *    oracle (used by Figures 2 and 10).
 *  - Operation packing happens in the issue stage's selection loop;
 *    replay packing defers completion and re-issues on a carry trap.
 */

#ifndef NWSIM_PIPELINE_CORE_HH
#define NWSIM_PIPELINE_CORE_HH

#include <memory>
#include <string>
#include <vector>

#include "ckpt/serial.hh"
#include "core/cache_gating.hh"
#include "core/profiler.hh"
#include "core/width_predictor.hh"
#include "func/decode_cache.hh"
#include "func/func_sim.hh"
#include "func/superblock.hh"
#include "pipeline/config.hh"
#include "pipeline/fetch_cache.hh"
#include "pipeline/observer.hh"
#include "pipeline/ruu.hh"
#include "pipeline/sched.hh"
#include "pipeline/stats.hh"
#include "pipeline/trace.hh"

namespace nwsim
{

/** Packing statistics live here (filled by the issue stage). */
struct CorePackingStats : PackingStats
{
};

/** The simulated out-of-order processor. */
class OutOfOrderCore
{
  public:
    /**
     * @param config  Processor configuration.
     * @param memory  Backing memory with the program image already loaded.
     * @param entry   Initial PC.
     * @param stack_pointer Initial r30.
     *
     * In perfect-branch-prediction mode the constructor snapshots
     * @p memory for the private fetch oracle, so construct the core
     * after loading the program.
     */
    OutOfOrderCore(const CoreConfig &config, SparseMemory &memory,
                   Addr entry, Addr stack_pointer = layout::stackTop);

    ~OutOfOrderCore();

    /** Simulate one cycle. */
    void tick();

    /**
     * Run until HALT commits or @p max_commits more instructions commit.
     * Throws DeadlockError with an occupancy diagnostic if no
     * instruction commits for CoreConfig::watchdogCycles cycles.
     * @return number of instructions committed by this call.
     */
    u64 run(u64 max_commits);

    /**
     * Fast-mode warmup (paper Section 3.2 / Skadron et al.): execute up
     * to @p insts instructions functionally, updating only the caches,
     * TLBs, and branch predictor — no out-of-order timing. Detailed
     * simulation (tick()/run()) continues seamlessly afterwards.
     *
     * @pre no in-flight instructions (call before the first tick()).
     * @return instructions fast-forwarded.
     */
    u64 fastForward(u64 insts);

    /**
     * Seed the architected register file from a functional stream (the
     * sampled-simulation controller transplants FuncSim state into a
     * fresh detailed core at each sample point). Also seeds the
     * perfect-prediction oracle so it replays the same path.
     *
     * @pre no in-flight instructions (call before the first tick()).
     */
    void seedArchRegs(const std::array<u64, numIntRegs> &regs);

    /** True once HALT has committed. */
    bool done() const { return simDone; }

    /**
     * Squash every in-flight instruction and rewind fetch to the oldest
     * uncommitted PC, leaving the machine at the architected state of
     * the last commit. Stores only touch memory at commit, so this is
     * always safe. Restores fastForward()'s empty-pipeline precondition
     * mid-run — the sampled-simulation controller drains between a
     * measurement interval and the next fast-forward segment.
     */
    void drainInFlight();

    /** Zero all measurement counters, keeping microarchitectural state. */
    void resetStats();

    /** Install (or clear, with {}) a per-event trace hook. */
    void setTraceHook(TraceHook hook) { traceHook = std::move(hook); }

    /**
     * Attach (or clear, with nullptr) a non-owning microarchitectural
     * observer. The observer must outlive its attachment; src/check's
     * oracle and invariant checker connect here, as does the campaign
     * engine's FlightRecorder.
     */
    void
    setObserver(CoreObserver *obs)
    {
        observer = obs;
        if (observer)
            observer->onAttach(*this);
    }

    /**
     * Read-only view of the in-flight window (fetch order, contiguous
     * seqs). For observers/checkers; the entries are live pipeline
     * state, valid only until the next tick().
     */
    const InstRing<RuuEntry> &inflight() const { return window; }

    /** Architected register value (only meaningful when done()). */
    u64 reg(RegIndex index) const { return specRegs[index]; }

    const CoreStats &stats() const { return stat; }
    const WidthProfiler &profiler() const { return widthProfiler; }
    const ClockGatingModel &gating() const { return gatingModel; }
    const CacheGatingModel &cacheGating() const { return cacheModel; }
    const WidthPredictor &widthPredictor() const { return widthPred; }
    const CorePackingStats &packingStats() const { return packStat; }
    /** Predictor stats (all-zero in perfect-prediction mode). */
    const BPredStats &bpredStats() const;
    const MemSystem &memSystem() const { return memsys; }
    const CoreConfig &config() const { return cfg; }
    Cycle now() const { return curCycle; }

    /**
     * Combined decode-cache health counters: the fastForward block
     * cache plus the fetch stage's decoded-instruction cache. A host
     * metric, not a simulation statistic (all-zero with
     * `+nodecodecache`; excluded from stat-identity comparisons).
     */
    DecodeCacheStats
    decodeCacheStats() const
    {
        DecodeCacheStats s;
        if (ffCache)
            s.accumulate(ffCache->stats());
        s.accumulate(fetchCache.stats());
        return s;
    }

    /**
     * Superblock trace-cache health counters — a host metric with the
     * same contract as decodeCacheStats() (all-zero under `+notrace`
     * or `+nodecodecache`; excluded from stat-identity comparisons).
     */
    SuperblockStats
    superblockStats() const
    {
        return sbCache ? sbCache->stats() : SuperblockStats{};
    }

    /**
     * Serialize the full machine state — architected registers and
     * backing memory, fetch/timing cursors, warmed caches/TLBs/branch
     * predictor (or the perfect-prediction oracle), and every
     * measurement counter — into @p sink.
     *
     * @pre no in-flight instructions (drainInFlight() first, or call at
     * an interval boundary). The scheduler structures are empty at such
     * a point, so they are not serialized; host-side decode caches
     * rebuild lazily and are not serialized either.
     */
    void saveState(ckpt::ByteSink &sink) const;

    /**
     * Restore saveState() data into this core. Returns false (leaving
     * the core unusable — discard it) on malformed input or a
     * configuration mismatch (e.g. different predictor geometry).
     *
     * @pre a freshly constructed core over the same program image and
     * CoreConfig as the one that saved. The backing SparseMemory is
     * overwritten with the checkpointed image.
     */
    bool loadState(ckpt::ByteSource &src);

  private:
    friend class CoreInspector;   // white-box unit tests

    /** One in-flight fetched-but-not-dispatched instruction. */
    struct FetchedInst
    {
        Addr pc = 0;
        Inst inst;
        Prediction pred;
        Addr predictedNpc = 0;
        bool hasPred = false;
    };

    // ---- Stages (reverse pipeline order inside tick()) -------------------
    void commitStage();
    void writebackStage();
    void issueStage();
    void dispatchStage();
    void fetchStage();

    // ---- Helpers -----------------------------------------------------------
    RuuEntry *entryBySeq(InstSeq seq);
    void setupSource(RegIndex reg, bool &ready, InstSeq &producer,
                     bool &from_load);
    u64 speculativeLoadValue(Addr addr, unsigned size, InstSeq before);
    bool loadBlocked(const RuuEntry &e, bool &forwarded);
    void wakeDependents(InstSeq producer_seq);
    /** Decode-every-instruction fastForward (`+nodecodecache`). */
    u64 fastForwardUncached(u64 insts);
    /** Per-instruction warming shared by both fastForward paths. */
    void warmControl(Addr pc, const Inst &inst, bool taken, Addr next_pc);
    /** Occupancy report for the watchdog's DeadlockError. */
    std::string deadlockDiagnostic(Cycle stalled_cycles) const;
    void squashAfter(InstSeq seq);
    void squashVictim(RuuEntry &victim);
    void undoEntry(RuuEntry &e);
    void scheduleCompletion(InstSeq seq, Cycle when);
    void recordIssue(RuuEntry &e);
    unsigned loadLatency(const RuuEntry &e, bool forwarded);
    /** Issue/wake predicate: dispatched, operands ready, timer expired. */
    bool
    issueReady(const RuuEntry &e) const
    {
        return e.state == EntryState::Dispatched && e.aReady &&
               e.bReady && e.earliestIssue <= curCycle;
    }
    /** Event-mode wake of one operand (DepGraph::wake callback). */
    void onOperandReady(InstSeq consumer, unsigned op);
    /** Per-entry issue attempt (resource accounting + packing). */
    void tryIssueEntry(RuuEntry &e, unsigned &slots, unsigned &alus,
                       unsigned &mults, unsigned &ready_seen,
                       unsigned &issued_now);
    /** Drain expired earliest-issue timers into the ready queue. */
    void drainReadyTimers();
    void finishIssueGroups();

    /** Emit a trace event if a hook is installed. */
    void
    trace(TraceStage stage, const RuuEntry &e)
    {
        if (traceHook)
            traceHook({curCycle, stage, e.seq, e.pc, e.inst, e.packed});
    }

    CoreConfig cfg;
    SparseMemory &mem;
    MemSystem memsys;
    std::unique_ptr<CombiningPredictor> predictor;

    // Perfect-prediction oracle over a private memory snapshot.
    std::unique_ptr<SparseMemory> oracleMem;
    std::unique_ptr<FuncSim> oracle;

    // Decode caches (null/empty with cfg.decodeCache off): the
    // basic-block cache threading fastForward, and the fetch stage's
    // PC-tagged decoded-instruction cache.
    std::unique_ptr<DecodeCache> ffCache;
    FetchDecodeCache fetchCache;
    /** Superblock traces over ffCache (null with `+notrace` or
     *  `+nodecodecache`); invalidated whenever ffCache is. */
    std::unique_ptr<SuperblockCache> sbCache;

    // Speculative in-fetch-order register state (execute-at-dispatch).
    std::array<u64, numIntRegs> specRegs{};
    std::array<InstSeq, numIntRegs> regProducer{};
    std::array<bool, numIntRegs> regFromLoad{};

    InstRing<RuuEntry> window;
    InstRing<FetchedInst> fetchQueue;

    // ---- Event-driven scheduler state (sched.hh) -------------------------
    /** Completion timers. */
    EventWheel completions;
    /** Earliest-issue (replay) timers. */
    EventWheel readyTimers;
    /** Seq-ordered set of issuable entries. */
    ReadyQueue readyQueue;
    /** Per-producer dependent lists. */
    DepGraph deps;
    /** Block index over in-flight LSQ stores. */
    StoreAddrIndex storeIndex;

    // Reused per-cycle scratch so steady-state tick() never allocates.
    std::vector<InstSeq> completedScratch;
    std::vector<InstSeq> readyScratch;

    /** An ALU whose subword lanes are being filled this cycle. */
    struct IssueGroup
    {
        PackKey key = PackKey::None;
        std::vector<RuuEntry *> members;
    };
    std::vector<IssueGroup> issueGroups; // sized numAlus once
    size_t issueGroupCount = 0;          // active groups this cycle
    std::vector<const RuuEntry *> packedMembersScratch;

    Addr fetchPc;
    /** Absolute cycle count (never reset; stat.cycles is the window). */
    Cycle curCycle = 0;
    Cycle fetchResumeCycle = 0;
    bool fetchHalted = false;
    unsigned lsqCount = 0;
    InstSeq nextSeq = 1;
    Cycle multDivBusyUntil = 0;
    bool simDone = false;
    /** Commits allowed this tick (run() uses it for exact windows). */
    u64 commitBudget = ~u64{0};

    CoreStats stat;
    WidthProfiler widthProfiler;
    WidthPredictor widthPred;
    ClockGatingModel gatingModel;
    CacheGatingModel cacheModel;
    CorePackingStats packStat;
    TraceHook traceHook;
    CoreObserver *observer = nullptr;
};

} // namespace nwsim

#endif // NWSIM_PIPELINE_CORE_HH
