/**
 * @file
 * Pipeline event tracing: a per-instruction, per-stage event stream for
 * debugging and visualization, off by default and free when unused.
 */

#ifndef NWSIM_PIPELINE_TRACE_HH
#define NWSIM_PIPELINE_TRACE_HH

#include <functional>
#include <string>

#include "isa/inst.hh"

namespace nwsim
{

/** Pipeline stage an event belongs to. */
enum class TraceStage : u8
{
    Dispatch,   ///< entered the RUU (and executed, execute-at-dispatch)
    Issue,      ///< selected for a functional unit
    Complete,   ///< result written back
    Commit,     ///< retired architecturally
    Squash,     ///< removed by a misprediction squash
    Replay,     ///< replay trap: re-queued as full width
    Redirect,   ///< fetch redirected after a resolved misprediction
};

/** One traced event. */
struct TraceEvent
{
    Cycle cycle = 0;
    TraceStage stage = TraceStage::Dispatch;
    InstSeq seq = 0;
    Addr pc = 0;
    Inst inst;
    /** True if the instruction issued as a packed subword lane. */
    bool packed = false;
};

/** Sink invoked for every event while installed. */
using TraceHook = std::function<void(const TraceEvent &)>;

/** Printable stage name. */
const char *traceStageName(TraceStage stage);

/** One-line human-readable rendering ("[cycle] stage seq pc disasm"). */
std::string formatTraceEvent(const TraceEvent &event);

} // namespace nwsim

#endif // NWSIM_PIPELINE_TRACE_HH
