/**
 * @file
 * Fetch-block decode cache: a direct-mapped, PC-tagged cache of decoded
 * instructions, so detailed mode stops re-decoding hot fetch groups.
 *
 * Purely a host-side optimization: it replaces only the
 * `decode(mem.read(pc, 4))` work in the fetch stage — the I-cache/TLB
 * timing model (MemSystem::instLatency) still sees every fetch, so
 * simulated timing is bit-identical with the cache on or off
 * (tests/test_decode_cache.cc). Validity is keyed to the backing
 * memory's image generation, exactly like func/decode_cache.hh: a
 * program (re)load flushes every tag; data stores do not (the
 * `+nodecodecache` modifier covers self-modifying code).
 */

#ifndef NWSIM_PIPELINE_FETCH_CACHE_HH
#define NWSIM_PIPELINE_FETCH_CACHE_HH

#include <vector>

#include "func/decode_cache.hh"
#include "isa/encode.hh"
#include "mem/sparse_memory.hh"

namespace nwsim
{

/** Direct-mapped decoded-Inst cache for the fetch stage. */
class FetchDecodeCache
{
  public:
    /** Size the table (power of two); uninitialized = disabled. */
    void
    init(size_t num_slots)
    {
        entries.assign(num_slots, Entry{});
        mask = num_slots - 1;
    }

    /** Decoded instruction at @p pc (decode-and-fill on miss). */
    const Inst &
    lookup(Addr pc, const SparseMemory &mem)
    {
        if (mem.generation() != gen) {
            for (Entry &e : entries)
                e.tag = kEmptyTag;
            gen = mem.generation();
        }
        ++stat.lookups;
        Entry &e = entries[(pc >> 2) & mask];
        if (e.tag == pc) {
            ++stat.hits;
            return e.inst;
        }
        e.tag = pc;
        e.inst = decode(static_cast<MachineWord>(mem.read(pc, 4)));
        return e.inst;
    }

    const DecodeCacheStats &stats() const { return stat; }

  private:
    static constexpr Addr kEmptyTag = ~Addr{0};

    struct Entry
    {
        Addr tag = kEmptyTag;
        Inst inst;
    };

    std::vector<Entry> entries;
    size_t mask = 0;
    u64 gen = 0;
    DecodeCacheStats stat;
};

} // namespace nwsim

#endif // NWSIM_PIPELINE_FETCH_CACHE_HH
