/**
 * @file
 * FlightRecorder: a fixed-size ring buffer of recent pipeline events,
 * kept for free during normal runs and dumped when a run dies.
 *
 * It attaches through the CoreObserver hook (the same mechanism the
 * cosim oracle and invariant checker use), records the last K
 * dispatch/issue/complete/commit/squash/replay events, and renders them
 * with the TraceEvent formatter on demand. The campaign engine attaches
 * one per job and folds its dump into the reproducer bundle when the job
 * crashes, deadlocks, or times out — so every fault ships with the
 * pipeline's final moments (docs/ROBUSTNESS.md).
 */

#ifndef NWSIM_PIPELINE_FLIGHT_RECORDER_HH
#define NWSIM_PIPELINE_FLIGHT_RECORDER_HH

#include <string>
#include <vector>

#include "pipeline/observer.hh"
#include "pipeline/trace.hh"

namespace nwsim
{

class OutOfOrderCore;

/** Ring-buffer observer of the last K pipeline events. */
class FlightRecorder : public CoreObserver
{
  public:
    /** @p capacity events retained (oldest evicted first). */
    explicit FlightRecorder(size_t capacity = 256);

    /**
     * Use @p core's cycle counter to timestamp events (the observer
     * callbacks don't carry the cycle). Called automatically by
     * OutOfOrderCore::setObserver; without a clock, events record
     * cycle 0.
     */
    void onAttach(const OutOfOrderCore &core) override { clock = &core; }

    /** Events recorded since construction (may exceed capacity). */
    u64 eventsSeen() const { return seen; }

    /** Retained events, oldest first. */
    std::vector<TraceEvent> events() const;

    /** Render the retained events, one formatTraceEvent line each. */
    std::string dump() const;

    /** Forget everything (e.g. at the warmup/measure boundary). */
    void clear();

    // ---- CoreObserver ---------------------------------------------------
    void onDispatch(const RuuEntry &e) override;
    void onIssue(const RuuEntry &e) override;
    void onReplayDecision(const RuuEntry &e, bool trapped) override;
    void onComplete(const RuuEntry &e) override;
    void onCommit(const RuuEntry &e) override;
    void onSquash(const RuuEntry &e) override;

  private:
    void push(TraceStage stage, const RuuEntry &e);

    std::vector<TraceEvent> ring;
    size_t cap;
    size_t next = 0;
    u64 seen = 0;
    const OutOfOrderCore *clock = nullptr;
};

} // namespace nwsim

#endif // NWSIM_PIPELINE_FLIGHT_RECORDER_HH
