/**
 * @file
 * Issue stage: oldest-first selection of ready instructions over the
 * functional-unit pool, with the paper's Section 5 operation packing
 * built into the selection loop ("the issue logic must keep track of
 * which issuing instructions are available for packing").
 */

#include "common/logging.hh"
#include "pipeline/core.hh"

namespace nwsim
{

namespace
{

/** Do a store and a load touch any common byte? */
bool
bytesOverlap(Addr a, unsigned a_size, Addr b, unsigned b_size)
{
    return a < b + b_size && b < a + a_size;
}

} // namespace

bool
OutOfOrderCore::loadBlocked(const RuuEntry &e, bool &forwarded)
{
    forwarded = false;
    for (const RuuEntry &s : window) {
        if (s.seq >= e.seq)
            break;
        if (!s.isSt)
            continue;
        if (bytesOverlap(s.effAddr, s.memSize, e.effAddr, e.memSize)) {
            if (s.state != EntryState::Completed)
                return true;    // wait for the producing store
            forwarded = true;
        }
    }
    return false;
}

unsigned
OutOfOrderCore::loadLatency(const RuuEntry &e, bool forwarded)
{
    if (forwarded) {
        ++stat.loadsForwarded;
        return 2;   // address generation + LSQ forward
    }
    // Cache-side narrow-width gating (future-work extension): the
    // incoming value's width tag gates the data path.
    cacheModel.recordAccess(e.result, e.memSize);
    return 1 + memsys.dataLatency(e.effAddr);
}

void
OutOfOrderCore::recordIssue(RuuEntry &e)
{
    const OpInfo &info = opInfo(e.inst.op);
    e.state = EntryState::Issued;
    scheduleCompletion(e.seq, e.completeCycle);
    ++stat.issued;
    trace(TraceStage::Issue, e);
    if (observer)
        observer->onIssue(e);
    // Power accounting: energy is spent on every *executed* operation,
    // wrong-path ones included.
    gatingModel.recordOp(info.device, e.opA(), e.opB(), e.aFromLoad,
                         e.bFromLoad, e.inst.writesReg());
}

void
OutOfOrderCore::issueStage()
{
    unsigned slots = 0;
    unsigned alus = 0;
    unsigned mults = 0;

    /** An ALU whose subword lanes are being filled this cycle. */
    struct Group
    {
        PackKey key;
        std::vector<RuuEntry *> members;
    };
    std::vector<Group> groups;

    const PackingConfig &pk = cfg.packing;

    unsigned ready_seen = 0;
    unsigned issued_now = 0;

    for (RuuEntry &e : window) {
        if (e.state != EntryState::Dispatched)
            continue;
        if (e.earliestIssue > curCycle)
            continue;
        if (!e.aReady || !e.bReady)
            continue;

        const OpInfo &info = opInfo(e.inst.op);

        bool forwarded = false;
        if (info.opClass == OpClass::MemRead && loadBlocked(e, forwarded))
            continue;

        ++ready_seen;

        if (info.opClass == OpClass::IntMult ||
            info.opClass == OpClass::IntDiv) {
            if (mults >= cfg.numMultDiv || slots >= cfg.issueWidth)
                continue;
            if (curCycle < multDivBusyUntil)
                continue;   // unpipelined divide in progress
            ++mults;
            ++slots;
            unsigned latency = info.latency;
            // Early-out multiply (PPC603-style, paper Section 2.3):
            // narrow operands finish in fewer cycles.
            if (cfg.earlyOutMultiply &&
                info.opClass == OpClass::IntMult &&
                pairClass(e.opA(), e.opB()) == WidthClass::Narrow16) {
                latency = 1;
            }
            if (!info.pipelined)
                multDivBusyUntil = curCycle + latency;
            e.completeCycle = curCycle + latency;
            recordIssue(e);
            ++issued_now;
            continue;
        }

        if (info.opClass == OpClass::Other) {
            if (slots >= cfg.issueWidth)
                continue;
            ++slots;
            e.completeCycle = curCycle + 1;
            recordIssue(e);
            ++issued_now;
            continue;
        }

        // ---- ALU-class operation (arith/logic/shift/mem/control) ------
        const bool strict = pk.enabled && !e.noPack &&
                            packEligible(e.inst, e.opA(), e.opB());
        const bool replay = pk.enabled && pk.replay && !e.noPack &&
                            replayEligible(e.inst, e.opA(), e.opB());
        const PackKey key = info.packKey;

        bool joined = false;
        if (strict || replay) {
            for (Group &g : groups) {
                if (g.key != key || g.members.size() >= pk.lanesPerAlu)
                    continue;
                if (!pk.groupCountsOneSlot && slots >= cfg.issueWidth)
                    break;
                g.members.push_back(&e);
                if (!pk.groupCountsOneSlot)
                    ++slots;
                joined = true;
                break;
            }
        }
        if (!joined) {
            if (alus >= cfg.numAlus || slots >= cfg.issueWidth)
                continue;
            ++alus;
            ++slots;
            if (strict || replay)
                groups.push_back({key, {&e}});
        }

        if (strict || replay)
            ++packStat.packEligibleIssued;

        e.completeCycle =
            (info.opClass == OpClass::MemRead)
                ? curCycle + loadLatency(e, forwarded)
                : curCycle + info.latency;
        recordIssue(e);
        ++issued_now;
    }

    stat.readyOpsSum += ready_seen;
    if (issued_now < ready_seen)
        ++stat.issueLimitedCycles;

    // A group that actually gathered >= 2 instructions is a packed issue.
    for (const Group &g : groups) {
        if (g.members.size() < 2)
            continue;
        ++packStat.packedGroups;
        for (RuuEntry *m : g.members) {
            m->packed = true;
            ++packStat.packedInsts;
            // Members packed under the one-wide-operand rule may trap.
            if (!packEligible(m->inst, m->opA(), m->opB())) {
                m->replaySpec = true;
                ++packStat.replaySpeculations;
            }
        }
        if (observer) {
            const std::vector<const RuuEntry *> members(
                g.members.begin(), g.members.end());
            observer->onPackedGroup(members);
        }
    }
}

} // namespace nwsim
