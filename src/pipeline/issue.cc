/**
 * @file
 * Issue stage: oldest-first selection of ready instructions over the
 * functional-unit pool, with the paper's Section 5 operation packing
 * built into the selection loop ("the issue logic must keep track of
 * which issuing instructions are available for packing").
 *
 * The event-driven ready queue visits only issuable entries, in the
 * same oldest-first order a full-RUU scan would produce; selection,
 * packing, and statistics match a reference re-simulation exactly
 * (tests/test_sched_equivalence.cc).
 */

#include "common/logging.hh"
#include "pipeline/core.hh"

namespace nwsim
{

namespace
{

/** Do a store and a load touch any common byte? */
bool
bytesOverlap(Addr a, unsigned a_size, Addr b, unsigned b_size)
{
    return a < b + b_size && b < a + a_size;
}

} // namespace

bool
OutOfOrderCore::loadBlocked(const RuuEntry &e, bool &forwarded)
{
    forwarded = false;
    // Only stores sharing an 8-byte block with the load can overlap
    // it, so consult the store index's (at most two) chains instead of
    // every older window entry. The blocked/forwarded outcome is
    // order-independent — blocked iff any older overlapping store is
    // incomplete — so chain order doesn't matter.
    bool blocked = false;
    bool fwd = false;
    const auto visit = [&](InstSeq s) {
        if (s >= e.seq)
            return;
        const RuuEntry *st = entryBySeq(s);
        NWSIM_ASSERT(st && st->isSt, "stale store-index chain");
        if (!bytesOverlap(st->effAddr, st->memSize, e.effAddr,
                          e.memSize)) {
            return;
        }
        if (st->state != EntryState::Completed)
            blocked = true;
        else
            fwd = true;
    };
    const Addr b0 = StoreAddrIndex::blockOf(e.effAddr);
    const Addr b1 = StoreAddrIndex::blockOf(e.effAddr + e.memSize - 1);
    storeIndex.forEachStoreOnBlock(b0, visit);
    if (b1 != b0)
        storeIndex.forEachStoreOnBlock(b1, visit);
    forwarded = fwd;
    return blocked;
}

unsigned
OutOfOrderCore::loadLatency(const RuuEntry &e, bool forwarded)
{
    if (forwarded) {
        ++stat.loadsForwarded;
        return 2;   // address generation + LSQ forward
    }
    // Cache-side narrow-width gating (future-work extension): the
    // incoming value's width tag gates the data path.
    cacheModel.recordAccess(e.result, e.memSize);
    return 1 + memsys.dataLatency(e.effAddr);
}

void
OutOfOrderCore::recordIssue(RuuEntry &e)
{
    const OpInfo &info = opInfo(e.inst.op);
    e.state = EntryState::Issued;
    readyQueue.erase(e.seq);
    scheduleCompletion(e.seq, e.completeCycle);
    ++stat.issued;
    trace(TraceStage::Issue, e);
    if (observer)
        observer->onIssue(e);
    // Power accounting: energy is spent on every *executed* operation,
    // wrong-path ones included.
    gatingModel.recordOp(info.device, e.opA(), e.opB(), e.aFromLoad,
                         e.bFromLoad, e.inst.writesReg());
}

/**
 * Try to issue one ready entry, honoring slot/unit limits and joining
 * packing groups. Callers must visit entries oldest-first and only
 * when issueReady() holds.
 */
void
OutOfOrderCore::tryIssueEntry(RuuEntry &e, unsigned &slots,
                              unsigned &alus, unsigned &mults,
                              unsigned &ready_seen, unsigned &issued_now)
{
    const OpInfo &info = opInfo(e.inst.op);
    const PackingConfig &pk = cfg.packing;

    bool forwarded = false;
    if (info.opClass == OpClass::MemRead && loadBlocked(e, forwarded))
        return;

    ++ready_seen;

    if (info.opClass == OpClass::IntMult ||
        info.opClass == OpClass::IntDiv) {
        if (mults >= cfg.numMultDiv || slots >= cfg.issueWidth)
            return;
        if (curCycle < multDivBusyUntil)
            return;     // unpipelined divide in progress
        ++mults;
        ++slots;
        unsigned latency = info.latency;
        // Early-out multiply (PPC603-style, paper Section 2.3):
        // narrow operands finish in fewer cycles.
        if (cfg.earlyOutMultiply && info.opClass == OpClass::IntMult &&
            pairClass(e.opA(), e.opB()) == WidthClass::Narrow16) {
            latency = 1;
        }
        if (!info.pipelined)
            multDivBusyUntil = curCycle + latency;
        e.completeCycle = curCycle + latency;
        recordIssue(e);
        ++issued_now;
        return;
    }

    if (info.opClass == OpClass::Other) {
        if (slots >= cfg.issueWidth)
            return;
        ++slots;
        e.completeCycle = curCycle + 1;
        recordIssue(e);
        ++issued_now;
        return;
    }

    // ---- ALU-class operation (arith/logic/shift/mem/control) ----------
    const bool strict = pk.enabled && !e.noPack &&
                        packEligible(e.inst, e.opA(), e.opB());
    const bool replay = pk.enabled && pk.replay && !e.noPack &&
                        replayEligible(e.inst, e.opA(), e.opB());
    const PackKey key = info.packKey;

    bool joined = false;
    if (strict || replay) {
        for (size_t i = 0; i < issueGroupCount; ++i) {
            IssueGroup &g = issueGroups[i];
            if (g.key != key || g.members.size() >= pk.lanesPerAlu)
                continue;
            if (!pk.groupCountsOneSlot && slots >= cfg.issueWidth)
                break;
            g.members.push_back(&e);
            if (!pk.groupCountsOneSlot)
                ++slots;
            joined = true;
            break;
        }
    }
    if (!joined) {
        if (alus >= cfg.numAlus || slots >= cfg.issueWidth)
            return;
        ++alus;
        ++slots;
        if (strict || replay) {
            IssueGroup &g = issueGroups[issueGroupCount++];
            g.key = key;
            g.members.clear();
            g.members.push_back(&e);
        }
    }

    if (strict || replay)
        ++packStat.packEligibleIssued;

    e.completeCycle = (info.opClass == OpClass::MemRead)
                          ? curCycle + loadLatency(e, forwarded)
                          : curCycle + info.latency;
    recordIssue(e);
    ++issued_now;
}

void
OutOfOrderCore::drainReadyTimers()
{
    readyScratch.clear();
    readyTimers.drain(curCycle, readyScratch);
    for (const InstSeq seq : readyScratch) {
        RuuEntry *e = entryBySeq(seq);
        // A timer can outlive its instruction (squash reuses seqs);
        // re-validating the issue predicate here makes stale timers
        // harmless — the insert is idempotent, and an entry passing the
        // predicate belongs in the ready queue regardless of which
        // event claims it.
        if (e && issueReady(*e))
            readyQueue.insert(seq);
    }
}

void
OutOfOrderCore::issueStage()
{
    unsigned slots = 0;
    unsigned alus = 0;
    unsigned mults = 0;
    unsigned ready_seen = 0;
    unsigned issued_now = 0;
    issueGroupCount = 0;

    // Visit only the ready set, oldest-first. Entries that cannot
    // issue (unit/slot limits, blocked loads) keep their ready bit and
    // are revisited next cycle.
    drainReadyTimers();
    if (!window.empty()) {
        readyQueue.forEachReady(
            window.front().seq, window.size(), [&](InstSeq seq) {
                RuuEntry *e = entryBySeq(seq);
                NWSIM_ASSERT(e && issueReady(*e), "stale ready bit");
                tryIssueEntry(*e, slots, alus, mults, ready_seen,
                              issued_now);
            });
    }

    stat.readyOpsSum += ready_seen;
    if (issued_now < ready_seen)
        ++stat.issueLimitedCycles;

    finishIssueGroups();
}

void
OutOfOrderCore::finishIssueGroups()
{
    // A group that actually gathered >= 2 instructions is a packed issue.
    for (size_t i = 0; i < issueGroupCount; ++i) {
        const IssueGroup &g = issueGroups[i];
        if (g.members.size() < 2)
            continue;
        ++packStat.packedGroups;
        for (RuuEntry *m : g.members) {
            m->packed = true;
            ++packStat.packedInsts;
            // Members packed under the one-wide-operand rule may trap.
            if (!packEligible(m->inst, m->opA(), m->opB())) {
                m->replaySpec = true;
                ++packStat.replaySpeculations;
            }
        }
        if (observer) {
            packedMembersScratch.assign(g.members.begin(),
                                        g.members.end());
            observer->onPackedGroup(packedMembersScratch);
        }
    }
}

} // namespace nwsim
