/**
 * @file
 * Reservation update unit (RUU) entry.
 *
 * The RUU follows SimpleScalar's sim-outorder organization (itself
 * modeled on the Metaflow DRIS and PA-8000 IRB the paper cites): one
 * unified structure serving as active list, issue queue, and rename
 * storage. Each entry carries the operand *values* (filled by
 * execute-at-dispatch) and the narrow-width tags derived from them —
 * exactly the per-operand "Zero48?" fields of the paper's Figure 8.
 */

#ifndef NWSIM_PIPELINE_RUU_HH
#define NWSIM_PIPELINE_RUU_HH

#include "bpred/combining.hh"
#include "isa/inst.hh"

namespace nwsim
{

/** Lifecycle of an RUU entry. */
enum class EntryState : u8
{
    Dispatched,     ///< in the window, waiting to issue
    Issued,         ///< executing in a functional unit
    Completed,      ///< result written back, awaiting commit
};

/** One in-flight instruction. */
struct RuuEntry
{
    InstSeq seq = 0;
    Addr pc = 0;
    Inst inst;
    EntryState state = EntryState::Dispatched;

    // ---- Dataflow (values computed at dispatch) -------------------------
    u64 valA = 0;               ///< value of inst.ra
    u64 valB = 0;               ///< value of inst.rb
    bool aReady = true;
    bool bReady = true;
    InstSeq aProducer = 0;      ///< in-flight producer seq (0 = none)
    InstSeq bProducer = 0;
    bool aFromLoad = false;     ///< operand produced directly by a load
    bool bFromLoad = false;
    u64 result = 0;

    // ---- Memory ----------------------------------------------------------
    bool isMem = false;
    bool isSt = false;
    Addr effAddr = 0;
    unsigned memSize = 0;
    u64 storeData = 0;

    // ---- Control ----------------------------------------------------------
    bool isCtrl = false;
    bool actualTaken = false;
    Addr actualNpc = 0;
    Addr predictedNpc = 0;
    bool mispredicted = false;
    Prediction pred;

    // ---- Speculative-state undo log ---------------------------------------
    bool wroteDest = false;
    u64 oldDestValue = 0;
    InstSeq oldDestProducer = 0;
    bool oldDestFromLoad = false;

    // ---- Timing / packing ---------------------------------------------------
    Cycle completeCycle = 0;
    Cycle earliestIssue = 0;
    bool packed = false;        ///< issued as a subword lane
    bool replaySpec = false;    ///< packed under the replay (one-wide) rule
    bool noPack = false;        ///< replay-trapped: must re-issue full width

    /** First dataflow operand seen by width tags / packing. */
    u64
    opA() const
    {
        return valA;
    }

    /** Second dataflow operand: immediate for I-format, else rb. */
    u64
    opB() const
    {
        return inst.usesImm() ? static_cast<u64>(inst.imm) : valB;
    }
};

} // namespace nwsim

#endif // NWSIM_PIPELINE_RUU_HH
