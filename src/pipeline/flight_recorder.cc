#include "pipeline/flight_recorder.hh"

#include <sstream>

#include "pipeline/core.hh"

namespace nwsim
{

FlightRecorder::FlightRecorder(size_t capacity)
    : cap(capacity ? capacity : 1)
{
    ring.reserve(cap);
}

void
FlightRecorder::push(TraceStage stage, const RuuEntry &e)
{
    TraceEvent ev;
    ev.cycle = clock ? clock->now() : 0;
    ev.stage = stage;
    ev.seq = e.seq;
    ev.pc = e.pc;
    ev.inst = e.inst;
    ev.packed = e.packed;
    if (ring.size() < cap) {
        ring.push_back(ev);
    } else {
        ring[next] = ev;
        next = (next + 1) % cap;
    }
    ++seen;
}

std::vector<TraceEvent>
FlightRecorder::events() const
{
    std::vector<TraceEvent> out;
    out.reserve(ring.size());
    // `next` is the oldest slot once the ring has wrapped.
    for (size_t i = 0; i < ring.size(); ++i)
        out.push_back(ring[(next + i) % ring.size()]);
    return out;
}

std::string
FlightRecorder::dump() const
{
    std::ostringstream os;
    os << "# flight recorder: last " << ring.size() << " of " << seen
       << " pipeline events\n";
    for (const TraceEvent &ev : events())
        os << formatTraceEvent(ev) << "\n";
    return os.str();
}

void
FlightRecorder::clear()
{
    ring.clear();
    next = 0;
    seen = 0;
}

void
FlightRecorder::onDispatch(const RuuEntry &e)
{
    push(TraceStage::Dispatch, e);
}

void
FlightRecorder::onIssue(const RuuEntry &e)
{
    push(TraceStage::Issue, e);
}

void
FlightRecorder::onReplayDecision(const RuuEntry &e, bool trapped)
{
    if (trapped)
        push(TraceStage::Replay, e);
}

void
FlightRecorder::onComplete(const RuuEntry &e)
{
    push(TraceStage::Complete, e);
}

void
FlightRecorder::onCommit(const RuuEntry &e)
{
    push(TraceStage::Commit, e);
}

void
FlightRecorder::onSquash(const RuuEntry &e)
{
    push(TraceStage::Squash, e);
}

} // namespace nwsim
