/**
 * @file
 * Microarchitectural observer interface for the out-of-order core.
 *
 * Unlike the TraceHook (a flat event stream for humans), an observer
 * receives the full RuuEntry at well-defined pipeline points, which is
 * what correctness tooling — the lockstep cosimulation oracle and the
 * invariant checker in src/check/ — needs. At most one observer can be
 * attached (src/check's CheckSession fans out to several checkers);
 * when none is attached every hook site is a single null-pointer test,
 * so detailed simulation pays nothing for the capability.
 */

#ifndef NWSIM_PIPELINE_OBSERVER_HH
#define NWSIM_PIPELINE_OBSERVER_HH

#include <vector>

#include "pipeline/ruu.hh"

namespace nwsim
{

class OutOfOrderCore;

/**
 * Callbacks fired by the core's pipeline stages. All entry references
 * are valid only for the duration of the call. Default implementations
 * do nothing, so observers override only the events they care about.
 */
class CoreObserver
{
  public:
    virtual ~CoreObserver() = default;

    /**
     * Fired by OutOfOrderCore::setObserver so the observer can capture
     * the core it watches (e.g. FlightRecorder's cycle clock).
     */
    virtual void onAttach(const OutOfOrderCore &) {}

    /** Entry allocated into the RUU (after execute-at-dispatch). */
    virtual void onDispatch(const RuuEntry &) {}

    /** Entry selected for a functional unit this cycle. */
    virtual void onIssue(const RuuEntry &) {}

    /**
     * A packed issue group actually formed (>= 2 subword lanes). Fired
     * after the members are marked, so `packed` / `replaySpec` reflect
     * the issue decision.
     */
    virtual void onPackedGroup(const std::vector<const RuuEntry *> &) {}

    /**
     * Writeback evaluated a replay-packed entry's carry trap.
     * @p trapped is true when the entry was squashed for full-width
     * re-issue (Section 5.3).
     */
    virtual void onReplayDecision(const RuuEntry &, bool /*trapped*/) {}

    /** Entry completed writeback (result final, dependents woken). */
    virtual void onComplete(const RuuEntry &) {}

    /** Entry retired architecturally, in program order. */
    virtual void onCommit(const RuuEntry &) {}

    /** Entry removed by a misprediction (or halt) squash. */
    virtual void onSquash(const RuuEntry &) {}

    /**
     * Polled by OutOfOrderCore::run() once per cycle; returning true
     * ends the run early (used to stop at the first divergence).
     */
    virtual bool stopRequested() const { return false; }
};

} // namespace nwsim

#endif // NWSIM_PIPELINE_OBSERVER_HH
