/**
 * @file
 * Event-driven scheduler plumbing for the out-of-order core.
 *
 * The original core was written in the SimpleScalar sim-outorder idiom:
 * every cycle rescans the whole RUU to find ready instructions, every
 * completion broadcasts across the window to wake dependents, and every
 * load walks all older window entries to order against stores. Those
 * loops make tick() O(window) or worse even when nothing happens. The
 * structures here make every scheduling step proportional to the number
 * of *events* instead, while preserving the exact selection order of
 * the scan-based code (oldest first, per-cycle insertion order):
 *
 *  - InstRing       fixed-capacity ring buffers for the RUU window and
 *                   fetch queue (no deque node churn: steady-state
 *                   push/pop performs zero heap allocations)
 *  - ReadyQueue     seq-ordered ready set as a circular bitmap; insert,
 *                   erase, and oldest-first iteration over set bits
 *  - EventWheel     calendar wheel of (cycle -> seq list) events that
 *                   replaces std::map<Cycle, std::vector<InstSeq>>,
 *                   preserving per-cycle insertion order bit-exactly
 *  - DepGraph       per-producer dependent lists recorded at dispatch,
 *                   replacing the O(window) wakeup broadcast
 *  - StoreAddrIndex 8-byte-block hash index over in-flight LSQ stores,
 *                   replacing per-load scans over all older entries
 *
 * All structures are sized once at core construction and recycle nodes
 * through intrusive free lists, so the steady-state scheduler performs
 * no heap allocations (verified by tests/test_sched_equivalence.cc).
 */

#ifndef NWSIM_PIPELINE_SCHED_HH
#define NWSIM_PIPELINE_SCHED_HH

#include <algorithm>
#include <bit>
#include <map>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace nwsim
{

/** Null index for the intrusive node pools below. */
constexpr u32 schedNil = ~u32{0};

/** Smallest power of two >= @p n (and >= 2). */
inline size_t
ceilPow2(size_t n)
{
    size_t p = 2;
    while (p < n)
        p <<= 1;
    return p;
}

/**
 * Fixed-capacity circular buffer indexed like a deque (0 = oldest).
 * Elements are assigned in place and never destroyed on pop, so T must
 * be trivially reusable (the RUU entry and fetched-instruction records
 * are plain value types). Capacity is rounded up to a power of two.
 */
template <typename T>
class InstRing
{
  public:
    void
    init(size_t capacity)
    {
        cap = ceilPow2(capacity);
        buf.resize(cap);
        head = 0;
        count = 0;
    }

    bool empty() const { return count == 0; }
    size_t size() const { return count; }
    size_t capacity() const { return cap; }

    T &front() { return buf[head]; }
    const T &front() const { return buf[head]; }
    T &back() { return buf[(head + count - 1) & (cap - 1)]; }
    const T &back() const { return buf[(head + count - 1) & (cap - 1)]; }

    T &operator[](size_t i) { return buf[(head + i) & (cap - 1)]; }

    const T &
    operator[](size_t i) const
    {
        return buf[(head + i) & (cap - 1)];
    }

    void
    push_back(const T &v)
    {
        NWSIM_ASSERT(count < cap, "ring overflow");
        buf[(head + count) & (cap - 1)] = v;
        ++count;
    }

    void
    pop_front()
    {
        NWSIM_ASSERT(count > 0, "ring underflow");
        head = (head + 1) & (cap - 1);
        --count;
    }

    void
    pop_back()
    {
        NWSIM_ASSERT(count > 0, "ring underflow");
        --count;
    }

    void
    clear()
    {
        head = 0;
        count = 0;
    }

    template <typename Ring, typename Ref>
    struct Iter
    {
        Ring *ring;
        size_t idx;
        Ref operator*() const { return (*ring)[idx]; }

        Iter &
        operator++()
        {
            ++idx;
            return *this;
        }

        bool operator!=(const Iter &o) const { return idx != o.idx; }
    };

    using iterator = Iter<InstRing, T &>;
    using const_iterator = Iter<const InstRing, const T &>;

    iterator begin() { return {this, 0}; }
    iterator end() { return {this, count}; }
    const_iterator begin() const { return {this, 0}; }
    const_iterator end() const { return {this, count}; }

  private:
    std::vector<T> buf;
    size_t cap = 0;
    size_t head = 0;
    size_t count = 0;
};

/**
 * The issue stage's ready queue: the set of RUU entries whose operands
 * are ready and whose earliest-issue cycle has arrived, kept as a
 * circular bitmap indexed by sequence number. Because the window holds
 * contiguous seqs and its size never exceeds the (power-of-two)
 * capacity, `seq & (cap - 1)` is collision-free among live entries, and
 * iterating slots from the oldest seq's position reproduces the
 * oldest-first order of a full-window scan exactly.
 */
class ReadyQueue
{
  public:
    void
    init(size_t window_capacity)
    {
        cap = std::max<size_t>(ceilPow2(window_capacity), 64);
        words.assign(cap / 64, 0);
    }

    void
    insert(InstSeq seq)
    {
        const size_t s = slot(seq);
        words[s >> 6] |= u64{1} << (s & 63);
    }

    void
    erase(InstSeq seq)
    {
        const size_t s = slot(seq);
        words[s >> 6] &= ~(u64{1} << (s & 63));
    }

    bool
    contains(InstSeq seq) const
    {
        const size_t s = slot(seq);
        return (words[s >> 6] >> (s & 63)) & 1;
    }

    void clear() { std::fill(words.begin(), words.end(), 0); }

    /**
     * Visit every queued seq oldest-first for a window of @p count
     * contiguous seqs starting at @p front_seq. The callback may erase
     * the seq it is visiting (and only that one).
     */
    template <typename Fn>
    void
    forEachReady(InstSeq front_seq, size_t count, Fn &&fn) const
    {
        if (count == 0)
            return;
        const size_t start = slot(front_seq);
        const size_t first = std::min(count, cap - start);
        scan(start, start + first, front_seq - start, fn);
        if (first < count)
            scan(0, count - first, front_seq + (cap - start), fn);
    }

  private:
    size_t slot(InstSeq seq) const { return seq & (cap - 1); }

    /** Visit set bits in [lo, hi); seq of slot s is base + s. */
    template <typename Fn>
    void
    scan(size_t lo, size_t hi, InstSeq base, Fn &&fn) const
    {
        for (size_t w = lo >> 6; w <= (hi - 1) >> 6; ++w) {
            u64 bits = words[w];
            if (w == lo >> 6)
                bits &= ~u64{0} << (lo & 63);
            if (w == (hi - 1) >> 6 && (hi & 63) != 0)
                bits &= (u64{1} << (hi & 63)) - 1;
            while (bits) {
                const unsigned b =
                    static_cast<unsigned>(std::countr_zero(bits));
                bits &= bits - 1;
                fn(base + (w << 6) + b);
            }
        }
    }

    std::vector<u64> words;
    size_t cap = 0;
};

/**
 * Calendar wheel of (cycle -> seq list) timer events: completion times
 * and earliest-issue (replay) times. Replaces the allocating
 * std::map<Cycle, std::vector<InstSeq>> with preallocated per-slot
 * vectors; events beyond the horizon spill to an overflow map (never
 * reached with the Table 1 latencies, kept for arbitrary configs).
 *
 * Per-cycle event order matches the map-of-vectors exactly: events for
 * one cycle drain in scheduling order (an overflow event for cycle C is
 * by construction scheduled before any wheel event for C, since it was
 * scheduled >= horizon cycles out).
 */
class EventWheel
{
  public:
    void
    init(size_t horizon_slots, size_t reserve_per_slot)
    {
        horizon = ceilPow2(horizon_slots);
        slots.assign(horizon, {});
        for (std::vector<InstSeq> &s : slots)
            s.reserve(reserve_per_slot);
        overflow.clear();
        pendingCount = 0;
    }

    /** Schedule @p seq's event at cycle @p when (must be > @p now). */
    void
    schedule(InstSeq seq, Cycle when, Cycle now)
    {
        ++pendingCount;
        if (when - now < horizon)
            slots[when & (horizon - 1)].push_back(seq);
        else
            overflow[when].push_back(seq);
    }

    /** Append cycle @p now's events to @p out in scheduling order. */
    void
    drain(Cycle now, std::vector<InstSeq> &out)
    {
        if (!overflow.empty() && overflow.begin()->first == now) {
            std::vector<InstSeq> &v = overflow.begin()->second;
            pendingCount -= v.size();
            out.insert(out.end(), v.begin(), v.end());
            overflow.erase(overflow.begin());
        }
        std::vector<InstSeq> &slot = slots[now & (horizon - 1)];
        pendingCount -= slot.size();
        out.insert(out.end(), slot.begin(), slot.end());
        slot.clear();
    }

    /**
     * Eagerly remove the event (@p seq at cycle @p when) if it is still
     * pending — the squash path uses this so dead scheduler state never
     * outlives its instruction. Stable: surviving events keep their
     * relative order.
     */
    void
    purge(InstSeq seq, Cycle when, Cycle now)
    {
        if (when - now < horizon &&
            eraseOne(slots[when & (horizon - 1)], seq)) {
            return;
        }
        const auto it = overflow.find(when);
        if (it != overflow.end() && eraseOne(it->second, seq) &&
            it->second.empty()) {
            overflow.erase(it);
        }
    }

    /** Scheduled-but-undrained event count (watchdog diagnostic). */
    size_t pending() const { return pendingCount; }

  private:
    bool
    eraseOne(std::vector<InstSeq> &v, InstSeq seq)
    {
        for (auto it = v.begin(); it != v.end(); ++it) {
            if (*it == seq) {
                v.erase(it);
                --pendingCount;
                return true;
            }
        }
        return false;
    }

    std::vector<std::vector<InstSeq>> slots;
    std::map<Cycle, std::vector<InstSeq>> overflow;
    size_t horizon = 0;
    size_t pendingCount = 0;
};

/**
 * Per-producer dependent lists, recorded at dispatch: each in-flight
 * consumer holds at most two edges (operand A / operand B) to the
 * not-yet-completed producers it waits on. Completion walks exactly the
 * waiting consumers instead of broadcasting across the window; a squash
 * unlinks the squashed consumer's edges in O(1), so the pool of
 * 2 x window-capacity nodes can never be exhausted.
 */
class DepGraph
{
  public:
    void
    init(size_t window_capacity)
    {
        cap = ceilPow2(window_capacity);
        nodes.resize(2 * cap);
        heads.assign(cap, schedNil);
        consumerNode.assign(2 * cap, schedNil);
        for (size_t i = 0; i < nodes.size(); ++i)
            nodes[i].next = static_cast<u32>(i + 1);
        nodes.back().next = schedNil;
        freeHead = 0;
    }

    /** @p consumer waits on @p producer for operand @p op (0=A, 1=B). */
    void
    link(InstSeq producer, InstSeq consumer, unsigned op)
    {
        NWSIM_ASSERT(freeHead != schedNil, "dependent pool exhausted");
        const u32 n = freeHead;
        Node &node = nodes[n];
        freeHead = node.next;

        const size_t p = slot(producer);
        node.consumer = consumer;
        node.op = static_cast<u8>(op);
        node.producerSlot = static_cast<u32>(p);
        node.prev = schedNil;
        node.next = heads[p];
        if (heads[p] != schedNil)
            nodes[heads[p]].prev = n;
        heads[p] = n;
        consumerNode[slot(consumer) * 2 + op] = n;
    }

    /** Drop both of @p consumer's edges (squash path), O(1). */
    void
    unlinkConsumer(InstSeq consumer)
    {
        for (unsigned op = 0; op < 2; ++op) {
            u32 &ref = consumerNode[slot(consumer) * 2 + op];
            if (ref == schedNil)
                continue;
            removeNode(ref);
            ref = schedNil;
        }
    }

    /**
     * Producer @p producer completed: visit and clear its dependent
     * list. fn(consumer_seq, operand) runs once per recorded edge.
     */
    template <typename Fn>
    void
    wake(InstSeq producer, Fn &&fn)
    {
        const size_t p = slot(producer);
        u32 n = heads[p];
        heads[p] = schedNil;
        while (n != schedNil) {
            Node &node = nodes[n];
            const u32 next = node.next;
            const InstSeq consumer = node.consumer;
            const unsigned op = node.op;
            consumerNode[slot(consumer) * 2 + op] = schedNil;
            node.next = freeHead;
            freeHead = n;
            fn(consumer, op);
            n = next;
        }
    }

  private:
    struct Node
    {
        InstSeq consumer = 0;
        u32 prev = schedNil;
        u32 next = schedNil;
        u32 producerSlot = 0;
        u8 op = 0;
    };

    size_t slot(InstSeq seq) const { return seq & (cap - 1); }

    void
    removeNode(u32 n)
    {
        Node &node = nodes[n];
        if (node.prev == schedNil)
            heads[node.producerSlot] = node.next;
        else
            nodes[node.prev].next = node.next;
        if (node.next != schedNil)
            nodes[node.next].prev = node.prev;
        node.next = freeHead;
        freeHead = n;
    }

    std::vector<Node> nodes;
    std::vector<u32> heads;        // per producer window slot
    std::vector<u32> consumerNode; // per consumer window slot x operand
    size_t cap = 0;
    u32 freeHead = schedNil;
};

/**
 * Address index over the in-flight LSQ stores: an open-addressing hash
 * table from 8-byte-aligned memory block to the chain of stores
 * touching that block. A load consults only the (at most two) blocks it
 * covers instead of scanning every older window entry, making both the
 * issue-stage ordering check and dispatch's speculative load-value
 * forwarding near-O(1) per load. Deletion uses backward-shift, so
 * lookups never cross tombstones.
 */
class StoreAddrIndex
{
  public:
    void
    init(size_t lsq_capacity, size_t window_capacity)
    {
        wcap = ceilPow2(window_capacity);
        tableCap = ceilPow2(std::max<size_t>(4 * lsq_capacity, 16));
        hashShift = 64 - static_cast<unsigned>(
                             std::countr_zero(u64{tableCap}));
        table.assign(tableCap, Bucket{});
        nodes.resize(2 * lsq_capacity);
        storeNode.assign(2 * wcap, schedNil);
        for (size_t i = 0; i < nodes.size(); ++i)
            nodes[i].next = static_cast<u32>(i + 1);
        nodes.back().next = schedNil;
        freeHead = 0;
    }

    /** 8-byte block covering @p addr. */
    static Addr blockOf(Addr addr) { return addr >> 3; }

    /** Register the dispatched store @p seq covering [ea, ea+size). */
    void
    add(InstSeq seq, Addr ea, unsigned size)
    {
        const Addr b0 = blockOf(ea);
        const Addr b1 = blockOf(ea + size - 1);
        addToBlock(seq, b0, 0);
        if (b1 != b0)
            addToBlock(seq, b1, 1);
    }

    /** Drop store @p seq (commit or squash), O(1) amortized. */
    void
    remove(InstSeq seq)
    {
        for (unsigned i = 0; i < 2; ++i) {
            u32 &ref = storeNode[slot(seq) * 2 + i];
            if (ref == schedNil)
                continue;
            removeNode(ref);
            ref = schedNil;
        }
    }

    /** Visit the seq of every in-flight store touching @p block. */
    template <typename Fn>
    void
    forEachStoreOnBlock(Addr block, Fn &&fn) const
    {
        const size_t b = find(block);
        if (b == notFound)
            return;
        for (u32 n = table[b].head; n != schedNil; n = nodes[n].next)
            fn(nodes[n].seq);
    }

  private:
    struct Bucket
    {
        Addr block = 0;
        u32 head = schedNil;
        bool used = false;
    };

    struct Node
    {
        InstSeq seq = 0;
        u32 prev = schedNil;
        u32 next = schedNil;
        u32 bucket = 0;
    };

    static constexpr size_t notFound = ~size_t{0};

    size_t slot(InstSeq seq) const { return seq & (wcap - 1); }

    size_t
    hash(Addr block) const
    {
        return static_cast<size_t>((block * 0x9e3779b97f4a7c15ULL) >>
                                   hashShift);
    }

    size_t
    find(Addr block) const
    {
        size_t i = hash(block);
        while (table[i].used) {
            if (table[i].block == block)
                return i;
            i = (i + 1) & (tableCap - 1);
        }
        return notFound;
    }

    void
    addToBlock(InstSeq seq, Addr block, unsigned which)
    {
        NWSIM_ASSERT(freeHead != schedNil, "store index pool exhausted");
        size_t i = hash(block);
        while (table[i].used && table[i].block != block)
            i = (i + 1) & (tableCap - 1);
        if (!table[i].used) {
            table[i].used = true;
            table[i].block = block;
            table[i].head = schedNil;
        }

        const u32 n = freeHead;
        Node &node = nodes[n];
        freeHead = node.next;
        node.seq = seq;
        node.bucket = static_cast<u32>(i);
        node.prev = schedNil;
        node.next = table[i].head;
        if (table[i].head != schedNil)
            nodes[table[i].head].prev = n;
        table[i].head = n;
        storeNode[slot(seq) * 2 + which] = n;
    }

    void
    removeNode(u32 n)
    {
        Node &node = nodes[n];
        const u32 bucket = node.bucket;
        if (node.prev == schedNil)
            table[bucket].head = node.next;
        else
            nodes[node.prev].next = node.next;
        if (node.next != schedNil)
            nodes[node.next].prev = node.prev;
        node.next = freeHead;
        freeHead = n;
        if (table[bucket].head == schedNil)
            eraseBucket(bucket);
    }

    /** Backward-shift deletion of an emptied bucket. */
    void
    eraseBucket(size_t i)
    {
        table[i].used = false;
        size_t j = i;
        size_t k = i;
        for (;;) {
            k = (k + 1) & (tableCap - 1);
            if (!table[k].used)
                break;
            const size_t ideal = hash(table[k].block);
            // k can fill hole j only if its probe path passes through j.
            if (((k - ideal) & (tableCap - 1)) <
                ((k - j) & (tableCap - 1))) {
                continue;
            }
            table[j] = table[k];
            for (u32 n = table[j].head; n != schedNil; n = nodes[n].next)
                nodes[n].bucket = static_cast<u32>(j);
            table[k].used = false;
            j = k;
        }
    }

    std::vector<Bucket> table;
    std::vector<Node> nodes;
    std::vector<u32> storeNode; // per window slot x block-membership
    size_t wcap = 0;
    size_t tableCap = 0;
    unsigned hashShift = 0;
    u32 freeHead = schedNil;
};

} // namespace nwsim

#endif // NWSIM_PIPELINE_SCHED_HH
