/**
 * @file
 * Commit stage: in-order retirement, store release to memory/D-cache,
 * and true-path predictor training.
 */

#include "common/logging.hh"
#include "pipeline/core.hh"

namespace nwsim
{

void
OutOfOrderCore::commitStage()
{
    u64 committed = 0;
    while (committed < cfg.commitWidth && committed < commitBudget &&
           !window.empty()) {
        RuuEntry &e = window.front();
        if (e.state != EntryState::Completed)
            break;

        if (e.isSt) {
            // Stores touch the D-cache and become architectural at
            // commit (they never execute on the wrong path).
            mem.write(e.effAddr, e.memSize, e.storeData);
            memsys.dataLatency(e.effAddr);
            cacheModel.recordAccess(e.storeData, e.memSize);
            NWSIM_ASSERT(lsqCount > 0, "lsq underflow at commit");
            --lsqCount;
            storeIndex.remove(e.seq);
        } else if (e.isMem) {
            --lsqCount;
        }

        // Train direction counters and BTB on the true path only.
        if (e.isCtrl && predictor) {
            predictor->resolve(e.pc, e.inst, e.pred, e.actualTaken,
                               e.actualNpc);
        }

        if (e.inst.op == Opcode::HALT) {
            // Discard younger speculative work so specRegs becomes the
            // architected state at the halt point.
            squashAfter(e.seq);
            simDone = true;
        }

        trace(TraceStage::Commit, e);
        if (observer)
            observer->onCommit(e);
        window.pop_front();
        ++stat.committed;
        ++committed;
        if (simDone)
            return;
    }
}

} // namespace nwsim
