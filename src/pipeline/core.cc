#include "pipeline/core.hh"

#include <sstream>

#include "common/error.hh"
#include "common/logging.hh"
#include "isa/disasm.hh"
#include "isa/encode.hh"

namespace nwsim
{

OutOfOrderCore::OutOfOrderCore(const CoreConfig &config,
                               SparseMemory &memory, Addr entry,
                               Addr stack_pointer)
    : cfg(config),
      mem(memory),
      memsys(config.mem),
      fetchPc(entry),
      gatingModel(config.gating)
{
    specRegs[spReg] = stack_pointer;
    if (cfg.perfectBPred) {
        oracleMem = std::make_unique<SparseMemory>(memory);
        oracle = std::make_unique<FuncSim>(*oracleMem, entry,
                                           stack_pointer, cfg.decodeCache);
    } else {
        predictor = std::make_unique<CombiningPredictor>(cfg.bpred);
    }
    if (cfg.decodeCache) {
        ffCache = std::make_unique<DecodeCache>(memory);
        fetchCache.init(4096);
        if (cfg.superblockTraces) {
            sbCache = std::make_unique<SuperblockCache>(
                *ffCache, cfg.perfectBPred, cfg.mem.l1i.blockBytes,
                cfg.mem.itlb.pageShift);
        }
    }
    fetchPc = entry;

    // Size every scheduler structure once; tick() never allocates in
    // steady state. The completion horizon covers the worst chained
    // memory latency (~143 cycles with Table 1 numbers) with room to
    // spare; longer custom latencies spill to the wheel's overflow map.
    window.init(cfg.ruuSize);
    fetchQueue.init(cfg.fetchQueueSize);
    completions.init(512, 8);
    readyTimers.init(64, 4);
    readyQueue.init(window.capacity());
    deps.init(window.capacity());
    storeIndex.init(cfg.lsqSize, window.capacity());
    completedScratch.reserve(window.capacity());
    readyScratch.reserve(window.capacity());
    issueGroups.resize(cfg.numAlus);
    for (IssueGroup &g : issueGroups)
        g.members.reserve(cfg.packing.lanesPerAlu);
    packedMembersScratch.reserve(cfg.packing.lanesPerAlu);
}

OutOfOrderCore::~OutOfOrderCore() = default;

const BPredStats &
OutOfOrderCore::bpredStats() const
{
    static const BPredStats empty{};
    return predictor ? predictor->stats() : empty;
}

void
OutOfOrderCore::tick()
{
    if (simDone)
        return;
    commitStage();
    if (simDone)
        return;
    writebackStage();
    issueStage();
    dispatchStage();
    fetchStage();
    ++curCycle;
    ++stat.cycles;
}

u64
OutOfOrderCore::run(u64 max_commits)
{
    const u64 start = stat.committed;
    // Forward-progress watchdog: this many cycles without a commit
    // indicates a simulator bug (deadlock), not a slow program.
    const Cycle watchdog_limit = cfg.watchdogCycles;
    Cycle last_commit_cycle = curCycle;
    u64 last_commits = stat.committed;
    while (!simDone && stat.committed - start < max_commits) {
        // A checker (cosim oracle / invariant checker) can stop the run
        // at the first failure so the report points at the divergence.
        if (observer && observer->stopRequested())
            break;
        // Cap this tick's commits so the run stops on the exact
        // instruction boundary (measurement windows stay precise).
        commitBudget = max_commits - (stat.committed - start);
        tick();
        if (stat.committed != last_commits) {
            last_commits = stat.committed;
            last_commit_cycle = curCycle;
        } else if (watchdog_limit &&
                   curCycle - last_commit_cycle > watchdog_limit) {
            commitBudget = ~u64{0};
            throw DeadlockError(deadlockDiagnostic(watchdog_limit));
        }
    }
    commitBudget = ~u64{0};
    return stat.committed - start;
}

std::string
OutOfOrderCore::deadlockDiagnostic(Cycle stalled_cycles) const
{
    static const char *const state_names[] = {"dispatched", "issued",
                                              "completed"};
    std::ostringstream d;
    d << "pipeline deadlock: no commit for " << stalled_cycles
      << " cycles at cycle " << curCycle << "\n  fetch pc 0x" << std::hex
      << fetchPc << std::dec << (fetchHalted ? " (halted)" : "")
      << ", RUU " << window.size() << "/" << cfg.ruuSize << ", LSQ "
      << lsqCount << "/" << cfg.lsqSize << ", fetch queue "
      << fetchQueue.size() << "/" << cfg.fetchQueueSize
      << ", pending completions " << completions.pending();
    if (!window.empty()) {
        const RuuEntry &head = window.front();
        d << "\n  oldest in flight: seq " << head.seq << " pc 0x"
          << std::hex << head.pc << std::dec << " ["
          << state_names[static_cast<unsigned>(head.state)] << "] "
          << disassemble(head.inst) << " aReady=" << head.aReady
          << " bReady=" << head.bReady;
        if (head.isMem)
            d << " mem(ea=0x" << std::hex << head.effAddr << std::dec
              << (head.isSt ? ",store" : ",load") << ")";
    }
    return d.str();
}

void
OutOfOrderCore::seedArchRegs(const std::array<u64, numIntRegs> &regs)
{
    NWSIM_ASSERT(window.empty() && fetchQueue.empty(),
                 "seedArchRegs with in-flight instructions");
    specRegs = regs;
    specRegs[zeroReg] = 0;
    if (oracle) {
        for (RegIndex r = 0; r < numIntRegs; ++r)
            oracle->setReg(r, regs[r]);
    }
}

u64
OutOfOrderCore::fastForward(u64 insts)
{
    NWSIM_ASSERT(window.empty() && fetchQueue.empty(),
                 "fastForward with in-flight instructions");
    if (simDone)
        return 0;
    if (!ffCache)
        return fastForwardUncached(insts);

    // Threaded fast path: execute pre-decoded basic blocks out of the
    // decode cache, chasing memoized block links instead of re-decoding
    // every instruction. Warming side effects (MemSystem, predictor,
    // oracle lockstep, regFromLoad) are issued per micro-op in exactly
    // the order fastForwardUncached produces them.
    //
    // At every block boundary, hot start PCs escalate once more: the
    // superblock cache (func/superblock.hh) serves direct-threaded
    // traces stitched across observed branch directions, executing the
    // same micro-ops with the same side-effect order and side-exiting
    // back here the moment control flow leaves the stitched path.
    if (ffCache->refresh() && sbCache)
        sbCache->invalidate();
    const DecodeCache::Block *blk = &ffCache->blockAt(fetchPc);
    size_t idx = 0;
    u64 done = 0;
    while (done < insts) {
        if (idx == 0 && sbCache) {
            if (const SbTrace *t = sbCache->enter(*blk)) {
                SbContext ctx{specRegs, regFromLoad, mem,
                              memsys,   predictor.get(), oracle.get()};
                const SbExit ex =
                    runTrace(*t, ctx, insts - done, cfg.perfectBPred);
                sbCache->noteRun(ex);
                done += ex.executed;
                fetchPc = ex.nextPc;
                if (ex.halted || done == insts)
                    return done;
                blk = &ffCache->blockAt(ex.nextPc);
                continue;
            }
        }

        const MicroOp &u = blk->ops[idx];
        memsys.instLatency(u.pc);
        if (u.isHalt) {
            // Stop just short so the HALT itself retires in detailed
            // mode and done() behaves uniformly.
            return done;
        }
        ++done;

        UopOut r;
        u.fn(u, specRegs, mem, r);
        if (u.opClass == OpClass::MemRead ||
            u.opClass == OpClass::MemWrite) {
            memsys.dataLatency(r.effAddr);
        }
        if (u.isControl)
            warmControl(u.pc, u.inst, r.taken, r.nextPc);
        if (cfg.perfectBPred)
            oracle->step();     // keep the oracle in lockstep
        if (u.inst.writesReg())
            regFromLoad[u.inst.rc] = u.opClass == OpClass::MemRead;
        fetchPc = r.nextPc;

        if (u.opClass == OpClass::Branch) {
            // Superblock profiling: remember the direction this block's
            // terminator went, so trace formation stitches the path
            // execution actually follows.
            blk->lastTaken = r.taken;
        }

        if (r.nextPc == u.pc + 4) {
            if (idx + 1 < blk->ops.size()) {
                ++idx;
                continue;
            }
            blk = &ffCache->chainSeq(*blk);
        } else if (u.opClass == OpClass::Branch) {
            // A taken branch terminates its block; the memoized
            // static-target link applies.
            blk = &ffCache->chainTaken(*blk);
        } else {
            // Indirect jump: dynamic target, re-hash.
            blk = &ffCache->blockAt(r.nextPc);
        }
        idx = 0;
    }
    return done;
}

void
OutOfOrderCore::warmControl(Addr pc, const Inst &inst, bool taken,
                            Addr next_pc)
{
    // Warm the predictor exactly as fetch + commit would — through the
    // same helper the superblock trace executor bakes in, so the two
    // fastForward tiers cannot drift.
    if (!predictor)
        return;
    warmPredictor(*predictor, pc, inst, taken, next_pc);
}

u64
OutOfOrderCore::fastForwardUncached(u64 insts)
{
    u64 done = 0;
    while (done < insts) {
        const Addr pc = fetchPc;
        memsys.instLatency(pc);
        const auto word = static_cast<MachineWord>(mem.read(pc, 4));
        const Inst inst = decode(word);
        const OpInfo &info = opInfo(inst.op);
        ++done;

        const u64 a = specRegs[inst.ra];
        const u64 b_reg = specRegs[inst.rb];
        const OperandPair ops = dataflowOperands(inst, a, b_reg);

        Addr next_pc = pc + 4;
        u64 result = 0;
        bool taken = false;
        switch (info.opClass) {
          case OpClass::MemRead: {
            const Addr ea = effectiveAddr(inst, a);
            memsys.dataLatency(ea);
            result =
                loadValue(inst.op, mem.read(ea, memAccessSize(inst.op)));
            break;
          }
          case OpClass::MemWrite: {
            const Addr ea = effectiveAddr(inst, a);
            memsys.dataLatency(ea);
            mem.write(ea, memAccessSize(inst.op), b_reg);
            break;
          }
          case OpClass::Branch:
            taken = branchTaken(inst.op, a);
            if (taken)
                next_pc = inst.branchTarget(pc);
            result = aluResult(inst, ops.a, ops.b, pc);
            break;
          case OpClass::Jump:
            taken = true;
            next_pc = b_reg;
            result = aluResult(inst, ops.a, ops.b, pc);
            break;
          case OpClass::Other:
            if (inst.op == Opcode::HALT) {
                // Stop just short so the HALT itself retires in
                // detailed mode and done() behaves uniformly.
                return done - 1;
            }
            break;
          default:
            result = aluResult(inst, ops.a, ops.b, pc);
            break;
        }

        if (isControl(inst.op))
            warmControl(pc, inst, taken, next_pc);
        if (cfg.perfectBPred)
            oracle->step();     // keep the oracle in lockstep

        if (inst.writesReg()) {
            specRegs[inst.rc] = result;
            regFromLoad[inst.rc] = info.opClass == OpClass::MemRead;
        }
        fetchPc = next_pc;
    }
    return done;
}

void
OutOfOrderCore::resetStats()
{
    // Measurement counters only; microarchitectural and timing state
    // (curCycle, window, caches, predictor) continue — this is the
    // paper's warmup-then-measure methodology.
    stat = CoreStats{};
    widthProfiler.reset();
    widthPred.reset();
    gatingModel.reset();
    cacheModel.reset();
    packStat = CorePackingStats{};
}

RuuEntry *
OutOfOrderCore::entryBySeq(InstSeq seq)
{
    if (window.empty())
        return nullptr;
    const InstSeq front = window.front().seq;
    if (seq < front || seq >= front + window.size())
        return nullptr;
    return &window[static_cast<size_t>(seq - front)];
}

void
OutOfOrderCore::wakeDependents(InstSeq producer_seq)
{
    // Walk exactly the consumers that registered on this producer at
    // dispatch. The set is identical to a full-window broadcast scan's
    // (an edge exists iff the operand flag is still false), so the
    // resulting flags — and all downstream timing — are bit-identical.
    deps.wake(producer_seq,
              [this](InstSeq consumer, unsigned op) {
                  onOperandReady(consumer, op);
              });
}

void
OutOfOrderCore::onOperandReady(InstSeq consumer, unsigned op)
{
    RuuEntry *e = entryBySeq(consumer);
    NWSIM_ASSERT(e && e->state == EntryState::Dispatched,
                 "stale dependent edge");
    if (op == 0)
        e->aReady = true;
    else
        e->bReady = true;
    // Wakeups happen in writeback, before this cycle's issue stage, so
    // a newly ready entry is issuable this very cycle.
    if (issueReady(*e))
        readyQueue.insert(consumer);
}

void
OutOfOrderCore::undoEntry(RuuEntry &e)
{
    if (e.wroteDest) {
        const RegIndex rc = e.inst.rc;
        specRegs[rc] = e.oldDestValue;
        regProducer[rc] = e.oldDestProducer;
        regFromLoad[rc] = e.oldDestFromLoad;
    }
    if (e.isMem) {
        NWSIM_ASSERT(lsqCount > 0, "lsq underflow");
        --lsqCount;
    }
}

void
OutOfOrderCore::squashVictim(RuuEntry &victim)
{
    trace(TraceStage::Squash, victim);
    if (observer)
        observer->onSquash(victim);
    undoEntry(victim);
    // Eagerly drop the victim's scheduler state: its pending
    // completion timer (squashed seqs get reused after the rewind
    // below, so a mispredict-heavy run would otherwise accumulate
    // dead timer records until their cycle arrives), its dependence
    // edges, its ready-queue slot, and its store-index chains.
    if (victim.state == EntryState::Issued)
        completions.purge(victim.seq, victim.completeCycle, curCycle);
    deps.unlinkConsumer(victim.seq);
    readyQueue.erase(victim.seq);
    if (victim.isSt)
        storeIndex.remove(victim.seq);
    window.pop_back();
    ++stat.squashed;
}

void
OutOfOrderCore::squashAfter(InstSeq seq)
{
    while (!window.empty() && window.back().seq > seq)
        squashVictim(window.back());
    fetchQueue.clear();
    fetchHalted = false;
    // Rewind the sequence counter so window seqs stay contiguous
    // (entryBySeq relies on it).
    nextSeq = seq + 1;
}

void
OutOfOrderCore::drainInFlight()
{
    if (!window.empty()) {
        // The oldest in-flight entry is the next instruction to commit,
        // so it is always on the architected path: resume fetch there.
        const Addr resume = window.front().pc;
        const InstSeq restart = window.front().seq;
        while (!window.empty())
            squashVictim(window.back());
        nextSeq = restart;
        fetchPc = resume;
    } else if (!fetchQueue.empty()) {
        // Nothing dispatched: the fetch queue's head was fetched from
        // the architected PC.
        fetchPc = fetchQueue.front().pc;
    }
    fetchQueue.clear();
    fetchHalted = false;
}

void
OutOfOrderCore::scheduleCompletion(InstSeq seq, Cycle when)
{
    completions.schedule(seq, when, curCycle);
}

void
OutOfOrderCore::saveState(ckpt::ByteSink &sink) const
{
    NWSIM_ASSERT(window.empty() && fetchQueue.empty(),
                 "saveState with in-flight instructions");
    mem.saveState(sink);

    for (u64 r : specRegs)
        sink.u64v(r);
    for (InstSeq p : regProducer)
        sink.u64v(p);
    for (bool f : regFromLoad)
        sink.boolv(f);

    sink.u64v(fetchPc);
    sink.u64v(nextSeq);
    sink.u64v(curCycle);
    // Not cleared by drainInFlight(): an I-cache miss scheduled before
    // the drain still blocks fetch until this cycle.
    sink.u64v(fetchResumeCycle);
    sink.boolv(fetchHalted);
    sink.u64v(multDivBusyUntil);
    sink.boolv(simDone);

    sink.u64v(stat.cycles);
    sink.u64v(stat.fetched);
    sink.u64v(stat.dispatched);
    sink.u64v(stat.issued);
    sink.u64v(stat.committed);
    sink.u64v(stat.squashed);
    sink.u64v(stat.mispredictSquashes);
    sink.u64v(stat.loadsForwarded);
    sink.u64v(stat.windowFullStalls);
    sink.u64v(stat.issueLimitedCycles);
    sink.u64v(stat.readyOpsSum);

    memsys.saveState(sink);

    sink.boolv(cfg.perfectBPred);
    if (cfg.perfectBPred) {
        oracleMem->saveState(sink);
        oracle->saveState(sink);
    } else {
        predictor->saveState(sink);
    }

    const WidthProfilerSnapshot snap = widthProfiler.snapshot();
    sink.u64v(snap.opCount);
    for (u64 v : snap.widthHist)
        sink.u64v(v);
    for (u64 v : snap.narrow16ByCat)
        sink.u64v(v);
    for (u64 v : snap.narrow33ByCat)
        sink.u64v(v);
    sink.u64v(snap.pcWidthSeen.size());
    for (const auto &[pc, bits] : snap.pcWidthSeen) {
        sink.u64v(pc);
        sink.u8v(bits);
    }

    widthPred.saveState(sink);
    gatingModel.saveState(sink);
    cacheModel.saveState(sink);

    sink.u64v(packStat.packedGroups);
    sink.u64v(packStat.packedInsts);
    sink.u64v(packStat.replaySpeculations);
    sink.u64v(packStat.replayTraps);
    sink.u64v(packStat.packEligibleIssued);
}

bool
OutOfOrderCore::loadState(ckpt::ByteSource &src)
{
    NWSIM_ASSERT(window.empty() && fetchQueue.empty(),
                 "loadState with in-flight instructions");
    if (!mem.loadState(src))
        return false;

    for (u64 &r : specRegs) {
        if (!src.u64v(r))
            return false;
    }
    for (InstSeq &p : regProducer) {
        if (!src.u64v(p))
            return false;
    }
    for (size_t i = 0; i < regFromLoad.size(); ++i) {
        bool f = false;
        if (!src.boolv(f))
            return false;
        regFromLoad[i] = f;
    }

    if (!src.u64v(fetchPc) || !src.u64v(nextSeq) ||
        !src.u64v(curCycle) || !src.u64v(fetchResumeCycle) ||
        !src.boolv(fetchHalted) || !src.u64v(multDivBusyUntil) ||
        !src.boolv(simDone)) {
        return false;
    }

    if (!src.u64v(stat.cycles) || !src.u64v(stat.fetched) ||
        !src.u64v(stat.dispatched) || !src.u64v(stat.issued) ||
        !src.u64v(stat.committed) || !src.u64v(stat.squashed) ||
        !src.u64v(stat.mispredictSquashes) ||
        !src.u64v(stat.loadsForwarded) ||
        !src.u64v(stat.windowFullStalls) ||
        !src.u64v(stat.issueLimitedCycles) ||
        !src.u64v(stat.readyOpsSum)) {
        return false;
    }

    if (!memsys.loadState(src))
        return false;

    bool perfect = false;
    if (!src.boolv(perfect) || perfect != cfg.perfectBPred)
        return false;
    if (cfg.perfectBPred) {
        if (!oracleMem->loadState(src) || !oracle->loadState(src))
            return false;
    } else if (!predictor->loadState(src)) {
        return false;
    }

    WidthProfilerSnapshot snap;
    if (!src.u64v(snap.opCount))
        return false;
    for (u64 &v : snap.widthHist) {
        if (!src.u64v(v))
            return false;
    }
    for (u64 &v : snap.narrow16ByCat) {
        if (!src.u64v(v))
            return false;
    }
    for (u64 &v : snap.narrow33ByCat) {
        if (!src.u64v(v))
            return false;
    }
    u64 npc = 0;
    // Each entry is 9 encoded bytes; a count the remaining bytes cannot
    // hold is corruption — reject before reserving.
    if (!src.u64v(npc) || npc > src.remaining() / 9)
        return false;
    snap.pcWidthSeen.reserve(npc);
    for (u64 i = 0; i < npc; ++i) {
        u64 pc = 0;
        u8 bits = 0;
        if (!src.u64v(pc) || !src.u8v(bits))
            return false;
        snap.pcWidthSeen.emplace_back(pc, bits);
    }
    widthProfiler = WidthProfiler::fromSnapshot(snap);

    if (!widthPred.loadState(src) || !gatingModel.loadState(src) ||
        !cacheModel.loadState(src)) {
        return false;
    }

    if (!src.u64v(packStat.packedGroups) ||
        !src.u64v(packStat.packedInsts) ||
        !src.u64v(packStat.replaySpeculations) ||
        !src.u64v(packStat.replayTraps) ||
        !src.u64v(packStat.packEligibleIssued)) {
        return false;
    }
    return true;
}

} // namespace nwsim
