#include "pipeline/trace.hh"

#include <sstream>

#include "common/strings.hh"
#include "isa/disasm.hh"

namespace nwsim
{

const char *
traceStageName(TraceStage stage)
{
    switch (stage) {
      case TraceStage::Dispatch:
        return "dispatch";
      case TraceStage::Issue:
        return "issue";
      case TraceStage::Complete:
        return "complete";
      case TraceStage::Commit:
        return "commit";
      case TraceStage::Squash:
        return "squash";
      case TraceStage::Replay:
        return "replay";
      case TraceStage::Redirect:
        return "redirect";
    }
    return "?";
}

std::string
formatTraceEvent(const TraceEvent &event)
{
    std::ostringstream os;
    os << "[" << event.cycle << "] " << pad(traceStageName(event.stage), 9)
       << " #" << event.seq << " " << hexString(event.pc) << "  "
       << disassemble(event.inst, event.pc);
    if (event.packed)
        os << "  (packed)";
    return os.str();
}

} // namespace nwsim
