/**
 * @file
 * Parameterized workload generator (docs/CONFIG.md).
 *
 * Turns a small knob vector — operand-width profile, op-mix ratios,
 * address-region/stride mix, loop structure — into a deterministic
 * seeded `.s` program: the same WgenParams always produce byte-
 * identical assembly text, on any host, so generated workloads flow
 * through the campaign wire format, journal resume, sharding, and
 * checkpointing exactly like the compiled-in proxies.
 *
 * A generated workload is named by its spec string:
 *
 *     wgen:seed=7,ops=64,w16=80,w33=10,w64=10,load=20
 *
 * which `nwsweep --workloads`, `nwsim run`, and `[workload NAME]`
 * config sections (cfg/loader.hh) all accept. Omitted knobs take the
 * defaults below; the canonical spec (canonicalWgenSpec) spells every
 * knob out so labels are stable under default changes.
 */

#ifndef NWSIM_CFG_WGEN_HH
#define NWSIM_CFG_WGEN_HH

#include <string>
#include <vector>

#include "asm/program.hh"
#include "cfg/config.hh"

namespace nwsim::cfg
{

/** Generator knobs (every field has a `wgen:` spec key of the same
 *  name — see wgenKnobs()). */
struct WgenParams
{
    /** Program RNG seed: the whole program is a pure function of this
     *  struct. */
    u64 seed = 1;
    /** Body operations per loop block. */
    unsigned ops = 48;
    /** Iterations of each loop block. */
    unsigned iters = 16;
    /** Sequential loop blocks (distinct code working sets). */
    unsigned blocks = 1;

    /** Operand-width profile: relative weights of 16-bit, 33-bit, and
     *  full-width constants feeding the dataflow (the paper's Figure 2
     *  axes). Must not all be zero. */
    unsigned w16 = 55;
    unsigned w33 = 25;
    unsigned w64 = 20;

    /** Op-mix weights (relative; must not all be zero). */
    unsigned alu = 35;      ///< R-type add/sub/mul/cmp/logic/shift ops
    unsigned aluimm = 15;   ///< I-type immediate ALU ops
    unsigned ldconst = 10;  ///< width-profile constant reloads (li)
    unsigned load = 12;     ///< loads from the data regions
    unsigned store = 8;     ///< stores to the data regions
    unsigned branch = 5;    ///< conditional forward skip branches

    /** Data regions the memory ops address (1..4). */
    unsigned regions = 2;
    /** Bytes per region (power of two, 64..1048576). */
    unsigned regionBytes = 2048;
    /** Strided-access stride in bytes (multiple of 8). */
    unsigned stride = 8;
    /** Percent of memory ops at random (vs strided) addresses. */
    unsigned randmem = 25;
};

/** One generator knob: spec key + bounds + doc (drives parsing,
 *  validation, canonical specs, and the docs/CONFIG.md table). */
struct WgenKnob
{
    const char *name;
    double minValue;
    double maxValue;
    const char *doc;
    double (*get)(const WgenParams &);
    void (*set)(WgenParams &, double);
};

const std::vector<WgenKnob> &wgenKnobs();

/** True if @p name names a generated workload (`wgen:` / `wgen=`). */
bool isWgenSpec(const std::string &name);

/**
 * Parse `wgen:key=value,...` (or `wgen=key=value,...`); unknown keys
 * fail with a did-you-mean suggestion; out-of-range values fail with
 * the knob's bounds. Throws BadInputError.
 */
WgenParams parseWgenSpec(const std::string &spec);

/** Canonical spec: every knob, in table order. parse(canonical(p))
 *  == p. */
std::string canonicalWgenSpec(const WgenParams &params);

/** Bind a `[workload NAME]` section to params (same keys as the spec
 *  grammar). Throws BadInputError with file:line context. */
WgenParams wgenFromSection(const ConfigFile &file,
                           const CfgSection &section);

/** The generated program text — deterministic and byte-identical for
 *  equal @p params. */
std::string wgenProgramText(const WgenParams &params);

/** Assembled program image. */
Program wgenProgram(const WgenParams &params);

} // namespace nwsim::cfg

#endif // NWSIM_CFG_WGEN_HH
