/**
 * @file
 * Unified machine/workload spec loader — the single resolution path
 * behind every configuration surface (docs/CONFIG.md):
 *
 *     baseline                         code-defined preset
 *     packing+decode8+sample=200000:2000:8000   preset + modifiers
 *     configs/baseline.cfg             declarative config file
 *     configs/baseline.cfg+sample=...  file + modifiers
 *
 * `exp::configBySpec` and friends (src/exp/configs.hh) are thin
 * aliases over resolveMachineSpec, so the legacy preset+modifier
 * grammar and `.cfg` files are provably the same loader. Presets and
 * modifiers live in declarative registries here: help text, error
 * messages, and application logic all come from one definition each.
 *
 * Workload names resolve through workloadProgram(): compiled-in
 * proxies by name, generated programs by `wgen:` spec (cfg/wgen.hh).
 * Sweep files ([sweep] sections) expand machine x workload products —
 * generated workloads are materialized to assembly text at expansion
 * so remote workers and `--resume` need no driver-side files.
 */

#ifndef NWSIM_CFG_LOADER_HH
#define NWSIM_CFG_LOADER_HH

#include <string>
#include <vector>

#include "asm/program.hh"
#include "cfg/config.hh"
#include "driver/runner.hh"
#include "pipeline/config.hh"

namespace nwsim::cfg
{

/** Config-grammar version, reported by `nwsim --version` and bumped
 *  whenever the file grammar or spec surface changes meaning. */
constexpr int kGrammarVersion = 1;

/** A fully resolved machine spec: core parameters plus the run-
 *  schedule properties (sampling, checkpoint cadence) a spec carries. */
struct MachineSpec
{
    CoreConfig config;
    SampleOptions sample;
    u64 ckptEvery = 0;
    /** The spec string as given. */
    std::string spec;
    /** Canonical `.cfg` text when the spec came from a config file
     *  (ships through wire v7 into reproducer bundles); "" for pure
     *  preset specs. */
    std::string configText;
};

/** One registered base preset. */
struct PresetDef
{
    const char *name;
    const char *doc;
    CoreConfig (*make)();
};

/** One registered `+modifier`. The single definition drives help
 *  text, error messages, and both grammars' application. */
struct ModifierDef
{
    /** Display form for help/errors ("sample=P:W:M[:rand[:seed]]"). */
    const char *display;
    /** Token before '=' ("sample"), or the whole token if no arg. */
    const char *token;
    bool takesArg;
    const char *doc;
    /** Apply to @p out; throws BadInputError prefixed @p context. */
    void (*apply)(const std::string &arg, const std::string &context,
                  MachineSpec &out);
};

const std::vector<PresetDef> &presetRegistry();
const std::vector<ModifierDef> &modifierRegistry();

/** Generated one-line grammar summary (error messages, --help). */
std::string specGrammarHelp();

/** True when @p base names a config file (ends in ".cfg"). */
bool looksLikeConfigFile(const std::string &base);

/**
 * Resolve a full spec (preset or `.cfg` base, plus `+modifiers`).
 * Throws BadInputError with context (file:line for file problems,
 * did-you-mean for unknown names).
 */
MachineSpec resolveMachineSpec(const std::string &spec);

/** Non-throwing resolveMachineSpec; false + @p err on failure. */
bool tryResolveMachineSpec(const std::string &spec, MachineSpec *out,
                           std::string *err);

/**
 * Cross-field machine invariants the per-field ranges cannot express
 * (power-of-two cache/BTB set counts). Throws BadInputError.
 */
void validateConfig(const CoreConfig &cfg, const std::string &context);

/**
 * Canonical config-file text of a resolved spec: the full [machine]
 * field table plus a [schedule] section when sampling/checkpointing
 * is active. parse(dump(spec)) resolves bit-identically.
 */
std::string canonicalMachineDump(const MachineSpec &spec);

/** Canonical `sample = "..."` value for a schedule. */
std::string formatSampleSpec(const SampleOptions &sample);

/** Shipped/discovered config files: every `.cfg` under @p dir
 *  (default "configs"), sorted by name. */
std::vector<std::string> discoverConfigFiles(
    const std::string &dir = "configs");

// ---- workloads ----------------------------------------------------

/** True for compiled-in names and valid `wgen:` specs. */
bool isKnownWorkloadName(const std::string &name);

/** Program image for a workload name (builtin or `wgen:`); throws
 *  BadInputError on unknown names (with a did-you-mean suggestion). */
Program workloadProgram(const std::string &name);

/** Assembly text for generated (`wgen:`) names; "" for builtins. */
std::string generatedWorkloadText(const std::string &name);

// ---- sweep files ---------------------------------------------------

/** One workload of a sweep: label + assembly text (empty for
 *  compiled-in workloads). */
struct SweepEntry
{
    std::string name;
    std::string asmText;
};

/** An expanded [sweep] section: the machine x workload product to
 *  run. */
struct SweepPlan
{
    std::vector<std::string> machines;
    std::vector<SweepEntry> workloads;
};

/**
 * Load a sweep config file: expands `machines` / `machines[a:b]` and
 * `workloads` / `workloads[a:b]` lists, resolving workload names
 * against compiled-in proxies, `wgen:` specs, and the file's own
 * `[workload NAME]` sections. Machine entries naming relative `.cfg`
 * files resolve against the sweep file's directory.
 */
SweepPlan loadSweepFile(const std::string &path);

} // namespace nwsim::cfg

#endif // NWSIM_CFG_LOADER_HH
