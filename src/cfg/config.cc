#include "cfg/config.hh"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "common/strings.hh"

namespace nwsim::cfg
{

namespace
{

/** Expansion/recursion bounds: a config file is driver input, so every
 *  loop a hostile byte stream could inflate is capped. */
constexpr size_t maxFileBytes = 4 * 1024 * 1024;
constexpr size_t maxArrayExpansion = 100000;
constexpr int maxSubstDepth = 32;
constexpr int maxExprDepth = 64;

[[noreturn]] void
parseFail(const std::string &path, int line, const std::string &msg)
{
    NWSIM_FATAL(path, ":", line, ": ", msg);
}

bool
isKeyStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
isKeyChar(char c)
{
    // '-' admits workload/preset-style names ("narrow-mix",
    // "packing-replay") as keys and section names; keys sit left of
    // '=' so this never collides with subtraction in value
    // expressions.
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '.' || c == '-';
}

bool
validKeyName(const std::string &key)
{
    if (key.empty() || !isKeyStart(key[0]))
        return false;
    return std::all_of(key.begin(), key.end(), isKeyChar);
}

/** Strip a trailing '#'/';' comment, respecting quoted spans. */
std::string
stripComment(const std::string &line)
{
    char quote = 0;
    for (size_t i = 0; i < line.size(); ++i) {
        const char c = line[i];
        if (quote) {
            if (c == quote)
                quote = 0;
        } else if (c == '"' || c == '\'') {
            quote = c;
        } else if (c == '#' || c == ';') {
            return line.substr(0, i);
        }
    }
    return line;
}

struct RawEntry
{
    std::string key;
    std::string value;      // raw, pre-substitution
    bool quoted = false;
    int line = 0;
};

struct RawSection
{
    std::string kind;
    std::string name;
    int line = 0;
    std::vector<RawEntry> entries;
};

/** Parse `key[a:b]` / `key[i]` array suffixes. */
struct ArrayRange
{
    bool isArray = false;
    u64 lo = 0;
    u64 hi = 0;
};

bool
parseIndex(const std::string &text, u64 &out)
{
    if (text.empty() ||
        text.find_first_not_of("0123456789") != std::string::npos)
        return false;
    if (text.size() > 9)
        return false;   // caps any index at < 1e9 before strtoull
    out = std::strtoull(text.c_str(), nullptr, 10);
    return true;
}

ArrayRange
splitArrayKey(const std::string &path, int line, std::string &key)
{
    ArrayRange range;
    const size_t open = key.find('[');
    if (open == std::string::npos)
        return range;
    if (key.back() != ']')
        parseFail(path, line, "malformed array key \"" + key +
                                  "\" (want key[lo:hi] or key[i])");
    const std::string body =
        key.substr(open + 1, key.size() - open - 2);
    key = key.substr(0, open);
    const size_t colon = body.find(':');
    if (colon == std::string::npos) {
        if (!parseIndex(body, range.lo))
            parseFail(path, line,
                      "malformed array index \"[" + body + "]\"");
        range.hi = range.lo;
    } else {
        if (!parseIndex(body.substr(0, colon), range.lo) ||
            !parseIndex(body.substr(colon + 1), range.hi))
            parseFail(path, line,
                      "malformed array range \"[" + body + "]\"");
        if (range.hi < range.lo)
            parseFail(path, line, "array range \"[" + body +
                                      "]\" runs backwards");
    }
    if (range.hi - range.lo + 1 > maxArrayExpansion)
        parseFail(path, line,
                  "array range expands to more than " +
                      std::to_string(maxArrayExpansion) + " entries");
    range.isArray = true;
    return range;
}

/** Replace every `$(i)` with the literal index (array expansion). */
std::string
substituteIndex(const std::string &value, u64 index)
{
    std::string out;
    size_t pos = 0;
    while (pos < value.size()) {
        const size_t dollar = value.find("$(i)", pos);
        if (dollar == std::string::npos) {
            out.append(value, pos, std::string::npos);
            break;
        }
        out.append(value, pos, dollar - pos);
        out += std::to_string(index);
        pos = dollar + 4;
    }
    return out;
}

/** Unquote a fully-quoted value; error on stray/unterminated quotes. */
std::string
unquoteValue(const std::string &path, int line, const std::string &raw,
             bool &quoted)
{
    quoted = false;
    if (raw.empty())
        return raw;
    const char q = raw[0];
    if (q == '"' || q == '\'') {
        if (raw.size() < 2 || raw.back() != q)
            parseFail(path, line, "unterminated quoted value");
        const std::string inner = raw.substr(1, raw.size() - 2);
        if (inner.find(q) != std::string::npos)
            parseFail(path, line, "stray quote inside quoted value");
        quoted = true;
        return inner;
    }
    if (raw.find('"') != std::string::npos ||
        raw.find('\'') != std::string::npos)
        parseFail(path, line, "stray quote in unquoted value");
    return raw;
}

/** Expression evaluator: expr := term (('+'|'-') term)*, term :=
 *  factor (('*'|'/') factor)*, factor := '-' factor | '(' expr ')' |
 *  number. */
struct ExprParser
{
    const std::string &text;
    size_t pos = 0;
    std::string err;

    explicit ExprParser(const std::string &t) : text(t) {}

    void
    skipSpace()
    {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos])))
            ++pos;
    }

    bool
    fail(const std::string &msg)
    {
        if (err.empty())
            err = msg;
        return false;
    }

    bool
    number(double &out)
    {
        skipSpace();
        const size_t start = pos;
        if (start >= text.size())
            return fail("expected a number");
        if (text.compare(pos, 2, "0x") == 0 ||
            text.compare(pos, 2, "0X") == 0) {
            size_t digits = pos + 2;
            while (digits < text.size() &&
                   std::isxdigit(
                       static_cast<unsigned char>(text[digits])))
                ++digits;
            if (digits == pos + 2 || digits - pos > 18)
                return fail("malformed hex literal");
            out = static_cast<double>(std::strtoull(
                text.substr(pos, digits - pos).c_str(), nullptr, 16));
            pos = digits;
            return true;
        }
        char *end = nullptr;
        const double v = std::strtod(text.c_str() + start, &end);
        if (end == text.c_str() + start)
            return fail("expected a number at \"" + text.substr(start) +
                        "\"");
        pos = static_cast<size_t>(end - text.c_str());
        out = v;
        return true;
    }

    bool
    factor(double &out, int depth)
    {
        if (depth > maxExprDepth)
            return fail("expression nests too deeply");
        skipSpace();
        if (pos < text.size() && text[pos] == '-') {
            ++pos;
            if (!factor(out, depth + 1))
                return false;
            out = -out;
            return true;
        }
        if (pos < text.size() && text[pos] == '(') {
            ++pos;
            if (!expr(out, depth + 1))
                return false;
            skipSpace();
            if (pos >= text.size() || text[pos] != ')')
                return fail("missing ')'");
            ++pos;
            return true;
        }
        return number(out);
    }

    bool
    term(double &out, int depth)
    {
        if (!factor(out, depth))
            return false;
        for (;;) {
            skipSpace();
            if (pos >= text.size() ||
                (text[pos] != '*' && text[pos] != '/'))
                return true;
            const char op = text[pos++];
            double rhs = 0.0;
            if (!factor(rhs, depth))
                return false;
            if (op == '/') {
                if (rhs == 0.0)
                    return fail("division by zero");
                out /= rhs;
            } else {
                out *= rhs;
            }
        }
    }

    bool
    expr(double &out, int depth)
    {
        if (depth > maxExprDepth)
            return fail("expression nests too deeply");
        if (!term(out, depth))
            return false;
        for (;;) {
            skipSpace();
            if (pos >= text.size() ||
                (text[pos] != '+' && text[pos] != '-'))
                return true;
            const char op = text[pos++];
            double rhs = 0.0;
            if (!term(rhs, depth))
                return false;
            out = op == '+' ? out + rhs : out - rhs;
        }
    }
};

/** Variable-substitution context: section-local entries shadow
 *  globals, exactly like SESC's per-section overrides. */
struct SubstContext
{
    const std::string &path;
    const RawSection &globals;
    const RawSection &local;

    const RawEntry *
    lookup(const std::string &name) const
    {
        for (auto it = local.entries.rbegin();
             it != local.entries.rend(); ++it)
            if (it->key == name)
                return &*it;
        for (auto it = globals.entries.rbegin();
             it != globals.entries.rend(); ++it)
            if (it->key == name)
                return &*it;
        return nullptr;
    }

    std::vector<std::string>
    knownNames() const
    {
        std::vector<std::string> names;
        for (const RawEntry &e : globals.entries)
            names.push_back(e.key);
        for (const RawEntry &e : local.entries)
            names.push_back(e.key);
        return names;
    }
};

std::string substituteVars(const SubstContext &ctx,
                           const RawEntry &entry, int depth);

/** Substitute one `$(name)` reference (recursively resolving the
 *  referenced entry first). */
std::string
resolveReference(const SubstContext &ctx, const RawEntry &site,
                 const std::string &name, int depth)
{
    if (depth > maxSubstDepth)
        parseFail(ctx.path, site.line,
                  "recursive $(" + name + ") substitution");
    const RawEntry *target = ctx.lookup(name);
    if (!target) {
        std::string msg = "unknown variable $(" + name + ")";
        const std::string hint = closestName(name, ctx.knownNames());
        if (!hint.empty())
            msg += " — did you mean $(" + hint + ")?";
        parseFail(ctx.path, site.line, msg);
    }
    const std::string resolved = substituteVars(ctx, *target, depth + 1);
    // Parenthesize non-trivial numeric text so `a = 1+2; b = $(a)*3`
    // keeps its algebraic meaning; plain tokens substitute verbatim.
    if (!site.quoted && !target->quoted &&
        resolved.find_first_of("+-*/ ") != std::string::npos)
        return "(" + resolved + ")";
    return resolved;
}

std::string
substituteVars(const SubstContext &ctx, const RawEntry &entry,
               int depth)
{
    const std::string &value = entry.value;
    if (value.find("$(") == std::string::npos)
        return value;
    std::string out;
    size_t pos = 0;
    while (pos < value.size()) {
        const size_t dollar = value.find("$(", pos);
        if (dollar == std::string::npos) {
            out.append(value, pos, std::string::npos);
            break;
        }
        out.append(value, pos, dollar - pos);
        const size_t close = value.find(')', dollar + 2);
        if (close == std::string::npos)
            parseFail(ctx.path, entry.line,
                      "unterminated $(...) reference");
        const std::string name =
            value.substr(dollar + 2, close - dollar - 2);
        if (!validKeyName(name))
            parseFail(ctx.path, entry.line,
                      "malformed $(...) reference \"$(" + name + ")\"");
        out += resolveReference(ctx, entry, name, depth);
        pos = close + 1;
    }
    return out;
}

} // namespace

const CfgEntry *
CfgSection::find(const std::string &key) const
{
    for (auto it = entries.rbegin(); it != entries.rend(); ++it)
        if (it->key == key)
            return &*it;
    return nullptr;
}

const CfgSection *
ConfigFile::section(const std::string &kind,
                    const std::string &name) const
{
    for (const CfgSection &s : sections)
        if (s.kind == kind && s.name == name)
            return &s;
    return nullptr;
}

std::vector<const CfgSection *>
ConfigFile::sectionsOf(const std::string &kind) const
{
    std::vector<const CfgSection *> out;
    for (const CfgSection &s : sections)
        if (s.kind == kind)
            out.push_back(&s);
    return out;
}

ConfigFile
parseConfigText(const std::string &text, const std::string &display_path)
{
    if (text.size() > maxFileBytes)
        parseFail(display_path, 1, "config file exceeds " +
                                       std::to_string(maxFileBytes) +
                                       " bytes");

    // Pass 1: raw sections (comments stripped, arrays expanded).
    std::vector<RawSection> raw(1);   // [0] = implicit global section
    size_t lineStart = 0;
    int lineNo = 0;
    while (lineStart <= text.size()) {
        size_t nl = text.find('\n', lineStart);
        if (nl == std::string::npos)
            nl = text.size();
        std::string line = text.substr(lineStart, nl - lineStart);
        lineStart = nl + 1;
        ++lineNo;
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        line = trim(stripComment(line));
        if (line.empty()) {
            if (nl == text.size())
                break;
            continue;
        }

        if (line.front() == '[') {
            if (line.back() != ']')
                parseFail(display_path, lineNo,
                          "section header missing closing ']'");
            const std::string body =
                trim(line.substr(1, line.size() - 2));
            const std::vector<std::string> words = tokenize(body, " \t");
            if (words.empty() || words.size() > 2 ||
                !validKeyName(words[0]))
                parseFail(display_path, lineNo,
                          "malformed section header \"" + line +
                              "\" (want [kind] or [kind name])");
            RawSection section;
            section.kind = toLower(words[0]);
            if (words.size() == 2) {
                if (!validKeyName(words[1]))
                    parseFail(display_path, lineNo,
                              "malformed section name \"" + words[1] +
                                  "\"");
                section.name = words[1];
            }
            section.line = lineNo;
            raw.push_back(std::move(section));
            if (nl == text.size())
                break;
            continue;
        }

        const size_t eq = line.find('=');
        if (eq == std::string::npos)
            parseFail(display_path, lineNo,
                      "expected `key = value` or `[section]`, got \"" +
                          line + "\"");
        std::string key = trim(line.substr(0, eq));
        const ArrayRange range = splitArrayKey(display_path, lineNo, key);
        if (!validKeyName(key))
            parseFail(display_path, lineNo,
                      "malformed key \"" + key + "\"");
        const std::string rawValue = trim(line.substr(eq + 1));
        if (rawValue.empty())
            parseFail(display_path, lineNo,
                      "key \"" + key + "\" has no value");

        RawSection &target = raw.back();
        if (!range.isArray) {
            target.entries.push_back({key, rawValue, false, lineNo});
        } else {
            for (u64 i = range.lo; i <= range.hi; ++i) {
                target.entries.push_back(
                    {key + "[" + std::to_string(i) + "]",
                     substituteIndex(rawValue, i), false, lineNo});
            }
        }
        if (nl == text.size())
            break;
    }

    // Pass 2: quote handling + $(var) substitution.
    ConfigFile file;
    file.path = display_path;
    for (RawSection &rs : raw) {
        for (RawEntry &entry : rs.entries) {
            entry.value = unquoteValue(display_path, entry.line,
                                       entry.value, entry.quoted);
        }
    }
    for (const RawSection &rs : raw) {
        CfgSection section;
        section.kind = rs.kind;
        section.name = rs.name;
        section.line = rs.line;
        const SubstContext ctx{display_path, raw.front(), rs};
        for (const RawEntry &entry : rs.entries) {
            CfgValue value;
            value.text = substituteVars(ctx, entry, 0);
            value.quoted = entry.quoted;
            value.line = entry.line;
            section.entries.push_back({entry.key, value});
        }
        file.sections.push_back(std::move(section));
    }
    return file;
}

ConfigFile
parseConfigFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        NWSIM_FATAL("cannot open config file \"", path, "\"");
    std::ostringstream buf;
    buf << in.rdbuf();
    return parseConfigText(buf.str(), path);
}

bool
evalExpression(const std::string &expr, double &out, std::string &err)
{
    ExprParser p(expr);
    double value = 0.0;
    if (!p.expr(value, 0)) {
        err = p.err;
        return false;
    }
    p.skipSpace();
    if (p.pos != expr.size()) {
        err = "trailing garbage \"" + expr.substr(p.pos) + "\"";
        return false;
    }
    out = value;
    return true;
}

std::string
entryContext(const ConfigFile &file, const CfgEntry &entry)
{
    return file.path + ":" + std::to_string(entry.value.line) + ": ";
}

double
entryNumber(const ConfigFile &file, const CfgEntry &entry)
{
    if (entry.value.quoted)
        NWSIM_FATAL(entryContext(file, entry), "key \"", entry.key,
                    "\" expects a number, got the string \"",
                    entry.value.text, "\"");
    double value = 0.0;
    std::string err;
    if (!evalExpression(entry.value.text, value, err))
        NWSIM_FATAL(entryContext(file, entry), "key \"", entry.key,
                    "\": ", err);
    return value;
}

bool
entryBool(const ConfigFile &file, const CfgEntry &entry)
{
    const std::string word = toLower(entry.value.text);
    if (word == "true" || word == "yes" || word == "on")
        return true;
    if (word == "false" || word == "no" || word == "off")
        return false;
    double value = 0.0;
    std::string err;
    if (!entry.value.quoted &&
        evalExpression(entry.value.text, value, err)) {
        if (value == 0.0 || value == 1.0)
            return value != 0.0;
    }
    NWSIM_FATAL(entryContext(file, entry), "key \"", entry.key,
                "\" expects a boolean (true/false), got \"",
                entry.value.text, "\"");
}

std::string
closestName(const std::string &unknown,
            const std::vector<std::string> &known)
{
    // Classic Levenshtein distance; inputs are short key names.
    const auto distance = [](const std::string &a,
                             const std::string &b) {
        std::vector<size_t> row(b.size() + 1);
        for (size_t j = 0; j <= b.size(); ++j)
            row[j] = j;
        for (size_t i = 1; i <= a.size(); ++i) {
            size_t diag = row[0];
            row[0] = i;
            for (size_t j = 1; j <= b.size(); ++j) {
                const size_t prev = row[j];
                const size_t sub =
                    diag + (std::tolower(static_cast<unsigned char>(
                                a[i - 1])) ==
                                    std::tolower(static_cast<unsigned char>(
                                        b[j - 1]))
                                ? 0
                                : 1);
                row[j] = std::min({row[j] + 1, row[j - 1] + 1, sub});
                diag = prev;
            }
        }
        return row[b.size()];
    };

    std::string best;
    size_t bestDist = std::max<size_t>(2, unknown.size() / 3) + 1;
    for (const std::string &candidate : known) {
        if (candidate == unknown)
            continue;
        const size_t d = distance(unknown, candidate);
        if (d < bestDist) {
            bestDist = d;
            best = candidate;
        }
    }
    return best;
}

} // namespace nwsim::cfg
