#include "cfg/wgen.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "asm/layout.hh"
#include "asm/textasm.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "common/strings.hh"
#include "isa/opcode.hh"

namespace nwsim::cfg
{

namespace
{

/** Register plan: r1..r12 working values, r20..r23 region bases, r24
 *  loop counter, r25 strided cursor, r27 address scratch. */
constexpr unsigned firstWorkReg = 1;
constexpr unsigned numWorkRegs = 12;
constexpr unsigned regionBaseReg = 20;
constexpr unsigned loopReg = 24;
constexpr unsigned cursorReg = 25;
constexpr unsigned addrReg = 27;

constexpr unsigned maxRegions = 4;

#define NWSIM_WGEN_KNOB(member, lo, hi, doc)                             \
    WgenKnob                                                             \
    {                                                                    \
        #member, static_cast<double>(lo), static_cast<double>(hi), doc,  \
            +[](const WgenParams &p) {                                   \
                return static_cast<double>(p.member);                    \
            },                                                           \
            +[](WgenParams &p, double v) {                               \
                p.member = static_cast<decltype(p.member)>(v);           \
            }                                                            \
    }

std::vector<WgenKnob>
buildKnobs()
{
    return {
        NWSIM_WGEN_KNOB(seed, 0, 9007199254740991.0 /* 2^53-1 */,
                        "program RNG seed (same seed => byte-identical "
                        ".s)"),
        NWSIM_WGEN_KNOB(ops, 4, 20000, "body operations per loop block"),
        NWSIM_WGEN_KNOB(iters, 1, 1000000000,
                        "iterations of each loop block"),
        NWSIM_WGEN_KNOB(blocks, 1, 64, "sequential loop blocks"),
        NWSIM_WGEN_KNOB(w16, 0, 100,
                        "weight of 16-bit-narrow operand constants"),
        NWSIM_WGEN_KNOB(w33, 0, 100,
                        "weight of 33-bit (pointer-like) constants"),
        NWSIM_WGEN_KNOB(w64, 0, 100, "weight of full-width constants"),
        NWSIM_WGEN_KNOB(alu, 0, 100, "weight of R-type ALU ops"),
        NWSIM_WGEN_KNOB(aluimm, 0, 100,
                        "weight of I-type immediate ALU ops"),
        NWSIM_WGEN_KNOB(ldconst, 0, 100,
                        "weight of width-profile constant reloads"),
        NWSIM_WGEN_KNOB(load, 0, 100, "weight of region loads"),
        NWSIM_WGEN_KNOB(store, 0, 100, "weight of region stores"),
        NWSIM_WGEN_KNOB(branch, 0, 100,
                        "weight of conditional forward skips"),
        NWSIM_WGEN_KNOB(regions, 1, maxRegions,
                        "data regions addressed by memory ops"),
        NWSIM_WGEN_KNOB(regionBytes, 64, 65536,
                        "bytes per region (power of two)"),
        NWSIM_WGEN_KNOB(stride, 8, 32768,
                        "strided-access stride, bytes (multiple of 8)"),
        NWSIM_WGEN_KNOB(randmem, 0, 100,
                        "percent of memory ops at random addresses"),
    };
}

#undef NWSIM_WGEN_KNOB

const WgenKnob *
findKnob(const std::string &name)
{
    for (const WgenKnob &k : wgenKnobs())
        if (name == k.name)
            return &k;
    return nullptr;
}

std::vector<std::string>
knobNames()
{
    std::vector<std::string> names;
    for (const WgenKnob &k : wgenKnobs())
        names.push_back(k.name);
    return names;
}

/** Set one knob with type/range checking; @p context prefixes errors. */
void
setKnob(WgenParams &params, const std::string &key, double value,
        const std::string &context)
{
    const WgenKnob *knob = findKnob(key);
    if (!knob) {
        std::string msg = "unknown wgen knob \"" + key + "\"";
        const std::string hint = closestName(key, knobNames());
        if (!hint.empty())
            msg += " — did you mean \"" + hint + "\"?";
        NWSIM_FATAL(context, msg);
    }
    if (value != std::floor(value) || value < knob->minValue ||
        value > knob->maxValue)
        NWSIM_FATAL(context, "wgen knob \"", key, "\" = ", value,
                    " must be an integer in [", knob->minValue, ", ",
                    knob->maxValue, "]");
    knob->set(params, value);
}

/** Cross-knob invariants the per-knob ranges cannot express. */
void
validateParams(const WgenParams &p, const std::string &context)
{
    if (p.w16 + p.w33 + p.w64 == 0)
        NWSIM_FATAL(context,
                    "wgen width profile w16+w33+w64 must be nonzero");
    if (p.alu + p.aluimm + p.ldconst + p.load + p.store + p.branch == 0)
        NWSIM_FATAL(context, "wgen op mix weights must not all be zero");
    if ((p.regionBytes & (p.regionBytes - 1)) != 0)
        NWSIM_FATAL(context, "wgen regionBytes = ", p.regionBytes,
                    " must be a power of two");
    if (p.stride % 8 != 0)
        NWSIM_FATAL(context, "wgen stride = ", p.stride,
                    " must be a multiple of 8");
}

/** A constant drawn from the operand-width profile. */
i64
widthConstant(const WgenParams &p, SplitMix64 &rng)
{
    const u64 total = p.w16 + p.w33 + p.w64;
    const u64 roll = rng.below(total);
    if (roll < p.w16)
        return rng.range(-0x8000, 0x7fff);
    if (roll < p.w16 + p.w33) {
        // 33-bit quantities: half pointer-like (the paper's Figure 1
        // heap/stack peak), half just past the 2^31 boundary.
        if (rng.below(2) == 0)
            return static_cast<i64>(layout::dataBase +
                                    rng.below(p.regionBytes));
        return (i64{1} << 31) + static_cast<i64>(rng.below(1u << 31));
    }
    return static_cast<i64>(rng.next());
}

constexpr Opcode aluPool[] = {
    Opcode::ADD,   Opcode::ADD,    Opcode::SUB,   Opcode::SUB,
    Opcode::MUL,   Opcode::AND,    Opcode::OR,    Opcode::XOR,
    Opcode::SLL,   Opcode::SRL,    Opcode::SRA,   Opcode::CMPEQ,
    Opcode::CMPLT, Opcode::CMPULT, Opcode::SEXTW,
};

constexpr Opcode aluImmPool[] = {
    Opcode::ADDI, Opcode::ADDI, Opcode::SUBI,  Opcode::ANDI,
    Opcode::ORI,  Opcode::XORI, Opcode::SLLI,  Opcode::SRLI,
    Opcode::MULI, Opcode::CMPLTI,
};

constexpr Opcode loadPool[] = {Opcode::LDQ, Opcode::LDQ, Opcode::LDL,
                               Opcode::LDWU, Opcode::LDBU};

constexpr Opcode storePool[] = {Opcode::STQ, Opcode::STQ, Opcode::STL,
                                Opcode::STW, Opcode::STB};

constexpr Opcode branchPool[] = {Opcode::BEQ, Opcode::BNE, Opcode::BLT,
                                 Opcode::BGE, Opcode::BLE, Opcode::BGT};

template <size_t N>
Opcode
pick(const Opcode (&pool)[N], SplitMix64 &rng)
{
    return pool[rng.below(N)];
}

i64
immediateFor(Opcode op, SplitMix64 &rng)
{
    if (op == Opcode::SLLI || op == Opcode::SRLI || op == Opcode::SRAI)
        return rng.range(0, 63);
    if (immZeroExtends(op)) {
        switch (rng.below(3)) {
          case 0:
            return 0xffff;
          case 1:
            return 0x7fff + rng.range(-2, 2);
          default:
            return rng.range(0, 0xffff);
        }
    }
    return rng.range(-0x8000, 0x7fff);
}

/** Body-op IR: generated first, then materialized with forward-branch
 *  labels — the same two-phase idiom as check/fuzz.cc. */
struct WOp
{
    enum class Kind : u8
    {
        Const,
        Alu,
        AluImm,
        Load,
        Store,
        Branch,
    };
    Kind kind = Kind::Alu;
    Opcode op = Opcode::ADD;
    unsigned rc = 1;
    unsigned ra = 1;
    unsigned rb = 1;
    i64 imm = 0;
    unsigned region = 0;
    bool strided = false;
    unsigned skip = 1;
};

unsigned
workReg(SplitMix64 &rng)
{
    return firstWorkReg + static_cast<unsigned>(rng.below(numWorkRegs));
}

/** Random aligned offset reachable by a signed 16-bit displacement. */
i64
regionOffset(const WgenParams &p, Opcode op, SplitMix64 &rng)
{
    const unsigned size = memAccessSize(op);
    const unsigned reach = std::min(p.regionBytes, 32768u);
    return static_cast<i64>(rng.below(reach / size) * size);
}

std::vector<WOp>
generateBlock(const WgenParams &p, SplitMix64 &rng)
{
    std::vector<WOp> ops;
    ops.reserve(p.ops);
    const u64 mixTotal =
        p.alu + p.aluimm + p.ldconst + p.load + p.store + p.branch;
    for (unsigned i = 0; i < p.ops; ++i) {
        WOp op;
        if (i < 6) {
            // Seed the working registers from the width profile so the
            // first ALU ops already see profiled operands.
            op.kind = WOp::Kind::Const;
            op.rc = firstWorkReg + i % numWorkRegs;
            op.imm = widthConstant(p, rng);
            ops.push_back(op);
            continue;
        }
        u64 roll = rng.below(mixTotal);
        if (roll < p.alu) {
            op.kind = WOp::Kind::Alu;
            op.op = pick(aluPool, rng);
            op.rc = workReg(rng);
            op.ra = workReg(rng);
            op.rb = workReg(rng);
        } else if ((roll -= p.alu) < p.aluimm) {
            op.kind = WOp::Kind::AluImm;
            op.op = pick(aluImmPool, rng);
            op.rc = workReg(rng);
            op.ra = workReg(rng);
            op.imm = immediateFor(op.op, rng);
        } else if ((roll -= p.aluimm) < p.ldconst) {
            op.kind = WOp::Kind::Const;
            op.rc = workReg(rng);
            op.imm = widthConstant(p, rng);
        } else if ((roll -= p.ldconst) < p.load) {
            op.kind = WOp::Kind::Load;
            op.op = pick(loadPool, rng);
            op.rc = workReg(rng);
            op.region = static_cast<unsigned>(rng.below(p.regions));
            op.strided = rng.below(100) >= p.randmem;
            op.imm = op.strided ? 0 : regionOffset(p, op.op, rng);
        } else if ((roll -= p.load) < p.store) {
            op.kind = WOp::Kind::Store;
            op.op = pick(storePool, rng);
            op.ra = workReg(rng);
            op.region = static_cast<unsigned>(rng.below(p.regions));
            op.strided = rng.below(100) >= p.randmem;
            op.imm = op.strided ? 0 : regionOffset(p, op.op, rng);
        } else {
            op.kind = WOp::Kind::Branch;
            op.op = pick(branchPool, rng);
            op.ra = workReg(rng);
            op.skip = static_cast<unsigned>(rng.range(1, 3));
        }
        ops.push_back(op);
    }
    return ops;
}

size_t
branchTarget(const std::vector<WOp> &ops, size_t i)
{
    const size_t skip = std::clamp<size_t>(ops[i].skip, 1, 3);
    return std::min(i + 1 + skip, ops.size());
}

void
emitBlock(std::ostringstream &os, const WgenParams &p,
          const std::vector<WOp> &ops, unsigned block)
{
    os << "        li r" << loopReg << ", " << p.iters << "\n";
    os << "loop" << block << ":\n";

    // Labels bound just before the op each forward branch lands on.
    const size_t n = ops.size();
    std::vector<std::vector<size_t>> labelsAt(n + 1);
    for (size_t i = 0; i < n; ++i)
        if (ops[i].kind == WOp::Kind::Branch)
            labelsAt[branchTarget(ops, i)].push_back(i);

    for (size_t i = 0; i <= n; ++i) {
        for (size_t branch : labelsAt[i])
            os << "b" << block << "s" << branch << ":\n";
        if (i >= n)
            break;
        const WOp &op = ops[i];
        os << "        ";
        switch (op.kind) {
          case WOp::Kind::Const:
            os << "li r" << op.rc << ", " << op.imm;
            break;
          case WOp::Kind::Alu:
            os << mnemonic(op.op) << " r" << op.rc << ", r" << op.ra;
            if (op.op != Opcode::SEXTB && op.op != Opcode::SEXTW)
                os << ", r" << op.rb;
            break;
          case WOp::Kind::AluImm:
            os << mnemonic(op.op) << " r" << op.rc << ", r" << op.ra
               << ", " << op.imm;
            break;
          case WOp::Kind::Load:
          case WOp::Kind::Store: {
            const unsigned base = regionBaseReg + op.region;
            const unsigned data =
                op.kind == WOp::Kind::Load ? op.rc : op.ra;
            if (op.strided) {
                os << "add r" << addrReg << ", r" << base << ", r"
                   << cursorReg << "\n        ";
                os << mnemonic(op.op) << " r" << data << ", 0(r"
                   << addrReg << ")";
            } else {
                os << mnemonic(op.op) << " r" << data << ", " << op.imm
                   << "(r" << base << ")";
            }
            break;
          }
          case WOp::Kind::Branch:
            os << mnemonic(op.op) << " r" << op.ra << ", b" << block
               << "s" << i;
            break;
        }
        os << "\n";
    }

    // Advance and wrap the strided cursor (regionBytes is a power of
    // two <= 64K, so the mask fits ANDI's zero-extended immediate).
    os << "        addi r" << cursorReg << ", r" << cursorReg << ", "
       << p.stride << "\n";
    os << "        andi r" << cursorReg << ", r" << cursorReg << ", "
       << (p.regionBytes - 1) << "\n";
    os << "        subi r" << loopReg << ", r" << loopReg << ", 1\n";
    os << "        bne r" << loopReg << ", loop" << block << "\n";
}

} // namespace

const std::vector<WgenKnob> &
wgenKnobs()
{
    static const std::vector<WgenKnob> knobs = buildKnobs();
    return knobs;
}

bool
isWgenSpec(const std::string &name)
{
    return startsWith(name, "wgen:") || startsWith(name, "wgen=") ||
           name == "wgen";
}

WgenParams
parseWgenSpec(const std::string &spec)
{
    if (!isWgenSpec(spec))
        NWSIM_FATAL("not a wgen spec: \"", spec,
                    "\" (want wgen:key=value,...)");
    WgenParams params;
    const std::string body = spec == "wgen" ? "" : spec.substr(5);
    const std::string context = "wgen spec \"" + spec + "\": ";
    for (const std::string &part : tokenize(body, ",")) {
        const size_t eq = part.find('=');
        if (eq == std::string::npos || eq == 0)
            NWSIM_FATAL(context, "malformed knob \"", part,
                        "\" (want key=value)");
        const std::string key = trim(part.substr(0, eq));
        const std::string value = trim(part.substr(eq + 1));
        double num = 0.0;
        std::string err;
        if (!evalExpression(value, num, err))
            NWSIM_FATAL(context, "knob \"", key, "\": ", err);
        setKnob(params, key, num, context);
    }
    validateParams(params, context);
    return params;
}

std::string
canonicalWgenSpec(const WgenParams &params)
{
    std::string out = "wgen:";
    bool first = true;
    for (const WgenKnob &k : wgenKnobs()) {
        if (!first)
            out += ",";
        first = false;
        out += k.name;
        out += "=";
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(k.get(params)));
        out += buf;
    }
    return out;
}

WgenParams
wgenFromSection(const ConfigFile &file, const CfgSection &section)
{
    WgenParams params;
    for (const CfgEntry &entry : section.entries) {
        setKnob(params, entry.key, entryNumber(file, entry),
                entryContext(file, entry));
    }
    validateParams(params, file.path + ": [workload " + section.name +
                               "]: ");
    return params;
}

std::string
wgenProgramText(const WgenParams &params)
{
    std::ostringstream os;
    os << "; nwsim generated workload\n";
    os << "; " << canonicalWgenSpec(params) << "\n";
    os << ".text\n";
    for (unsigned r = 0; r < params.regions; ++r)
        os << "        la r" << (regionBaseReg + r) << ", region" << r
           << "\n";
    os << "        li r" << cursorReg << ", 0\n";

    SplitMix64 rng(params.seed ^ 0x6e7773696d77676eULL); // "nwsimwgn"
    for (unsigned b = 0; b < params.blocks; ++b)
        emitBlock(os, params, generateBlock(params, rng), b);

    // Fold the working registers into a stored checksum, so every
    // generated program ends with an observable architectural result.
    for (unsigned r = 1; r < numWorkRegs; ++r)
        os << "        add r" << firstWorkReg << ", r" << firstWorkReg
           << ", r" << (firstWorkReg + r) << "\n";
    os << "        la r" << addrReg << ", checksum\n";
    os << "        stq r" << firstWorkReg << ", 0(r" << addrReg
       << ")\n";
    os << "        halt\n";

    os << ".data\n";
    os << "checksum:\n        .quad 0\n";
    SplitMix64 drng(params.seed ^ 0x7767656e64617461ULL); // "wgendata"
    // Seed region contents from the width profile too (loads should
    // see profiled operands); large regions tail off into .zero.
    const unsigned seededBytes = std::min(params.regionBytes, 4096u);
    for (unsigned r = 0; r < params.regions; ++r) {
        os << "region" << r << ":\n";
        for (unsigned q = 0; q < seededBytes / 8; ++q)
            os << "        .quad " << widthConstant(params, drng)
               << "\n";
        if (seededBytes < params.regionBytes)
            os << "        .zero " << (params.regionBytes - seededBytes)
               << "\n";
    }
    return os.str();
}

Program
wgenProgram(const WgenParams &params)
{
    return assembleText(wgenProgramText(params));
}

} // namespace nwsim::cfg
