/**
 * @file
 * SESC-style declarative config files (docs/CONFIG.md).
 *
 * The grammar is a tolerant sectioned key/value format modeled on the
 * SESC simulator's `.conf` files:
 *
 *     # comment (';' also starts a comment)
 *     issue = 4                     ; top-level variable
 *     [machine]                     ; section
 *     inherit = "baseline"          ; preset or another .cfg file
 *     issueWidth = $(issue)         ; variable substitution
 *     ruuSize = $(issue) * 20       ; arithmetic expressions
 *     mem.l1d.sizeBytes = 64 * 1024 ; dotted field paths
 *     [workload mix16]              ; named section instance
 *     w16 = 80
 *     [sweep]
 *     workloads[0:9] = "wgen:seed=$(i)"   ; array keys expand over i
 *
 * The parser is hand-rolled and byte-tolerant: any malformed input —
 * including arbitrary mutated bytes (tests/test_cfg.cc's fuzz drill) —
 * produces a classified BadInputError carrying `file:line` context,
 * never undefined behaviour. Key *meaning* (which keys exist, types,
 * ranges) is owned by the binders layered on top (cfg/fields.hh,
 * cfg/loader.hh, cfg/wgen.hh), which use closestName() for
 * did-you-mean suggestions.
 */

#ifndef NWSIM_CFG_CONFIG_HH
#define NWSIM_CFG_CONFIG_HH

#include <string>
#include <vector>

#include "common/types.hh"

namespace nwsim::cfg
{

/** One parsed value: substituted text plus source position. */
struct CfgValue
{
    /** Trimmed value text, `$(var)` references already substituted;
     *  quotes stripped when the value was quoted. */
    std::string text;
    /** True when the value was written as a quoted string — quoted
     *  values are never evaluated as expressions. */
    bool quoted = false;
    /** 1-based source line (for binder diagnostics). */
    int line = 0;
};

/** One `key = value` binding. */
struct CfgEntry
{
    std::string key;
    CfgValue value;
};

/** One `[kind]` or `[kind name]` section (plus the implicit global
 *  section, kind == ""). */
struct CfgSection
{
    std::string kind;
    std::string name;
    int line = 0;
    std::vector<CfgEntry> entries;

    /** Last binding of @p key, or nullptr (later bindings override). */
    const CfgEntry *find(const std::string &key) const;
};

/** A fully parsed config file. */
struct ConfigFile
{
    /** Display path for diagnostics ("<inline>" for text parses). */
    std::string path;
    /** sections[0] is always the implicit global section. */
    std::vector<CfgSection> sections;

    /** First `[kind name]` section, or nullptr. */
    const CfgSection *section(const std::string &kind,
                              const std::string &name = "") const;
    /** Every `[kind ...]` section, in file order. */
    std::vector<const CfgSection *> sectionsOf(
        const std::string &kind) const;
    const CfgSection &globals() const { return sections.front(); }
};

/**
 * Parse config text. @p display_path labels diagnostics only; no file
 * I/O happens. Throws BadInputError ("path:line: ...") on malformed
 * input.
 */
ConfigFile parseConfigText(const std::string &text,
                           const std::string &display_path = "<inline>");

/** Read and parse @p path; BadInputError if unreadable or malformed. */
ConfigFile parseConfigFile(const std::string &path);

/**
 * Evaluate @p expr as an arithmetic expression (+ - * / unary minus,
 * parentheses, decimal/hex literals). Returns false (with a message in
 * @p err) on malformed input — never throws, never UB.
 */
bool evalExpression(const std::string &expr, double &out,
                    std::string &err);

/**
 * Coerce an entry's value to a number / boolean. Throws BadInputError
 * with `file:line` context on type mismatch.
 */
double entryNumber(const ConfigFile &file, const CfgEntry &entry);
bool entryBool(const ConfigFile &file, const CfgEntry &entry);

/**
 * Nearest name to @p unknown among @p known by edit distance — the
 * did-you-mean suggestion. Empty when nothing is plausibly close.
 */
std::string closestName(const std::string &unknown,
                        const std::vector<std::string> &known);

/** "file:line: " diagnostic prefix for an entry. */
std::string entryContext(const ConfigFile &file, const CfgEntry &entry);

} // namespace nwsim::cfg

#endif // NWSIM_CFG_CONFIG_HH
