#include "cfg/fields.hh"

#include <charconv>
#include <cmath>

#include "common/logging.hh"

namespace nwsim::cfg
{

namespace
{

/** One row: accessors generated from the member path, so the table
 *  cannot drift from the struct (a typo fails to compile). */
#define NWSIM_CFG_FIELD(member, type, lo, hi, doc)                       \
    FieldDesc                                                            \
    {                                                                    \
        #member, FieldType::type, static_cast<double>(lo),               \
            static_cast<double>(hi), doc,                                \
            +[](const CoreConfig &c) {                                   \
                return static_cast<double>(c.member);                    \
            },                                                           \
            +[](CoreConfig &c, double v) {                               \
                c.member = static_cast<decltype(c.member)>(v);           \
            }                                                            \
    }

std::vector<FieldDesc>
buildTable()
{
    return {
        // --- pipeline geometry (paper Table 1) ---
        NWSIM_CFG_FIELD(ruuSize, UInt, 1, 4096,
                        "RUU (unified window/rename) entries"),
        NWSIM_CFG_FIELD(lsqSize, UInt, 1, 4096,
                        "load/store queue entries"),
        NWSIM_CFG_FIELD(fetchQueueSize, UInt, 1, 1024,
                        "fetch->decode queue entries"),
        NWSIM_CFG_FIELD(fetchWidth, UInt, 1, 64,
                        "instructions fetched per cycle"),
        NWSIM_CFG_FIELD(decodeWidth, UInt, 1, 64,
                        "instructions decoded per cycle"),
        NWSIM_CFG_FIELD(issueWidth, UInt, 1, 64,
                        "instructions issued per cycle"),
        NWSIM_CFG_FIELD(commitWidth, UInt, 1, 64,
                        "instructions committed per cycle"),
        NWSIM_CFG_FIELD(numAlus, UInt, 1, 64, "integer ALUs"),
        NWSIM_CFG_FIELD(numMultDiv, UInt, 1, 64,
                        "integer multiply/divide units"),
        NWSIM_CFG_FIELD(mispredictPenalty, UInt, 0, 1024,
                        "extra redirect cycles after a misprediction"),
        NWSIM_CFG_FIELD(perfectBPred, Bool, 0, 1,
                        "oracle fetch instead of the combining "
                        "predictor"),
        NWSIM_CFG_FIELD(watchdogCycles, UInt, 0, 1e12,
                        "cycles without a commit before DeadlockError "
                        "(0 = disabled)"),
        NWSIM_CFG_FIELD(earlyOutMultiply, Bool, 0, 1,
                        "PPC603-style early-out multiply latency "
                        "(Section 2.3)"),
        NWSIM_CFG_FIELD(decodeCache, Bool, 0, 1,
                        "decode caches on the functional and fetch "
                        "paths (stats-identical; `+nodecodecache`)"),
        NWSIM_CFG_FIELD(superblockTraces, Bool, 0, 1,
                        "superblock traces over the decode cache in "
                        "fastForward (stats-identical; `+notrace`)"),

        // --- branch predictor (Table 1 combining predictor) ---
        NWSIM_CFG_FIELD(bpred.selectorEntries, UInt, 1, 1 << 24,
                        "selector table 2-bit counters"),
        NWSIM_CFG_FIELD(bpred.selectorBits, UInt, 1, 16,
                        "selector counter bits"),
        NWSIM_CFG_FIELD(bpred.globalEntries, UInt, 1, 1 << 24,
                        "global predictor counters"),
        NWSIM_CFG_FIELD(bpred.globalBits, UInt, 1, 16,
                        "global counter bits"),
        NWSIM_CFG_FIELD(bpred.globalHistBits, UInt, 1, 30,
                        "global history register bits"),
        NWSIM_CFG_FIELD(bpred.localHistEntries, UInt, 1, 1 << 24,
                        "per-PC local history entries"),
        NWSIM_CFG_FIELD(bpred.localHistBits, UInt, 1, 30,
                        "local history bits"),
        NWSIM_CFG_FIELD(bpred.localPredEntries, UInt, 1, 1 << 24,
                        "local predictor counters"),
        NWSIM_CFG_FIELD(bpred.localPredBits, UInt, 1, 16,
                        "local counter bits"),
        NWSIM_CFG_FIELD(bpred.btbEntries, UInt, 1, 1 << 24,
                        "branch target buffer entries (entries/assoc "
                        "must be a power of two)"),
        NWSIM_CFG_FIELD(bpred.btbAssoc, UInt, 1, 64,
                        "BTB associativity"),
        NWSIM_CFG_FIELD(bpred.rasEntries, UInt, 1, 4096,
                        "return-address stack entries"),

        // --- memory hierarchy (Table 1) ---
        NWSIM_CFG_FIELD(mem.l1i.sizeBytes, UInt, 64, u64{1} << 32,
                        "L1 I-cache bytes (sets must come out a power "
                        "of two)"),
        NWSIM_CFG_FIELD(mem.l1i.assoc, UInt, 1, 256,
                        "L1 I-cache associativity"),
        NWSIM_CFG_FIELD(mem.l1i.blockBytes, UInt, 8, 4096,
                        "L1 I-cache block bytes (power of two)"),
        NWSIM_CFG_FIELD(mem.l1i.hitLatency, UInt, 0, 1000,
                        "L1 I-cache hit cycles"),
        NWSIM_CFG_FIELD(mem.l1d.sizeBytes, UInt, 64, u64{1} << 32,
                        "L1 D-cache bytes"),
        NWSIM_CFG_FIELD(mem.l1d.assoc, UInt, 1, 256,
                        "L1 D-cache associativity"),
        NWSIM_CFG_FIELD(mem.l1d.blockBytes, UInt, 8, 4096,
                        "L1 D-cache block bytes (power of two)"),
        NWSIM_CFG_FIELD(mem.l1d.hitLatency, UInt, 0, 1000,
                        "L1 D-cache hit cycles"),
        NWSIM_CFG_FIELD(mem.l2.sizeBytes, UInt, 64, u64{1} << 34,
                        "unified L2 bytes"),
        NWSIM_CFG_FIELD(mem.l2.assoc, UInt, 1, 256,
                        "L2 associativity"),
        NWSIM_CFG_FIELD(mem.l2.blockBytes, UInt, 8, 4096,
                        "L2 block bytes (power of two)"),
        NWSIM_CFG_FIELD(mem.l2.hitLatency, UInt, 0, 1000,
                        "L2 hit cycles"),
        NWSIM_CFG_FIELD(mem.memoryLatency, UInt, 0, 100000,
                        "main-memory cycles"),
        NWSIM_CFG_FIELD(mem.itlb.entries, UInt, 1, 65536,
                        "I-TLB entries (fully associative)"),
        NWSIM_CFG_FIELD(mem.itlb.pageShift, UInt, 6, 30,
                        "I-TLB page size, log2 bytes"),
        NWSIM_CFG_FIELD(mem.itlb.missLatency, UInt, 0, 100000,
                        "I-TLB miss cycles"),
        NWSIM_CFG_FIELD(mem.dtlb.entries, UInt, 1, 65536,
                        "D-TLB entries (fully associative)"),
        NWSIM_CFG_FIELD(mem.dtlb.pageShift, UInt, 6, 30,
                        "D-TLB page size, log2 bytes"),
        NWSIM_CFG_FIELD(mem.dtlb.missLatency, UInt, 0, 100000,
                        "D-TLB miss cycles"),

        // --- operation packing (Section 5) ---
        NWSIM_CFG_FIELD(packing.enabled, Bool, 0, 1,
                        "pack narrow same-op instructions at issue "
                        "(Section 5.2)"),
        NWSIM_CFG_FIELD(packing.replay, Bool, 0, 1,
                        "speculative replay packing (Section 5.3)"),
        NWSIM_CFG_FIELD(packing.lanesPerAlu, UInt, 1, 8,
                        "16-bit subword lanes per 64-bit ALU"),
        NWSIM_CFG_FIELD(packing.groupCountsOneSlot, Bool, 0, 1,
                        "a packed group consumes one issue slot"),
        NWSIM_CFG_FIELD(packing.replayPenalty, UInt, 0, 1024,
                        "cycles before a replay-trapped op re-issues"),

        // --- clock gating + Table 4 power model (Section 4) ---
        NWSIM_CFG_FIELD(gating.enabled, Bool, 0, 1,
                        "operand-width clock-gating accounting"),
        NWSIM_CFG_FIELD(gating.gate33, Bool, 0, 1,
                        "33-bit gating control signal (Figure 5/6)"),
        NWSIM_CFG_FIELD(gating.zeroDetectOnLoads, Bool, 0, 1,
                        "width-tag values arriving from loads "
                        "(Section 4.2)"),
        NWSIM_CFG_FIELD(gating.devices.adder64, F64, 0, 1e9,
                        "64-bit CLA adder mW (Table 4)"),
        NWSIM_CFG_FIELD(gating.devices.multiplier64, F64, 0, 1e9,
                        "64-bit Booth multiplier mW"),
        NWSIM_CFG_FIELD(gating.devices.logic64, F64, 0, 1e9,
                        "64-bit bit-wise logic mW"),
        NWSIM_CFG_FIELD(gating.devices.shifter64, F64, 0, 1e9,
                        "64-bit shifter mW"),
        NWSIM_CFG_FIELD(gating.devices.zeroDetect, F64, 0, 1e9,
                        "zero-detect logic mW per tagged result"),
        NWSIM_CFG_FIELD(gating.devices.mux, F64, 0, 1e9,
                        "result-bus mux mW per gated op"),
    };
}

#undef NWSIM_CFG_FIELD

} // namespace

std::string
FieldDesc::valueText(const CoreConfig &cfg) const
{
    const double v = get(cfg);
    switch (type) {
      case FieldType::Bool:
        return v != 0.0 ? "true" : "false";
      case FieldType::UInt: {
        char buf[32];
        const auto r = std::to_chars(buf, buf + sizeof(buf),
                                     static_cast<u64>(v));
        return std::string(buf, r.ptr);
      }
      case FieldType::F64: {
        // Shortest representation that round-trips bit-exactly.
        char buf[64];
        const auto r = std::to_chars(buf, buf + sizeof(buf), v);
        return std::string(buf, r.ptr);
      }
    }
    return {};
}

const std::vector<FieldDesc> &
coreConfigFields()
{
    static const std::vector<FieldDesc> table = buildTable();
    return table;
}

const FieldDesc *
findField(const std::string &name)
{
    for (const FieldDesc &f : coreConfigFields())
        if (name == f.name)
            return &f;
    return nullptr;
}

const std::vector<std::string> &
fieldNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> out;
        for (const FieldDesc &f : coreConfigFields())
            out.push_back(f.name);
        return out;
    }();
    return names;
}

void
checkFieldValue(const FieldDesc &field, double value,
                const std::string &context)
{
    if (!std::isfinite(value))
        NWSIM_FATAL(context, "field \"", field.name,
                    "\" must be finite");
    switch (field.type) {
      case FieldType::Bool:
        if (value != 0.0 && value != 1.0)
            NWSIM_FATAL(context, "field \"", field.name,
                        "\" is a boolean (true/false)");
        return;
      case FieldType::UInt:
        if (value != std::floor(value))
            NWSIM_FATAL(context, "field \"", field.name,
                        "\" must be an integer, got ", value);
        [[fallthrough]];
      case FieldType::F64:
        if (value < field.minValue || value > field.maxValue)
            NWSIM_FATAL(context, "field \"", field.name, "\" = ", value,
                        " is outside [", field.minValue, ", ",
                        field.maxValue, "]");
        return;
    }
}

std::string
dumpMachineSection(const CoreConfig &cfg)
{
    std::string out = "[machine]\n";
    for (const FieldDesc &f : coreConfigFields()) {
        out += f.name;
        out += " = ";
        out += f.valueText(cfg);
        out += "\n";
    }
    return out;
}

std::vector<FieldDiff>
diffConfigs(const CoreConfig &a, const CoreConfig &b)
{
    std::vector<FieldDiff> diffs;
    for (const FieldDesc &f : coreConfigFields()) {
        const std::string va = f.valueText(a);
        const std::string vb = f.valueText(b);
        if (va != vb)
            diffs.push_back({&f, va, vb});
    }
    return diffs;
}

bool
sameConfig(const CoreConfig &a, const CoreConfig &b)
{
    return diffConfigs(a, b).empty();
}

} // namespace nwsim::cfg
