/**
 * @file
 * Declarative field-descriptor table for the full CoreConfig surface.
 *
 * Every machine parameter the simulator exposes is one row: dotted name
 * (matching the C++ member path, e.g. `mem.l1d.sizeBytes`), type,
 * default, range, and doc string. The table is the single definition
 * behind config-file binding (cfg/loader.hh), validation, canonical
 * serialization (`nwsim config dump`), field-level diffing
 * (`nwsim config diff`), and the auto-generated reference table in
 * docs/CONFIG.md (`nwsim config fields --markdown`).
 *
 * Values move through a uniform double carrier: every integer field's
 * range fits exactly in a double's 53-bit mantissa, booleans are 0/1,
 * and true doubles round-trip through the shortest-representation
 * formatter (fieldValueText), so parse -> dump -> parse is
 * bit-identical.
 */

#ifndef NWSIM_CFG_FIELDS_HH
#define NWSIM_CFG_FIELDS_HH

#include <string>
#include <vector>

#include "pipeline/config.hh"

namespace nwsim::cfg
{

enum class FieldType : u8
{
    UInt,   ///< unsigned / u64 integral field
    Bool,   ///< boolean field (true/false)
    F64,    ///< double field (power-model parameters)
};

/** One machine parameter. */
struct FieldDesc
{
    const char *name;       ///< dotted path, e.g. "mem.l1d.sizeBytes"
    FieldType type;
    double minValue;        ///< inclusive bound (UInt/F64)
    double maxValue;        ///< inclusive bound (UInt/F64)
    const char *doc;
    double (*get)(const CoreConfig &);
    void (*set)(CoreConfig &, double);

    /** Canonical text of this field's value in @p cfg. */
    std::string valueText(const CoreConfig &cfg) const;
};

/** The full table, in canonical (dump) order. */
const std::vector<FieldDesc> &coreConfigFields();

/** Row for @p name, or nullptr. */
const FieldDesc *findField(const std::string &name);

/** Every field name (did-you-mean candidate list). */
const std::vector<std::string> &fieldNames();

/**
 * Type/range-check @p value for @p field; on violation throws
 * BadInputError prefixed with @p context ("file:line: " or "").
 */
void checkFieldValue(const FieldDesc &field, double value,
                     const std::string &context);

/**
 * Canonical `[machine]` section for @p cfg: every field in table
 * order, `name = value` per line. parse(dump(x)) == x bit-identically.
 */
std::string dumpMachineSection(const CoreConfig &cfg);

/** One differing field between two configs. */
struct FieldDiff
{
    const FieldDesc *field;
    std::string a;
    std::string b;
};

/** Fields whose values differ, in table order. */
std::vector<FieldDiff> diffConfigs(const CoreConfig &a,
                                   const CoreConfig &b);

/** True when every field (== every simulated parameter) matches. */
bool sameConfig(const CoreConfig &a, const CoreConfig &b);

} // namespace nwsim::cfg

#endif // NWSIM_CFG_FIELDS_HH
