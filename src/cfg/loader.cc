#include "cfg/loader.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <set>

#include "cfg/fields.hh"
#include "cfg/wgen.hh"
#include "common/logging.hh"
#include "common/strings.hh"
#include "driver/presets.hh"
#include "workloads/workload.hh"

namespace nwsim::cfg
{

namespace fs = std::filesystem;

namespace
{

constexpr int maxInheritDepth = 16;

std::vector<std::string>
splitOn(const std::string &text, char sep)
{
    std::vector<std::string> parts;
    std::string cur;
    for (char c : text) {
        if (c == sep) {
            parts.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    parts.push_back(cur);
    return parts;
}

bool
allDigits(const std::string &text)
{
    return !text.empty() &&
           text.find_first_not_of("0123456789") == std::string::npos;
}

u64
parseU64(const std::string &text, const std::string &context,
         const std::string &what)
{
    if (!allDigits(text) || text.size() > 19)
        NWSIM_FATAL(context, what, " \"", text,
                    "\" must be a decimal integer");
    return std::strtoull(text.c_str(), nullptr, 10);
}

/** `sample=P:W:M[:rand[:seed]]` — the one sample-schedule parser every
 *  surface (spec modifier, [schedule] section) goes through. */
SampleOptions
parseSampleArg(const std::string &arg, const std::string &context)
{
    const std::vector<std::string> fields = splitOn(arg, ':');
    if (fields.size() < 3 || fields.size() > 5)
        NWSIM_FATAL(context, "malformed sample schedule \"", arg,
                    "\" (want period:warmup:measure[:rand[:seed]])");
    SampleOptions s;
    s.enabled = true;
    s.periodInsts = parseU64(fields[0], context, "sample period");
    s.warmupInsts = parseU64(fields[1], context, "sample warmup");
    s.measureInsts = parseU64(fields[2], context, "sample measure");
    if (fields.size() >= 4) {
        if (fields[3] != "rand")
            NWSIM_FATAL(context, "malformed sample schedule \"", arg,
                        "\" (4th field must be `rand`)");
        s.randomize = true;
        if (fields.size() == 5)
            s.seed = parseU64(fields[4], context, "sample seed");
    }
    return s;
}

u64
parseCkptArg(const std::string &arg, const std::string &context)
{
    const u64 every = parseU64(arg, context, "checkpoint cadence");
    if (every == 0)
        NWSIM_FATAL(context, "checkpoint cadence must be > 0 (omit the "
                             "modifier to disable checkpointing)");
    return every;
}

std::vector<PresetDef>
buildPresets()
{
    return {
        {"baseline", "paper Table 1 machine (4-issue, 4 ALUs)",
         +[] { return presets::baseline(); }},
        {"packing", "baseline + strict operation packing (Section 5.2)",
         +[] { return presets::packing(/*replay=*/false); }},
        {"packing-replay",
         "baseline + speculative replay packing (Section 5.3)",
         +[] { return presets::packing(/*replay=*/true); }},
        {"issue8", "Figure 11's costly 8-issue/8-ALU comparison machine",
         +[] { return presets::issue8(); }},
    };
}

std::vector<ModifierDef>
buildModifiers()
{
    return {
        {"decode8", "decode8", false,
         "widen fetch/decode to 8 (Section 5.4)",
         +[](const std::string &, const std::string &,
             MachineSpec &out) {
             out.config = presets::decode8(out.config);
         }},
        {"perfect", "perfect", false,
         "perfect branch prediction (oracle fetch)",
         +[](const std::string &, const std::string &,
             MachineSpec &out) { out.config.perfectBPred = true; }},
        {"earlyout", "earlyout", false,
         "PPC603-style early-out multiplies (Section 2.3)",
         +[](const std::string &, const std::string &,
             MachineSpec &out) { out.config.earlyOutMultiply = true; }},
        {"nogate33", "nogate33", false,
         "disable the 33-bit gating signal (Figure 6)",
         +[](const std::string &, const std::string &,
             MachineSpec &out) { out.config.gating.gate33 = false; }},
        {"nodecodecache", "nodecodecache", false,
         "bypass the decode caches (sim-speed A/B; same stats; needed "
         "for self-modifying code)",
         +[](const std::string &, const std::string &,
             MachineSpec &out) { out.config.decodeCache = false; }},
        {"notrace", "notrace", false,
         "keep the decode cache but disable superblock traces in "
         "fastForward (sim-speed A/B; same stats)",
         +[](const std::string &, const std::string &,
             MachineSpec &out) {
             out.config.superblockTraces = false;
         }},
        {"sample=P:W:M", "sample", true,
         "SMARTS sampling: detailed W-warmup/M-measure probe every P "
         "insts (+`:rand[:seed]` randomizes the probe offset)",
         +[](const std::string &arg, const std::string &context,
             MachineSpec &out) {
             out.sample = parseSampleArg(arg, context);
         }},
        {"ckpt=N", "ckpt", true,
         "checkpoint machine state every N retired insts "
         "(docs/CHECKPOINT.md); part of the run's semantics — detailed "
         "runs drain the pipeline at every cadence boundary",
         +[](const std::string &arg, const std::string &context,
             MachineSpec &out) {
             out.ckptEvery = parseCkptArg(arg, context);
         }},
    };
}

const PresetDef *
findPreset(const std::string &name)
{
    for (const PresetDef &p : presetRegistry())
        if (name == p.name)
            return &p;
    return nullptr;
}

const ModifierDef *
findModifier(const std::string &token)
{
    for (const ModifierDef &m : modifierRegistry())
        if (token == m.token)
            return &m;
    return nullptr;
}

std::vector<std::string>
presetNames()
{
    std::vector<std::string> names;
    for (const PresetDef &p : presetRegistry())
        names.push_back(p.name);
    return names;
}

std::vector<std::string>
modifierTokens()
{
    std::vector<std::string> names;
    for (const ModifierDef &m : modifierRegistry())
        names.push_back(m.token);
    return names;
}

/** Locate a config file: as given, then $NWSIM_CONFIG_PATH entries,
 *  then the shipped configs/ directory. */
std::string
resolveConfigPath(const std::string &path, const std::string &context)
{
    std::error_code ec;
    if (fs::exists(path, ec))
        return path;
    if (!fs::path(path).is_absolute()) {
        if (const char *env = std::getenv("NWSIM_CONFIG_PATH")) {
            for (const std::string &dir : tokenize(env, ":")) {
                const std::string candidate =
                    (fs::path(dir) / path).string();
                if (fs::exists(candidate, ec))
                    return candidate;
            }
        }
        const std::string shipped =
            (fs::path("configs") / path).string();
        if (fs::exists(shipped, ec))
            return shipped;
    }
    NWSIM_FATAL(context, "config file \"", path,
                "\" not found (searched ., $NWSIM_CONFIG_PATH, "
                "configs/)");
}

void bindMachineFile(const std::string &path, MachineSpec &out,
                     std::set<std::string> &visited, int depth);

/** Apply an `inherit = "<preset|file.cfg>"` chain link. */
void
applyInherit(const ConfigFile &file, const CfgEntry &entry,
             MachineSpec &out, std::set<std::string> &visited,
             int depth)
{
    const std::string &base = entry.value.text;
    const std::string context = entryContext(file, entry);
    if (depth > maxInheritDepth)
        NWSIM_FATAL(context, "inherit chain deeper than ",
                    maxInheritDepth, " (cycle?)");
    if (const PresetDef *preset = findPreset(base)) {
        out.config = preset->make();
        return;
    }
    if (!looksLikeConfigFile(base)) {
        std::string msg = "unknown inherit base \"" + base +
                          "\" (want a preset or a .cfg file)";
        const std::string hint = closestName(base, presetNames());
        if (!hint.empty())
            msg += " — did you mean \"" + hint + "\"?";
        NWSIM_FATAL(context, msg);
    }
    // Relative inherit paths resolve against the inheriting file first.
    std::string target = base;
    if (!fs::path(base).is_absolute()) {
        const fs::path sibling = fs::path(file.path).parent_path() / base;
        std::error_code ec;
        if (fs::exists(sibling, ec))
            target = sibling.string();
    }
    bindMachineFile(resolveConfigPath(target, context), out, visited,
                    depth + 1);
}

void
bindScheduleSection(const ConfigFile &file, const CfgSection &section,
                    MachineSpec &out)
{
    static const std::vector<std::string> keys = {"sample", "ckpt"};
    for (const CfgEntry &entry : section.entries) {
        const std::string context = entryContext(file, entry);
        if (entry.key == "sample") {
            out.sample = parseSampleArg(entry.value.text, context);
        } else if (entry.key == "ckpt") {
            const double v = entryNumber(file, entry);
            if (v != std::floor(v) || v < 1)
                NWSIM_FATAL(context,
                            "ckpt cadence must be a positive integer");
            out.ckptEvery = static_cast<u64>(v);
        } else {
            std::string msg = "unknown [schedule] key \"" + entry.key +
                              "\"";
            const std::string hint = closestName(entry.key, keys);
            if (!hint.empty())
                msg += " — did you mean \"" + hint + "\"?";
            NWSIM_FATAL(context, msg);
        }
    }
}

/** Section kinds a machine/sweep config file may contain. */
void
checkSectionKinds(const ConfigFile &file)
{
    static const std::vector<std::string> kinds = {
        "machine", "schedule", "workload", "sweep"};
    for (const CfgSection &s : file.sections) {
        if (s.kind.empty() ||
            std::find(kinds.begin(), kinds.end(), s.kind) != kinds.end())
            continue;
        std::string msg = "unknown section [" + s.kind + "]";
        const std::string hint = closestName(s.kind, kinds);
        if (!hint.empty())
            msg += " — did you mean [" + hint + "]?";
        NWSIM_FATAL(file.path, ":", s.line, ": ", msg);
    }
}

void
bindMachineFile(const std::string &path, MachineSpec &out,
                std::set<std::string> &visited, int depth)
{
    std::error_code ec;
    std::string canonical = fs::weakly_canonical(path, ec).string();
    if (ec)
        canonical = path;
    if (!visited.insert(canonical).second)
        NWSIM_FATAL("config file \"", path,
                    "\" inherits from itself (cycle)");

    const ConfigFile file = parseConfigFile(path);
    checkSectionKinds(file);
    const CfgSection *machine = file.section("machine");
    if (!machine)
        NWSIM_FATAL(file.path, ": no [machine] section");

    // `inherit` applies first regardless of position, then every other
    // key in file order overrides the inherited base.
    if (const CfgEntry *inherit = machine->find("inherit"))
        applyInherit(file, *inherit, out, visited, depth);

    for (const CfgEntry &entry : machine->entries) {
        if (entry.key == "inherit")
            continue;
        const std::string context = entryContext(file, entry);
        const FieldDesc *field = findField(entry.key);
        if (!field) {
            std::string msg =
                "unknown machine field \"" + entry.key + "\"";
            std::vector<std::string> known = fieldNames();
            known.push_back("inherit");
            const std::string hint = closestName(entry.key, known);
            if (!hint.empty())
                msg += " — did you mean \"" + hint + "\"?";
            NWSIM_FATAL(context, msg);
        }
        const double value = field->type == FieldType::Bool
                                 ? (entryBool(file, entry) ? 1.0 : 0.0)
                                 : entryNumber(file, entry);
        checkFieldValue(*field, value, context);
        field->set(out.config, value);
    }

    if (const CfgSection *schedule = file.section("schedule"))
        bindScheduleSection(file, *schedule, out);
}

bool
isPow2(u64 x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

void
checkCacheGeometry(const CacheConfig &c, const std::string &context)
{
    if (!isPow2(c.blockBytes))
        NWSIM_FATAL(context, "mem.", c.name,
                    ".blockBytes = ", c.blockBytes,
                    " must be a power of two");
    const u64 setBytes = static_cast<u64>(c.assoc) * c.blockBytes;
    if (c.sizeBytes % setBytes != 0 || !isPow2(c.sizeBytes / setBytes))
        NWSIM_FATAL(context, "mem.", c.name, ": sizeBytes/assoc/"
                    "blockBytes must yield a power-of-two set count "
                    "(got ", c.sizeBytes, "/", c.assoc, "/",
                    c.blockBytes, ")");
}

} // namespace

const std::vector<PresetDef> &
presetRegistry()
{
    static const std::vector<PresetDef> presets = buildPresets();
    return presets;
}

const std::vector<ModifierDef> &
modifierRegistry()
{
    static const std::vector<ModifierDef> modifiers = buildModifiers();
    return modifiers;
}

std::string
specGrammarHelp()
{
    std::string out = "bases: ";
    bool first = true;
    for (const PresetDef &p : presetRegistry()) {
        if (!first)
            out += ", ";
        first = false;
        out += p.name;
    }
    out += ", or a .cfg file; modifiers: ";
    first = true;
    for (const ModifierDef &m : modifierRegistry()) {
        if (!first)
            out += ", ";
        first = false;
        out += "+";
        out += m.display;
    }
    return out;
}

bool
looksLikeConfigFile(const std::string &base)
{
    return base.size() > 4 &&
           base.compare(base.size() - 4, 4, ".cfg") == 0;
}

void
validateConfig(const CoreConfig &cfg, const std::string &context)
{
    checkCacheGeometry(cfg.mem.l1i, context);
    checkCacheGeometry(cfg.mem.l1d, context);
    checkCacheGeometry(cfg.mem.l2, context);
    const BPredConfig &b = cfg.bpred;
    if (b.btbEntries % b.btbAssoc != 0 ||
        !isPow2(b.btbEntries / b.btbAssoc))
        NWSIM_FATAL(context, "bpred.btbEntries/btbAssoc must yield a "
                    "power-of-two set count (got ", b.btbEntries, "/",
                    b.btbAssoc, ")");
}

MachineSpec
resolveMachineSpec(const std::string &spec)
{
    const std::vector<std::string> parts = splitOn(spec, '+');
    const std::string &base = parts[0];
    const std::string context = "config spec \"" + spec + "\": ";

    MachineSpec out;
    out.spec = spec;
    bool fromFile = false;
    if (const PresetDef *preset = findPreset(base)) {
        out.config = preset->make();
    } else if (looksLikeConfigFile(base)) {
        std::set<std::string> visited;
        bindMachineFile(resolveConfigPath(base, context), out, visited,
                        0);
        fromFile = true;
    } else {
        std::string msg = "unknown config spec \"" + spec + "\" (" +
                          specGrammarHelp() + ")";
        const std::string hint = closestName(base, presetNames());
        if (!hint.empty())
            msg += " — did you mean \"" + hint + "\"?";
        NWSIM_FATAL(msg);
    }

    for (size_t i = 1; i < parts.size(); ++i) {
        const std::string &mod = parts[i];
        const size_t eq = mod.find('=');
        const std::string token =
            eq == std::string::npos ? mod : mod.substr(0, eq);
        const ModifierDef *def = findModifier(token);
        if (!def) {
            std::string msg = "unknown modifier \"+" + mod + "\" (" +
                              specGrammarHelp() + ")";
            const std::string hint =
                closestName(token, modifierTokens());
            if (!hint.empty())
                msg += " — did you mean \"+" + hint + "\"?";
            NWSIM_FATAL(context, msg);
        }
        if (def->takesArg != (eq != std::string::npos))
            NWSIM_FATAL(context, "modifier \"+", mod, "\" ",
                        def->takesArg ? "needs an argument (+"
                                      : "takes no argument (+",
                        def->display, ")");
        const std::string arg =
            eq == std::string::npos ? "" : mod.substr(eq + 1);
        def->apply(arg, context, out);
    }

    validateConfig(out.config, context);
    if (fromFile)
        out.configText = canonicalMachineDump(out);
    return out;
}

bool
tryResolveMachineSpec(const std::string &spec, MachineSpec *out,
                      std::string *err)
{
    try {
        MachineSpec resolved = resolveMachineSpec(spec);
        if (out)
            *out = std::move(resolved);
        return true;
    } catch (const std::exception &e) {
        if (err)
            *err = e.what();
        return false;
    }
}

std::string
formatSampleSpec(const SampleOptions &sample)
{
    std::string out = std::to_string(sample.periodInsts) + ":" +
                      std::to_string(sample.warmupInsts) + ":" +
                      std::to_string(sample.measureInsts);
    if (sample.randomize) {
        out += ":rand";
        if (sample.seed != 0)
            out += ":" + std::to_string(sample.seed);
    }
    return out;
}

std::string
canonicalMachineDump(const MachineSpec &spec)
{
    std::string out = "# nwsim machine config (grammar v" +
                      std::to_string(kGrammarVersion) + ")\n";
    if (!spec.spec.empty())
        out += "# resolved from: " + spec.spec + "\n";
    out += dumpMachineSection(spec.config);
    if (spec.sample.enabled || spec.ckptEvery != 0) {
        out += "[schedule]\n";
        if (spec.sample.enabled)
            out += "sample = \"" + formatSampleSpec(spec.sample) +
                   "\"\n";
        if (spec.ckptEvery != 0)
            out += "ckpt = " + std::to_string(spec.ckptEvery) + "\n";
    }
    return out;
}

std::vector<std::string>
discoverConfigFiles(const std::string &dir)
{
    std::vector<std::string> files;
    std::error_code ec;
    for (const auto &entry : fs::directory_iterator(dir, ec)) {
        if (entry.is_regular_file(ec) &&
            entry.path().extension() == ".cfg")
            files.push_back(entry.path().string());
    }
    std::sort(files.begin(), files.end());
    return files;
}

// ---- workloads ----------------------------------------------------

namespace
{

const Workload *
findBuiltinWorkload(const std::string &name)
{
    for (const Workload &w : allWorkloads())
        if (w.name == name)
            return &w;
    return nullptr;
}

std::vector<std::string>
builtinWorkloadNames()
{
    std::vector<std::string> names;
    for (const Workload &w : allWorkloads())
        names.push_back(w.name);
    return names;
}

} // namespace

bool
isKnownWorkloadName(const std::string &name)
{
    if (findBuiltinWorkload(name))
        return true;
    if (isWgenSpec(name)) {
        try {
            parseWgenSpec(name);
            return true;
        } catch (const std::exception &) {
            return false;
        }
    }
    return false;
}

Program
workloadProgram(const std::string &name)
{
    if (const Workload *w = findBuiltinWorkload(name))
        return w->program();
    if (isWgenSpec(name))
        return wgenProgram(parseWgenSpec(name));
    std::string msg = "unknown workload \"" + name + "\"";
    const std::string hint = closestName(name, builtinWorkloadNames());
    if (!hint.empty())
        msg += " — did you mean \"" + hint + "\"?";
    msg += " (compiled-in names via `nwsim list`, or a generated "
           "wgen:key=value,... spec)";
    NWSIM_FATAL(msg);
}

std::string
generatedWorkloadText(const std::string &name)
{
    if (!isWgenSpec(name))
        return "";
    return wgenProgramText(parseWgenSpec(name));
}

// ---- sweep files ---------------------------------------------------

namespace
{

/** Collect `key` / `key[i]` list entries in file order, splitting
 *  unquoted values on commas. */
std::vector<const CfgEntry *>
listEntries(const CfgSection &section, const std::string &key)
{
    std::vector<const CfgEntry *> out;
    for (const CfgEntry &entry : section.entries) {
        if (entry.key == key ||
            (startsWith(entry.key, key + "[") &&
             entry.key.back() == ']'))
            out.push_back(&entry);
    }
    return out;
}

std::vector<std::string>
expandList(const std::vector<const CfgEntry *> &entries)
{
    std::vector<std::string> out;
    for (const CfgEntry *entry : entries) {
        if (entry->value.quoted) {
            out.push_back(trim(entry->value.text));
        } else {
            for (const std::string &item :
                 tokenize(entry->value.text, ","))
                out.push_back(trim(item));
        }
    }
    return out;
}

} // namespace

SweepPlan
loadSweepFile(const std::string &path)
{
    const std::string resolved =
        resolveConfigPath(path, "sweep file: ");
    const ConfigFile file = parseConfigFile(resolved);
    checkSectionKinds(file);
    const CfgSection *sweep = file.section("sweep");
    if (!sweep)
        NWSIM_FATAL(file.path, ": no [sweep] section");

    SweepPlan plan;
    const fs::path dir = fs::path(resolved).parent_path();

    for (const std::string &machine :
         expandList(listEntries(*sweep, "machines"))) {
        // Relative .cfg machine entries resolve against the sweep
        // file's own directory first.
        std::string spec = machine;
        const std::string base = splitOn(machine, '+')[0];
        if (looksLikeConfigFile(base) &&
            !fs::path(base).is_absolute()) {
            std::error_code ec;
            if (fs::exists(dir / base, ec))
                spec = (dir / base).string() + machine.substr(base.size());
        }
        plan.machines.push_back(spec);
    }

    for (const std::string &name :
         expandList(listEntries(*sweep, "workloads"))) {
        if (findBuiltinWorkload(name)) {
            plan.workloads.push_back({name, ""});
            continue;
        }
        if (isWgenSpec(name)) {
            plan.workloads.push_back(
                {name, wgenProgramText(parseWgenSpec(name))});
            continue;
        }
        if (const CfgSection *section = file.section("workload", name)) {
            plan.workloads.push_back(
                {name, wgenProgramText(wgenFromSection(file, *section))});
            continue;
        }
        std::vector<std::string> known = builtinWorkloadNames();
        for (const CfgSection *s : file.sectionsOf("workload"))
            known.push_back(s->name);
        std::string msg = file.path + ": unknown sweep workload \"" +
                          name + "\"";
        const std::string hint = closestName(name, known);
        if (!hint.empty())
            msg += " — did you mean \"" + hint + "\"?";
        NWSIM_FATAL(msg);
    }

    if (plan.machines.empty())
        NWSIM_FATAL(file.path, ": [sweep] has no machines");
    if (plan.workloads.empty())
        NWSIM_FATAL(file.path, ": [sweep] has no workloads");
    return plan;
}

} // namespace nwsim::cfg
