/**
 * @file
 * nwfuzz engine: seeded random-program generation biased toward
 * narrow-width and carry-boundary operands, a config-matrix runner
 * that executes every case under the cosim oracle and the invariant
 * checker, and a deterministic shrinker that reduces a failing case to
 * a minimal reproducer.
 *
 * A case is an opcode-level IR (a loop harness around a list of body
 * ops) chosen so that *any* subsequence of body ops is still a valid,
 * terminating program — that property is what makes greedy chunk
 * removal a sound shrinking strategy. Cases materialize through the
 * text assembler, so a shrunk reproducer can be written to disk as a
 * `.s` file and replayed with `nwsim run repro.s --check`.
 */

#ifndef NWSIM_CHECK_FUZZ_HH
#define NWSIM_CHECK_FUZZ_HH

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "check/session.hh"

namespace nwsim
{

/** What one body op does (materialization is kind-driven). */
enum class FuzzOpKind : u8
{
    LoadConst,      ///< li rc, boundary-biased 64-bit constant
    Alu,            ///< R-type op rc, ra, rb
    AluImm,         ///< I-type op rc, ra, imm
    Load,           ///< load rc, imm(r16) inside the data blob
    Store,          ///< store ra, imm(r16) inside the data blob
    BranchSkip,     ///< conditional forward branch over `skip` body ops
};

/** One body op of a fuzz case. */
struct FuzzOp
{
    FuzzOpKind kind = FuzzOpKind::Alu;
    Opcode op = Opcode::ADD;
    RegIndex rc = 1;
    RegIndex ra = 1;
    RegIndex rb = 1;
    i64 imm = 0;
    /** BranchSkip: body ops jumped over (clamped at materialization). */
    unsigned skip = 1;
    /**
     * Injected-fault site: the core-view materialization perturbs this
     * op (imm ^= 1 / offset ^= 8) while the golden view keeps it — a
     * drill for the oracle's catch-and-shrink loop.
     */
    bool faulty = false;
};

/** Generation knobs. */
struct FuzzParams
{
    unsigned numOps = 48;
    unsigned iterations = 6;
};

/** A generated (or shrunk) test case. */
struct FuzzCase
{
    u64 seed = 0;
    unsigned iterations = 6;
    std::vector<FuzzOp> ops;
};

/** Deterministically generate a case from @p seed. */
FuzzCase generateFuzzCase(u64 seed, const FuzzParams &params = {});

/**
 * Mark one unconditionally-executed LoadConst/AluImm/Load op as the
 * injected-fault site (appending one if necessary), so the fault is
 * guaranteed to reach commit. @return the chosen body-op index.
 */
size_t markInjectedFault(FuzzCase &fc, u64 fault_seed);

/** True if some op carries the injected-fault mark. */
bool fuzzCaseHasFault(const FuzzCase &fc);

/**
 * Render the case as text assembly (the reproducer format). The core
 * view applies injected-fault perturbations; the golden view never
 * does. Identical when no op is marked faulty.
 */
std::string fuzzProgramText(const FuzzCase &fc, bool core_view);

/** Assemble the case (through the text assembler, like a replay). */
Program materializeFuzzCase(const FuzzCase &fc, bool core_view = false);

/** Instructions in the materialized golden-view program. */
u64 fuzzCaseInstCount(const FuzzCase &fc);

/** One cell of the config matrix. */
struct FuzzConfig
{
    std::string name;
    CoreConfig config;
};

/**
 * The full matrix the acceptance gate sweeps: baseline / gating /
 * packing / packing-replay, each at decode4 and decode8.
 */
std::vector<FuzzConfig> fuzzConfigMatrix();

/** First failure of a case across the matrix. */
struct FuzzFailure
{
    std::string configName;
    std::string report;
};

/**
 * Run @p fc on every matrix config under a full CheckSession (cosim +
 * invariants + final-state compare). @return the first failure, or
 * nullopt if every config ran clean.
 */
std::optional<FuzzFailure> runFuzzCase(
    const FuzzCase &fc, const std::vector<FuzzConfig> &matrix);

/** Shrink result. */
struct ShrinkOutcome
{
    FuzzCase minimized;
    FuzzFailure failure;
    /** Candidate runs tried during shrinking. */
    unsigned attempts = 0;
};

/**
 * Greedily minimize a failing case: iterations first, then chunked op
 * removal to a fixed point, then immediate simplification — re-running
 * the matrix after each candidate edit. Deterministic.
 */
ShrinkOutcome shrinkFuzzCase(const FuzzCase &failing,
                             const std::vector<FuzzConfig> &matrix);

/** Result of line-level ddmin over a failing `.s` reproducer. */
struct AsmShrinkOutcome
{
    /** Minimized source (== input when nothing could be removed). */
    std::string minimizedText;
    size_t originalLines = 0;
    size_t minimizedLines = 0;
    /** Predicate runs spent (the first one re-proves the input fails). */
    unsigned attempts = 0;
    /** False if the input itself passed the predicate: nothing shrunk. */
    bool reproduced = false;
};

/**
 * Line-level counterpart of shrinkFuzzCase for reproducers that exist
 * only as assembly text (campaign crash bundles, docs/ROBUSTNESS.md):
 * greedily drop chunks of lines, halving the chunk size to a fixed
 * point ddmin-style, keeping each candidate @p still_fails accepts.
 * The predicate owns re-assembly and re-execution — a candidate that
 * no longer assembles, runs clean, or fails differently must return
 * false. Never proposes the empty program. Deterministic; gives up
 * after @p max_attempts predicate runs so shrinking can never stall
 * the campaign that triggered it.
 */
AsmShrinkOutcome shrinkAsmLines(
    const std::string &asm_text,
    const std::function<bool(const std::string &)> &still_fails,
    unsigned max_attempts = 200);

} // namespace nwsim

#endif // NWSIM_CHECK_FUZZ_HH
