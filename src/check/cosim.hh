/**
 * @file
 * Lockstep cosimulation oracle.
 *
 * Advances a private functional simulator (src/func) one instruction
 * per pipeline commit and compares PC, instruction, destination value,
 * next-PC, and memory effect — so a bug in the out-of-order model is
 * diagnosed at the *first* diverging commit, with both sides' views,
 * instead of as an opaque end-of-run register diff. This is the
 * commit-stream checking every later performance PR runs under (see
 * docs/CHECKING.md).
 */

#ifndef NWSIM_CHECK_COSIM_HH
#define NWSIM_CHECK_COSIM_HH

#include <memory>
#include <string>

#include "asm/program.hh"
#include "func/func_sim.hh"
#include "pipeline/core.hh"

namespace nwsim
{

/** What the first divergence disagreed on. */
enum class DivergenceKind : u8
{
    None,           ///< lockstep held
    ExtraCommit,    ///< pipeline committed past the golden HALT
    Pc,             ///< committed PC != golden PC
    Instruction,    ///< same PC, different decoded instruction
    NextPc,         ///< control transfer resolved to the wrong target
    DestValue,      ///< destination register value mismatch
    MemAddr,        ///< load/store effective address mismatch
    MemData,        ///< store wrote different data
    FinalState,     ///< end-of-run architected register mismatch
};

/** Printable name of a divergence kind. */
const char *divergenceKindName(DivergenceKind kind);

/** Everything known about the first divergence, for the report. */
struct Divergence
{
    DivergenceKind kind = DivergenceKind::None;
    /** 1-based index in the checked commit stream. */
    u64 commitIndex = 0;
    Addr pipelinePc = 0;
    Addr goldenPc = 0;
    Inst pipelineInst;
    Inst goldenInst;
    u64 pipelineValue = 0;
    u64 goldenValue = 0;
    /** One-line human summary of the mismatched field. */
    std::string detail;
};

/** Multi-line report: what diverged, where, and both sides' views. */
std::string formatDivergence(const Divergence &divergence);

/**
 * The oracle itself: attach to a core (directly or via CheckSession)
 * and it steps its own FuncSim over a private memory snapshot once per
 * onCommit. After the first divergence it stops checking (and asks the
 * core to stop running) so the report stays pinned to the root cause.
 */
class CosimOracle : public CoreObserver
{
  public:
    /**
     * @param golden The program the architecture is expected to run —
     *               normally the same image the core executes (the
     *               fuzzer passes the unmutated image when drilling
     *               fault injection).
     * @param use_decode_cache Step the golden model through the
     *               basic-block decode cache (match the checked core's
     *               CoreConfig::decodeCache so `+nodecodecache` runs
     *               exercise the plain interpreter end to end).
     */
    explicit CosimOracle(const Program &golden,
                         bool use_decode_cache = true);

    /**
     * Advance the golden model @p insts instructions without checking,
     * mirroring OutOfOrderCore::fastForward() warmup (pass its return
     * value so the two stay in lockstep).
     */
    void catchUp(u64 insts);

    void onCommit(const RuuEntry &e) override;
    bool stopRequested() const override { return diverged(); }

    /**
     * After the pipeline halts, compare every architected register
     * against the golden model. @return true if all match (records a
     * FinalState divergence otherwise).
     */
    bool verifyFinalState(const OutOfOrderCore &core);

    bool diverged() const { return div.kind != DivergenceKind::None; }
    const Divergence &divergence() const { return div; }
    u64 commitsChecked() const { return commits; }
    const FuncSim &golden() const { return *func; }
    std::string report() const { return formatDivergence(div); }

  private:
    void record(DivergenceKind kind, const RuuEntry &e,
                const FuncStep &g, u64 pipeline_value, u64 golden_value,
                std::string detail);

    std::unique_ptr<SparseMemory> mem;
    std::unique_ptr<FuncSim> func;
    Divergence div;
    u64 commits = 0;
};

} // namespace nwsim

#endif // NWSIM_CHECK_COSIM_HH
