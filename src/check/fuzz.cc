#include "check/fuzz.hh"

#include <algorithm>
#include <sstream>

#include "asm/layout.hh"
#include "asm/textasm.hh"
#include "common/rng.hh"
#include "driver/presets.hh"

namespace nwsim
{

namespace
{

/** Working registers the body ops read and write (r16/r17 are the
 *  harness's blob pointer and loop counter; r31 is the zero reg). */
constexpr RegIndex firstWorkReg = 1;
constexpr unsigned numWorkRegs = 12;

/** Size of the data blob loads and stores address. */
constexpr unsigned blobBytes = 512;

RegIndex
workReg(SplitMix64 &rng)
{
    return static_cast<RegIndex>(firstWorkReg + rng.below(numWorkRegs));
}

/**
 * A 64-bit constant biased toward the paper's interesting widths: most
 * draws are narrow16 (zero48 or ones48), and many sit within a couple
 * of ULPs of the bit-15/16, 31/32/33, and 47/48 boundaries where
 * packing legality and replay carry traps flip.
 */
i64
boundaryConstant(SplitMix64 &rng)
{
    const i64 jitter = rng.range(-2, 2);
    switch (rng.below(10)) {
      case 0:
        return rng.range(0, 0xff);                // tiny positive
      case 1:
        return rng.range(-0xff, -1);              // tiny negative (ones48)
      case 2:
        return 0x7fff + jitter;                   // bit-15 carry boundary
      case 3:
        return 0xffff + jitter;                   // bit-16 carry boundary
      case 4:
        return -0x8000 + jitter;                  // narrow16 lower edge
      case 5:
        return (i64{1} << 31) + jitter;           // bit-31/32 boundary
      case 6:
        return (i64{1} << 33) + jitter;           // just past narrow33
      case 7:
        return (i64{1} << 47) + jitter;           // bit-47/48 boundary
      case 8:
        return static_cast<i64>(layout::dataBase) +
               rng.range(0, blobBytes - 8);       // 33-bit pointer-like
      default:
        return static_cast<i64>(rng.next());      // wide random
    }
}

/** I-type immediate within the encoder's range for @p op. */
i64
immediateFor(Opcode op, SplitMix64 &rng)
{
    switch (op) {
      case Opcode::SLLI:
      case Opcode::SRLI:
      case Opcode::SRAI:
        return rng.range(0, 63);
      default:
        break;
    }
    if (immZeroExtends(op)) {
        // Bias toward the masks and boundaries gating cares about.
        switch (rng.below(4)) {
          case 0:
            return 0xffff;
          case 1:
            return 0x7fff + rng.range(-2, 2);
          case 2:
            return rng.range(0, 0xff);
          default:
            return rng.range(0, 0xffff);
        }
    }
    switch (rng.below(4)) {
      case 0:
        return rng.range(-4, 4);
      case 1:
        return 0x7fff - rng.range(0, 2);          // push sums across bit 15
      case 2:
        return -0x8000 + rng.range(0, 2);
      default:
        return rng.range(-0x8000, 0x7fff);
    }
}

constexpr Opcode aluPool[] = {
    Opcode::ADD,   Opcode::ADD,   Opcode::ADD,   Opcode::SUB,
    Opcode::SUB,   Opcode::SUB,   Opcode::MUL,   Opcode::DIV,
    Opcode::REM,   Opcode::AND,   Opcode::OR,    Opcode::XOR,
    Opcode::BIC,   Opcode::SLL,   Opcode::SRL,   Opcode::SRA,
    Opcode::CMPEQ, Opcode::CMPLT, Opcode::CMPLE, Opcode::CMPULT,
    Opcode::CMPULE, Opcode::SEXTB, Opcode::SEXTW,
};

constexpr Opcode aluImmPool[] = {
    Opcode::ADDI,  Opcode::ADDI,  Opcode::SUBI,   Opcode::SUBI,
    Opcode::MULI,  Opcode::ANDI,  Opcode::ORI,    Opcode::XORI,
    Opcode::SLLI,  Opcode::SRLI,  Opcode::SRAI,   Opcode::CMPEQI,
    Opcode::CMPLTI, Opcode::CMPLEI, Opcode::LDAH,
};

constexpr Opcode loadPool[] = {Opcode::LDQ, Opcode::LDQ, Opcode::LDL,
                               Opcode::LDWU, Opcode::LDBU};

constexpr Opcode storePool[] = {Opcode::STQ, Opcode::STQ, Opcode::STL,
                                Opcode::STW, Opcode::STB};

constexpr Opcode branchPool[] = {Opcode::BEQ, Opcode::BNE, Opcode::BLT,
                                 Opcode::BGE, Opcode::BLE, Opcode::BGT};

template <size_t N>
Opcode
pick(const Opcode (&pool)[N], SplitMix64 &rng)
{
    return pool[rng.below(N)];
}

/** Blob offset aligned for @p op, never past the end. */
i64
blobOffset(Opcode op, SplitMix64 &rng)
{
    const unsigned size = memAccessSize(op);
    const unsigned slots = blobBytes / size;
    return static_cast<i64>(rng.below(slots) * size);
}

/** Effective skip of a BranchSkip at body index @p i (clamped). */
size_t
branchTarget(const FuzzCase &fc, size_t i)
{
    const size_t skip = std::clamp<size_t>(fc.ops[i].skip, 1, 3);
    return std::min(i + 1 + skip, fc.ops.size());
}

/** Body indices jumped over by some BranchSkip (may never execute). */
std::vector<bool>
coveredByBranch(const FuzzCase &fc)
{
    std::vector<bool> covered(fc.ops.size(), false);
    for (size_t i = 0; i < fc.ops.size(); ++i) {
        if (fc.ops[i].kind != FuzzOpKind::BranchSkip)
            continue;
        for (size_t j = i + 1; j < branchTarget(fc, i); ++j)
            covered[j] = true;
    }
    return covered;
}

/** The fault perturbation applied by the core-view materialization. */
i64
perturb(const FuzzOp &op)
{
    // Loads/stores flip an address bit that preserves alignment and
    // stays inside the blob; everything else flips the low imm bit
    // (stays in the encoder's range for every generated immediate).
    if (op.kind == FuzzOpKind::Load || op.kind == FuzzOpKind::Store)
        return op.imm ^ 8;
    return op.imm ^ 1;
}

void
emitOp(std::ostringstream &os, const FuzzOp &op, size_t index,
       bool core_view)
{
    const i64 imm =
        (core_view && op.faulty) ? perturb(op) : op.imm;
    os << "        ";
    switch (op.kind) {
      case FuzzOpKind::LoadConst:
        os << "li r" << unsigned{op.rc} << ", " << imm;
        break;
      case FuzzOpKind::Alu:
        os << mnemonic(op.op) << " r" << unsigned{op.rc} << ", r"
           << unsigned{op.ra};
        if (op.op != Opcode::SEXTB && op.op != Opcode::SEXTW)
            os << ", r" << unsigned{op.rb};
        break;
      case FuzzOpKind::AluImm:
        os << mnemonic(op.op) << " r" << unsigned{op.rc} << ", r"
           << unsigned{op.ra} << ", " << imm;
        break;
      case FuzzOpKind::Load:
        os << mnemonic(op.op) << " r" << unsigned{op.rc} << ", " << imm
           << "(r16)";
        break;
      case FuzzOpKind::Store:
        os << mnemonic(op.op) << " r" << unsigned{op.ra} << ", " << imm
           << "(r16)";
        break;
      case FuzzOpKind::BranchSkip:
        os << mnemonic(op.op) << " r" << unsigned{op.ra} << ", L"
           << index;
        break;
    }
    os << "\n";
}

} // namespace

FuzzCase
generateFuzzCase(u64 seed, const FuzzParams &params)
{
    FuzzCase fc;
    fc.seed = seed;
    fc.iterations = std::max(1u, params.iterations);
    SplitMix64 rng(seed ^ 0x6e77667a7a696e67ULL); // "nwfzzing"

    fc.ops.reserve(params.numOps);
    for (unsigned i = 0; i < params.numOps; ++i) {
        FuzzOp op;
        if (i < 6) {
            // Seed the working set with boundary-biased constants so
            // the very first ALU ops already see narrow operands.
            op.kind = FuzzOpKind::LoadConst;
            op.rc = static_cast<RegIndex>(firstWorkReg + i % numWorkRegs);
            op.imm = boundaryConstant(rng);
            fc.ops.push_back(op);
            continue;
        }
        const u64 roll = rng.below(100);
        if (roll < 35) {
            op.kind = FuzzOpKind::Alu;
            op.op = pick(aluPool, rng);
            op.rc = workReg(rng);
            op.ra = workReg(rng);
            op.rb = workReg(rng);
        } else if (roll < 60) {
            op.kind = FuzzOpKind::AluImm;
            op.op = pick(aluImmPool, rng);
            op.rc = workReg(rng);
            op.ra = workReg(rng);
            op.imm = immediateFor(op.op, rng);
        } else if (roll < 70) {
            op.kind = FuzzOpKind::LoadConst;
            op.rc = workReg(rng);
            op.imm = boundaryConstant(rng);
        } else if (roll < 80) {
            op.kind = FuzzOpKind::Load;
            op.op = pick(loadPool, rng);
            op.rc = workReg(rng);
            op.imm = blobOffset(op.op, rng);
        } else if (roll < 88) {
            op.kind = FuzzOpKind::Store;
            op.op = pick(storePool, rng);
            op.ra = workReg(rng);
            op.imm = blobOffset(op.op, rng);
        } else {
            op.kind = FuzzOpKind::BranchSkip;
            op.op = pick(branchPool, rng);
            op.ra = workReg(rng);
            op.skip = static_cast<unsigned>(rng.range(1, 3));
        }
        fc.ops.push_back(op);
    }
    return fc;
}

size_t
markInjectedFault(FuzzCase &fc, u64 fault_seed)
{
    SplitMix64 rng(fault_seed ^ 0x66617572747921ULL); // "faurty!"
    for (FuzzOp &op : fc.ops)
        op.faulty = false;

    // The fault site must commit on every run, so it cannot sit in a
    // region a BranchSkip may jump over. Append ops (outside every
    // cover, eventually) if no generated op qualifies.
    for (;;) {
        const std::vector<bool> covered = coveredByBranch(fc);
        std::vector<size_t> eligible;
        for (size_t i = 0; i < fc.ops.size(); ++i) {
            const FuzzOpKind k = fc.ops[i].kind;
            const bool perturbable = k == FuzzOpKind::LoadConst ||
                                     k == FuzzOpKind::AluImm ||
                                     k == FuzzOpKind::Load;
            if (perturbable && !covered[i])
                eligible.push_back(i);
        }
        if (!eligible.empty()) {
            const size_t site = eligible[rng.below(eligible.size())];
            fc.ops[site].faulty = true;
            return site;
        }
        FuzzOp filler;
        filler.kind = FuzzOpKind::LoadConst;
        filler.rc = workReg(rng);
        filler.imm = boundaryConstant(rng);
        fc.ops.push_back(filler);
    }
}

bool
fuzzCaseHasFault(const FuzzCase &fc)
{
    return std::any_of(fc.ops.begin(), fc.ops.end(),
                       [](const FuzzOp &op) { return op.faulty; });
}

std::string
fuzzProgramText(const FuzzCase &fc, bool core_view)
{
    std::ostringstream os;
    os << "; nwfuzz case seed=0x" << std::hex << fc.seed << std::dec
       << " iters=" << fc.iterations << " ops=" << fc.ops.size()
       << (core_view && fuzzCaseHasFault(fc) ? " (fault-injected view)"
                                             : "")
       << "\n";
    os << ".text\n";
    os << "        la r16, blob\n";
    os << "        li r17, " << fc.iterations << "\n";
    os << "loop:\n";

    // Forward-branch targets: labels bound just before the body op (or
    // loop epilogue) each BranchSkip lands on.
    const size_t n = fc.ops.size();
    std::vector<std::vector<size_t>> labelsAt(n + 1);
    for (size_t i = 0; i < n; ++i) {
        if (fc.ops[i].kind == FuzzOpKind::BranchSkip)
            labelsAt[branchTarget(fc, i)].push_back(i);
    }
    for (size_t i = 0; i <= n; ++i) {
        for (size_t branch : labelsAt[i])
            os << "L" << branch << ":\n";
        if (i < n)
            emitOp(os, fc.ops[i], i, core_view);
    }

    os << "        subi r17, r17, 1\n";
    os << "        bne r17, loop\n";
    os << "        halt\n";
    os << ".data\n";
    os << "blob:\n";
    SplitMix64 drng(fc.seed ^ 0x626c6f62626c6f62ULL); // "blobblob"
    for (unsigned q = 0; q < blobBytes / 8; ++q)
        os << "        .quad " << boundaryConstant(drng) << "\n";
    return os.str();
}

Program
materializeFuzzCase(const FuzzCase &fc, bool core_view)
{
    return assembleText(fuzzProgramText(fc, core_view));
}

u64
fuzzCaseInstCount(const FuzzCase &fc)
{
    const Program p = materializeFuzzCase(fc, false);
    return (p.textEnd() - layout::textBase) / 4;
}

std::vector<FuzzConfig>
fuzzConfigMatrix()
{
    CoreConfig base = presets::baseline();
    base.gating.enabled = false;

    const std::pair<const char *, CoreConfig> variants[] = {
        {"baseline", base},
        {"gating", presets::baseline()},
        {"packing", presets::packing(/*replay=*/false)},
        {"packing-replay", presets::packing(/*replay=*/true)},
    };
    std::vector<FuzzConfig> matrix;
    for (const auto &[name, cfg] : variants) {
        matrix.push_back({std::string(name) + "-d4", cfg});
        matrix.push_back({std::string(name) + "-d8",
                          presets::decode8(cfg)});
    }
    return matrix;
}

std::optional<FuzzFailure>
runFuzzCase(const FuzzCase &fc, const std::vector<FuzzConfig> &matrix)
{
    const Program golden = materializeFuzzCase(fc, /*core_view=*/false);
    const bool faulty = fuzzCaseHasFault(fc);
    const Program core_prog =
        faulty ? materializeFuzzCase(fc, /*core_view=*/true) : golden;

    // Bound every pipeline run by the golden instruction count (the
    // harness loop is counted, so this always halts).
    SparseMemory golden_mem;
    golden.load(golden_mem);
    FuncSim golden_sim(golden_mem, golden.entry);
    constexpr u64 stepCap = 4'000'000;
    golden_sim.run(stepCap);
    if (!golden_sim.halted())
        return FuzzFailure{"golden",
                           "golden model did not halt within bound"};
    const u64 commit_bound = golden_sim.instCount() + 256;

    for (const FuzzConfig &cell : matrix) {
        SparseMemory mem;
        core_prog.load(mem);
        OutOfOrderCore core(cell.config, mem, core_prog.entry);
        CheckSession session(core, golden);
        core.run(commit_bound);
        if (session.failed())
            return FuzzFailure{cell.name, session.report()};
        if (!core.done())
            return FuzzFailure{cell.name,
                               "pipeline did not halt within the golden "
                               "commit bound"};
        if (!session.verifyFinalState())
            return FuzzFailure{cell.name, session.report()};
    }
    return std::nullopt;
}

ShrinkOutcome
shrinkFuzzCase(const FuzzCase &failing,
               const std::vector<FuzzConfig> &matrix)
{
    ShrinkOutcome out;
    out.minimized = failing;

    const auto tryCase =
        [&](const FuzzCase &candidate) -> std::optional<FuzzFailure> {
        ++out.attempts;
        return runFuzzCase(candidate, matrix);
    };

    const auto seed_failure = tryCase(out.minimized);
    if (!seed_failure)
        return out; // not actually failing; nothing to shrink
    out.failure = *seed_failure;

    // 1. One loop iteration is almost always enough.
    if (out.minimized.iterations > 1) {
        FuzzCase candidate = out.minimized;
        candidate.iterations = 1;
        if (const auto f = tryCase(candidate)) {
            out.minimized = candidate;
            out.failure = *f;
        }
    }

    // 2. Greedy chunked removal (ddmin-style) to a fixed point. Any
    //    subsequence of body ops is still a valid program, and
    //    injected-fault sites are pinned so the defect can't be
    //    shrunk away.
    bool changed = true;
    while (changed) {
        changed = false;
        size_t chunk = std::max<size_t>(out.minimized.ops.size() / 2, 1);
        for (;; chunk /= 2) {
            size_t start = 0;
            while (start < out.minimized.ops.size()) {
                const size_t end =
                    std::min(start + chunk, out.minimized.ops.size());
                const bool pinned = std::any_of(
                    out.minimized.ops.begin() +
                        static_cast<ptrdiff_t>(start),
                    out.minimized.ops.begin() +
                        static_cast<ptrdiff_t>(end),
                    [](const FuzzOp &op) { return op.faulty; });
                if (pinned) {
                    start = end;
                    continue;
                }
                FuzzCase candidate = out.minimized;
                candidate.ops.erase(
                    candidate.ops.begin() + static_cast<ptrdiff_t>(start),
                    candidate.ops.begin() + static_cast<ptrdiff_t>(end));
                if (const auto f = tryCase(candidate)) {
                    out.minimized = candidate;
                    out.failure = *f;
                    changed = true;
                } else {
                    start = end;
                }
            }
            if (chunk == 1)
                break;
        }
    }

    // 3. Immediate simplification: zero anything that still fails.
    for (size_t i = 0; i < out.minimized.ops.size(); ++i) {
        if (out.minimized.ops[i].imm == 0)
            continue;
        FuzzCase candidate = out.minimized;
        candidate.ops[i].imm = 0;
        if (const auto f = tryCase(candidate)) {
            out.minimized = candidate;
            out.failure = *f;
        }
    }
    return out;
}

namespace
{

std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    size_t start = 0;
    while (start < text.size()) {
        size_t nl = text.find('\n', start);
        if (nl == std::string::npos)
            nl = text.size();
        lines.push_back(text.substr(start, nl - start));
        start = nl + 1;
    }
    return lines;
}

std::string
joinLines(const std::vector<std::string> &lines)
{
    std::string text;
    for (const std::string &line : lines) {
        text += line;
        text += '\n';
    }
    return text;
}

} // namespace

AsmShrinkOutcome
shrinkAsmLines(const std::string &asm_text,
               const std::function<bool(const std::string &)> &still_fails,
               unsigned max_attempts)
{
    AsmShrinkOutcome out;
    std::vector<std::string> lines = splitLines(asm_text);
    out.originalLines = lines.size();
    out.minimizedText = asm_text;
    out.minimizedLines = lines.size();

    const auto tryLines = [&](const std::vector<std::string> &cand) {
        ++out.attempts;
        return still_fails(joinLines(cand));
    };

    if (max_attempts == 0 || !tryLines(lines))
        return out;
    out.reproduced = true;

    // Greedy chunked line removal to a fixed point — the same ddmin
    // schedule as shrinkFuzzCase, but with no structural knowledge:
    // soundness comes from the predicate rejecting any candidate that
    // stops assembling or stops failing.
    bool changed = true;
    while (changed && out.attempts < max_attempts) {
        changed = false;
        size_t chunk = std::max<size_t>(lines.size() / 2, 1);
        for (;; chunk /= 2) {
            size_t start = 0;
            while (start < lines.size() && out.attempts < max_attempts) {
                const size_t end = std::min(start + chunk, lines.size());
                // Never propose the empty program: a reproducer that
                // fails with zero instructions reproduces nothing.
                if (end - start == lines.size()) {
                    start = end;
                    continue;
                }
                std::vector<std::string> candidate;
                candidate.reserve(lines.size() - (end - start));
                candidate.insert(candidate.end(), lines.begin(),
                                 lines.begin() +
                                     static_cast<ptrdiff_t>(start));
                candidate.insert(candidate.end(),
                                 lines.begin() +
                                     static_cast<ptrdiff_t>(end),
                                 lines.end());
                if (tryLines(candidate)) {
                    lines = std::move(candidate);
                    changed = true;
                } else {
                    start = end;
                }
            }
            if (chunk == 1)
                break;
        }
    }

    out.minimizedText = joinLines(lines);
    out.minimizedLines = lines.size();
    return out;
}

} // namespace nwsim
