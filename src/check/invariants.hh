/**
 * @file
 * Microarchitectural invariant checker.
 *
 * Re-derives, from first principles at every pipeline event, the
 * properties the paper's mechanisms must preserve, independent of the
 * code paths that enforce them:
 *
 *  - CommitOrder: the RUU retires in program order (strictly
 *    increasing seq, only Completed entries).
 *  - LsqOrder: a load never issues past an older overlapping store
 *    that has not produced its data, and every committed memory op's
 *    address/size/data are consistent with its operands.
 *  - PackLegality: a packed group's lanes share one operation, fit the
 *    ALU's lane count, satisfy the Section 5.2/5.3 eligibility rules,
 *    and each strict lane's 16-bit view reconstructs the full scalar
 *    result.
 *  - ReplayCompleteness: a replay-speculated instruction traps if and
 *    only if its packed result would have been wrong (Section 5.3) —
 *    no missed trap, no spurious trap.
 *  - GatingTransparency: for every narrow-tagged op, the result the
 *    gated (width-sliced) datapath can produce equals the full-width
 *    result, i.e. clock gating is architecturally invisible.
 *
 * Opt-in: construct one and attach it (directly or via CheckSession);
 * an unattached core pays a single null-pointer test per event site.
 */

#ifndef NWSIM_CHECK_INVARIANTS_HH
#define NWSIM_CHECK_INVARIANTS_HH

#include <array>
#include <string>
#include <vector>

#include "pipeline/core.hh"

namespace nwsim
{

/** The invariant families the checker enforces. */
enum class InvariantClass : u8
{
    CommitOrder,
    LsqOrder,
    PackLegality,
    ReplayCompleteness,
    GatingTransparency,
    NumClasses,
};

constexpr size_t numInvariantClasses =
    static_cast<size_t>(InvariantClass::NumClasses);

/** Printable name of an invariant class. */
const char *invariantClassName(InvariantClass cls);

/** One recorded invariant violation. */
struct Violation
{
    InvariantClass cls = InvariantClass::CommitOrder;
    InstSeq seq = 0;
    Addr pc = 0;
    std::string message;
};

/**
 * The checker. Non-owning observer over one core; collects violations
 * (first violationCap of them) rather than aborting, so tools can
 * print a report and tests can assert on what fired.
 */
class InvariantChecker : public CoreObserver
{
  public:
    /** @param core The core being observed (for window walks/config). */
    explicit InvariantChecker(const OutOfOrderCore &core);

    void onIssue(const RuuEntry &e) override;
    void onPackedGroup(
        const std::vector<const RuuEntry *> &members) override;
    void onReplayDecision(const RuuEntry &e, bool trapped) override;
    void onCommit(const RuuEntry &e) override;
    bool stopRequested() const override
    {
        return stopOnViolation && !violationList.empty();
    }

    /** Stop the core at the first violation (default true). */
    void setStopOnViolation(bool stop) { stopOnViolation = stop; }

    bool clean() const { return violationList.empty(); }
    const std::vector<Violation> &violations() const
    {
        return violationList;
    }

    /** Checks evaluated / violations recorded, per class. */
    u64 checked(InvariantClass cls) const
    {
        return checkedCount[static_cast<size_t>(cls)];
    }
    u64 fired(InvariantClass cls) const
    {
        return firedCount[static_cast<size_t>(cls)];
    }

    /** Multi-line report of every recorded violation. */
    std::string report() const;

  private:
    void check(bool ok, InvariantClass cls, const RuuEntry &e,
               const std::string &message);

    static constexpr size_t violationCap = 16;

    const OutOfOrderCore &core;
    bool stopOnViolation = true;
    InstSeq lastCommittedSeq = 0;
    std::array<u64, numInvariantClasses> checkedCount{};
    std::array<u64, numInvariantClasses> firedCount{};
    std::vector<Violation> violationList;
};

} // namespace nwsim

#endif // NWSIM_CHECK_INVARIANTS_HH
