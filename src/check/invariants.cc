#include "check/invariants.hh"

#include <sstream>

#include "core/packing.hh"
#include "core/width.hh"
#include "func/semantics.hh"

namespace nwsim
{

namespace
{

/**
 * Reconstruct a value from what a width-sliced datapath sees: the low
 * 16 (or 33) bits plus the one redundant-upper tag bit (zero48/ones48,
 * Figure 3). Identity for genuinely narrow values — so transparency
 * checks reduce to "recompute from the lane view, compare".
 */
u64
laneView16(u64 value)
{
    const u64 low = value & 0xffff;
    const bool ones = (value >> 16) == (~u64{0} >> 16);
    return ones ? (low | ~u64{0xffff}) : low;
}

u64
laneView33(u64 value)
{
    const u64 mask = (u64{1} << 33) - 1;
    const u64 low = value & mask;
    const bool ones = (value >> 33) == (~u64{0} >> 33);
    return ones ? (low | ~mask) : low;
}

u64
laneView(u64 value, WidthClass wc)
{
    return wc == WidthClass::Narrow16 ? laneView16(value)
                                      : laneView33(value);
}

bool
bytesOverlap(Addr a, unsigned a_size, Addr b, unsigned b_size)
{
    return a < b + b_size && b < a + a_size;
}

/** Result-producing integer-unit op whose value flows from opA/opB. */
bool
isValueOp(OpClass cls)
{
    switch (cls) {
      case OpClass::IntAlu:
      case OpClass::IntMult:
      case OpClass::IntDiv:
      case OpClass::Logic:
      case OpClass::Shift:
        return true;
      default:
        return false;
    }
}

std::string
hexPair(const char *what, u64 got, u64 want)
{
    std::ostringstream os;
    os << what << ": got 0x" << std::hex << got << ", expected 0x"
       << want << std::dec;
    return os.str();
}

} // namespace

const char *
invariantClassName(InvariantClass cls)
{
    switch (cls) {
      case InvariantClass::CommitOrder:
        return "commit-order";
      case InvariantClass::LsqOrder:
        return "lsq-order";
      case InvariantClass::PackLegality:
        return "pack-legality";
      case InvariantClass::ReplayCompleteness:
        return "replay-completeness";
      case InvariantClass::GatingTransparency:
        return "gating-transparency";
      default:
        return "?";
    }
}

InvariantChecker::InvariantChecker(const OutOfOrderCore &core_)
    : core(core_)
{
}

void
InvariantChecker::check(bool ok, InvariantClass cls, const RuuEntry &e,
                        const std::string &message)
{
    ++checkedCount[static_cast<size_t>(cls)];
    if (ok)
        return;
    ++firedCount[static_cast<size_t>(cls)];
    if (violationList.size() < violationCap)
        violationList.push_back({cls, e.seq, e.pc, message});
}

void
InvariantChecker::onIssue(const RuuEntry &e)
{
    if (!e.isMem || e.isSt)
        return;
    // A load may only issue once every older overlapping store has its
    // data ready to forward (Completed); issuing past one would read
    // stale memory.
    bool ordered = true;
    for (const RuuEntry &s : core.inflight()) {
        if (s.seq >= e.seq)
            break;
        if (!s.isSt ||
            !bytesOverlap(s.effAddr, s.memSize, e.effAddr, e.memSize)) {
            continue;
        }
        if (s.state != EntryState::Completed) {
            ordered = false;
            break;
        }
    }
    check(ordered, InvariantClass::LsqOrder, e,
          "load issued past an older incomplete overlapping store");
}

void
InvariantChecker::onPackedGroup(
    const std::vector<const RuuEntry *> &members)
{
    const PackingConfig &pk = core.config().packing;
    if (members.empty())
        return;
    const RuuEntry &lead = *members.front();

    check(pk.enabled, InvariantClass::PackLegality, lead,
          "packed group formed with packing disabled");
    check(members.size() >= 2 && members.size() <= pk.lanesPerAlu,
          InvariantClass::PackLegality, lead,
          "packed group size outside [2, lanesPerAlu]");

    const PackKey key = opInfo(lead.inst.op).packKey;
    for (const RuuEntry *m : members) {
        const PackKey mk = opInfo(m->inst.op).packKey;
        check(mk == key && mk != PackKey::None,
              InvariantClass::PackLegality, *m,
              "packed lanes perform different operations");

        const bool strict = packEligible(m->inst, m->opA(), m->opB());
        const bool replay =
            pk.replay && replayEligible(m->inst, m->opA(), m->opB());
        check(strict || replay, InvariantClass::PackLegality, *m,
              "packed lane is neither strict- nor replay-eligible");
        check(m->packed, InvariantClass::PackLegality, *m,
              "group member not marked packed");

        if (strict) {
            // Both operands narrow: the 16-bit lane view of the
            // operands must reconstruct the full scalar result.
            const u64 lane = aluResult(m->inst, laneView16(m->opA()),
                                       laneView16(m->opB()), m->pc);
            check(lane == m->result, InvariantClass::PackLegality, *m,
                  hexPair("strict lane does not reconstruct scalar",
                          lane, m->result));
        }
    }
}

void
InvariantChecker::onReplayDecision(const RuuEntry &e, bool trapped)
{
    // No missed trap, no spurious trap: the decision must equal the
    // recomputed "would the packed result have been wrong" predicate.
    const bool should_trap =
        replayWouldTrap(e.inst, e.opA(), e.opB(), e.pc);
    check(trapped == should_trap, InvariantClass::ReplayCompleteness, e,
          trapped ? "spurious replay trap (packed result was correct)"
                  : "missed replay trap (packed result is wrong)");
    check(replayEligible(e.inst, e.opA(), e.opB()),
          InvariantClass::ReplayCompleteness, e,
          "replay speculation on a replay-ineligible instruction");
}

void
InvariantChecker::onCommit(const RuuEntry &e)
{
    check(e.seq > lastCommittedSeq, InvariantClass::CommitOrder, e,
          "commit stream seq not strictly increasing");
    check(e.state == EntryState::Completed, InvariantClass::CommitOrder,
          e, "committed an entry that had not completed");
    lastCommittedSeq = std::max(lastCommittedSeq, e.seq);

    const OpInfo &info = opInfo(e.inst.op);

    if (e.isMem) {
        check(e.effAddr == effectiveAddr(e.inst, e.valA) &&
                  e.memSize == memAccessSize(e.inst.op),
              InvariantClass::LsqOrder, e,
              hexPair("memory op address/size inconsistent with base "
                      "operand",
                      e.effAddr, effectiveAddr(e.inst, e.valA)));
        if (e.isSt) {
            check(e.storeData == e.valB, InvariantClass::LsqOrder, e,
                  hexPair("store data inconsistent with rb operand",
                          e.storeData, e.valB));
        }
    }

    if (isValueOp(info.opClass)) {
        const WidthClass wc = pairClass(e.opA(), e.opB());
        if (wc != WidthClass::Wide) {
            // Narrow-tagged op: the gated datapath sees only the lane
            // view of each operand, so the full result must be
            // recomputable from it (gating is transparent).
            const u64 gated = aluResult(e.inst, laneView(e.opA(), wc),
                                        laneView(e.opB(), wc), e.pc);
            check(gated == e.result,
                  InvariantClass::GatingTransparency, e,
                  hexPair("gated result differs from ungated result",
                          gated, e.result));
        }
    }
}

std::string
InvariantChecker::report() const
{
    if (clean())
        return "invariants: all clean";
    std::ostringstream os;
    os << "invariant violations (" << violationList.size()
       << " recorded):\n";
    for (const Violation &v : violationList) {
        os << "  [" << invariantClassName(v.cls) << "] seq " << v.seq
           << " pc 0x" << std::hex << v.pc << std::dec << ": "
           << v.message << "\n";
    }
    return os.str();
}

} // namespace nwsim
