#include "check/session.hh"

#include "common/logging.hh"

namespace nwsim
{

CheckSession::CheckSession(OutOfOrderCore &core_, const Program &golden,
                           CheckOptions opts_)
    : core(core_), opts(opts_)
{
    if (opts.cosim) {
        // Match the checked core's decode-cache setting so
        // `+nodecodecache` differential runs exercise the plain
        // interpreter on the golden side too.
        cosim = std::make_unique<CosimOracle>(
            golden, core.config().decodeCache);
    }
    if (opts.invariants) {
        inv = std::make_unique<InvariantChecker>(core);
        inv->setStopOnViolation(opts.stopEarly);
    }
    core.setObserver(this);
}

CheckSession::~CheckSession()
{
    core.setObserver(nullptr);
}

void
CheckSession::catchUp(u64 insts)
{
    if (cosim)
        cosim->catchUp(insts);
}

bool
CheckSession::verifyFinalState()
{
    return cosim ? cosim->verifyFinalState(core) : true;
}

bool
CheckSession::failed() const
{
    return (cosim && cosim->diverged()) || (inv && !inv->clean());
}

std::string
CheckSession::report() const
{
    std::string out;
    if (cosim && cosim->diverged())
        out += cosim->report() + "\n";
    if (inv && !inv->clean())
        out += inv->report();
    return out;
}

void
CheckSession::onDispatch(const RuuEntry &e)
{
    if (inv)
        inv->onDispatch(e);
}

void
CheckSession::onIssue(const RuuEntry &e)
{
    if (inv)
        inv->onIssue(e);
}

void
CheckSession::onPackedGroup(const std::vector<const RuuEntry *> &members)
{
    if (inv)
        inv->onPackedGroup(members);
}

void
CheckSession::onReplayDecision(const RuuEntry &e, bool trapped)
{
    if (inv)
        inv->onReplayDecision(e, trapped);
}

void
CheckSession::onComplete(const RuuEntry &e)
{
    if (inv)
        inv->onComplete(e);
}

void
CheckSession::onCommit(const RuuEntry &e)
{
    if (cosim)
        cosim->onCommit(e);
    if (inv)
        inv->onCommit(e);
}

void
CheckSession::onSquash(const RuuEntry &e)
{
    if (inv)
        inv->onSquash(e);
}

bool
CheckSession::stopRequested() const
{
    if (!opts.stopEarly)
        return false;
    return failed();
}

CheckedRunOutcome
runCheckedProgram(const Program &program, const CoreConfig &config,
                  const RunOptions &opts, const std::string &name,
                  const std::string &config_name)
{
    SparseMemory memory;
    program.load(memory);
    OutOfOrderCore core(config, memory, program.entry);
    CheckSession session(core, program);

    u64 warmup_committed = 0;
    if (opts.fastWarmup) {
        warmup_committed = core.fastForward(opts.warmupInsts);
        session.catchUp(warmup_committed);
    } else {
        warmup_committed = core.run(opts.warmupInsts);
    }
    core.resetStats();
    core.run(opts.measureInsts);
    if (core.done() && !session.failed())
        session.verifyFinalState();

    CheckedRunOutcome out;
    out.result = collectRunResult(core, name, config_name);
    out.result.warmupCommitted = warmup_committed;
    out.ok = !session.failed();
    if (!out.ok)
        out.report = session.report();
    if (session.oracle())
        out.commitsChecked = session.oracle()->commitsChecked();
    return out;
}

} // namespace nwsim
