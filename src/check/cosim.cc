#include "check/cosim.hh"

#include <sstream>

#include "isa/disasm.hh"

namespace nwsim
{

namespace
{

bool
sameInst(const Inst &a, const Inst &b)
{
    return a.op == b.op && a.ra == b.ra && a.rb == b.rb &&
           a.rc == b.rc && a.imm == b.imm && a.disp == b.disp;
}

void
hex(std::ostringstream &os, u64 value)
{
    os << "0x" << std::hex << value << std::dec;
}

} // namespace

const char *
divergenceKindName(DivergenceKind kind)
{
    switch (kind) {
      case DivergenceKind::None:
        return "none";
      case DivergenceKind::ExtraCommit:
        return "extra-commit";
      case DivergenceKind::Pc:
        return "pc";
      case DivergenceKind::Instruction:
        return "instruction";
      case DivergenceKind::NextPc:
        return "next-pc";
      case DivergenceKind::DestValue:
        return "dest-value";
      case DivergenceKind::MemAddr:
        return "mem-addr";
      case DivergenceKind::MemData:
        return "mem-data";
      case DivergenceKind::FinalState:
        return "final-state";
    }
    return "?";
}

std::string
formatDivergence(const Divergence &d)
{
    if (d.kind == DivergenceKind::None)
        return "cosim: no divergence";
    std::ostringstream os;
    os << "cosim divergence [" << divergenceKindName(d.kind)
       << "] at commit #" << d.commitIndex << "\n"
       << "  pipeline: pc=";
    hex(os, d.pipelinePc);
    os << "  " << disassemble(d.pipelineInst, d.pipelinePc) << "\n"
       << "  golden:   pc=";
    hex(os, d.goldenPc);
    os << "  " << disassemble(d.goldenInst, d.goldenPc) << "\n"
       << "  " << d.detail;
    return os.str();
}

CosimOracle::CosimOracle(const Program &golden, bool use_decode_cache)
    : mem(std::make_unique<SparseMemory>())
{
    golden.load(*mem);
    func = std::make_unique<FuncSim>(*mem, golden.entry,
                                     layout::stackTop, use_decode_cache);
}

void
CosimOracle::catchUp(u64 insts)
{
    func->run(insts);
}

void
CosimOracle::record(DivergenceKind kind, const RuuEntry &e,
                    const FuncStep &g, u64 pipeline_value,
                    u64 golden_value, std::string detail)
{
    div.kind = kind;
    div.commitIndex = commits;
    div.pipelinePc = e.pc;
    div.goldenPc = g.pc;
    div.pipelineInst = e.inst;
    div.goldenInst = g.inst;
    div.pipelineValue = pipeline_value;
    div.goldenValue = golden_value;
    div.detail = std::move(detail);
}

void
CosimOracle::onCommit(const RuuEntry &e)
{
    if (diverged())
        return;
    ++commits;

    if (func->halted()) {
        FuncStep g;
        g.pc = func->pc();
        record(DivergenceKind::ExtraCommit, e, g, e.result, 0,
               "pipeline committed after the golden model halted");
        return;
    }

    const FuncStep g = func->step();

    const auto mismatch = [&](DivergenceKind kind, u64 pipe, u64 gold,
                              const char *what) {
        std::ostringstream os;
        os << what << ": pipeline ";
        hex(os, pipe);
        os << " != golden ";
        hex(os, gold);
        record(kind, e, g, pipe, gold, os.str());
    };

    if (e.pc != g.pc) {
        mismatch(DivergenceKind::Pc, e.pc, g.pc, "commit pc");
        return;
    }
    if (!sameInst(e.inst, g.inst)) {
        record(DivergenceKind::Instruction, e, g, 0, 0,
               "same pc, different instruction (fetch/decode bug?)");
        return;
    }
    if (e.isCtrl && e.actualNpc != g.nextPc) {
        mismatch(DivergenceKind::NextPc, e.actualNpc, g.nextPc,
                 "control-transfer target");
        return;
    }
    if (e.inst.writesReg() && e.result != g.result) {
        mismatch(DivergenceKind::DestValue, e.result, g.result,
                 "destination value");
        return;
    }
    if (e.isMem && e.effAddr != g.effAddr) {
        mismatch(DivergenceKind::MemAddr, e.effAddr, g.effAddr,
                 "effective address");
        return;
    }
    if (e.isSt && e.storeData != g.storeData) {
        mismatch(DivergenceKind::MemData, e.storeData, g.storeData,
                 "store data");
        return;
    }
}

bool
CosimOracle::verifyFinalState(const OutOfOrderCore &core)
{
    if (diverged())
        return false;
    if (core.done() != func->halted()) {
        div.kind = DivergenceKind::FinalState;
        div.commitIndex = commits;
        div.detail = core.done()
                         ? "pipeline halted, golden model did not"
                         : "golden model halted, pipeline did not";
        return false;
    }
    for (RegIndex r = 0; r < numIntRegs; ++r) {
        if (core.reg(r) == func->reg(r))
            continue;
        std::ostringstream os;
        os << "architected r" << int(r) << ": pipeline ";
        hex(os, core.reg(r));
        os << " != golden ";
        hex(os, func->reg(r));
        div.kind = DivergenceKind::FinalState;
        div.commitIndex = commits;
        div.pipelineValue = core.reg(r);
        div.goldenValue = func->reg(r);
        div.detail = os.str();
        return false;
    }
    return true;
}

} // namespace nwsim
