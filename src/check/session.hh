/**
 * @file
 * CheckSession: one-stop attachment of the cosim oracle and the
 * invariant checker to a core, plus a checked drop-in replacement for
 * driver::runProgram used by `nwsim --check`, `nwfuzz`, and tests.
 */

#ifndef NWSIM_CHECK_SESSION_HH
#define NWSIM_CHECK_SESSION_HH

#include <memory>
#include <string>

#include "check/cosim.hh"
#include "check/invariants.hh"
#include "driver/runner.hh"

namespace nwsim
{

/** Which checkers a CheckSession enables. */
struct CheckOptions
{
    bool cosim = true;
    bool invariants = true;
    /** Stop the core at the first failure (pin the report to it). */
    bool stopEarly = true;
};

/**
 * Owns a CosimOracle and an InvariantChecker, attaches itself as the
 * core's observer, and fans events out to both. Construct it after the
 * core and destroy it before the core (normal declaration order does
 * this); destruction detaches.
 */
class CheckSession : public CoreObserver
{
  public:
    /**
     * @param core   The core to check (observer slot is taken over).
     * @param golden The program image the architecture should execute;
     *               normally the one @p core runs.
     */
    CheckSession(OutOfOrderCore &core, const Program &golden,
                 CheckOptions opts = {});
    ~CheckSession() override;

    CheckSession(const CheckSession &) = delete;
    CheckSession &operator=(const CheckSession &) = delete;

    /** Mirror a core.fastForward(n) warmup in the golden model. */
    void catchUp(u64 insts);

    /** End-of-run architected-register compare (cosim enabled only). */
    bool verifyFinalState();

    /** True once any enabled checker found a problem. */
    bool failed() const;

    /** Human-readable report of everything that failed. */
    std::string report() const;

    CosimOracle *oracle() { return cosim.get(); }
    InvariantChecker *invariants() { return inv.get(); }

    // ---- CoreObserver fan-out -----------------------------------------
    void onDispatch(const RuuEntry &e) override;
    void onIssue(const RuuEntry &e) override;
    void onPackedGroup(
        const std::vector<const RuuEntry *> &members) override;
    void onReplayDecision(const RuuEntry &e, bool trapped) override;
    void onComplete(const RuuEntry &e) override;
    void onCommit(const RuuEntry &e) override;
    void onSquash(const RuuEntry &e) override;
    bool stopRequested() const override;

  private:
    OutOfOrderCore &core;
    CheckOptions opts;
    std::unique_ptr<CosimOracle> cosim;
    std::unique_ptr<InvariantChecker> inv;
};

/** A RunResult plus the checkers' verdict. */
struct CheckedRunOutcome
{
    RunResult result;
    bool ok = true;
    /** Failure report (empty when ok). */
    std::string report;
    u64 commitsChecked = 0;
};

/**
 * runProgram(), but with a CheckSession attached for the whole run
 * (fast-mode warmup kept in lockstep via catchUp) and a final
 * architected-state compare when the program halts.
 */
CheckedRunOutcome runCheckedProgram(const Program &program,
                                    const CoreConfig &config,
                                    const RunOptions &opts,
                                    const std::string &name,
                                    const std::string &config_name);

} // namespace nwsim

#endif // NWSIM_CHECK_SESSION_HH
