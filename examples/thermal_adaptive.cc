/**
 * @file
 * The paper's Section 5 suggestion, implemented: "one could use thermal
 * sensory data to have the processor switch between the two techniques,
 * depending on current thermal or performance concerns" (cf. the
 * PPC750's thermal assist unit).
 *
 * The ThermalModel integrates integer-unit power into a die
 * temperature; the ThermalController switches the core between
 * PERFORMANCE mode (operation packing, ungated power) and POWER mode
 * (operand clock gating, no packing) around a threshold with
 * hysteresis.
 *
 *     ./examples/thermal_adaptive [workload]
 */

#include <iostream>

#include "driver/presets.hh"
#include "driver/table.hh"
#include "pipeline/core.hh"
#include "power/thermal.hh"
#include "workloads/kernels.hh"

using namespace nwsim;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "gsm-encode";
    const Program prog = workloadByName(name).program();

    SparseMemory mem;
    prog.load(mem);

    // Both optimizations share one hardware base (the operand width
    // tags); only one can be active at a time (paper Section 5).
    CoreConfig cfg = presets::baseline();
    cfg.packing.enabled = true;         // start in PERFORMANCE mode
    OutOfOrderCore core(cfg, mem, prog.entry);

    // NOTE: nwsim cores are configured at construction; mode switching
    // is modeled by selecting which optimization's power accounting the
    // controller samples. Real hardware flips the issue logic's packing
    // enable and the clock-gate enables — the shared zero-detect tags
    // stay live in both modes.
    ThermalModel thermal;
    ThermalController controller(75.0, 72.5);

    Table t({"window", "mode", "IPC", "int-unit mW/cyc", "die temp C"});
    const u64 window = 50000;

    for (int w = 0; w < 20 && !core.done(); ++w) {
        core.resetStats();
        core.run(window);
        const GatingStats &g = core.gating().stats();
        const double cyc = static_cast<double>(core.stats().cycles);
        // PERFORMANCE mode burns the ungated baseline power; POWER
        // mode burns the operand-gated power.
        const bool performance =
            controller.mode() == ThermalMode::Performance;
        const double mw = performance ? g.baselineMwSum / cyc
                                      : g.optimizedMwSum() / cyc;
        thermal.step(mw, core.stats().cycles);
        controller.update(thermal.celsius());

        t.addRow({std::to_string(w),
                  performance ? "performance (packing)"
                              : "power (clock gating)",
                  Table::num(core.stats().ipc(), 2), Table::num(mw, 1),
                  Table::num(thermal.celsius(), 1)});
    }
    t.print();
    std::cout << "\nmode switches: " << controller.switches()
              << "\nThe controller oscillates between modes around the "
                 "thermal threshold,\ntrading the packing speedup for "
                 "the >50% integer-unit power cut when hot\n(paper "
                 "Section 5, first paragraph).\n";
    return 0;
}
