/**
 * @file
 * Operation-packing demo: the Figure 8 scenario, end to end.
 *
 * Builds a loop whose body holds several independent narrow adds, runs
 * it with packing off and on (plus replay packing), and reports how
 * many instructions shared ALUs, how often replay traps fired, and the
 * cycle effect.
 *
 *     ./examples/packing_demo
 */

#include <iostream>

#include "asm/assembler.hh"
#include "driver/presets.hh"
#include "pipeline/core.hh"

using namespace nwsim;

namespace
{

/** The paper's Figure 8: narrow adds that can share one 64-bit ALU. */
Program
figure8Loop()
{
    Assembler as;
    as.li(1, 0x4d2);            // lfsr-ish branch source
    as.li(2, 4000);             // iterations
    as.la(16, "buf");           // 33-bit base for replay packing
    as.label("loop");
    // Narrow adds (both operands <= 16 bits): strict packing.
    as.addi(3, zeroReg, 17);
    as.addi(4, 3, 2);           // 17 + 2 = 19, the paper's example
    as.addi(5, zeroReg, 21);
    as.addi(6, 5, 3);           // 21 + 3 = 24, Figure 8's second add
    as.add(7, 3, 5);
    as.add(8, 4, 6);
    // Address arithmetic (wide base + narrow offset): replay packing.
    as.andi(9, 2, 0xf8);
    as.add(10, 16, 9);
    as.addi(11, 16, 64);
    as.ldq(12, 0, 10);
    // An unpredictable branch whose resolution waits behind the adds.
    as.srli(13, 1, 1);
    as.andi(14, 1, 1);
    as.xor_(1, 13, 14);
    as.slli(14, 14, 14);
    as.or_(1, 1, 14);
    as.beq(14, "skip");
    as.addi(15, 15, 1);
    as.label("skip");
    as.subi(2, 2, 1);
    as.bne(2, "loop");
    as.halt();
    as.dataLabel("buf");
    as.dataZeros(512);
    return as.assemble();
}

struct Outcome
{
    Cycle cycles;
    CorePackingStats packing;
};

Outcome
run(const Program &prog, const CoreConfig &cfg)
{
    SparseMemory mem;
    prog.load(mem);
    OutOfOrderCore core(cfg, mem, prog.entry);
    core.run(10'000'000);
    return {core.stats().cycles, core.packingStats()};
}

} // namespace

int
main()
{
    const Program prog = figure8Loop();

    const Outcome base = run(prog, presets::baseline());
    const Outcome strict = run(prog, presets::packing(false));
    const Outcome replay = run(prog, presets::packing(true));

    std::cout << "baseline:        " << base.cycles << " cycles\n\n";

    std::cout << "strict packing:  " << strict.cycles << " cycles ("
              << 100.0 * (base.cycles - strict.cycles) / base.cycles
              << "% faster)\n"
              << "  packed groups:     " << strict.packing.packedGroups
              << "\n"
              << "  packed insts:      " << strict.packing.packedInsts
              << "\n\n";

    std::cout << "+ replay packing: " << replay.cycles << " cycles ("
              << 100.0 * (base.cycles - replay.cycles) / base.cycles
              << "% faster)\n"
              << "  packed insts:      " << replay.packing.packedInsts
              << "\n"
              << "  replay speculations: "
              << replay.packing.replaySpeculations << "\n"
              << "  replay traps:      " << replay.packing.replayTraps
              << " (squashed and re-issued full width)\n";
    return 0;
}
