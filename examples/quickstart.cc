/**
 * @file
 * Quickstart: assemble a small program with the builder API, run it on
 * the Table 1 out-of-order core, and read out the statistics every
 * nwsim experiment is built from.
 *
 *     ./examples/quickstart
 */

#include <iostream>

#include "asm/assembler.hh"
#include "driver/presets.hh"
#include "pipeline/core.hh"

using namespace nwsim;

int
main()
{
    // 1. Build a program: sum the bytes of a small table, counting how
    //    many are "narrow" (< 16). Data lives above 2^32, so pointers
    //    are 33-bit values, exactly like the paper's heap addresses.
    Assembler as;
    as.la(1, "table");          // r1 = &table
    as.li(2, 256);              // r2 = length
    as.li(3, 0);                // r3 = sum
    as.li(4, 0);                // r4 = narrow count
    as.label("loop");
    as.ldbu(5, 0, 1);           // r5 = *p
    as.add(3, 3, 5);
    as.cmplti(6, 5, 16);
    as.add(4, 4, 6);
    as.addi(1, 1, 1);
    as.subi(2, 2, 1);
    as.bne(2, "loop");
    as.halt();
    as.dataLabel("table");
    for (int i = 0; i < 256; ++i)
        as.dataByte(static_cast<u8>((i * 37) & 0x3f));
    const Program prog = as.assemble();

    // 2. Load it into simulated memory and run it on the baseline core.
    SparseMemory memory;
    prog.load(memory);
    OutOfOrderCore core(presets::baseline(), memory, prog.entry);
    core.run(1'000'000);

    // 3. Architected results.
    std::cout << "sum          = " << core.reg(3) << "\n"
              << "narrow bytes = " << core.reg(4) << "\n\n";

    // 4. Microarchitectural statistics.
    const CoreStats &s = core.stats();
    std::cout << "committed    = " << s.committed << " instructions\n"
              << "cycles       = " << s.cycles << "\n"
              << "IPC          = " << s.ipc() << "\n"
              << "mispredicts  = " << s.mispredictSquashes << "\n\n";

    // 5. The paper's measurements: operand widths and gated power.
    const WidthProfiler &p = core.profiler();
    std::cout << "ops with both operands <= 16 bits: "
              << p.narrow16TotalPercent() << "%\n"
              << "ops with both operands <= 33 bits: "
              << p.narrow33TotalPercent() << "%\n";
    const GatingStats &g = core.gating().stats();
    std::cout << "integer-unit power reduction via clock gating: "
              << g.reductionPercent() << "%\n";
    return 0;
}
