/**
 * @file
 * Power demo: run one SPECint95 proxy and one MediaBench proxy and walk
 * through the Section 4 clock-gating accounting — what gates at 16
 * bits, what gates at 33, what the zero-detect/mux overhead costs, and
 * what the net integer-unit saving is.
 *
 *     ./examples/power_gating_demo [workload]
 */

#include <iostream>

#include "driver/presets.hh"
#include "driver/runner.hh"
#include "workloads/kernels.hh"

using namespace nwsim;

namespace
{

void
report(const RunResult &r)
{
    const GatingStats &g = r.gating;
    const double cyc = static_cast<double>(r.core.cycles);
    std::cout << "== " << r.workload << " ==\n"
              << "  executed int-unit ops: " << g.ops << "\n"
              << "  gated at 16 bits:      " << g.gated16 << " ("
              << 100.0 * g.gated16 / g.ops << "%)\n"
              << "  gated at 33 bits:      " << g.gated33 << " ("
              << 100.0 * g.gated33 / g.ops << "%)\n"
              << "  of gated, load-sourced: " << g.loadSourcedPercent()
              << "%  (paper: spec 13.1%, media 1.5%)\n"
              << "  baseline power:        " << g.baselineMwSum / cyc
              << " mW/cycle\n"
              << "  with operand gating:   " << g.optimizedMwSum() / cyc
              << " mW/cycle\n"
              << "  overhead (detect+mux): " << g.overheadMwSum / cyc
              << " mW/cycle\n"
              << "  net saving:            " << g.netSavedMwSum() / cyc
              << " mW/cycle  -> " << g.reductionPercent()
              << "% reduction\n\n";
}

} // namespace

int
main(int argc, char **argv)
{
    const RunOptions opts = resolveRunOptions();
    const CoreConfig cfg = presets::baseline();
    if (argc > 1) {
        report(runProgram(workloadByName(argv[1]).program(), cfg, opts,
                          argv[1], "baseline"));
        return 0;
    }
    for (const char *name : {"ijpeg", "gsm-encode"}) {
        report(runProgram(workloadByName(name).program(), cfg, opts,
                          name, "baseline"));
    }
    std::cout << "(run `bench/fig06_net_power` and `bench/fig07_power_"
                 "usage` for the full suites)\n";
    return 0;
}
