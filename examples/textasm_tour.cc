/**
 * @file
 * Textual-assembler tour: assemble a program from source text,
 * disassemble it back, run it functionally and on the pipeline, and
 * compare — the round trip a downstream user would script.
 *
 *     ./examples/textasm_tour
 */

#include <iostream>

#include "asm/textasm.hh"
#include "driver/presets.hh"
#include "func/func_sim.hh"
#include "isa/disasm.hh"
#include "isa/encode.hh"
#include "pipeline/core.hh"

using namespace nwsim;

int
main()
{
    const char *source = R"(
        ; gcd(1071, 462) by repeated remainder
        start:
            li   r1, 1071
            li   r2, 462
        loop:
            beq  r2, done
            rem  r3, r1, r2     ; r3 = r1 % r2
            mov  r1, r2
            mov  r2, r3
            br   loop
        done:
            la   r4, result
            stq  r1, 0(r4)
            halt
        .data
        result: .quad 0
    )";

    const Program prog = assembleText(source);
    std::cout << "assembled " << prog.segments.front().bytes.size() / 4
              << " instructions; entry at 0x" << std::hex << prog.entry
              << std::dec << "\n\ndisassembly:\n";
    SparseMemory mem;
    prog.load(mem);
    for (Addr pc = prog.entry; pc < prog.textEnd(); pc += 4) {
        const Inst inst = decode(static_cast<u32>(mem.read(pc, 4)));
        std::cout << "  0x" << std::hex << pc << std::dec << ":  "
                  << disassemble(inst, pc) << "\n";
    }

    // Functional run.
    FuncSim func(mem, prog.entry);
    func.run(100000);
    std::cout << "\nfunctional: gcd = " << func.reg(1) << " in "
              << func.instCount() << " instructions\n";

    // Pipeline run on fresh memory.
    SparseMemory mem2;
    prog.load(mem2);
    OutOfOrderCore core(presets::baseline(), mem2, prog.entry);
    core.run(100000);
    std::cout << "pipeline:   gcd = " << core.reg(1) << " in "
              << core.stats().cycles << " cycles (IPC "
              << core.stats().ipc() << ")\n"
              << "memory result slot: "
              << mem2.read(prog.symbol("result"), 8) << "\n";
    return 0;
}
