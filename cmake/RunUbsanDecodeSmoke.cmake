# Configure a nested UBSan build, build nwsim, and run decode-cached
# simulations under halt_on_error=1. Driven by ctest (see
# tests/CMakeLists.txt, label `sanitize`) as:
#
#   cmake -DSOURCE_DIR=... -DWORK_DIR=... -P RunUbsanDecodeSmoke.cmake
#
# Undefined behaviour anywhere on the decode-cache paths — the
# basic-block decode, the threaded micro-op dispatch, the memoized
# block chaining, the fetch-block cache, the superblock trace executor
# (direct-threaded computed-goto dispatch where the toolchain has it),
# or the generation-keyed invalidation — fails the test. The runs cover
# the cache's consumers: a checked run (cosim oracle's golden FuncSim),
# a sampled run (fastForward streams crossing the drainInFlight seam
# every interval), a trace-heavy run (deep fast-forward warmup so hot
# loops promote to superblock traces and run through guard exits), and
# `+notrace` / `+nodecodecache` control runs. The build tree is shared
# with RunUbsanSmoke.cmake / RunUbsanSampleSmoke.cmake (same flags),
# guarded by the ubsan_build ctest resource lock.

if(NOT SOURCE_DIR OR NOT WORK_DIR)
    message(FATAL_ERROR "usage: cmake -DSOURCE_DIR=<repo> "
                        "-DWORK_DIR=<scratch> -P RunUbsanDecodeSmoke.cmake")
endif()

set(build_dir "${WORK_DIR}/ubsan-build")
file(MAKE_DIRECTORY "${build_dir}")

message(STATUS "UBSan decode smoke: configuring in ${build_dir}")
execute_process(
    COMMAND "${CMAKE_COMMAND}" -S "${SOURCE_DIR}" -B "${build_dir}"
            -DNWSIM_SANITIZE=undefined
            -DCMAKE_BUILD_TYPE=RelWithDebInfo
    RESULT_VARIABLE rc)
if(rc)
    message(FATAL_ERROR "UBSan decode smoke: configure failed (${rc})")
endif()

message(STATUS "UBSan decode smoke: building nwsim")
execute_process(
    COMMAND "${CMAKE_COMMAND}" --build "${build_dir}" --target nwsim
            --parallel 4
    RESULT_VARIABLE rc)
if(rc)
    message(FATAL_ERROR "UBSan decode smoke: build failed (${rc})")
endif()

message(STATUS "UBSan decode smoke: checked run (decode-cached cosim)")
execute_process(
    COMMAND "${CMAKE_COMMAND}" -E env UBSAN_OPTIONS=halt_on_error=1
            "${build_dir}/tools/nwsim" run li --check
            --warmup 2000 --measure 10000
    RESULT_VARIABLE rc)
if(rc)
    message(FATAL_ERROR "UBSan decode smoke: checked run failed (${rc})")
endif()

message(STATUS "UBSan decode smoke: sampled run (fastForward streams)")
execute_process(
    COMMAND "${CMAKE_COMMAND}" -E env UBSAN_OPTIONS=halt_on_error=1
            "${build_dir}/tools/nwsim" run perl
            --config "packing-replay+sample=4000:500:1500"
            --warmup 3000 --measure 30000
    RESULT_VARIABLE rc)
if(rc)
    message(FATAL_ERROR "UBSan decode smoke: sampled run failed (${rc})")
endif()

message(STATUS "UBSan decode smoke: trace-heavy run (superblocks)")
execute_process(
    COMMAND "${CMAKE_COMMAND}" -E env UBSAN_OPTIONS=halt_on_error=1
            "${build_dir}/tools/nwsim" run compress
            --warmup 300000 --measure 5000
    RESULT_VARIABLE rc)
if(rc)
    message(FATAL_ERROR
            "UBSan decode smoke: trace-heavy run failed (${rc})")
endif()

message(STATUS "UBSan decode smoke: +notrace control run")
execute_process(
    COMMAND "${CMAKE_COMMAND}" -E env UBSAN_OPTIONS=halt_on_error=1
            "${build_dir}/tools/nwsim" run compress
            --config "baseline+notrace"
            --warmup 50000 --measure 5000
    RESULT_VARIABLE rc)
if(rc)
    message(FATAL_ERROR
            "UBSan decode smoke: +notrace run failed (${rc})")
endif()

message(STATUS "UBSan decode smoke: uncached control run")
execute_process(
    COMMAND "${CMAKE_COMMAND}" -E env UBSAN_OPTIONS=halt_on_error=1
            "${build_dir}/tools/nwsim" run perl
            --config "packing-replay+nodecodecache"
            --warmup 2000 --measure 10000
    RESULT_VARIABLE rc)
if(rc)
    message(FATAL_ERROR "UBSan decode smoke: uncached run failed (${rc})")
endif()
message(STATUS "UBSan decode smoke: clean")
