# Kill/resume checkpoint drill under AddressSanitizer (nested build).
# Driven by ctest (see tests/CMakeLists.txt, labels `ckpt;sanitize`) as:
#
#   cmake -DSOURCE_DIR=... -DWORK_DIR=... -P RunAsanCkptDrill.cmake
#
# The hard variant of the round-trip smoke: the run is SIGKILLed (via
# the NWSIM_CKPT_TEST_KILL_AT hook) right after a checkpoint lands — no
# handler runs, no cleanup happens — and the rerun must recover from the
# orphaned snapshot with statistics byte-identical to an uninterrupted
# run. ASan instruments the checkpoint writer, the deserializer on the
# resume path, and the core state injection for memory errors.
#
# Shares the instrumented build tree with the other asan_build-locked
# drills (same nested build directory and cache).

if(NOT SOURCE_DIR OR NOT WORK_DIR)
    message(FATAL_ERROR "usage: cmake -DSOURCE_DIR=<repo> "
                        "-DWORK_DIR=<scratch> -P RunAsanCkptDrill.cmake")
endif()

set(build_dir "${WORK_DIR}/asan-build")
file(MAKE_DIRECTORY "${build_dir}")

message(STATUS "ASan ckpt drill: configuring in ${build_dir}")
execute_process(
    COMMAND "${CMAKE_COMMAND}" -S "${SOURCE_DIR}" -B "${build_dir}"
            -DNWSIM_SANITIZE=address
            -DCMAKE_BUILD_TYPE=RelWithDebInfo
    RESULT_VARIABLE rc)
if(rc)
    message(FATAL_ERROR "ASan ckpt drill: configure failed (${rc})")
endif()

message(STATUS "ASan ckpt drill: building nwsim")
execute_process(
    COMMAND "${CMAKE_COMMAND}" --build "${build_dir}" --target nwsim
            --parallel 4
    RESULT_VARIABLE rc)
if(rc)
    message(FATAL_ERROR "ASan ckpt drill: build failed (${rc})")
endif()

set(nwsim "${build_dir}/tools/nwsim")
set(scratch "${WORK_DIR}/asan_ckpt_drill")
file(REMOVE_RECURSE "${scratch}")
file(MAKE_DIRECTORY "${scratch}")

set(run_args run perl --warmup 2000 --measure 10000 --ckpt-every 3000 --csv)

message(STATUS "ASan ckpt drill: uninterrupted reference run")
execute_process(
    COMMAND "${nwsim}" ${run_args}
    OUTPUT_FILE "${scratch}/reference.csv"
    RESULT_VARIABLE rc)
if(rc)
    message(FATAL_ERROR "ASan ckpt drill: reference run failed (${rc})")
endif()

# SIGKILL is not interceptable: the process dies with no atexit, no
# stack unwind, no ASan teardown — exactly the orphaned-snapshot case
# the resume path must handle.
message(STATUS "ASan ckpt drill: SIGKILL after the 6000-inst checkpoint")
execute_process(
    COMMAND "${CMAKE_COMMAND}" -E env NWSIM_CKPT_TEST_KILL_AT=6000
            "${nwsim}" ${run_args} --ckpt-dir "${scratch}/ckpts"
    OUTPUT_FILE "${scratch}/killed.csv"
    RESULT_VARIABLE rc)
if(rc EQUAL 0)
    message(FATAL_ERROR "ASan ckpt drill: kill run exited 0 — the "
                        "SIGKILL hook never fired")
endif()

file(GLOB snapshots "${scratch}/ckpts/*.nwck")
if(NOT snapshots)
    message(FATAL_ERROR "ASan ckpt drill: SIGKILL left no durable "
                        ".nwck snapshot in ${scratch}/ckpts")
endif()

message(STATUS "ASan ckpt drill: resuming from the orphaned snapshot")
execute_process(
    COMMAND "${nwsim}" ${run_args} --ckpt-dir "${scratch}/ckpts"
    OUTPUT_FILE "${scratch}/resumed.csv"
    RESULT_VARIABLE rc)
if(rc)
    message(FATAL_ERROR "ASan ckpt drill: resumed run failed (${rc})")
endif()

execute_process(
    COMMAND "${CMAKE_COMMAND}" -E compare_files
            "${scratch}/reference.csv" "${scratch}/resumed.csv"
    RESULT_VARIABLE rc)
if(rc)
    message(FATAL_ERROR "ASan ckpt drill: resumed statistics differ "
                        "from the uninterrupted reference")
endif()
message(STATUS "ASan ckpt drill: clean")
