# The loopback distributed smoke under AddressSanitizer (nested build),
# driven by ctest (labels `dist;sanitize`) as:
#
#   cmake -DSOURCE_DIR=<repo> -DWORK_DIR=<scratch> -P RunAsanDistSmoke.cmake
#
# The remote executor's socket plumbing, frame reassembly, fork-per-job
# worker daemons, and driver-side reassignment bookkeeping must all be
# memory-clean while a real two-worker sweep runs — and the distributed
# JSON must still match the thread executor byte for byte.
#
# Shares ${WORK_DIR}/asan-build with the ASan fault drill (ctest
# serializes them via RESOURCE_LOCK), so the instrumented tree is only
# built once per ctest invocation.

if(NOT SOURCE_DIR OR NOT WORK_DIR)
    message(FATAL_ERROR "usage: cmake -DSOURCE_DIR=<repo> "
                        "-DWORK_DIR=<scratch> -P RunAsanDistSmoke.cmake")
endif()

set(build_dir "${WORK_DIR}/asan-build")
file(MAKE_DIRECTORY "${build_dir}")

message(STATUS "ASan dist smoke: configuring in ${build_dir}")
execute_process(
    COMMAND "${CMAKE_COMMAND}" -S "${SOURCE_DIR}" -B "${build_dir}"
            -DNWSIM_SANITIZE=address
            -DCMAKE_BUILD_TYPE=RelWithDebInfo
    RESULT_VARIABLE rc)
if(rc)
    message(FATAL_ERROR "ASan dist smoke: configure failed (${rc})")
endif()

message(STATUS "ASan dist smoke: building nwsweep")
execute_process(
    COMMAND "${CMAKE_COMMAND}" --build "${build_dir}" --target nwsweep
            --parallel 4
    RESULT_VARIABLE rc)
if(rc)
    message(FATAL_ERROR "ASan dist smoke: build failed (${rc})")
endif()

set(nwsweep "${build_dir}/tools/nwsweep")
set(thread_json "${WORK_DIR}/asan_dist_thread.json")
set(remote_json "${WORK_DIR}/asan_dist_remote.json")
file(REMOVE "${thread_json}" "${remote_json}")

# detect_leaks off for the sweep itself: worker daemons leave their
# session via _Exit (deliberately — a forked child must not run the
# parent's destructors), which LeakSanitizer would misread.
set(asan_env "ASAN_OPTIONS=detect_leaks=0:allocator_may_return_null=1")

message(STATUS "ASan dist smoke: thread-executor reference run")
execute_process(
    COMMAND "${CMAKE_COMMAND}" -E env "${asan_env}"
            "${nwsweep}" --suite smoke --no-progress
            --json-no-timing --json "${thread_json}"
    RESULT_VARIABLE rc)
if(rc)
    message(FATAL_ERROR "ASan dist smoke: thread run failed (${rc})")
endif()

message(STATUS "ASan dist smoke: two-worker loopback distributed run")
execute_process(
    COMMAND "${CMAKE_COMMAND}" -E env "${asan_env}"
            "${nwsweep}" --suite smoke --no-progress
            --json-no-timing --json "${remote_json}"
            --spawn-workers 2
    RESULT_VARIABLE rc)
if(rc)
    message(FATAL_ERROR "ASan dist smoke: distributed run failed (${rc})")
endif()

execute_process(
    COMMAND "${CMAKE_COMMAND}" -E compare_files
            "${thread_json}" "${remote_json}"
    RESULT_VARIABLE rc)
if(rc)
    message(FATAL_ERROR "ASan dist smoke: distributed JSON differs "
                        "from the thread executor's")
endif()
message(STATUS "ASan dist smoke: clean and byte-identical")
