# Configure a nested UBSan build, build nwsim + nwsweep, and push the
# declarative configuration surface (docs/CONFIG.md) through it under
# halt_on_error=1. Driven by ctest (see tests/CMakeLists.txt, labels
# `config;sanitize`) as:
#
#   cmake -DSOURCE_DIR=... -DWORK_DIR=... -P RunUbsanConfigSmoke.cmake
#
# Undefined behaviour anywhere on the config path — the sectioned
# parser, $(var)/arithmetic substitution, the field-table binding, the
# workload generator, or a .cfg-driven sweep — fails the test. The
# build tree is shared with the other RunUbsan*.cmake scripts (same
# flags), guarded by the ubsan_build ctest resource lock.

if(NOT SOURCE_DIR OR NOT WORK_DIR)
    message(FATAL_ERROR "usage: cmake -DSOURCE_DIR=<repo> "
                        "-DWORK_DIR=<scratch> -P RunUbsanConfigSmoke.cmake")
endif()

set(build_dir "${WORK_DIR}/ubsan-build")
file(MAKE_DIRECTORY "${build_dir}")

message(STATUS "UBSan config smoke: configuring in ${build_dir}")
execute_process(
    COMMAND "${CMAKE_COMMAND}" -S "${SOURCE_DIR}" -B "${build_dir}"
            -DNWSIM_SANITIZE=undefined
            -DCMAKE_BUILD_TYPE=RelWithDebInfo
    RESULT_VARIABLE rc)
if(rc)
    message(FATAL_ERROR "UBSan config smoke: configure failed (${rc})")
endif()

message(STATUS "UBSan config smoke: building nwsim and nwsweep")
execute_process(
    COMMAND "${CMAKE_COMMAND}" --build "${build_dir}"
            --target nwsim nwsweep --parallel 4
    RESULT_VARIABLE rc)
if(rc)
    message(FATAL_ERROR "UBSan config smoke: build failed (${rc})")
endif()

set(env_cmd "${CMAKE_COMMAND}" -E env UBSAN_OPTIONS=halt_on_error=1)

# Twin identity through the instrumented parser: the shipped .cfg of
# every preset must resolve to the identical machine (config diff exits
# nonzero on any differing field).
foreach(preset baseline packing packing-replay issue8)
    message(STATUS "UBSan config smoke: diff ${preset} vs its .cfg twin")
    execute_process(
        COMMAND ${env_cmd} "${build_dir}/tools/nwsim" config diff
                "${preset}" "${SOURCE_DIR}/configs/${preset}.cfg"
        OUTPUT_QUIET
        RESULT_VARIABLE rc)
    if(rc)
        message(FATAL_ERROR "UBSan config smoke: ${preset} twin "
                            "diverged or tripped UBSan (${rc})")
    endif()
endforeach()

# A generated workload under the lockstep checker: wgen text emission,
# assembly, and simulation on the instrumented build.
message(STATUS "UBSan config smoke: checked wgen run")
execute_process(
    COMMAND ${env_cmd} "${build_dir}/tools/nwsim" run
            "wgen:seed=7,ops=32,iters=8,w16=70,w33=15,w64=15" --check
            --warmup 0 --measure 2000000
    OUTPUT_QUIET
    RESULT_VARIABLE rc)
if(rc)
    message(FATAL_ERROR "UBSan config smoke: wgen --check run "
                        "failed (${rc})")
endif()

# A small .cfg-driven sweep end to end: sweep file parsing, machine
# file inheritance, [workload] sections, and the campaign engine.
message(STATUS "UBSan config smoke: .cfg-driven sweep")
execute_process(
    COMMAND ${env_cmd} "${build_dir}/tools/nwsweep"
            --sweep "${SOURCE_DIR}/configs/sweep-example.cfg"
            --jobs 2 --no-progress
            --json "${WORK_DIR}/ubsan_config_sweep.json"
    RESULT_VARIABLE rc)
if(rc)
    message(FATAL_ERROR "UBSan config smoke: sweep failed (${rc})")
endif()
message(STATUS "UBSan config smoke: clean")
