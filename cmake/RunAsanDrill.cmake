# Configure a nested AddressSanitizer build of the campaign engine,
# build nwsweep, and run the fault-injection drill under it. Driven by
# ctest (see tests/CMakeLists.txt, label `robustness`) as:
#
#   cmake -DSOURCE_DIR=... -DWORK_DIR=... -P RunAsanDrill.cmake
#
# The drill injects a hang, a crash, and an OOM into an otherwise-real
# smoke campaign; nwsweep must record them as timeout / crashed(SIGSEGV)
# / resource-limit, write reproducer bundles, finish every sibling job,
# and exit 0 — all with ASan watching the executor for memory errors.
#
# ASan normally intercepts SIGSEGV/SIGABRT and exits with its own
# status, which would defeat the drill's signal classification; with
# handle_segv=0 / handle_abort=0 the injected faults die by their real
# signals and the parent's waitpid() taxonomy is what gets tested.

if(NOT SOURCE_DIR OR NOT WORK_DIR)
    message(FATAL_ERROR "usage: cmake -DSOURCE_DIR=<repo> "
                        "-DWORK_DIR=<scratch> -P RunAsanDrill.cmake")
endif()

set(build_dir "${WORK_DIR}/asan-build")
file(MAKE_DIRECTORY "${build_dir}")

message(STATUS "ASan drill: configuring in ${build_dir}")
execute_process(
    COMMAND "${CMAKE_COMMAND}" -S "${SOURCE_DIR}" -B "${build_dir}"
            -DNWSIM_SANITIZE=address
            -DCMAKE_BUILD_TYPE=RelWithDebInfo
    RESULT_VARIABLE rc)
if(rc)
    message(FATAL_ERROR "ASan drill: configure failed (${rc})")
endif()

message(STATUS "ASan drill: building nwsweep")
execute_process(
    COMMAND "${CMAKE_COMMAND}" --build "${build_dir}" --target nwsweep
            --parallel 4
    RESULT_VARIABLE rc)
if(rc)
    message(FATAL_ERROR "ASan drill: build failed (${rc})")
endif()

message(STATUS "ASan drill: injecting hang/crash/oom into the smoke suite")
execute_process(
    COMMAND "${CMAKE_COMMAND}" -E env
            "ASAN_OPTIONS=handle_segv=0:handle_abort=0:allocator_may_return_null=1"
            "${build_dir}/tools/nwsweep" --suite smoke
            --inject-fault hang,crash,oom --timeout 30 --no-progress
            --bundle-dir "${WORK_DIR}/asan_drill_bundles"
            --json "${WORK_DIR}/asan_drill.json"
    RESULT_VARIABLE rc)
if(rc)
    message(FATAL_ERROR "ASan drill: nwsweep drill failed (${rc})")
endif()
message(STATUS "ASan drill: clean")
