# Checkpoint/restore round-trip smoke (docs/CHECKPOINT.md). Driven by
# ctest (see tests/CMakeLists.txt, labels `ckpt;robustness`) as:
#
#   cmake -DNWSIM=<nwsim binary> -DWORK_DIR=<scratch> -P RunCkptSmoke.cmake
#
# The drill exercises the whole interrupt/resume loop at the CLI level:
#
#   1. Reference run with a checkpoint cadence but no --ckpt-dir.
#   2. The same run with --ckpt-dir, interrupted mid-simulation via the
#      NWSIM_CKPT_TEST_STOP_AT hook — must exit with status 9
#      (interrupted) and leave a durable .nwck snapshot behind.
#   3. Rerun of the identical command — must resume from the snapshot,
#      finish with CSV statistics byte-identical to the reference, and
#      unlink the consumed checkpoint.

if(NOT NWSIM OR NOT WORK_DIR)
    message(FATAL_ERROR "usage: cmake -DNWSIM=<binary> "
                        "-DWORK_DIR=<scratch> -P RunCkptSmoke.cmake")
endif()

set(scratch "${WORK_DIR}/ckpt_smoke")
file(REMOVE_RECURSE "${scratch}")
file(MAKE_DIRECTORY "${scratch}")

set(run_args run perl --warmup 2000 --measure 10000 --ckpt-every 3000 --csv)

message(STATUS "ckpt smoke: uninterrupted reference run")
execute_process(
    COMMAND "${NWSIM}" ${run_args}
    OUTPUT_FILE "${scratch}/reference.csv"
    RESULT_VARIABLE rc)
if(rc)
    message(FATAL_ERROR "ckpt smoke: reference run failed (${rc})")
endif()

message(STATUS "ckpt smoke: interrupting at instruction 6000")
execute_process(
    COMMAND "${CMAKE_COMMAND}" -E env NWSIM_CKPT_TEST_STOP_AT=6000
            "${NWSIM}" ${run_args} --ckpt-dir "${scratch}/ckpts"
    OUTPUT_FILE "${scratch}/interrupted.csv"
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 9)
    message(FATAL_ERROR "ckpt smoke: interrupted run exited ${rc}, "
                        "want 9 (exitcode::Interrupted)")
endif()

file(GLOB snapshots "${scratch}/ckpts/*.nwck")
if(NOT snapshots)
    message(FATAL_ERROR "ckpt smoke: interrupt left no .nwck snapshot "
                        "in ${scratch}/ckpts")
endif()

message(STATUS "ckpt smoke: resuming from the snapshot")
execute_process(
    COMMAND "${NWSIM}" ${run_args} --ckpt-dir "${scratch}/ckpts"
    OUTPUT_FILE "${scratch}/resumed.csv"
    RESULT_VARIABLE rc)
if(rc)
    message(FATAL_ERROR "ckpt smoke: resumed run failed (${rc})")
endif()

execute_process(
    COMMAND "${CMAKE_COMMAND}" -E compare_files
            "${scratch}/reference.csv" "${scratch}/resumed.csv"
    RESULT_VARIABLE rc)
if(rc)
    message(FATAL_ERROR "ckpt smoke: resumed statistics differ from the "
                        "uninterrupted reference")
endif()

file(GLOB leftovers "${scratch}/ckpts/*.nwck")
if(leftovers)
    message(FATAL_ERROR "ckpt smoke: consumed checkpoint not unlinked: "
                        "${leftovers}")
endif()
message(STATUS "ckpt smoke: resumed run bit-identical, snapshot consumed")
