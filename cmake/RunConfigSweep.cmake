# Declarative-sweep acceptance drill (docs/CONFIG.md "Sweep files").
# Driven by ctest (see tests/CMakeLists.txt, labels `config;campaign`)
# as:
#
#   cmake -DNWSWEEP=<nwsweep binary> -DSOURCE_DIR=<repo>
#         -DWORK_DIR=<scratch> -P RunConfigSweep.cmake
#
# Runs the shipped 1000-scenario sweep (configs/sweep-1000.cfg: four
# .cfg machines x 250 generated workloads, all sampled) entirely from
# config files, then proves the campaign plumbing holds at that scale:
#
#   1. fresh journaled run -> reference --json-no-timing document;
#   2. rerun with --resume on the same journal: every outcome must be
#      adopted (no re-simulation) and the JSON byte-identical;
#   3. fresh sharded run (--shard 2) with its own journal, then a
#      sharded --resume rerun: byte-identical again.
#
# Sharded and unsharded documents are NOT compared to each other —
# shard mode fast-forwards the functional stream and runs per-period
# detail, which is a different (self-consistent) schedule; shard-count
# invariance itself is RunShardSmoke.cmake's job.

if(NOT NWSWEEP OR NOT SOURCE_DIR OR NOT WORK_DIR)
    message(FATAL_ERROR "usage: cmake -DNWSWEEP=<binary> "
                        "-DSOURCE_DIR=<repo> -DWORK_DIR=<scratch> "
                        "-P RunConfigSweep.cmake")
endif()

set(scratch "${WORK_DIR}/config_sweep")
file(REMOVE_RECURSE "${scratch}")
file(MAKE_DIRECTORY "${scratch}")

# The sweep file names its machines as sibling .cfg files, so nwsweep
# must resolve them relative to the shipped configs/ directory.
set(sweep_file "${SOURCE_DIR}/configs/sweep-1000.cfg")
set(sweep_args --sweep "${sweep_file}" --no-progress --json-no-timing)

message(STATUS "config sweep: fresh journaled 1000-scenario run")
execute_process(
    COMMAND "${NWSWEEP}" ${sweep_args}
            --journal "${scratch}/sweep.journal"
            --json "${scratch}/fresh.json"
    RESULT_VARIABLE rc)
if(rc)
    message(FATAL_ERROR "config sweep: fresh run failed (${rc})")
endif()

message(STATUS "config sweep: --resume rerun from the journal")
execute_process(
    COMMAND "${NWSWEEP}" ${sweep_args}
            --journal "${scratch}/sweep.journal" --resume
            --json "${scratch}/resumed.json"
    RESULT_VARIABLE rc)
if(rc)
    message(FATAL_ERROR "config sweep: resume rerun failed (${rc})")
endif()

execute_process(
    COMMAND "${CMAKE_COMMAND}" -E compare_files
            "${scratch}/fresh.json" "${scratch}/resumed.json"
    RESULT_VARIABLE rc)
if(rc)
    message(FATAL_ERROR "config sweep: resumed statistics differ from "
                        "the fresh run (fresh.json != resumed.json)")
endif()

message(STATUS "config sweep: fresh sharded run (--shard 2)")
execute_process(
    COMMAND "${NWSWEEP}" ${sweep_args} --shard 2
            --journal "${scratch}/shard.journal"
            --json "${scratch}/shard_fresh.json"
    RESULT_VARIABLE rc)
if(rc)
    message(FATAL_ERROR "config sweep: sharded run failed (${rc})")
endif()

message(STATUS "config sweep: sharded --resume rerun")
execute_process(
    COMMAND "${NWSWEEP}" ${sweep_args} --shard 2
            --journal "${scratch}/shard.journal" --resume
            --json "${scratch}/shard_resumed.json"
    RESULT_VARIABLE rc)
if(rc)
    message(FATAL_ERROR "config sweep: sharded resume failed (${rc})")
endif()

execute_process(
    COMMAND "${CMAKE_COMMAND}" -E compare_files
            "${scratch}/shard_fresh.json" "${scratch}/shard_resumed.json"
    RESULT_VARIABLE rc)
if(rc)
    message(FATAL_ERROR "config sweep: sharded resume differs from the "
                        "fresh sharded run")
endif()

message(STATUS "config sweep: 1000 scenarios, resume and shard drills "
               "byte-identical")
