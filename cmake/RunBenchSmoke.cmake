# Run the simulation-speed smoke bench and sanity-check its JSON
# artifact. Driven by ctest (see tests/CMakeLists.txt, label `perf`) as:
#
#   cmake -DNWSIM=<nwsim binary> -DWORK_DIR=<scratch> -P RunBenchSmoke.cmake
#
# `nwsim bench` itself enforces the hard floor (every job ok, non-zero
# KIPS on the decode-cached variant) via its exit code; this wrapper
# checks that the emitted document carries the schema docs/PERF.md
# promises and that the decode caches are actually earning their keep
# (>95% hit rate on the smoke grid's hot loops).

if(NOT NWSIM OR NOT WORK_DIR)
    message(FATAL_ERROR "usage: cmake -DNWSIM=<nwsim> "
                        "-DWORK_DIR=<scratch> -P RunBenchSmoke.cmake")
endif()

set(json "${WORK_DIR}/bench_smoke.json")

message(STATUS "perf smoke: running nwsim bench --suite smoke")
execute_process(
    COMMAND "${NWSIM}" bench --suite smoke --no-progress
            --json "${json}"
    RESULT_VARIABLE rc)
if(rc)
    message(FATAL_ERROR "perf smoke: nwsim bench failed (${rc})")
endif()

file(READ "${json}" doc)
foreach(key
        "\"bench\"" "\"workloads\"" "\"configs\""
        "\"warmup_insts\"" "\"measure_insts\""
        "\"event\"" "\"uncached\"" "\"per_job\""
        "\"total_seconds\"" "\"committed_kinsts\"" "\"sim_cycles\""
        "\"kips\"" "\"sim_cycles_per_second\""
        "\"decode_lookups\"" "\"decode_hits\"" "\"decode_hit_rate\""
        "\"speedup_wall_clock\"")
    string(FIND "${doc}" "${key}" pos)
    if(pos EQUAL -1)
        message(FATAL_ERROR
                "perf smoke: ${json} is missing key ${key}")
    endif()
endforeach()

# The "event" variant is written first, so the document's first
# decode_hit_rate is the decode-cached grid's. The smoke workloads are
# loop kernels: anything under 95% means chaining or invalidation broke.
string(REGEX MATCH "\"decode_hit_rate\": ([0-9.eE+-]+)" _ "${doc}")
if(NOT CMAKE_MATCH_1)
    message(FATAL_ERROR "perf smoke: could not parse decode_hit_rate")
endif()
set(hit_rate "${CMAKE_MATCH_1}")
if(hit_rate LESS_EQUAL 0.95)
    message(FATAL_ERROR
            "perf smoke: decode-cache hit rate ${hit_rate} <= 0.95")
endif()
message(STATUS "perf smoke: clean (decode hit rate ${hit_rate})")
