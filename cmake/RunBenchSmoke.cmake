# Run the simulation-speed smoke bench and sanity-check its JSON
# artifact. Driven by ctest (see tests/CMakeLists.txt, label `perf`) as:
#
#   cmake -DNWSIM=<nwsim binary> -DWORK_DIR=<scratch> -P RunBenchSmoke.cmake
#
# `nwsim bench` itself enforces the hard floor (every job ok, non-zero
# KIPS on the decode-cached variant) via its exit code; this wrapper
# checks that the emitted document carries the schema docs/PERF.md
# promises, that the decode caches are actually earning their keep
# (>95% hit rate on the smoke grid's hot loops), and that superblock
# traces never make the sampled grid slower than its `+notrace` twin
# (with a noise margin — the smoke windows are short).

if(NOT NWSIM OR NOT WORK_DIR)
    message(FATAL_ERROR "usage: cmake -DNWSIM=<nwsim> "
                        "-DWORK_DIR=<scratch> -P RunBenchSmoke.cmake")
endif()

set(json "${WORK_DIR}/bench_smoke.json")

# The explicit short sample schedule makes the smoke's sampled variants
# actually fast-forward between probes (the default 50000-inst period
# doesn't fit the smoke budget), so the traced stream runs for real.
# The widened measure window keeps each variant's wall-clock long
# enough that the traced-vs-untraced ratio below isn't pure scheduler
# jitter on a loaded host.
message(STATUS "perf smoke: running nwsim bench --suite smoke")
execute_process(
    COMMAND "${NWSIM}" bench --suite smoke --no-progress
            --warmup 10000 --measure 50000
            --sample-schedule 4000:500:1500
            --json "${json}"
    RESULT_VARIABLE rc)
if(rc)
    message(FATAL_ERROR "perf smoke: nwsim bench failed (${rc})")
endif()

file(READ "${json}" doc)
foreach(key
        "\"bench\"" "\"workloads\"" "\"configs\""
        "\"warmup_insts\"" "\"measure_insts\"" "\"dispatch\""
        "\"event\"" "\"uncached\"" "\"per_job\""
        "\"total_seconds\"" "\"committed_kinsts\"" "\"sim_cycles\""
        "\"kips\"" "\"sim_cycles_per_second\""
        "\"decode_lookups\"" "\"decode_hits\"" "\"decode_hit_rate\""
        "\"superblock_formed\"" "\"superblock_entries\""
        "\"superblock_traced_insts\"" "\"superblock_guard_exits\""
        "\"sampled_notrace\"" "\"trace_speedup_effective\""
        "\"speedup_wall_clock\"")
    string(FIND "${doc}" "${key}" pos)
    if(pos EQUAL -1)
        message(FATAL_ERROR
                "perf smoke: ${json} is missing key ${key}")
    endif()
endforeach()

# The "event" variant is written first, so the document's first
# decode_hit_rate is the decode-cached grid's. The smoke workloads are
# loop kernels: anything under 95% means chaining or invalidation broke.
string(REGEX MATCH "\"decode_hit_rate\": ([0-9.eE+-]+)" _ "${doc}")
if(NOT CMAKE_MATCH_1)
    message(FATAL_ERROR "perf smoke: could not parse decode_hit_rate")
endif()
set(hit_rate "${CMAKE_MATCH_1}")
if(hit_rate LESS_EQUAL 0.95)
    message(FATAL_ERROR
            "perf smoke: decode-cache hit rate ${hit_rate} <= 0.95")
endif()

# The trace layer must actually run: the sampled variant (third
# superblock_traced_insts in document order, after event and uncached)
# has to report traced coverage, or the promotion hook is dead. This
# check is timing-free, so it can never flake.
string(REGEX MATCHALL "\"superblock_traced_insts\": ([0-9]+)"
       sbinsts "${doc}")
list(LENGTH sbinsts nsbinsts)
if(nsbinsts LESS 3)
    message(FATAL_ERROR "perf smoke: expected superblock_traced_insts "
                        "in >= 3 variants, found ${nsbinsts}")
endif()
list(GET sbinsts 2 sampled_sb_m)
string(REGEX REPLACE ".*: " "" sampled_sb "${sampled_sb_m}")
if(sampled_sb EQUAL 0)
    message(FATAL_ERROR "perf smoke: sampled variant executed zero "
                        "traced instructions — promotion hook dead?")
endif()

# Traced sampled runs must not be grossly slower than their +notrace
# twins. effective_kips appears once per sampled variant, "sampled"
# written before "sampled_notrace". This is a wall-clock ratio on a
# sub-second run, so single-core CI hosts show real scheduling jitter;
# the 0.6 factor tolerates that while still catching a trace layer
# whose formation overhead outweighs its dispatch savings (docs/PERF.md
# carries the controlled min-of-N measurement).
string(REGEX MATCHALL "\"effective_kips\": ([0-9.eE+-]+)" ekips "${doc}")
list(LENGTH ekips nekips)
if(NOT nekips EQUAL 2)
    message(FATAL_ERROR "perf smoke: expected 2 effective_kips entries "
                        "(sampled, sampled_notrace), found ${nekips}")
endif()
list(GET ekips 0 traced_m)
list(GET ekips 1 notrace_m)
string(REGEX REPLACE ".*: " "" traced "${traced_m}")
string(REGEX REPLACE ".*: " "" notrace "${notrace_m}")
# CMake math() is integer-only; compare via scaled integers.
string(REGEX REPLACE "\\..*" "" traced_int "${traced}")
string(REGEX REPLACE "\\..*" "" notrace_int "${notrace}")
math(EXPR lhs "100 * ${traced_int}")
math(EXPR rhs "60 * ${notrace_int}")
if(lhs LESS rhs)
    message(FATAL_ERROR "perf smoke: traced sampled effective KIPS "
            "${traced} < 0.6 * untraced ${notrace}")
endif()
message(STATUS "perf smoke: clean (decode hit rate ${hit_rate}, "
               "traced ${traced} vs +notrace ${notrace} effective KIPS)")
