# Run the simulation-speed smoke bench and sanity-check its JSON
# artifact. Driven by ctest (see tests/CMakeLists.txt, label `perf`) as:
#
#   cmake -DNWSIM=<nwsim binary> -DWORK_DIR=<scratch> -P RunBenchSmoke.cmake
#
# `nwsim bench` itself enforces the hard floor (every job ok, non-zero
# KIPS on the event scheduler) via its exit code; this wrapper checks
# that the emitted document carries the schema docs/PERF.md promises.

if(NOT NWSIM OR NOT WORK_DIR)
    message(FATAL_ERROR "usage: cmake -DNWSIM=<nwsim> "
                        "-DWORK_DIR=<scratch> -P RunBenchSmoke.cmake")
endif()

set(json "${WORK_DIR}/bench_smoke.json")

message(STATUS "perf smoke: running nwsim bench --suite smoke")
execute_process(
    COMMAND "${NWSIM}" bench --suite smoke --no-progress
            --json "${json}"
    RESULT_VARIABLE rc)
if(rc)
    message(FATAL_ERROR "perf smoke: nwsim bench failed (${rc})")
endif()

file(READ "${json}" doc)
foreach(key
        "\"bench\"" "\"workloads\"" "\"configs\""
        "\"warmup_insts\"" "\"measure_insts\""
        "\"event\"" "\"legacy\"" "\"per_job\""
        "\"total_seconds\"" "\"committed_kinsts\"" "\"sim_cycles\""
        "\"kips\"" "\"sim_cycles_per_second\""
        "\"speedup_wall_clock\"")
    string(FIND "${doc}" "${key}" pos)
    if(pos EQUAL -1)
        message(FATAL_ERROR
                "perf smoke: ${json} is missing key ${key}")
    endif()
endforeach()
message(STATUS "perf smoke: clean")
