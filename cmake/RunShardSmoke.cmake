# Shard-invariance smoke (docs/CHECKPOINT.md "Sharded sampled runs").
# Driven by ctest (see tests/CMakeLists.txt, label `ckpt`) as:
#
#   cmake -DNWSWEEP=<nwsweep binary> -DWORK_DIR=<scratch> -P RunShardSmoke.cmake
#
# The same sampled smoke sweep with --shard 1 and --shard 3: the planner
# fast-forwards the functional stream once per job, fans the sample
# periods across shard jobs, and the driver merges the shards back —
# the merged --json-no-timing documents must be byte-identical for
# every shard count (the canonical interval-order float fold in
# SampleAggregator::aggregate is what makes this exact, not merely
# close).

if(NOT NWSWEEP OR NOT WORK_DIR)
    message(FATAL_ERROR "usage: cmake -DNWSWEEP=<binary> "
                        "-DWORK_DIR=<scratch> -P RunShardSmoke.cmake")
endif()

set(scratch "${WORK_DIR}/shard_smoke")
file(REMOVE_RECURSE "${scratch}")
file(MAKE_DIRECTORY "${scratch}")

set(sweep_args --suite smoke --jobs 4 --no-progress --json-no-timing
    --configs "baseline+sample=4000:500:1500")

foreach(k 1 3)
    message(STATUS "shard smoke: sweeping with --shard ${k}")
    execute_process(
        COMMAND "${NWSWEEP}" ${sweep_args} --shard ${k}
                --json "${scratch}/shard${k}.json"
        RESULT_VARIABLE rc)
    if(rc)
        message(FATAL_ERROR "shard smoke: --shard ${k} sweep "
                            "failed (${rc})")
    endif()
endforeach()

execute_process(
    COMMAND "${CMAKE_COMMAND}" -E compare_files
            "${scratch}/shard1.json" "${scratch}/shard3.json"
    RESULT_VARIABLE rc)
if(rc)
    message(FATAL_ERROR "shard smoke: merged statistics depend on the "
                        "shard count (shard1.json != shard3.json)")
endif()
message(STATUS "shard smoke: merged sweeps byte-identical across K")
