# Loopback distributed-campaign smoke, driven by ctest (label `dist`):
#
#   cmake -DNWSWEEP=<nwsweep binary> -DWORK_DIR=<scratch> -P RunDistSmoke.cmake
#
# Runs the smoke grid twice — once on the in-process thread executor,
# once distributed over two freshly forked loopback worker daemons
# (--spawn-workers, a real TCP topology) with a journal — and requires
# the two --json-no-timing documents to be byte-identical. This is the
# executor API's core promise: per-job statistics do not depend on
# which backend ran the job, how many workers there were, or where
# they lived.

if(NOT NWSWEEP OR NOT WORK_DIR)
    message(FATAL_ERROR "usage: cmake -DNWSWEEP=<nwsweep> "
                        "-DWORK_DIR=<scratch> -P RunDistSmoke.cmake")
endif()

set(thread_json "${WORK_DIR}/dist_smoke_thread.json")
set(remote_json "${WORK_DIR}/dist_smoke_remote.json")
set(journal "${WORK_DIR}/dist_smoke.nwj")
file(REMOVE "${thread_json}" "${remote_json}" "${journal}")

message(STATUS "dist smoke: thread-executor reference run")
execute_process(
    COMMAND "${NWSWEEP}" --suite smoke --no-progress
            --json-no-timing --json "${thread_json}"
    RESULT_VARIABLE rc)
if(rc)
    message(FATAL_ERROR "dist smoke: thread run failed (${rc})")
endif()

message(STATUS "dist smoke: two-worker loopback distributed run")
execute_process(
    COMMAND "${NWSWEEP}" --suite smoke --no-progress
            --json-no-timing --json "${remote_json}"
            --spawn-workers 2 --journal "${journal}"
    RESULT_VARIABLE rc)
if(rc)
    message(FATAL_ERROR "dist smoke: distributed run failed (${rc})")
endif()

execute_process(
    COMMAND "${CMAKE_COMMAND}" -E compare_files
            "${thread_json}" "${remote_json}"
    RESULT_VARIABLE rc)
if(rc)
    message(FATAL_ERROR "dist smoke: distributed JSON differs from the "
                        "thread executor's (determinism regression)")
endif()
message(STATUS "dist smoke: byte-identical across executors")
