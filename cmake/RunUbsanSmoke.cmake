# Configure a nested UBSan build of the campaign engine, build nwsweep,
# and run the smoke campaign suite under halt_on_error=1. Driven by
# ctest (see tests/CMakeLists.txt, label `sanitize`) as:
#
#   cmake -DSOURCE_DIR=... -DWORK_DIR=... -P RunUbsanSmoke.cmake
#
# Undefined behaviour anywhere on the smoke campaign's path — the
# parallel fan-out, the pipeline, packing/gating arithmetic — fails the
# test.

if(NOT SOURCE_DIR OR NOT WORK_DIR)
    message(FATAL_ERROR "usage: cmake -DSOURCE_DIR=<repo> "
                        "-DWORK_DIR=<scratch> -P RunUbsanSmoke.cmake")
endif()

set(build_dir "${WORK_DIR}/ubsan-build")
file(MAKE_DIRECTORY "${build_dir}")

message(STATUS "UBSan smoke: configuring in ${build_dir}")
execute_process(
    COMMAND "${CMAKE_COMMAND}" -S "${SOURCE_DIR}" -B "${build_dir}"
            -DNWSIM_SANITIZE=undefined
            -DCMAKE_BUILD_TYPE=RelWithDebInfo
    RESULT_VARIABLE rc)
if(rc)
    message(FATAL_ERROR "UBSan smoke: configure failed (${rc})")
endif()

message(STATUS "UBSan smoke: building nwsweep")
execute_process(
    COMMAND "${CMAKE_COMMAND}" --build "${build_dir}" --target nwsweep
            --parallel 4
    RESULT_VARIABLE rc)
if(rc)
    message(FATAL_ERROR "UBSan smoke: build failed (${rc})")
endif()

message(STATUS "UBSan smoke: running the smoke campaign suite")
execute_process(
    COMMAND "${CMAKE_COMMAND}" -E env UBSAN_OPTIONS=halt_on_error=1
            "${build_dir}/tools/nwsweep" --suite smoke --jobs 4
            --no-progress --json "${WORK_DIR}/ubsan_smoke.json"
    RESULT_VARIABLE rc)
if(rc)
    message(FATAL_ERROR "UBSan smoke: nwsweep failed (${rc})")
endif()
message(STATUS "UBSan smoke: clean")
