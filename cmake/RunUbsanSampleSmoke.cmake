# Configure a nested UBSan build of the campaign engine, build nwsweep,
# and run the smoke suite in sampled mode (docs/SAMPLING.md) under
# halt_on_error=1. Driven by ctest (see tests/CMakeLists.txt, labels
# `sample;sanitize`) as:
#
#   cmake -DSOURCE_DIR=... -DWORK_DIR=... -P RunUbsanSampleSmoke.cmake
#
# Undefined behaviour anywhere on the sampled path — the functional
# stream, the architectural-state transplant into each probe core, the
# interval aggregation and error-bar statistics — fails the test. The
# build tree is shared with RunUbsanSmoke.cmake (same flags), guarded
# by the ubsan_build ctest resource lock.

if(NOT SOURCE_DIR OR NOT WORK_DIR)
    message(FATAL_ERROR "usage: cmake -DSOURCE_DIR=<repo> "
                        "-DWORK_DIR=<scratch> -P RunUbsanSampleSmoke.cmake")
endif()

set(build_dir "${WORK_DIR}/ubsan-build")
file(MAKE_DIRECTORY "${build_dir}")

message(STATUS "UBSan sampled smoke: configuring in ${build_dir}")
execute_process(
    COMMAND "${CMAKE_COMMAND}" -S "${SOURCE_DIR}" -B "${build_dir}"
            -DNWSIM_SANITIZE=undefined
            -DCMAKE_BUILD_TYPE=RelWithDebInfo
    RESULT_VARIABLE rc)
if(rc)
    message(FATAL_ERROR "UBSan sampled smoke: configure failed (${rc})")
endif()

message(STATUS "UBSan sampled smoke: building nwsweep")
execute_process(
    COMMAND "${CMAKE_COMMAND}" --build "${build_dir}" --target nwsweep
            --parallel 4
    RESULT_VARIABLE rc)
if(rc)
    message(FATAL_ERROR "UBSan sampled smoke: build failed (${rc})")
endif()

message(STATUS "UBSan sampled smoke: running the sampled smoke suite")
execute_process(
    COMMAND "${CMAKE_COMMAND}" -E env UBSAN_OPTIONS=halt_on_error=1
            "${build_dir}/tools/nwsweep" --suite smoke --jobs 2
            --configs
            "baseline+sample=4000:500:1500,packing-replay+sample=4000:500:1500:rand:7"
            --no-progress --json "${WORK_DIR}/ubsan_sampled_smoke.json"
    RESULT_VARIABLE rc)
if(rc)
    message(FATAL_ERROR "UBSan sampled smoke: nwsweep failed (${rc})")
endif()
message(STATUS "UBSan sampled smoke: clean")
