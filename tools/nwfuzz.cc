/**
 * @file
 * nwfuzz: random-program fuzzer for the out-of-order core.
 *
 *     nwfuzz [options]
 *
 * Generates seeded random programs biased toward narrow-width and
 * carry-boundary operands, runs each across the full config matrix
 * (baseline / gating / packing / packing-replay, at decode 4 and 8)
 * under the lockstep cosim oracle and the invariant checker, and —
 * when a case fails — shrinks it to a minimal reproducer written to
 * disk as replayable assembly (`nwsim run <repro>.s --check`).
 *
 * Options:
 *     --seeds N        number of cases to run (default 64)
 *     --seed-base N    first seed (default 1; case i uses seed base+i)
 *     --ops N          body ops per generated case (default 48)
 *     --iters N        loop iterations per case (default 6)
 *     --out DIR        where failing reproducers are written
 *                      (default: current directory)
 *     --inject-fault   self-test: corrupt one op of each case's core
 *                      view; every case must then FAIL, be shrunk, and
 *                      yield a reproducer — exercising the entire
 *                      catch-and-shrink loop on purpose
 *
 * Exit status (docs/ROBUSTNESS.md): 0 when every case behaved as
 * expected (clean normally, caught-and-shrunk under --inject-fault);
 * 4 when a case diverged under the checkers (or an injected fault
 * escaped them); 2 on usage errors; 3 on bad input; 7 on an internal
 * simulator error.
 */

#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>

#include "check/fuzz.hh"
#include "common/error.hh"

using namespace nwsim;

namespace
{

int
usage()
{
    std::cerr << "usage: nwfuzz [--seeds N] [--seed-base N] [--ops N]\n"
              << "              [--iters N] [--out DIR] [--inject-fault]\n";
    return exitcode::Usage;
}

/** Write the golden view of a shrunk case as a replayable .s file. */
std::string
writeReproducer(const FuzzCase &fc, const std::string &out_dir,
                const FuzzFailure &failure)
{
    std::filesystem::create_directories(out_dir);
    const std::string path = out_dir + "/nwfuzz-repro-seed" +
                             std::to_string(fc.seed) + ".s";
    std::ofstream out(path);
    out << "; reproducer shrunk from nwfuzz seed " << fc.seed << "\n"
        << "; failing config: " << failure.configName << "\n"
        << "; replay with: nwsim run " << path << " --check\n"
        << fuzzProgramText(fc, /*core_view=*/false);
    return path;
}

int
runMain(int argc, char **argv)
{
    u64 seeds = 64;
    u64 seed_base = 1;
    FuzzParams params;
    std::string out_dir = ".";
    bool inject_fault = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                usage();
                std::exit(exitcode::Usage);
            }
            return argv[++i];
        };
        if (arg == "--seeds")
            seeds = std::strtoull(next().c_str(), nullptr, 0);
        else if (arg == "--seed-base")
            seed_base = std::strtoull(next().c_str(), nullptr, 0);
        else if (arg == "--ops")
            params.numOps =
                static_cast<unsigned>(std::strtoul(next().c_str(),
                                                   nullptr, 0));
        else if (arg == "--iters")
            params.iterations =
                static_cast<unsigned>(std::strtoul(next().c_str(),
                                                   nullptr, 0));
        else if (arg == "--out")
            out_dir = next();
        else if (arg == "--inject-fault")
            inject_fault = true;
        else
            return usage();
    }

    const std::vector<FuzzConfig> matrix = fuzzConfigMatrix();
    u64 clean = 0, caught = 0, escaped = 0, failed = 0;

    for (u64 i = 0; i < seeds; ++i) {
        const u64 seed = seed_base + i;
        FuzzCase fc = generateFuzzCase(seed, params);
        if (inject_fault)
            markInjectedFault(fc, seed);

        const auto failure = runFuzzCase(fc, matrix);
        if (!failure) {
            if (inject_fault) {
                // The injected corruption reached commit unnoticed:
                // the checkers have a hole.
                std::cerr << "seed " << seed
                          << ": injected fault NOT caught\n";
                ++escaped;
            } else {
                ++clean;
            }
            continue;
        }

        if (inject_fault)
            ++caught;
        else
            ++failed;
        std::cerr << "seed " << seed << ": FAILED on "
                  << failure->configName << "\n"
                  << failure->report << "\n";

        const ShrinkOutcome shrunk = shrinkFuzzCase(fc, matrix);
        const u64 insts = fuzzCaseInstCount(shrunk.minimized);
        const std::string path =
            writeReproducer(shrunk.minimized, out_dir, shrunk.failure);
        std::cerr << "seed " << seed << ": shrunk to "
                  << shrunk.minimized.ops.size() << " body ops ("
                  << insts << " instructions) in " << shrunk.attempts
                  << " attempts -> " << path << "\n";
    }

    if (inject_fault) {
        std::cout << "nwfuzz: " << caught << "/" << seeds
                  << " injected faults caught and shrunk";
        if (escaped)
            std::cout << ", " << escaped << " ESCAPED";
        std::cout << "\n";
        return escaped ? exitcode::CheckDivergence : 0;
    }
    std::cout << "nwfuzz: " << clean << "/" << seeds
              << " seeds clean across " << matrix.size() << " configs";
    if (failed)
        std::cout << ", " << failed << " FAILED (reproducers in "
                  << out_dir << ")";
    std::cout << "\n";
    return failed ? exitcode::CheckDivergence : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        return runMain(argc, argv);
    } catch (const SimError &e) {
        std::cerr << "nwfuzz: " << errorKindName(e.kind()) << ": "
                  << e.what() << "\n";
        return e.exitCode();
    } catch (const std::exception &e) {
        std::cerr << "nwfuzz: internal error: " << e.what() << "\n";
        return exitcode::Internal;
    }
}
