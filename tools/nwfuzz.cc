/**
 * @file
 * nwfuzz: random-program fuzzer for the out-of-order core.
 *
 *     nwfuzz [options]
 *
 * Generates seeded random programs biased toward narrow-width and
 * carry-boundary operands, runs each across the full config matrix
 * (baseline / gating / packing / packing-replay, at decode 4 and 8)
 * under the lockstep cosim oracle and the invariant checker, and —
 * when a case fails — shrinks it to a minimal reproducer written to
 * disk as replayable assembly (`nwsim run <repro>.s --check`).
 *
 * Options:
 *     --seeds N        number of cases to run (default 64)
 *     --seed-base N    first seed (default 1; case i uses seed base+i)
 *     --ops N          body ops per generated case (default 48)
 *     --iters N        loop iterations per case (default 6)
 *     --out DIR        where failing reproducers are written
 *                      (default: current directory)
 *     --realistic      draw cases from the workload generator
 *                      (cfg/wgen.hh) instead of the adversarial IR:
 *                      each seed picks a random knob vector — width
 *                      profile, op mix, region/stride shape — and the
 *                      generated program runs across the same config
 *                      matrix under the same checkers. Failing cases
 *                      are written as replayable .s files whose header
 *                      names the exact `wgen:` spec
 *     --inject-fault   self-test: corrupt one op of each case's core
 *                      view; every case must then FAIL, be shrunk, and
 *                      yield a reproducer — exercising the entire
 *                      catch-and-shrink loop on purpose
 *                      (incompatible with --realistic)
 *
 * Exit status (docs/ROBUSTNESS.md): 0 when every case behaved as
 * expected (clean normally, caught-and-shrunk under --inject-fault);
 * 4 when a case diverged under the checkers (or an injected fault
 * escaped them); 2 on usage errors; 3 on bad input; 7 on an internal
 * simulator error.
 */

#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>

#include "cfg/wgen.hh"
#include "check/fuzz.hh"
#include "check/session.hh"
#include "common/error.hh"
#include "common/rng.hh"

using namespace nwsim;

namespace
{

int
usage()
{
    std::cerr << "usage: nwfuzz [--seeds N] [--seed-base N] [--ops N]\n"
              << "              [--iters N] [--out DIR] [--realistic]\n"
              << "              [--inject-fault]\n";
    return exitcode::Usage;
}

/**
 * Random-but-valid generator knobs for one --realistic case: every
 * draw stays inside the knob table's ranges, so each case is exactly
 * the program a user could ask for with the printed `wgen:` spec.
 */
cfg::WgenParams
realisticParams(u64 seed)
{
    SplitMix64 rng(seed ^ 0x6e77667a72656164ULL);
    cfg::WgenParams p;
    p.seed = seed;
    p.ops = 16 + static_cast<unsigned>(rng.below(49));     // 16..64
    p.iters = 4 + static_cast<unsigned>(rng.below(13));    // 4..16
    p.blocks = 1 + static_cast<unsigned>(rng.below(3));    // 1..3
    // Width profile: at least one weight nonzero by construction.
    p.w16 = 1 + static_cast<unsigned>(rng.below(100));
    p.w33 = static_cast<unsigned>(rng.below(101));
    p.w64 = static_cast<unsigned>(rng.below(101));
    p.alu = 1 + static_cast<unsigned>(rng.below(50));
    p.aluimm = static_cast<unsigned>(rng.below(31));
    p.ldconst = static_cast<unsigned>(rng.below(21));
    p.load = static_cast<unsigned>(rng.below(31));
    p.store = static_cast<unsigned>(rng.below(21));
    p.branch = static_cast<unsigned>(rng.below(16));
    p.regions = 1 + static_cast<unsigned>(rng.below(4));   // 1..4
    p.regionBytes = 64u << rng.below(8);                   // 64..8192
    p.stride = 8 * (1 + static_cast<unsigned>(rng.below(8)));
    p.randmem = static_cast<unsigned>(rng.below(101));
    return p;
}

/**
 * One --realistic case: a generated program across the full config
 * matrix under the lockstep oracle + invariant checker. Returns the
 * name of the first failing config, or "" when clean.
 */
std::string
runRealisticCase(const Program &prog, const std::string &spec,
                 const std::vector<FuzzConfig> &matrix,
                 std::string *report)
{
    // Generated programs halt on their own; the measure budget is just
    // a runaway backstop far above any knob-legal program length.
    RunOptions opts;
    opts.warmupInsts = 0;
    opts.fastWarmup = false;
    opts.measureInsts = 50'000'000;
    for (const FuzzConfig &fc : matrix) {
        const CheckedRunOutcome out =
            runCheckedProgram(prog, fc.config, opts, spec, fc.name);
        if (!out.ok) {
            *report = out.report;
            return fc.name;
        }
    }
    return "";
}

int
realisticMain(u64 seeds, u64 seed_base, const std::string &out_dir)
{
    const std::vector<FuzzConfig> matrix = fuzzConfigMatrix();
    u64 clean = 0, failed = 0;
    for (u64 i = 0; i < seeds; ++i) {
        const u64 seed = seed_base + i;
        const cfg::WgenParams params = realisticParams(seed);
        const std::string spec = cfg::canonicalWgenSpec(params);
        const std::string text = cfg::wgenProgramText(params);
        std::string report;
        const std::string bad =
            runRealisticCase(cfg::wgenProgram(params), spec, matrix,
                             &report);
        if (bad.empty()) {
            ++clean;
            continue;
        }
        ++failed;
        std::filesystem::create_directories(out_dir);
        const std::string path = out_dir + "/nwfuzz-realistic-seed" +
                                 std::to_string(seed) + ".s";
        std::ofstream out(path);
        out << "; generated workload, " << spec << "\n"
            << "; failing config: " << bad << "\n"
            << "; replay with: nwsim run " << path << " --check\n"
            << text;
        std::cerr << "seed " << seed << ": FAILED on " << bad << "\n"
                  << report << "\nreproducer -> " << path << "\n";
    }
    std::cout << "nwfuzz: " << clean << "/" << seeds
              << " realistic seeds clean across " << matrix.size()
              << " configs";
    if (failed)
        std::cout << ", " << failed << " FAILED (reproducers in "
                  << out_dir << ")";
    std::cout << "\n";
    return failed ? exitcode::CheckDivergence : 0;
}

/** Write the golden view of a shrunk case as a replayable .s file. */
std::string
writeReproducer(const FuzzCase &fc, const std::string &out_dir,
                const FuzzFailure &failure)
{
    std::filesystem::create_directories(out_dir);
    const std::string path = out_dir + "/nwfuzz-repro-seed" +
                             std::to_string(fc.seed) + ".s";
    std::ofstream out(path);
    out << "; reproducer shrunk from nwfuzz seed " << fc.seed << "\n"
        << "; failing config: " << failure.configName << "\n"
        << "; replay with: nwsim run " << path << " --check\n"
        << fuzzProgramText(fc, /*core_view=*/false);
    return path;
}

int
runMain(int argc, char **argv)
{
    u64 seeds = 64;
    u64 seed_base = 1;
    FuzzParams params;
    std::string out_dir = ".";
    bool inject_fault = false;
    bool realistic = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                usage();
                std::exit(exitcode::Usage);
            }
            return argv[++i];
        };
        if (arg == "--seeds")
            seeds = std::strtoull(next().c_str(), nullptr, 0);
        else if (arg == "--seed-base")
            seed_base = std::strtoull(next().c_str(), nullptr, 0);
        else if (arg == "--ops")
            params.numOps =
                static_cast<unsigned>(std::strtoul(next().c_str(),
                                                   nullptr, 0));
        else if (arg == "--iters")
            params.iterations =
                static_cast<unsigned>(std::strtoul(next().c_str(),
                                                   nullptr, 0));
        else if (arg == "--out")
            out_dir = next();
        else if (arg == "--realistic")
            realistic = true;
        else if (arg == "--inject-fault")
            inject_fault = true;
        else
            return usage();
    }
    if (realistic && inject_fault) {
        std::cerr << "nwfuzz: --realistic and --inject-fault are "
                     "mutually exclusive\n";
        return usage();
    }
    if (realistic)
        return realisticMain(seeds, seed_base, out_dir);

    const std::vector<FuzzConfig> matrix = fuzzConfigMatrix();
    u64 clean = 0, caught = 0, escaped = 0, failed = 0;

    for (u64 i = 0; i < seeds; ++i) {
        const u64 seed = seed_base + i;
        FuzzCase fc = generateFuzzCase(seed, params);
        if (inject_fault)
            markInjectedFault(fc, seed);

        const auto failure = runFuzzCase(fc, matrix);
        if (!failure) {
            if (inject_fault) {
                // The injected corruption reached commit unnoticed:
                // the checkers have a hole.
                std::cerr << "seed " << seed
                          << ": injected fault NOT caught\n";
                ++escaped;
            } else {
                ++clean;
            }
            continue;
        }

        if (inject_fault)
            ++caught;
        else
            ++failed;
        std::cerr << "seed " << seed << ": FAILED on "
                  << failure->configName << "\n"
                  << failure->report << "\n";

        const ShrinkOutcome shrunk = shrinkFuzzCase(fc, matrix);
        const u64 insts = fuzzCaseInstCount(shrunk.minimized);
        const std::string path =
            writeReproducer(shrunk.minimized, out_dir, shrunk.failure);
        std::cerr << "seed " << seed << ": shrunk to "
                  << shrunk.minimized.ops.size() << " body ops ("
                  << insts << " instructions) in " << shrunk.attempts
                  << " attempts -> " << path << "\n";
    }

    if (inject_fault) {
        std::cout << "nwfuzz: " << caught << "/" << seeds
                  << " injected faults caught and shrunk";
        if (escaped)
            std::cout << ", " << escaped << " ESCAPED";
        std::cout << "\n";
        return escaped ? exitcode::CheckDivergence : 0;
    }
    std::cout << "nwfuzz: " << clean << "/" << seeds
              << " seeds clean across " << matrix.size() << " configs";
    if (failed)
        std::cout << ", " << failed << " FAILED (reproducers in "
                  << out_dir << ")";
    std::cout << "\n";
    return failed ? exitcode::CheckDivergence : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        return runMain(argc, argv);
    } catch (const SimError &e) {
        std::cerr << "nwfuzz: " << errorKindName(e.kind()) << ": "
                  << e.what() << "\n";
        return e.exitCode();
    } catch (const std::exception &e) {
        std::cerr << "nwfuzz: internal error: " << e.what() << "\n";
        return exitcode::Internal;
    }
}
