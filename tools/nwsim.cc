/**
 * @file
 * nwsim command-line front end.
 *
 *     nwsim list
 *         List the built-in workloads (Tables 2 and 3 proxies).
 *
 *     nwsim run <workload | file.s> [options]
 *         Simulate a built-in workload or an assembly source file.
 *
 * Options:
 *     --config SPEC     a full campaign config spec: base preset
 *                       (baseline | packing | packing-replay | issue8)
 *                       plus +modifiers, e.g. packing-replay+decode8
 *                       (default: baseline) — same grammar as nwsweep,
 *                       so a reproducer bundle's replay line pastes
 *                       straight into nwsim
 *     --decode8         widen fetch/decode to 8 (Section 5.4)
 *     --perfect-bp      perfect branch prediction (oracle fetch)
 *     --early-out-mult  PPC603-style early-out multiplies
 *     --warmup N        fast-mode warmup instructions (default 50000;
 *                       ignored for .s files, which run to completion)
 *     --measure N       measured instructions (default 400000)
 *     --trace           print a per-event pipeline trace (small runs!)
 *     --csv             machine-readable stats (key,value lines)
 *     --check           run under the lockstep cosim oracle and the
 *                       invariant checker (docs/CHECKING.md); print a
 *                       first-divergence report on any mismatch
 *
 * Exit status (docs/ROBUSTNESS.md): 0 ok; 2 usage; 3 bad input
 * (unknown workload/config, malformed assembly); 4 check divergence;
 * 7 internal simulator error (panic, deadlock watchdog).
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "asm/textasm.hh"
#include "check/session.hh"
#include "common/error.hh"
#include "common/logging.hh"
#include "driver/runner.hh"
#include "driver/table.hh"
#include "exp/configs.hh"
#include "workloads/kernels.hh"

using namespace nwsim;

namespace
{

int
usage()
{
    std::cerr
        << "usage: nwsim list\n"
        << "       nwsim run <workload|file.s> [--config SPEC]\n"
        << "                 [--decode8] [--perfect-bp]\n"
        << "                 [--early-out-mult] [--warmup N]\n"
        << "                 [--measure N] [--trace] [--csv] [--check]\n";
    return exitcode::Usage;
}

int
listWorkloads()
{
    Table t({"name", "suite", "description"});
    for (const Workload &w : allWorkloads())
        t.addRow({w.name, w.suite, w.description});
    t.print();
    return 0;
}

bool
isAsmFile(const std::string &name)
{
    return name.size() > 2 && name.substr(name.size() - 2) == ".s";
}

Program
loadProgram(const std::string &target)
{
    if (!isAsmFile(target))
        return workloadByName(target).program();
    std::ifstream in(target);
    if (!in)
        NWSIM_FATAL("cannot open ", target);
    std::ostringstream src;
    src << in.rdbuf();
    return assembleText(src.str());
}

void
report(const RunResult &r, bool csv)
{
    if (csv) {
        std::cout << "workload," << r.workload << "\n"
                  << "config," << r.configName << "\n"
                  << "committed," << r.core.committed << "\n"
                  << "cycles," << r.core.cycles << "\n"
                  << "ipc," << r.ipc() << "\n"
                  << "mispredict_squashes," << r.core.mispredictSquashes
                  << "\n"
                  << "cond_mispredict_rate,"
                  << r.bpred.condMispredictRate() << "\n"
                  << "l1d_miss_rate," << r.l1dMissRate << "\n"
                  << "l1i_miss_rate," << r.l1iMissRate << "\n"
                  << "narrow16_pct," << r.profiler.narrow16TotalPercent()
                  << "\n"
                  << "narrow33_pct," << r.profiler.narrow33TotalPercent()
                  << "\n"
                  << "width_fluctuation_pct,"
                  << r.profiler.fluctuationPercent() << "\n"
                  << "power_baseline_mw," << r.baselinePowerPerCycle()
                  << "\n"
                  << "power_gated_mw," << r.optimizedPowerPerCycle()
                  << "\n"
                  << "power_reduction_pct,"
                  << r.gating.reductionPercent() << "\n"
                  << "packed_groups," << r.packing.packedGroups << "\n"
                  << "packed_insts," << r.packing.packedInsts << "\n"
                  << "replay_traps," << r.packing.replayTraps << "\n";
        return;
    }
    std::cout << "== " << r.workload << " on " << r.configName << " ==\n"
              << "committed:      " << r.core.committed << " (after "
              << r.warmupCommitted << " warmup)\n"
              << "cycles:         " << r.core.cycles << "\n"
              << "IPC:            " << Table::num(r.ipc(), 3) << "\n"
              << "branch MPKI-ish: "
              << Table::num(100.0 * r.bpred.condMispredictRate(), 2)
              << "% of conditionals\n"
              << "L1D miss rate:  "
              << Table::num(100.0 * r.l1dMissRate, 2) << "%\n"
              << "narrow ops:     "
              << Table::num(r.profiler.narrow16TotalPercent(), 1)
              << "% at 16 bits, "
              << Table::num(r.profiler.narrow33TotalPercent(), 1)
              << "% at 33 bits\n"
              << "int-unit power: "
              << Table::num(r.baselinePowerPerCycle(), 1) << " -> "
              << Table::num(r.optimizedPowerPerCycle(), 1)
              << " mW/cycle with gating ("
              << Table::num(r.gating.reductionPercent(), 1)
              << "% reduction)\n"
              << "packing:        " << r.packing.packedInsts
              << " insts in " << r.packing.packedGroups << " groups, "
              << r.packing.replayTraps << " replay traps\n";
}

int
runMain(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string cmd = argv[1];
    if (cmd == "list")
        return listWorkloads();
    if (cmd != "run" || argc < 3)
        return usage();

    const std::string target = argv[2];
    std::string config_name = "baseline";
    bool decode8 = false, perfect = false, early_out = false;
    bool trace = false, csv = false, check = false;
    RunOptions opts = resolveRunOptions();
    for (int i = 3; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                usage();
                std::exit(exitcode::Usage);
            }
            return argv[++i];
        };
        if (arg == "--config")
            config_name = next();
        else if (arg == "--decode8")
            decode8 = true;
        else if (arg == "--perfect-bp")
            perfect = true;
        else if (arg == "--early-out-mult")
            early_out = true;
        else if (arg == "--warmup")
            opts.warmupInsts = std::strtoull(next().c_str(), nullptr, 0);
        else if (arg == "--measure")
            opts.measureInsts = std::strtoull(next().c_str(), nullptr, 0);
        else if (arg == "--trace")
            trace = true;
        else if (arg == "--csv")
            csv = true;
        else if (arg == "--check")
            check = true;
        else
            return usage();
    }

    // --config accepts the campaign spec grammar; the legacy flags
    // compose onto it as the equivalent modifiers.
    std::string spec = config_name;
    if (decode8)
        spec += "+decode8";
    if (perfect)
        spec += "+perfect";
    if (early_out)
        spec += "+earlyout";
    const CoreConfig cfg = exp::configBySpec(spec);

    const Program prog = loadProgram(target);

    if (isAsmFile(target) || trace) {
        // Run to completion (assembly files are usually short); with
        // --trace, stream every pipeline event.
        SparseMemory mem;
        prog.load(mem);
        OutOfOrderCore core(cfg, mem, prog.entry);
        if (trace) {
            core.setTraceHook([](const TraceEvent &ev) {
                std::cout << formatTraceEvent(ev) << "\n";
            });
        }
        std::unique_ptr<CheckSession> session;
        if (check)
            session = std::make_unique<CheckSession>(core, prog);
        core.run(opts.measureInsts);
        if (session) {
            if (core.done() && !session->failed())
                session->verifyFinalState();
            if (session->failed()) {
                std::cerr << "CHECK FAILED on " << target << " ("
                          << config_name << "):\n"
                          << session->report();
                return exitcode::CheckDivergence;
            }
            std::cerr << "check: " << session->oracle()->commitsChecked()
                      << " commits verified in lockstep, invariants "
                         "clean\n";
        }
        report(collectRunResult(core, target, config_name), csv);
        return 0;
    }

    if (check) {
        const CheckedRunOutcome out =
            runCheckedProgram(prog, cfg, opts, target, config_name);
        if (!out.ok) {
            std::cerr << "CHECK FAILED on " << target << " ("
                      << config_name << "):\n"
                      << out.report;
            return exitcode::CheckDivergence;
        }
        std::cerr << "check: " << out.commitsChecked
                  << " commits verified in lockstep, invariants clean\n";
        report(out.result, csv);
        return 0;
    }

    report(runProgram(prog, cfg, opts, target, config_name), csv);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        return runMain(argc, argv);
    } catch (const SimError &e) {
        std::cerr << "nwsim: " << errorKindName(e.kind()) << ": "
                  << e.what() << "\n";
        return e.exitCode();
    } catch (const std::exception &e) {
        std::cerr << "nwsim: internal error: " << e.what() << "\n";
        return exitcode::Internal;
    }
}
